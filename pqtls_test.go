package pqtls_test

import (
	"net"
	"testing"

	"pqtls"
)

// The public façade must expose every suite the paper measures.
func TestPublicRegistries(t *testing.T) {
	t.Parallel()
	if len(pqtls.KEMNames()) != 23 {
		t.Errorf("KEMNames: %d entries, want 23", len(pqtls.KEMNames()))
	}
	if len(pqtls.SignatureNames()) != 31 { // 24 paper SAs + 3 ECDSA components + 3 sphincs-s + ed25519
		t.Errorf("SignatureNames: %d entries, want 31", len(pqtls.SignatureNames()))
	}
	k, err := pqtls.KEMByName("kyber768")
	if err != nil {
		t.Fatal(err)
	}
	if k.Level() != 3 {
		t.Errorf("kyber768 level %d, want 3", k.Level())
	}
	s, err := pqtls.SignatureByName("falcon512")
	if err != nil {
		t.Fatal(err)
	}
	if s.SignatureSize() != 666 {
		t.Errorf("falcon512 sig size %d, want 666", s.SignatureSize())
	}
}

// End-to-end through the public API only.
func TestPublicHandshake(t *testing.T) {
	t.Parallel()
	root, rootPriv, err := pqtls.SelfSigned("Root", "dilithium2")
	if err != nil {
		t.Fatal(err)
	}
	scheme, _ := pqtls.SignatureByName("dilithium2")
	leafPub, leafPriv, err := scheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := pqtls.IssueCertificate(2, "server.example", "dilithium2", leafPub, root, rootPriv)
	if err != nil {
		t.Fatal(err)
	}
	serverCfg := &pqtls.Config{
		KEMName: "kyber512", SigName: "dilithium2", ServerName: "server.example",
		Chain: []*pqtls.Certificate{leaf}, PrivateKey: leafPriv,
		Buffer: pqtls.BufferImmediate,
	}
	clientCfg := &pqtls.Config{
		KEMName: "kyber512", SigName: "dilithium2", ServerName: "server.example",
		Roots: pqtls.NewCertPool(root),
	}
	cConn, sConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		_, err := pqtls.ServerHandshake(sConn, serverCfg)
		errCh <- err
	}()
	cli, err := pqtls.ClientHandshake(cConn, clientCfg)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if cli.ServerCert.Algorithm != "dilithium2" {
		t.Errorf("certificate algorithm %q", cli.ServerCert.Algorithm)
	}
}

// A campaign through the public API reproduces the paper's headline claim:
// Kyber+Dilithium is at least competitive with X25519+RSA-2048.
func TestPublicCampaignShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in short mode")
	}
	t.Parallel()
	classical, err := pqtls.RunCampaign(pqtls.CampaignOptions{
		KEM: "x25519", Sig: "rsa:2048", Link: pqtls.ScenarioTestbed,
		Buffer: pqtls.BufferImmediate, Samples: 9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pq, err := pqtls.RunCampaign(pqtls.CampaignOptions{
		KEM: "kyber512", Sig: "dilithium2_aes", Link: pqtls.ScenarioTestbed,
		Buffer: pqtls.BufferImmediate, Samples: 9, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Allow 2x headroom for noise; the paper (and our EXPERIMENTS.md runs)
	// show PQ at parity or faster.
	if pq.TotalMedian > 2*classical.TotalMedian {
		t.Errorf("kyber512+dilithium2_aes (%v) much slower than x25519+rsa:2048 (%v)",
			pq.TotalMedian, classical.TotalMedian)
	}
}
