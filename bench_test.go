// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's experiment index and EXPERIMENTS.md for recorded runs).
// Each Benchmark function corresponds to one table or figure; sub-benchmarks
// are the table rows. Custom metrics report the paper's columns:
// partA/partB medians (ms), wire bytes, handshakes per 60 s.
package pqtls_test

import (
	"fmt"
	"testing"
	"time"

	"pqtls"
	"pqtls/internal/harness"
	"pqtls/internal/netsim"
	"pqtls/internal/obs"
	"pqtls/internal/tls13"
)

func reportCampaign(b *testing.B, r *harness.CampaignResult) {
	b.ReportMetric(float64(r.PartAMedian)/1e6, "partA-ms")
	b.ReportMetric(float64(r.PartBMedian)/1e6, "partB-ms")
	b.ReportMetric(float64(r.Handshakes60s), "hs/60s")
	b.ReportMetric(float64(r.ClientBytes), "client-B")
	b.ReportMetric(float64(r.ServerBytes), "server-B")
}

// BenchmarkTable2a regenerates Table 2a: one row per key agreement,
// combined with rsa:2048. Each iteration is one full simulated handshake.
func BenchmarkTable2a(b *testing.B) {
	for _, kemName := range harness.Table2aKEMs {
		b.Run(kemName, func(b *testing.B) {
			r, err := harness.RunCampaign(harness.CampaignOptions{
				KEM: kemName, Sig: harness.BaselineSig, Link: harness.ScenarioTestbed,
				Buffer: tls13.BufferImmediate, Samples: max(b.N, 3), Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			reportCampaign(b, r)
		})
	}
}

// BenchmarkTable2b regenerates Table 2b: one row per signature algorithm,
// combined with X25519.
func BenchmarkTable2b(b *testing.B) {
	for _, sigName := range harness.Table2bSigs {
		b.Run(sigName, func(b *testing.B) {
			r, err := harness.RunCampaign(harness.CampaignOptions{
				KEM: harness.BaselineKEM, Sig: sigName, Link: harness.ScenarioTestbed,
				Buffer: tls13.BufferImmediate, Samples: max(b.N, 3), Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			reportCampaign(b, r)
		})
	}
}

// BenchmarkFigure3a regenerates the deviation analysis under the default
// (stock OpenSSL) buffering; the reported metric is the largest absolute
// deviation from the KA/SA-independence prediction.
func BenchmarkFigure3a(b *testing.B) {
	benchDeviation(b, tls13.BufferDefault)
}

// BenchmarkFigure3b is the same analysis under the optimized buffering.
func BenchmarkFigure3b(b *testing.B) {
	benchDeviation(b, tls13.BufferImmediate)
}

func benchDeviation(b *testing.B, policy tls13.BufferPolicy) {
	for i := 0; i < b.N; i++ {
		devs, err := harness.RunDeviation(harness.SweepConfig{Samples: 3, Buffer: policy})
		if err != nil {
			b.Fatal(err)
		}
		var maxAbs time.Duration
		for _, d := range devs {
			abs := d.Deviation
			if abs < 0 {
				abs = -abs
			}
			if abs > maxAbs {
				maxAbs = abs
			}
		}
		b.ReportMetric(float64(maxAbs)/1e6, "max-dev-ms")
		b.ReportMetric(float64(len(devs)), "combinations")
	}
}

// BenchmarkFigure3c regenerates the buffering-improvement figure; the
// metric is the largest latency gain from pushing the ServerHello early.
func BenchmarkFigure3c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		imps, err := harness.RunBufferImprovement(harness.SweepConfig{Samples: 3})
		if err != nil {
			b.Fatal(err)
		}
		var maxGain time.Duration
		for _, im := range imps {
			if im.Gain > maxGain {
				maxGain = im.Gain
			}
		}
		b.ReportMetric(float64(maxGain)/1e6, "max-gain-ms")
	}
}

// BenchmarkTable3 regenerates the white-box table; metrics report the
// extremes of server CPU cost and handshake rate across the selection.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable3(harness.SweepConfig{Samples: 3})
		if err != nil {
			b.Fatal(err)
		}
		var maxSrvCPU time.Duration
		var maxRate float64
		for _, r := range rows {
			if r.ServerCPU > maxSrvCPU {
				maxSrvCPU = r.ServerCPU
			}
			if rate := r.HandshakeRate(); rate > maxRate {
				maxRate = rate
			}
		}
		b.ReportMetric(float64(maxSrvCPU)/1e6, "max-srv-cpu-ms")
		b.ReportMetric(maxRate, "max-hs/s")
	}
}

// BenchmarkTable4a regenerates the constrained-environment table for the
// key agreements (one sub-benchmark per scenario, on a representative
// subset per level to keep a single iteration tractable; the full table is
// `pqbench all-kem-scenarios`).
func BenchmarkTable4a(b *testing.B) {
	kems := []string{"x25519", "kyber512", "hqc128", "p256_kyber512", "kyber768", "hqc256"}
	benchScenarios(b, kems, nil)
}

// BenchmarkTable4b is the signature-algorithm half of Table 4.
func BenchmarkTable4b(b *testing.B) {
	sigs := []string{"rsa:2048", "falcon512", "dilithium2", "rsa3072_dilithium2", "dilithium5", "sphincs128"}
	benchScenarios(b, nil, sigs)
}

func benchScenarios(b *testing.B, kems, sigs []string) {
	suites := kems
	fixedSig := true
	if suites == nil {
		suites = sigs
		fixedSig = false
	}
	for _, sc := range netsim.Scenarios() {
		for _, name := range suites {
			kemName, sigName := name, harness.BaselineSig
			if !fixedSig {
				kemName, sigName = harness.BaselineKEM, name
			}
			b.Run(fmt.Sprintf("%s/%s", sc.Name, name), func(b *testing.B) {
				r, err := harness.RunCampaign(harness.CampaignOptions{
					KEM: kemName, Sig: sigName, Link: sc,
					Buffer: tls13.BufferImmediate, Samples: max(b.N, 3), Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.TotalMedian)/1e6, "median-ms")
			})
		}
	}
}

// BenchmarkFigure4 regenerates the log-scaled ranking; the metric is the
// spread between the fastest and slowest algorithm.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kemResults, err := harness.RunTable2a(harness.SweepConfig{Samples: 3, Buffer: tls13.BufferImmediate})
		if err != nil {
			b.Fatal(err)
		}
		ranks := harness.RankFromResults(kemResults, func(r *harness.CampaignResult) string { return r.KEM })
		b.ReportMetric(float64(ranks[len(ranks)-1].Total)/float64(ranks[0].Total), "spread-x")
	}
}

// BenchmarkSection55Attack quantifies the attack-surface analysis; metrics
// are the worst amplification factor and CPU asymmetry observed.
func BenchmarkSection55Attack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := harness.RunTable2b(harness.SweepConfig{Samples: 3, Buffer: tls13.BufferImmediate})
		if err != nil {
			b.Fatal(err)
		}
		surfaces := harness.AttackSurfaceFromResults(results)
		var maxAmp, maxAsym float64
		for _, s := range surfaces {
			if s.Amplification > maxAmp {
				maxAmp = s.Amplification
			}
			if s.CPUAsymmetry > maxAsym {
				maxAsym = s.CPUAsymmetry
			}
		}
		b.ReportMetric(maxAmp, "max-amplification-x")
		b.ReportMetric(maxAsym, "max-cpu-asymmetry-x")
	}
}

// hookedHandshake runs one full sans-IO handshake (no simulated network —
// pure compute, the worst case for observability overhead) with the given
// hooks installed on both endpoints.
func hookedHandshake(creds *harness.Credentials, cliHooks, srvHooks tls13.Hooks) error {
	srvCfg := &pqtls.Config{
		KEMName: "x25519", SigName: "ed25519", ServerName: "server.example",
		Chain: creds.Chain, PrivateKey: creds.Priv,
		Hooks: srvHooks,
	}
	cliCfg := &pqtls.Config{
		KEMName: "x25519", SigName: "ed25519", ServerName: "server.example",
		Roots: creds.Roots,
		Hooks: cliHooks,
	}
	cli, err := pqtls.NewClient(cliCfg)
	if err != nil {
		return err
	}
	srv, err := pqtls.NewServer(srvCfg)
	if err != nil {
		return err
	}
	ch, err := cli.Start()
	if err != nil {
		return err
	}
	flushes, err := srv.Respond(ch)
	if err != nil {
		return err
	}
	var final []pqtls.Record
	for _, f := range flushes {
		out, done, err := cli.Consume(f.Records)
		if err != nil {
			return err
		}
		if done {
			final = out
		}
	}
	return srv.Finish(final)
}

func tracedPair() (tls13.Hooks, tls13.Hooks) {
	cli := obs.NewTracer(obs.Meta{Endpoint: "client", KEM: "x25519", Sig: "ed25519"}, nil)
	srv := obs.NewTracer(obs.Meta{Endpoint: "server", KEM: "x25519", Sig: "ed25519"}, nil)
	return cli, srv
}

// BenchmarkHandshakeHooks compares the full-handshake cost with hooks nil
// vs. a fresh tracer pair per handshake (the phases pipeline's usage).
func BenchmarkHandshakeHooks(b *testing.B) {
	creds, err := harness.CredentialsFor("ed25519", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("none", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := hookedHandshake(creds, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cli, srv := tracedPair()
			if err := hookedHandshake(creds, cli, srv); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestTracerOverhead asserts the observability acceptance bound: installing
// tracers on both endpoints costs <5% of a full x25519/ed25519 handshake.
// Both configurations run in interleaved fixed-size blocks and compare by
// min-of-blocks, which cancels the scheduler and frequency-scaling noise a
// single back-to-back comparison would absorb into the delta.
func TestTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	creds, err := harness.CredentialsFor("ed25519", 1)
	if err != nil {
		t.Fatal(err)
	}
	const blocks, iters = 8, 12
	run := func(traced bool) error {
		var cli, srv tls13.Hooks
		if traced {
			cli, srv = tracedPair()
		}
		return hookedHandshake(creds, cli, srv)
	}
	// Warm the credential cache, allocator, and code paths.
	for i := 0; i < 5; i++ {
		if err := run(false); err != nil {
			t.Fatal(err)
		}
		if err := run(true); err != nil {
			t.Fatal(err)
		}
	}
	minNone, minTraced := time.Duration(1<<62), time.Duration(1<<62)
	for b := 0; b < blocks; b++ {
		for _, traced := range []bool{false, true} {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := run(traced); err != nil {
					t.Fatal(err)
				}
			}
			d := time.Since(start) / iters
			if traced && d < minTraced {
				minTraced = d
			}
			if !traced && d < minNone {
				minNone = d
			}
		}
	}
	// 5% relative bound plus a small absolute allowance for clock
	// granularity on very fast handshakes.
	limit := minNone + minNone/20 + 20*time.Microsecond
	t.Logf("handshake min-of-blocks: none %v, traced %v (limit %v)", minNone, minTraced, limit)
	if minTraced > limit {
		t.Errorf("tracer overhead too high: none %v, traced %v (>5%%)", minNone, minTraced)
	}
}
