package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// stepClock is a deterministic clock advancing 100 µs per reading, making
// the golden JSONL byte-exact.
type stepClock struct {
	t time.Time
}

func (c *stepClock) now() time.Time {
	c.t = c.t.Add(100 * time.Microsecond)
	return c.t
}

func newStepClock() *stepClock {
	return &stepClock{t: time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func buildTrace() *Tracer {
	clk := newStepClock()
	tr := NewTracer(Meta{
		Endpoint: "client", KEM: "x25519", Sig: "ed25519",
		Buffer: "default", Sample: 3,
	}, clk.now)
	// NewTracer consumed the first tick for the origin, so the first span
	// starts at offset 100us.
	endPhase := tr.Phase("server-hello") // start 100us
	endLib := tr.Span("libssl")          // 200us
	endLib()                             // 300us
	endNested := tr.Phase("kem-decap")   // 400us, depth 1
	tr.Charge("kem/decaps", "x25519")
	endNested() // 500us
	endPhase()  // 600us
	tr.Add("flight-wait", 700*time.Microsecond, 1500*time.Microsecond)
	return tr
}

// TestGoldenJSONL pins the exported schema byte-for-byte: a change that
// renames a field or reorders keys must show up here.
func TestGoldenJSONL(t *testing.T) {
	t.Parallel()
	var c Collector
	c.Add(buildTrace())
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	golden := strings.Join([]string{
		`{"endpoint":"client","kem":"x25519","sig":"ed25519","buffer":"default","sample":3,"kind":"phase","name":"server-hello","depth":0,"start_us":100,"dur_us":500}`,
		`{"endpoint":"client","kem":"x25519","sig":"ed25519","buffer":"default","sample":3,"kind":"lib","name":"libssl","depth":0,"start_us":200,"dur_us":100}`,
		`{"endpoint":"client","kem":"x25519","sig":"ed25519","buffer":"default","sample":3,"kind":"phase","name":"kem-decap","depth":1,"start_us":400,"dur_us":100,"op":"kem/decaps","alg":"x25519"}`,
		`{"endpoint":"client","kem":"x25519","sig":"ed25519","buffer":"default","sample":3,"kind":"phase","name":"flight-wait","depth":0,"start_us":700,"dur_us":800}`,
		``,
	}, "\n")
	if got := buf.String(); got != golden {
		t.Errorf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", got, golden)
	}
	n, err := ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateJSONL: %v", err)
	}
	if n != 4 {
		t.Errorf("validated %d spans, want 4", n)
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	t.Parallel()
	bad := []string{
		`{"endpoint":"proxy","kem":"x25519","sig":"ed25519","sample":0,"kind":"phase","name":"x","depth":0,"start_us":0,"dur_us":1}`,
		`{"endpoint":"client","kem":"x25519","sig":"ed25519","sample":0,"kind":"blob","name":"x","depth":0,"start_us":0,"dur_us":1}`,
		`{"endpoint":"client","kem":"","sig":"ed25519","sample":0,"kind":"phase","name":"x","depth":0,"start_us":0,"dur_us":1}`,
		`{"endpoint":"client","kem":"x25519","sig":"ed25519","sample":0,"kind":"phase","name":"x","depth":0,"start_us":0,"dur_us":-5}`,
		`{"endpoint":"client","unknown_field":1,"kem":"x25519","sig":"ed25519","sample":0,"kind":"phase","name":"x","depth":0,"start_us":0,"dur_us":1}`,
	}
	for i, line := range bad {
		if _, err := ValidateJSONL(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("case %d: invalid line accepted: %s", i, line)
		}
	}
}

// TestTracerOutOfOrderClose mirrors the perf.Profiler contract: closers may
// run non-LIFO or twice without corrupting the span set.
func TestTracerOutOfOrderClose(t *testing.T) {
	t.Parallel()
	clk := newStepClock()
	tr := NewTracer(Meta{Endpoint: "server", KEM: "k", Sig: "s"}, clk.now)
	endA := tr.Phase("a")
	endB := tr.Phase("b")
	endA()
	endA()
	endB()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// After a closed out of order, a charge must land on b (still open at
	// that point it would have been innermost) — here both are closed, so
	// the charge is dropped rather than misattributed.
	tr.Charge("sig/sign", "s")
	for _, s := range tr.Spans() {
		if s.Op != "" {
			t.Errorf("charge attributed to closed span %q", s.Name)
		}
	}
}

// TestTracerAbandonedSpanOmitted: error paths abandon spans; they must not
// appear in the export with garbage durations.
func TestTracerAbandonedSpanOmitted(t *testing.T) {
	t.Parallel()
	clk := newStepClock()
	tr := NewTracer(Meta{Endpoint: "client", KEM: "k", Sig: "s"}, clk.now)
	tr.Phase("abandoned")
	end := tr.Phase("closed")
	end()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "closed" {
		t.Errorf("spans = %+v, want just the closed one", spans)
	}
}

func TestAggregatePhases(t *testing.T) {
	t.Parallel()
	mk := func(endpoint string, sample int, decap time.Duration) *Tracer {
		clk := newStepClock()
		tr := NewTracer(Meta{Endpoint: endpoint, KEM: "x25519", Sig: "ed25519", Sample: sample}, clk.now)
		tr.Add("kem-decap", 0, decap)
		tr.Add("flight-wait", decap, decap+2*time.Millisecond)
		tr.Add("flight-wait", decap+3*time.Millisecond, decap+4*time.Millisecond)
		return tr
	}
	traces := []*Tracer{
		mk("server", 0, 5*time.Millisecond), // server listed after clients regardless of order
		mk("client", 0, 1*time.Millisecond),
		mk("client", 1, 3*time.Millisecond),
	}
	sts := AggregatePhases(traces)
	if len(sts) != 4 {
		t.Fatalf("got %d stats, want 4 (2 endpoints × 2 phases): %+v", len(sts), sts)
	}
	if sts[0].Endpoint != "client" {
		t.Errorf("client rows must come first, got %+v", sts[0])
	}
	var cliDecap *PhaseStat
	for i := range sts {
		if sts[i].Endpoint == "client" && sts[i].Phase == "kem-decap" {
			cliDecap = &sts[i]
		}
		if sts[i].Phase == "flight-wait" && sts[i].P50 != 3*time.Millisecond {
			t.Errorf("flight-wait spans must sum per trace: p50 %v, want 3ms", sts[i].P50)
		}
	}
	if cliDecap == nil || cliDecap.Samples != 2 {
		t.Fatalf("client kem-decap stat missing or wrong samples: %+v", cliDecap)
	}
	if cliDecap.P50 != 1*time.Millisecond { // nearest-rank ceil(0.5·2)=1st of {1ms, 3ms}
		t.Errorf("p50 %v, want 1ms", cliDecap.P50)
	}
	if cliDecap.Mean != 2*time.Millisecond {
		t.Errorf("mean %v, want 2ms", cliDecap.Mean)
	}
}
