package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("pqtls_handshakes_total", "Completed handshakes.", "result", "ok").Add(7)
	reg.Counter("pqtls_handshakes_total", "Completed handshakes.", "result", "error").Inc()
	reg.Gauge("pqtls_inflight_connections", "In-flight connections.").Set(3)
	reg.GaugeFunc("pqtls_draining", "Whether the server is draining.", func() int64 { return 1 })
	reg.CounterFunc("pqtls_tickets_issued_total", "", func() uint64 { return 42 })
	h := reg.Histogram("pqtls_handshake_duration_seconds", "Handshake latency.")
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(40 * time.Millisecond)

	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP pqtls_handshakes_total Completed handshakes.\n",
		"# TYPE pqtls_handshakes_total counter\n",
		`pqtls_handshakes_total{result="error"} 1` + "\n",
		`pqtls_handshakes_total{result="ok"} 7` + "\n",
		"# TYPE pqtls_inflight_connections gauge\n",
		"pqtls_inflight_connections 3\n",
		"pqtls_draining 1\n",
		"pqtls_tickets_issued_total 42\n",
		"# TYPE pqtls_handshake_duration_seconds histogram\n",
		`pqtls_handshake_duration_seconds_bucket{le="0.0005"} 0` + "\n",
		`pqtls_handshake_duration_seconds_bucket{le="0.005"} 2` + "\n",
		`pqtls_handshake_duration_seconds_bucket{le="0.05"} 3` + "\n",
		`pqtls_handshake_duration_seconds_bucket{le="10"} 3` + "\n",
		`pqtls_handshake_duration_seconds_bucket{le="+Inf"} 3` + "\n",
		"pqtls_handshake_duration_seconds_sum 0.044\n",
		"pqtls_handshake_duration_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "pqtls_draining") > strings.Index(out, "pqtls_handshakes_total") {
		t.Error("families not sorted by name")
	}
	// No HELP line for the empty-help family.
	if strings.Contains(out, "# HELP pqtls_tickets_issued_total") {
		t.Error("HELP emitted for empty help string")
	}
}

func TestRegistryIdempotentAndLabelOrder(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	a := reg.Counter("m_total", "h", "b", "2", "a", "1")
	b := reg.Counter("m_total", "h", "a", "1", "b", "2")
	if a != b {
		t.Error("same series with reordered labels returned distinct counters")
	}
	a.Inc()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `m_total{a="1",b="2"} 1` + "\n"; !strings.Contains(buf.String(), want) {
		t.Errorf("labels not rendered sorted: %s", buf.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("m_total", "h")
	defer func() {
		if recover() == nil {
			t.Error("registering m_total as gauge did not panic")
		}
	}()
	reg.Gauge("m_total", "h")
}

func TestRegistryConcurrent(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				reg.Counter("c_total", "h").Inc()
				reg.Gauge("g", "h").Add(1)
				reg.Histogram("h_seconds", "h").Observe(time.Millisecond)
				var buf bytes.Buffer
				if err := reg.WriteText(&buf); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c_total", "h").Value(); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	hs := reg.Histogram("h_seconds", "h").Snapshot()
	if got := hs.Count(); got != 800 {
		t.Errorf("histogram count = %d, want 800", got)
	}
}

func TestRegistryHandler(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("x_total", "h").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content-type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "x_total 1\n") {
		t.Errorf("body missing series: %s", body)
	}
}

func TestHistogramCumulativeLE(t *testing.T) {
	t.Parallel()
	var h Histogram
	h.Record(100 * time.Nanosecond) // below histBase: edge bucket, represented by min
	h.Record(2 * time.Millisecond)
	h.Record(2 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	if got := h.CumulativeLE(time.Microsecond); got != 1 {
		t.Errorf("<=1us = %d, want 1 (sub-base edge bucket)", got)
	}
	if got := h.CumulativeLE(5 * time.Millisecond); got != 3 {
		t.Errorf("<=5ms = %d, want 3", got)
	}
	if got := h.CumulativeLE(time.Second); got != h.Count() {
		t.Errorf("<=1s = %d, want all %d", got, h.Count())
	}
	if got := h.CumulativeLE(0); got != 0 {
		t.Errorf("<=0 = %d, want 0", got)
	}
}

func TestPhaseHooks(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	ph := NewPhaseHooks(reg)
	end := ph.Phase("kem-decap")
	end()
	end() // idempotent: must observe once
	ph.Charge("kem/decaps", "mlkem768")
	ph.Charge("kem/decaps", "mlkem768")
	ph.Span("libssl")() // no-op
	snap := reg.Histogram(MetricPhaseSeconds, "", "phase", "kem-decap").Snapshot()
	if got := snap.Count(); got != 1 {
		t.Errorf("phase observations = %d, want 1", got)
	}
	if got := reg.Counter(MetricPubkeyOps, "", "op", "kem/decaps", "alg", "mlkem768").Value(); got != 2 {
		t.Errorf("pubkey ops = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `pqtls_pubkey_ops_total{alg="mlkem768",op="kem/decaps"} 2` + "\n"; !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, buf.String())
	}
}

// tornWriter increments a shared datum on every Write call. With lazy
// per-series sampling (the old WriteText layout), two func series reading
// that datum were sampled on either side of a Write and disagreed within
// one exposition; the single snapshot pass must render them identically.
type tornWriter struct {
	buf   bytes.Buffer
	datum *int64
}

func (t *tornWriter) Write(p []byte) (int, error) {
	*t.datum++
	return t.buf.Write(p)
}

func TestRegistryConsistentFuncSnapshot(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	var datum int64
	read := func() int64 { return datum }
	// Family names sort apart so several Writes land between them.
	reg.GaugeFunc("a_first", "h", read)
	reg.GaugeFunc("z_last", "h", read)
	w := &tornWriter{datum: &datum}
	if err := reg.WriteText(w); err != nil {
		t.Fatal(err)
	}
	out := w.buf.String()
	var first, last int64
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "a_first ") {
			fmt.Sscanf(line, "a_first %d", &first)
		}
		if strings.HasPrefix(line, "z_last ") {
			fmt.Sscanf(line, "z_last %d", &last)
		}
	}
	if first != last {
		t.Fatalf("torn scrape: a_first %d, z_last %d (func series sampled mid-write)", first, last)
	}
}

// TestRegistryScrapeVsUpdateRace drives concurrent scrapes against counter,
// gauge, histogram, and func-series updates plus lazy registration; run
// under -race this is the regression net for the snapshot-pass locking.
func TestRegistryScrapeVsUpdateRace(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	var shared atomic.Int64
	reg.GaugeFunc("fn_gauge", "h", func() int64 { return shared.Load() })
	reg.CounterFunc("fn_counter_total", "h", func() uint64 { return uint64(shared.Load()) })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				shared.Add(1)
				reg.Counter("upd_total", "h").Inc()
				reg.Gauge("upd_gauge", "h").Add(1)
				reg.Histogram("upd_seconds", "h").Observe(time.Millisecond)
				reg.Counter("lazy_total", "h", "worker", fmt.Sprint(i), "j", fmt.Sprint(j%7)).Inc()
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := reg.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
