package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Canonical timeline encoding. Progress frames ship timelines between dist
// workers and the coordinator, the Result codec embeds them, and the
// timeline digest hashes them, so the byte layout is pinned (a golden test
// guards it):
//
//	u8  version (timelineCodecV1)
//	u64 interval (nanoseconds)
//	u32 window count, then per window (ascending index):
//	    u64 index
//	    u64 started, completed, failed, warmup, resumed
//	    u32 error-class count, then per class (sorted by name):
//	        u16 name length, name bytes, u64 count
//	    histogram (canonical encoding, self-delimiting)
//
// All integers big-endian. Windows and error classes are sorted so the
// encoding is a pure function of the timeline's value, never of map
// iteration order — the property the merge-equals-unsplit digest checks
// rest on.
const timelineCodecV1 = 1

// maxTimelineWindows bounds a decoded timeline (2^20 windows is 12 days at
// one second); a larger count is a corrupt frame, not a real run.
const maxTimelineWindows = 1 << 20

// maxWindowErrClassLen mirrors the loadgen result codec's bound on one
// error-class name.
const maxWindowErrClassLen = 256

// AppendBinary appends the canonical encoding of t to b.
func (t *Timeline) AppendBinary(b []byte) []byte {
	windows := t.snapshot()
	b = append(b, timelineCodecV1)
	b = binary.BigEndian.AppendUint64(b, uint64(t.interval))
	b = binary.BigEndian.AppendUint32(b, uint32(len(windows)))
	for _, w := range windows {
		b = binary.BigEndian.AppendUint64(b, w.Index)
		for _, v := range []uint64{w.Started, w.Completed, w.Failed, w.Warmup, w.Resumed} {
			b = binary.BigEndian.AppendUint64(b, v)
		}
		classes := make([]string, 0, len(w.Errors))
		for c := range w.Errors {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		b = binary.BigEndian.AppendUint32(b, uint32(len(classes)))
		for _, c := range classes {
			b = binary.BigEndian.AppendUint16(b, uint16(len(c)))
			b = append(b, c...)
			b = binary.BigEndian.AppendUint64(b, w.Errors[c])
		}
		b = w.Hist.AppendBinary(b)
	}
	return b
}

// MarshalBinary returns the canonical encoding of t.
func (t *Timeline) MarshalBinary() ([]byte, error) {
	return t.AppendBinary(nil), nil
}

// UnmarshalBinary decodes into t (replacing its contents) and returns the
// bytes consumed, so a timeline can be embedded in a larger frame. It
// rejects version or structure mismatches rather than decoding garbage.
func (t *Timeline) UnmarshalBinary(b []byte) (int, error) {
	const head = 1 + 8 + 4
	if len(b) < head {
		return 0, fmt.Errorf("obs: timeline encoding truncated (%d bytes)", len(b))
	}
	if b[0] != timelineCodecV1 {
		return 0, fmt.Errorf("obs: unknown timeline encoding version %d", b[0])
	}
	interval := time.Duration(binary.BigEndian.Uint64(b[1:]))
	if interval <= 0 {
		return 0, fmt.Errorf("obs: timeline interval %d invalid", interval)
	}
	count := int(binary.BigEndian.Uint32(b[9:]))
	if count > maxTimelineWindows {
		return 0, fmt.Errorf("obs: timeline encoding claims %d windows", count)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.interval = interval
	t.windows = make(map[uint64]*Window, count)
	off := head
	need := func(k int) error {
		if len(b)-off < k {
			return fmt.Errorf("obs: timeline encoding truncated at offset %d", off)
		}
		return nil
	}
	var prevIdx uint64
	for wi := 0; wi < count; wi++ {
		if err := need(6 * 8); err != nil {
			return 0, err
		}
		w := &Window{Index: binary.BigEndian.Uint64(b[off:])}
		if wi > 0 && w.Index <= prevIdx {
			return 0, fmt.Errorf("obs: timeline windows not ascending at entry %d (index %d)", wi, w.Index)
		}
		off += 8
		for _, p := range []*uint64{&w.Started, &w.Completed, &w.Failed, &w.Warmup, &w.Resumed} {
			*p = binary.BigEndian.Uint64(b[off:])
			off += 8
		}
		if err := need(4); err != nil {
			return 0, err
		}
		nerr := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		prevClass := ""
		for j := 0; j < nerr; j++ {
			if err := need(2); err != nil {
				return 0, err
			}
			l := int(binary.BigEndian.Uint16(b[off:]))
			off += 2
			if l == 0 || l > maxWindowErrClassLen {
				return 0, fmt.Errorf("obs: timeline error-class length %d invalid", l)
			}
			if err := need(l + 8); err != nil {
				return 0, err
			}
			class := string(b[off : off+l])
			off += l
			if j > 0 && class <= prevClass {
				return 0, fmt.Errorf("obs: timeline error classes not sorted at %q", class)
			}
			prevClass = class
			if w.Errors == nil {
				w.Errors = make(map[string]uint64, nerr)
			}
			w.Errors[class] = binary.BigEndian.Uint64(b[off:])
			off += 8
		}
		n, err := w.Hist.UnmarshalBinary(b[off:])
		if err != nil {
			return 0, fmt.Errorf("obs: timeline window %d histogram: %w", w.Index, err)
		}
		off += n
		t.windows[w.Index] = w
		prevIdx = w.Index
	}
	return off, nil
}

// windowJSON is the JSON shape of one window: the same information as the
// binary encoding, readable by external tooling.
type windowJSON struct {
	Index     uint64            `json:"index"`
	Started   uint64            `json:"started"`
	Completed uint64            `json:"completed"`
	Failed    uint64            `json:"failed"`
	Warmup    uint64            `json:"warmup"`
	Resumed   uint64            `json:"resumed"`
	Errors    map[string]uint64 `json:"errors,omitempty"`
	Hist      *Histogram        `json:"hist"`
}

func windowToJSON(w *Window) windowJSON {
	h := w.Hist
	return windowJSON{
		Index: w.Index, Started: w.Started, Completed: w.Completed,
		Failed: w.Failed, Warmup: w.Warmup, Resumed: w.Resumed,
		Errors: w.Errors, Hist: &h,
	}
}

func windowFromJSON(j windowJSON) *Window {
	w := &Window{
		Index: j.Index, Started: j.Started, Completed: j.Completed,
		Failed: j.Failed, Warmup: j.Warmup, Resumed: j.Resumed,
		Errors: j.Errors,
	}
	if j.Hist != nil {
		w.Hist = *j.Hist
	}
	return w
}

// timelineJSON is the JSON shape of a timeline.
type timelineJSON struct {
	IntervalNS int64        `json:"interval_ns"`
	Windows    []windowJSON `json:"windows"`
}

// MarshalJSON renders the timeline in the canonical JSON shape (windows in
// ascending index order).
func (t *Timeline) MarshalJSON() ([]byte, error) {
	j := timelineJSON{IntervalNS: int64(t.interval)}
	for _, w := range t.snapshot() {
		j.Windows = append(j.Windows, windowToJSON(w))
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the canonical JSON shape, applying the same
// structural checks as the binary decoder.
func (t *Timeline) UnmarshalJSON(b []byte) error {
	var j timelineJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	if j.IntervalNS <= 0 {
		return fmt.Errorf("obs: timeline JSON interval %d invalid", j.IntervalNS)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.interval = time.Duration(j.IntervalNS)
	t.windows = make(map[uint64]*Window, len(j.Windows))
	var prev uint64
	for i, wj := range j.Windows {
		if i > 0 && wj.Index <= prev {
			return fmt.Errorf("obs: timeline JSON windows not ascending at index %d", wj.Index)
		}
		t.windows[wj.Index] = windowFromJSON(wj)
		prev = wj.Index
	}
	return nil
}
