package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Meta identifies one traced handshake endpoint.
type Meta struct {
	Endpoint string // "client" or "server"
	KEM      string
	Sig      string
	Buffer   string // "default" or "immediate" ("" when unknown, e.g. a bare client)
	Sample   int    // sample index within a run
	Resumed  bool   // PSK-resumed handshake
}

// Span is one closed region of a handshake trace. Start and End are offsets
// from the trace origin (the Tracer's construction time), so spans from
// modeled (virtual-clock) and live (wall-clock) runs read identically.
type Span struct {
	Kind  string // "phase" (protocol phase) or "lib" (library CPU bucket)
	Name  string
	Start time.Duration
	End   time.Duration
	Depth int // nesting depth within its kind; aggregation uses depth 0 only
	// Op and Alg record the public-key operations charged while this span
	// was the innermost open phase (comma-joined when several, e.g. a chain
	// validation verifying two certificates).
	Op  string
	Alg string

	closed bool
}

// Dur returns the span duration.
func (s *Span) Dur() time.Duration { return s.End - s.Start }

// Tracer records the span tree of a single handshake endpoint. It satisfies
// the tls13.Hooks interface structurally (Span/Phase/Charge) so it can be
// installed on a Config — alone or stacked via tls13.MultiHooks.
//
// A Tracer is used from one handshake's goroutine only; it is not safe for
// concurrent use. Closing a span is idempotent and tolerates out-of-order
// closes: error paths in the state machines may abandon spans entirely,
// which simply leaves them out of the export (only closed spans are
// emitted, and failed handshakes are not collected anyway).
type Tracer struct {
	meta   Meta
	now    func() time.Time
	origin time.Time
	spans  []*Span
	open   map[string][]*Span // per-kind open-span stack
}

// NewTracer starts a trace. now supplies the clock — time.Now for live
// runs, a Meter's virtual clock for modeled runs; nil means time.Now. The
// trace origin is the clock reading at construction.
func NewTracer(meta Meta, now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{
		meta:   meta,
		now:    now,
		origin: now(),
		open:   map[string][]*Span{},
	}
}

// Meta returns the trace identity.
func (t *Tracer) Meta() Meta { return t.meta }

func (t *Tracer) at() time.Duration { return t.now().Sub(t.origin) }

func (t *Tracer) push(kind, name string) func() {
	s := &Span{
		Kind:  kind,
		Name:  name,
		Start: t.at(),
		Depth: len(t.open[kind]),
	}
	t.spans = append(t.spans, s)
	t.open[kind] = append(t.open[kind], s)
	return func() {
		if s.closed {
			return
		}
		s.closed = true
		s.End = t.at()
		// Out-of-order close: s may not be the top of the stack — remove it
		// wherever it sits.
		st := t.open[kind]
		for i := len(st) - 1; i >= 0; i-- {
			if st[i] == s {
				t.open[kind] = append(st[:i], st[i+1:]...)
				break
			}
		}
	}
}

// Span opens a library CPU bucket region (tls13.Hooks).
func (t *Tracer) Span(lib string) func() { return t.push("lib", lib) }

// Phase opens a named handshake phase (tls13.Hooks).
func (t *Tracer) Phase(name string) func() { return t.push("phase", name) }

// Charge annotates the innermost open phase with a public-key operation
// (tls13.Hooks). Charges outside any phase are dropped.
func (t *Tracer) Charge(op, alg string) {
	st := t.open["phase"]
	if len(st) == 0 {
		return
	}
	s := st[len(st)-1]
	if s.Op != "" {
		s.Op += ","
		s.Alg += ","
	}
	s.Op += op
	s.Alg += alg
}

// Add records an externally timed top-level phase span — the harness and
// loadgen drivers use it for flight-wait, which the sans-IO state machines
// never see. Offsets are relative to the trace origin.
func (t *Tracer) Add(name string, start, end time.Duration) {
	t.spans = append(t.spans, &Span{
		Kind:   "phase",
		Name:   name,
		Start:  start,
		End:    end,
		closed: true,
	})
}

// Spans returns the closed spans in recording order. Abandoned (never
// closed) spans are omitted.
func (t *Tracer) Spans() []Span {
	out := make([]Span, 0, len(t.spans))
	for _, s := range t.spans {
		if s.closed {
			out = append(out, *s)
		}
	}
	return out
}

// Collector accumulates finished traces from concurrent handshakes.
type Collector struct {
	mu     sync.Mutex
	traces []*Tracer
}

// Add appends a finished trace. Safe for concurrent use.
func (c *Collector) Add(t *Tracer) {
	if t == nil {
		return
	}
	c.mu.Lock()
	c.traces = append(c.traces, t)
	c.mu.Unlock()
}

// Traces returns the collected traces.
func (c *Collector) Traces() []*Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Tracer(nil), c.traces...)
}

// Len returns the number of collected traces.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// spanRecord is the JSONL wire form of one span: one line per span, flat,
// with the trace identity denormalized onto every line so the file needs no
// out-of-band context.
type spanRecord struct {
	Endpoint string `json:"endpoint"`
	KEM      string `json:"kem"`
	Sig      string `json:"sig"`
	Buffer   string `json:"buffer,omitempty"`
	Sample   int    `json:"sample"`
	Resumed  bool   `json:"resumed,omitempty"`
	Kind     string `json:"kind"`
	Name     string `json:"name"`
	Depth    int    `json:"depth"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"dur_us"`
	Op       string `json:"op,omitempty"`
	Alg      string `json:"alg,omitempty"`
}

// WriteJSONL emits every closed span of every collected trace, one JSON
// object per line. Offsets and durations are integral microseconds.
func (c *Collector) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline JSONL needs
	for _, t := range c.Traces() {
		m := t.Meta()
		for _, s := range t.Spans() {
			rec := spanRecord{
				Endpoint: m.Endpoint,
				KEM:      m.KEM,
				Sig:      m.Sig,
				Buffer:   m.Buffer,
				Sample:   m.Sample,
				Resumed:  m.Resumed,
				Kind:     s.Kind,
				Name:     s.Name,
				Depth:    s.Depth,
				StartUS:  s.Start.Microseconds(),
				DurUS:    s.Dur().Microseconds(),
				Op:       s.Op,
				Alg:      s.Alg,
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ValidateJSONL checks a span JSONL stream against the schema WriteJSONL
// produces and returns the number of valid span lines. It is the self-check
// `pqbench phases` and the smoke script run over emitted traces.
func ValidateJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		var rec spanRecord
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return n, fmt.Errorf("line %d: %w", n, err)
		}
		if rec.Endpoint != "client" && rec.Endpoint != "server" {
			return n, fmt.Errorf("line %d: endpoint %q not client|server", n, rec.Endpoint)
		}
		if rec.Kind != "phase" && rec.Kind != "lib" {
			return n, fmt.Errorf("line %d: kind %q not phase|lib", n, rec.Kind)
		}
		if rec.Name == "" || rec.KEM == "" || rec.Sig == "" {
			return n, fmt.Errorf("line %d: empty name/kem/sig", n)
		}
		if rec.Depth < 0 || rec.StartUS < 0 || rec.DurUS < 0 {
			return n, fmt.Errorf("line %d: negative depth/start_us/dur_us", n)
		}
	}
	return n, sc.Err()
}
