package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// TimelineSchema tags the JSONL artifact's header line so downstream
// tooling can reject files it does not understand.
const TimelineSchema = "pqtls-timeline/v1"

// timelineHeader is the first line of a timeline JSONL artifact.
type timelineHeader struct {
	Schema     string `json:"schema"`
	IntervalNS int64  `json:"interval_ns"`
	Digest     string `json:"digest"`
}

// WriteJSONL writes the timeline as a JSONL artifact: one header line
// (schema, interval, digest of the canonical binary encoding) followed by
// one window object per line in ascending index order. The format is
// line-appendable and digest-checkable, which is what a results/ artifact
// needs.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(timelineHeader{
		Schema: TimelineSchema, IntervalNS: int64(t.interval), Digest: t.Digest(),
	})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for _, win := range t.snapshot() {
		line, err := json.Marshal(windowToJSON(win))
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadTimelineJSONL parses a JSONL artifact written by WriteJSONL,
// verifying the schema tag and the header digest against the reconstructed
// timeline.
func ReadTimelineJSONL(r io.Reader) (*Timeline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("obs: timeline JSONL empty")
	}
	var hdr timelineHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("obs: timeline JSONL header: %w", err)
	}
	if hdr.Schema != TimelineSchema {
		return nil, fmt.Errorf("obs: timeline JSONL schema %q, want %q", hdr.Schema, TimelineSchema)
	}
	if hdr.IntervalNS <= 0 {
		return nil, fmt.Errorf("obs: timeline JSONL interval %d invalid", hdr.IntervalNS)
	}
	t := NewTimeline(time.Duration(hdr.IntervalNS))
	var prev uint64
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var wj windowJSON
		if err := json.Unmarshal(sc.Bytes(), &wj); err != nil {
			return nil, fmt.Errorf("obs: timeline JSONL window %d: %w", n, err)
		}
		if n > 0 && wj.Index <= prev {
			return nil, fmt.Errorf("obs: timeline JSONL windows not ascending at index %d", wj.Index)
		}
		t.windows[wj.Index] = windowFromJSON(wj)
		prev = wj.Index
		n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if got := t.Digest(); hdr.Digest != "" && got != hdr.Digest {
		return nil, fmt.Errorf("obs: timeline JSONL digest %s, header claims %s", got, hdr.Digest)
	}
	return t, nil
}

// TimelineCSVHeader is the column schema of WriteCSV; the timeline-smoke CI
// leg validates artifacts against it.
const TimelineCSVHeader = "index,start_ms,started,completed,failed,resumed,warmup,inflight,hs_s,p50_us,p95_us"

// WriteCSV renders the timeline as a per-window CSV: cumulative inflight is
// derived (started − completed − failed up to each window's end), hs_s is
// the window's completion rate, and the quantiles come from the window's
// own histogram. Only windows that saw events appear; the index column
// makes gaps explicit.
func (t *Timeline) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, TimelineCSVHeader)
	sec := t.interval.Seconds()
	var started, completed, failed uint64
	for _, win := range t.snapshot() {
		started += win.Started
		completed += win.Completed
		failed += win.Failed
		inflight := int64(started) - int64(completed) - int64(failed)
		fmt.Fprintf(bw, "%d,%s,%d,%d,%d,%d,%d,%d,%s,%s,%s\n",
			win.Index,
			fmtFloat(float64(win.Index)*sec*1000),
			win.Started, win.Completed, win.Failed, win.Resumed, win.Warmup,
			inflight,
			fmtFloat(float64(win.Completed)/sec),
			fmtFloat(float64(win.Hist.Quantile(0.50))/1e3),
			fmtFloat(float64(win.Hist.Quantile(0.95))/1e3),
		)
	}
	return bw.Flush()
}
