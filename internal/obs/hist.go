package obs

import (
	"math"
	"time"
)

// Histogram is a mergeable latency histogram with logarithmic buckets:
// bucket i spans [histBase·histGrowth^i, histBase·histGrowth^(i+1)), giving
// a constant ~4% relative error from 1 µs up past an hour in a few hundred
// counters. Per-worker histograms record without locks and merge into the
// run total, so the hot path of a client pool never contends on stats.
// (Moved here from internal/loadgen so the metrics registry can expose the
// same histogram; loadgen aliases the type.)
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	histBase    = float64(time.Microsecond)
	histGrowth  = 1.04
	histBuckets = 600 // covers up to histBase·1.04^600 ≈ 4.7 hours
)

// logGrowth is precomputed for bucketOf.
var logGrowth = math.Log(histGrowth)

// bucketOf maps a latency to its bucket index.
func bucketOf(d time.Duration) int {
	if d < time.Duration(histBase) {
		return 0
	}
	i := int(math.Log(float64(d)/histBase) / logGrowth)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketValue is the representative latency of bucket i (the geometric
// midpoint of its bounds).
func bucketValue(i int) time.Duration {
	return time.Duration(histBase * math.Pow(histGrowth, float64(i)+0.5))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the exact sum of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Mean returns the exact arithmetic mean (the sum is tracked exactly; only
// quantiles are subject to bucket resolution).
func (h *Histogram) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / time.Duration(h.n)
}

// Min and Max return the exact observed extremes.
func (h *Histogram) Min() time.Duration { return h.min }
func (h *Histogram) Max() time.Duration { return h.max }

// CumulativeLE returns the number of observations <= d, resolved at bucket
// granularity: a bucket counts as <= d when its representative value does.
// This is the cumulative view a Prometheus histogram_bucket{le=...} series
// needs; the ~4% bucket error applies at the boundary only.
func (h *Histogram) CumulativeLE(d time.Duration) uint64 {
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		v := bucketValue(i)
		// The edge buckets absorb everything below histBase and beyond the
		// last bound; represent them by the observed extremes.
		if i == 0 && h.min < time.Duration(histBase) {
			v = h.min
		}
		if i == histBuckets-1 {
			v = h.max
		}
		if v <= d {
			cum += c
		}
	}
	return cum
}

// Quantile returns the q-quantile under the same nearest-rank definition as
// stats.Quantile (the ceil(q·n)-th smallest observation), resolved to its
// bucket's representative value and clamped to the observed extremes so
// p0/p100 stay exact.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// The edge buckets absorb everything below histBase and
			// beyond the last bound; their geometric midpoints are
			// meaningless, so answer with the exact observed extreme.
			if i == 0 && h.min < time.Duration(histBase) {
				return h.min
			}
			if i == histBuckets-1 {
				return h.max
			}
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
