package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4). Registration is idempotent: asking for
// an existing (name, labels) series returns the same instrument, so callers
// can register lazily at the point of use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // keyed by rendered label set
}

type series struct {
	labels  string // rendered `{k="v",...}` or ""
	counter *Counter
	gauge   *Gauge
	cfn     func() uint64
	gfn     func() int64
	hist    *LatencyHistogram
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

func (c *Counter) Inc()          { c.v.Add(1) }
func (c *Counter) Add(n uint64)  { c.v.Add(n) }
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

func (g *Gauge) Set(n int64)  { g.v.Store(n) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyHistogram wraps the log-bucketed Histogram behind a mutex so
// concurrent connections can observe into one series.
type LatencyHistogram struct {
	mu sync.Mutex
	h  Histogram
}

// Observe records one latency.
func (l *LatencyHistogram) Observe(d time.Duration) {
	l.mu.Lock()
	l.h.Record(d)
	l.mu.Unlock()
}

// Snapshot returns a copy of the underlying histogram.
func (l *LatencyHistogram) Snapshot() Histogram {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels turns variadic k, v pairs into a deterministic `{...}`
// suffix. Pairs are sorted by key; values are quoted with escaping.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key, value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the (family, series) slot, enforcing kind
// consistency. build populates a fresh series.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, build func(*series)) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	ls := renderLabels(labels)
	s := f.series[ls]
	if s == nil {
		s = &series{labels: ls}
		build(s)
		f.series[ls] = s
	}
	return s
}

// Counter returns the counter series for (name, labels), creating family
// and series on first use. labels are key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func(s *series) { s.counter = &Counter{} })
	if s.counter == nil {
		panic(fmt.Sprintf("obs: metric %s is a counter func", name))
	}
	return s.counter
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func(s *series) { s.gauge = &Gauge{} })
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: metric %s is a gauge func", name))
	}
	return s.gauge
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time (e.g. ticket-store stats owned elsewhere).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	r.lookup(name, help, kindCounter, labels, func(s *series) { s.cfn = fn })
}

// GaugeFunc registers a gauge series read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string) {
	r.lookup(name, help, kindGauge, labels, func(s *series) { s.gfn = fn })
}

// Histogram returns the latency-histogram series for (name, labels). Values
// are exposed in seconds per Prometheus convention.
func (r *Registry) Histogram(name, help string, labels ...string) *LatencyHistogram {
	s := r.lookup(name, help, kindHistogram, labels, func(s *series) { s.hist = &LatencyHistogram{} })
	return s.hist
}

// histogramLE are the upper bounds (seconds) of the exposed cumulative
// buckets — a fixed ladder from 0.5 ms to 10 s; the internal log-bucketed
// histogram is collapsed onto it at scrape time.
var histogramLE = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// fmtFloat renders a float the way Prometheus clients do (shortest form).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesSnap is one series' value captured during the snapshot pass: the
// scalar pre-rendered, the histogram copied.
type seriesSnap struct {
	labels string
	value  string     // rendered scalar ("" for histograms)
	hist   *Histogram // non-nil for histograms
}

// famSnap is one family's snapshot.
type famSnap struct {
	name, help string
	kind       metricKind
	series     []seriesSnap
}

// WriteText renders every family in name order, series in label order.
//
// Collection and rendering are two strictly separated passes: every value —
// counter loads, gauge loads, func-series callbacks, histogram snapshots —
// is sampled under one registry lock acquisition before a single byte is
// written. Interleaving sampling with writer I/O (the previous layout)
// exposed torn cross-series views: a slow scrape client could observe
// series sampled milliseconds apart, so two func series reading one shared
// datum disagreed within the same exposition. Func callbacks run while the
// registry lock is held and therefore must not call back into the registry.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	snaps := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fs := famSnap{name: f.name, help: f.help, kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			snap := seriesSnap{labels: s.labels}
			switch {
			case s.counter != nil:
				snap.value = strconv.FormatUint(s.counter.Value(), 10)
			case s.cfn != nil:
				snap.value = strconv.FormatUint(s.cfn(), 10)
			case s.gauge != nil:
				snap.value = strconv.FormatInt(s.gauge.Value(), 10)
			case s.gfn != nil:
				snap.value = strconv.FormatInt(s.gfn(), 10)
			case s.hist != nil:
				h := s.hist.Snapshot()
				snap.hist = &h
			}
			fs.series = append(fs.series, snap)
		}
		snaps = append(snaps, fs)
	}
	r.mu.Unlock()

	for _, f := range snaps {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeriesSnap(w, f.name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeriesSnap(w io.Writer, name string, s seriesSnap) error {
	if s.hist == nil {
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, s.value)
		return err
	}
	h := s.hist
	// Re-wrap the series labels to splice in le.
	base := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	for _, le := range histogramLE {
		labels := fmt.Sprintf("le=%q", fmtFloat(le))
		if base != "" {
			labels = base + "," + labels
		}
		n := h.CumulativeLE(time.Duration(le * float64(time.Second)))
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, labels, n); err != nil {
			return err
		}
	}
	labels := `le="+Inf"`
	if base != "" {
		labels = base + "," + labels
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, labels, h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, fmtFloat(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
