// Package obs is the observability layer: handshake span tracing, phase
// aggregation, and a small metrics registry with Prometheus text-format
// exposition.
//
// The package is a leaf — it imports only the standard library and
// internal/stats — so every layer of the stack (tls13 hooks, the harness
// drive loop, loadgen, the live server runtime) can feed it without import
// cycles. The tls13.Hooks seam is satisfied structurally: Tracer and
// PhaseHooks implement Span/Phase/Charge without obs importing tls13.
//
// Three consumers share the code here:
//
//   - pqbench phases: per-handshake Tracers collected into a Collector,
//     exported as JSONL and aggregated into a per-phase latency table.
//   - pqtls-server / pqbench live: a Registry of counters, gauges, and
//     log-bucketed latency histograms served as /metrics.
//   - pqtls-client -trace: a single Tracer aggregated into a mini-table.
package obs
