package obs

import "time"

// Metric family names PhaseHooks records into.
const (
	MetricPhaseSeconds = "pqtls_handshake_phase_seconds"
	MetricPubkeyOps    = "pqtls_pubkey_ops_total"
)

// PhaseHooks adapts a Registry to the tls13.Hooks seam (satisfied
// structurally — obs stays a leaf package): every top-level handshake phase
// is observed into a per-phase wall-clock latency histogram and every
// public-key operation increments a counter labeled by op and algorithm.
// Unlike a Tracer, a single PhaseHooks is shared across connections and is
// safe for concurrent use — per-phase state lives in the returned closures.
type PhaseHooks struct {
	reg *Registry
}

// NewPhaseHooks registers the phase metric families on reg and returns the
// hooks. Registering up front makes the families visible to a scrape before
// any traffic arrives.
func NewPhaseHooks(reg *Registry) *PhaseHooks {
	reg.Histogram(MetricPhaseSeconds, helpPhaseSeconds)
	reg.Counter(MetricPubkeyOps, helpPubkeyOps)
	return &PhaseHooks{reg: reg}
}

const (
	helpPhaseSeconds = "Wall-clock time spent in each handshake phase."
	helpPubkeyOps    = "Public-key operations performed, by operation and algorithm."
)

// Span is a no-op: library buckets are the perf.Profiler's job.
func (p *PhaseHooks) Span(lib string) func() { return func() {} }

// Phase times the phase into pqtls_handshake_phase_seconds{phase=...}.
// Closing is idempotent; out-of-order closes are inherently safe since each
// closure owns its own start time.
func (p *PhaseHooks) Phase(name string) func() {
	h := p.reg.Histogram(MetricPhaseSeconds, helpPhaseSeconds, "phase", name)
	start := time.Now()
	closed := false
	return func() {
		if closed {
			return
		}
		closed = true
		h.Observe(time.Since(start))
	}
}

// Charge counts the operation into pqtls_pubkey_ops_total{op,alg}.
func (p *PhaseHooks) Charge(op, alg string) {
	p.reg.Counter(MetricPubkeyOps, helpPubkeyOps, "op", op, "alg", alg).Inc()
}
