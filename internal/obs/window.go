package obs

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Window is one fixed-interval slice of a run: the counter deltas and the
// latency histogram of everything that happened in
// [Index·interval, (Index+1)·interval). Counters mirror loadgen.Result's
// partitioning exactly — Completed includes warmup completions, Warmup
// counts the subset discarded from the histogram, Resumed counts PSK
// resumptions among all completions — so summing a timeline's windows
// reproduces the run's end-of-run counters.
type Window struct {
	// Index is the absolute window number since the run's start. Merging is
	// index-exact: window 7 of one worker folds into window 7 of another, so
	// a run split across workers aggregates to the unsplit run's timeline.
	Index uint64

	Started, Completed, Failed uint64
	Warmup, Resumed            uint64

	// Errors buckets failures by class (live.Classify on the loadgen path).
	// nil until the window sees its first failure, keeping the success path
	// allocation-free.
	Errors map[string]uint64

	// Hist holds the window's post-warmup successful handshake latencies in
	// the same log-bucketed histogram the run total uses.
	Hist Histogram
}

// clone returns a deep copy (the histogram is an array value; only the
// error map needs duplication).
func (w *Window) clone() *Window {
	c := *w
	if w.Errors != nil {
		c.Errors = make(map[string]uint64, len(w.Errors))
		for k, v := range w.Errors {
			c.Errors[k] = v
		}
	}
	return &c
}

// merge folds o into w (indices must already match).
func (w *Window) merge(o *Window) {
	w.Started += o.Started
	w.Completed += o.Completed
	w.Failed += o.Failed
	w.Warmup += o.Warmup
	w.Resumed += o.Resumed
	for class, n := range o.Errors {
		if w.Errors == nil {
			w.Errors = make(map[string]uint64, len(o.Errors))
		}
		w.Errors[class] += n
	}
	w.Hist.Merge(&o.Hist)
}

// Timeline accumulates Windows at a fixed interval. It is
// clock-parameterized: callers pass each event's offset from the run's
// start, so a modeled (Simulate) run can feed virtual offsets that are a
// pure function of the arrival plan — making the whole timeline, and its
// digest, byte-deterministic across hosts, worker counts, and processes —
// while a live run feeds wall-clock offsets from one shared start instant.
//
// Windows are sparse: only intervals that saw an event exist, so an idle
// tail costs nothing and memory is O(active windows), independent of event
// count.
type Timeline struct {
	mu       sync.Mutex
	interval time.Duration
	windows  map[uint64]*Window
}

// NewTimeline returns an empty timeline with the given window interval
// (values <= 0 default to one second).
func NewTimeline(interval time.Duration) *Timeline {
	if interval <= 0 {
		interval = time.Second
	}
	return &Timeline{interval: interval, windows: make(map[uint64]*Window)}
}

// Interval returns the window interval.
func (t *Timeline) Interval() time.Duration { return t.interval }

// window returns (creating if needed) the window covering offset at.
// Callers hold t.mu.
func (t *Timeline) window(at time.Duration) *Window {
	if at < 0 {
		at = 0
	}
	idx := uint64(at / t.interval)
	w := t.windows[idx]
	if w == nil {
		w = &Window{Index: idx}
		t.windows[idx] = w
	}
	return w
}

// RecordStart counts one arrival dispatched at offset at.
func (t *Timeline) RecordStart(at time.Duration) {
	t.mu.Lock()
	t.window(at).Started++
	t.mu.Unlock()
}

// RecordComplete counts one successful handshake finishing at offset at
// with latency lat. warmup marks completions whose scheduled arrival fell
// inside the warmup period: they count as Completed (and Warmup) but stay
// out of the histogram, mirroring loadgen.Result.
func (t *Timeline) RecordComplete(at, lat time.Duration, resumed, warmup bool) {
	t.mu.Lock()
	w := t.window(at)
	w.Completed++
	if resumed {
		w.Resumed++
	}
	if warmup {
		w.Warmup++
	} else {
		w.Hist.Record(lat)
	}
	t.mu.Unlock()
}

// RecordFailure counts one failed handshake at offset at under the given
// error class.
func (t *Timeline) RecordFailure(at time.Duration, class string) {
	t.mu.Lock()
	w := t.window(at)
	w.Failed++
	if w.Errors == nil {
		w.Errors = make(map[string]uint64)
	}
	w.Errors[class]++
	t.mu.Unlock()
}

// Merge folds o into t, window-index-exact: counters add, error classes
// add, histograms merge bucket-wise. Because every operation is commutative
// and associative, merging N workers' timelines in any order reproduces the
// timeline one process recording all events would have built. Timelines
// with different intervals do not merge (their windows mean different
// things); that is an error, never a silent mix.
func (t *Timeline) Merge(o *Timeline) error {
	if o == nil || o == t {
		return nil
	}
	if o.interval != t.interval {
		return fmt.Errorf("obs: timeline interval mismatch: %v vs %v", t.interval, o.interval)
	}
	// Snapshot o first so the two locks are never held together.
	theirs := o.snapshot()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ow := range theirs {
		w := t.windows[ow.Index]
		if w == nil {
			t.windows[ow.Index] = ow.clone()
			continue
		}
		w.merge(ow)
	}
	return nil
}

// snapshot returns deep copies of the windows in ascending index order.
func (t *Timeline) snapshot() []*Window {
	t.mu.Lock()
	out := make([]*Window, 0, len(t.windows))
	for _, w := range t.windows {
		out = append(out, w.clone())
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Windows returns deep copies of the recorded windows in ascending index
// order.
func (t *Timeline) Windows() []Window {
	snap := t.snapshot()
	out := make([]Window, len(snap))
	for i, w := range snap {
		out[i] = *w
	}
	return out
}

// Clone returns an independent deep copy — the mid-run snapshot a progress
// reporter ships while recording continues.
func (t *Timeline) Clone() *Timeline {
	c := NewTimeline(t.interval)
	for _, w := range t.snapshot() {
		c.windows[w.Index] = w
	}
	return c
}

// Totals sums every window into one aggregate (Index 0): the end-of-run
// counters and full-run histogram a timeline implies.
func (t *Timeline) Totals() Window {
	var total Window
	for _, w := range t.snapshot() {
		total.merge(w)
	}
	return total
}

// Digest is a short hex fingerprint of the canonical binary encoding. In
// Simulate mode every recorded value is a pure function of the arrival
// plan, so a distributed run's merged timeline digest must equal the
// single-process digest — the check dist-coordinator -verify asserts.
func (t *Timeline) Digest() string {
	sum := sha256.Sum256(t.AppendBinary(nil))
	return fmt.Sprintf("%x", sum)[:16]
}
