package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"
)

// Canonical histogram encoding. The distributed loadgen protocol ships
// histograms between processes and the merged-result digest hashes them, so
// the byte layout is pinned (a golden test in internal/loadgen guards it):
//
//	u8  version (histCodecV1)
//	u64 n            observations
//	i64 sum, min, max (nanoseconds, exact)
//	u32 k            non-zero buckets
//	k × (u16 bucket index, u64 count), ascending index
//
// All integers big-endian. The sparse bucket list keeps an idle histogram at
// 30 bytes while staying exact: Merge of a decoded histogram is bucket-wise
// identical to merging the original.
const histCodecV1 = 1

// AppendBinary appends the canonical encoding of h to b.
func (h *Histogram) AppendBinary(b []byte) []byte {
	b = append(b, histCodecV1)
	b = binary.BigEndian.AppendUint64(b, h.n)
	b = binary.BigEndian.AppendUint64(b, uint64(h.sum))
	b = binary.BigEndian.AppendUint64(b, uint64(h.min))
	b = binary.BigEndian.AppendUint64(b, uint64(h.max))
	var k uint32
	for _, c := range h.counts {
		if c != 0 {
			k++
		}
	}
	b = binary.BigEndian.AppendUint32(b, k)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		b = binary.BigEndian.AppendUint16(b, uint16(i))
		b = binary.BigEndian.AppendUint64(b, c)
	}
	return b
}

// MarshalBinary returns the canonical encoding of h.
func (h *Histogram) MarshalBinary() ([]byte, error) {
	return h.AppendBinary(nil), nil
}

// UnmarshalBinary decodes into h (replacing its contents) and returns the
// bytes consumed, so the histogram can be embedded in a larger frame. It
// rejects version or structure mismatches rather than decoding garbage.
func (h *Histogram) UnmarshalBinary(b []byte) (int, error) {
	const head = 1 + 8 + 8 + 8 + 8 + 4
	if len(b) < head {
		return 0, fmt.Errorf("obs: histogram encoding truncated (%d bytes)", len(b))
	}
	if b[0] != histCodecV1 {
		return 0, fmt.Errorf("obs: unknown histogram encoding version %d", b[0])
	}
	*h = Histogram{}
	h.n = binary.BigEndian.Uint64(b[1:])
	h.sum = time.Duration(binary.BigEndian.Uint64(b[9:]))
	h.min = time.Duration(binary.BigEndian.Uint64(b[17:]))
	h.max = time.Duration(binary.BigEndian.Uint64(b[25:]))
	k := binary.BigEndian.Uint32(b[33:])
	n := head + int(k)*10
	if len(b) < n {
		return 0, fmt.Errorf("obs: histogram encoding truncated: %d buckets need %d bytes, have %d", k, n, len(b))
	}
	var total uint64
	prev := -1
	for j := 0; j < int(k); j++ {
		off := head + j*10
		i := int(binary.BigEndian.Uint16(b[off:]))
		c := binary.BigEndian.Uint64(b[off+2:])
		if i >= histBuckets || i <= prev || c == 0 {
			return 0, fmt.Errorf("obs: histogram encoding invalid at bucket entry %d (index %d, count %d)", j, i, c)
		}
		h.counts[i] = c
		total += c
		prev = i
	}
	if total != h.n {
		return 0, fmt.Errorf("obs: histogram bucket counts sum to %d, header says %d", total, h.n)
	}
	return n, nil
}

// histJSON is the JSON shape of a histogram: exact extremes and sum as
// nanoseconds, sparse buckets as [index, count] pairs in ascending order —
// the same information as the binary encoding, readable by external tooling.
type histJSON struct {
	N       uint64      `json:"n"`
	SumNS   int64       `json:"sum_ns"`
	MinNS   int64       `json:"min_ns"`
	MaxNS   int64       `json:"max_ns"`
	Buckets [][2]uint64 `json:"buckets"`
}

// MarshalJSON renders the histogram in the canonical JSON shape.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	j := histJSON{N: h.n, SumNS: int64(h.sum), MinNS: int64(h.min), MaxNS: int64(h.max)}
	for i, c := range h.counts {
		if c != 0 {
			j.Buckets = append(j.Buckets, [2]uint64{uint64(i), c})
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the canonical JSON shape, applying the same
// structural checks as the binary decoder.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var j histJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*h = Histogram{n: j.N, sum: time.Duration(j.SumNS), min: time.Duration(j.MinNS), max: time.Duration(j.MaxNS)}
	var total uint64
	prev := -1
	for _, e := range j.Buckets {
		i, c := int(e[0]), e[1]
		if i >= histBuckets || i <= prev || c == 0 {
			return fmt.Errorf("obs: histogram JSON invalid bucket [%d, %d]", i, c)
		}
		h.counts[i] = c
		total += c
		prev = i
	}
	if total != j.N {
		return fmt.Errorf("obs: histogram JSON bucket counts sum to %d, n says %d", total, j.N)
	}
	return nil
}
