package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"pqtls/internal/stats"
)

// PhaseStat summarizes one handshake phase on one endpoint across samples.
// Per-sample values are the *sum* of that phase's top-level (depth-0) spans
// within the sample — a phase that occurs per-record (record-write) or
// per-wait (flight-wait) contributes its total, so the per-endpoint phase
// sums add up to the endpoint's total busy+wait time.
type PhaseStat struct {
	Endpoint string
	Phase    string
	Samples  int
	P50      time.Duration
	P95      time.Duration
	Mean     time.Duration
}

// PhaseSums returns the per-phase summed durations of one trace's depth-0
// phase spans, plus first-seen phase order. Library (kind "lib") spans and
// nested phases are excluded — they overlap the top-level phases and would
// double count.
func PhaseSums(t *Tracer) (map[string]time.Duration, []string) {
	sums := map[string]time.Duration{}
	var order []string
	for _, s := range t.Spans() {
		if s.Kind != "phase" || s.Depth != 0 {
			continue
		}
		if _, ok := sums[s.Name]; !ok {
			order = append(order, s.Name)
		}
		sums[s.Name] += s.Dur()
	}
	return sums, order
}

// AggregatePhases reduces collected traces to per-(endpoint, phase)
// nearest-rank quantiles. A sample contributes to a phase only when the
// phase occurred in it (Samples records how many did). Rows are ordered
// client before server, then by first appearance within the endpoint.
func AggregatePhases(traces []*Tracer) []PhaseStat {
	type key struct{ endpoint, phase string }
	byKey := map[key][]time.Duration{}
	var order []key
	for _, endpoint := range []string{"client", "server"} {
		for _, t := range traces {
			if t.Meta().Endpoint != endpoint {
				continue
			}
			sums, phaseOrder := PhaseSums(t)
			for _, name := range phaseOrder {
				k := key{endpoint, name}
				if _, ok := byKey[k]; !ok {
					order = append(order, k)
				}
				byKey[k] = append(byKey[k], sums[name])
			}
		}
	}
	out := make([]PhaseStat, 0, len(order))
	for _, k := range order {
		xs := byKey[k]
		qs := stats.Quantiles(xs, 0.50, 0.95)
		out = append(out, PhaseStat{
			Endpoint: k.endpoint,
			Phase:    k.phase,
			Samples:  len(xs),
			P50:      qs[0],
			P95:      qs[1],
			Mean:     stats.Mean(xs),
		})
	}
	return out
}

// usCell renders a duration as fractional milliseconds with microsecond
// resolution, matching the harness tables.
func usCell(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1e3)
}

// WritePhaseTable renders aggregated phase stats as an aligned table with
// millisecond columns.
func WritePhaseTable(w io.Writer, sts []PhaseStat) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENDPOINT\tPHASE\tN\tP50(ms)\tP95(ms)\tMEAN(ms)")
	for _, st := range sts {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\n",
			st.Endpoint, st.Phase, st.Samples, usCell(st.P50), usCell(st.P95), usCell(st.Mean))
	}
	return tw.Flush()
}
