package obs

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// goldenTimeline is the fixture the byte-pin, roundtrip, and artifact tests
// share: three windows, a warmup completion, a resumption, and two error
// classes, so every codec branch is exercised.
func goldenTimeline() *Timeline {
	tl := NewTimeline(100 * time.Millisecond)
	tl.RecordStart(5 * time.Millisecond)
	tl.RecordStart(30 * time.Millisecond)
	tl.RecordStart(150 * time.Millisecond)
	tl.RecordStart(160 * time.Millisecond)
	tl.RecordStart(210 * time.Millisecond)
	tl.RecordComplete(35*time.Millisecond, 800*time.Nanosecond, false, true) // warmup: counted, not histogrammed
	tl.RecordComplete(160*time.Millisecond, time.Millisecond, true, false)
	tl.RecordComplete(170*time.Millisecond, 40*time.Millisecond, false, false)
	tl.RecordFailure(210*time.Millisecond, "dial")
	tl.RecordFailure(215*time.Millisecond, "timeout")
	tl.RecordFailure(230*time.Millisecond, "dial")
	return tl
}

// TestTimelineCodecGolden pins the canonical binary encoding byte for byte.
// If this fails because the layout changed on purpose, that is a timeline
// codec version bump: update timelineCodecV1's consumers (the dist protocol
// version among them) and regenerate the constant.
func TestTimelineCodecGolden(t *testing.T) {
	t.Parallel()
	const goldenHex = "010000000005f5e100000000030000000000000000000000000000000200000000000000010000000000000000000000000000000100000000000000000000000001000000000000000000000000000000000000000000000000000000000000000000000000000000000000000100000000000000020000000000000002000000000000000000000000000000000000000000000001000000000100000000000000020000000002719c4000000000000f42400000000002625a000000000200b00000000000000001010e00000000000000010000000000000002000000000000000100000000000000000000000000000003000000000000000000000000000000000000000200046469616c0000000000000002000774696d656f7574000000000000000101000000000000000000000000000000000000000000000000000000000000000000000000"
	enc := goldenTimeline().AppendBinary(nil)
	if got := hex.EncodeToString(enc); got != goldenHex {
		t.Fatalf("timeline encoding changed:\n got %s", got)
	}
}

func TestTimelineCodecRoundTrip(t *testing.T) {
	t.Parallel()
	tl := goldenTimeline()
	enc := tl.AppendBinary(nil)

	var dec Timeline
	n, err := dec.UnmarshalBinary(enc)
	if err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if dec.Interval() != tl.Interval() {
		t.Fatalf("interval %v, want %v", dec.Interval(), tl.Interval())
	}
	if !reflect.DeepEqual(dec.Windows(), tl.Windows()) {
		t.Fatalf("windows diverge:\n got %+v\nwant %+v", dec.Windows(), tl.Windows())
	}
	if dec.Digest() != tl.Digest() {
		t.Fatalf("digest %s, want %s", dec.Digest(), tl.Digest())
	}

	// Self-delimiting: trailing bytes belong to the caller.
	withTail := append(append([]byte{}, enc...), 0xAA, 0xBB)
	var dec2 Timeline
	n2, err := dec2.UnmarshalBinary(withTail)
	if err != nil || n2 != len(enc) {
		t.Fatalf("embedded decode: consumed %d (err %v), want %d", n2, err, len(enc))
	}

	// JSON roundtrip.
	js, err := json.Marshal(tl)
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	var dec3 Timeline
	if err := json.Unmarshal(js, &dec3); err != nil {
		t.Fatalf("UnmarshalJSON: %v", err)
	}
	if !reflect.DeepEqual(dec3.Windows(), tl.Windows()) || dec3.Digest() != tl.Digest() {
		t.Fatalf("JSON roundtrip diverges: digest %s, want %s", dec3.Digest(), tl.Digest())
	}
}

// TestTimelineCodecInvalid fuzzes the decoder with truncation at every byte
// boundary and structural corruption; none may decode, none may panic.
func TestTimelineCodecInvalid(t *testing.T) {
	t.Parallel()
	enc := goldenTimeline().AppendBinary(nil)
	for i := 0; i < len(enc); i++ {
		var dec Timeline
		if _, err := dec.UnmarshalBinary(enc[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", i)
		}
	}
	bad := append([]byte{}, enc...)
	bad[0] = 99
	var dec Timeline
	if _, err := dec.UnmarshalBinary(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version decoded: %v", err)
	}
	// Zero interval is structurally invalid.
	bad = append([]byte{}, enc...)
	for i := 1; i < 9; i++ {
		bad[i] = 0
	}
	if _, err := dec.UnmarshalBinary(bad); err == nil || !strings.Contains(err.Error(), "interval") {
		t.Fatalf("zero interval decoded: %v", err)
	}
	// Break window index ascending order: the second window's index lives
	// right after the first window's full encoding.
	one := NewTimeline(100 * time.Millisecond)
	one.RecordStart(5 * time.Millisecond)
	firstLen := len(one.AppendBinary(nil))
	bad = append([]byte{}, enc...)
	for i := 0; i < 8; i++ {
		bad[firstLen+i] = 0 // index 0 again: not ascending
	}
	if _, err := dec.UnmarshalBinary(bad); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("non-ascending windows decoded: %v", err)
	}
}

// TestTimelineMergeDifferential is the exactness bar for fleet rollups: a
// plan's events split round-robin across N synthetic workers, merged in any
// order, reproduce the unsplit timeline byte for byte.
func TestTimelineMergeDifferential(t *testing.T) {
	t.Parallel()
	const interval = 50 * time.Millisecond
	type event struct {
		at, lat time.Duration
		fail    bool
		class   string
		resumed bool
		warmup  bool
	}
	var events []event
	for i := 0; i < 500; i++ {
		e := event{
			at:  time.Duration(i) * 3 * time.Millisecond,
			lat: time.Duration(i%37+1) * 173 * time.Microsecond,
		}
		switch i % 11 {
		case 3:
			e.fail, e.class = true, "dial"
		case 7:
			e.fail, e.class = true, "timeout"
		}
		e.resumed = i%2 == 0
		e.warmup = e.at < 100*time.Millisecond
		events = append(events, e)
	}
	record := func(tl *Timeline, e event) {
		tl.RecordStart(e.at)
		if e.fail {
			tl.RecordFailure(e.at+e.lat, e.class)
		} else {
			tl.RecordComplete(e.at+e.lat, e.lat, e.resumed, e.warmup)
		}
	}
	unsplit := NewTimeline(interval)
	for _, e := range events {
		record(unsplit, e)
	}
	for _, workers := range []int{2, 3, 7} {
		parts := make([]*Timeline, workers)
		for w := range parts {
			parts[w] = NewTimeline(interval)
		}
		for i, e := range events {
			record(parts[i%workers], e)
		}
		// Merge in reverse order too: commutativity is part of the claim.
		merged := NewTimeline(interval)
		for i := len(parts) - 1; i >= 0; i-- {
			if err := merged.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := merged.Digest(), unsplit.Digest(); got != want {
			t.Fatalf("%d workers: merged digest %s, unsplit %s", workers, got, want)
		}
		if !bytes.Equal(merged.AppendBinary(nil), unsplit.AppendBinary(nil)) {
			t.Fatalf("%d workers: merged encoding diverges from unsplit", workers)
		}
	}
}

func TestTimelineMergeIntervalMismatch(t *testing.T) {
	t.Parallel()
	a := NewTimeline(time.Second)
	b := NewTimeline(2 * time.Second)
	if err := a.Merge(b); err == nil {
		t.Fatal("interval mismatch merged silently")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if err := a.Merge(a); err != nil {
		t.Fatalf("self merge: %v", err)
	}
}

func TestTimelineTotals(t *testing.T) {
	t.Parallel()
	tl := goldenTimeline()
	tot := tl.Totals()
	if tot.Started != 5 || tot.Completed != 3 || tot.Failed != 3 ||
		tot.Warmup != 1 || tot.Resumed != 1 {
		t.Fatalf("totals %+v", tot)
	}
	if tot.Errors["dial"] != 2 || tot.Errors["timeout"] != 1 {
		t.Fatalf("error totals %v", tot.Errors)
	}
	if tot.Hist.Count() != 2 {
		t.Fatalf("histogram count %d, want 2 (warmup excluded)", tot.Hist.Count())
	}
}

func TestTimelineJSONLRoundTrip(t *testing.T) {
	t.Parallel()
	tl := goldenTimeline()
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTimelineJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != tl.Digest() {
		t.Fatalf("JSONL roundtrip digest %s, want %s", got.Digest(), tl.Digest())
	}
	// A tampered window must fail the header digest check.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	lines[1] = strings.Replace(lines[1], `"started":2`, `"started":3`, 1)
	if _, err := ReadTimelineJSONL(strings.NewReader(strings.Join(lines, "\n"))); err == nil ||
		!strings.Contains(err.Error(), "digest") {
		t.Fatalf("tampered JSONL accepted: %v", err)
	}
	// A wrong schema tag is rejected before any window parses.
	badHdr := strings.Replace(lines[0], TimelineSchema, "other/v9", 1)
	if _, err := ReadTimelineJSONL(strings.NewReader(badHdr)); err == nil ||
		!strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestTimelineCSV(t *testing.T) {
	t.Parallel()
	tl := goldenTimeline()
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != TimelineCSVHeader {
		t.Fatalf("CSV header %q", lines[0])
	}
	if len(lines) != 1+3 {
		t.Fatalf("%d CSV rows, want 3", len(lines)-1)
	}
	// Window 0: 2 started, 1 completed (warmup) → inflight 1.
	if !strings.HasPrefix(lines[1], "0,0,2,1,0,0,1,1,") {
		t.Fatalf("window 0 row %q", lines[1])
	}
	// Window 2: cumulative 5 started, 3 completed, 3 failed → inflight -1
	// never happens in real runs but the derivation must stay arithmetic:
	// here 5-3-3 = -1.
	if !strings.HasPrefix(lines[3], "2,200,1,0,3,0,0,-1,") {
		t.Fatalf("window 2 row %q", lines[3])
	}
}

// TestTimelineRecordNoAlloc pins the hot recording path at zero
// allocations once a window exists — the property the gated
// obs/window-record microbench kernel enforces in CI.
func TestTimelineRecordNoAlloc(t *testing.T) {
	tl := NewTimeline(100 * time.Millisecond)
	tl.RecordStart(time.Millisecond)
	tl.RecordComplete(2*time.Millisecond, time.Millisecond, true, false)
	avg := testing.AllocsPerRun(1000, func() {
		tl.RecordStart(time.Millisecond)
		tl.RecordComplete(2*time.Millisecond, time.Millisecond, false, false)
	})
	if avg != 0 {
		t.Fatalf("record path allocates %.1f/op, want 0", avg)
	}
}

// TestTimelineCloneIndependence: a clone taken mid-run must not observe
// later records.
func TestTimelineCloneIndependence(t *testing.T) {
	t.Parallel()
	tl := NewTimeline(time.Second)
	tl.RecordStart(0)
	snap := tl.Clone()
	tl.RecordStart(0)
	tl.RecordFailure(time.Second, "dial")
	if tot := snap.Totals(); tot.Started != 1 || tot.Failed != 0 {
		t.Fatalf("clone observed later records: %+v", tot)
	}
	if tot := tl.Totals(); tot.Started != 2 || tot.Failed != 1 {
		t.Fatalf("original lost records: %+v", tot)
	}
}
