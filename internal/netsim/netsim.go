// Package netsim provides the discrete-event network substrate of the
// measurement testbed: a two-party full-duplex link with netem-style loss,
// delay, and rate emulation, a passive optical-tap observation point in the
// middle (the paper's timestamper node), and wire-faithful packet framing
// (Ethernet/IPv4/TCP) so byte counts match what a pcap would show.
//
// Loss is location-aware: each direction passes two emulator interfaces,
// one on the sending host's side of the tap and one on the receiving
// host's side. A packet dropped at the sender-side emulator (the default,
// matching tc-netem on the sending host's egress interface) never reaches
// the tap; a packet dropped at the receiver-side emulator passed the tap
// first and shows up in its pcap even though it is never delivered. The
// tap callback and the TapPackets/TapBytes counters see exactly the frames
// a capture at the midpoint would contain.
package netsim

import (
	"math/rand"
	"time"
)

// Direction of travel on the link.
type Direction int

const (
	ClientToServer Direction = iota
	ServerToClient
)

// DropLocation selects which emulator interface discards lost packets,
// relative to the passive tap in the middle of the link.
type DropLocation int

const (
	// DropSenderSide drops at the sending host's emulator, before the
	// midpoint: the tap never observes the packet. This is the default and
	// matches tc-netem configured on each host's egress interface.
	DropSenderSide DropLocation = iota
	// DropReceiverSide drops at the receiving host's emulator, after the
	// midpoint: the tap observes the packet even though it never arrives.
	DropReceiverSide
	// DropSplit picks one of the two emulators uniformly per dropped
	// packet (impairment on both interfaces).
	DropSplit
)

// LinkConfig is a netem-style emulation profile. The zero value of Loss /
// Rate means no loss / unlimited rate.
type LinkConfig struct {
	Name string
	// Loss is the per-packet drop probability, applied independently in
	// each direction (tc-netem on both interfaces).
	Loss float64
	// DropAt locates lost packets relative to the tap (default: sender
	// side, i.e. dropped before the tap sees them).
	DropAt DropLocation
	// RTT is the path round-trip propagation time.
	RTT time.Duration
	// Rate is the link rate in bits per second (0 = unlimited).
	Rate int64
	// MTU caps the IP packet size; 1500 unless overridden.
	MTU int
}

// The emulation scenarios of the paper's Table 4 (Appendix A).
var (
	ScenarioNone         = LinkConfig{Name: "none"}
	ScenarioHighLoss     = LinkConfig{Name: "high-loss", Loss: 0.10}
	ScenarioLowBandwidth = LinkConfig{Name: "low-bandwidth", Rate: 1_000_000}
	ScenarioHighDelay    = LinkConfig{Name: "high-delay", RTT: time.Second}
	// LTE-M over 15 km (Dawaliby et al.): 10% loss, 200 ms RTT, 1 Mbit/s.
	ScenarioLTEM = LinkConfig{Name: "lte-m", Loss: 0.10, RTT: 200 * time.Millisecond, Rate: 1_000_000}
	// Operational 5G (Xu et al.): 4% loss, 44 ms RTT, 880 Mbit/s.
	Scenario5G = LinkConfig{Name: "5g", Loss: 0.04, RTT: 44 * time.Millisecond, Rate: 880_000_000}
)

// Scenarios lists all Table 4 columns in presentation order.
func Scenarios() []LinkConfig {
	return []LinkConfig{ScenarioNone, ScenarioHighLoss, ScenarioLowBandwidth,
		ScenarioHighDelay, ScenarioLTEM, Scenario5G}
}

func (c LinkConfig) mtu() int {
	if c.MTU == 0 {
		return 1500
	}
	return c.MTU
}

// Transmission is the fate of one packet offered to the link.
type Transmission struct {
	// SentAt is when the sender handed the packet to the link.
	SentAt time.Duration
	// TapAt is when the packet passed the optical tap (midpoint); only
	// meaningful when PassedTap is true.
	TapAt time.Duration
	// ArriveAt is when the packet reached the far end.
	ArriveAt time.Duration
	// Dropped reports netem loss; a dropped packet never arrives.
	Dropped bool
	// PassedTap reports whether the tap observed the packet: every
	// delivered packet, plus packets dropped at the receiver-side
	// emulator (after the midpoint). Sender-side drops never reach it.
	PassedTap bool
}

// TapFunc observes packets passing the tap, before knowing their fate.
type TapFunc func(dir Direction, tapAt time.Duration, frame []byte)

// Link is the emulated full-duplex fiber pair with per-direction
// serialization queues.
type Link struct {
	cfg       LinkConfig
	rng       *rand.Rand
	busyUntil [2]time.Duration
	tap       TapFunc

	// Packet and byte counters per direction, counting every frame the
	// sender put on the wire (including retransmissions and frames lost
	// in flight) — what a pcap on the sending host would show.
	Packets [2]int
	Bytes   [2]int
	// Tap-side counters: only frames that actually passed the midpoint —
	// what the timestamper's pcap would show. Equal to Packets/Bytes on a
	// loss-free link and under DropReceiverSide.
	TapPackets [2]int
	TapBytes   [2]int
}

// NewLink creates a link with a deterministic loss process per seed.
func NewLink(cfg LinkConfig, seed int64) *Link {
	return &Link{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// SetTap installs the passive observer.
func (l *Link) SetTap(tap TapFunc) { l.tap = tap }

// Config returns the link's emulation profile.
func (l *Link) Config() LinkConfig { return l.cfg }

// MSS is the TCP payload capacity per packet on this link.
func (l *Link) MSS() int { return l.cfg.mtu() - 40 /* IPv4 + TCP */ }

// Transmit offers a frame of the given total wire size to the link at time
// now. It returns the timing of the packet's journey.
func (l *Link) Transmit(dir Direction, now time.Duration, frame []byte) Transmission {
	size := len(frame)
	tx := Transmission{SentAt: now}
	start := now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	ser := time.Duration(0)
	if l.cfg.Rate > 0 {
		ser = time.Duration(int64(size) * 8 * int64(time.Second) / l.cfg.Rate)
	}
	l.busyUntil[dir] = start + ser
	owd := l.cfg.RTT / 2
	tx.TapAt = start + ser + owd/2
	tx.ArriveAt = start + ser + owd
	tx.Dropped = l.cfg.Loss > 0 && l.rng.Float64() < l.cfg.Loss
	afterTap := false
	if tx.Dropped {
		switch l.cfg.DropAt {
		case DropReceiverSide:
			afterTap = true
		case DropSplit:
			afterTap = l.rng.Float64() < 0.5
		}
	}
	tx.PassedTap = !tx.Dropped || afterTap

	l.Packets[dir]++
	l.Bytes[dir] += size
	if tx.PassedTap {
		l.TapPackets[dir]++
		l.TapBytes[dir] += size
		if l.tap != nil {
			l.tap(dir, tx.TapAt, frame)
		}
	}
	return tx
}
