package netsim

import "encoding/binary"

// Wire-faithful frame construction. Data volumes in the paper's Table 2 are
// measured on the wire (pcap), so emulated packets carry real
// Ethernet/IPv4/TCP headers with correct lengths and checksums.

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << 0
	FlagSYN uint8 = 1 << 1
	FlagRST uint8 = 1 << 2
	FlagPSH uint8 = 1 << 3
	FlagACK uint8 = 1 << 4
)

// Endpoint addressing for the two-node testbed (Figure 2).
var (
	clientMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	serverMAC = [6]byte{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	clientIP  = [4]byte{10, 0, 0, 1}
	serverIP  = [4]byte{10, 0, 0, 2}
)

const (
	clientPort = 53210
	serverPort = 443
	// synOptionBytes mirrors Linux SYN options (MSS, SACK-permitted,
	// timestamps, window scale).
	synOptionBytes = 20
	// dataOptionBytes mirrors the TCP timestamp option on established
	// connections.
	dataOptionBytes = 12
)

// FrameSpec describes one TCP segment to put on the wire.
type FrameSpec struct {
	Dir     Direction
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Payload []byte
}

// HeaderOverhead returns the per-packet wire overhead for a segment with
// the given flags (Ethernet + IPv4 + TCP incl. options).
func HeaderOverhead(flags uint8) int {
	if flags&FlagSYN != 0 {
		return 14 + 20 + 20 + synOptionBytes
	}
	return 14 + 20 + 20 + dataOptionBytes
}

// BuildFrame renders the segment as Ethernet/IPv4/TCP bytes.
func BuildFrame(spec FrameSpec) []byte {
	optLen := dataOptionBytes
	if spec.Flags&FlagSYN != 0 {
		optLen = synOptionBytes
	}
	tcpLen := 20 + optLen + len(spec.Payload)
	ipLen := 20 + tcpLen
	frame := make([]byte, 14+ipLen)

	// Ethernet.
	srcMAC, dstMAC := clientMAC, serverMAC
	if spec.Dir == ServerToClient {
		srcMAC, dstMAC = serverMAC, clientMAC
	}
	copy(frame[0:6], dstMAC[:])
	copy(frame[6:12], srcMAC[:])
	binary.BigEndian.PutUint16(frame[12:], 0x0800) // IPv4

	// IPv4.
	ip := frame[14:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:], uint16(ipLen))
	ip[8] = 64 // TTL
	ip[9] = 6  // TCP
	srcIP, dstIP := clientIP, serverIP
	if spec.Dir == ServerToClient {
		srcIP, dstIP = serverIP, clientIP
	}
	copy(ip[12:16], srcIP[:])
	copy(ip[16:20], dstIP[:])
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:20]))

	// TCP.
	tcp := ip[20:]
	srcPort, dstPort := uint16(clientPort), uint16(serverPort)
	if spec.Dir == ServerToClient {
		srcPort, dstPort = serverPort, clientPort
	}
	binary.BigEndian.PutUint16(tcp[0:], srcPort)
	binary.BigEndian.PutUint16(tcp[2:], dstPort)
	binary.BigEndian.PutUint32(tcp[4:], spec.Seq)
	binary.BigEndian.PutUint32(tcp[8:], spec.Ack)
	tcp[12] = uint8((20 + optLen) / 4 << 4) // data offset
	tcp[13] = spec.Flags
	binary.BigEndian.PutUint16(tcp[14:], 0xFFFF) // window
	// Options: NOP-padded timestamp (and MSS etc. on SYN); content is
	// irrelevant to the measurements, length is what matters.
	for i := 0; i < optLen; i++ {
		tcp[20+i] = 0x01 // NOP
	}
	copy(tcp[20+optLen:], spec.Payload)
	return frame
}

// ipChecksum is the RFC 791 header checksum.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
