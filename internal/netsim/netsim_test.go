package netsim

import (
	"testing"
	"time"
)

func TestScenarioParameters(t *testing.T) {
	t.Parallel()
	// Table 4's footnotes pin these values.
	if ScenarioLTEM.Loss != 0.10 || ScenarioLTEM.RTT != 200*time.Millisecond || ScenarioLTEM.Rate != 1_000_000 {
		t.Errorf("LTE-M parameters wrong: %+v", ScenarioLTEM)
	}
	if Scenario5G.Loss != 0.04 || Scenario5G.RTT != 44*time.Millisecond || Scenario5G.Rate != 880_000_000 {
		t.Errorf("5G parameters wrong: %+v", Scenario5G)
	}
	if len(Scenarios()) != 6 {
		t.Errorf("want 6 scenarios (Table 4 columns), got %d", len(Scenarios()))
	}
}

func TestTransmitTiming(t *testing.T) {
	t.Parallel()
	link := NewLink(LinkConfig{RTT: 100 * time.Millisecond, Rate: 8_000_000}, 1) // 1 MB/s
	frame := make([]byte, 1000)
	tx := link.Transmit(ClientToServer, 0, frame)
	// Serialization: 1000 B at 1 MB/s = 1 ms; OWD 50 ms; tap at midpoint.
	if tx.ArriveAt != 51*time.Millisecond {
		t.Errorf("arrival %v, want 51ms", tx.ArriveAt)
	}
	if tx.TapAt != 26*time.Millisecond {
		t.Errorf("tap %v, want 26ms", tx.TapAt)
	}
	// A second frame queues behind the first (FIFO serialization).
	tx2 := link.Transmit(ClientToServer, 0, frame)
	if tx2.ArriveAt != 52*time.Millisecond {
		t.Errorf("queued arrival %v, want 52ms", tx2.ArriveAt)
	}
	// The reverse direction has its own queue.
	tx3 := link.Transmit(ServerToClient, 0, frame)
	if tx3.ArriveAt != 51*time.Millisecond {
		t.Errorf("reverse arrival %v, want 51ms", tx3.ArriveAt)
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	t.Parallel()
	count := func(seed int64) int {
		link := NewLink(LinkConfig{Loss: 0.5}, seed)
		drops := 0
		for i := 0; i < 100; i++ {
			if link.Transmit(ClientToServer, 0, make([]byte, 100)).Dropped {
				drops++
			}
		}
		return drops
	}
	if count(42) != count(42) {
		t.Error("same seed produced different loss patterns")
	}
	if c := count(1); c < 30 || c > 70 {
		t.Errorf("50%% loss dropped %d/100", c)
	}
	if count(7) == 0 {
		t.Error("loss process never dropped")
	}
}

func TestCounters(t *testing.T) {
	t.Parallel()
	link := NewLink(LinkConfig{Loss: 1.0}, 1) // even dropped frames are counted (pcap-style)
	link.Transmit(ClientToServer, 0, make([]byte, 500))
	if link.Packets[ClientToServer] != 1 || link.Bytes[ClientToServer] != 500 {
		t.Errorf("counters: %d pkts %d bytes", link.Packets[ClientToServer], link.Bytes[ClientToServer])
	}
}

func TestBuildFrameStructure(t *testing.T) {
	t.Parallel()
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	frame := BuildFrame(FrameSpec{Dir: ClientToServer, Seq: 100, Ack: 200, Flags: FlagACK | FlagPSH, Payload: payload})
	if len(frame) != 14+20+20+dataOptionBytes+len(payload) {
		t.Fatalf("frame length %d", len(frame))
	}
	// EtherType IPv4.
	if frame[12] != 0x08 || frame[13] != 0x00 {
		t.Error("wrong EtherType")
	}
	// IPv4 total length covers everything after Ethernet.
	ipLen := int(frame[16])<<8 | int(frame[17])
	if ipLen != len(frame)-14 {
		t.Errorf("IP length %d, want %d", ipLen, len(frame)-14)
	}
	// Header checksum verifies (sums to 0xFFFF with the stored checksum).
	var sum uint32
	ip := frame[14:34]
	for i := 0; i < 20; i += 2 {
		sum += uint32(ip[i])<<8 | uint32(ip[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	if sum != 0xFFFF {
		t.Errorf("IPv4 checksum does not verify (sum %#x)", sum)
	}
	// SYN frames carry the longer option block.
	syn := BuildFrame(FrameSpec{Dir: ClientToServer, Flags: FlagSYN})
	if len(syn) != 14+20+20+synOptionBytes {
		t.Errorf("SYN frame length %d", len(syn))
	}
	if HeaderOverhead(FlagSYN) != len(syn) {
		t.Error("HeaderOverhead(SYN) inconsistent with BuildFrame")
	}
}

// Sender-side drops (the default) happen before the midpoint: the tap must
// not observe them, and the tap counters must exclude them, while the
// sender-side pcap counters still include them.
func TestDropSenderSideInvisibleToTap(t *testing.T) {
	t.Parallel()
	link := NewLink(LinkConfig{Loss: 1.0}, 1)
	tapped := 0
	link.SetTap(func(Direction, time.Duration, []byte) { tapped++ })
	tx := link.Transmit(ClientToServer, 0, make([]byte, 500))
	if !tx.Dropped {
		t.Fatal("Loss 1.0 did not drop")
	}
	if tx.PassedTap {
		t.Error("sender-side drop reported PassedTap")
	}
	if tapped != 0 {
		t.Error("tap observed a packet dropped before the midpoint")
	}
	if link.Packets[ClientToServer] != 1 || link.TapPackets[ClientToServer] != 0 {
		t.Errorf("counters: sender %d tap %d, want 1 and 0",
			link.Packets[ClientToServer], link.TapPackets[ClientToServer])
	}
	if link.TapBytes[ClientToServer] != 0 {
		t.Errorf("tap bytes %d, want 0", link.TapBytes[ClientToServer])
	}
}

// Receiver-side drops pass the tap first: observed, counted, not delivered.
func TestDropReceiverSideObservedByTap(t *testing.T) {
	t.Parallel()
	link := NewLink(LinkConfig{Loss: 1.0, DropAt: DropReceiverSide}, 1)
	tapped := 0
	link.SetTap(func(Direction, time.Duration, []byte) { tapped++ })
	tx := link.Transmit(ClientToServer, 0, make([]byte, 500))
	if !tx.Dropped {
		t.Fatal("Loss 1.0 did not drop")
	}
	if !tx.PassedTap {
		t.Error("receiver-side drop did not report PassedTap")
	}
	if tapped != 1 {
		t.Errorf("tap saw %d packets, want 1", tapped)
	}
	if link.TapPackets[ClientToServer] != 1 || link.TapBytes[ClientToServer] != 500 {
		t.Errorf("tap counters: %d pkts %d bytes, want 1 and 500",
			link.TapPackets[ClientToServer], link.TapBytes[ClientToServer])
	}
}

// DropSplit picks a side per dropped packet, deterministically per seed.
func TestDropSplitDeterministic(t *testing.T) {
	t.Parallel()
	run := func(seed int64) (before, after int) {
		link := NewLink(LinkConfig{Loss: 1.0, DropAt: DropSplit}, seed)
		for i := 0; i < 200; i++ {
			if link.Transmit(ClientToServer, 0, make([]byte, 100)).PassedTap {
				after++
			} else {
				before++
			}
		}
		return
	}
	b1, a1 := run(3)
	b2, a2 := run(3)
	if b1 != b2 || a1 != a2 {
		t.Error("DropSplit not deterministic per seed")
	}
	if b1 == 0 || a1 == 0 {
		t.Errorf("DropSplit never used one side: before=%d after=%d", b1, a1)
	}
}

// On a loss-free link the tap counters match the sender-side counters.
func TestTapCountersMatchWithoutLoss(t *testing.T) {
	t.Parallel()
	link := NewLink(LinkConfig{}, 1)
	for i := 0; i < 5; i++ {
		link.Transmit(ServerToClient, 0, make([]byte, 100))
	}
	if link.TapPackets[ServerToClient] != link.Packets[ServerToClient] ||
		link.TapBytes[ServerToClient] != link.Bytes[ServerToClient] {
		t.Error("tap counters diverge from sender counters on loss-free link")
	}
}
