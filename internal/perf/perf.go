// Package perf is the white-box profiling substrate standing in for Linux
// perf (see DESIGN.md substitution #7): instead of sampling stacks, code
// regions are attributed directly to the "shared object" buckets the paper
// groups by — libcrypto, libssl, kernel, libc, ixgbe, python — and the
// profiler reports per-handshake CPU cost and the per-library distribution
// of Table 3.
package perf

import (
	"sort"
	"time"
)

// The library buckets of the paper's Table 3.
const (
	LibCrypto = "libcrypto"
	LibSSL    = "libssl"
	Kernel    = "kernel"
	LibC      = "libc"
	Ixgbe     = "ixgbe"
	Python    = "python"
)

// Buckets lists all buckets in the paper's presentation order.
func Buckets() []string {
	return []string{LibCrypto, Kernel, LibSSL, LibC, Ixgbe, Python}
}

// Profiler accumulates CPU time per bucket for one endpoint. It is not
// safe for concurrent use; each simulated endpoint owns one.
type Profiler struct {
	spans map[string]time.Duration
	total time.Duration
	open  int
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{spans: map[string]time.Duration{}}
}

// Span opens a region attributed to lib; call the returned func to close
// it. Closing is idempotent — error paths in the handshake state machines
// can run closers out of LIFO order or twice, which previously corrupted
// the open-region count. Part of the tls13.Hooks implementation.
func (p *Profiler) Span(lib string) func() {
	start := time.Now()
	p.open++
	closed := false
	return func() {
		if closed {
			return
		}
		closed = true
		p.open--
		p.spans[lib] += time.Since(start)
	}
}

// Open returns the number of currently open spans (test hook: it must
// return to zero however the closers were ordered).
func (p *Profiler) Open() int { return p.open }

// Phase is a no-op: protocol-phase decomposition is the obs.Tracer's job;
// the profiler only buckets by library. Part of the tls13.Hooks
// implementation.
func (p *Profiler) Phase(name string) func() { return func() {} }

// Charge is a no-op (the Meter owns cost accounting). Part of the
// tls13.Hooks implementation.
func (p *Profiler) Charge(op, alg string) {}

// Attribute adds a known duration to a bucket directly (used for modeled
// costs such as per-packet kernel and driver work).
func (p *Profiler) Attribute(lib string, d time.Duration) {
	p.spans[lib] += d
}

// AddTotal records wall time of a whole endpoint step; the part not covered
// by spans is attributed to libc (memory management, formatting, misc).
func (p *Profiler) AddTotal(d time.Duration) {
	p.total += d
}

// Merge folds another profiler's accumulated spans and total into p. The
// campaign engine gives each concurrent sample its own profiler and merges
// them in sample order afterwards.
func (p *Profiler) Merge(o *Profiler) {
	if o == nil {
		return
	}
	for lib, d := range o.spans {
		p.spans[lib] += d
	}
	p.total += o.total
}

// Snapshot freezes the profile: per-bucket durations and the total.
type Snapshot struct {
	Spans map[string]time.Duration
	Total time.Duration
}

// Snapshot computes the profile, assigning unattributed measured time to
// libc. The returned snapshot is independent of the profiler.
func (p *Profiler) Snapshot() Snapshot {
	out := Snapshot{Spans: map[string]time.Duration{}, Total: p.total}
	var attributed time.Duration
	for lib, d := range p.spans {
		out.Spans[lib] = d
		attributed += d
	}
	if p.total > attributed {
		out.Spans[LibC] += p.total - attributed
	} else {
		out.Total = attributed
	}
	return out
}

// Distribution returns the per-bucket shares (0..1), largest first, as
// (bucket, share) pairs.
func (s Snapshot) Distribution() []BucketShare {
	var total time.Duration
	for _, d := range s.Spans {
		total += d
	}
	if total == 0 {
		return nil
	}
	out := make([]BucketShare, 0, len(s.Spans))
	for lib, d := range s.Spans {
		out = append(out, BucketShare{Lib: lib, Share: float64(d) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Lib < out[j].Lib
	})
	return out
}

// BucketShare is one library's share of the endpoint's CPU time.
type BucketShare struct {
	Lib   string
	Share float64
}

// Reset clears the profile for the next measurement period.
func (p *Profiler) Reset() {
	p.spans = map[string]time.Duration{}
	p.total = 0
}
