package perf

import (
	"testing"
	"time"
)

func TestSpanAttribution(t *testing.T) {
	t.Parallel()
	p := NewProfiler()
	end := p.Span(LibCrypto)
	time.Sleep(2 * time.Millisecond)
	end()
	s := p.Snapshot()
	if s.Spans[LibCrypto] < 2*time.Millisecond {
		t.Errorf("libcrypto span %v, want >= 2ms", s.Spans[LibCrypto])
	}
}

func TestUnattributedGoesToLibc(t *testing.T) {
	t.Parallel()
	p := NewProfiler()
	p.Attribute(LibCrypto, 3*time.Millisecond)
	p.AddTotal(5 * time.Millisecond)
	s := p.Snapshot()
	if s.Spans[LibC] != 2*time.Millisecond {
		t.Errorf("libc share %v, want 2ms", s.Spans[LibC])
	}
	if s.Total != 5*time.Millisecond {
		t.Errorf("total %v, want 5ms", s.Total)
	}
}

func TestDistributionOrdering(t *testing.T) {
	t.Parallel()
	p := NewProfiler()
	p.Attribute(LibSSL, 1*time.Millisecond)
	p.Attribute(LibCrypto, 8*time.Millisecond)
	p.Attribute(Kernel, 1*time.Millisecond)
	dist := p.Snapshot().Distribution()
	if dist[0].Lib != LibCrypto {
		t.Errorf("dominant bucket %s, want libcrypto", dist[0].Lib)
	}
	if dist[0].Share < 0.79 || dist[0].Share > 0.81 {
		t.Errorf("libcrypto share %.2f, want 0.80", dist[0].Share)
	}
	var sum float64
	for _, d := range dist {
		sum += d.Share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %.3f", sum)
	}
}

func TestReset(t *testing.T) {
	t.Parallel()
	p := NewProfiler()
	p.Attribute(LibCrypto, time.Second)
	p.Reset()
	if len(p.Snapshot().Distribution()) != 0 {
		t.Error("profile not empty after Reset")
	}
}

func TestBuckets(t *testing.T) {
	t.Parallel()
	if len(Buckets()) != 6 {
		t.Errorf("want the paper's 6 buckets, got %d", len(Buckets()))
	}
}

func TestSpanOutOfOrderClose(t *testing.T) {
	t.Parallel()
	p := NewProfiler()
	endA := p.Span(LibSSL)
	endB := p.Span(LibCrypto)
	// Non-LIFO order plus a double close: the open count must still land
	// on zero (it used to go negative and miscount).
	endA()
	endA()
	endB()
	endB()
	if got := p.Open(); got != 0 {
		t.Errorf("open spans after out-of-order close = %d, want 0", got)
	}
	s := p.Snapshot()
	if _, ok := s.Spans[LibSSL]; !ok {
		t.Errorf("libssl span not attributed: %v", s.Spans)
	}
	if _, ok := s.Spans[LibCrypto]; !ok {
		t.Errorf("libcrypto span not attributed: %v", s.Spans)
	}
}

func TestSpanDoubleCloseAddsOnce(t *testing.T) {
	t.Parallel()
	p := NewProfiler()
	end := p.Span(LibCrypto)
	time.Sleep(time.Millisecond)
	end()
	first := p.Snapshot().Spans[LibCrypto]
	time.Sleep(time.Millisecond)
	end() // idempotent: must not attribute the extra sleep
	if got := p.Snapshot().Spans[LibCrypto]; got != first {
		t.Errorf("double close changed attribution: %v -> %v", first, got)
	}
}
