package loadgen

import (
	"net"
	"testing"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/tls13"
)

// startLive boots a live server for the classical suite (fast enough to
// drive at a few hundred arrivals/second inside a unit test).
func startLive(t *testing.T, issueTickets bool) (*live.Server, *tls13.Config) {
	t.Helper()
	creds, err := harness.CredentialsFor("ecdsa-p256", 1)
	if err != nil {
		t.Fatalf("credentials: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv, err := live.Serve(ln, live.Options{
		Config: &tls13.Config{
			KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example",
			Chain: creds.Chain, PrivateKey: creds.Priv,
		},
		IssueTickets: issueTickets,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	return srv, &tls13.Config{
		KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example", Roots: creds.Roots,
	}
}

// TestRunFullHandshakes drives a short open-loop run end to end and checks
// the result's accounting invariants.
func TestRunFullHandshakes(t *testing.T) {
	srv, cfg := startLive(t, false)
	sched := NewSchedule(3, DistUniform, 200, 500*time.Millisecond)
	warmup := 100 * time.Millisecond
	res, err := Run(Options{
		Addr: srv.Addr().String(), Config: cfg, Schedule: sched, Warmup: warmup,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if res.Offered != uint64(len(sched.Offsets)) || res.Started != res.Offered {
		t.Errorf("offered/started %d/%d, want both %d", res.Offered, res.Started, len(sched.Offsets))
	}
	if res.Failed != 0 {
		t.Fatalf("failures on loopback: %v", res.Errors)
	}
	if res.Completed != res.Started {
		t.Errorf("completed %d, want %d", res.Completed, res.Started)
	}
	if res.Resumed != 0 {
		t.Errorf("resumed %d without -resume", res.Resumed)
	}
	if got := res.Hist.Count() + res.Warmup; got != res.Completed {
		t.Errorf("histogram (%d) + warmup (%d) = %d, want completed %d",
			res.Hist.Count(), res.Warmup, got, res.Completed)
	}
	if res.Warmup == 0 {
		t.Error("no handshakes were discarded as warmup despite a warmup window")
	}
	if res.Rate(warmup) <= 0 {
		t.Error("rate should be positive")
	}
	p50, p99 := res.Hist.Quantile(0.50), res.Hist.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("quantiles not sane: p50 %v p99 %v", p50, p99)
	}
	if c := srv.Counters(); c.Completed != res.Completed {
		t.Errorf("server completed %d, client completed %d", c.Completed, res.Completed)
	}
}

// TestRunResumed checks the Resume path: one priming handshake, then every
// scheduled handshake redeems a ticket from the shared store.
func TestRunResumed(t *testing.T) {
	srv, cfg := startLive(t, true)
	sched := NewSchedule(4, DistExponential, 100, 300*time.Millisecond)
	res, err := Run(Options{
		Addr: srv.Addr().String(), Config: cfg, Schedule: sched, Resume: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if res.Failed != 0 {
		t.Fatalf("failures on loopback: %v", res.Errors)
	}
	if res.Resumed != res.Completed {
		t.Errorf("resumed %d of %d completions, want all", res.Resumed, res.Completed)
	}
	c := srv.Counters()
	if c.Completed != res.Completed+1 { // +1 for the priming handshake
		t.Errorf("server completed %d, want %d", c.Completed, res.Completed+1)
	}
	if c.Resumed != res.Completed {
		t.Errorf("server resumed %d, want %d", c.Resumed, res.Completed)
	}
	ts := srv.TicketStats()
	if ts.Issued != 1 || ts.Redeemed != res.Completed || ts.Rejected != 0 {
		t.Errorf("ticket stats %+v, want 1 issued, %d redeemed, 0 rejected", ts, res.Completed)
	}
}

// TestSimulateTimelineDeterministic pins the timeline's determinism claim:
// in Simulate mode events are stamped with virtual offsets, so the same
// schedule produces byte-identical timelines — and Result digests — whether
// it runs on one dispatcher or split across several.
func TestSimulateTimelineDeterministic(t *testing.T) {
	sched := NewSchedule(11, DistExponential, 400, 500*time.Millisecond)
	run := func(workers int) *Result {
		res, err := RunWorkers(Options{
			Schedule: sched, Simulate: true,
			Warmup:         50 * time.Millisecond,
			WindowInterval: 100 * time.Millisecond,
		}, workers)
		if err != nil {
			t.Fatalf("simulate run (%d workers): %v", workers, err)
		}
		if res.Timeline == nil {
			t.Fatalf("no timeline despite WindowInterval (%d workers)", workers)
		}
		return res
	}
	base := run(1)
	tot := base.Timeline.Totals()
	if tot.Started != base.Started || tot.Completed != base.Completed || tot.Failed != base.Failed {
		t.Errorf("timeline totals %d/%d/%d disagree with result %d/%d/%d",
			tot.Started, tot.Completed, tot.Failed, base.Started, base.Completed, base.Failed)
	}
	if tot.Warmup != base.Warmup || tot.Resumed != base.Resumed {
		t.Errorf("timeline warmup/resumed %d/%d, result %d/%d",
			tot.Warmup, tot.Resumed, base.Warmup, base.Resumed)
	}
	if tot.Hist.Count() != base.Hist.Count() {
		t.Errorf("timeline histogram holds %d samples, result %d", tot.Hist.Count(), base.Hist.Count())
	}
	for _, workers := range []int{2, 7} {
		split := run(workers)
		if got, want := split.Timeline.Digest(), base.Timeline.Digest(); got != want {
			t.Errorf("%d-worker timeline digest %s, 1-worker %s", workers, got, want)
		}
		if got, want := split.Digest(), base.Digest(); got != want {
			t.Errorf("%d-worker result digest %s, 1-worker %s", workers, got, want)
		}
	}
}

// TestRunRejectsBadOptions covers the setup-error paths.
func TestRunRejectsBadOptions(t *testing.T) {
	if _, err := Run(Options{Config: &tls13.Config{}}); err == nil {
		t.Error("empty schedule accepted")
	}
	sched := NewSchedule(1, DistUniform, 100, 100*time.Millisecond)
	if _, err := Run(Options{Schedule: sched}); err == nil {
		t.Error("nil config accepted")
	}
	// An unreachable address with Resume fails at priming, before any load.
	cfg := &tls13.Config{KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "x"}
	if _, err := Run(Options{
		Addr: "127.0.0.1:1", Config: cfg, Schedule: sched, Resume: true,
		DialTimeout: 200 * time.Millisecond,
	}); err == nil {
		t.Error("unreachable priming target accepted")
	}
}
