package loadgen

import (
	"reflect"
	"testing"
	"time"
)

// TestScheduleDeterminism pins the subsystem's reproducibility contract:
// the seeded arrival plan is byte-identical across runs, and distinct seeds
// or parameters give distinct plans.
func TestScheduleDeterminism(t *testing.T) {
	a := NewSchedule(1, DistExponential, 200, 2*time.Second)
	b := NewSchedule(1, DistExponential, 200, 2*time.Second)
	if !reflect.DeepEqual(a.Offsets, b.Offsets) {
		t.Fatal("same parameters produced different arrival offsets")
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ for identical schedules: %s vs %s", a.Digest(), b.Digest())
	}
	if len(a.Offsets) == 0 {
		t.Fatal("schedule is empty")
	}
	if c := NewSchedule(2, DistExponential, 200, 2*time.Second); c.Digest() == a.Digest() {
		t.Fatal("different seeds produced the same digest")
	}
	if c := NewSchedule(1, DistUniform, 200, 2*time.Second); c.Digest() == a.Digest() {
		t.Fatal("different distributions produced the same digest")
	}
}

// TestScheduleGolden pins the exact first offsets of a fixed coordinate.
// The DRBG is SHA-256 counter mode over the parameter string; nothing about
// the host, the Go release, or math/rand may change these values.
func TestScheduleGolden(t *testing.T) {
	s := NewSchedule(1, DistExponential, 200, 2*time.Second)
	if got, want := s.Digest(), "41beff51f726325c"; got != want {
		t.Errorf("digest = %s, want %s", got, want)
	}
}

func TestScheduleShape(t *testing.T) {
	const rate = 1000.0
	span := 10 * time.Second
	for _, dist := range []Dist{DistExponential, DistUniform} {
		s := NewSchedule(7, dist, rate, span)
		want := rate * span.Seconds()
		if n := float64(len(s.Offsets)); n < want*0.9 || n > want*1.1 {
			t.Errorf("%s: %v arrivals, want within 10%% of %v", dist, n, want)
		}
		mean := 2 * float64(time.Second) / rate // uniform gap upper bound
		prev := time.Duration(0)
		for i, off := range s.Offsets {
			if off < prev {
				t.Fatalf("%s: offsets not monotone at %d: %v < %v", dist, i, off, prev)
			}
			if off >= span {
				t.Fatalf("%s: offset %v beyond span %v", dist, off, span)
			}
			if dist == DistUniform {
				if gap := off - prev; float64(gap) >= mean {
					t.Fatalf("%s: gap %v exceeds uniform bound %v", dist, gap, time.Duration(mean))
				}
			}
			prev = off
		}
	}
}

func TestScheduleDegenerate(t *testing.T) {
	if s := NewSchedule(1, DistExponential, 0, time.Second); len(s.Offsets) != 0 {
		t.Error("zero rate should give an empty schedule")
	}
	if s := NewSchedule(1, DistExponential, 100, 0); len(s.Offsets) != 0 {
		t.Error("zero span should give an empty schedule")
	}
}

func TestParseDist(t *testing.T) {
	for in, want := range map[string]Dist{"exp": DistExponential, "exponential": DistExponential,
		"poisson": DistExponential, "uniform": DistUniform} {
		got, err := ParseDist(in)
		if err != nil || got != want {
			t.Errorf("ParseDist(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDist("zipf"); err == nil {
		t.Error("ParseDist accepted an unknown distribution")
	}
}

// TestScheduleSplit pins the sharded-dispatch contract: Split partitions
// the plan round-robin with absolute offsets preserved, covers it exactly,
// and is deterministic — same seed and worker count, same parts, same
// digests. The saturate sweep's reproducibility rests on this.
func TestScheduleSplit(t *testing.T) {
	s := NewSchedule(7, DistExponential, 300, 2*time.Second)
	const n = 3
	parts, err := s.Split(n)
	if err != nil {
		t.Fatalf("Split(%d): %v", n, err)
	}
	if len(parts) != n {
		t.Fatalf("Split(%d) returned %d parts", n, len(parts))
	}
	// Interleaving the parts back must reconstruct the original exactly.
	total := 0
	for _, p := range parts {
		total += len(p.Offsets)
	}
	if total != len(s.Offsets) {
		t.Fatalf("parts cover %d offsets, schedule has %d", total, len(s.Offsets))
	}
	for i, off := range s.Offsets {
		p := parts[i%n]
		if got := p.Offsets[i/n]; got != off {
			t.Fatalf("offset %d: part %d[%d] = %v, want %v", i, i%n, i/n, got, off)
		}
	}
	// Each part stays monotone (the dispatcher sleeps to each offset in turn).
	for w, p := range parts {
		for i := 1; i < len(p.Offsets); i++ {
			if p.Offsets[i] < p.Offsets[i-1] {
				t.Fatalf("part %d not monotone at %d", w, i)
			}
		}
	}
	// Determinism across independent builds of the same plan.
	again, err := NewSchedule(7, DistExponential, 300, 2*time.Second).Split(n)
	if err != nil {
		t.Fatalf("second Split(%d): %v", n, err)
	}
	for w := range parts {
		if parts[w].Digest() != again[w].Digest() {
			t.Fatalf("part %d digest differs across identical splits", w)
		}
	}
}

// TestScheduleSplitEdges pins the guard contract: non-positive part counts
// and counts beyond the plan size are explicit errors — never a panic, a
// clamp, or a batch of empty shards a coordinator would assign as no-ops.
func TestScheduleSplitEdges(t *testing.T) {
	s := NewSchedule(7, DistExponential, 300, 2*time.Second)
	for _, n := range []int{0, -1, -100} {
		parts, err := s.Split(n)
		if err == nil {
			t.Errorf("Split(%d) = %d parts, want error", n, len(parts))
		}
	}
	for _, n := range []int{len(s.Offsets) + 1, len(s.Offsets) * 2} {
		parts, err := s.Split(n)
		if err == nil {
			t.Errorf("Split(%d) with %d arrivals = %d parts, want error", n, len(s.Offsets), len(parts))
		}
	}
	// The boundary itself is legal: one arrival per part, no empties.
	parts, err := s.Split(len(s.Offsets))
	if err != nil {
		t.Fatalf("Split(len) errored: %v", err)
	}
	for w, p := range parts {
		if len(p.Offsets) != 1 {
			t.Fatalf("part %d has %d offsets, want exactly 1", w, len(p.Offsets))
		}
	}
	// An empty schedule cannot be split at all.
	if _, err := (&Schedule{}).Split(1); err == nil {
		t.Error("Split(1) on an empty schedule should error")
	}
}

// TestResultMerge checks that merging split results reproduces the unsplit
// aggregation: counters sum, error classes union, extrema take the max,
// and the log-bucketed histogram merges bucket-exactly.
func TestResultMerge(t *testing.T) {
	lat := []time.Duration{time.Millisecond, 2 * time.Millisecond, 40 * time.Millisecond, 41 * time.Millisecond}
	whole := &Result{Errors: map[string]uint64{}}
	a := &Result{Errors: map[string]uint64{"dial": 1}, Offered: 2, Started: 2, Completed: 2,
		MaxLag: 3 * time.Millisecond, Elapsed: time.Second}
	b := &Result{Errors: map[string]uint64{"dial": 2, "timeout": 1}, Offered: 2, Started: 2,
		Completed: 1, Failed: 1, Resumed: 1, Warmup: 1,
		MaxLag: 5 * time.Millisecond, Elapsed: 2 * time.Second}
	for i, d := range lat {
		whole.Hist.Record(d)
		if i%2 == 0 {
			a.Hist.Record(d)
		} else {
			b.Hist.Record(d)
		}
	}
	a.Merge(b)
	if a.Offered != 4 || a.Started != 4 || a.Completed != 3 || a.Failed != 1 ||
		a.Resumed != 1 || a.Warmup != 1 {
		t.Fatalf("merged counters wrong: %+v", a)
	}
	if a.Errors["dial"] != 3 || a.Errors["timeout"] != 1 {
		t.Fatalf("merged error classes wrong: %v", a.Errors)
	}
	if a.MaxLag != 5*time.Millisecond || a.Elapsed != 2*time.Second {
		t.Fatalf("merged extrema wrong: lag %v elapsed %v", a.MaxLag, a.Elapsed)
	}
	if a.Hist.Count() != whole.Hist.Count() {
		t.Fatalf("merged histogram count %d, want %d", a.Hist.Count(), whole.Hist.Count())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := a.Hist.Quantile(q), whole.Hist.Quantile(q); got != want {
			t.Fatalf("merged q%.2f = %v, unsplit = %v", q, got, want)
		}
	}
	// Merging a nil result is a no-op.
	before := a.Hist.Count()
	a.Merge(nil)
	if a.Hist.Count() != before {
		t.Fatal("Merge(nil) changed the result")
	}
}
