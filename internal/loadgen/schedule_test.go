package loadgen

import (
	"reflect"
	"testing"
	"time"
)

// TestScheduleDeterminism pins the subsystem's reproducibility contract:
// the seeded arrival plan is byte-identical across runs, and distinct seeds
// or parameters give distinct plans.
func TestScheduleDeterminism(t *testing.T) {
	a := NewSchedule(1, DistExponential, 200, 2*time.Second)
	b := NewSchedule(1, DistExponential, 200, 2*time.Second)
	if !reflect.DeepEqual(a.Offsets, b.Offsets) {
		t.Fatal("same parameters produced different arrival offsets")
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digests differ for identical schedules: %s vs %s", a.Digest(), b.Digest())
	}
	if len(a.Offsets) == 0 {
		t.Fatal("schedule is empty")
	}
	if c := NewSchedule(2, DistExponential, 200, 2*time.Second); c.Digest() == a.Digest() {
		t.Fatal("different seeds produced the same digest")
	}
	if c := NewSchedule(1, DistUniform, 200, 2*time.Second); c.Digest() == a.Digest() {
		t.Fatal("different distributions produced the same digest")
	}
}

// TestScheduleGolden pins the exact first offsets of a fixed coordinate.
// The DRBG is SHA-256 counter mode over the parameter string; nothing about
// the host, the Go release, or math/rand may change these values.
func TestScheduleGolden(t *testing.T) {
	s := NewSchedule(1, DistExponential, 200, 2*time.Second)
	if got, want := s.Digest(), "41beff51f726325c"; got != want {
		t.Errorf("digest = %s, want %s", got, want)
	}
}

func TestScheduleShape(t *testing.T) {
	const rate = 1000.0
	span := 10 * time.Second
	for _, dist := range []Dist{DistExponential, DistUniform} {
		s := NewSchedule(7, dist, rate, span)
		want := rate * span.Seconds()
		if n := float64(len(s.Offsets)); n < want*0.9 || n > want*1.1 {
			t.Errorf("%s: %v arrivals, want within 10%% of %v", dist, n, want)
		}
		mean := 2 * float64(time.Second) / rate // uniform gap upper bound
		prev := time.Duration(0)
		for i, off := range s.Offsets {
			if off < prev {
				t.Fatalf("%s: offsets not monotone at %d: %v < %v", dist, i, off, prev)
			}
			if off >= span {
				t.Fatalf("%s: offset %v beyond span %v", dist, off, span)
			}
			if dist == DistUniform {
				if gap := off - prev; float64(gap) >= mean {
					t.Fatalf("%s: gap %v exceeds uniform bound %v", dist, gap, time.Duration(mean))
				}
			}
			prev = off
		}
	}
}

func TestScheduleDegenerate(t *testing.T) {
	if s := NewSchedule(1, DistExponential, 0, time.Second); len(s.Offsets) != 0 {
		t.Error("zero rate should give an empty schedule")
	}
	if s := NewSchedule(1, DistExponential, 100, 0); len(s.Offsets) != 0 {
		t.Error("zero span should give an empty schedule")
	}
}

func TestParseDist(t *testing.T) {
	for in, want := range map[string]Dist{"exp": DistExponential, "exponential": DistExponential,
		"poisson": DistExponential, "uniform": DistUniform} {
		got, err := ParseDist(in)
		if err != nil || got != want {
			t.Errorf("ParseDist(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDist("zipf"); err == nil {
		t.Error("ParseDist accepted an unknown distribution")
	}
}
