package loadgen

import (
	"sync"
	"testing"
	"time"

	"pqtls/internal/crypto/sha3"
	"pqtls/internal/sig"
)

func verifyPoolDRBG(seed string) sha3.XOF {
	x := sha3.NewShake256()
	x.Write([]byte(seed))
	return x
}

// TestVerifyPoolDecisions pins pooled decisions against direct
// scheme.Verify for a mix of valid and corrupted signatures, across a
// batching scheme (dilithium3) and a non-batching one (ecdsa-p256).
func TestVerifyPoolDecisions(t *testing.T) {
	for _, name := range []string{"dilithium3", "ecdsa-p256"} {
		s := sig.MustByName(name)
		pub, priv, err := s.GenerateKey(verifyPoolDRBG("vp-" + name))
		if err != nil {
			t.Fatal(err)
		}
		const n = 24
		msgs := make([][]byte, n)
		sigs := make([][]byte, n)
		want := make([]bool, n)
		for i := 0; i < n; i++ {
			msgs[i] = []byte{byte(i), 0x7E, byte(i * 3)}
			if sigs[i], err = s.Sign(priv, msgs[i]); err != nil {
				t.Fatal(err)
			}
			want[i] = true
			if i%4 == 1 {
				sigs[i][len(sigs[i])/3] ^= 1
				want[i] = s.Verify(pub, msgs[i], sigs[i]) // almost surely false
			}
		}
		p := NewVerifyPool(2, 8, 100*time.Microsecond)
		got := make([]bool, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got[i] = p.VerifyCV(s, pub, msgs[i], sigs[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("%s item %d: pool=%v, direct=%v", name, i, got[i], want[i])
			}
		}
		st := p.Stats()
		if st.Verifies != n {
			t.Fatalf("%s: %d verifies recorded, want %d", name, st.Verifies, n)
		}
		if name == "dilithium3" && st.Batched == 0 {
			t.Fatalf("%s: 24 concurrent submits produced no batched verifies", name)
		}
		p.Close()
		// After Close the check runs inline and stays correct.
		if p.VerifyCV(s, pub, msgs[0], sigs[0]) != want[0] {
			t.Fatalf("%s: post-Close inline verify wrong", name)
		}
	}
}

// TestVerifyPoolConcurrentClose races many submitters against Close (run
// under -race). Every future submitted before Close must resolve with a
// correct decision; submissions after Close fall back to inline verify —
// either way no goroutine may hang or read a stale result.
func TestVerifyPoolConcurrentClose(t *testing.T) {
	s := sig.MustByName("dilithium2")
	pub, priv, err := s.GenerateKey(verifyPoolDRBG("vp-close"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("close race")
	sigBytes, err := s.Sign(priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), sigBytes...)
	bad[40] ^= 1

	p := NewVerifyPool(4, 4, 50*time.Microsecond)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if g%2 == 0 {
					if !p.VerifyCV(s, pub, msg, sigBytes) {
						t.Error("valid signature rejected")
						return
					}
				} else {
					if p.VerifyCV(s, pub, msg, bad) {
						t.Error("corrupted signature accepted")
						return
					}
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		p.Close()
		close(done)
	}()
	wg.Wait()
	<-done
	p.Close() // idempotent
	st := p.Stats()
	if st.Verifies != 16*20 {
		t.Fatalf("%d verifies recorded, want %d", st.Verifies, 16*20)
	}
	if st.Depth != 0 {
		t.Fatalf("queue not drained: depth %d", st.Depth)
	}
}
