package loadgen

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pqtls/internal/live"
	"pqtls/internal/obs"
	"pqtls/internal/sig"
	"pqtls/internal/tls13"
)

// readerPool recycles per-connection buffered readers; the record layer
// otherwise pays two read syscalls per record. Readers are returned after
// the last read a connection will ever make, so pooling cannot swallow
// bytes another connection needs.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4096) },
}

// bufferedConn reads through a pooled bufio.Reader and writes straight
// through to the socket (handshake flights are already single writes).
type bufferedConn struct {
	r *bufio.Reader
	io.Writer
}

func (b bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

// Options configure one open-loop load-generation run against a live
// server.
type Options struct {
	// Addr is the server's TCP address.
	Addr string
	// Config is the client handshake template (KEMName, SigName,
	// ServerName, Roots). It is shallow-copied per connection, so one value
	// serves the whole pool.
	Config *tls13.Config
	// Schedule is the pre-computed arrival plan (required).
	Schedule *Schedule
	// Warmup discards handshakes whose *scheduled* arrival falls before
	// this offset: they run (warming code paths, allocators, and the
	// server's ticket store) but do not enter the histogram.
	Warmup time.Duration
	// MaxConcurrent bounds in-flight handshakes (0 = 128). Open-loop
	// arrivals that find the pool saturated wait for a slot; the induced
	// lag is reported in Result.MaxLag rather than silently absorbed.
	MaxConcurrent int
	// DialTimeout and HandshakeTimeout bound each connection (0 = 5s/10s).
	DialTimeout, HandshakeTimeout time.Duration
	// Resume first runs one full handshake to obtain a session ticket, then
	// resumes every scheduled handshake from it — the steady-state of a
	// client population holding warm tickets.
	Resume bool
	// Trace, when non-nil, collects a wall-clock client-side span trace for
	// every successful post-warmup handshake: the tls13 phase hooks plus a
	// flight-wait span around each blocking record read.
	Trace *obs.Collector
	// KeyShares, when non-nil, supplies pre-generated key shares for
	// Config.KEMName so full handshakes skip the client-side keygen.
	// *harness.KeyPool satisfies this; its factory keeps the pool warm in
	// the background. A nil Get (pool exhausted) falls back to inline
	// generation, so a drained pool degrades rather than fails.
	KeyShares KeySource
	// Amortize installs a shared chain-verification cache and a shared
	// verifier-context cache across the whole connection pool, so only the
	// first full handshake pays the real certificate parse/verify and
	// per-key verification setup — the steady-state of a client that keeps
	// talking to one server. Modeled charges are unaffected.
	Amortize bool
	// VerifyPool, when non-nil, routes every connection's CertificateVerify
	// check through a shared batching verification pool
	// (tls13.Config.CVVerifier): in-flight checks against the same server
	// key are collected and verified through one multi-sponge batch pass.
	// The tls13 client ignores the hook when Config.Rand is set, so pooled
	// results never feed DRBG-pinned handshakes. The caller owns the pool's
	// lifecycle (Close after the run) and reads its Stats from the handle —
	// the Result's canonical encoding is unchanged.
	VerifyPool *VerifyPool
	// Simulate replaces every real dial+handshake with a synthetic latency
	// that is a pure function of (Schedule.Seed, sample index). The
	// dispatch machinery — open-loop pacing, the concurrency limiter,
	// warmup classification, histogram recording — runs unchanged, but the
	// Result becomes fully deterministic: the same schedule produces the
	// same histogram, counters, and digest on any host, whole or split
	// across any number of workers or machines. This is the mode the
	// distributed subsystem's exactness checks run in (Addr, Config,
	// Resume, and KeyShares are ignored).
	Simulate bool
	// Cancel, when non-nil, aborts the run once closed: no further arrivals
	// are dispatched, in-flight handshakes finish, and the Result covers
	// what actually ran (Offered still counts the full plan). This is the
	// graceful-drain path a SIGINT takes.
	Cancel <-chan struct{}
	// Progress, when non-nil, is updated with atomic adds as the run
	// advances, so a reporting goroutine (the distributed worker's progress
	// frames) can observe live counters without touching the Result.
	Progress *Progress
	// WindowInterval, when > 0, enables per-window telemetry: every start,
	// completion, and failure is also recorded into a Timeline at this
	// window width, and the Result carries it. In Simulate mode events are
	// stamped with virtual offsets (scheduled arrival, arrival + synthetic
	// latency), making the timeline — like the rest of the Result — a pure
	// function of the arrival plan: a run split across workers or machines
	// merges to the byte-identical timeline of the unsplit run. Live runs
	// stamp wall-clock offsets from the shared start instant.
	WindowInterval time.Duration
	// Timeline, when non-nil, receives the windowed events instead of a
	// freshly created timeline — the handle a concurrent observer (progress
	// frames, a live status line) snapshots mid-run via Clone. Its interval
	// wins over WindowInterval.
	Timeline *obs.Timeline
}

// Progress mirrors the Result's headline counters as atomics a concurrent
// observer may read mid-run.
type Progress struct {
	Started, Completed, Failed atomic.Uint64
}

// KeySource hands out pre-generated key shares by KEM name. It is the
// loadgen-side view of harness.KeyPool, kept as an interface so loadgen
// does not import the harness.
type KeySource interface {
	Get(kemName string) *tls13.KeyShare
}

// Result aggregates one run.
type Result struct {
	// Hist holds post-warmup successful handshake latencies (ClientHello
	// written → Finished sent, the span the modeled tables call Total).
	Hist Histogram
	// Offered is the number of scheduled arrivals; Started of those ran
	// (always equal — saturated arrivals wait, they are not shed).
	Offered, Started uint64
	// Completed/Failed partition Started; Warmup counts completions that
	// were discarded as warmup.
	Completed, Failed, Warmup uint64
	// Resumed counts completions that were PSK-resumed.
	Resumed uint64
	// Errors buckets failures by live.Classify class.
	Errors map[string]uint64
	// MaxLag is the worst (actual − scheduled) start delay: how far the
	// pool fell behind the open-loop plan.
	MaxLag time.Duration
	// Elapsed spans run start to last completion; Rate is post-warmup
	// completed handshakes per second of post-warmup elapsed time.
	Elapsed time.Duration
	// Timeline holds the run's windowed telemetry when
	// Options.WindowInterval enabled it (nil otherwise). It participates in
	// the canonical encoding and the digest.
	Timeline *obs.Timeline
}

// Rate returns achieved handshakes/second over the measured (post-warmup)
// portion of the run.
func (r *Result) Rate(warmup time.Duration) float64 {
	span := r.Elapsed - warmup
	if span <= 0 || r.Hist.Count() == 0 {
		return 0
	}
	return float64(r.Hist.Count()) / span.Seconds()
}

// Merge folds another run's counters and latency histogram into r. The
// log-bucketed histogram merges exactly (bucket-wise addition), so a run
// split across dispatchers — or across machines — aggregates to the same
// Result a single dispatcher would have produced.
func (r *Result) Merge(o *Result) {
	if o == nil {
		return
	}
	r.Hist.Merge(&o.Hist)
	r.Offered += o.Offered
	r.Started += o.Started
	r.Completed += o.Completed
	r.Failed += o.Failed
	r.Warmup += o.Warmup
	r.Resumed += o.Resumed
	for class, n := range o.Errors {
		if r.Errors == nil {
			r.Errors = make(map[string]uint64)
		}
		r.Errors[class] += n
	}
	if o.MaxLag > r.MaxLag {
		r.MaxLag = o.MaxLag
	}
	if o.Elapsed > r.Elapsed {
		r.Elapsed = o.Elapsed
	}
	if o.Timeline != nil {
		if r.Timeline == nil {
			r.Timeline = obs.NewTimeline(o.Timeline.Interval())
		}
		if err := r.Timeline.Merge(o.Timeline); err != nil {
			// Mixed-interval timelines cannot be merged meaningfully; drop
			// the aggregate rather than keep a partial one that looks whole.
			r.Timeline = nil
		}
	}
}

// Run executes the schedule against the server. It returns an error only
// for setup failures (bad options, resumption priming); individual
// handshake failures are counted in the Result.
func Run(opts Options) (*Result, error) {
	return RunWorkers(opts, 1)
}

// RunWorkers executes the schedule with its arrival plan split round-robin
// across workers dispatcher goroutines, each pacing its own slice of the
// offsets against one shared clock and one shared concurrency limiter. A
// single dispatcher tops out at roughly one arrival per scheduler wakeup;
// splitting the plan keeps the offered rate honest at saturation. The
// per-worker Results are merged bucket-exactly, so workers only changes
// dispatch parallelism, never the semantics of the run.
func RunWorkers(opts Options, workers int) (*Result, error) {
	if err := normalize(&opts); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	if n := len(opts.Schedule.Offsets); workers > n {
		workers = n // fewer arrivals than dispatchers: shrink, don't idle
	}

	if (opts.Amortize || opts.VerifyPool != nil) && !opts.Simulate {
		// One shared set of caches/pools for the whole pool: the
		// per-connection shallow copies in oneHandshake all point at these.
		cfg := *opts.Config
		if opts.Amortize {
			cfg.ChainCache = tls13.NewChainCache()
			cfg.Verifiers = sig.NewVerifierCache(0)
		}
		if opts.VerifyPool != nil {
			cfg.CVVerifier = opts.VerifyPool
		}
		opts.Config = &cfg
	}

	var sess *tls13.Session
	if opts.Resume && !opts.Simulate {
		var err error
		sess, err = Prime(opts.Addr, opts.Config, opts.DialTimeout, opts.HandshakeTimeout)
		if err != nil {
			return nil, fmt.Errorf("loadgen: resumption priming: %w", err)
		}
	}

	parts, err := opts.Schedule.Split(workers)
	if err != nil {
		return nil, err
	}
	sem := make(chan struct{}, opts.MaxConcurrent)
	results := make([]*Result, len(parts))
	var wg sync.WaitGroup
	start := time.Now()
	for w, part := range parts {
		wg.Add(1)
		go func(w int, part *Schedule) {
			defer wg.Done()
			// Sample w of part i is sample w + i*len(parts) of the original
			// plan (round-robin split), so trace sample IDs stay unique.
			results[w] = dispatch(&opts, part, sess, start, sem, w, len(parts))
		}(w, part)
	}
	wg.Wait()
	res := results[0]
	for _, o := range results[1:] {
		res.Merge(o)
	}
	// Every dispatcher recorded into the one shared timeline; it joins the
	// Result only here, after the merge, so it is counted exactly once.
	res.Timeline = opts.Timeline
	res.Elapsed = time.Since(start)
	return res, nil
}

// normalize validates the options and fills in defaults. Simulate mode
// needs no Config: nothing is dialed.
func normalize(opts *Options) error {
	if opts.Schedule == nil || len(opts.Schedule.Offsets) == 0 {
		return errors.New("loadgen: empty schedule")
	}
	if opts.Config == nil && !opts.Simulate {
		return errors.New("loadgen: Options.Config is required")
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 128
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 10 * time.Second
	}
	if opts.Timeline == nil && opts.WindowInterval > 0 {
		opts.Timeline = obs.NewTimeline(opts.WindowInterval)
	}
	return nil
}

// RunShard executes one pre-split part of a larger plan: opts.Schedule must
// be shard `worker` of a schedule that was Split(stride) ways. Samples are
// numbered worker + i·stride — exactly as the same shard numbers them
// inside RunWorkers — so a shard farmed out to another process times (and,
// in Simulate mode, reproduces) the identical samples, and the per-shard
// Results merge back into the unsplit run's aggregate. This is the
// distributed worker's entry point.
func RunShard(opts Options, worker, stride int) (*Result, error) {
	if err := normalize(&opts); err != nil {
		return nil, err
	}
	if worker < 0 || stride < 1 || worker >= stride {
		return nil, fmt.Errorf("loadgen: RunShard(%d, %d): worker must be in [0, stride)", worker, stride)
	}
	if (opts.Amortize || opts.VerifyPool != nil) && !opts.Simulate {
		cfg := *opts.Config
		if opts.Amortize {
			cfg.ChainCache = tls13.NewChainCache()
			cfg.Verifiers = sig.NewVerifierCache(0)
		}
		if opts.VerifyPool != nil {
			cfg.CVVerifier = opts.VerifyPool
		}
		opts.Config = &cfg
	}
	var sess *tls13.Session
	if opts.Resume && !opts.Simulate {
		var err error
		sess, err = Prime(opts.Addr, opts.Config, opts.DialTimeout, opts.HandshakeTimeout)
		if err != nil {
			return nil, fmt.Errorf("loadgen: resumption priming: %w", err)
		}
	}
	sem := make(chan struct{}, opts.MaxConcurrent)
	start := time.Now()
	res := dispatch(&opts, opts.Schedule, sess, start, sem, worker, stride)
	res.Timeline = opts.Timeline
	res.Elapsed = time.Since(start)
	return res, nil
}

// simLatency is Simulate mode's synthetic handshake duration for one
// sample: a deterministic exponential draw (mean 1 ms, clamped to 20 ms)
// from a SHA-256 counter DRBG over (seed, sample). Only (seed, sample)
// matter — not which worker, process, or host runs the sample — which is
// the whole point: a split run reproduces the unsplit histogram exactly.
func simLatency(seed int64, sample int) time.Duration {
	var block [24]byte
	copy(block[:8], "pqsimlat")
	binary.BigEndian.PutUint64(block[8:], uint64(seed))
	binary.BigEndian.PutUint64(block[16:], uint64(sample))
	sum := sha256.Sum256(block[:])
	u := float64(binary.BigEndian.Uint64(sum[:8])>>11) / (1 << 53)
	lat := time.Duration(-math.Log(1-u) * float64(time.Millisecond))
	if lat > 20*time.Millisecond {
		lat = 20 * time.Millisecond
	}
	if lat < time.Microsecond {
		lat = time.Microsecond
	}
	return lat
}

// dispatch paces one slice of the arrival plan. Offsets are absolute (from
// the shared start instant), so concurrent dispatchers reproduce the exact
// arrival process of the unsplit schedule.
func dispatch(opts *Options, sched *Schedule, sess *tls13.Session, start time.Time, sem chan struct{}, worker, stride int) *Result {
	res := &Result{
		Offered: uint64(len(sched.Offsets)),
		Errors:  make(map[string]uint64),
	}
	var wg sync.WaitGroup
	var mu sync.Mutex // guards res aggregation from handshake goroutines

arrivals:
	for i, off := range sched.Offsets {
		// Open loop: fire at the scheduled offset no matter what earlier
		// handshakes are doing; only pool saturation may delay a start. A
		// close of opts.Cancel stops dispatching new arrivals (a nil Cancel
		// channel never fires, so the selects degrade to the plain path).
		if d := off - time.Since(start); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-opts.Cancel:
				t.Stop()
				break arrivals
			}
		}
		select {
		case sem <- struct{}{}:
		case <-opts.Cancel:
			break arrivals
		}
		if lag := time.Since(start) - off; lag > res.MaxLag {
			res.MaxLag = lag // dispatcher goroutine only; no lock needed
		}
		res.Started++
		if opts.Progress != nil {
			opts.Progress.Started.Add(1)
		}
		if opts.Timeline != nil {
			// Simulate stamps the scheduled offset (virtual time, a pure
			// function of the plan); live runs stamp the wall clock.
			at := off
			if !opts.Simulate {
				at = time.Since(start)
			}
			opts.Timeline.RecordStart(at)
		}
		wg.Add(1)
		go func(sample int, scheduled time.Duration) {
			defer wg.Done()
			defer func() { <-sem }()
			var lat time.Duration
			var tracer *obs.Tracer
			var err error
			if opts.Simulate {
				// Deterministic synthetic latency; sleeping it keeps the
				// limiter and goroutine interleaving honest without
				// touching the recorded value.
				lat = simLatency(sched.Seed, sample)
				time.Sleep(lat)
			} else {
				lat, tracer, err = oneHandshake(opts, sess, sample)
			}
			// The completion instant mirrors the start stamp: virtual
			// (scheduled + synthetic latency) in Simulate mode, wall clock
			// otherwise. The timeline has its own lock.
			doneAt := scheduled + lat
			if !opts.Simulate {
				doneAt = time.Since(start)
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				res.Failed++
				res.Errors[live.Classify(err)]++
				if opts.Progress != nil {
					opts.Progress.Failed.Add(1)
				}
				if opts.Timeline != nil {
					opts.Timeline.RecordFailure(doneAt, live.Classify(err))
				}
				return
			}
			res.Completed++
			if opts.Progress != nil {
				opts.Progress.Completed.Add(1)
			}
			if sess != nil {
				res.Resumed++
			}
			if opts.Timeline != nil {
				opts.Timeline.RecordComplete(doneAt, lat, sess != nil, scheduled < opts.Warmup)
			}
			if scheduled < opts.Warmup {
				res.Warmup++
				return
			}
			res.Hist.Record(lat)
			if opts.Trace != nil {
				opts.Trace.Add(tracer)
			}
		}(worker+i*stride, off)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}

// oneHandshake dials and completes a single handshake, timing the span from
// the ClientHello hitting the socket to the Finished flight being written —
// the same CH→Fin span the passive tap measures in the modeled pipeline, so
// the live p50 and the modeled Total are comparable.
func oneHandshake(opts *Options, sess *tls13.Session, sample int) (time.Duration, *obs.Tracer, error) {
	d := net.Dialer{Timeout: opts.DialTimeout}
	conn, err := d.Dial("tcp", opts.Addr)
	if err != nil {
		return 0, nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(conn)
	defer func() {
		br.Reset(nil) // drop the conn reference before pooling
		readerPool.Put(br)
	}()
	rw := bufferedConn{r: br, Writer: conn}

	cfg := *opts.Config
	cfg.Session = sess
	if opts.KeyShares != nil {
		// nil on pool exhaustion: Start then generates inline as usual.
		cfg.PresetKeyShare = opts.KeyShares.Get(cfg.KEMName)
	}
	var tracer *obs.Tracer
	waitPhase := func() func() { return func() {} }
	if opts.Trace != nil {
		tracer = obs.NewTracer(obs.Meta{
			Endpoint: "client",
			KEM:      cfg.KEMName, Sig: cfg.SigName,
			Sample:  sample,
			Resumed: sess != nil,
		}, nil)
		cfg.Hooks = tls13.MultiHooks(cfg.Hooks, tracer)
		// Time spent blocked on the socket between flights is the live
		// counterpart of the modeled flight-wait phase. It is opened at
		// depth 0: no tls13 phase is ever open while the driver reads.
		waitPhase = func() func() { return tracer.Phase(tls13.PhaseFlightWait) }
	}
	cli, err := tls13.NewClient(&cfg)
	if err != nil {
		return 0, nil, err
	}
	// Key-share generation happens before the clock starts, mirroring the
	// modeled Total (the tap times from the ClientHello on the wire).
	flight, err := cli.Start()
	if err != nil {
		return 0, nil, err
	}
	t0 := time.Now()
	if err := tls13.WriteRecords(rw, flight); err != nil {
		return 0, nil, err
	}
	for {
		endWait := waitPhase()
		rec, err := tls13.ReadRecord(rw)
		endWait()
		if err != nil {
			return 0, nil, err
		}
		out, done, err := cli.Consume([]tls13.Record{rec})
		if err != nil {
			return 0, nil, err
		}
		if len(out) > 0 {
			if err := tls13.WriteRecords(rw, out); err != nil {
				return 0, nil, err
			}
		}
		if done {
			return time.Since(t0), tracer, nil
		}
	}
}

// Prime runs one full handshake and returns the session from the server's
// NewSessionTicket flight, ready to resume from.
func Prime(addr string, cfg *tls13.Config, dialTimeout, hsTimeout time.Duration) (*tls13.Session, error) {
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(hsTimeout))
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(conn)
	defer func() {
		br.Reset(nil)
		readerPool.Put(br)
	}()
	// The ticket flight may already sit in the buffer after the handshake
	// flights, so the follow-up read must go through the same reader.
	rw := bufferedConn{r: br, Writer: conn}
	cli, err := tls13.ClientHandshake(rw, cfg)
	if err != nil {
		return nil, err
	}
	rec, err := tls13.ReadRecord(rw)
	if err != nil {
		return nil, fmt.Errorf("reading NewSessionTicket: %w", err)
	}
	return cli.ProcessTicket([]tls13.Record{rec})
}
