package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"pqtls/internal/obs"
)

// Canonical Result encoding. The distributed wire protocol ships per-shard
// Results between processes, `pqbench live -json` exports them, and the
// Result digest hashes them — all three share this one layout so a byte
// seen on the wire, in a JSON artifact, and under the digest is the same
// byte. The binary form is pinned by a golden test:
//
//	u8  version (resultCodecV2)
//	histogram (obs canonical encoding, self-delimiting)
//	u64 offered, started, completed, failed, warmup, resumed
//	u32 error-class count, then per class (sorted by name):
//	    u16 name length, name bytes, u64 count
//	i64 max-lag, elapsed (nanoseconds)
//	u8  timeline present (0/1), then the timeline's canonical encoding
//
// All integers big-endian. Error classes are sorted so the encoding is a
// pure function of the Result's value, never of map iteration order.
// Version 2 added the trailing windowed-telemetry timeline; there is no
// negotiation, only equality — the dist protocol version bump rejects
// mixed fleets before a Result ever crosses the wire.
const resultCodecV2 = 2

// maxErrorClassLen bounds one error-class name; Classify strings are short,
// so anything longer is a corrupt frame, not a real class.
const maxErrorClassLen = 256

// AppendBinary appends the canonical encoding of r to b.
func (r *Result) AppendBinary(b []byte) []byte {
	b = append(b, resultCodecV2)
	b = r.Hist.AppendBinary(b)
	for _, v := range []uint64{r.Offered, r.Started, r.Completed, r.Failed, r.Warmup, r.Resumed} {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	classes := make([]string, 0, len(r.Errors))
	for c := range r.Errors {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	b = binary.BigEndian.AppendUint32(b, uint32(len(classes)))
	for _, c := range classes {
		b = binary.BigEndian.AppendUint16(b, uint16(len(c)))
		b = append(b, c...)
		b = binary.BigEndian.AppendUint64(b, r.Errors[c])
	}
	b = binary.BigEndian.AppendUint64(b, uint64(r.MaxLag))
	b = binary.BigEndian.AppendUint64(b, uint64(r.Elapsed))
	if r.Timeline != nil {
		b = append(b, 1)
		b = r.Timeline.AppendBinary(b)
	} else {
		b = append(b, 0)
	}
	return b
}

// MarshalBinary returns the canonical encoding of r.
func (r *Result) MarshalBinary() ([]byte, error) {
	return r.AppendBinary(nil), nil
}

// UnmarshalBinary decodes a canonical encoding into r, replacing its
// contents. Truncated or structurally invalid input is an error, never a
// partial decode.
func (r *Result) UnmarshalBinary(b []byte) error {
	if len(b) < 1 {
		return fmt.Errorf("loadgen: result encoding empty")
	}
	if b[0] != resultCodecV2 {
		return fmt.Errorf("loadgen: unknown result encoding version %d", b[0])
	}
	*r = Result{}
	off := 1
	n, err := r.Hist.UnmarshalBinary(b[off:])
	if err != nil {
		return fmt.Errorf("loadgen: result histogram: %w", err)
	}
	off += n
	need := func(k int) error {
		if len(b)-off < k {
			return fmt.Errorf("loadgen: result encoding truncated at offset %d", off)
		}
		return nil
	}
	if err := need(6 * 8); err != nil {
		return err
	}
	for _, p := range []*uint64{&r.Offered, &r.Started, &r.Completed, &r.Failed, &r.Warmup, &r.Resumed} {
		*p = binary.BigEndian.Uint64(b[off:])
		off += 8
	}
	if err := need(4); err != nil {
		return err
	}
	nerr := int(binary.BigEndian.Uint32(b[off:]))
	off += 4
	for i := 0; i < nerr; i++ {
		if err := need(2); err != nil {
			return err
		}
		l := int(binary.BigEndian.Uint16(b[off:]))
		off += 2
		if l == 0 || l > maxErrorClassLen {
			return fmt.Errorf("loadgen: result error-class length %d invalid", l)
		}
		if err := need(l + 8); err != nil {
			return err
		}
		class := string(b[off : off+l])
		off += l
		if r.Errors == nil {
			r.Errors = make(map[string]uint64, nerr)
		}
		r.Errors[class] = binary.BigEndian.Uint64(b[off:])
		off += 8
	}
	if err := need(2 * 8); err != nil {
		return err
	}
	r.MaxLag = time.Duration(binary.BigEndian.Uint64(b[off:]))
	r.Elapsed = time.Duration(binary.BigEndian.Uint64(b[off+8:]))
	off += 16
	if err := need(1); err != nil {
		return err
	}
	switch b[off] {
	case 0:
		off++
	case 1:
		off++
		tl := &obs.Timeline{}
		n, err := tl.UnmarshalBinary(b[off:])
		if err != nil {
			return fmt.Errorf("loadgen: result timeline: %w", err)
		}
		off += n
		r.Timeline = tl
	default:
		return fmt.Errorf("loadgen: result timeline flag %d invalid", b[off])
	}
	if rest := len(b) - off; rest != 0 {
		return fmt.Errorf("loadgen: result encoding has %d trailing bytes", rest)
	}
	return nil
}

// resultJSON is the JSON shape of a Result: the same information as the
// binary encoding, readable by external tooling (`pqbench live -json`).
type resultJSON struct {
	Offered   uint64            `json:"offered"`
	Started   uint64            `json:"started"`
	Completed uint64            `json:"completed"`
	Failed    uint64            `json:"failed"`
	Warmup    uint64            `json:"warmup"`
	Resumed   uint64            `json:"resumed"`
	Errors    map[string]uint64 `json:"errors,omitempty"`
	MaxLagNS  int64             `json:"max_lag_ns"`
	ElapsedNS int64             `json:"elapsed_ns"`
	Hist      *Histogram        `json:"hist"`
	Timeline  *obs.Timeline     `json:"timeline,omitempty"`
}

// MarshalJSON renders the Result in the canonical JSON shape.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Offered: r.Offered, Started: r.Started, Completed: r.Completed,
		Failed: r.Failed, Warmup: r.Warmup, Resumed: r.Resumed,
		Errors: r.Errors, MaxLagNS: int64(r.MaxLag), ElapsedNS: int64(r.Elapsed),
		Hist: &r.Hist, Timeline: r.Timeline,
	})
}

// UnmarshalJSON decodes the canonical JSON shape into r.
func (r *Result) UnmarshalJSON(b []byte) error {
	var j resultJSON
	j.Hist = &Histogram{}
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*r = Result{
		Offered: j.Offered, Started: j.Started, Completed: j.Completed,
		Failed: j.Failed, Warmup: j.Warmup, Resumed: j.Resumed,
		Errors: j.Errors, MaxLag: time.Duration(j.MaxLagNS), Elapsed: time.Duration(j.ElapsedNS),
		Hist: *j.Hist, Timeline: j.Timeline,
	}
	return nil
}

// Digest is a short hex fingerprint of the Result's deterministic content:
// the canonical binary encoding with MaxLag and Elapsed zeroed, since those
// two fields measure the host's scheduling, not the run's outcome. In
// Simulate mode every remaining field is a pure function of the schedule,
// so a distributed run's merged digest must equal the single-process
// digest — the exactness check `make dist-smoke` asserts.
func (r *Result) Digest() string {
	c := *r
	c.MaxLag, c.Elapsed = 0, 0
	sum := sha256.Sum256(c.AppendBinary(nil))
	return fmt.Sprintf("%x", sum)[:16]
}

// Canonical Schedule encoding, used by the distributed Assign frame so a
// worker paces exactly the offsets the coordinator split for it:
//
//	u8  version (scheduleCodecV1)
//	i64 seed, u8 dist, f64 rate (IEEE-754 bits)
//	u32 offset count, then i64 nanosecond offsets (ascending)
const scheduleCodecV1 = 1

// maxScheduleOffsets bounds a decoded plan (64M arrivals ≈ 512 MB of
// offsets); a larger count is a corrupt frame.
const maxScheduleOffsets = 1 << 26

// AppendBinary appends the canonical encoding of s to b.
func (s *Schedule) AppendBinary(b []byte) []byte {
	b = append(b, scheduleCodecV1)
	b = binary.BigEndian.AppendUint64(b, uint64(s.Seed))
	b = append(b, byte(s.Dist))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(s.Rate))
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Offsets)))
	for _, off := range s.Offsets {
		b = binary.BigEndian.AppendUint64(b, uint64(off))
	}
	return b
}

// MarshalBinary returns the canonical encoding of s.
func (s *Schedule) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(nil), nil
}

// UnmarshalBinary decodes a canonical encoding into s, enforcing offset
// monotonicity (the dispatcher's pacing loop depends on it).
func (s *Schedule) UnmarshalBinary(b []byte) error {
	const head = 1 + 8 + 1 + 8 + 4
	if len(b) < head {
		return fmt.Errorf("loadgen: schedule encoding truncated (%d bytes)", len(b))
	}
	if b[0] != scheduleCodecV1 {
		return fmt.Errorf("loadgen: unknown schedule encoding version %d", b[0])
	}
	*s = Schedule{
		Seed: int64(binary.BigEndian.Uint64(b[1:])),
		Dist: Dist(b[9]),
		Rate: math.Float64frombits(binary.BigEndian.Uint64(b[10:])),
	}
	n := int(binary.BigEndian.Uint32(b[18:]))
	if n > maxScheduleOffsets {
		return fmt.Errorf("loadgen: schedule encoding claims %d offsets", n)
	}
	if len(b) != head+8*n {
		return fmt.Errorf("loadgen: schedule encoding: %d offsets need %d bytes, have %d", n, head+8*n, len(b))
	}
	if n == 0 {
		return nil
	}
	s.Offsets = make([]time.Duration, n)
	var prev time.Duration
	for i := range s.Offsets {
		off := time.Duration(binary.BigEndian.Uint64(b[head+8*i:]))
		if off < prev {
			return fmt.Errorf("loadgen: schedule offsets not monotone at %d", i)
		}
		s.Offsets[i] = off
		prev = off
	}
	return nil
}
