package loadgen

import "pqtls/internal/obs"

// Histogram is the mergeable log-bucketed latency histogram, now owned by
// internal/obs so the metrics registry can expose the same buckets; the
// alias keeps this package's API unchanged.
type Histogram = obs.Histogram
