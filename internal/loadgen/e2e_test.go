package loadgen

import (
	"net"
	"testing"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/tls13"
)

// startPQLive boots a live server for the paper's kyber768/dilithium3 suite
// with the signing worker pool enabled.
func startPQLive(t *testing.T, signWorkers int) (*live.Server, *tls13.Config) {
	t.Helper()
	creds, err := harness.CredentialsFor("dilithium3", 1)
	if err != nil {
		t.Fatalf("credentials: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv, err := live.Serve(ln, live.Options{
		Config: &tls13.Config{
			KEMName: "kyber768", SigName: "dilithium3", ServerName: "server.example",
			Chain: creds.Chain, PrivateKey: creds.Priv, Buffer: tls13.BufferImmediate,
		},
		IssueTickets: true,
		SignWorkers:  signWorkers,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	return srv, &tls13.Config{
		KEMName: "kyber768", SigName: "dilithium3", ServerName: "server.example", Roots: creds.Roots,
	}
}

// TestE2EPrecomputedFullHandshakes is the end-to-end contract of the whole
// precompute subsystem over real sockets: a kyber768/dilithium3 server
// signing through a worker pool, a client fleet drawing key shares from a
// factory-backed pool and amortizing chain/verifier setup, full handshakes
// only. Every handshake must succeed, every CertificateVerify must have
// gone through the sign pool, and the key-share factory must actually have
// fed the clients.
func TestE2EPrecomputedFullHandshakes(t *testing.T) {
	srv, cfg := startPQLive(t, 2)
	pool := harness.NewKeyPool()
	err := pool.StartFactory(harness.FactoryOptions{
		Suites: []string{"kyber768"}, Target: 24, LowWater: 12, Batch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.StopFactory()

	sched := NewSchedule(7, DistUniform, 100, 400*time.Millisecond)
	res, err := Run(Options{
		Addr: srv.Addr().String(), Config: cfg, Schedule: sched,
		KeyShares: pool, Amortize: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if res.Failed != 0 {
		t.Fatalf("failures on loopback: %v", res.Errors)
	}
	if res.Completed != res.Started {
		t.Errorf("completed %d of %d", res.Completed, res.Started)
	}
	// Every full handshake's CertificateVerify went through the pool, and
	// the pool produced nothing else.
	sp := srv.SignPoolStats()
	if sp.Signs != res.Completed || sp.Errors != 0 {
		t.Errorf("sign pool stats %+v, want %d signs and no errors", sp, res.Completed)
	}
	// The factory fed the fleet: with a 24-deep pool and batch refills, most
	// (often all) handshakes hit pooled key shares.
	if st := pool.FactoryStats(); st.Hits == 0 {
		t.Errorf("no loadgen handshake drew from the key-share factory: %+v", st)
	}
	// The schedule the run executed is reproducible: an identically
	// parameterized schedule digests to the same plan (what live-smoke
	// asserts across separate processes).
	if got, want := sched.Digest(), NewSchedule(7, DistUniform, 100, 400*time.Millisecond).Digest(); got != want {
		t.Errorf("schedule digest not reproducible: %s vs %s", got, want)
	}
}

// TestE2EPrecomputedResumption checks the subsystem against the resumption
// path: with tickets enabled, the priming handshake is the only one that
// needs a signature, and every scheduled handshake resumes.
func TestE2EPrecomputedResumption(t *testing.T) {
	srv, cfg := startPQLive(t, 2)
	pool := harness.NewKeyPool()
	err := pool.StartFactory(harness.FactoryOptions{
		Suites: []string{"kyber768"}, Target: 16, LowWater: 8, Batch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.StopFactory()

	sched := NewSchedule(11, DistExponential, 100, 300*time.Millisecond)
	res, err := Run(Options{
		Addr: srv.Addr().String(), Config: cfg, Schedule: sched,
		Resume: true, KeyShares: pool, Amortize: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if res.Failed != 0 {
		t.Fatalf("failures on loopback: %v", res.Errors)
	}
	if res.Resumed != res.Completed {
		t.Errorf("resumed %d of %d completions, want all", res.Resumed, res.Completed)
	}
	// Only the priming full handshake required a CertificateVerify.
	if sp := srv.SignPoolStats(); sp.Signs != 1 || sp.Errors != 0 {
		t.Errorf("sign pool stats %+v, want exactly the priming signature", sp)
	}
}

// TestE2EDrainMidRefill interleaves the shutdown paths: the key-share
// factory is stopped while the load run is still in flight (consumers
// degrade to inline keygen, never fail) and the server then drains with the
// sign pool closing behind the last connection. Nothing may error, hang, or
// lose a handshake; run under -race by `make race`.
func TestE2EDrainMidRefill(t *testing.T) {
	srv, cfg := startPQLive(t, 2)
	pool := harness.NewKeyPool()
	err := pool.StartFactory(harness.FactoryOptions{
		Suites: []string{"kyber768"}, Target: 8, LowWater: 4, Batch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	stopped := make(chan error, 1)
	go func() {
		// Land the StopFactory mid-run: consumers are taking and the
		// factory is refilling when the stop arrives.
		time.Sleep(50 * time.Millisecond)
		stopped <- pool.StopFactory()
	}()

	sched := NewSchedule(3, DistUniform, 120, 300*time.Millisecond)
	res, err := Run(Options{
		Addr: srv.Addr().String(), Config: cfg, Schedule: sched,
		KeyShares: pool, Amortize: true,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := <-stopped; err != nil {
		t.Fatalf("mid-run StopFactory: %v", err)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if res.Failed != 0 {
		t.Fatalf("failures with factory stopped mid-run: %v", res.Errors)
	}
	if res.Completed != res.Started {
		t.Errorf("completed %d of %d", res.Completed, res.Started)
	}
	if sp := srv.SignPoolStats(); sp.Signs != res.Completed {
		t.Errorf("sign pool signed %d, want %d", sp.Signs, res.Completed)
	}
}
