// Package loadgen drives the real TLS 1.3 stack over TCP sockets under
// open-loop load: handshakes start at pre-computed arrival times regardless
// of how long earlier handshakes take, the arrival process the server-load
// literature uses because it does not let a slow server throttle its own
// offered load. The schedule is a seeded deterministic function of its
// parameters — two runs with the same seed offer byte-identical arrival
// plans, so live measurements differ only in what the host actually did,
// never in what was asked of it.
package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Dist selects the inter-arrival distribution of the open-loop schedule.
type Dist int

const (
	// DistExponential draws exponential gaps (a Poisson arrival process,
	// mean 1/rate) — the standard model for independent clients.
	DistExponential Dist = iota
	// DistUniform draws gaps uniformly from [0, 2/rate) (same mean, bounded
	// burstiness) — useful to separate queueing effects from arrival noise.
	DistUniform
)

// String names the distribution for reports and flag round-trips.
func (d Dist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	default:
		return "exp"
	}
}

// ParseDist parses a -dist flag value.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "exp", "exponential", "poisson":
		return DistExponential, nil
	case "uniform":
		return DistUniform, nil
	}
	return 0, fmt.Errorf("loadgen: unknown distribution %q (want exp or uniform)", s)
}

// Schedule is an open-loop arrival plan: offsets from run start at which
// new handshakes begin.
type Schedule struct {
	Offsets []time.Duration
	Dist    Dist
	Rate    float64
	Seed    int64
}

// NewSchedule builds the arrival plan for rate arrivals/second over the
// given span. The gap sequence comes from a SHA-256 counter-mode DRBG keyed
// on (seed, dist, rate, span) — the same construction the harness uses for
// sample randomness — so the plan depends only on its parameters, not on
// math/rand's generator or the Go release.
func NewSchedule(seed int64, dist Dist, rate float64, span time.Duration) *Schedule {
	s := &Schedule{Dist: dist, Rate: rate, Seed: seed}
	if rate <= 0 || span <= 0 {
		return s
	}
	rng := newScheduleDRBG(seed, dist, rate, span)
	mean := float64(time.Second) / rate // mean gap in nanoseconds
	var at float64
	for {
		u := rng.float64()
		var gap float64
		switch dist {
		case DistUniform:
			gap = u * 2 * mean
		default:
			// Inverse-CDF sample; u is in [0,1), so 1-u never hits zero.
			gap = -math.Log(1-u) * mean
		}
		at += gap
		if at >= float64(span) {
			return s
		}
		s.Offsets = append(s.Offsets, time.Duration(at))
	}
}

// Split partitions the plan round-robin into n sub-schedules, preserving
// absolute offsets: part i takes offsets i, i+n, i+2n, … of the original,
// each still measured from the shared run start. The parts are disjoint,
// cover the plan exactly, and stay sorted (the source offsets are
// monotone), so n dispatchers pacing the parts against one clock reproduce
// the unsplit arrival process. The partition is a pure function of the
// schedule and n — same seed and worker count, same parts, same digests.
//
// n must be in [1, len(Offsets)]: a non-positive count has no meaning, and
// more parts than arrivals would mint empty shards a distributed
// coordinator would then assign as no-op work. Both edges are explicit
// errors, never a panic or a silent clamp — the caller decides how to
// shrink its worker count.
func (s *Schedule) Split(n int) ([]*Schedule, error) {
	if n < 1 {
		return nil, fmt.Errorf("loadgen: Split(%d): part count must be positive", n)
	}
	if n > len(s.Offsets) {
		return nil, fmt.Errorf("loadgen: Split(%d): schedule has only %d arrivals", n, len(s.Offsets))
	}
	parts := make([]*Schedule, n)
	for i := range parts {
		parts[i] = &Schedule{Dist: s.Dist, Rate: s.Rate / float64(n), Seed: s.Seed}
	}
	for i, off := range s.Offsets {
		p := parts[i%n]
		p.Offsets = append(p.Offsets, off)
	}
	return parts, nil
}

// Digest is a short hex fingerprint of the exact arrival offsets. Two runs
// printing the same digest offered the identical load plan — the
// reproducibility check `make live-smoke` asserts.
func (s *Schedule) Digest() string {
	h := sha256.New()
	var buf [8]byte
	for _, off := range s.Offsets {
		binary.BigEndian.PutUint64(buf[:], uint64(off))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// scheduleDRBG is SHA-256 in counter mode over the schedule coordinate
// (compare harness.sampleDRBG, which seeds endpoint randomness the same way).
type scheduleDRBG struct {
	seed [32]byte
	ctr  uint64
}

func newScheduleDRBG(seed int64, dist Dist, rate float64, span time.Duration) *scheduleDRBG {
	h := sha256.New()
	fmt.Fprintf(h, "pqtls-loadgen|%d|%s|%g|%d", seed, dist, rate, span)
	d := &scheduleDRBG{}
	h.Sum(d.seed[:0])
	return d
}

// float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (d *scheduleDRBG) float64() float64 {
	var block [40]byte
	copy(block[:32], d.seed[:])
	binary.BigEndian.PutUint64(block[32:], d.ctr)
	d.ctr++
	sum := sha256.Sum256(block[:])
	x := binary.BigEndian.Uint64(sum[:8])
	return float64(x>>11) / (1 << 53)
}
