package loadgen

import (
	"testing"
	"time"

	"pqtls/internal/stats"
)

// relClose reports whether got is within 5% of want (one bucket of the
// ~4%-resolution histogram plus rounding).
func relClose(got, want time.Duration) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return float64(d) <= 0.05*float64(want)
}

// TestHistogramQuantileTable checks the log-bucketed quantiles against the
// exact nearest-rank definition in internal/stats on a spread of shapes.
func TestHistogramQuantileTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []time.Duration
	}{
		{"uniform-ms", ramp(1*time.Millisecond, 1*time.Millisecond, 100)},
		{"microseconds", ramp(5*time.Microsecond, 3*time.Microsecond, 64)},
		{"heavy-tail", append(ramp(1*time.Millisecond, 10*time.Microsecond, 99), 2*time.Second)},
		{"single", []time.Duration{42 * time.Millisecond}},
	}
	qs := []float64{0, 0.5, 0.95, 0.99, 1}
	for _, tc := range cases {
		var h Histogram
		for _, x := range tc.xs {
			h.Record(x)
		}
		if h.Count() != uint64(len(tc.xs)) {
			t.Fatalf("%s: count %d, want %d", tc.name, h.Count(), len(tc.xs))
		}
		for _, q := range qs {
			got, want := h.Quantile(q), stats.Quantile(tc.xs, q)
			if !relClose(got, want) {
				t.Errorf("%s: q%.2f = %v, want within 5%% of %v", tc.name, q, got, want)
			}
		}
		if mn, mx := stats.MinMax(tc.xs); h.Min() != mn || h.Max() != mx {
			t.Errorf("%s: min/max %v/%v, want exact %v/%v", tc.name, h.Min(), h.Max(), mn, mx)
		}
		if got, want := h.Mean(), stats.Mean(tc.xs); got != want {
			t.Errorf("%s: mean %v, want exact %v", tc.name, got, want)
		}
	}
}

// TestHistogramMerge checks that merging shards is equivalent to recording
// everything into one histogram — the property the per-worker lock-free
// recording depends on.
func TestHistogramMerge(t *testing.T) {
	xs := ramp(100*time.Microsecond, 77*time.Microsecond, 300)
	var whole, a, b Histogram
	for i, x := range xs {
		whole.Record(x)
		if i%2 == 0 {
			a.Record(x)
		} else {
			b.Record(x)
		}
	}
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(nil)          // no-op
	merged.Merge(&Histogram{}) // empty no-op
	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("merged summary differs from whole-sample summary")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("q%.2f: merged %v, whole %v", q, got, want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

// TestHistogramExtremes exercises the clamp buckets: sub-microsecond and
// multi-hour observations land in the edge buckets but min/max stay exact.
func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(10 * time.Nanosecond)
	h.Record(6 * time.Hour)
	if h.Min() != 10*time.Nanosecond || h.Max() != 6*time.Hour {
		t.Fatalf("extremes: min %v max %v", h.Min(), h.Max())
	}
	if got := h.Quantile(0); got != 10*time.Nanosecond {
		t.Errorf("p0 = %v, want clamped to observed min", got)
	}
	if got := h.Quantile(1); got != 6*time.Hour {
		t.Errorf("p100 = %v, want clamped to observed max", got)
	}
}

// ramp returns n durations start, start+step, start+2·step, ...
func ramp(start, step time.Duration, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = start + time.Duration(i)*step
	}
	return out
}
