package loadgen

import (
	"encoding/hex"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"pqtls/internal/obs"
)

// goldenResult is a fixed Result exercising every encoded field: histogram
// records across buckets, all counters, two error classes, extremes, and a
// trailing windowed timeline.
func goldenResult() *Result {
	r := &Result{
		Offered: 7, Started: 7, Completed: 5, Failed: 2, Warmup: 1, Resumed: 3,
		Errors:  map[string]uint64{"dial": 1, "timeout": 1},
		MaxLag:  1500 * time.Microsecond,
		Elapsed: 2 * time.Second,
	}
	for _, d := range []time.Duration{
		800 * time.Nanosecond, // below histBase: bucket 0 + exact min
		time.Millisecond,
		time.Millisecond, // repeat: bucket count 2
		40 * time.Millisecond,
	} {
		r.Hist.Record(d)
	}
	tl := obs.NewTimeline(100 * time.Millisecond)
	tl.RecordStart(5 * time.Millisecond)
	tl.RecordStart(150 * time.Millisecond)
	tl.RecordComplete(35*time.Millisecond, time.Millisecond, true, false)
	tl.RecordFailure(210*time.Millisecond, "dial")
	r.Timeline = tl
	return r
}

// TestResultCodecGolden pins the canonical byte encoding. The distributed
// wire protocol, the -json artifacts, and the Result digest all assume
// these exact bytes; a change here is a protocol version bump, not a
// refactor.
func TestResultCodecGolden(t *testing.T) {
	const want = "02010000000000000004000000000280e1a000000000000003200000000002625a00000000030000000000000000000100b00000000000000002010e00000000000000010000000000000007000000000000000700000000000000050000000000000002000000000000000100000000000000030000000200046469616c0000000000000001000774696d656f75740000000000000001000000000016e360000000007735940001010000000005f5e100000000030000000000000000000000000000000100000000000000010000000000000000000000000000000000000000000000010000000001000000000000000100000000000f424000000000000f424000000000000f42400000000100b0000000000000000100000000000000010000000000000001000000000000000000000000000000000000000000000000000000000000000000000000010000000000000000000000000000000000000000000000000000000000000000000000000000000000000002000000000000000000000000000000000000000000000001000000000000000000000000000000000000000100046469616c000000000000000101000000000000000000000000000000000000000000000000000000000000000000000000"
	b, err := goldenResult().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(b); got != want {
		t.Errorf("canonical encoding changed:\n got %s\nwant %s", got, want)
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	r := goldenResult()
	b, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if !reflect.DeepEqual(r, &back) {
		t.Fatalf("binary round trip mismatch:\n got %+v\nwant %+v", back, *r)
	}
	if r.Digest() != back.Digest() {
		t.Fatal("round trip changed the digest")
	}

	j, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var jback Result
	if err := json.Unmarshal(j, &jback); err != nil {
		t.Fatalf("json round trip: %v", err)
	}
	if !reflect.DeepEqual(r, &jback) {
		t.Fatalf("JSON round trip mismatch:\n got %+v\nwant %+v", jback, *r)
	}
	// Quantiles survive both trips bucket-exactly.
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if back.Hist.Quantile(q) != r.Hist.Quantile(q) || jback.Hist.Quantile(q) != r.Hist.Quantile(q) {
			t.Fatalf("q%.2f changed across codec round trip", q)
		}
	}
}

// TestResultCodecInvalid feeds the decoder the malformed inputs a hostile
// or corrupt peer could: truncations at every byte, a bad version, a bucket
// sum that contradicts the count header, and trailing garbage.
func TestResultCodecInvalid(t *testing.T) {
	b, _ := goldenResult().MarshalBinary()
	for cut := 0; cut < len(b); cut++ {
		var r Result
		if err := r.UnmarshalBinary(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	bad := append([]byte(nil), b...)
	bad[0] = 99
	var r Result
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown version decoded without error")
	}
	if err := r.UnmarshalBinary(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing garbage decoded without error")
	}
	// Corrupt the histogram's n so buckets no longer sum to it.
	bad = append([]byte(nil), b...)
	bad[8]++ // low byte of the histogram's u64 n
	if err := r.UnmarshalBinary(bad); err == nil {
		t.Fatal("bucket/count mismatch decoded without error")
	}
}

// TestResultDigest pins what the digest covers: everything deterministic,
// nothing host-dependent (MaxLag, Elapsed).
func TestResultDigest(t *testing.T) {
	a, b := goldenResult(), goldenResult()
	b.MaxLag = 99 * time.Second
	b.Elapsed = time.Hour
	if a.Digest() != b.Digest() {
		t.Error("digest depends on MaxLag/Elapsed; it must not")
	}
	b.Completed++
	if a.Digest() == b.Digest() {
		t.Error("digest ignored a counter change")
	}
	c := goldenResult()
	c.Hist.Record(time.Millisecond)
	if a.Digest() == c.Digest() {
		t.Error("digest ignored a histogram change")
	}
}

func TestScheduleCodecRoundTrip(t *testing.T) {
	s := NewSchedule(42, DistUniform, 250, time.Second)
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if !reflect.DeepEqual(s, &back) {
		t.Fatal("schedule round trip mismatch")
	}
	if s.Digest() != back.Digest() {
		t.Fatal("schedule round trip changed the digest")
	}
	// Split parts survive the codec too — the Assign frame's exact case.
	parts, err := s.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	pb := parts[1].AppendBinary(nil)
	var part Schedule
	if err := part.UnmarshalBinary(pb); err != nil {
		t.Fatal(err)
	}
	if part.Digest() != parts[1].Digest() {
		t.Fatal("split part round trip changed the digest")
	}
}

func TestScheduleCodecInvalid(t *testing.T) {
	s := NewSchedule(1, DistExponential, 100, time.Second)
	b, _ := s.MarshalBinary()
	for _, cut := range []int{0, 5, len(b) - 1} {
		var back Schedule
		if err := back.UnmarshalBinary(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", cut)
		}
	}
	bad := append([]byte(nil), b...)
	bad[0] = 9
	var back Schedule
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("unknown version decoded without error")
	}
	// Non-monotone offsets are rejected (the dispatcher paces in order).
	bad = append([]byte(nil), b...)
	copy(bad[len(bad)-8:], []byte{0, 0, 0, 0, 0, 0, 0, 1})
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("non-monotone offsets decoded without error")
	}
}
