package loadgen

import (
	"sync"
	"sync/atomic"
	"time"

	"pqtls/internal/sig"
	"pqtls/internal/tls13"
)

// VerifyPool batches the client side's CertificateVerify checks across
// concurrent handshakes. A load-generation pool holding hundreds of
// in-flight connections to the same server verifies the same Dilithium key
// over and over; each check spends most of its time in SHAKE expansions
// that a sig.BatchVerifier can interleave through one multi-sponge pass.
// Connection goroutines submit their check and park on a future; worker
// goroutines collect submissions into batches, flushing when a batch fills
// or when a microsecond-scale latency bound expires — under load batches
// fill instantly, at low rates the bound caps the added latency to well
// under the verify itself.
//
// VerifyPool implements tls13.CVVerifier, so it plugs directly into
// tls13.Config.CVVerifier. The tls13 client only consults the hook when
// Config.Rand is nil, which keeps pooled results out of DRBG-pinned
// handshakes — the same bypass invariant the key-share factory follows.
type VerifyPool struct {
	cache *sig.VerifierCache
	jobs  chan *verifyJob
	wg    sync.WaitGroup
	batch int
	wait  time.Duration

	verifies atomic.Uint64
	batches  atomic.Uint64
	batched  atomic.Uint64
	singles  atomic.Uint64

	mu     sync.RWMutex
	closed bool
}

// verifyJob is one pending CertificateVerify check. bv is non-nil when the
// cached verifier supports batching; v always works.
type verifyJob struct {
	v        sig.Verifier
	bv       sig.BatchVerifier
	msg, sig []byte
	done     chan struct{}
	ok       bool
}

// NewVerifyPool starts workers goroutines batching verifications. batch
// bounds items per flush (0 = 16); wait is the latency bound a partially
// filled batch waits for stragglers (0 = 200µs). The pool keeps its own
// verifier cache, so precomputed contexts are shared across every
// connection that routes through it.
func NewVerifyPool(workers, batch int, wait time.Duration) *VerifyPool {
	if workers <= 0 {
		workers = 1
	}
	if batch <= 0 {
		batch = 16
	}
	if wait <= 0 {
		wait = 200 * time.Microsecond
	}
	p := &VerifyPool{
		cache: sig.NewVerifierCache(0),
		jobs:  make(chan *verifyJob, 4*batch*workers),
		batch: batch,
		wait:  wait,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// VerifyCV implements tls13.CVVerifier: submit the check and wait for its
// batch to flush. After Close the check runs inline on the caller — the
// decision is always correct, only the amortization is gone.
func (p *VerifyPool) VerifyCV(scheme sig.Scheme, pub, msg, sigBytes []byte) bool {
	v := p.cache.For(scheme, pub)
	j := &verifyJob{v: v, msg: msg, sig: sigBytes, done: make(chan struct{})}
	j.bv, _ = v.(sig.BatchVerifier)
	// The send happens under the read lock so Close's write lock cannot
	// close(p.jobs) between the closed check and the send (same discipline
	// as live.SignPool).
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		p.singles.Add(1)
		p.verifies.Add(1)
		return v.Verify(msg, sigBytes)
	}
	p.jobs <- j
	p.mu.RUnlock()
	<-j.done
	return j.ok
}

// worker gathers one batch at a time: the first job blocks indefinitely,
// then stragglers are collected until the batch fills or the latency bound
// expires.
func (p *VerifyPool) worker() {
	defer p.wg.Done()
	batch := make([]*verifyJob, 0, p.batch)
	for {
		j, ok := <-p.jobs
		if !ok {
			return
		}
		batch = append(batch[:0], j)
		deadline := time.NewTimer(p.wait)
	gather:
		for len(batch) < p.batch {
			select {
			case j2, ok := <-p.jobs:
				if !ok {
					break gather
				}
				batch = append(batch, j2)
			case <-deadline.C:
				break gather
			}
		}
		deadline.Stop()
		p.flush(batch)
	}
}

// flush resolves one gathered batch. Jobs sharing a batching verifier (the
// cache hands every connection to the same server the same context, so the
// interface values compare equal) go through one VerifyBatch call; the
// rest verify individually.
func (p *VerifyPool) flush(batch []*verifyJob) {
	var groups map[sig.BatchVerifier][]*verifyJob
	for _, j := range batch {
		if j.bv == nil {
			j.ok = j.v.Verify(j.msg, j.sig)
			p.singles.Add(1)
			p.verifies.Add(1)
			close(j.done)
			continue
		}
		if groups == nil {
			groups = make(map[sig.BatchVerifier][]*verifyJob, 1)
		}
		groups[j.bv] = append(groups[j.bv], j)
	}
	for bv, g := range groups {
		if len(g) == 1 {
			g[0].ok = bv.Verify(g[0].msg, g[0].sig)
			p.singles.Add(1)
			p.verifies.Add(1)
			close(g[0].done)
			continue
		}
		msgs := make([][]byte, len(g))
		sigs := make([][]byte, len(g))
		for i, j := range g {
			msgs[i], sigs[i] = j.msg, j.sig
		}
		res := bv.VerifyBatch(msgs, sigs)
		p.batches.Add(1)
		p.batched.Add(uint64(len(g)))
		p.verifies.Add(uint64(len(g)))
		for i, j := range g {
			j.ok = res[i]
			close(j.done)
		}
	}
}

// Close stops accepting work, lets the workers drain everything already
// queued, and waits for them to exit. Futures submitted before Close all
// resolve; VerifyCV afterwards verifies inline. Idempotent.
func (p *VerifyPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// VerifyPoolStats is a snapshot of a pool's counters.
type VerifyPoolStats struct {
	Verifies uint64 // total decisions produced
	Batches  uint64 // VerifyBatch calls issued
	Batched  uint64 // decisions that went through a batched call
	Singles  uint64 // decisions verified one at a time
	Depth    int    // jobs currently queued (not yet picked up)
	Cache    sig.VerifierCacheStats
}

// Stats returns a point-in-time snapshot.
func (p *VerifyPool) Stats() VerifyPoolStats {
	return VerifyPoolStats{
		Verifies: p.verifies.Load(),
		Batches:  p.batches.Load(),
		Batched:  p.batched.Load(),
		Singles:  p.singles.Load(),
		Depth:    len(p.jobs),
		Cache:    p.cache.Stats(),
	}
}

// compile-time hook check
var _ tls13.CVVerifier = (*VerifyPool)(nil)
