package dist

import (
	"encoding/binary"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
)

// tcpPair returns two ends of a real loopback TCP connection (net.Pipe has
// no buffering, which would deadlock single-goroutine framing tests).
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(done)
			return
		}
		done <- c
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	server, ok := <-done
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestFrameRoundTrip(t *testing.T) {
	cli, srv := tcpPair(t)
	var stats Stats
	a, b := newProtoConn(cli, &stats), newProtoConn(srv, &stats)
	payload := []byte("hello frames")
	if err := a.send(FrameProgress, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := b.recv()
	if err != nil || typ != FrameProgress || string(got) != string(payload) {
		t.Fatalf("recv = %v, %q, %v", typ, got, err)
	}
	if stats.FramesSent.Load() != 1 || stats.FramesRecv.Load() != 1 {
		t.Fatalf("stats: %d sent, %d recv", stats.FramesSent.Load(), stats.FramesRecv.Load())
	}
	if stats.BytesSent.Load() != uint64(5+len(payload)) || stats.BytesRecv.Load() != uint64(5+len(payload)) {
		t.Fatalf("byte stats: %d sent, %d recv", stats.BytesSent.Load(), stats.BytesRecv.Load())
	}
}

// TestFrameOversized pins MaxFrame enforcement on both sides: send refuses
// to emit an overlong frame, and recv rejects a hostile length header
// before allocating the claimed buffer.
func TestFrameOversized(t *testing.T) {
	cli, srv := tcpPair(t)
	var stats Stats
	a, b := newProtoConn(cli, &stats), newProtoConn(srv, &stats)
	if err := a.send(FrameResult, make([]byte, MaxFrame)); err == nil {
		t.Fatal("send accepted a frame beyond MaxFrame")
	}
	// A raw header claiming MaxFrame+1 body bytes must be rejected without
	// the receiver ever trying to read (or allocate) them.
	hdr := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := cli.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.recv(); err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Fatalf("oversized header error = %v", err)
	}
}

// TestFrameTruncated pins the mid-frame EOF behavior: a header promising
// more bytes than the peer delivers is an explicit truncation error, not a
// hang or a silent short read.
func TestFrameTruncated(t *testing.T) {
	cli, srv := tcpPair(t)
	b := newProtoConn(srv, &Stats{})
	hdr := binary.BigEndian.AppendUint32(nil, 100)
	hdr = append(hdr, byte(FrameResult))
	hdr = append(hdr, []byte("only ten b")...)
	if _, err := cli.Write(hdr); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if _, _, err := b.recv(); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated frame error = %v", err)
	}
	// A zero-length body is equally malformed.
	cli2, srv2 := tcpPair(t)
	b2 := newProtoConn(srv2, &Stats{})
	if _, err := cli2.Write(binary.BigEndian.AppendUint32(nil, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b2.recv(); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

// TestHelloVersioning pins the handshake checks: wrong magic and wrong
// version produce distinct, named errors; a matching hello yields the name.
func TestHelloVersioning(t *testing.T) {
	name, err := decodeHello(encodeHello("w1"))
	if err != nil || name != "w1" {
		t.Fatalf("decodeHello = %q, %v", name, err)
	}
	bad := encodeHello("w1")
	binary.BigEndian.PutUint16(bad[4:], Version+1)
	if _, err := decodeHello(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch error = %v", err)
	}
	bad = encodeHello("w1")
	binary.BigEndian.PutUint32(bad, 0xdeadbeef)
	if _, err := decodeHello(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("magic mismatch error = %v", err)
	}
	if _, err := decodeHello([]byte{1, 2}); err == nil {
		t.Fatal("truncated hello accepted")
	}

	id, err := decodeWelcome(encodeWelcome(7))
	if err != nil || id != 7 {
		t.Fatalf("decodeWelcome = %d, %v", id, err)
	}
	badW := encodeWelcome(7)
	binary.BigEndian.PutUint16(badW[4:], Version+9)
	if _, err := decodeWelcome(badW); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("welcome version mismatch error = %v", err)
	}
}

func TestAssignRoundTrip(t *testing.T) {
	sched := loadgen.NewSchedule(3, loadgen.DistExponential, 100, time.Second)
	parts, err := sched.Split(2)
	if err != nil {
		t.Fatal(err)
	}
	job := JobSpec{
		KEM: "kyber768", Sig: "dilithium3", Addr: "127.0.0.1:4433",
		Simulate: true, Resume: true, Amortize: true,
		Warmup: 50 * time.Millisecond, MaxConcurrent: 64,
		DialTimeout: time.Second, HandshakeTimeout: 2 * time.Second,
		StartDelay:     100 * time.Millisecond,
		WindowInterval: 250 * time.Millisecond,
	}
	payload := encodeAssign(1, 2, job, parts[1])
	shard, stride, gotJob, part, err := decodeAssign(payload)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 1 || stride != 2 {
		t.Fatalf("shard/stride = %d/%d", shard, stride)
	}
	if !reflect.DeepEqual(job, gotJob) {
		t.Fatalf("job round trip: got %+v want %+v", gotJob, job)
	}
	if part.Digest() != parts[1].Digest() {
		t.Fatal("schedule part changed across the assign frame")
	}
	// Truncation at every byte is an error, never a partial decode.
	for cut := 0; cut < len(payload); cut++ {
		if _, _, _, _, err := decodeAssign(payload[:cut]); err == nil {
			t.Fatalf("assign truncated to %d bytes decoded", cut)
		}
	}
	// Out-of-range shard coordinates are rejected.
	if _, _, _, _, err := decodeAssign(encodeAssign(2, 2, job, parts[1])); err == nil {
		t.Fatal("shard == stride accepted")
	}
}

func TestSmallFrameCodecs(t *testing.T) {
	c := counters{Started: 9, Completed: 7, Failed: 2}
	got, err := decodeHeartbeat(encodeHeartbeat(c))
	if err != nil || got != c {
		t.Fatalf("heartbeat = %+v, %v", got, err)
	}
	if _, err := decodeHeartbeat([]byte{1}); err == nil {
		t.Fatal("truncated heartbeat accepted")
	}
	shard, pc, tl, err := decodeProgress(encodeProgress(3, c, nil))
	if err != nil || shard != 3 || pc != c || tl != nil {
		t.Fatalf("progress = %d, %+v, %v, %v", shard, pc, tl, err)
	}
	// With windowed telemetry on, the frame carries a timeline snapshot.
	win := obs.NewTimeline(100 * time.Millisecond)
	win.RecordStart(5 * time.Millisecond)
	win.RecordComplete(35*time.Millisecond, time.Millisecond, false, false)
	withTL := encodeProgress(4, c, win)
	shard, pc, gotTL, err := decodeProgress(withTL)
	if err != nil || shard != 4 || pc != c || gotTL == nil {
		t.Fatalf("progress+timeline = %d, %+v, %v, %v", shard, pc, gotTL, err)
	}
	if gotTL.Digest() != win.Digest() {
		t.Fatal("timeline changed across the progress frame")
	}
	// Truncations inside the timeline and trailing garbage are errors.
	for cut := 0; cut < len(withTL); cut++ {
		if _, _, _, err := decodeProgress(withTL[:cut]); err == nil {
			t.Fatalf("progress truncated to %d bytes decoded", cut)
		}
	}
	if _, _, _, err := decodeProgress(append(append([]byte(nil), withTL...), 0)); err == nil {
		t.Fatal("progress frame with trailing garbage accepted")
	}
	res := &loadgen.Result{Offered: 5, Started: 5, Completed: 5}
	res.Hist.Record(time.Millisecond)
	gotShard, gotRes, err := decodeResult(encodeResult(2, res))
	if err != nil || gotShard != 2 || gotRes.Digest() != res.Digest() {
		t.Fatalf("result frame = %d, %v, %v", gotShard, gotRes, err)
	}
	if _, _, err := decodeResult([]byte{0, 0, 0, 1}); err == nil {
		t.Fatal("result frame with truncated body accepted")
	}
	if reason := decodeAbort(encodeAbort("drain")); reason != "drain" {
		t.Fatalf("abort reason = %q", reason)
	}
}
