// Package dist is the distributed load-generation subsystem: a coordinator
// that partitions an open-loop arrival plan with loadgen.Schedule.Split and
// farms the shards out to worker processes — on this machine or others —
// over a small versioned binary protocol, then merges the streamed
// per-shard loadgen.Results bucket-exactly with Result.Merge. One process
// on one host ceilings the offered load it can generate; fanning the plan
// across workers is how the client side stays provably off the bottleneck
// path while the server under test saturates.
//
// The robustness layer is the part a real fleet needs: per-worker heartbeat
// timeouts, reassignment of a dead worker's shards to live workers (results
// deduplicated by shard id, so a slow worker racing its replacement cannot
// double-count), bounded connect retry with backoff on the worker side, and
// graceful drain on SIGINT at both ends.
//
// Determinism is the correctness bar: the split preserves absolute offsets
// and global sample numbering, and the Result codec is canonical, so in
// loadgen's Simulate mode a run distributed over N workers reproduces the
// single-process run's digest, counters, and quantiles exactly — the check
// `make dist-smoke` (and dist-coordinator's -verify flag) asserts.
package dist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
)

// Wire constants. Every connection opens with a Hello/Welcome exchange
// carrying the magic and protocol version; a mismatch on either side is
// answered with an Abort frame naming the problem, never a silent hang.
const (
	// Magic is "PQLG" — the first four payload bytes of Hello and Welcome.
	Magic = uint32(0x50514c47)
	// Version is the protocol version; there is no negotiation, only
	// equality. Bump it when any frame layout (including the loadgen
	// codecs) changes. Version 2: JobSpec gained WindowInterval, Progress
	// frames carry an optional windowed timeline, and the Result codec
	// grew its trailing timeline (resultCodecV2).
	Version = uint16(2)
	// MaxFrame bounds one frame's body (type byte + payload). The largest
	// legitimate frame is an Assign carrying a shard's offsets (8 bytes per
	// arrival); 16 MiB is ~2M arrivals per shard. Anything larger is a
	// corrupt or hostile length header and is rejected before allocation.
	MaxFrame = 1 << 24
)

// FrameType tags one protocol frame.
type FrameType uint8

const (
	// FrameHello (worker → coordinator): magic, version, worker name.
	FrameHello FrameType = 1 + iota
	// FrameWelcome (coordinator → worker): magic, version, assigned id.
	FrameWelcome
	// FrameAssign (coordinator → worker): shard id, stride, job spec, and
	// the shard's exact arrival offsets.
	FrameAssign
	// FrameHeartbeat (worker → coordinator): liveness plus the worker's
	// aggregate live counters.
	FrameHeartbeat
	// FrameProgress (worker → coordinator): one running shard's live
	// counters.
	FrameProgress
	// FrameResult (worker → coordinator): shard id plus the canonical
	// encoding of the finished shard's loadgen.Result.
	FrameResult
	// FrameAbort (either direction): human-readable reason; the sender is
	// abandoning the run (version rejection, drain, fatal error).
	FrameAbort
)

// String names the frame type for logs and errors.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameAssign:
		return "assign"
	case FrameHeartbeat:
		return "heartbeat"
	case FrameProgress:
		return "progress"
	case FrameResult:
		return "result"
	case FrameAbort:
		return "abort"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Stats counts protocol traffic with atomics, so both endpoints can expose
// frames/bytes in their obs registries without locking the I/O path.
type Stats struct {
	FramesSent, FramesRecv atomic.Uint64
	BytesSent, BytesRecv   atomic.Uint64
}

// protoConn frames one TCP connection: 4-byte big-endian body length, then
// the body (1 type byte + payload). Writes are mutex-serialized so result
// goroutines and the heartbeat ticker can share the connection; reads
// belong to a single reader goroutine per endpoint.
type protoConn struct {
	c     net.Conn
	br    *bufio.Reader
	wmu   sync.Mutex
	stats *Stats
}

func newProtoConn(c net.Conn, stats *Stats) *protoConn {
	return &protoConn{c: c, br: bufio.NewReaderSize(c, 1<<16), stats: stats}
}

// send writes one frame. The header and body go out in a single Write so a
// concurrent sender can never interleave a torn frame.
func (p *protoConn) send(t FrameType, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("dist: %s frame body %d exceeds MaxFrame", t, len(payload)+1)
	}
	buf := make([]byte, 0, 5+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(1+len(payload)))
	buf = append(buf, byte(t))
	buf = append(buf, payload...)
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if _, err := p.c.Write(buf); err != nil {
		return err
	}
	p.stats.FramesSent.Add(1)
	p.stats.BytesSent.Add(uint64(len(buf)))
	return nil
}

// recv reads one frame, enforcing MaxFrame before allocating and treating a
// mid-frame EOF as the explicit truncation error it is.
func (p *protoConn) recv() (FrameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(p.br, hdr[:]); err != nil {
		return 0, nil, err // clean EOF between frames is the peer closing
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("dist: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("dist: frame body %d exceeds MaxFrame %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(p.br, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("dist: truncated frame: got %w after header claiming %d bytes", io.ErrUnexpectedEOF, n)
		}
		return 0, nil, err
	}
	p.stats.FramesRecv.Add(1)
	p.stats.BytesRecv.Add(uint64(4 + n))
	return FrameType(body[0]), body[1:], nil
}

func (p *protoConn) close() error { return p.c.Close() }

// JobSpec is everything a worker needs to run a shard besides the arrival
// offsets themselves: the suite, the target server, the loadgen knobs, and
// the start delay that absorbs assignment skew so all workers begin pacing
// near-simultaneously.
type JobSpec struct {
	// KEM and Sig name the handshake suite. The worker reconstructs the
	// client trust roots locally from the harness's deterministic
	// credential DRBG, so certificates never cross the wire.
	KEM, Sig string
	// Addr is the target server's TCP address (ignored in Simulate mode).
	Addr string
	// Simulate runs loadgen's deterministic synthetic mode — no sockets,
	// exact cross-process reproducibility.
	Simulate bool
	// Resume and Amortize mirror loadgen.Options.
	Resume, Amortize bool
	// Warmup, MaxConcurrent, DialTimeout, HandshakeTimeout mirror
	// loadgen.Options (zero values take loadgen's defaults).
	Warmup                        time.Duration
	MaxConcurrent                 int
	DialTimeout, HandshakeTimeout time.Duration
	// StartDelay is slept between receiving an Assign and pacing the first
	// offset.
	StartDelay time.Duration
	// WindowInterval, when > 0, enables per-shard windowed telemetry
	// (loadgen.Options.WindowInterval): progress frames then carry timeline
	// snapshots and the shard Result ships its timeline for the
	// coordinator's fleet merge.
	WindowInterval time.Duration
}

const (
	jobFlagSimulate = 1 << iota
	jobFlagResume
	jobFlagAmortize
)

// appendString appends a u16-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// frameReader decodes frame payloads with sticky-error semantics: the first
// short read poisons the reader and every later value returns zero, so
// decode functions check err once at the end.
type frameReader struct {
	b   []byte
	err error
}

func (r *frameReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("dist: frame payload truncated")
	}
}

func (r *frameReader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *frameReader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *frameReader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *frameReader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *frameReader) str() string {
	n := int(r.u16())
	if r.err != nil || len(r.b) < n {
		r.fail()
		return ""
	}
	v := string(r.b[:n])
	r.b = r.b[n:]
	return v
}

func (r *frameReader) rest() []byte {
	if r.err != nil {
		return nil
	}
	v := r.b
	r.b = nil
	return v
}

// encodeHello builds a Hello payload.
func encodeHello(name string) []byte {
	b := binary.BigEndian.AppendUint32(nil, Magic)
	b = binary.BigEndian.AppendUint16(b, Version)
	return appendString(b, name)
}

// decodeHello validates magic and version and returns the worker name. The
// error distinguishes a wrong protocol (magic) from a wrong version, since
// the operator fixes them differently.
func decodeHello(payload []byte) (string, error) {
	r := &frameReader{b: payload}
	magic, version := r.u32(), r.u16()
	name := r.str()
	if r.err != nil {
		return "", r.err
	}
	if magic != Magic {
		return "", fmt.Errorf("dist: hello magic %08x, want %08x (not a pqtls loadgen peer)", magic, Magic)
	}
	if version != Version {
		return "", fmt.Errorf("dist: protocol version mismatch: peer speaks %d, this side speaks %d", version, Version)
	}
	return name, nil
}

// encodeWelcome builds a Welcome payload.
func encodeWelcome(workerID uint32) []byte {
	b := binary.BigEndian.AppendUint32(nil, Magic)
	b = binary.BigEndian.AppendUint16(b, Version)
	return binary.BigEndian.AppendUint32(b, workerID)
}

// decodeWelcome validates magic and version and returns the assigned id.
func decodeWelcome(payload []byte) (uint32, error) {
	r := &frameReader{b: payload}
	magic, version, id := r.u32(), r.u16(), r.u32()
	if r.err != nil {
		return 0, r.err
	}
	if magic != Magic {
		return 0, fmt.Errorf("dist: welcome magic %08x, want %08x", magic, Magic)
	}
	if version != Version {
		return 0, fmt.Errorf("dist: protocol version mismatch: coordinator speaks %d, this worker speaks %d", version, Version)
	}
	return id, nil
}

// encodeAssign builds an Assign payload: shard coordinates, job spec, and
// the shard's schedule in its canonical encoding.
func encodeAssign(shard, stride int, job JobSpec, part *loadgen.Schedule) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(shard))
	b = binary.BigEndian.AppendUint32(b, uint32(stride))
	var flags byte
	if job.Simulate {
		flags |= jobFlagSimulate
	}
	if job.Resume {
		flags |= jobFlagResume
	}
	if job.Amortize {
		flags |= jobFlagAmortize
	}
	b = append(b, flags)
	b = appendString(b, job.KEM)
	b = appendString(b, job.Sig)
	b = appendString(b, job.Addr)
	b = binary.BigEndian.AppendUint64(b, uint64(job.Warmup))
	b = binary.BigEndian.AppendUint32(b, uint32(job.MaxConcurrent))
	b = binary.BigEndian.AppendUint64(b, uint64(job.DialTimeout))
	b = binary.BigEndian.AppendUint64(b, uint64(job.HandshakeTimeout))
	b = binary.BigEndian.AppendUint64(b, uint64(job.StartDelay))
	b = binary.BigEndian.AppendUint64(b, uint64(job.WindowInterval))
	return part.AppendBinary(b)
}

// decodeAssign unpacks an Assign payload.
func decodeAssign(payload []byte) (shard, stride int, job JobSpec, part *loadgen.Schedule, err error) {
	r := &frameReader{b: payload}
	shard = int(r.u32())
	stride = int(r.u32())
	flags := r.u8()
	job.Simulate = flags&jobFlagSimulate != 0
	job.Resume = flags&jobFlagResume != 0
	job.Amortize = flags&jobFlagAmortize != 0
	job.KEM = r.str()
	job.Sig = r.str()
	job.Addr = r.str()
	job.Warmup = time.Duration(r.u64())
	job.MaxConcurrent = int(r.u32())
	job.DialTimeout = time.Duration(r.u64())
	job.HandshakeTimeout = time.Duration(r.u64())
	job.StartDelay = time.Duration(r.u64())
	job.WindowInterval = time.Duration(r.u64())
	sched := r.rest()
	if r.err != nil {
		return 0, 0, JobSpec{}, nil, r.err
	}
	if stride < 1 || shard < 0 || shard >= stride {
		return 0, 0, JobSpec{}, nil, fmt.Errorf("dist: assign shard %d of stride %d out of range", shard, stride)
	}
	part = &loadgen.Schedule{}
	if err := part.UnmarshalBinary(sched); err != nil {
		return 0, 0, JobSpec{}, nil, err
	}
	return shard, stride, job, part, nil
}

// counters is the (started, completed, failed) triple heartbeat and
// progress frames carry.
type counters struct {
	Started, Completed, Failed uint64
}

func encodeCounters(b []byte, c counters) []byte {
	b = binary.BigEndian.AppendUint64(b, c.Started)
	b = binary.BigEndian.AppendUint64(b, c.Completed)
	return binary.BigEndian.AppendUint64(b, c.Failed)
}

func (r *frameReader) counters() counters {
	return counters{Started: r.u64(), Completed: r.u64(), Failed: r.u64()}
}

// encodeHeartbeat carries the worker's aggregate live counters.
func encodeHeartbeat(c counters) []byte { return encodeCounters(nil, c) }

func decodeHeartbeat(payload []byte) (counters, error) {
	r := &frameReader{b: payload}
	c := r.counters()
	return c, r.err
}

// encodeProgress carries one running shard's live counters plus, when the
// job enabled windowed telemetry, a snapshot of the shard's timeline so the
// coordinator can serve fleet-wide rollups mid-run.
func encodeProgress(shard int, c counters, tl *obs.Timeline) []byte {
	b := encodeCounters(binary.BigEndian.AppendUint32(nil, uint32(shard)), c)
	if tl != nil {
		b = append(b, 1)
		return tl.AppendBinary(b)
	}
	return append(b, 0)
}

func decodeProgress(payload []byte) (int, counters, *obs.Timeline, error) {
	r := &frameReader{b: payload}
	shard := int(r.u32())
	c := r.counters()
	flag := r.u8()
	body := r.rest()
	if r.err != nil {
		return 0, counters{}, nil, r.err
	}
	switch flag {
	case 0:
		if len(body) != 0 {
			return 0, counters{}, nil, fmt.Errorf("dist: progress frame has %d trailing bytes", len(body))
		}
		return shard, c, nil, nil
	case 1:
		tl := &obs.Timeline{}
		n, err := tl.UnmarshalBinary(body)
		if err != nil {
			return 0, counters{}, nil, err
		}
		if n != len(body) {
			return 0, counters{}, nil, fmt.Errorf("dist: progress frame has %d trailing bytes", len(body)-n)
		}
		return shard, c, tl, nil
	default:
		return 0, counters{}, nil, fmt.Errorf("dist: progress timeline flag %d invalid", flag)
	}
}

// encodeResult carries a finished shard's canonical Result.
func encodeResult(shard int, res *loadgen.Result) []byte {
	return res.AppendBinary(binary.BigEndian.AppendUint32(nil, uint32(shard)))
}

func decodeResult(payload []byte) (int, *loadgen.Result, error) {
	r := &frameReader{b: payload}
	shard := int(r.u32())
	body := r.rest()
	if r.err != nil {
		return 0, nil, r.err
	}
	res := &loadgen.Result{}
	if err := res.UnmarshalBinary(body); err != nil {
		return 0, nil, err
	}
	return shard, res, nil
}

// encodeAbort carries the reason the sender is abandoning the run.
func encodeAbort(reason string) []byte { return appendString(nil, reason) }

func decodeAbort(payload []byte) string {
	r := &frameReader{b: payload}
	reason := r.str()
	if r.err != nil {
		return "(unparseable abort reason)"
	}
	return reason
}
