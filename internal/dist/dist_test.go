package dist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"pqtls/internal/loadgen"
)

// simJob is the deterministic job every integration test runs: Simulate
// mode makes the distributed outcome byte-comparable to a single-process
// reference.
func simJob() JobSpec {
	return JobSpec{KEM: "kyber768", Sig: "dilithium3", Simulate: true, MaxConcurrent: 64}
}

// reference runs the same plan single-process, split the same number of
// ways, producing the Result a correct distributed run must reproduce.
func reference(t *testing.T, sched *loadgen.Schedule, shards int) *loadgen.Result {
	t.Helper()
	ref, err := loadgen.RunWorkers(loadgen.Options{Schedule: sched, Simulate: true, MaxConcurrent: 64}, shards)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func startWorker(t *testing.T, ctx context.Context, addr, name string) <-chan error {
	t.Helper()
	errc := make(chan error, 1)
	go func() {
		errc <- RunWorker(ctx, WorkerOptions{
			Coordinator:       addr,
			Name:              name,
			HeartbeatInterval: 50 * time.Millisecond,
			ConnectAttempts:   10,
			ConnectBackoff:    20 * time.Millisecond,
		})
	}()
	return errc
}

// expectClean drains a worker's error channel: nil (coordinator closed the
// connection) and ErrAborted (explicit shutdown) are both clean exits.
func expectClean(t *testing.T, name string, errc <-chan error) {
	t.Helper()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, ErrAborted) {
			t.Errorf("worker %s exited with %v", name, err)
		}
	case <-time.After(10 * time.Second):
		t.Errorf("worker %s did not exit", name)
	}
}

// TestDistributedMatchesSingleProcess is the subsystem's correctness bar: a
// run split across workers over the real wire protocol reproduces the
// single-process digest, counters, and quantiles exactly.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	sched := loadgen.NewSchedule(11, loadgen.DistExponential, 150, 400*time.Millisecond)
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorOptions{
		Workers: 3, JoinTimeout: 5 * time.Second, HeartbeatTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()
	w1 := startWorker(t, ctx, coord.Addr().String(), "w1")
	w2 := startWorker(t, ctx, coord.Addr().String(), "w2")
	w3 := startWorker(t, ctx, coord.Addr().String(), "w3")

	report, err := coord.Run(ctx, simJob(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Shards) != 3 {
		t.Fatalf("%d shard reports, want 3", len(report.Shards))
	}
	ref := reference(t, sched, 3)
	if got, want := report.Merged.Digest(), ref.Digest(); got != want {
		t.Fatalf("merged digest %s, single-process %s", got, want)
	}
	if report.Merged.Offered != ref.Offered || report.Merged.Completed != ref.Completed ||
		report.Merged.Failed != ref.Failed || report.Merged.Started != ref.Started {
		t.Fatalf("counters diverge: merged %+v, reference %+v", report.Merged, ref)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if m, r := report.Merged.Hist.Quantile(q), ref.Hist.Quantile(q); m != r {
			t.Fatalf("q%.2f: merged %v, reference %v", q, m, r)
		}
	}
	coord.Close()
	expectClean(t, "w1", w1)
	expectClean(t, "w2", w2)
	expectClean(t, "w3", w3)
}

// TestDistributedTimelineExact extends the correctness bar to windowed
// telemetry: a run with WindowInterval set, split over the real wire
// protocol, merges to the byte-identical timeline (and Result digest) of the
// single-process run, and the coordinator's fleet rollup endpoints see it.
func TestDistributedTimelineExact(t *testing.T) {
	sched := loadgen.NewSchedule(13, loadgen.DistExponential, 150, 400*time.Millisecond)
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorOptions{
		Workers: 2, JoinTimeout: 5 * time.Second, HeartbeatTimeout: 2 * time.Second,
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()
	w1 := startWorker(t, ctx, coord.Addr().String(), "w1")
	w2 := startWorker(t, ctx, coord.Addr().String(), "w2")

	job := simJob()
	job.WindowInterval = 100 * time.Millisecond
	report, err := coord.Run(ctx, job, sched)
	if err != nil {
		t.Fatal(err)
	}
	if report.Merged.Timeline == nil {
		t.Fatal("merged result has no timeline despite WindowInterval")
	}
	ref, err := loadgen.RunWorkers(loadgen.Options{
		Schedule: sched, Simulate: true, MaxConcurrent: 64,
		WindowInterval: 100 * time.Millisecond,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := report.Merged.Timeline.Digest(), ref.Timeline.Digest(); got != want {
		t.Fatalf("merged timeline digest %s, single-process %s", got, want)
	}
	if got, want := report.Merged.Digest(), ref.Digest(); got != want {
		t.Fatalf("merged result digest %s, single-process %s", got, want)
	}
	// After the run the coordinator keeps the final fleet timeline for
	// rollups and artifact writers.
	fleet := coord.FleetTimeline()
	if fleet == nil || fleet.Digest() != ref.Timeline.Digest() {
		t.Fatalf("fleet timeline after run = %v, want digest %s", fleet, ref.Timeline.Digest())
	}
	// The coordinator's own scrape endpoint serves the fleet gauges and
	// pqwin_* rollups.
	resp, err := http.Get("http://" + coord.MetricsAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics scrape: status %d, %v", resp.StatusCode, err)
	}
	for _, fam := range []string{MetricWorkersLive, MetricShardsOutstanding, MetricHeartbeatAge, MetricWinCompleted, MetricWinWindows} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("scrape is missing family %s", fam)
		}
	}
	if !strings.Contains(string(body), fmt.Sprintf("%s %d", MetricWinCompleted, ref.Completed)) {
		t.Errorf("pqwin completed rollup does not match the run (%d completions)", ref.Completed)
	}
	coord.Close()
	expectClean(t, "w1", w1)
	expectClean(t, "w2", w2)
}

// TestCoordinatorMetricsListenerNoLeak is the regression test for the
// coordinator's metrics listener lifecycle: repeated open/scrape/close
// cycles must not leave listener or handler goroutines behind.
func TestCoordinatorMetricsListenerNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	for i := 0; i < 3; i++ {
		coord, err := NewCoordinator("127.0.0.1:0", CoordinatorOptions{
			Workers: 1, MetricsAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Get("http://" + coord.MetricsAddr().String() + "/healthz")
		if err != nil {
			coord.Close()
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			coord.Close()
			t.Fatalf("healthz status %d before close", resp.StatusCode)
		}
		if err := coord.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Goroutine counts settle asynchronously (connection teardown); poll with
	// a deadline instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across coordinator lifecycles", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCoordinatorRejectsVersionMismatch pins the registration gate: a peer
// speaking another protocol version gets an Abort frame naming the problem
// and the connection closed — it never joins the fleet.
func TestCoordinatorRejectsVersionMismatch(t *testing.T) {
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	conn, err := net.Dial("tcp", coord.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := newProtoConn(conn, &Stats{})
	hello := encodeHello("time-traveler")
	binary.BigEndian.PutUint16(hello[4:], Version+1)
	if err := pc.send(FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := pc.recv()
	if err != nil {
		t.Fatalf("expected an abort frame, got %v", err)
	}
	if typ != FrameAbort {
		t.Fatalf("got %s frame, want abort", typ)
	}
	if reason := decodeAbort(payload); !strings.Contains(reason, "version") {
		t.Fatalf("abort reason %q does not name the version mismatch", reason)
	}
	if _, _, err := pc.recv(); err == nil {
		t.Fatal("connection stayed open after rejection")
	}
	if n := coord.Workers(); n != 0 {
		t.Fatalf("rejected peer counted as %d registered workers", n)
	}
}

// TestHeartbeatTimeoutReassignment pins the failure model: a worker that
// takes a shard and then falls silent is declared dead, its shard moves to
// a live worker, and the merged Result is still exact.
func TestHeartbeatTimeoutReassignment(t *testing.T) {
	sched := loadgen.NewSchedule(5, loadgen.DistExponential, 120, 300*time.Millisecond)
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorOptions{
		Workers: 2, JoinTimeout: 5 * time.Second, HeartbeatTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// The silent worker registers first (so it is assigned shard 0), then
	// never sends another frame.
	silent, err := net.Dial("tcp", coord.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	spc := newProtoConn(silent, &Stats{})
	if err := spc.send(FrameHello, encodeHello("silent")); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := spc.recv(); err != nil || typ != FrameWelcome {
		t.Fatalf("silent worker handshake: %v frame, %v", typ, err)
	}

	ctx := context.Background()
	live := startWorker(t, ctx, coord.Addr().String(), "live")

	report, err := coord.Run(ctx, simJob(), sched)
	if err != nil {
		t.Fatal(err)
	}
	if report.Reassigned == 0 {
		t.Fatal("silent worker's shard was never reassigned")
	}
	if report.WorkersLost == 0 {
		t.Fatal("silent worker was never declared lost")
	}
	for _, s := range report.Shards {
		if s.Worker != "live" {
			t.Fatalf("shard %d delivered by %q, want the live worker", s.Shard, s.Worker)
		}
	}
	ref := reference(t, sched, 2)
	if got, want := report.Merged.Digest(), ref.Digest(); got != want {
		t.Fatalf("merged digest %s after reassignment, single-process %s", got, want)
	}
	coord.Close()
	expectClean(t, "live", live)
}

// TestDuplicateResultDedup pins result dedup by shard id: a worker sending
// the same shard's Result twice has the second copy dropped and counted,
// and the merge stays exact.
func TestDuplicateResultDedup(t *testing.T) {
	sched := loadgen.NewSchedule(9, loadgen.DistExponential, 100, 300*time.Millisecond)
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorOptions{
		Workers: 1, JoinTimeout: 5 * time.Second, HeartbeatTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	conn, err := net.Dial("tcp", coord.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pc := newProtoConn(conn, &Stats{})
	if err := pc.send(FrameHello, encodeHello("echoer")); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := pc.recv(); err != nil || typ != FrameWelcome {
		t.Fatalf("handshake: %v frame, %v", typ, err)
	}

	// Behave like a worker — run the assigned shard for real — but deliver
	// the result twice.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		typ, payload, err := pc.recv()
		if err != nil || typ != FrameAssign {
			t.Errorf("expected assign, got %v / %v", typ, err)
			return
		}
		shard, stride, job, part, err := decodeAssign(payload)
		if err != nil {
			t.Error(err)
			return
		}
		res, err := loadgen.RunShard(loadgen.Options{
			Schedule: part, Simulate: job.Simulate, MaxConcurrent: job.MaxConcurrent,
		}, shard, stride)
		if err != nil {
			t.Error(err)
			return
		}
		frame := encodeResult(shard, res)
		pc.send(FrameResult, frame)
		pc.send(FrameResult, frame)
	}()

	report, err := coord.Run(context.Background(), simJob(), sched)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	ref := reference(t, sched, 1)
	if got, want := report.Merged.Digest(), ref.Digest(); got != want {
		t.Fatalf("merged digest %s with duplicate result, single-process %s", got, want)
	}
	if report.Merged.Offered != ref.Offered {
		t.Fatalf("duplicate was merged: offered %d, want %d", report.Merged.Offered, ref.Offered)
	}
	// The duplicate may be processed after Run returns; poll the counter.
	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().DuplicateAcked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate result was never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWorkerBoundedRetry pins the connect loop: a worker aimed at a dead
// address fails after its bounded attempts, naming the count.
func TestWorkerBoundedRetry(t *testing.T) {
	// Grab a port and close it so the dial is refused deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	start := time.Now()
	err = RunWorker(context.Background(), WorkerOptions{
		Coordinator:     addr,
		ConnectAttempts: 3,
		ConnectBackoff:  20 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("bounded retry error = %v", err)
	}
	// Backoff doubles: 20 + 40 ms of sleeping across the three attempts.
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("retries finished in %v; backoff not applied", elapsed)
	}
}

// TestWorkerDrainOnCancel pins the SIGINT path: canceling the worker's
// context mid-run announces the drain, stops dispatching, and exits.
func TestWorkerDrainOnCancel(t *testing.T) {
	sched := loadgen.NewSchedule(2, loadgen.DistExponential, 50, 2*time.Second)
	coord, err := NewCoordinator("127.0.0.1:0", CoordinatorOptions{
		Workers: 1, JoinTimeout: 5 * time.Second, HeartbeatTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := startWorker(t, ctx, coord.Addr().String(), "draining")
	runDone := make(chan struct{})
	go func() {
		// The run will not complete (its only worker drains away mid-run);
		// the coordinator reports the fleet death instead of hanging.
		_, err := coord.Run(context.Background(), simJob(), sched)
		if err == nil {
			t.Error("run completed despite its only worker draining")
		}
		close(runDone)
	}()

	time.Sleep(300 * time.Millisecond) // let the shard start
	cancel()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("drained worker exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator run did not observe the fleet dying")
	}
}
