package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
	"pqtls/internal/tls13"
)

// WorkerOptions configure one worker process (or goroutine).
type WorkerOptions struct {
	// Coordinator is the coordinator's TCP address.
	Coordinator string
	// Name identifies this worker in coordinator logs and reports ("" lets
	// the coordinator assign worker-<id>).
	Name string
	// ConnectAttempts bounds the dial retry loop (0 = 5). Backoff doubles
	// from ConnectBackoff (0 = 250ms) between attempts.
	ConnectAttempts int
	ConnectBackoff  time.Duration
	// HeartbeatInterval paces liveness frames (0 = 1s). It must be well
	// under the coordinator's HeartbeatTimeout.
	HeartbeatInterval time.Duration
	// Registry, when non-nil, receives the worker's protocol counters.
	Registry *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// ErrAborted reports that the coordinator told the worker to stand down.
// Workers treat it as a clean exit: the run ended, by drain or completion,
// and this process has nothing left to do.
var ErrAborted = errors.New("dist: coordinator aborted the session")

// RunWorker connects to the coordinator, executes every shard it is
// assigned, and returns when the coordinator closes the session, aborts,
// or ctx is canceled (graceful drain: in-flight shards stop dispatching
// new arrivals, finish what started, and the connection closes).
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.ConnectAttempts <= 0 {
		opts.ConnectAttempts = 5
	}
	if opts.ConnectBackoff <= 0 {
		opts.ConnectBackoff = 250 * time.Millisecond
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = time.Second
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var stats Stats
	if opts.Registry != nil {
		registerProtoStats(opts.Registry, "worker", &stats)
	}

	pc, err := dialCoordinator(ctx, &opts, &stats)
	if err != nil {
		return err
	}
	defer pc.close()

	if err := pc.send(FrameHello, encodeHello(opts.Name)); err != nil {
		return fmt.Errorf("dist: hello: %w", err)
	}
	t, payload, err := pc.recv()
	if err != nil {
		return fmt.Errorf("dist: awaiting welcome: %w", err)
	}
	switch t {
	case FrameWelcome:
		id, err := decodeWelcome(payload)
		if err != nil {
			return err
		}
		logf("dist: registered with %s as worker %d", opts.Coordinator, id)
	case FrameAbort:
		// The coordinator's rejection (version mismatch, shutdown) arrives
		// as an Abort naming the reason.
		return fmt.Errorf("dist: coordinator rejected registration: %s", decodeAbort(payload))
	default:
		return fmt.Errorf("dist: expected welcome, got %s", t)
	}

	w := &workerSession{
		pc: pc, logf: logf,
		interval: opts.HeartbeatInterval,
		shards:   make(map[int]*loadgen.Progress),
	}
	w.cancel = make(chan struct{})

	// Heartbeats carry the aggregate live counters so the coordinator's
	// watchdog sees both liveness and forward motion.
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(opts.HeartbeatInterval)
		defer tick.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-tick.C:
			}
			pc.send(FrameHeartbeat, encodeHeartbeat(w.totals()))
		}
	}()
	defer func() {
		close(hbDone)
		hbWG.Wait()
	}()

	// A canceled context is the SIGINT drain: announce, stop dispatching,
	// let in-flight shards finish, then let the read loop unblock on close.
	drained := make(chan struct{})
	defer close(drained)
	go func() {
		select {
		case <-ctx.Done():
			logf("dist: draining: %v", context.Cause(ctx))
			pc.send(FrameAbort, encodeAbort("worker draining"))
			close(w.cancel)
			w.wg.Wait()
			pc.close()
		case <-drained:
		}
	}()

	for {
		t, payload, err := pc.recv()
		if err != nil {
			w.wg.Wait()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// The coordinator closing the connection after the run is the
			// normal end of a worker's life.
			logf("dist: coordinator closed the session")
			return nil
		}
		switch t {
		case FrameAssign:
			shard, stride, job, part, err := decodeAssign(payload)
			if err != nil {
				pc.send(FrameAbort, encodeAbort(fmt.Sprintf("bad assign: %v", err)))
				w.wg.Wait()
				return fmt.Errorf("dist: bad assign frame: %w", err)
			}
			logf("dist: assigned shard %d/%d (%d arrivals)", shard, stride, len(part.Offsets))
			w.wg.Add(1)
			go w.runShard(shard, stride, job, part)
		case FrameAbort:
			reason := decodeAbort(payload)
			logf("dist: coordinator abort: %s", reason)
			close(w.cancel)
			w.wg.Wait()
			if reason == "coordinator shutting down" || reason == "coordinator draining" {
				return ErrAborted
			}
			return fmt.Errorf("%w: %s", ErrAborted, reason)
		default:
			// Unknown frames are tolerated (forward-compatible within a
			// version); the handshake already pinned the version.
			logf("dist: ignoring unexpected %s frame", t)
		}
	}
}

// workerSession is the mutable state of one registered worker.
type workerSession struct {
	pc       *protoConn
	logf     func(string, ...any)
	interval time.Duration // progress/heartbeat cadence
	cancel   chan struct{}
	wg       sync.WaitGroup

	mu     sync.Mutex
	shards map[int]*loadgen.Progress // live counters, one per running shard
}

// totals sums every shard's live counters — the aggregate the heartbeat
// frames carry.
func (w *workerSession) totals() counters {
	w.mu.Lock()
	defer w.mu.Unlock()
	var c counters
	for _, p := range w.shards {
		c.Started += p.Started.Load()
		c.Completed += p.Completed.Load()
		c.Failed += p.Failed.Load()
	}
	return c
}

// runShard executes one assigned shard and streams the Result back.
func (w *workerSession) runShard(shard, stride int, job JobSpec, part *loadgen.Schedule) {
	defer w.wg.Done()
	if job.StartDelay > 0 {
		// Absorb assignment skew so every worker starts pacing its absolute
		// offsets from (approximately) the same instant.
		t := time.NewTimer(job.StartDelay)
		select {
		case <-t.C:
		case <-w.cancel:
			t.Stop()
		}
	}
	prog := &loadgen.Progress{}
	w.mu.Lock()
	w.shards[shard] = prog
	w.mu.Unlock()
	opts := loadgen.Options{
		Addr:             job.Addr,
		Schedule:         part,
		Warmup:           job.Warmup,
		MaxConcurrent:    job.MaxConcurrent,
		DialTimeout:      job.DialTimeout,
		HandshakeTimeout: job.HandshakeTimeout,
		Resume:           job.Resume,
		Amortize:         job.Amortize,
		Simulate:         job.Simulate,
		Cancel:           w.cancel,
		Progress:         prog,
	}
	if job.WindowInterval > 0 {
		opts.WindowInterval = job.WindowInterval
		opts.Timeline = obs.NewTimeline(job.WindowInterval)
	}

	// Stream this shard's live counters (and, when windowed telemetry is on,
	// a timeline snapshot) at the heartbeat cadence so the coordinator can
	// serve fleet rollups mid-run. The sender stops before the Result goes
	// out: the Result's own timeline supersedes every snapshot.
	progStop := make(chan struct{})
	var progWG sync.WaitGroup
	progWG.Add(1)
	go func() {
		defer progWG.Done()
		tick := time.NewTicker(w.interval)
		defer tick.Stop()
		for {
			select {
			case <-progStop:
				return
			case <-w.cancel:
				return
			case <-tick.C:
			}
			var snap *obs.Timeline
			if opts.Timeline != nil {
				snap = opts.Timeline.Clone()
			}
			w.pc.send(FrameProgress, encodeProgress(shard, counters{
				Started:   prog.Started.Load(),
				Completed: prog.Completed.Load(),
				Failed:    prog.Failed.Load(),
			}, snap))
		}
	}()
	stopProgress := func() {
		close(progStop)
		progWG.Wait()
	}
	if !job.Simulate {
		// Reconstruct the client trust roots locally: the harness credential
		// DRBG is deterministic in (sig, depth), so every worker derives the
		// same roots the server was started with — nothing sensitive or
		// bulky crosses the wire.
		creds, err := harness.CredentialsFor(job.Sig, 1)
		if err != nil {
			stopProgress()
			w.fail(shard, fmt.Errorf("credentials for %s: %w", job.Sig, err))
			return
		}
		opts.Config = &tls13.Config{
			KEMName: job.KEM, SigName: job.Sig,
			ServerName: "server.example", Roots: creds.Roots,
		}
	}
	res, err := loadgen.RunShard(opts, shard, stride)
	stopProgress()
	if err != nil {
		w.fail(shard, err)
		return
	}
	if err := w.pc.send(FrameResult, encodeResult(shard, res)); err != nil {
		w.logf("dist: sending shard %d result: %v", shard, err)
		return
	}
	w.logf("dist: shard %d finished: %d completed, %d failed, digest %s",
		shard, res.Completed, res.Failed, res.Digest())
}

// fail reports a shard-fatal setup error. The coordinator drops this worker
// and reassigns the shard.
func (w *workerSession) fail(shard int, err error) {
	w.logf("dist: shard %d failed: %v", shard, err)
	w.pc.send(FrameAbort, encodeAbort(fmt.Sprintf("shard %d: %v", shard, err)))
}

// dialCoordinator connects with bounded retry and exponential backoff: a
// worker routinely starts before its coordinator finishes binding.
func dialCoordinator(ctx context.Context, opts *WorkerOptions, stats *Stats) (*protoConn, error) {
	backoff := opts.ConnectBackoff
	var lastErr error
	for attempt := 1; attempt <= opts.ConnectAttempts; attempt++ {
		d := net.Dialer{Timeout: 5 * time.Second}
		conn, err := d.DialContext(ctx, "tcp", opts.Coordinator)
		if err == nil {
			return newProtoConn(conn, stats), nil
		}
		lastErr = err
		if opts.Logf != nil {
			opts.Logf("dist: connect attempt %d/%d failed: %v", attempt, opts.ConnectAttempts, err)
		}
		if attempt == opts.ConnectAttempts {
			break
		}
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
		backoff *= 2
	}
	return nil, fmt.Errorf("dist: connecting to coordinator %s: %w (after %d attempts)",
		opts.Coordinator, lastErr, opts.ConnectAttempts)
}
