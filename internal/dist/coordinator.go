package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
)

// Metric family names the coordinator and worker register. Both roles share
// the families, split by the role label, so one scrape of a co-located
// coordinator+worker registry stays unambiguous.
const (
	MetricWorkersJoined    = "pqdist_workers_joined_total"
	MetricWorkersLost      = "pqdist_workers_lost_total"
	MetricShardsReassigned = "pqdist_shards_reassigned_total"
	MetricResultsDuplicate = "pqdist_results_duplicate_total"
	MetricFramesSent       = "pqdist_frames_sent_total"
	MetricFramesRecv       = "pqdist_frames_received_total"
	MetricBytesSent        = "pqdist_bytes_sent_total"
	MetricBytesRecv        = "pqdist_bytes_received_total"
	// Fleet gauges: live membership and progress of the active run.
	MetricWorkersLive       = "pqdist_workers_live"
	MetricShardsOutstanding = "pqdist_shards_outstanding"
	MetricHeartbeatAge      = "pqdist_last_heartbeat_age_ms"
	// Fleet windowed-telemetry rollups, merged from every shard's latest
	// timeline (progress snapshots while running, final Result timelines
	// once shards finish).
	MetricWinWindows   = "pqwin_windows"
	MetricWinStarted   = "pqwin_started_total"
	MetricWinCompleted = "pqwin_completed_total"
	MetricWinFailed    = "pqwin_failed_total"
)

// registerProtoStats exposes one endpoint's frame/byte counters.
func registerProtoStats(reg *obs.Registry, role string, s *Stats) {
	reg.CounterFunc(MetricFramesSent, "Protocol frames written to peers.",
		func() uint64 { return s.FramesSent.Load() }, "role", role)
	reg.CounterFunc(MetricFramesRecv, "Protocol frames read from peers.",
		func() uint64 { return s.FramesRecv.Load() }, "role", role)
	reg.CounterFunc(MetricBytesSent, "Protocol bytes written to peers.",
		func() uint64 { return s.BytesSent.Load() }, "role", role)
	reg.CounterFunc(MetricBytesRecv, "Protocol bytes read from peers.",
		func() uint64 { return s.BytesRecv.Load() }, "role", role)
}

// CoordinatorOptions configure a coordinator.
type CoordinatorOptions struct {
	// Workers is how many workers one Run partitions the plan across; Run
	// blocks until that many have joined (0 = 2). Extra workers that join
	// stay idle as spares and are preferred targets for reassignment.
	Workers int
	// JoinTimeout bounds how long Run waits for the worker quorum (0 = 30s).
	JoinTimeout time.Duration
	// HeartbeatTimeout declares a worker dead when nothing — heartbeat,
	// progress, or result — arrives from it for this long (0 = 5s). Dead
	// workers' unfinished shards are reassigned to live ones.
	HeartbeatTimeout time.Duration
	// Registry, when non-nil, receives the coordinator's counters; nil with
	// MetricsAddr set gives the coordinator a private registry.
	Registry *obs.Registry
	// MetricsAddr, when non-empty, starts an HTTP listener at this address
	// serving GET /metrics (the coordinator's registry, including the
	// pqdist_* fleet gauges and pqwin_* rollups) and GET /healthz. Use ":0"
	// for an ephemeral port and read it back with (*Coordinator).MetricsAddr.
	MetricsAddr string
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// CoordinatorStats is a point-in-time snapshot of fleet bookkeeping.
type CoordinatorStats struct {
	WorkersJoined, WorkersLost       uint64
	ShardsReassigned, DuplicateAcked uint64
	FramesSent, FramesRecv           uint64
	BytesSent, BytesRecv             uint64
}

// Coordinator accepts worker registrations and drives runs. One Run is
// active at a time; workers may join before or during a run.
type Coordinator struct {
	ln   net.Listener
	opts CoordinatorOptions

	proto      Stats
	joined     atomic.Uint64
	lost       atomic.Uint64
	reassigned atomic.Uint64
	duplicates atomic.Uint64

	metricsLn   net.Listener
	httpSrv     *http.Server
	metricsDone chan struct{}

	mu           sync.Mutex
	workers      map[uint32]*remoteWorker
	joinWait     chan struct{} // closed and re-armed on membership growth
	run          *runState
	lastTimeline *obs.Timeline // final fleet timeline of the last finished run
	nextID       uint32
	rrCursor     int
	closed       bool

	wg sync.WaitGroup // accept loop + per-connection readers
}

// remoteWorker is the coordinator's view of one registered worker.
type remoteWorker struct {
	id       uint32
	name     string
	pc       *protoConn
	lastSeen atomic.Int64 // unix nanos of the last frame
	live     counters     // latest heartbeat totals (under Coordinator.mu)
	shards   map[int]bool // assigned, not yet finished (under Coordinator.mu)
	lost     bool         // under Coordinator.mu
}

// runState tracks one Run's shards.
type runState struct {
	job       JobSpec
	parts     []*loadgen.Schedule
	results   []*loadgen.Result     // by shard id; nil = outstanding
	byName    []string              // worker that delivered each shard's result
	timelines map[int]*obs.Timeline // latest progress snapshot per shard
	pending   int
	done      chan struct{}
	failure   error // set before done closes on fatal conditions
}

// ShardReport is one shard's outcome in a RunReport.
type ShardReport struct {
	Shard  int
	Worker string // worker that delivered the accepted result
	Result *loadgen.Result
}

// RunReport is the outcome of one distributed run.
type RunReport struct {
	// Merged is the bucket-exact merge of every shard's Result — the same
	// aggregate a single process running the unsplit schedule computes.
	Merged *loadgen.Result
	// Shards lists per-shard outcomes in shard order.
	Shards []ShardReport
	// Reassigned counts shard assignments that moved to another worker
	// after the original owner was declared dead.
	Reassigned uint64
	// WorkersJoined and WorkersLost cover the coordinator's lifetime.
	WorkersJoined, WorkersLost uint64
}

// NewCoordinator listens on addr (use ":0" for an ephemeral port) and
// starts accepting worker registrations immediately.
func NewCoordinator(addr string, opts CoordinatorOptions) (*Coordinator, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.JoinTimeout <= 0 {
		opts.JoinTimeout = 30 * time.Second
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 5 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	if opts.Registry == nil && opts.MetricsAddr != "" {
		opts.Registry = obs.NewRegistry()
	}
	c := &Coordinator{
		ln:       ln,
		opts:     opts,
		workers:  make(map[uint32]*remoteWorker),
		joinWait: make(chan struct{}),
	}
	if opts.Registry != nil {
		reg := opts.Registry
		reg.CounterFunc(MetricWorkersJoined, "Workers that completed the hello/welcome handshake.",
			func() uint64 { return c.joined.Load() }, "role", "coordinator")
		reg.CounterFunc(MetricWorkersLost, "Workers declared dead (disconnect, abort, or heartbeat timeout).",
			func() uint64 { return c.lost.Load() }, "role", "coordinator")
		reg.CounterFunc(MetricShardsReassigned, "Shards moved to a live worker after their owner died.",
			func() uint64 { return c.reassigned.Load() }, "role", "coordinator")
		reg.CounterFunc(MetricResultsDuplicate, "Shard results dropped because the shard already completed.",
			func() uint64 { return c.duplicates.Load() }, "role", "coordinator")
		reg.GaugeFunc(MetricWorkersLive, "Workers currently registered and live.",
			func() int64 { return int64(c.Workers()) }, "role", "coordinator")
		reg.GaugeFunc(MetricShardsOutstanding, "Shards of the active run without an accepted result.",
			func() int64 { return c.shardsOutstanding() }, "role", "coordinator")
		reg.GaugeFunc(MetricHeartbeatAge, "Milliseconds since the stalest live worker was last heard from.",
			func() int64 { return c.heartbeatAgeMS() }, "role", "coordinator")
		reg.GaugeFunc(MetricWinWindows, "Distinct windows in the merged fleet timeline.",
			func() int64 { return int64(len(c.fleetWindows())) })
		reg.CounterFunc(MetricWinStarted, "Handshakes started, summed over the fleet timeline.",
			func() uint64 { return c.fleetTotals().Started })
		reg.CounterFunc(MetricWinCompleted, "Handshakes completed, summed over the fleet timeline.",
			func() uint64 { return c.fleetTotals().Completed })
		reg.CounterFunc(MetricWinFailed, "Handshakes failed, summed over the fleet timeline.",
			func() uint64 { return c.fleetTotals().Failed })
		registerProtoStats(reg, "coordinator", &c.proto)
	}
	if opts.MetricsAddr != "" {
		mln, err := net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("dist: coordinator metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", opts.Registry.Handler())
		mux.HandleFunc("/healthz", c.healthz)
		c.metricsLn = mln
		c.httpSrv = &http.Server{Handler: mux}
		c.metricsDone = make(chan struct{})
		go func() {
			defer close(c.metricsDone)
			c.httpSrv.Serve(mln)
		}()
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// healthz reports readiness: 200 while accepting workers, 503 once closed.
func (c *Coordinator) healthz(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if closed {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"closed"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// shardsOutstanding is the active run's unfinished shard count (0 when idle).
func (c *Coordinator) shardsOutstanding() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.run == nil {
		return 0
	}
	return int64(c.run.pending)
}

// heartbeatAgeMS is how long ago the stalest live worker last sent any
// frame — the watchdog's view of fleet health (0 with no workers).
func (c *Coordinator) heartbeatAgeMS() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var oldest int64
	now := time.Now().UnixNano()
	for _, w := range c.workers {
		if age := now - w.lastSeen.Load(); age > oldest {
			oldest = age
		}
	}
	return oldest / int64(time.Millisecond)
}

// Addr returns the coordinator's listen address.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// MetricsAddr returns the metrics listener's address, or nil when
// CoordinatorOptions.MetricsAddr was empty.
func (c *Coordinator) MetricsAddr() net.Addr {
	if c.metricsLn == nil {
		return nil
	}
	return c.metricsLn.Addr()
}

// FleetTimeline merges every shard's latest timeline into one fleet view:
// finished shards contribute their Result's final timeline, still-running
// shards their most recent progress snapshot. With no active run it returns
// the last finished run's merged timeline, and nil when no windowed
// telemetry has ever arrived. Merging is exact (absolute window indices), so
// once every shard has finished the fleet timeline is byte-identical to the
// unsplit run's.
func (c *Coordinator) FleetTimeline() *obs.Timeline {
	c.mu.Lock()
	run := c.run
	var srcs []*obs.Timeline
	if run != nil {
		for shard, res := range run.results {
			switch {
			case res != nil && res.Timeline != nil:
				srcs = append(srcs, res.Timeline)
			case run.timelines[shard] != nil:
				srcs = append(srcs, run.timelines[shard])
			}
		}
	} else if c.lastTimeline != nil {
		srcs = append(srcs, c.lastTimeline)
	}
	c.mu.Unlock()
	if len(srcs) == 0 {
		return nil
	}
	out := obs.NewTimeline(srcs[0].Interval())
	for _, tl := range srcs {
		if err := out.Merge(tl); err != nil {
			return nil // mixed intervals: no meaningful fleet view
		}
	}
	return out
}

// fleetTotals folds the fleet timeline into lifetime totals for the pqwin_*
// rollup series (a zero Window when no telemetry exists).
func (c *Coordinator) fleetTotals() obs.Window {
	tl := c.FleetTimeline()
	if tl == nil {
		return obs.Window{}
	}
	return tl.Totals()
}

// fleetWindows returns the fleet timeline's windows (nil when empty).
func (c *Coordinator) fleetWindows() []obs.Window {
	tl := c.FleetTimeline()
	if tl == nil {
		return nil
	}
	return tl.Windows()
}

// Workers returns how many live workers are currently registered.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() CoordinatorStats {
	return CoordinatorStats{
		WorkersJoined: c.joined.Load(), WorkersLost: c.lost.Load(),
		ShardsReassigned: c.reassigned.Load(), DuplicateAcked: c.duplicates.Load(),
		FramesSent: c.proto.FramesSent.Load(), FramesRecv: c.proto.FramesRecv.Load(),
		BytesSent: c.proto.BytesSent.Load(), BytesRecv: c.proto.BytesRecv.Load(),
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// acceptLoop registers workers until the listener closes.
func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return // listener closed by Close
		}
		c.wg.Add(1)
		go c.serveConn(conn)
	}
}

// serveConn runs one worker connection: the hello/welcome handshake, then
// the frame loop until the worker disconnects or is declared lost.
func (c *Coordinator) serveConn(conn net.Conn) {
	defer c.wg.Done()
	pc := newProtoConn(conn, &c.proto)
	// The handshake gets its own deadline so a connect-and-stall peer
	// cannot hold a registration slot; frames after the handshake are
	// governed by the heartbeat timeout instead.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	t, payload, err := pc.recv()
	if err != nil || t != FrameHello {
		if err == nil {
			pc.send(FrameAbort, encodeAbort(fmt.Sprintf("expected hello, got %s", t)))
		}
		pc.close()
		return
	}
	name, err := decodeHello(payload)
	if err != nil {
		// The one frame a version-mismatched peer can rely on: an Abort
		// naming the problem, then a close.
		pc.send(FrameAbort, encodeAbort(err.Error()))
		pc.close()
		c.logf("dist: rejected worker: %v", err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		pc.send(FrameAbort, encodeAbort("coordinator shutting down"))
		pc.close()
		return
	}
	c.nextID++
	w := &remoteWorker{id: c.nextID, name: name, pc: pc, shards: make(map[int]bool)}
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", w.id)
	}
	w.lastSeen.Store(time.Now().UnixNano())
	c.workers[w.id] = w
	// Wake every Run goroutine waiting on membership, then re-arm.
	close(c.joinWait)
	c.joinWait = make(chan struct{})
	c.mu.Unlock()
	c.joined.Add(1)

	if err := pc.send(FrameWelcome, encodeWelcome(w.id)); err != nil {
		c.dropWorker(w, fmt.Errorf("welcome: %w", err))
		return
	}
	c.logf("dist: worker %q joined (id %d, %s)", w.name, w.id, conn.RemoteAddr())

	for {
		t, payload, err := pc.recv()
		if err != nil {
			c.dropWorker(w, err)
			return
		}
		w.lastSeen.Store(time.Now().UnixNano())
		switch t {
		case FrameHeartbeat:
			if live, err := decodeHeartbeat(payload); err == nil {
				c.mu.Lock()
				w.live = live
				c.mu.Unlock()
			}
		case FrameProgress:
			// Per-shard progress refreshes the fleet timeline; liveness was
			// already refreshed above. Snapshots replace, never accumulate —
			// each one is the shard's full timeline so far.
			if shard, live, tl, err := decodeProgress(payload); err == nil {
				if tl != nil {
					c.mu.Lock()
					if c.run != nil && shard >= 0 && shard < len(c.run.results) {
						c.run.timelines[shard] = tl
					}
					c.mu.Unlock()
				}
				c.logf("dist: worker %q shard %d: started %d completed %d failed %d",
					w.name, shard, live.Started, live.Completed, live.Failed)
			}
		case FrameResult:
			shard, res, err := decodeResult(payload)
			if err != nil {
				c.dropWorker(w, fmt.Errorf("undecodable result: %w", err))
				return
			}
			c.acceptResult(w, shard, res)
		case FrameAbort:
			c.dropWorker(w, fmt.Errorf("worker aborted: %s", decodeAbort(payload)))
			return
		default:
			c.dropWorker(w, fmt.Errorf("unexpected %s frame from worker", t))
			return
		}
	}
}

// acceptResult records a finished shard, deduplicating by shard id: after a
// reassignment both the replacement and a slow-but-alive original may
// deliver, and exactly one copy may enter the merge.
func (c *Coordinator) acceptResult(w *remoteWorker, shard int, res *loadgen.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	run := c.run
	if run == nil || shard < 0 || shard >= len(run.results) {
		c.duplicates.Add(1) // a result with no run to own it
		return
	}
	delete(w.shards, shard)
	if run.results[shard] != nil {
		c.duplicates.Add(1)
		c.logf("dist: duplicate result for shard %d from %q dropped", shard, w.name)
		return
	}
	run.results[shard] = res
	run.byName[shard] = w.name
	run.pending--
	c.logf("dist: shard %d done by %q (%d outstanding)", shard, w.name, run.pending)
	if run.pending == 0 {
		close(run.done)
	}
}

// dropWorker removes a worker and reassigns its unfinished shards. Safe to
// call multiple times; only the first has effect.
func (c *Coordinator) dropWorker(w *remoteWorker, cause error) {
	c.mu.Lock()
	if w.lost {
		c.mu.Unlock()
		return
	}
	w.lost = true
	delete(c.workers, w.id)
	orphans := make([]int, 0, len(w.shards))
	for shard := range w.shards {
		orphans = append(orphans, shard)
	}
	w.shards = make(map[int]bool)
	c.mu.Unlock()

	c.lost.Add(1)
	w.pc.close()
	c.logf("dist: worker %q lost: %v (%d shards to reassign)", w.name, cause, len(orphans))
	for _, shard := range orphans {
		c.reassignShard(shard)
	}
}

// reassignShard hands an orphaned shard to the next live worker, round
// robin. With no live workers left the run fails rather than hangs.
func (c *Coordinator) reassignShard(shard int) {
	c.mu.Lock()
	run := c.run
	if run == nil || run.results[shard] != nil {
		c.mu.Unlock()
		return // run over, or a result landed before the owner died
	}
	ids := make([]uint32, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		if run.failure == nil {
			run.failure = fmt.Errorf("dist: no live workers left to take shard %d", shard)
			close(run.done)
		}
		c.mu.Unlock()
		return
	}
	// Deterministic-ish rotation: sort ids, pick by cursor. Map order is
	// random; the sort keeps reassignment from favoring one worker.
	sortUint32(ids)
	w := c.workers[ids[c.rrCursor%len(ids)]]
	c.rrCursor++
	w.shards[shard] = true
	payload := encodeAssign(shard, len(run.parts), run.job, run.parts[shard])
	c.mu.Unlock()

	c.reassigned.Add(1)
	c.logf("dist: reassigning shard %d to %q", shard, w.name)
	if err := w.pc.send(FrameAssign, payload); err != nil {
		c.dropWorker(w, fmt.Errorf("assign shard %d: %w", shard, err))
	}
}

func sortUint32(ids []uint32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// Run partitions sched across the worker quorum and blocks until every
// shard has exactly one accepted Result, the context is canceled, or the
// fleet dies. The merged Result is the bucket-exact aggregate of the
// shards; in Simulate mode its digest equals the single-process digest for
// the same schedule and shard count.
func (c *Coordinator) Run(ctx context.Context, job JobSpec, sched *loadgen.Schedule) (*RunReport, error) {
	if sched == nil || len(sched.Offsets) == 0 {
		return nil, errors.New("dist: empty schedule")
	}
	if err := c.awaitQuorum(ctx); err != nil {
		return nil, err
	}

	nshards := c.opts.Workers
	if n := len(sched.Offsets); nshards > n {
		nshards = n // Split rejects more parts than arrivals
	}
	parts, err := sched.Split(nshards)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.run != nil {
		c.mu.Unlock()
		return nil, errors.New("dist: a run is already active")
	}
	run := &runState{
		job:       job,
		parts:     parts,
		results:   make([]*loadgen.Result, nshards),
		byName:    make([]string, nshards),
		timelines: make(map[int]*obs.Timeline),
		pending:   nshards,
		done:      make(chan struct{}),
	}
	c.run = run
	// Initial assignment: shard i to the i-th live worker in join order.
	ids := make([]uint32, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sortUint32(ids)
	assignees := make([]*remoteWorker, nshards)
	for i := range parts {
		w := c.workers[ids[i%len(ids)]]
		w.shards[i] = true
		assignees[i] = w
	}
	c.mu.Unlock()

	for i, w := range assignees {
		if err := w.pc.send(FrameAssign, encodeAssign(i, nshards, job, parts[i])); err != nil {
			c.dropWorker(w, fmt.Errorf("assign shard %d: %w", i, err))
		}
	}

	// The watchdog declares silent workers dead. Any frame refreshes
	// lastSeen, so only a truly wedged or vanished worker trips it.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go c.watchdog(watchdogDone)

	select {
	case <-run.done:
	case <-ctx.Done():
		c.abortRun("coordinator draining")
		c.finishRun()
		return nil, ctx.Err()
	}
	report := c.finishRun()
	if run.failure != nil {
		return report, run.failure
	}
	return report, nil
}

// awaitQuorum blocks until opts.Workers workers are registered.
func (c *Coordinator) awaitQuorum(ctx context.Context) error {
	deadline := time.NewTimer(c.opts.JoinTimeout)
	defer deadline.Stop()
	for {
		c.mu.Lock()
		n, wait := len(c.workers), c.joinWait
		c.mu.Unlock()
		if n >= c.opts.Workers {
			return nil
		}
		c.logf("dist: waiting for workers: %d/%d joined", n, c.opts.Workers)
		select {
		case <-wait:
		case <-ctx.Done():
			return ctx.Err()
		case <-deadline.C:
			return fmt.Errorf("dist: only %d of %d workers joined within %v", n, c.opts.Workers, c.opts.JoinTimeout)
		}
	}
}

// watchdog scans worker liveness until the run ends.
func (c *Coordinator) watchdog(done <-chan struct{}) {
	interval := c.opts.HeartbeatTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-c.opts.HeartbeatTimeout).UnixNano()
		c.mu.Lock()
		var stale []*remoteWorker
		for _, w := range c.workers {
			if len(w.shards) > 0 && w.lastSeen.Load() < cutoff {
				stale = append(stale, w)
			}
		}
		c.mu.Unlock()
		for _, w := range stale {
			c.dropWorker(w, fmt.Errorf("heartbeat timeout (%v)", c.opts.HeartbeatTimeout))
		}
	}
}

// abortRun tells every live worker to stand down.
func (c *Coordinator) abortRun(reason string) {
	c.mu.Lock()
	ws := make([]*remoteWorker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	payload := encodeAbort(reason)
	for _, w := range ws {
		w.pc.send(FrameAbort, payload)
	}
}

// finishRun detaches the active run and builds its report from whatever
// shards completed.
func (c *Coordinator) finishRun() *RunReport {
	c.mu.Lock()
	run := c.run
	c.run = nil
	for _, w := range c.workers {
		w.shards = make(map[int]bool)
	}
	c.mu.Unlock()
	if run == nil {
		return nil
	}
	report := &RunReport{
		Reassigned:    c.reassigned.Load(),
		WorkersJoined: c.joined.Load(),
		WorkersLost:   c.lost.Load(),
	}
	merged := &loadgen.Result{}
	for i, res := range run.results {
		if res == nil {
			continue
		}
		report.Shards = append(report.Shards, ShardReport{Shard: i, Worker: run.byName[i], Result: res})
		merged.Merge(res)
	}
	report.Merged = merged
	// Keep the final fleet timeline for post-run scrapes of the pqwin_*
	// rollups and for artifact writers that ask after Run returns.
	if merged.Timeline != nil {
		c.mu.Lock()
		c.lastTimeline = merged.Timeline
		c.mu.Unlock()
	}
	return report
}

// Close shuts the coordinator down: the listener stops, every worker gets
// an Abort, and all connection goroutines are joined.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ws := make([]*remoteWorker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	err := c.ln.Close()
	for _, w := range ws {
		w.pc.send(FrameAbort, encodeAbort("coordinator shutting down"))
		w.pc.close()
	}
	c.wg.Wait()
	if c.httpSrv != nil {
		// Close the listener and wait for the Serve goroutine, so Close
		// leaves no coordinator goroutines behind.
		c.httpSrv.Close()
		<-c.metricsDone
	}
	return err
}
