package tls13

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Handshake message types.
const (
	typeClientHello       uint8 = 1
	typeServerHello       uint8 = 2
	typeEncryptedExts     uint8 = 8
	typeCertificate       uint8 = 11
	typeCertificateVerify uint8 = 15
	typeFinished          uint8 = 20
)

// Extension codepoints.
const (
	extServerName        uint16 = 0
	extSupportedGroups   uint16 = 10
	extSignatureAlgs     uint16 = 13
	extSupportedVersions uint16 = 43
	extKeyShare          uint16 = 51
)

const cipherAES128GCMSHA256 uint16 = 0x1301

// tls13Version is the supported_versions value for TLS 1.3.
const tls13Version uint16 = 0x0304

// handshakeMsg wraps a message body with its 4-byte header.
func handshakeMsg(typ uint8, body []byte) []byte {
	out := make([]byte, 4+len(body))
	out[0] = typ
	out[1] = byte(len(body) >> 16)
	out[2] = byte(len(body) >> 8)
	out[3] = byte(len(body))
	copy(out[4:], body)
	return out
}

// parseHandshakeMsg splits one handshake message off buf.
func parseHandshakeMsg(buf []byte) (typ uint8, body, rest []byte, err error) {
	if len(buf) < 4 {
		return 0, nil, buf, errors.New("tls13: short handshake message")
	}
	n := int(buf[1])<<16 | int(buf[2])<<8 | int(buf[3])
	if len(buf) < 4+n {
		return 0, nil, buf, errors.New("tls13: truncated handshake message")
	}
	return buf[0], buf[4 : 4+n], buf[4+n:], nil
}

// clientHello is the subset of ClientHello this stack negotiates.
type clientHello struct {
	random     [32]byte
	sessionID  [32]byte
	serverName string
	group      uint16   // group of the offered key share
	groups     []uint16 // all supported groups (for HelloRetryRequest)
	sigAlg     uint16   // offered (single) signature scheme
	keyShare   []byte   // public key for group
}

func (ch *clientHello) marshal() []byte {
	var b bytes.Buffer
	writeU16(&b, legacyVersion)
	b.Write(ch.random[:])
	b.WriteByte(32)
	b.Write(ch.sessionID[:])
	writeU16(&b, 2) // cipher suites length
	writeU16(&b, cipherAES128GCMSHA256)
	b.WriteByte(1) // compression methods
	b.WriteByte(0)

	var exts bytes.Buffer
	// server_name
	var sni bytes.Buffer
	writeU16(&sni, uint16(len(ch.serverName)+3))
	sni.WriteByte(0) // host_name
	writeU16(&sni, uint16(len(ch.serverName)))
	sni.WriteString(ch.serverName)
	writeExt(&exts, extServerName, sni.Bytes())
	// supported_groups: the key-share group first, then alternates.
	all := ch.groups
	if len(all) == 0 {
		all = []uint16{ch.group}
	}
	var groups bytes.Buffer
	writeU16(&groups, uint16(2*len(all)))
	for _, g := range all {
		writeU16(&groups, g)
	}
	writeExt(&exts, extSupportedGroups, groups.Bytes())
	// signature_algorithms
	var sigs bytes.Buffer
	writeU16(&sigs, 2)
	writeU16(&sigs, ch.sigAlg)
	writeExt(&exts, extSignatureAlgs, sigs.Bytes())
	// supported_versions
	writeExt(&exts, extSupportedVersions, []byte{2, byte(tls13Version >> 8), byte(tls13Version & 0xff)})
	// key_share
	var ks bytes.Buffer
	writeU16(&ks, uint16(4+len(ch.keyShare)))
	writeU16(&ks, ch.group)
	writeU16(&ks, uint16(len(ch.keyShare)))
	ks.Write(ch.keyShare)
	writeExt(&exts, extKeyShare, ks.Bytes())

	writeU16(&b, uint16(exts.Len()))
	b.Write(exts.Bytes())
	return handshakeMsg(typeClientHello, b.Bytes())
}

func parseClientHello(body []byte) (*clientHello, error) {
	r := bytes.NewReader(body)
	ch := &clientHello{}
	if _, err := readU16(r); err != nil { // legacy version
		return nil, err
	}
	if err := readFull(r, ch.random[:]); err != nil {
		return nil, err
	}
	sidLen, err := r.ReadByte()
	if err != nil || sidLen != 32 {
		return nil, errors.New("tls13: unexpected session id")
	}
	if err := readFull(r, ch.sessionID[:]); err != nil {
		return nil, err
	}
	csLen, err := readU16(r)
	if err != nil {
		return nil, err
	}
	if _, err := readN(r, int(csLen)); err != nil {
		return nil, err
	}
	compLen, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if _, err := readN(r, int(compLen)); err != nil {
		return nil, err
	}
	extLen, err := readU16(r)
	if err != nil {
		return nil, err
	}
	exts, err := readN(r, int(extLen))
	if err != nil {
		return nil, err
	}
	return ch, parseCHExtensions(ch, exts)
}

func parseCHExtensions(ch *clientHello, exts []byte) error {
	for len(exts) > 0 {
		if len(exts) < 4 {
			return errors.New("tls13: truncated extension")
		}
		typ := binary.BigEndian.Uint16(exts)
		n := int(binary.BigEndian.Uint16(exts[2:]))
		if len(exts) < 4+n {
			return errors.New("tls13: truncated extension body")
		}
		body := exts[4 : 4+n]
		exts = exts[4+n:]
		switch typ {
		case extServerName:
			if n < 5 {
				return errors.New("tls13: bad server_name")
			}
			ch.serverName = string(body[5:])
		case extSupportedGroups:
			if n < 4 {
				return errors.New("tls13: bad supported_groups")
			}
			for i := 2; i+1 < n; i += 2 {
				ch.groups = append(ch.groups, binary.BigEndian.Uint16(body[i:]))
			}
		case extSignatureAlgs:
			if n < 4 {
				return errors.New("tls13: bad signature_algorithms")
			}
			ch.sigAlg = binary.BigEndian.Uint16(body[2:])
		case extKeyShare:
			if n < 8 {
				return errors.New("tls13: bad key_share")
			}
			ch.group = binary.BigEndian.Uint16(body[2:])
			kLen := int(binary.BigEndian.Uint16(body[4:]))
			if len(body) < 6+kLen {
				return errors.New("tls13: truncated key_share")
			}
			ch.keyShare = body[6 : 6+kLen]
		case extSupportedVersions:
			found := false
			for i := 1; i+1 < len(body); i += 2 {
				if binary.BigEndian.Uint16(body[i:]) == tls13Version {
					found = true
				}
			}
			if !found {
				return errors.New("tls13: client does not offer TLS 1.3")
			}
		}
	}
	return nil
}

// serverHello mirrors clientHello for the server's response.
type serverHello struct {
	random    [32]byte
	sessionID [32]byte
	group     uint16
	keyShare  []byte // KEM ciphertext / server ECDH share
}

func (sh *serverHello) marshal() []byte {
	var b bytes.Buffer
	writeU16(&b, legacyVersion)
	b.Write(sh.random[:])
	b.WriteByte(32)
	b.Write(sh.sessionID[:])
	writeU16(&b, cipherAES128GCMSHA256)
	b.WriteByte(0) // compression

	var exts bytes.Buffer
	writeExt(&exts, extSupportedVersions, []byte{byte(tls13Version >> 8), byte(tls13Version & 0xff)})
	var ks bytes.Buffer
	writeU16(&ks, sh.group)
	writeU16(&ks, uint16(len(sh.keyShare)))
	ks.Write(sh.keyShare)
	writeExt(&exts, extKeyShare, ks.Bytes())

	writeU16(&b, uint16(exts.Len()))
	b.Write(exts.Bytes())
	return handshakeMsg(typeServerHello, b.Bytes())
}

func parseServerHello(body []byte) (*serverHello, error) {
	r := bytes.NewReader(body)
	sh := &serverHello{}
	if _, err := readU16(r); err != nil {
		return nil, err
	}
	if err := readFull(r, sh.random[:]); err != nil {
		return nil, err
	}
	sidLen, err := r.ReadByte()
	if err != nil || sidLen != 32 {
		return nil, errors.New("tls13: unexpected session id")
	}
	if err := readFull(r, sh.sessionID[:]); err != nil {
		return nil, err
	}
	suite, err := readU16(r)
	if err != nil {
		return nil, err
	}
	if suite != cipherAES128GCMSHA256 {
		return nil, fmt.Errorf("tls13: server chose unsupported suite %#04x", suite)
	}
	if _, err := r.ReadByte(); err != nil { // compression
		return nil, err
	}
	extLen, err := readU16(r)
	if err != nil {
		return nil, err
	}
	exts, err := readN(r, int(extLen))
	if err != nil {
		return nil, err
	}
	for len(exts) > 0 {
		if len(exts) < 4 {
			return nil, errors.New("tls13: truncated extension")
		}
		typ := binary.BigEndian.Uint16(exts)
		n := int(binary.BigEndian.Uint16(exts[2:]))
		if len(exts) < 4+n {
			return nil, errors.New("tls13: truncated extension body")
		}
		body := exts[4 : 4+n]
		exts = exts[4+n:]
		switch typ {
		case extKeyShare:
			if n < 4 {
				return nil, errors.New("tls13: bad key_share")
			}
			sh.group = binary.BigEndian.Uint16(body)
			kLen := int(binary.BigEndian.Uint16(body[2:]))
			if len(body) < 4+kLen {
				return nil, errors.New("tls13: truncated key_share")
			}
			sh.keyShare = body[4 : 4+kLen]
		}
	}
	if sh.keyShare == nil {
		return nil, errors.New("tls13: ServerHello without key_share")
	}
	return sh, nil
}

// marshalCertificate builds the Certificate message from raw cert encodings.
func marshalCertificate(certs [][]byte) []byte {
	var list bytes.Buffer
	for _, c := range certs {
		writeU24(&list, len(c))
		list.Write(c)
		writeU16(&list, 0) // no per-certificate extensions
	}
	var b bytes.Buffer
	b.WriteByte(0) // empty certificate_request_context
	writeU24(&b, list.Len())
	b.Write(list.Bytes())
	return handshakeMsg(typeCertificate, b.Bytes())
}

func parseCertificate(body []byte) ([][]byte, error) {
	r := bytes.NewReader(body)
	ctxLen, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if _, err := readN(r, int(ctxLen)); err != nil {
		return nil, err
	}
	listLen, err := readU24(r)
	if err != nil {
		return nil, err
	}
	list, err := readN(r, listLen)
	if err != nil {
		return nil, err
	}
	var certs [][]byte
	for len(list) > 0 {
		if len(list) < 3 {
			return nil, errors.New("tls13: truncated certificate entry")
		}
		n := int(list[0])<<16 | int(list[1])<<8 | int(list[2])
		if len(list) < 3+n+2 {
			return nil, errors.New("tls13: truncated certificate data")
		}
		certs = append(certs, list[3:3+n])
		extLen := int(binary.BigEndian.Uint16(list[3+n:]))
		list = list[3+n+2:]
		if len(list) < extLen {
			return nil, errors.New("tls13: truncated certificate extensions")
		}
		list = list[extLen:]
	}
	if len(certs) == 0 {
		return nil, errors.New("tls13: empty certificate list")
	}
	return certs, nil
}

// marshalCertVerify builds the CertificateVerify message.
func marshalCertVerify(sigAlg uint16, signature []byte) []byte {
	var b bytes.Buffer
	writeU16(&b, sigAlg)
	writeU16(&b, uint16(len(signature)))
	b.Write(signature)
	return handshakeMsg(typeCertificateVerify, b.Bytes())
}

func parseCertVerify(body []byte) (sigAlg uint16, signature []byte, err error) {
	if len(body) < 4 {
		return 0, nil, errors.New("tls13: short CertificateVerify")
	}
	sigAlg = binary.BigEndian.Uint16(body)
	n := int(binary.BigEndian.Uint16(body[2:]))
	if len(body) != 4+n {
		return 0, nil, errors.New("tls13: bad CertificateVerify length")
	}
	return sigAlg, body[4:], nil
}

// certVerifyContent builds the signed content of CertificateVerify
// (RFC 8446 §4.4.3, server variant).
func certVerifyContent(transcriptHash []byte) []byte {
	var b bytes.Buffer
	for i := 0; i < 64; i++ {
		b.WriteByte(0x20)
	}
	b.WriteString("TLS 1.3, server CertificateVerify")
	b.WriteByte(0)
	b.Write(transcriptHash)
	return b.Bytes()
}

func writeU16(b *bytes.Buffer, v uint16) {
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v))
}

func writeU24(b *bytes.Buffer, v int) {
	b.WriteByte(byte(v >> 16))
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v))
}

func writeExt(b *bytes.Buffer, typ uint16, body []byte) {
	writeU16(b, typ)
	writeU16(b, uint16(len(body)))
	b.Write(body)
}

func readU16(r *bytes.Reader) (uint16, error) {
	var buf [2]byte
	if err := readFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(buf[:]), nil
}

func readU24(r *bytes.Reader) (int, error) {
	var buf [3]byte
	if err := readFull(r, buf[:]); err != nil {
		return 0, err
	}
	return int(buf[0])<<16 | int(buf[1])<<8 | int(buf[2]), nil
}

func readN(r *bytes.Reader, n int) ([]byte, error) {
	out := make([]byte, n)
	return out, readFull(r, out)
}

func readFull(r *bytes.Reader, out []byte) error {
	if r.Len() < len(out) {
		return errors.New("tls13: truncated message")
	}
	_, err := r.Read(out)
	return err
}
