package tls13

import (
	"encoding/binary"
	"fmt"
	"io"
)

// This file adapts the sans-IO state machines to real byte streams
// (net.Conn, net.Pipe), the mode used by the cmd/ binaries and integration
// tests. The measurement harness drives the state machines directly through
// the discrete-event simulation instead.

// WriteRecords marshals records to the stream.
func WriteRecords(w io.Writer, records []Record) error {
	for _, rec := range records {
		if _, err := w.Write(rec.Marshal()); err != nil {
			return fmt.Errorf("tls13: writing record: %w", err)
		}
	}
	return nil
}

// ReadRecord reads exactly one record from the stream.
func ReadRecord(r io.Reader) (Record, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, fmt.Errorf("tls13: reading record header: %w", err)
	}
	n := int(binary.BigEndian.Uint16(hdr[3:]))
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, fmt.Errorf("tls13: reading record body: %w", err)
	}
	return Record{Type: hdr[0], Payload: payload}, nil
}

// ClientHandshake performs a full client handshake over conn. On a local
// handshake failure a fatal alert is sent before returning the error.
func ClientHandshake(conn io.ReadWriter, cfg *Config) (*Client, error) {
	c, err := NewClient(cfg)
	if err != nil {
		return nil, err
	}
	flight, err := c.Start()
	if err != nil {
		return nil, err
	}
	if err := WriteRecords(conn, flight); err != nil {
		return nil, err
	}
	for {
		rec, err := ReadRecord(conn)
		if err != nil {
			return nil, err
		}
		out, done, err := c.Consume([]Record{rec})
		if err != nil {
			if _, isAlert := err.(*AlertError); !isAlert {
				// Send the alert without blocking the error return: on an
				// unbuffered transport (net.Pipe) the peer may still be
				// mid-flight and not yet reading.
				alert := FatalAlert(alertFor(err))
				go WriteRecords(conn, []Record{alert})
			}
			return nil, err
		}
		if len(out) > 0 {
			// Either the final flight or a HelloRetryRequest retry.
			if err := WriteRecords(conn, out); err != nil {
				return nil, err
			}
		}
		if done {
			c.done = true
			return c, nil
		}
	}
}

// ServerHandshake performs a full server handshake over conn.
func ServerHandshake(conn io.ReadWriter, cfg *Config) (*Server, error) {
	s, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	// Read the ClientHello (may span multiple handshake records).
	var chRecords []Record
	for {
		rec, err := ReadRecord(conn)
		if err != nil {
			return nil, err
		}
		if rec.Type != RecordHandshake {
			return nil, fmt.Errorf("tls13: expected handshake record, got type %d", rec.Type)
		}
		chRecords = append(chRecords, rec)
		if completeHandshakeMessage(chRecords) {
			break
		}
	}
	flushes, err := s.Respond(chRecords)
	if err != nil {
		WriteRecords(conn, []Record{FatalAlert(alertFor(err))})
		return nil, err
	}
	for _, f := range flushes {
		if err := WriteRecords(conn, f.Records); err != nil {
			return nil, err
		}
	}
	if s.hrrSent && len(flushes) == 1 {
		// HelloRetryRequest sent; read the retried ClientHello and respond
		// again.
		chRecords = chRecords[:0]
		for {
			rec, err := ReadRecord(conn)
			if err != nil {
				return nil, err
			}
			if rec.Type != RecordHandshake {
				return nil, fmt.Errorf("tls13: expected retried ClientHello, got type %d", rec.Type)
			}
			chRecords = append(chRecords, rec)
			if completeHandshakeMessage(chRecords) {
				break
			}
		}
		flushes, err = s.Respond(chRecords)
		if err != nil {
			return nil, err
		}
		for _, f := range flushes {
			if err := WriteRecords(conn, f.Records); err != nil {
				return nil, err
			}
		}
	}
	// Read the client's CCS + Finished.
	var clientFlight []Record
	for {
		rec, err := ReadRecord(conn)
		if err != nil {
			return nil, err
		}
		clientFlight = append(clientFlight, rec)
		if rec.Type == RecordApplicationData || rec.Type == RecordAlert {
			break
		}
	}
	if err := s.Finish(clientFlight); err != nil {
		return nil, err
	}
	return s, nil
}

// completeHandshakeMessage reports whether the concatenated handshake
// records contain at least one complete message.
func completeHandshakeMessage(records []Record) bool {
	var total, want int
	for i, rec := range records {
		if i == 0 {
			if len(rec.Payload) < 4 {
				return false
			}
			want = 4 + (int(rec.Payload[1])<<16 | int(rec.Payload[2])<<8 | int(rec.Payload[3]))
		}
		total += len(rec.Payload)
	}
	return total >= want
}
