package tls13

import (
	"bytes"
	"testing"
)

// fullHandshakeWithTicket runs a full handshake and returns the session
// both sides agree on.
func fullHandshakeWithTicket(t *testing.T, cliCfg, srvCfg *Config) *Session {
	t.Helper()
	cli, srv := runHandshake(t, cliCfg, srvCfg)
	flight, srvSess, err := srv.SessionTicket()
	if err != nil {
		t.Fatal(err)
	}
	cliSess, err := cli.ProcessTicket(flight)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srvSess.PSK, cliSess.PSK) {
		t.Fatal("client and server derived different resumption PSKs")
	}
	return cliSess
}

func TestSessionResumption(t *testing.T) {
	t.Parallel()
	var ticketKey [16]byte
	copy(ticketKey[:], "sixteen byte key")
	cliCfg, srvCfg := testConfigs(t, "kyber512", "dilithium2", BufferImmediate)
	srvCfg.TicketKey = &ticketKey

	sess := fullHandshakeWithTicket(t, cliCfg, srvCfg)

	// Resumed handshake: fresh endpoints, session attached.
	cliCfg2, srvCfg2 := testConfigs(t, "kyber512", "dilithium2", BufferImmediate)
	srvCfg2.TicketKey = &ticketKey
	cliCfg2.Session = sess
	cli, err := NewClient(cliCfg2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(srvCfg2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cli.Start()
	if err != nil {
		t.Fatal(err)
	}
	flushes, err := srv.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed flight must not contain a Certificate: with dilithium2 a
	// full flight is ~12 kB; a resumed one fits in ~3 records.
	totalBytes := 0
	for _, f := range flushes {
		totalBytes += WireSize(f.Records)
	}
	if totalBytes > 1000 {
		t.Errorf("resumed server flight is %d bytes; certificate not skipped?", totalBytes)
	}
	var final []Record
	for _, f := range flushes {
		out, done, err := cli.Consume(f.Records)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			final = out
		}
	}
	if final == nil {
		t.Fatal("resumed client did not finish")
	}
	if err := srv.Finish(final); err != nil {
		t.Fatal(err)
	}
	c1, s1 := cli.AppTrafficSecrets()
	c2, s2 := srv.AppTrafficSecrets()
	if !bytes.Equal(c1, c2) || !bytes.Equal(s1, s2) {
		t.Error("app secrets differ on resumed handshake")
	}
}

// A tampered binder must be rejected.
func TestResumptionBadBinderRejected(t *testing.T) {
	t.Parallel()
	var ticketKey [16]byte
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	srvCfg.TicketKey = &ticketKey
	sess := fullHandshakeWithTicket(t, cliCfg, srvCfg)

	cliCfg2, srvCfg2 := testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	srvCfg2.TicketKey = &ticketKey
	bad := *sess
	bad.PSK = append([]byte{}, sess.PSK...)
	bad.PSK[0] ^= 1 // wrong PSK -> wrong binder
	cliCfg2.Session = &bad
	cli, _ := NewClient(cliCfg2)
	srv, _ := NewServer(srvCfg2)
	ch, err := cli.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Respond(ch); err == nil {
		t.Error("server accepted a PSK with a wrong binder")
	}
}

// A ticket sealed under a different server key must be rejected.
func TestResumptionWrongTicketKey(t *testing.T) {
	t.Parallel()
	var keyA, keyB [16]byte
	keyB[0] = 1
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	srvCfg.TicketKey = &keyA
	sess := fullHandshakeWithTicket(t, cliCfg, srvCfg)

	cliCfg2, srvCfg2 := testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	srvCfg2.TicketKey = &keyB
	cliCfg2.Session = sess
	cli, _ := NewClient(cliCfg2)
	srv, _ := NewServer(srvCfg2)
	ch, _ := cli.Start()
	if _, err := srv.Respond(ch); err == nil {
		t.Error("server accepted a ticket sealed under another key")
	}
}

// A ticket is bound to its key agreement; resuming under a different KEM
// must fail.
func TestResumptionKEMBinding(t *testing.T) {
	t.Parallel()
	var ticketKey [16]byte
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	srvCfg.TicketKey = &ticketKey
	sess := fullHandshakeWithTicket(t, cliCfg, srvCfg)

	cliCfg2, srvCfg2 := testConfigs(t, "kyber512", "rsa:2048", BufferImmediate)
	srvCfg2.TicketKey = &ticketKey
	cliCfg2.Session = sess
	cli, _ := NewClient(cliCfg2)
	srv, _ := NewServer(srvCfg2)
	ch, _ := cli.Start()
	if _, err := srv.Respond(ch); err == nil {
		t.Error("server resumed a ticket under the wrong key agreement")
	}
}

func TestTicketSealRoundtrip(t *testing.T) {
	t.Parallel()
	var key [16]byte
	key[3] = 7
	psk := bytes.Repeat([]byte{0xAB}, 32)
	ticket, err := NewTicketStore(key).Seal(psk, "kyber768")
	if err != nil {
		t.Fatal(err)
	}
	// A second store over the same key models the shared-STEK deployment.
	peer := NewTicketStore(key)
	gotPSK, gotName, err := peer.Open(ticket)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotPSK, psk) || gotName != "kyber768" {
		t.Error("ticket roundtrip corrupted state")
	}
	ticket[len(ticket)-1] ^= 1
	if _, _, err := peer.Open(ticket); err == nil {
		t.Error("tampered ticket accepted")
	}
	st := peer.Stats()
	if st.Redeemed != 1 || st.Rejected != 1 {
		t.Errorf("stats = %+v, want 1 redeemed / 1 rejected", st)
	}
}

// Regression: a ClientHello whose random/key-share bytes happen to contain
// the pre_shared_key codepoint (0x00 0x29) must not be mistaken for a PSK
// offer (the old LastIndex heuristic panicked on exactly this).
func TestNoPSKFalsePositive(t *testing.T) {
	t.Parallel()
	ch := &clientHello{group: groupIDs["x25519"], sigAlg: sigIDs["rsa:2048"],
		keyShare: bytes.Repeat([]byte{0x00, 0x29}, 16)}
	ch.random = [32]byte{0x00, 0x29, 0x00, 0x29}
	msg := ch.marshal()
	if _, _, _, ok := parsePSKExtension(msg); ok {
		t.Error("plain ClientHello misdetected as a PSK offer")
	}
	// And the tail bytes specifically (the old heuristic's worst case).
	msg2 := append([]byte{}, msg...)
	msg2[len(msg2)-2], msg2[len(msg2)-1] = 0x00, 0x29
	if _, _, _, ok := parsePSKExtension(msg2); ok {
		t.Error("trailing 0x0029 misdetected as a PSK offer")
	}
}

// A genuine PSK ClientHello roundtrips through append/parse with a binder
// that verifies.
func TestPSKExtensionRoundtrip(t *testing.T) {
	t.Parallel()
	sess := &Session{Ticket: bytes.Repeat([]byte{7}, 40), PSK: bytes.Repeat([]byte{9}, 32)}
	ch := &clientHello{group: groupIDs["kyber512"], sigAlg: sigIDs["rsa:2048"],
		keyShare: make([]byte, 800)}
	msg := appendPSKExtension(ch.marshal(), sess)
	ticket, binder, partial, ok := parsePSKExtension(msg)
	if !ok {
		t.Fatal("PSK extension not found in PSK ClientHello")
	}
	if !bytes.Equal(ticket, sess.Ticket) {
		t.Error("ticket corrupted in transit")
	}
	if !bytes.Equal(binder, computeBinder(sess.PSK, partial)) {
		t.Error("binder does not verify over the parsed partial transcript")
	}
}
