package tls13

import (
	"fmt"
	"strings"
)

// TLS alert descriptions (RFC 8446 §6) used by this stack.
const (
	AlertCloseNotify       uint8 = 0
	AlertUnexpectedMessage uint8 = 10
	AlertBadRecordMAC      uint8 = 20
	AlertHandshakeFailure  uint8 = 40
	AlertBadCertificate    uint8 = 42
	AlertUnknownCA         uint8 = 48
	AlertIllegalParameter  uint8 = 47
	AlertDecryptError      uint8 = 51
	AlertProtocolVersion   uint8 = 70
	AlertInternalError     uint8 = 80
)

// alertNames renders descriptions for diagnostics.
var alertNames = map[uint8]string{
	AlertCloseNotify:       "close_notify",
	AlertUnexpectedMessage: "unexpected_message",
	AlertBadRecordMAC:      "bad_record_mac",
	AlertHandshakeFailure:  "handshake_failure",
	AlertBadCertificate:    "bad_certificate",
	AlertUnknownCA:         "unknown_ca",
	AlertIllegalParameter:  "illegal_parameter",
	AlertDecryptError:      "decrypt_error",
	AlertProtocolVersion:   "protocol_version",
	AlertInternalError:     "internal_error",
}

// FatalAlert builds the plaintext record an endpoint sends before tearing
// down a failed handshake.
func FatalAlert(desc uint8) Record {
	return Record{Type: RecordAlert, Payload: []byte{2 /* fatal */, desc}}
}

// AlertError is returned when the peer aborted the handshake with an alert.
type AlertError struct {
	Level       uint8
	Description uint8
}

// Error names the alert ("remote alert: bad_certificate (42)").
func (e *AlertError) Error() string {
	name, ok := alertNames[e.Description]
	if !ok {
		name = "unknown"
	}
	return fmt.Sprintf("tls13: remote alert: %s (%d)", name, e.Description)
}

// parseAlert interprets an alert record.
func parseAlert(rec Record) error {
	if len(rec.Payload) < 2 {
		return fmt.Errorf("tls13: malformed alert record")
	}
	return &AlertError{Level: rec.Payload[0], Description: rec.Payload[1]}
}

// alertFor maps a local handshake failure to the alert description the
// endpoint should send (RFC 8446 §6.2).
func alertFor(err error) uint8 {
	if err == nil {
		return AlertCloseNotify
	}
	msg := err.Error()
	switch {
	case contains(msg, "certificate"):
		return AlertBadCertificate
	case contains(msg, "decryption failed"), contains(msg, "Finished verification"):
		return AlertDecryptError
	case contains(msg, "group"), contains(msg, "sigalg"), contains(msg, "suite"):
		return AlertHandshakeFailure
	case contains(msg, "unexpected"), contains(msg, "expected"):
		return AlertUnexpectedMessage
	default:
		return AlertInternalError
	}
}

func contains(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}
