package tls13

import (
	"crypto/hmac"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"time"

	"pqtls/internal/kem"
	"pqtls/internal/sig"
)

// Flush is a group of records the server hands to the transport at one
// point in time. Offset is the cumulative CPU time the server had spent on
// the handshake when this flush became available — the quantity that lets
// the network simulation reproduce the early-ServerHello parallelism the
// paper analyzes in Section 5.2.
type Flush struct {
	Records []Record
	Offset  time.Duration
}

// Server is a sans-IO TLS 1.3 server handshake.
type Server struct {
	cfg    *Config
	kem    kem.KEM
	scheme sig.Scheme
	ks     *keySchedule

	sendHC *halfConn // server handshake traffic (server -> client)
	recvHC *halfConn // client handshake traffic (client -> server)

	expectedClientFin [32]byte
	resumptionPSK     []byte
	hrrSent           bool
	done              bool
}

// NewServer validates the configuration and prepares a handshake.
func NewServer(cfg *Config) (*Server, error) {
	k, err := kem.ByName(cfg.KEMName)
	if err != nil {
		return nil, err
	}
	s, err := sig.ByName(cfg.SigName)
	if err != nil {
		return nil, err
	}
	if len(cfg.Chain) == 0 || cfg.PrivateKey == nil {
		return nil, errors.New("tls13: server requires a certificate chain and private key")
	}
	return &Server{cfg: cfg, kem: k, scheme: s, ks: newKeySchedule()}, nil
}

// timedRecord is a record plus the compute offset at which it was ready.
type timedRecord struct {
	rec    Record
	offset time.Duration
}

// Respond consumes the ClientHello flight and produces the server's flight,
// grouped into flushes per the configured BufferPolicy.
func (s *Server) Respond(records []Record) ([]Flush, error) {
	if s.ks == nil {
		return nil, errors.New("tls13: Respond called twice")
	}
	start := s.cfg.now()
	rng := s.cfg.Rand
	if rng == nil {
		rng = rand.Reader
	}

	// Error paths abandon the open phase: the handshake (and its trace) is
	// discarded on error, and Hooks implementations tolerate unclosed spans.
	endPhase := s.cfg.phase(PhaseCHParse)
	endSSL := s.cfg.span(LibSSL)
	var chMsg []byte
	for _, rec := range records {
		if rec.Type != RecordHandshake {
			continue
		}
		chMsg = append(chMsg, rec.Payload...)
	}
	typ, body, _, err := parseHandshakeMsg(chMsg)
	if err != nil {
		endSSL()
		return nil, err
	}
	if typ != typeClientHello {
		endSSL()
		return nil, fmt.Errorf("tls13: expected ClientHello, got message type %d", typ)
	}
	ch, err := parseClientHello(body)
	if err != nil {
		endSSL()
		return nil, err
	}
	wantGroup, err := GroupID(s.cfg.KEMName)
	if err != nil {
		endSSL()
		return nil, err
	}
	if ch.group != wantGroup {
		// If the client supports our group but guessed another for its key
		// share, fall back to the 2-RTT HelloRetryRequest flow.
		supported := false
		for _, g := range ch.groups {
			if g == wantGroup {
				supported = true
			}
		}
		if supported && !s.hrrSent {
			s.hrrSent = true
			// RFC 8446 §4.4.1: the transcript restarts with a synthetic
			// message_hash of CH1 followed by the HRR.
			s.ks = newKeySchedule()
			s.ks.addMessage(messageHash(chMsg))
			hrr := marshalHRR(ch.sessionID, wantGroup)
			s.ks.addMessage(hrr)
			endSSL()
			endPhase()
			return []Flush{{
				Records: []Record{{Type: RecordHandshake, Payload: hrr}},
				Offset:  s.cfg.now().Sub(start),
			}}, nil
		}
		endSSL()
		return nil, fmt.Errorf("tls13: client offered group %#04x, server requires %#04x (%s)",
			ch.group, wantGroup, s.cfg.KEMName)
	}
	wantSig, err := SigID(s.cfg.SigName)
	if err != nil {
		endSSL()
		return nil, err
	}
	if ch.sigAlg != wantSig {
		endSSL()
		return nil, fmt.Errorf("tls13: client offered sigalg %#04x, server requires %#04x (%s)",
			ch.sigAlg, wantSig, s.cfg.SigName)
	}
	endPhase()
	// PSK resumption: a valid ticket + binder switches to the
	// certificate-free flow.
	if ticket, binder, partial, hasPSK := parsePSKExtension(chMsg); hasPSK {
		endRedeem := s.cfg.phase(PhaseTicketRedeem)
		store := s.cfg.sessionTickets()
		if store == nil {
			endSSL()
			return nil, errNoTicketStore
		}
		psk, kemName, err := store.Open(ticket)
		if err != nil {
			endSSL()
			return nil, err
		}
		if kemName != s.cfg.KEMName {
			endSSL()
			return nil, fmt.Errorf("tls13: ticket bound to %s, server uses %s", kemName, s.cfg.KEMName)
		}
		if !hmac.Equal(computeBinder(psk, partial), binder) {
			endSSL()
			return nil, errors.New("tls13: PSK binder verification failed")
		}
		s.resumptionPSK = psk
		endRedeem()
	}
	s.ks.addMessage(chMsg)
	endSSL()

	// Key agreement: encapsulate against the client's share.
	endEncap := s.cfg.phase(PhaseKEMEncap)
	endCrypto := s.cfg.span(LibCrypto)
	var ct, ss []byte
	if s.cfg.Encapsulator != nil && s.cfg.Rand == nil {
		ct, ss, err = s.cfg.Encapsulator.Encapsulate(s.kem, ch.keyShare)
	} else {
		ct, ss, err = s.kem.Encapsulate(rng, ch.keyShare)
	}
	if err != nil {
		endCrypto()
		return nil, fmt.Errorf("tls13: encapsulation: %w", err)
	}
	s.cfg.charge(OpKEMEncaps, s.kem.Name())
	endCrypto()
	endEncap()

	endPhase = s.cfg.phase(PhaseServerHello)
	endSSL = s.cfg.span(LibSSL)
	sh := &serverHello{group: ch.group, keyShare: ct, sessionID: ch.sessionID}
	if _, err := io.ReadFull(rng, sh.random[:]); err != nil {
		endSSL()
		return nil, err
	}
	shMsg := sh.marshal()
	s.ks.addMessage(shMsg)
	endSSL()
	endPhase()

	endCrypto = s.cfg.span(LibCrypto)
	if s.resumptionPSK != nil {
		s.ks.setEarlySecret(s.resumptionPSK)
	}
	s.ks.setSharedSecret(ss)
	sendKey, sendIV := s.ks.trafficKeys(s.ks.serverHSTraffic[:])
	s.sendHC, err = newHalfConn(sendKey, sendIV)
	if err != nil {
		endCrypto()
		return nil, err
	}
	recvKey, recvIV := s.ks.trafficKeys(s.ks.clientHSTraffic[:])
	s.recvHC, err = newHalfConn(recvKey, recvIV)
	if err != nil {
		endCrypto()
		return nil, err
	}
	endCrypto()

	var timed []timedRecord
	emit := func(rec Record) {
		timed = append(timed, timedRecord{rec: rec, offset: s.cfg.now().Sub(start)})
	}
	emit(Record{Type: RecordHandshake, Payload: shMsg})
	// Middlebox-compatibility ChangeCipherSpec, as OpenSSL sends it.
	emit(Record{Type: RecordChangeCipherSpec, Payload: []byte{1}})

	// EncryptedExtensions (empty list).
	endSSL = s.cfg.span(LibSSL)
	eeMsg := handshakeMsg(typeEncryptedExts, []byte{0, 0})
	s.ks.addMessage(eeMsg)
	eeRecs, err := s.sealHandshake(eeMsg)
	if err != nil {
		endSSL()
		return nil, err
	}
	for _, rec := range eeRecs {
		emit(rec)
	}
	endSSL()

	// Certificate and CertificateVerify — skipped entirely on resumption,
	// which is what removes the PQ authentication cost from resumed
	// handshakes.
	if s.resumptionPSK == nil {
		endPhase = s.cfg.phase(PhaseCertWrite)
		endSSL = s.cfg.span(LibSSL)
		// Marshaled once per Config; identical for every handshake (shared
		// read-only bytes, sealHandshake clones record payloads).
		certMsg := s.cfg.certificateMessage()
		s.ks.addMessage(certMsg)
		certRecs, err := s.sealHandshake(certMsg)
		if err != nil {
			endSSL()
			endPhase()
			return nil, err
		}
		for _, rec := range certRecs {
			emit(rec)
		}
		endSSL()
		endPhase()

		// CertificateVerify: the handshake signature (the expensive step).
		endPhase = s.cfg.phase(PhaseCVSign)
		endCrypto = s.cfg.span(LibCrypto)
		content := certVerifyContent(s.ks.transcriptHash())
		var signature []byte
		if s.cfg.Signer != nil {
			signature, err = s.cfg.Signer.Sign(content)
		} else {
			signature, err = s.scheme.Sign(s.cfg.PrivateKey, content)
		}
		if err != nil {
			endCrypto()
			return nil, fmt.Errorf("tls13: handshake signature: %w", err)
		}
		s.cfg.charge(OpSigSign, s.cfg.SigName)
		endCrypto()
		endSSL = s.cfg.span(LibSSL)
		cvMsg := marshalCertVerify(wantSig, signature)
		s.ks.addMessage(cvMsg)
		cvRecs, err := s.sealHandshake(cvMsg)
		if err != nil {
			endSSL()
			endPhase()
			return nil, err
		}
		for _, rec := range cvRecs {
			emit(rec)
		}
		endSSL()
		endPhase()
	}

	// Server Finished.
	endPhase = s.cfg.phase(PhaseFinSend)
	endCrypto = s.cfg.span(LibCrypto)
	finMsg := handshakeMsg(typeFinished, s.ks.finishedMsg(s.ks.serverHSTraffic[:], s.ks.transcriptHash()))
	s.ks.addMessage(finMsg)
	// The client's Finished covers the transcript through server Finished.
	s.ks.finishedMACInto(&s.expectedClientFin, s.ks.clientHSTraffic[:], s.ks.transcriptHash())
	s.ks.deriveMaster()
	endCrypto()
	finRecs, err := s.sealHandshake(finMsg)
	if err != nil {
		endPhase()
		return nil, err
	}
	for _, rec := range finRecs {
		emit(rec)
	}
	endPhase()

	return s.groupFlushes(timed), nil
}

// sealHandshake encrypts a handshake message, fragmenting it across records
// when it exceeds the record-layer plaintext limit (SPHINCS+ certificates
// are several records long).
func (s *Server) sealHandshake(msg []byte) ([]Record, error) {
	defer s.cfg.phase(PhaseRecordWrite)()
	var out []Record
	for len(msg) > 0 {
		n := min(len(msg), maxRecordPayload)
		rec, err := s.sendHC.seal(RecordHandshake, msg[:n])
		if err != nil {
			return nil, err
		}
		// seal's payload aliases the halfConn scratch buffer and this
		// flight accumulates records across seals, so take a stable copy.
		rec.Payload = append([]byte(nil), rec.Payload...)
		out = append(out, rec)
		msg = msg[n:]
	}
	return out, nil
}

// groupFlushes applies the buffering policy to the timed record sequence.
func (s *Server) groupFlushes(timed []timedRecord) []Flush {
	switch s.cfg.Buffer {
	case BufferImmediate:
		return groupImmediate(timed)
	default:
		return groupDefault(timed)
	}
}

// groupImmediate flushes after the ServerHello(+CCS) and after the
// Certificate, then sends the rest when complete. Boundaries are detected
// structurally: flush 1 is the plaintext prefix (SH, CCS), flush 2 ends
// after the records carrying the Certificate message.
func groupImmediate(timed []timedRecord) []Flush {
	var flushes []Flush
	var cur []Record
	flushAt := func(off time.Duration) {
		if len(cur) > 0 {
			flushes = append(flushes, Flush{Records: cur, Offset: off})
			cur = nil
		}
	}
	plaintextDone := false
	encCount := 0
	// Count how many encrypted records belong to EE+Certificate: everything
	// up to (records - 2) since CV and Finished each occupy the tail. We
	// conservatively split before the CV record group by scanning offsets:
	// the CV record is the first encrypted record whose offset jumps after
	// the signing span. Structure is fixed (EE, Cert..., CV, Fin), so we
	// can count from the end: the last 2+ records are CV and Fin.
	totalEnc := 0
	for _, tr := range timed {
		if tr.rec.Type == RecordApplicationData {
			totalEnc++
		}
	}
	for _, tr := range timed {
		cur = append(cur, tr.rec)
		if tr.rec.Type == RecordChangeCipherSpec && !plaintextDone {
			plaintextDone = true
			flushAt(tr.offset) // SH + CCS pushed immediately
			continue
		}
		if tr.rec.Type == RecordApplicationData {
			encCount++
			if encCount == totalEnc-2 { // EE + Certificate complete
				flushAt(tr.offset)
			}
		}
	}
	if len(timed) > 0 {
		flushAt(timed[len(timed)-1].offset)
	}
	return flushes
}

// groupDefault models the 4096-byte OpenSSL accumulation buffer: records
// accumulate and are flushed when the next record would overflow the
// buffer; the final flush happens only when the whole flight is computed.
func groupDefault(timed []timedRecord) []Flush {
	var flushes []Flush
	var cur []Record
	size := 0
	for _, tr := range timed {
		w := tr.rec.WireSize()
		if size > 0 && size+w > serverBufferSize {
			flushes = append(flushes, Flush{Records: cur, Offset: tr.offset})
			cur = nil
			size = 0
		}
		cur = append(cur, tr.rec)
		size += w
	}
	if len(cur) > 0 {
		flushes = append(flushes, Flush{Records: cur, Offset: timed[len(timed)-1].offset})
	}
	return flushes
}

// Finish consumes the client's ChangeCipherSpec + Finished flight.
func (s *Server) Finish(records []Record) error {
	if s.done {
		return errors.New("tls13: handshake already complete")
	}
	defer s.cfg.phase(PhaseFinVerify)()
	for _, rec := range records {
		switch rec.Type {
		case RecordChangeCipherSpec:
			continue
		case RecordAlert:
			return parseAlert(rec)
		case RecordApplicationData:
			endRead := s.cfg.phase(PhaseRecordRead)
			endCrypto := s.cfg.span(LibCrypto)
			innerType, plaintext, err := s.recvHC.open(rec)
			endCrypto()
			endRead()
			if err != nil {
				return err
			}
			if innerType != RecordHandshake {
				return fmt.Errorf("tls13: unexpected inner type %d in client flight", innerType)
			}
			typ, body, _, err := parseHandshakeMsg(plaintext)
			if err != nil {
				return err
			}
			if typ != typeFinished {
				return fmt.Errorf("tls13: expected client Finished, got type %d", typ)
			}
			if !hmac.Equal(body, s.expectedClientFin[:]) {
				return errors.New("tls13: client Finished verification failed")
			}
			s.done = true
		default:
			return fmt.Errorf("tls13: unexpected record type %d in client flight", rec.Type)
		}
	}
	if !s.done {
		return errors.New("tls13: client flight missing Finished")
	}
	return nil
}

// Done reports whether the handshake completed.
func (s *Server) Done() bool { return s.done }

// ResumedSession reports whether the handshake was PSK-resumed (the client
// presented a valid ticket and the certificate flights were skipped).
func (s *Server) ResumedSession() bool { return s.resumptionPSK != nil }

// AppTrafficSecrets returns the application traffic secrets (client, server)
// once the handshake is complete.
func (s *Server) AppTrafficSecrets() (client, server []byte) {
	return s.ks.clientAppTraffic[:], s.ks.serverAppTraffic[:]
}
