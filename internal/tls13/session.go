package tls13

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"io"
)

// PSK session resumption (RFC 8446 §2.2, §4.6.1): after a full handshake
// the server issues a NewSessionTicket; a later connection presents it in a
// pre_shared_key extension and skips the Certificate and CertificateVerify
// flights entirely. For post-quantum TLS this is the mechanism that
// amortizes the (large, slow) PQ authentication: a resumed handshake's cost
// is key agreement only. See harness.RunResumptionComparison.

const (
	typeNewSessionTicket uint8  = 4
	extPreSharedKey      uint16 = 41
	extPSKModes          uint16 = 45
)

// Session is the client-side resumption state from a NewSessionTicket.
type Session struct {
	Ticket []byte // opaque server-encrypted state
	PSK    []byte // resumption pre-shared key
	// KEMName records the original suite; resumption reuses it.
	KEMName string
}

// ticketKeySize is the AES-128 key protecting server ticket state.
const ticketKeySize = 16

// SessionTicket builds the post-handshake NewSessionTicket flight (one
// encrypted record under the server application traffic key). The ticket
// seals the PSK under Config.TicketKey so any server instance holding the
// same key can resume the session.
func (s *Server) SessionTicket() ([]Record, *Session, error) {
	if !s.done {
		return nil, nil, errors.New("tls13: SessionTicket before handshake completion")
	}
	defer s.cfg.phase(PhaseTicketIssue)()
	store := s.cfg.sessionTickets()
	if store == nil {
		return nil, nil, errors.New("tls13: server has no ticket store configured")
	}
	// resumption_master_secret -> PSK via the ticket nonce.
	var nonce [8]byte
	if _, err := io.ReadFull(rand.Reader, nonce[:]); err != nil {
		return nil, nil, err
	}
	resMaster := deriveSecret(s.ks.masterSecret[:], "res master", s.ks.transcriptHash())
	psk := hkdfExpandLabel(resMaster, "resumption", nonce[:], sha256.Size)

	ticket, err := store.Seal(psk, s.cfg.KEMName)
	if err != nil {
		return nil, nil, err
	}
	var body bytes.Buffer
	writeU32(&body, 7200) // ticket_lifetime
	writeU32(&body, 0)    // ticket_age_add (age checks are out of scope)
	body.WriteByte(byte(len(nonce)))
	body.Write(nonce[:])
	writeU16(&body, uint16(len(ticket)))
	body.Write(ticket)
	writeU16(&body, 0) // extensions
	msg := handshakeMsg(typeNewSessionTicket, body.Bytes())

	// Post-handshake messages travel under the application traffic keys.
	appKey, appIV := s.ks.trafficKeys(s.ks.serverAppTraffic[:])
	hc, err := newHalfConn(appKey, appIV)
	if err != nil {
		return nil, nil, err
	}
	// hc is single-use, so the record may keep aliasing its seal scratch.
	rec, err := hc.seal(RecordHandshake, msg)
	if err != nil {
		return nil, nil, err
	}
	return []Record{rec}, &Session{Ticket: ticket, PSK: psk, KEMName: s.cfg.KEMName}, nil
}

// ProcessTicket consumes a NewSessionTicket flight on the client and
// returns the session usable for resumption.
func (c *Client) ProcessTicket(records []Record) (*Session, error) {
	if !c.done {
		return nil, errors.New("tls13: ProcessTicket before handshake completion")
	}
	defer c.cfg.phase(PhaseTicketProcess)()
	appKey, appIV := c.ks.trafficKeys(c.ks.serverAppTraffic[:])
	hc, err := newHalfConn(appKey, appIV)
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		innerType, plaintext, err := hc.open(rec)
		if err != nil {
			return nil, err
		}
		if innerType != RecordHandshake {
			continue
		}
		typ, body, _, err := parseHandshakeMsg(plaintext)
		if err != nil {
			return nil, err
		}
		if typ != typeNewSessionTicket {
			continue
		}
		r := bytes.NewReader(body)
		if _, err := readN(r, 8); err != nil { // lifetime + age_add
			return nil, err
		}
		nonceLen, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		nonce, err := readN(r, int(nonceLen))
		if err != nil {
			return nil, err
		}
		tktLen, err := readU16(r)
		if err != nil {
			return nil, err
		}
		ticket, err := readN(r, int(tktLen))
		if err != nil {
			return nil, err
		}
		resMaster := deriveSecret(c.ks.masterSecret[:], "res master", c.ks.transcriptHash())
		psk := hkdfExpandLabel(resMaster, "resumption", nonce, sha256.Size)
		return &Session{Ticket: ticket, PSK: psk, KEMName: c.cfg.KEMName}, nil
	}
	return nil, errors.New("tls13: no NewSessionTicket in flight")
}

// binderKey derives the PSK binder key from the resumption PSK.
func binderKey(psk []byte) []byte {
	early := hkdfExtract(nil, psk)
	return deriveSecret(early, "res binder", emptyHash())
}

// computeBinder is the HMAC over the partial ClientHello transcript.
func computeBinder(psk, partialCH []byte) []byte {
	th := sha256.Sum256(partialCH)
	return finishedMAC(binderKey(psk), th[:])
}

// binderSuffixLen is the wire size of the binders list we emit: 2-byte list
// length + 1-byte binder length + 32-byte HMAC.
const binderSuffixLen = 2 + 1 + sha256.Size

// appendPSKExtension rewrites a marshaled ClientHello, appending
// psk_key_exchange_modes and pre_shared_key (which must be last) and
// filling in the binder over the partial transcript.
func appendPSKExtension(chMsg []byte, sess *Session) []byte {
	// Locate the extensions block by walking the fixed ClientHello layout.
	body := chMsg[4:]
	off := 2 + 32             // version + random
	off += 1 + int(body[off]) // session id
	csLen := int(body[off])<<8 | int(body[off+1])
	off += 2 + csLen
	off += 1 + int(body[off]) // compression
	extLen := int(body[off])<<8 | int(body[off+1])
	extStart := off + 2
	exts := append([]byte{}, body[extStart:extStart+extLen]...)

	var pskModes bytes.Buffer
	pskModes.WriteByte(1) // one mode
	pskModes.WriteByte(1) // psk_dhe_ke
	var extBuf bytes.Buffer
	extBuf.Write(exts)
	writeExt(&extBuf, extPSKModes, pskModes.Bytes())

	var pskExt bytes.Buffer
	writeU16(&pskExt, uint16(2+len(sess.Ticket)+4)) // identities length
	writeU16(&pskExt, uint16(len(sess.Ticket)))
	pskExt.Write(sess.Ticket)
	writeU32(&pskExt, 0) // obfuscated_ticket_age
	// Binders: placeholder, filled after the partial transcript is known.
	writeU16(&pskExt, uint16(1+sha256.Size))
	pskExt.WriteByte(sha256.Size)
	pskExt.Write(make([]byte, sha256.Size))
	writeExt(&extBuf, extPreSharedKey, pskExt.Bytes())

	var newBody bytes.Buffer
	newBody.Write(body[:off])
	writeU16(&newBody, uint16(extBuf.Len()))
	newBody.Write(extBuf.Bytes())
	out := handshakeMsg(typeClientHello, newBody.Bytes())

	// Fill the binder over everything before the binders list.
	partial := out[:len(out)-binderSuffixLen]
	binder := computeBinder(sess.PSK, partial)
	copy(out[len(out)-sha256.Size:], binder)
	return out
}

// parsePSKExtension walks the ClientHello's extension list looking for
// pre_shared_key, returning the ticket, the binder, and the partial
// transcript (everything before the binders list) for verification.
func parsePSKExtension(chMsg []byte) (ticket, binder, partial []byte, ok bool) {
	if len(chMsg) < 4 {
		return nil, nil, nil, false
	}
	body := chMsg[4:]
	// Walk the fixed ClientHello layout to the extensions block.
	off := 2 + 32 // version + random
	if len(body) < off+1 {
		return nil, nil, nil, false
	}
	off += 1 + int(body[off]) // session id
	if len(body) < off+2 {
		return nil, nil, nil, false
	}
	off += 2 + (int(body[off])<<8 | int(body[off+1])) // cipher suites
	if len(body) < off+1 {
		return nil, nil, nil, false
	}
	off += 1 + int(body[off]) // compression
	if len(body) < off+2 {
		return nil, nil, nil, false
	}
	extLen := int(body[off])<<8 | int(body[off+1])
	off += 2
	if extLen < 0 || len(body) < off+extLen {
		return nil, nil, nil, false
	}
	end := off + extLen
	for off+4 <= end {
		typ := uint16(body[off])<<8 | uint16(body[off+1])
		n := int(body[off+2])<<8 | int(body[off+3])
		valOff := off + 4
		if valOff+n > end {
			return nil, nil, nil, false
		}
		if typ != extPreSharedKey {
			off = valOff + n
			continue
		}
		val := body[valOff : valOff+n]
		if len(val) < 2 {
			return nil, nil, nil, false
		}
		idLen := int(val[0])<<8 | int(val[1])
		if idLen < 0 || len(val) < 2+idLen {
			return nil, nil, nil, false
		}
		ids := val[2 : 2+idLen]
		if len(ids) < 2 {
			return nil, nil, nil, false
		}
		tktLen := int(ids[0])<<8 | int(ids[1])
		if tktLen < 0 || len(ids) < 2+tktLen+4 {
			return nil, nil, nil, false
		}
		ticket = ids[2 : 2+tktLen]
		// The binders list follows the identities inside the extension.
		bindersOff := valOff + 2 + idLen
		binders := body[bindersOff : valOff+n]
		if len(binders) < 3+sha256.Size || binders[2] != sha256.Size {
			return nil, nil, nil, false
		}
		binder = binders[3 : 3+sha256.Size]
		// Partial transcript: the full message up to the binders list
		// (RFC 8446 §4.2.11.2), including the 4-byte message header.
		partial = chMsg[:4+bindersOff]
		return ticket, binder, partial, true
	}
	return nil, nil, nil, false
}

func writeU32(b *bytes.Buffer, v uint32) {
	b.WriteByte(byte(v >> 24))
	b.WriteByte(byte(v >> 16))
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v))
}
