package tls13

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
)

// Concurrent seal/open/stats over one store; meaningful under -race (make
// check runs the package race-enabled) and as a counter-consistency check.
func TestTicketStoreConcurrent(t *testing.T) {
	t.Parallel()
	var key [ticketKeySize]byte
	key[0] = 0x5A
	ts := NewTicketStore(key)
	psk := bytes.Repeat([]byte{0xCD}, 32)

	const goroutines, iters = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ticket, err := ts.Seal(psk, "kyber768")
				if err != nil {
					t.Errorf("seal: %v", err)
					return
				}
				got, name, err := ts.Open(ticket)
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				if !bytes.Equal(got, psk) || name != "kyber768" {
					t.Error("roundtrip corrupted state")
					return
				}
				// A deliberately corrupted ticket must count as rejected.
				ticket[len(ticket)-1] ^= 0xFF
				if _, _, err := ts.Open(ticket); err == nil {
					t.Error("tampered ticket accepted")
					return
				}
				_ = ts.Stats()
			}
		}(g)
	}
	wg.Wait()

	st := ts.Stats()
	want := uint64(goroutines * iters)
	if st.Issued != want || st.Redeemed != want || st.Rejected != want {
		t.Errorf("stats = %+v, want %d of each", st, want)
	}
}

// Counter-mode nonces must never repeat within a store: the (prefix, shard,
// sequence) layout makes every sealed ticket's nonce unique.
func TestTicketStoreNonceUnique(t *testing.T) {
	t.Parallel()
	ts := NewTicketStore([ticketKeySize]byte{1})
	psk := bytes.Repeat([]byte{7}, 32)
	seen := make(map[[ticketNonceSize]byte]bool)
	for i := 0; i < 2000; i++ {
		ticket, err := ts.Seal(psk, "x25519")
		if err != nil {
			t.Fatal(err)
		}
		var nonce [ticketNonceSize]byte
		copy(nonce[:], ticket[:ticketNonceSize])
		if seen[nonce] {
			t.Fatalf("nonce repeated after %d seals: %x", i, nonce)
		}
		seen[nonce] = true
		// Layout: per-store prefix, shard byte, big-endian sequence.
		if !bytes.Equal(nonce[:4], ts.prefix[:]) {
			t.Fatal("nonce prefix mismatch")
		}
		if int(nonce[4]) >= ticketShards {
			t.Fatalf("shard byte %d out of range", nonce[4])
		}
		seq := binary.BigEndian.Uint64(append([]byte{0}, nonce[5:]...))
		if seq == 0 {
			t.Fatal("sequence must start at 1")
		}
	}
}

// Config.sessionTickets with only TicketKey set must hand back one cached
// store, not a fresh one per handshake — otherwise the per-handshake AEAD
// setup recurs and issued/redeemed counters are silently discarded.
func TestSessionTicketsCachedPerConfig(t *testing.T) {
	t.Parallel()
	key := &[ticketKeySize]byte{9}
	cfg := &Config{TicketKey: key}
	s1 := cfg.sessionTickets()
	s2 := cfg.sessionTickets()
	if s1 == nil || s1 != s2 {
		t.Fatal("sessionTickets rebuilt the TicketKey store")
	}
	if _, err := s1.Seal(bytes.Repeat([]byte{1}, 32), "kyber768"); err != nil {
		t.Fatal(err)
	}
	if st := cfg.sessionTickets().Stats(); st.Issued != 1 {
		t.Errorf("issued = %d, want 1 (counters discarded by a transient store)", st.Issued)
	}

	// Swapping the key pointer invalidates the cache entry.
	cfg.TicketKey = &[ticketKeySize]byte{10}
	s3 := cfg.sessionTickets()
	if s3 == s1 {
		t.Error("stale store returned after TicketKey change")
	}

	// An explicit Tickets store always wins.
	shared := NewTicketStore([ticketKeySize]byte{11})
	cfg.Tickets = shared
	if cfg.sessionTickets() != shared {
		t.Error("explicit Tickets store not preferred")
	}
}
