package tls13

import "testing"

func benchHalfConnPair(b *testing.B) (*halfConn, *halfConn) {
	b.Helper()
	key := make([]byte, 16)
	iv := make([]byte, 12)
	for i := range key {
		key[i] = byte(i)
	}
	for i := range iv {
		iv[i] = byte(0xA0 + i)
	}
	sender, err := newHalfConn(key, iv)
	if err != nil {
		b.Fatal(err)
	}
	receiver, err := newHalfConn(key, iv)
	if err != nil {
		b.Fatal(err)
	}
	return sender, receiver
}

func BenchmarkRecordSeal(b *testing.B) {
	sender, _ := benchHalfConnPair(b)
	payload := make([]byte, 1024)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sender.seq = 0 // hold the sequence fixed so open stays cheap to pair
		if _, err := sender.seal(RecordApplicationData, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecordSealOpen(b *testing.B) {
	sender, receiver := benchHalfConnPair(b)
	payload := make([]byte, 1024)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sender.seq = 0
		receiver.seq = 0
		rec, err := sender.seal(RecordApplicationData, payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := receiver.open(rec); err != nil {
			b.Fatal(err)
		}
	}
}
