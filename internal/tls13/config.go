package tls13

import (
	"io"
	"time"
	"unsafe"

	"pqtls/internal/kem"
	"pqtls/internal/pki"
	"pqtls/internal/sig"
)

// BufferPolicy selects how the server assembles its handshake flight into
// TCP writes — the OpenSSL behaviour Section 4 of the paper analyzes.
type BufferPolicy int

const (
	// BufferDefault models stock OQS-OpenSSL: messages accumulate in a
	// 4096-byte buffer that is flushed when exceeded, with a final flush
	// after the whole flight is computed.
	BufferDefault BufferPolicy = iota
	// BufferImmediate models the paper's optimized build: the ServerHello
	// and the Certificate are pushed to the transport as soon as they are
	// computed, letting the client overlap its decapsulation with the
	// server's signing.
	BufferImmediate
)

// serverBufferSize is OpenSSL's internal buffer (Section 4 of the paper).
const serverBufferSize = 4096

// Library buckets used by the white-box profile.
const (
	LibCrypto = "libcrypto"
	LibSSL    = "libssl"
)

// Operation labels passed to a Meter when a public-key operation runs.
const (
	OpKEMKeygen = "kem/keygen"
	OpKEMEncaps = "kem/encaps"
	OpKEMDecaps = "kem/decaps"
	OpSigSign   = "sig/sign"
	OpSigVerify = "sig/verify"
)

// Meter is a virtual compute clock. When set, the handshake charges every
// public-key operation to it and reads flush offsets from Now() instead of
// the wall clock, making the timing of a handshake a deterministic function
// of the suite rather than of the host's load. The harness installs one per
// handshake when running in modeled-timing mode.
type Meter interface {
	// Charge advances the virtual clock by the modeled cost of op on alg.
	Charge(op, alg string)
	// Now returns the current virtual time.
	Now() time.Time
}

// charge advances the virtual clock (Meter) and notifies observers (Hooks)
// of one public-key operation. The meter is charged first so a hook reading
// a meter-backed clock sees the operation's cost inside its enclosing phase.
func (c *Config) charge(op, alg string) {
	if c == nil {
		return
	}
	if c.Meter != nil {
		c.Meter.Charge(op, alg)
	}
	if c.Hooks != nil {
		c.Hooks.Charge(op, alg)
	}
}

// now returns the meter's virtual time, or the wall clock when unmetered.
func (c *Config) now() time.Time {
	if c != nil && c.Meter != nil {
		return c.Meter.Now()
	}
	return time.Now()
}

// Config carries the suite selection and credentials for one endpoint.
type Config struct {
	// KEMName and SigName are registry names ("kyber512", "rsa:2048", ...).
	// For a client, KEMName is the group it generates its key share for.
	KEMName string
	SigName string
	// SupportedKEMs lists additional groups a client offers in
	// supported_groups without a key share. If the server requires one of
	// them, it answers with a HelloRetryRequest and the handshake costs an
	// extra round trip — the 2-RTT fallback the paper configured away.
	SupportedKEMs []string
	// ServerName is the SNI the client sends and the certificate subject.
	ServerName string
	// Chain and PrivateKey are the server's credentials.
	Chain      []*pki.Certificate
	PrivateKey []byte
	// Roots is the client's trust anchor pool.
	Roots *pki.Pool
	// Buffer selects the server's flight-assembly behaviour.
	Buffer BufferPolicy
	// Hooks, when non-nil, observes the handshake: library spans (white-box
	// buckets), named phases, and public-key operation charges. Stack
	// multiple observers with MultiHooks. Hooks never affect timing —
	// virtual time is owned by Meter alone.
	Hooks Hooks
	// Meter, when non-nil, switches the handshake to virtual compute time:
	// public-key operations charge their modeled cost to it and flush
	// offsets are read from it rather than from time.Now.
	Meter Meter
	// Rand overrides crypto/rand (tests).
	Rand io.Reader
	// TicketKey enables session tickets on a server; instances sharing the
	// key can resume each other's sessions.
	TicketKey *[16]byte
	// Tickets, when non-nil, supplies the shared session-ticket store and
	// takes precedence over TicketKey. Connection-scoped Server values built
	// from the same Config all seal and redeem through this one store, which
	// is what lets a ticket issued on one connection resume on another (see
	// internal/live).
	Tickets *TicketStore
	// Session, when set on a client, resumes via PSK: the Certificate and
	// CertificateVerify flights are skipped entirely.
	Session *Session
	// PresetKeyShare, when set on a client, supplies a pre-generated key
	// pair for KEMName instead of generating one in Start. The keygen cost
	// is still charged to the Meter — the preset only amortizes the real
	// compute (harness key pools) without changing modeled timing.
	PresetKeyShare *KeyShare
	// Signer, when set on a server, computes the CertificateVerify
	// signature in place of SigName's one-shot Sign. This is the hook the
	// live runtime's signing worker pool and precomputed signing contexts
	// install; it must produce signatures verifiable under PrivateKey's
	// public key. The modeled sign cost is charged either way.
	Signer sig.Signer
	// Verifiers, when set on a client, caches precomputed verification
	// contexts by public key for the CertificateVerify check, amortizing
	// per-key setup (Dilithium's matrix expansion) across handshakes that
	// see the same server key. The modeled verify cost is charged either
	// way.
	Verifiers *sig.VerifierCache
	// ChainCache, when set on a client, memoizes successful certificate
	// chain verifications by the Certificate message bytes, so repeat
	// handshakes against the same server skip re-parsing and re-verifying
	// an unchanged chain. All configs sharing a cache must share identical
	// Roots and the modeled per-certificate verify costs are still charged.
	ChainCache *ChainCache
	// Encapsulator, when set on a server, performs the key-agreement
	// encapsulation in place of a direct kem.Encapsulate call. This is the
	// hook the live runtime's batching encapsulation pool installs to
	// amortize Kyber's symmetric work across concurrent connections. Only
	// consulted when Rand is nil: a DRBG-pinned handshake must consume its
	// configured randomness stream exactly, and pooled results must never
	// feed deterministic samples. The modeled encaps cost is charged either
	// way.
	Encapsulator Encapsulator
	// CVVerifier, when set on a client, checks the CertificateVerify
	// signature in place of the direct (cached) verify. This is the hook
	// the loadgen verification pool installs to batch in-flight checks
	// across connections. Only consulted when Rand is nil — the same bypass
	// invariant as Encapsulator, keeping pooled paths out of DRBG-pinned
	// runs. The modeled verify cost is charged either way.
	CVVerifier CVVerifier

	// certMsgCache and ticketCache memoize per-Config derived state (the
	// marshaled Certificate message; the TicketStore behind a bare
	// TicketKey). They are unsafe.Pointer instead of atomic.Pointer[T]
	// because Config values are copied; see configcache.go.
	certMsgCache unsafe.Pointer // *certMsgCache
	ticketCache  unsafe.Pointer // *ticketStoreCache
}

// KeyShare is a pre-generated KEM key pair for PresetKeyShare.
type KeyShare struct {
	Pub, Priv []byte
}

// Encapsulator is the server-side encapsulation hook (see
// Config.Encapsulator). Implementations may batch concurrent
// encapsulations across connections; the result must be a valid
// (ciphertext, shared secret) pair for pub under k, but need not consume
// any particular randomness source.
type Encapsulator interface {
	Encapsulate(k kem.KEM, pub []byte) (ct, ss []byte, err error)
}

// CVVerifier is the client-side CertificateVerify hook (see
// Config.CVVerifier). Implementations may batch concurrent verifications
// across connections; the decision must equal scheme.Verify(pub, msg, sig).
type CVVerifier interface {
	VerifyCV(scheme sig.Scheme, pub, msg, sig []byte) bool
}
