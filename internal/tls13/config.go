package tls13

import (
	"io"

	"pqtls/internal/pki"
)

// BufferPolicy selects how the server assembles its handshake flight into
// TCP writes — the OpenSSL behaviour Section 4 of the paper analyzes.
type BufferPolicy int

const (
	// BufferDefault models stock OQS-OpenSSL: messages accumulate in a
	// 4096-byte buffer that is flushed when exceeded, with a final flush
	// after the whole flight is computed.
	BufferDefault BufferPolicy = iota
	// BufferImmediate models the paper's optimized build: the ServerHello
	// and the Certificate are pushed to the transport as soon as they are
	// computed, letting the client overlap its decapsulation with the
	// server's signing.
	BufferImmediate
)

// serverBufferSize is OpenSSL's internal buffer (Section 4 of the paper).
const serverBufferSize = 4096

// Tracer attributes CPU time to the "shared object" buckets of the paper's
// white-box analysis (libcrypto, libssl, ...). Implementations must be safe
// for use from a single handshake goroutine.
type Tracer interface {
	// Span opens a region attributed to lib; the returned func closes it.
	Span(lib string) func()
}

// Library buckets used by the white-box profile.
const (
	LibCrypto = "libcrypto"
	LibSSL    = "libssl"
)

// Config carries the suite selection and credentials for one endpoint.
type Config struct {
	// KEMName and SigName are registry names ("kyber512", "rsa:2048", ...).
	// For a client, KEMName is the group it generates its key share for.
	KEMName string
	SigName string
	// SupportedKEMs lists additional groups a client offers in
	// supported_groups without a key share. If the server requires one of
	// them, it answers with a HelloRetryRequest and the handshake costs an
	// extra round trip — the 2-RTT fallback the paper configured away.
	SupportedKEMs []string
	// ServerName is the SNI the client sends and the certificate subject.
	ServerName string
	// Chain and PrivateKey are the server's credentials.
	Chain      []*pki.Certificate
	PrivateKey []byte
	// Roots is the client's trust anchor pool.
	Roots *pki.Pool
	// Buffer selects the server's flight-assembly behaviour.
	Buffer BufferPolicy
	// Tracer, when non-nil, receives white-box region spans.
	Tracer Tracer
	// Rand overrides crypto/rand (tests).
	Rand io.Reader
	// TicketKey enables session tickets on a server; instances sharing the
	// key can resume each other's sessions.
	TicketKey *[16]byte
	// Session, when set on a client, resumes via PSK: the Certificate and
	// CertificateVerify flights are skipped entirely.
	Session *Session
}

// span is the nil-safe tracer helper.
func (c *Config) span(lib string) func() {
	if c == nil || c.Tracer == nil {
		return func() {}
	}
	return c.Tracer.Span(lib)
}
