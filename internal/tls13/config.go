package tls13

import (
	"io"
	"time"

	"pqtls/internal/pki"
)

// BufferPolicy selects how the server assembles its handshake flight into
// TCP writes — the OpenSSL behaviour Section 4 of the paper analyzes.
type BufferPolicy int

const (
	// BufferDefault models stock OQS-OpenSSL: messages accumulate in a
	// 4096-byte buffer that is flushed when exceeded, with a final flush
	// after the whole flight is computed.
	BufferDefault BufferPolicy = iota
	// BufferImmediate models the paper's optimized build: the ServerHello
	// and the Certificate are pushed to the transport as soon as they are
	// computed, letting the client overlap its decapsulation with the
	// server's signing.
	BufferImmediate
)

// serverBufferSize is OpenSSL's internal buffer (Section 4 of the paper).
const serverBufferSize = 4096

// Library buckets used by the white-box profile.
const (
	LibCrypto = "libcrypto"
	LibSSL    = "libssl"
)

// Operation labels passed to a Meter when a public-key operation runs.
const (
	OpKEMKeygen = "kem/keygen"
	OpKEMEncaps = "kem/encaps"
	OpKEMDecaps = "kem/decaps"
	OpSigSign   = "sig/sign"
	OpSigVerify = "sig/verify"
)

// Meter is a virtual compute clock. When set, the handshake charges every
// public-key operation to it and reads flush offsets from Now() instead of
// the wall clock, making the timing of a handshake a deterministic function
// of the suite rather than of the host's load. The harness installs one per
// handshake when running in modeled-timing mode.
type Meter interface {
	// Charge advances the virtual clock by the modeled cost of op on alg.
	Charge(op, alg string)
	// Now returns the current virtual time.
	Now() time.Time
}

// charge advances the virtual clock (Meter) and notifies observers (Hooks)
// of one public-key operation. The meter is charged first so a hook reading
// a meter-backed clock sees the operation's cost inside its enclosing phase.
func (c *Config) charge(op, alg string) {
	if c == nil {
		return
	}
	if c.Meter != nil {
		c.Meter.Charge(op, alg)
	}
	if c.Hooks != nil {
		c.Hooks.Charge(op, alg)
	}
}

// now returns the meter's virtual time, or the wall clock when unmetered.
func (c *Config) now() time.Time {
	if c != nil && c.Meter != nil {
		return c.Meter.Now()
	}
	return time.Now()
}

// Config carries the suite selection and credentials for one endpoint.
type Config struct {
	// KEMName and SigName are registry names ("kyber512", "rsa:2048", ...).
	// For a client, KEMName is the group it generates its key share for.
	KEMName string
	SigName string
	// SupportedKEMs lists additional groups a client offers in
	// supported_groups without a key share. If the server requires one of
	// them, it answers with a HelloRetryRequest and the handshake costs an
	// extra round trip — the 2-RTT fallback the paper configured away.
	SupportedKEMs []string
	// ServerName is the SNI the client sends and the certificate subject.
	ServerName string
	// Chain and PrivateKey are the server's credentials.
	Chain      []*pki.Certificate
	PrivateKey []byte
	// Roots is the client's trust anchor pool.
	Roots *pki.Pool
	// Buffer selects the server's flight-assembly behaviour.
	Buffer BufferPolicy
	// Hooks, when non-nil, observes the handshake: library spans (white-box
	// buckets), named phases, and public-key operation charges. Stack
	// multiple observers with MultiHooks. Hooks never affect timing —
	// virtual time is owned by Meter alone.
	Hooks Hooks
	// Meter, when non-nil, switches the handshake to virtual compute time:
	// public-key operations charge their modeled cost to it and flush
	// offsets are read from it rather than from time.Now.
	Meter Meter
	// Rand overrides crypto/rand (tests).
	Rand io.Reader
	// TicketKey enables session tickets on a server; instances sharing the
	// key can resume each other's sessions.
	TicketKey *[16]byte
	// Tickets, when non-nil, supplies the shared session-ticket store and
	// takes precedence over TicketKey. Connection-scoped Server values built
	// from the same Config all seal and redeem through this one store, which
	// is what lets a ticket issued on one connection resume on another (see
	// internal/live).
	Tickets *TicketStore
	// Session, when set on a client, resumes via PSK: the Certificate and
	// CertificateVerify flights are skipped entirely.
	Session *Session
	// PresetKeyShare, when set on a client, supplies a pre-generated key
	// pair for KEMName instead of generating one in Start. The keygen cost
	// is still charged to the Meter — the preset only amortizes the real
	// compute (harness key pools) without changing modeled timing.
	PresetKeyShare *KeyShare
}

// KeyShare is a pre-generated KEM key pair for PresetKeyShare.
type KeyShare struct {
	Pub, Priv []byte
}
