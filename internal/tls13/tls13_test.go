package tls13

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"pqtls/internal/pki"
	"pqtls/internal/sig"
)

// testConfigs builds matching client and server configs for a suite.
func testConfigs(t testing.TB, kemName, sigName string, buffer BufferPolicy) (*Config, *Config) {
	t.Helper()
	rootScheme := sig.MustByName("rsa:2048")
	root, rootPriv, err := pki.SelfSigned("Test Root CA", rootScheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	leafScheme := sig.MustByName(sigName)
	leafPub, leafPriv, err := leafScheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := pki.Issue(2, "server.example", sigName, leafPub, root, rootPriv)
	if err != nil {
		t.Fatal(err)
	}
	server := &Config{
		KEMName: kemName, SigName: sigName, ServerName: "server.example",
		Chain: []*pki.Certificate{leaf}, PrivateKey: leafPriv, Buffer: buffer,
	}
	client := &Config{
		KEMName: kemName, SigName: sigName, ServerName: "server.example",
		Roots: pki.NewPool(root),
	}
	return client, server
}

// runHandshake drives a complete sans-IO handshake and returns both ends.
func runHandshake(t testing.TB, cliCfg, srvCfg *Config) (*Client, *Server) {
	t.Helper()
	cli, err := NewClient(cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cli.Start()
	if err != nil {
		t.Fatal(err)
	}
	flushes, err := srv.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	var final []Record
	for _, f := range flushes {
		out, done, err := cli.Consume(f.Records)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			final = out
		}
	}
	if final == nil {
		t.Fatal("client did not complete after all server flushes")
	}
	if err := srv.Finish(final); err != nil {
		t.Fatal(err)
	}
	return cli, srv
}

func TestHandshakeBaseline(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	cli, srv := runHandshake(t, cliCfg, srvCfg)
	cApp1, sApp1 := cli.AppTrafficSecrets()
	cApp2, sApp2 := srv.AppTrafficSecrets()
	if !bytes.Equal(cApp1, cApp2) || !bytes.Equal(sApp1, sApp2) {
		t.Error("application traffic secrets differ between endpoints")
	}
	if cli.ServerCert == nil || cli.ServerCert.Subject != "server.example" {
		t.Error("client did not record the server certificate")
	}
}

// Every KA×SA combination used in the paper's main tables must hand-shake.
func TestHandshakeSuiteMatrix(t *testing.T) {
	t.Parallel()
	cases := []struct{ kem, sig string }{
		{"x25519", "rsa:1024"},
		{"x25519", "rsa:4096"},
		{"kyber512", "rsa:2048"},
		{"kyber90s512", "dilithium2"},
		{"kyber768", "dilithium3"},
		{"kyber1024", "dilithium5"},
		{"hqc128", "falcon512"},
		{"hqc256", "falcon1024"},
		{"bikel1", "dilithium2"},
		{"p256", "ecdsa-p256"},
		{"p384", "dilithium3_aes"},
		{"p521", "dilithium5_aes"},
		{"p256_kyber512", "p256_dilithium2"},
		{"p384_kyber768", "p384_dilithium3"},
		{"p521_kyber1024", "p521_falcon1024"},
		{"p256_hqc128", "rsa3072_dilithium2"},
		{"x25519", "sphincs128"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.kem+"/"+strings.ReplaceAll(c.sig, ":", ""), func(t *testing.T) {
			t.Parallel()
			if testing.Short() && (c.kem == "bikel1" || c.sig == "sphincs128") {
				t.Skip("slow in short mode")
			}
			for _, buffer := range []BufferPolicy{BufferDefault, BufferImmediate} {
				cliCfg, srvCfg := testConfigs(t, c.kem, c.sig, buffer)
				runHandshake(t, cliCfg, srvCfg)
			}
		})
	}
}

// The optimized policy must always push the ServerHello in its own early
// flush; the default policy must coalesce small flights into one flush.
func TestBufferPolicies(t *testing.T) {
	t.Parallel()
	// Small flight (rsa:2048 cert fits the 4096B buffer).
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferDefault)
	srv, _ := NewServer(srvCfg)
	cli, _ := NewClient(cliCfg)
	ch, _ := cli.Start()
	flushes, err := srv.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(flushes) != 1 {
		t.Errorf("default policy, small flight: %d flushes, want 1", len(flushes))
	}

	cliCfg, srvCfg = testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	srv, _ = NewServer(srvCfg)
	cli, _ = NewClient(cliCfg)
	ch, _ = cli.Start()
	flushes, err = srv.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(flushes) != 3 {
		t.Errorf("immediate policy: %d flushes, want 3", len(flushes))
	}
	if flushes[0].Records[0].Type != RecordHandshake {
		t.Error("immediate policy: first flush does not start with ServerHello")
	}
	// Offsets must be non-decreasing.
	for i := 1; i < len(flushes); i++ {
		if flushes[i].Offset < flushes[i-1].Offset {
			t.Error("flush offsets are not monotonic")
		}
	}

	// Large flight (dilithium2 cert ~10kB exceeds the buffer): even the
	// default policy must split, pushing the SH early.
	cliCfg, srvCfg = testConfigs(t, "x25519", "dilithium2", BufferDefault)
	srv, _ = NewServer(srvCfg)
	cli, _ = NewClient(cliCfg)
	ch, _ = cli.Start()
	flushes, err = srv.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	if len(flushes) < 2 {
		t.Errorf("default policy, large flight: %d flushes, want >= 2", len(flushes))
	}
}

func TestGroupMismatchRejected(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferDefault)
	cliCfg.KEMName = "p256" // client offers a different group
	cli, _ := NewClient(cliCfg)
	srv, _ := NewServer(srvCfg)
	ch, err := cli.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Respond(ch); err == nil {
		t.Error("server accepted mismatched group")
	}
}

func TestUntrustedRootRejected(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferDefault)
	otherRoot, _, err := pki.SelfSigned("Other CA", sig.MustByName("rsa:2048"), nil)
	if err != nil {
		t.Fatal(err)
	}
	cliCfg.Roots = pki.NewPool(otherRoot)
	cli, _ := NewClient(cliCfg)
	srv, _ := NewServer(srvCfg)
	ch, _ := cli.Start()
	flushes, err := srv.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for _, f := range flushes {
		if _, _, err := cli.Consume(f.Records); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Error("client accepted certificate from untrusted root")
	}
}

func TestWrongServerNameRejected(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferDefault)
	cliCfg.ServerName = "other.example"
	cli, _ := NewClient(cliCfg)
	srv, _ := NewServer(srvCfg)
	ch, _ := cli.Start()
	flushes, err := srv.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for _, f := range flushes {
		if _, _, err := cli.Consume(f.Records); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Error("client accepted certificate for wrong name")
	}
}

// Tampering with the encrypted flight must break AEAD decryption.
func TestTamperedRecordRejected(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "kyber512", "dilithium2", BufferDefault)
	cli, _ := NewClient(cliCfg)
	srv, _ := NewServer(srvCfg)
	ch, _ := cli.Start()
	flushes, err := srv.Respond(ch)
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for _, f := range flushes {
		for i := range f.Records {
			if f.Records[i].Type == RecordApplicationData {
				f.Records[i].Payload[0] ^= 1
				break
			}
		}
		if _, _, err := cli.Consume(f.Records); err != nil {
			sawErr = err
			break
		}
	}
	if sawErr == nil {
		t.Error("client accepted tampered encrypted record")
	}
}

// Handshake over a real byte stream (net.Pipe), both directions concurrent.
func TestPipeHandshake(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "p256_kyber512", "dilithium2", BufferImmediate)
	cConn, sConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		_, err := ServerHandshake(sConn, srvCfg)
		errCh <- err
	}()
	cli, err := ClientHandshake(cConn, cliCfg)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if !cli.Done() {
		t.Error("client not done")
	}
}

// The record layer must fragment large handshake messages (SPHINCS+ certs).
func TestFragmentation(t *testing.T) {
	if testing.Short() {
		t.Skip("sphincs is slow in short mode")
	}
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "x25519", "sphincs128", BufferDefault)
	cli, srv := runHandshake(t, cliCfg, srvCfg)
	_ = cli
	_ = srv
}

func TestRecordRoundtrip(t *testing.T) {
	t.Parallel()
	rec := Record{Type: RecordHandshake, Payload: []byte{1, 2, 3}}
	wire := rec.Marshal()
	back, rest, err := ParseRecord(wire)
	if err != nil || len(rest) != 0 {
		t.Fatalf("parse: %v (rest %d)", err, len(rest))
	}
	if back.Type != rec.Type || !bytes.Equal(back.Payload, rec.Payload) {
		t.Error("record roundtrip mismatch")
	}
	if _, _, err := ParseRecord(wire[:3]); err == nil {
		t.Error("short record accepted")
	}
}

// HKDF-Expand-Label against the RFC 8446 shape: length and determinism.
func TestKeySchedule(t *testing.T) {
	t.Parallel()
	ks1 := newKeySchedule()
	ks2 := newKeySchedule()
	msg := []byte{1, 0, 0, 1, 42}
	ks1.addMessage(msg)
	ks2.addMessage(msg)
	ss := bytes.Repeat([]byte{7}, 32)
	ks1.setSharedSecret(ss)
	ks2.setSharedSecret(ss)
	if ks1.clientHSTraffic != ks2.clientHSTraffic {
		t.Error("key schedule is not deterministic")
	}
	if ks1.clientHSTraffic == ks1.serverHSTraffic {
		t.Error("client and server traffic secrets are equal")
	}
	k, iv := ks1.trafficKeys(ks1.clientHSTraffic[:])
	if len(k) != 16 || len(iv) != 12 {
		t.Errorf("traffic key sizes: key=%d iv=%d", len(k), len(iv))
	}
	// The zero-alloc schedule must agree with the reference HKDF functions.
	hs := hkdfExtract(deriveSecret(noPSKEarly[:], "derived", emptyHash()), ss)
	th := ks1.transcriptHash()
	want := deriveSecret(hs, "c hs traffic", append([]byte{}, th...))
	if !bytes.Equal(want, ks1.clientHSTraffic[:]) {
		t.Error("scratch-based schedule diverges from reference HKDF")
	}
	wantKey := hkdfExpandLabel(ks1.clientHSTraffic[:], "key", nil, 16)
	if !bytes.Equal(wantKey, k) {
		t.Error("trafficKeys diverges from reference HKDF-Expand-Label")
	}
}

// The post-construction key schedule must not allocate: transcript absorb,
// secret derivation, traffic keys, and Finished MACs all run in scratch.
func TestKeyScheduleZeroAlloc(t *testing.T) {
	kern := NewKeyScheduleKernel()
	ss := bytes.Repeat([]byte{7}, 32)
	msg := bytes.Repeat([]byte{3}, 512)
	var sink byte
	allocs := testing.AllocsPerRun(200, func() {
		sink ^= kern.Run(ss, msg)
	})
	if allocs != 0 {
		t.Errorf("key schedule kernel allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}

func BenchmarkHandshake(b *testing.B) {
	for _, suite := range []struct{ kem, sig string }{
		{"x25519", "rsa:2048"},
		{"kyber512", "dilithium2"},
	} {
		cliCfg, srvCfg := testConfigs(b, suite.kem, suite.sig, BufferImmediate)
		b.Run(suite.kem+"_"+strings.ReplaceAll(suite.sig, ":", ""), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cli, _ := NewClient(cliCfg)
				srv, _ := NewServer(srvCfg)
				ch, _ := cli.Start()
				flushes, err := srv.Respond(ch)
				if err != nil {
					b.Fatal(err)
				}
				var final []Record
				for _, f := range flushes {
					out, done, err := cli.Consume(f.Records)
					if err != nil {
						b.Fatal(err)
					}
					if done {
						final = out
					}
				}
				if err := srv.Finish(final); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A failed certificate validation must surface as a bad_certificate alert
// on the wire, which the server reports as an AlertError.
func TestAlertOnBadCertificate(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	otherRoot, _, err := pki.SelfSigned("Other CA", sig.MustByName("rsa:2048"), nil)
	if err != nil {
		t.Fatal(err)
	}
	cliCfg.Roots = pki.NewPool(otherRoot)
	// Real TCP loopback: unlike net.Pipe it buffers writes, so the failing
	// client's alert does not deadlock against the server's last flight.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		_, err = ServerHandshake(conn, srvCfg)
		srvErr <- err
	}()
	cConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cConn.Close()
	if _, err := ClientHandshake(cConn, cliCfg); err == nil {
		t.Fatal("client accepted untrusted certificate")
	}
	err = <-srvErr
	var alert *AlertError
	if !errorsAs(err, &alert) {
		t.Fatalf("server error %v, want AlertError", err)
	}
	if alert.Description != AlertBadCertificate {
		t.Errorf("alert %d, want bad_certificate (42)", alert.Description)
	}
}

func errorsAs(err error, target **AlertError) bool {
	for err != nil {
		if a, ok := err.(*AlertError); ok {
			*target = a
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestAlertRecord(t *testing.T) {
	t.Parallel()
	rec := FatalAlert(AlertHandshakeFailure)
	if rec.Type != RecordAlert || rec.Payload[0] != 2 || rec.Payload[1] != 40 {
		t.Errorf("FatalAlert record: %+v", rec)
	}
	err := parseAlert(rec)
	if err == nil || err.Error() != "tls13: remote alert: handshake_failure (40)" {
		t.Errorf("parseAlert: %v", err)
	}
}
