package tls13

import (
	"crypto/rand"
	"errors"
	"io"
	"sync"
)

// TicketStore seals and opens session tickets under one process-wide key and
// counts what happens to them. Server handshakes are per-connection objects;
// the store is the piece of resumption state that must outlive a connection,
// so a runtime (internal/live) creates one store and shares it across every
// Server it constructs — a ticket issued on connection A then resumes on
// connection B, exactly as a multi-worker deployment sharing STEK material
// would behave.
//
// All methods are safe for concurrent use.
type TicketStore struct {
	key [ticketKeySize]byte

	mu       sync.Mutex
	issued   uint64
	redeemed uint64
	rejected uint64
}

// NewTicketStore builds a store over a fixed key. Instances (or processes)
// constructed with the same key can resume each other's sessions.
func NewTicketStore(key [ticketKeySize]byte) *TicketStore {
	return &TicketStore{key: key}
}

// NewRandomTicketStore builds a store over a fresh random key: tickets are
// only redeemable within this process's lifetime.
func NewRandomTicketStore() (*TicketStore, error) {
	var key [ticketKeySize]byte
	if _, err := io.ReadFull(rand.Reader, key[:]); err != nil {
		return nil, err
	}
	return NewTicketStore(key), nil
}

// Seal encrypts (psk, kemName) into an opaque ticket.
func (ts *TicketStore) Seal(psk []byte, kemName string) ([]byte, error) {
	ticket, err := sealTicket(&ts.key, psk, kemName)
	if err != nil {
		return nil, err
	}
	ts.mu.Lock()
	ts.issued++
	ts.mu.Unlock()
	return ticket, nil
}

// Open decrypts a presented ticket, counting it as redeemed on success and
// rejected on failure (wrong key, corruption, truncation).
func (ts *TicketStore) Open(ticket []byte) (psk []byte, kemName string, err error) {
	psk, kemName, err = openTicket(&ts.key, ticket)
	ts.mu.Lock()
	if err != nil {
		ts.rejected++
	} else {
		ts.redeemed++
	}
	ts.mu.Unlock()
	return psk, kemName, err
}

// TicketStats is a point-in-time view of a store's counters.
type TicketStats struct {
	Issued   uint64 // tickets sealed into NewSessionTicket flights
	Redeemed uint64 // presented tickets that decrypted and parsed
	Rejected uint64 // presented tickets that failed to open
}

// Stats returns the store's counters.
func (ts *TicketStore) Stats() TicketStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return TicketStats{Issued: ts.issued, Redeemed: ts.redeemed, Rejected: ts.rejected}
}

// errNoTicketStore is returned when a PSK arrives but the server has neither
// a Tickets store nor a TicketKey.
var errNoTicketStore = errors.New("tls13: client offered PSK but server has no ticket store")

// sessionTickets resolves the server's ticket machinery: the shared Tickets
// store when configured, else a transient store over the legacy TicketKey
// (counters discarded — the harness drives single handshakes and reads no
// stats), else nil.
func (c *Config) sessionTickets() *TicketStore {
	if c.Tickets != nil {
		return c.Tickets
	}
	if c.TicketKey != nil {
		return &TicketStore{key: *c.TicketKey}
	}
	return nil
}
