package tls13

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	randv2 "math/rand/v2"
	"sync/atomic"
)

// TicketStore seals and opens session tickets under one process-wide key and
// counts what happens to them. Server handshakes are per-connection objects;
// the store is the piece of resumption state that must outlive a connection,
// so a runtime (internal/live) creates one store and shares it across every
// Server it constructs — a ticket issued on connection A then resumes on
// connection B, exactly as a multi-worker deployment sharing STEK material
// would behave.
//
// The store is built to never serialize concurrent handshakes: the AEAD is
// constructed once (AES-GCM is safe for concurrent use), nonces come from
// per-shard counters instead of a per-Seal crypto/rand read, and the
// counters are cache-line-padded atomics summed only at Stats time. All
// methods are safe for concurrent use.
type TicketStore struct {
	key  [ticketKeySize]byte
	aead cipher.AEAD
	// prefix is a per-store random nonce prefix; combined with the shard
	// byte and the per-shard 56-bit counter it keeps (key, nonce) pairs
	// unique within a store and collision-negligible across stores sharing
	// one key.
	prefix [4]byte

	shards [ticketShards]ticketShard
}

// ticketShards spreads the hot counters; a small power of two is enough to
// take the shared-STEK path off every handshake's critical section.
const ticketShards = 8

// ticketShard is padded out to its own cache line so concurrent Seal/Open
// on different shards never false-share.
type ticketShard struct {
	issued   atomic.Uint64
	redeemed atomic.Uint64
	rejected atomic.Uint64
	sealSeq  atomic.Uint64
	_        [32]byte
}

// ticketNonceSize matches the GCM default; the wire layout (nonce || box)
// is unchanged from the lock-based store.
const ticketNonceSize = 12

// NewTicketStore builds a store over a fixed key. Instances (or processes)
// constructed with the same key can resume each other's sessions.
func NewTicketStore(key [ticketKeySize]byte) *TicketStore {
	ts := &TicketStore{key: key}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic("tls13: ticket AES key: " + err.Error()) // 16-byte key, unreachable
	}
	ts.aead, err = cipher.NewGCM(block)
	if err != nil {
		panic("tls13: ticket GCM: " + err.Error())
	}
	if _, err := io.ReadFull(rand.Reader, ts.prefix[:]); err != nil {
		panic("tls13: ticket nonce prefix: " + err.Error())
	}
	return ts
}

// NewRandomTicketStore builds a store over a fresh random key: tickets are
// only redeemable within this process's lifetime.
func NewRandomTicketStore() (*TicketStore, error) {
	var key [ticketKeySize]byte
	if _, err := io.ReadFull(rand.Reader, key[:]); err != nil {
		return nil, err
	}
	return NewTicketStore(key), nil
}

// Seal encrypts (psk, kemName) into an opaque ticket: nonce || AES-GCM box.
func (ts *TicketStore) Seal(psk []byte, kemName string) ([]byte, error) {
	if len(psk) > 255 || len(kemName) > 255 {
		return nil, errors.New("tls13: ticket state too large")
	}
	idx := randv2.Uint32() % ticketShards
	sh := &ts.shards[idx]
	seq := sh.sealSeq.Add(1)
	if seq >= 1<<56 {
		return nil, errors.New("tls13: ticket nonce counter exhausted")
	}

	buf := make([]byte, ticketNonceSize, ticketNonceSize+2+len(psk)+len(kemName)+16)
	copy(buf, ts.prefix[:])
	buf[4] = byte(idx)
	for i := 0; i < 7; i++ {
		buf[5+i] = byte(seq >> (8 * (6 - i)))
	}
	// Plaintext is assembled after the nonce and sealed in place: the GCM
	// output region aliases the plaintext exactly, the supported overlap.
	buf = append(buf, byte(len(psk)))
	buf = append(buf, psk...)
	buf = append(buf, byte(len(kemName)))
	buf = append(buf, kemName...)
	out := ts.aead.Seal(buf[:ticketNonceSize], buf[:ticketNonceSize], buf[ticketNonceSize:], nil)
	sh.issued.Add(1)
	return out, nil
}

// Open decrypts a presented ticket, counting it as redeemed on success and
// rejected on failure (wrong key, corruption, truncation).
func (ts *TicketStore) Open(ticket []byte) (psk []byte, kemName string, err error) {
	psk, kemName, err = ts.open(ticket)
	// Tickets sealed by a peer store carry an arbitrary shard byte; reduce
	// it so any input lands on a counter.
	sh := &ts.shards[0]
	if len(ticket) > 4 {
		sh = &ts.shards[uint32(ticket[4])%ticketShards]
	}
	if err != nil {
		sh.rejected.Add(1)
	} else {
		sh.redeemed.Add(1)
	}
	return psk, kemName, err
}

func (ts *TicketStore) open(ticket []byte) (psk []byte, kemName string, err error) {
	if len(ticket) < ticketNonceSize {
		return nil, "", errors.New("tls13: short ticket")
	}
	plain, err := ts.aead.Open(nil, ticket[:ticketNonceSize], ticket[ticketNonceSize:], nil)
	if err != nil {
		return nil, "", fmt.Errorf("tls13: ticket decryption: %w", err)
	}
	r := bytes.NewReader(plain)
	pskLen, err := r.ReadByte()
	if err != nil {
		return nil, "", err
	}
	psk, err = readN(r, int(pskLen))
	if err != nil {
		return nil, "", err
	}
	nameLen, err := r.ReadByte()
	if err != nil {
		return nil, "", err
	}
	name, err := readN(r, int(nameLen))
	if err != nil {
		return nil, "", err
	}
	return psk, string(name), nil
}

// TicketStats is a point-in-time view of a store's counters.
type TicketStats struct {
	Issued   uint64 // tickets sealed into NewSessionTicket flights
	Redeemed uint64 // presented tickets that decrypted and parsed
	Rejected uint64 // presented tickets that failed to open
}

// Stats sums the shard counters. The snapshot is not atomic across fields —
// a Seal racing the sum may appear in Issued only — which is the usual
// monotonic-counter contract.
func (ts *TicketStore) Stats() TicketStats {
	var st TicketStats
	for i := range ts.shards {
		st.Issued += ts.shards[i].issued.Load()
		st.Redeemed += ts.shards[i].redeemed.Load()
		st.Rejected += ts.shards[i].rejected.Load()
	}
	return st
}

// errNoTicketStore is returned when a PSK arrives but the server has neither
// a Tickets store nor a TicketKey.
var errNoTicketStore = errors.New("tls13: client offered PSK but server has no ticket store")
