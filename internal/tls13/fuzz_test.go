package tls13

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Parser robustness: every wire parser must survive arbitrary and truncated
// inputs without panicking — the paper's black-box setup points these
// parsers at whatever the network delivers.

func mustNotPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s panicked: %v", name, r)
		}
	}()
	f()
}

func TestParsersSurviveGarbage(t *testing.T) {
	t.Parallel()
	check := func(data []byte) bool {
		mustNotPanic(t, "ParseRecord", func() { ParseRecord(data) })
		mustNotPanic(t, "parseHandshakeMsg", func() { parseHandshakeMsg(data) })
		mustNotPanic(t, "parseClientHello", func() { parseClientHello(data) })
		mustNotPanic(t, "parseServerHello", func() { parseServerHello(data) })
		mustNotPanic(t, "parseCertificate", func() { parseCertificate(data) })
		mustNotPanic(t, "parseCertVerify", func() { parseCertVerify(data) })
		mustNotPanic(t, "parseHRRGroup", func() { parseHRRGroup(data) })
		mustNotPanic(t, "parsePSKExtension", func() { parsePSKExtension(data) })
		mustNotPanic(t, "parseAlert", func() { parseAlert(Record{Type: RecordAlert, Payload: data}) })
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Truncations of a *valid* ClientHello must all be rejected cleanly.
func TestClientHelloTruncations(t *testing.T) {
	t.Parallel()
	ch := &clientHello{serverName: "server.example", group: 0x001d, sigAlg: 0x0805,
		keyShare: make([]byte, 32)}
	msg := ch.marshal()
	_, body, _, err := parseHandshakeMsg(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseClientHello(body); err != nil {
		t.Fatalf("valid CH rejected: %v", err)
	}
	for cut := 0; cut < len(body); cut += 7 {
		mustNotPanic(t, "parseClientHello/truncated", func() {
			parseClientHello(body[:cut])
		})
	}
	// Bit flips in length fields must never panic either.
	for pos := 0; pos < len(body); pos += 3 {
		mutated := append([]byte{}, body...)
		mutated[pos] ^= 0xFF
		mustNotPanic(t, "parseClientHello/mutated", func() {
			parseClientHello(mutated)
		})
	}
}

// Record-layer decryption must reject (not panic on) every corruption of a
// valid protected record.
func TestHalfConnOpenRobust(t *testing.T) {
	t.Parallel()
	key := make([]byte, 16)
	iv := make([]byte, 12)
	sender, err := newHalfConn(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sender.seal(RecordHandshake, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(rec.Payload); pos++ {
		receiver, err := newHalfConn(key, iv)
		if err != nil {
			t.Fatal(err)
		}
		bad := Record{Type: rec.Type, Payload: append([]byte{}, rec.Payload...)}
		bad.Payload[pos] ^= 1
		if _, _, err := receiver.open(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", pos)
		}
	}
	// Truncated ciphertexts as well.
	for cut := 0; cut < len(rec.Payload); cut += 5 {
		receiver, _ := newHalfConn(key, iv)
		mustNotPanic(t, "open/truncated", func() {
			receiver.open(Record{Type: rec.Type, Payload: rec.Payload[:cut]})
		})
	}
}

// Native fuzz targets. `go test -fuzz=FuzzX -fuzztime=5s ./internal/tls13`
// explores beyond the quick.Check coverage above; without -fuzz the seed
// corpus below runs as a regression test on every `go test`.

// fuzzSeedClientHello builds a valid ClientHello body for the seed corpus.
func fuzzSeedClientHello() []byte {
	ch := &clientHello{serverName: "server.example", group: 0x001d, sigAlg: 0x0805,
		keyShare: make([]byte, 32)}
	_, body, _, err := parseHandshakeMsg(ch.marshal())
	if err != nil {
		panic(err)
	}
	return body
}

// fuzzSeedServerHello builds a valid ServerHello body for the seed corpus.
func fuzzSeedServerHello() []byte {
	sh := &serverHello{group: 0x001d, keyShare: make([]byte, 32)}
	_, body, _, err := parseHandshakeMsg(sh.marshal())
	if err != nil {
		panic(err)
	}
	return body
}

func FuzzClientHelloParse(f *testing.F) {
	valid := fuzzSeedClientHello()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:4])
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		ch, err := parseClientHello(data)
		if err != nil {
			return
		}
		// The parser tolerates hellos without a usable key share (group 0 is
		// rejected later, during negotiation), but marshal only represents
		// hellos that carry one — so the round-trip property is scoped to
		// those. (Found by fuzzing: a hello with an absent/1-byte share
		// parses but its re-marshaled key_share is under the 8-byte floor.)
		if len(ch.keyShare) < 2 {
			return
		}
		// Accepted hellos must round-trip through marshal and re-parse:
		// the wire form of what we understood must itself be parseable.
		_, body, rest, err := parseHandshakeMsg(ch.marshal())
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-marshaled ClientHello unparseable: %v", err)
		}
		if _, err := parseClientHello(body); err != nil {
			t.Fatalf("re-marshaled ClientHello rejected: %v", err)
		}
	})
}

func FuzzServerHelloParse(f *testing.F) {
	valid := fuzzSeedServerHello()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:35])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sh, err := parseServerHello(data)
		if err != nil {
			return
		}
		_, body, rest, err := parseHandshakeMsg(sh.marshal())
		if err != nil || len(rest) != 0 {
			t.Fatalf("re-marshaled ServerHello unparseable: %v", err)
		}
		if _, err := parseServerHello(body); err != nil {
			t.Fatalf("re-marshaled ServerHello rejected: %v", err)
		}
	})
}

// FuzzRecordDeprotect drives the record-layer open() with attacker-chosen
// ciphertext. It must never panic, and must never accept a payload that the
// paired sender did not seal (any accepted open here is a forgery, since
// the fuzzer does not know the traffic key).
func FuzzRecordDeprotect(f *testing.F) {
	key := make([]byte, 16)
	iv := make([]byte, 12)
	sender, err := newHalfConn(key, iv)
	if err != nil {
		f.Fatal(err)
	}
	sealed, err := sender.seal(RecordHandshake, []byte("finished message payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed.Payload)
	f.Add(sealed.Payload[:len(sealed.Payload)/2])
	f.Add([]byte{})
	f.Add(make([]byte, 17)) // tag-sized garbage
	f.Fuzz(func(t *testing.T, payload []byte) {
		receiver, err := newHalfConn(key, iv)
		if err != nil {
			t.Fatal(err)
		}
		// Sequence 0 re-seal of the seed payload is the only valid input;
		// everything else must error.
		innerType, plain, err := receiver.open(Record{Type: RecordApplicationData, Payload: payload})
		if err == nil {
			if !bytes.Equal(payload, sealed.Payload) {
				t.Fatalf("forged record accepted: type %d, %q", innerType, plain)
			}
		}
	})
}

// An all-zero inner plaintext (padding only) must be rejected, not sliced
// out of bounds.
func TestAllZeroInnerPlaintext(t *testing.T) {
	t.Parallel()
	key := make([]byte, 16)
	iv := make([]byte, 12)
	sender, _ := newHalfConn(key, iv)
	rec, err := sender.seal(0, nil) // inner type 0 + empty = all-zero inner
	if err != nil {
		t.Fatal(err)
	}
	receiver, _ := newHalfConn(key, iv)
	if _, _, err := receiver.open(rec); err == nil {
		t.Error("all-zero inner plaintext accepted")
	}
}
