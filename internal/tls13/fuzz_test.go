package tls13

import (
	"testing"
	"testing/quick"
)

// Parser robustness: every wire parser must survive arbitrary and truncated
// inputs without panicking — the paper's black-box setup points these
// parsers at whatever the network delivers.

func mustNotPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s panicked: %v", name, r)
		}
	}()
	f()
}

func TestParsersSurviveGarbage(t *testing.T) {
	t.Parallel()
	check := func(data []byte) bool {
		mustNotPanic(t, "ParseRecord", func() { ParseRecord(data) })
		mustNotPanic(t, "parseHandshakeMsg", func() { parseHandshakeMsg(data) })
		mustNotPanic(t, "parseClientHello", func() { parseClientHello(data) })
		mustNotPanic(t, "parseServerHello", func() { parseServerHello(data) })
		mustNotPanic(t, "parseCertificate", func() { parseCertificate(data) })
		mustNotPanic(t, "parseCertVerify", func() { parseCertVerify(data) })
		mustNotPanic(t, "parseHRRGroup", func() { parseHRRGroup(data) })
		mustNotPanic(t, "parsePSKExtension", func() { parsePSKExtension(data) })
		mustNotPanic(t, "parseAlert", func() { parseAlert(Record{Type: RecordAlert, Payload: data}) })
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Truncations of a *valid* ClientHello must all be rejected cleanly.
func TestClientHelloTruncations(t *testing.T) {
	t.Parallel()
	ch := &clientHello{serverName: "server.example", group: 0x001d, sigAlg: 0x0805,
		keyShare: make([]byte, 32)}
	msg := ch.marshal()
	_, body, _, err := parseHandshakeMsg(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseClientHello(body); err != nil {
		t.Fatalf("valid CH rejected: %v", err)
	}
	for cut := 0; cut < len(body); cut += 7 {
		mustNotPanic(t, "parseClientHello/truncated", func() {
			parseClientHello(body[:cut])
		})
	}
	// Bit flips in length fields must never panic either.
	for pos := 0; pos < len(body); pos += 3 {
		mutated := append([]byte{}, body...)
		mutated[pos] ^= 0xFF
		mustNotPanic(t, "parseClientHello/mutated", func() {
			parseClientHello(mutated)
		})
	}
}

// Record-layer decryption must reject (not panic on) every corruption of a
// valid protected record.
func TestHalfConnOpenRobust(t *testing.T) {
	t.Parallel()
	key := make([]byte, 16)
	iv := make([]byte, 12)
	sender, err := newHalfConn(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	rec := sender.seal(RecordHandshake, []byte("payload"))
	for pos := 0; pos < len(rec.Payload); pos++ {
		receiver, err := newHalfConn(key, iv)
		if err != nil {
			t.Fatal(err)
		}
		bad := Record{Type: rec.Type, Payload: append([]byte{}, rec.Payload...)}
		bad.Payload[pos] ^= 1
		if _, _, err := receiver.open(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", pos)
		}
	}
	// Truncated ciphertexts as well.
	for cut := 0; cut < len(rec.Payload); cut += 5 {
		receiver, _ := newHalfConn(key, iv)
		mustNotPanic(t, "open/truncated", func() {
			receiver.open(Record{Type: rec.Type, Payload: rec.Payload[:cut]})
		})
	}
}

// An all-zero inner plaintext (padding only) must be rejected, not sliced
// out of bounds.
func TestAllZeroInnerPlaintext(t *testing.T) {
	t.Parallel()
	key := make([]byte, 16)
	iv := make([]byte, 12)
	sender, _ := newHalfConn(key, iv)
	rec := sender.seal(0, nil) // inner type 0 + empty = all-zero inner
	receiver, _ := newHalfConn(key, iv)
	if _, _, err := receiver.open(rec); err == nil {
		t.Error("all-zero inner plaintext accepted")
	}
}
