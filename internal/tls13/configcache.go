package tls13

import (
	"sync/atomic"
	"unsafe"

	"pqtls/internal/pki"
)

// Per-Config caches for state that is identical on every handshake built
// from the same Config: the marshaled Certificate message and the transient
// TicketStore backing a bare TicketKey.
//
// The fields live on Config as plain unsafe.Pointer slots (see config.go)
// rather than atomic.Pointer[T] because Config is value-copied throughout
// the codebase and atomic.Pointer's noCopy marker would trip vet. Each
// cache entry records the identity of the input it was built from and is
// rebuilt on mismatch, so a copied-then-mutated Config stays correct — it
// just repopulates its own slot.

// certMsgCache memoizes the marshaled Certificate message for a chain.
type certMsgCache struct {
	chain0 *pki.Certificate // identity of the chain it was built from
	n      int
	msg    []byte
}

// certificateMessage returns the marshaled Certificate handshake message for
// c.Chain, cached across handshakes. The returned bytes are shared: callers
// must not mutate them (sealHandshake clones record payloads, so the normal
// server path never does).
func (c *Config) certificateMessage() []byte {
	if len(c.Chain) == 0 {
		return nil
	}
	if p := (*certMsgCache)(atomic.LoadPointer(&c.certMsgCache)); p != nil &&
		p.chain0 == c.Chain[0] && p.n == len(c.Chain) {
		return p.msg
	}
	raw := make([][]byte, len(c.Chain))
	for i, cert := range c.Chain {
		raw[i] = cert.Marshal()
	}
	entry := &certMsgCache{chain0: c.Chain[0], n: len(c.Chain), msg: marshalCertificate(raw)}
	atomic.StorePointer(&c.certMsgCache, unsafe.Pointer(entry))
	return entry.msg
}

// ticketStoreCache memoizes the transient store built from a bare TicketKey.
type ticketStoreCache struct {
	key   *[ticketKeySize]byte // identity of the TicketKey it was built from
	store *TicketStore
}

// sessionTickets resolves the server's ticket machinery: the shared Tickets
// store when configured, else a per-Config store over the legacy TicketKey,
// else nil. The TicketKey store used to be rebuilt on every handshake, which
// discarded its counters and paid an AEAD construction per connection; it is
// now cached on the Config, so all handshakes from one Config share one
// store (two racing first calls may transiently build two stores over the
// same key — their tickets interoperate, and later calls converge).
func (c *Config) sessionTickets() *TicketStore {
	if c.Tickets != nil {
		return c.Tickets
	}
	if c.TicketKey == nil {
		return nil
	}
	if p := (*ticketStoreCache)(atomic.LoadPointer(&c.ticketCache)); p != nil && p.key == c.TicketKey {
		return p.store
	}
	entry := &ticketStoreCache{key: c.TicketKey, store: NewTicketStore(*c.TicketKey)}
	atomic.StorePointer(&c.ticketCache, unsafe.Pointer(entry))
	return entry.store
}
