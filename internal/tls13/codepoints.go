package tls13

import "fmt"

// Named-group codepoints for the key_share / supported_groups extensions.
// Classical groups use the IANA values; PQ and hybrid groups use
// OQS-OpenSSL-style private-range codepoints, matching the fork the paper
// benchmarks.
var groupIDs = map[string]uint16{
	"x25519": 0x001d,
	"p256":   0x0017,
	"p384":   0x0018,
	"p521":   0x0019,

	"kyber512":     0x023a,
	"kyber768":     0x023c,
	"kyber1024":    0x023d,
	"kyber90s512":  0x023e,
	"kyber90s768":  0x023f,
	"kyber90s1024": 0x0240,
	"hqc128":       0x022c,
	"hqc192":       0x022d,
	"hqc256":       0x022e,
	"bikel1":       0x0241,
	"bikel3":       0x0242,

	"p256_kyber512":  0x2f3a,
	"p384_kyber768":  0x2f3c,
	"p521_kyber1024": 0x2f3d,
	"p256_hqc128":    0x2f2c,
	"p384_hqc192":    0x2f2d,
	"p521_hqc256":    0x2f2e,
	"p256_bikel1":    0x2f41,
	"p384_bikel3":    0x2f42,
}

// Signature-scheme codepoints for signature_algorithms / CertificateVerify.
// RSA uses rsa_pss_rsae_sha256; PQ schemes use OQS-style values.
var sigIDs = map[string]uint16{
	"rsa:1024": 0x0804,
	"rsa:2048": 0x0805,
	"rsa:3072": 0x0806,
	"rsa:4096": 0x0807,

	// IANA assigns ed25519 0x0807, but this repo's OQS-style private
	// numbering already spent that value on rsa:4096 (sigName reverses by
	// value, so codepoints must stay a bijection).
	"ed25519": 0x0808,

	"ecdsa-p256": 0x0403,
	"ecdsa-p384": 0x0503,
	"ecdsa-p521": 0x0603,

	"dilithium2":     0xfea0,
	"dilithium3":     0xfea3,
	"dilithium5":     0xfea5,
	"dilithium2_aes": 0xfea7,
	"dilithium3_aes": 0xfea8,
	"dilithium5_aes": 0xfea9,
	"falcon512":      0xfeae,
	"falcon1024":     0xfeb1,
	"sphincs128":     0xfeb3,
	"sphincs192":     0xfeb6,
	"sphincs256":     0xfeb9,
	"sphincs128s":    0xfeb4,
	"sphincs192s":    0xfeb7,
	"sphincs256s":    0xfeba,

	"p256_dilithium2":    0xfed0,
	"rsa3072_dilithium2": 0xfed1,
	"p384_dilithium3":    0xfed3,
	"p521_dilithium5":    0xfed5,
	"p256_falcon512":     0xfed7,
	"p521_falcon1024":    0xfed8,
	"p256_sphincs128":    0xfeda,
	"p384_sphincs192":    0xfedb,
	"p521_sphincs256":    0xfedc,
}

// GroupID returns the key_share codepoint for a KEM name.
func GroupID(name string) (uint16, error) {
	id, ok := groupIDs[name]
	if !ok {
		return 0, fmt.Errorf("tls13: no group codepoint for %q", name)
	}
	return id, nil
}

// SigID returns the signature_algorithms codepoint for a scheme name.
func SigID(name string) (uint16, error) {
	id, ok := sigIDs[name]
	if !ok {
		return 0, fmt.Errorf("tls13: no signature codepoint for %q", name)
	}
	return id, nil
}

// groupName reverses GroupID.
func groupName(id uint16) (string, bool) {
	for n, v := range groupIDs {
		if v == id {
			return n, true
		}
	}
	return "", false
}

// sigName reverses SigID.
func sigName(id uint16) (string, bool) {
	for n, v := range sigIDs {
		if v == id {
			return n, true
		}
	}
	return "", false
}
