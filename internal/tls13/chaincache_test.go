package tls13

import (
	"fmt"
	"sync"
	"testing"
)

// A capped cache must stay capped under a many-distinct-chain churn and
// account for every displacement.
func TestChainCacheCappedUnderChurn(t *testing.T) {
	t.Parallel()
	const capacity, distinct = 8, 200
	c := NewChainCacheCap(capacity)
	for i := 0; i < distinct; i++ {
		key := chainKey([]byte(fmt.Sprintf("chain-%d", i)))
		c.store(key, &chainEntry{algs: []string{"dilithium3"}})
		if st := c.Stats(); st.Entries > capacity {
			t.Fatalf("cache grew to %d entries, cap is %d", st.Entries, capacity)
		}
	}
	st := c.Stats()
	if st.Entries != capacity {
		t.Errorf("entries = %d, want %d", st.Entries, capacity)
	}
	if st.Evictions != distinct-capacity {
		t.Errorf("evictions = %d, want %d", st.Evictions, distinct-capacity)
	}
}

// Re-storing a resident key must not evict anyone.
func TestChainCacheRestoreNoEviction(t *testing.T) {
	t.Parallel()
	c := NewChainCacheCap(2)
	k1 := chainKey([]byte("one"))
	k2 := chainKey([]byte("two"))
	c.store(k1, &chainEntry{})
	c.store(k2, &chainEntry{})
	c.store(k1, &chainEntry{})
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 entries and no evictions", st)
	}
}

func TestChainCacheStats(t *testing.T) {
	t.Parallel()
	c := NewChainCache()
	key := chainKey([]byte("the chain"))
	if c.lookup(key) != nil {
		t.Fatal("hit on empty cache")
	}
	c.store(key, &chainEntry{})
	if c.lookup(key) == nil {
		t.Fatal("miss after store")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// Concurrent lookup/store/stats churn; run under -race in make check.
func TestChainCacheConcurrent(t *testing.T) {
	t.Parallel()
	c := NewChainCacheCap(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := chainKey([]byte(fmt.Sprintf("g%d-%d", g, i%8)))
				if c.lookup(key) == nil {
					c.store(key, &chainEntry{})
				}
				_ = c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Entries > 4 {
		t.Errorf("cap violated under concurrency: %d entries", st.Entries)
	}
}
