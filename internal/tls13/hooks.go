package tls13

// Hooks is the unified observation seam of the handshake state machines.
// It generalizes the two seams that grew separately — the white-box library
// Tracer (perf.Profiler.Span) and the cost-model Meter charge point — into
// one interface, so the perf bucket profiler, the obs span tracer, and the
// live metrics recorder are all just hook implementations and can be
// stacked with MultiHooks.
//
// The three methods observe three different grains of the same handshake:
//
//   - Span(lib) opens a CPU region attributed to a "shared object" bucket
//     (LibCrypto, LibSSL) — the paper's Table 3 white-box view.
//   - Phase(name) opens a named handshake phase (Phase* constants) — the
//     protocol-level decomposition (KEM decap, CertificateVerify sign, ...).
//     Phases nest within and across library spans; implementations must
//     tolerate out-of-order and repeated closes (error paths may abandon
//     spans).
//   - Charge(op, alg) observes one public-key operation. Unlike
//     Config.Meter — which owns the virtual compute clock and is kept
//     separate precisely so an observer can never advance simulated time —
//     a hook's Charge is purely an observation.
//
// Concurrency: a Hooks value installed on a per-handshake Config (harness,
// loadgen) is called from that handshake's goroutine only; a value shared
// across connections (internal/live's metrics recorder) must be safe for
// concurrent use.
type Hooks interface {
	// Span opens a region attributed to lib; the returned func closes it.
	Span(lib string) func()
	// Phase opens a named handshake phase; the returned func closes it.
	Phase(name string) func()
	// Charge observes a public-key operation (an Op* label) on alg.
	Charge(op, alg string)
}

// Handshake phase names passed to Hooks.Phase. The same vocabulary is used
// on both endpoints (span records carry the endpoint); drivers that measure
// inter-flight idle time emit PhaseFlightWait themselves — the state
// machines are sans-IO and never see the waiting.
const (
	// PhaseClientHello is the client's ClientHello build, including key-share
	// generation. It runs before the CH reaches the wire, so the paper's
	// Total (tap CH→Fin) excludes it.
	PhaseClientHello = "client-hello"
	// PhaseCHParse is the server parsing the ClientHello flight.
	PhaseCHParse = "client-hello-parse"
	// PhaseKEMKeygen nests inside PhaseClientHello around key generation.
	PhaseKEMKeygen = "kem-keygen"
	// PhaseServerHello is the ServerHello build (server) or parse (client).
	PhaseServerHello = "server-hello"
	// PhaseKEMEncap and PhaseKEMDecap are the key-agreement halves.
	PhaseKEMEncap = "kem-encap"
	PhaseKEMDecap = "kem-decap"
	// PhaseCertWrite is the server marshaling + sealing the certificate
	// chain; PhaseCertVerify is the client validating it.
	PhaseCertWrite  = "cert-write"
	PhaseCertVerify = "cert-verify"
	// PhaseCVSign and PhaseCVVerify are the CertificateVerify signature.
	PhaseCVSign   = "cv-sign"
	PhaseCVVerify = "cv-verify"
	// PhaseFinSend and PhaseFinVerify are the Finished MAC build and check.
	PhaseFinSend   = "finished-send"
	PhaseFinVerify = "finished-verify"
	// PhaseRecordRead and PhaseRecordWrite are record protection: AEAD open
	// of an arriving record, AEAD seal of an outgoing handshake message.
	PhaseRecordRead  = "record-read"
	PhaseRecordWrite = "record-write"
	// PhaseTicketIssue is the server building a NewSessionTicket;
	// PhaseTicketRedeem is the server opening a presented ticket;
	// PhaseTicketProcess is the client absorbing a ticket flight.
	PhaseTicketIssue   = "ticket-issue"
	PhaseTicketRedeem  = "ticket-redeem"
	PhaseTicketProcess = "ticket-process"
	// PhaseFlightWait is emitted by handshake drivers (harness drive loop,
	// loadgen's blocking reads) for time the client spends idle waiting for
	// the server's next flush — the observable the buffering-policy analysis
	// (Section 5.2) turns on.
	PhaseFlightWait = "flight-wait"
)

// multiHooks fans every hook event out to each element.
type multiHooks []Hooks

// MultiHooks combines hook implementations; nil entries are dropped. It
// returns nil when nothing remains, so the result can be assigned to
// Config.Hooks unconditionally.
func MultiHooks(hooks ...Hooks) Hooks {
	var hs multiHooks
	for _, h := range hooks {
		if h != nil {
			hs = append(hs, h)
		}
	}
	switch len(hs) {
	case 0:
		return nil
	case 1:
		return hs[0]
	}
	return hs
}

func (m multiHooks) Span(lib string) func() {
	ends := make([]func(), len(m))
	for i, h := range m {
		ends[i] = h.Span(lib)
	}
	return func() {
		for i := len(ends) - 1; i >= 0; i-- {
			ends[i]()
		}
	}
}

func (m multiHooks) Phase(name string) func() {
	ends := make([]func(), len(m))
	for i, h := range m {
		ends[i] = h.Phase(name)
	}
	return func() {
		for i := len(ends) - 1; i >= 0; i-- {
			ends[i]()
		}
	}
}

func (m multiHooks) Charge(op, alg string) {
	for _, h := range m {
		h.Charge(op, alg)
	}
}

// nopEnd is the shared no-op span/phase closer for unhooked configs.
func nopEnd() {}

// span is the nil-safe library-span helper.
func (c *Config) span(lib string) func() {
	if c == nil || c.Hooks == nil {
		return nopEnd
	}
	return c.Hooks.Span(lib)
}

// phase is the nil-safe phase helper.
func (c *Config) phase(name string) func() {
	if c == nil || c.Hooks == nil {
		return nopEnd
	}
	return c.Hooks.Phase(name)
}
