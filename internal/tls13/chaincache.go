package tls13

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"pqtls/internal/pki"
)

// defaultChainCacheCap bounds the cache; a loadgen fleet sees a handful of
// distinct server chains, so overflow signals misuse rather than a working
// set and is handled by random eviction.
const defaultChainCacheCap = 32

// ChainCache memoizes successful certificate-chain verifications, keyed by
// the hash of the Certificate message body. The server presents an
// identical chain on every connection, so after the first full
// parse-and-verify a client can amortize the real chain-validation compute
// across all subsequent handshakes; the modeled per-certificate verify
// charges are unaffected. The cache records only successes — failures
// always re-run the full path — and must only be shared between configs
// with identical Roots, since a hit vouches for the chain under the roots
// that first verified it. Safe for concurrent use.
type ChainCache struct {
	cap int

	mu sync.Mutex
	m  map[[32]byte]*chainEntry

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// chainEntry is the verification outcome a cache hit replays: the leaf
// certificate plus the algorithm of every chain element (for the modeled
// per-certificate verify charges).
type chainEntry struct {
	leaf *pki.Certificate
	algs []string
}

// NewChainCache returns an empty chain-verification cache with the default
// size cap.
func NewChainCache() *ChainCache {
	return NewChainCacheCap(defaultChainCacheCap)
}

// NewChainCacheCap returns an empty cache holding at most capacity entries
// (minimum 1); overflow evicts a random resident entry.
func NewChainCacheCap(capacity int) *ChainCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ChainCache{cap: capacity, m: make(map[[32]byte]*chainEntry)}
}

func chainKey(body []byte) [32]byte { return sha256.Sum256(body) }

func (c *ChainCache) lookup(key [32]byte) *chainEntry {
	c.mu.Lock()
	e := c.m[key]
	c.mu.Unlock()
	if e == nil {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return e
}

func (c *ChainCache) store(key [32]byte, e *chainEntry) {
	c.mu.Lock()
	if _, resident := c.m[key]; !resident && len(c.m) >= c.cap {
		for k := range c.m {
			delete(c.m, k)
			break
		}
		c.evictions.Add(1)
	}
	c.m[key] = e
	c.mu.Unlock()
}

// ChainCacheStats is a point-in-time view of the cache's counters.
type ChainCacheStats struct {
	Hits      uint64 // lookups answered from the cache
	Misses    uint64 // lookups that fell through to a full verification
	Evictions uint64 // resident entries displaced by the size cap
	Entries   int    // current resident count (≤ the cap)
}

// Stats returns the cache's counters and current size.
func (c *ChainCache) Stats() ChainCacheStats {
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	return ChainCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}
