package tls13

import (
	"crypto/sha256"
	"sync"

	"pqtls/internal/pki"
)

// chainCacheCap bounds the cache; a loadgen fleet sees a handful of
// distinct server chains, so overflow signals misuse rather than a working
// set and is handled by random eviction.
const chainCacheCap = 32

// ChainCache memoizes successful certificate-chain verifications, keyed by
// the hash of the Certificate message body. The server presents an
// identical chain on every connection, so after the first full
// parse-and-verify a client can amortize the real chain-validation compute
// across all subsequent handshakes; the modeled per-certificate verify
// charges are unaffected. The cache records only successes — failures
// always re-run the full path — and must only be shared between configs
// with identical Roots, since a hit vouches for the chain under the roots
// that first verified it. Safe for concurrent use.
type ChainCache struct {
	mu sync.Mutex
	m  map[[32]byte]*chainEntry
}

// chainEntry is the verification outcome a cache hit replays: the leaf
// certificate plus the algorithm of every chain element (for the modeled
// per-certificate verify charges).
type chainEntry struct {
	leaf *pki.Certificate
	algs []string
}

// NewChainCache returns an empty chain-verification cache.
func NewChainCache() *ChainCache {
	return &ChainCache{m: make(map[[32]byte]*chainEntry)}
}

func chainKey(body []byte) [32]byte { return sha256.Sum256(body) }

func (c *ChainCache) lookup(key [32]byte) *chainEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[key]
}

func (c *ChainCache) store(key [32]byte, e *chainEntry) {
	c.mu.Lock()
	if len(c.m) >= chainCacheCap {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = e
	c.mu.Unlock()
}
