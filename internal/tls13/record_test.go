package tls13

import (
	"bytes"
	"testing"
)

func testHalfConnPair(t *testing.T) (sender, receiver *halfConn) {
	t.Helper()
	key := make([]byte, 16)
	iv := make([]byte, 12)
	for i := range key {
		key[i] = byte(i)
	}
	for i := range iv {
		iv[i] = byte(0xA0 + i)
	}
	sender, err := newHalfConn(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err = newHalfConn(key, iv)
	if err != nil {
		t.Fatal(err)
	}
	return sender, receiver
}

// RFC 8446 §5.5: the record sequence number must never wrap. A halfConn
// that reaches 2^64-1 must refuse to protect or deprotect further records
// instead of repeating an AES-GCM nonce.
func TestSeqExhaustion(t *testing.T) {
	t.Parallel()
	sender, receiver := testHalfConnPair(t)

	// One step before the limit still works.
	sender.seq = 1<<64 - 2
	receiver.seq = 1<<64 - 2
	rec, err := sender.seal(RecordApplicationData, []byte("last record"))
	if err != nil {
		t.Fatalf("seal at seq 2^64-2: %v", err)
	}
	if _, _, err := receiver.open(rec); err != nil {
		t.Fatalf("open at seq 2^64-2: %v", err)
	}

	// Both directions are now at the limit and must refuse.
	if sender.seq != 1<<64-1 {
		t.Fatalf("sender seq = %d, want 2^64-1", sender.seq)
	}
	if _, err := sender.seal(RecordApplicationData, []byte("one too many")); err == nil {
		t.Error("seal at seq 2^64-1 succeeded, want sequence-exhaustion error")
	}
	if _, _, err := receiver.open(rec); err == nil {
		t.Error("open at seq 2^64-1 succeeded, want sequence-exhaustion error")
	}

	// The guard must fire before any state change: seq stays pinned.
	if sender.seq != 1<<64-1 || receiver.seq != 1<<64-1 {
		t.Error("sequence number advanced past the exhaustion guard")
	}
}

// Steady-state record protection must not allocate: the paper's
// throughput phase would otherwise be dominated by GC, not crypto.
func TestSealOpenZeroAlloc(t *testing.T) {
	sender, receiver := testHalfConnPair(t)
	payload := make([]byte, 1024)
	// Warm the scratch buffers once.
	warm, err := sender.seal(RecordApplicationData, payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := receiver.open(warm); err != nil {
		t.Fatal(err)
	}

	var rec Record
	if n := testing.AllocsPerRun(100, func() {
		sender.seq = 0
		r, err := sender.seal(RecordApplicationData, payload)
		if err != nil {
			t.Fatal(err)
		}
		rec = r
	}); n != 0 {
		t.Errorf("seal allocates %v times per record, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		receiver.seq = 0
		if _, _, err := receiver.open(rec); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("open allocates %v times per record, want 0", n)
	}
}

// seal and open must still roundtrip every payload size up to the record
// limit boundary region after the scratch-reuse rewrite.
func TestSealOpenRoundtripSizes(t *testing.T) {
	t.Parallel()
	sender, receiver := testHalfConnPair(t)
	for _, size := range []int{0, 1, 255, 1024, maxRecordPayload} {
		payload := bytes.Repeat([]byte{byte(size)}, size)
		rec, err := sender.seal(RecordHandshake, payload)
		if err != nil {
			t.Fatalf("size %d: seal: %v", size, err)
		}
		innerType, plain, err := receiver.open(rec)
		if err != nil {
			t.Fatalf("size %d: open: %v", size, err)
		}
		if innerType != RecordHandshake || !bytes.Equal(plain, payload) {
			t.Fatalf("size %d: roundtrip mismatch", size)
		}
	}
}

// Consecutive seals reuse one scratch buffer, so each record's payload is
// only stable until the next seal — the documented aliasing contract that
// sealHandshake's clone relies on.
func TestSealScratchAliasing(t *testing.T) {
	t.Parallel()
	sender, receiver := testHalfConnPair(t)
	first, err := sender.seal(RecordHandshake, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	stable := append([]byte(nil), first.Payload...)
	if _, err := sender.seal(RecordHandshake, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(first.Payload, stable) {
		t.Skip("scratch not reused for this size; aliasing contract not exercised")
	}
	// The cloned copy must still decrypt.
	if _, plain, err := receiver.open(Record{Type: RecordApplicationData, Payload: stable}); err != nil || string(plain) != "first" {
		t.Fatalf("cloned payload failed to open: %v", err)
	}
}
