package tls13

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
)

// The TLS 1.3 key schedule (RFC 8446 §7.1) for the SHA-256 suite.
//
// Two forms coexist. The package-level hkdf* functions below are the
// straightforward allocating ones, kept for cold paths that run outside a
// handshake's keySchedule (PSK binder keys in session.go). The keySchedule
// methods further down are the per-handshake hot path: one reusable HMAC
// engine plus fixed-size scratch on the handshake state make every
// derivation — extract, expand-label, traffic keys, finished MACs, the
// transcript hash — allocation-free in steady state.

func hkdfExtract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	if ikm == nil {
		ikm = make([]byte, sha256.Size)
	}
	m := hmac.New(sha256.New, salt)
	m.Write(ikm)
	return m.Sum(nil)
}

func hkdfExpand(prk, info []byte, length int) []byte {
	var out []byte
	var block []byte
	counter := byte(1)
	for len(out) < length {
		m := hmac.New(sha256.New, prk)
		m.Write(block)
		m.Write(info)
		m.Write([]byte{counter})
		block = m.Sum(nil)
		out = append(out, block...)
		counter++
	}
	return out[:length]
}

// hkdfExpandLabel implements HKDF-Expand-Label with the "tls13 " prefix.
func hkdfExpandLabel(secret []byte, label string, context []byte, length int) []byte {
	full := "tls13 " + label
	info := make([]byte, 0, 4+len(full)+len(context))
	info = append(info, byte(length>>8), byte(length))
	info = append(info, byte(len(full)))
	info = append(info, full...)
	info = append(info, byte(len(context)))
	info = append(info, context...)
	return hkdfExpand(secret, info, length)
}

// deriveSecret is Derive-Secret(secret, label, transcript).
func deriveSecret(secret []byte, label string, transcriptHash []byte) []byte {
	return hkdfExpandLabel(secret, label, transcriptHash, sha256.Size)
}

// finishedMAC computes the Finished verify_data for a traffic secret.
func finishedMAC(trafficSecret, transcriptHash []byte) []byte {
	finishedKey := hkdfExpandLabel(trafficSecret, "finished", nil, sha256.Size)
	m := hmac.New(sha256.New, finishedKey)
	m.Write(transcriptHash)
	return m.Sum(nil)
}

// emptyHashSum is SHA-256(""), the Derive-Secret transcript for the two
// "derived" steps; noPSKEarly is HKDF-Extract(0, 0), the early secret of
// every non-resumed handshake. Both are schedule constants.
var (
	emptyHashSum = sha256.Sum256(nil)
	noPSKEarly   [sha256.Size]byte
	zero32       [sha256.Size]byte
)

func init() {
	copy(noPSKEarly[:], hkdfExtract(nil, nil))
}

func emptyHash() []byte {
	return emptyHashSum[:]
}

// hmacSHA256 is a reusable HMAC-SHA-256 engine. Re-keying rewrites the two
// padded key blocks in place and resets the persistent digests, so
// steady-state use costs zero allocations: hmac.New's per-instance
// allocations are paid once per handshake instead of once per derivation.
type hmacSHA256 struct {
	inner, outer hash.Hash
	ipad, opad   [64]byte
	sum          [sha256.Size]byte // inner-digest staging
}

// setKey keys the engine and starts the inner digest. The key is hashed
// first when it exceeds the SHA-256 block size, per FIPS 198.
func (m *hmacSHA256) setKey(key []byte) {
	if m.inner == nil {
		m.inner = sha256.New()
		m.outer = sha256.New()
	}
	if len(key) > len(m.ipad) {
		m.inner.Reset()
		m.inner.Write(key)
		key = m.inner.Sum(m.sum[:0])
	}
	for i := range m.ipad {
		m.ipad[i] = 0x36
		m.opad[i] = 0x5c
	}
	for i, b := range key {
		m.ipad[i] ^= b
		m.opad[i] ^= b
	}
	m.inner.Reset()
	m.inner.Write(m.ipad[:])
}

func (m *hmacSHA256) write(p []byte) {
	m.inner.Write(p)
}

// finish appends the 32-byte MAC into out's backing array, which must have
// capacity for it (callers pass field[:0] of a [32]byte scratch).
func (m *hmacSHA256) finish(out []byte) {
	tag := m.inner.Sum(m.sum[:0])
	m.outer.Reset()
	m.outer.Write(m.opad[:])
	m.outer.Write(tag)
	m.outer.Sum(out)
}

// keySchedule tracks the running secrets and transcript of one handshake.
// Secrets are fixed-size arrays and every derivation runs through the
// embedded hmacSHA256 engine and the scratch fields, so the per-message
// schedule work after construction performs no heap allocation.
type keySchedule struct {
	transcript hash.Hash
	mac        hmacSHA256

	earlySecret     [sha256.Size]byte
	handshakeSecret [sha256.Size]byte
	masterSecret    [sha256.Size]byte

	clientHSTraffic  [sha256.Size]byte
	serverHSTraffic  [sha256.Size]byte
	clientAppTraffic [sha256.Size]byte
	serverAppTraffic [sha256.Size]byte

	th    [sha256.Size]byte // transcriptHash output; valid until the next call
	tmp   [sha256.Size]byte // "derived" / finished-key intermediate
	block [sha256.Size]byte // expandLabel output block before truncation
	fin   [sha256.Size]byte // finishedMsg output scratch
	keyS  [16]byte          // trafficKeys outputs; valid until the next call
	ivS   [12]byte
	info  [80]byte // HKDF-Expand-Label info; largest real info is 56 bytes
}

func newKeySchedule() *keySchedule {
	ks := &keySchedule{transcript: sha256.New()}
	ks.earlySecret = noPSKEarly
	return ks
}

// setEarlySecret replaces the no-PSK early secret with HKDF-Extract(0, psk)
// for a resumed handshake.
func (ks *keySchedule) setEarlySecret(psk []byte) {
	ks.extract(&ks.earlySecret, nil, psk)
}

// addMessage absorbs a handshake message (with its 4-byte header) into the
// transcript.
func (ks *keySchedule) addMessage(msg []byte) {
	ks.transcript.Write(msg)
}

// transcriptHash returns the running transcript hash in scratch owned by ks;
// the slice is valid until the next transcriptHash call.
func (ks *keySchedule) transcriptHash() []byte {
	ks.transcript.Sum(ks.th[:0])
	return ks.th[:]
}

// extract is HKDF-Extract into a caller-owned 32-byte array; nil salt or ikm
// mean 32 zero bytes, as in the RFC 8446 schedule diagram.
func (ks *keySchedule) extract(out *[sha256.Size]byte, salt, ikm []byte) {
	if salt == nil {
		salt = zero32[:]
	}
	if ikm == nil {
		ikm = zero32[:]
	}
	ks.mac.setKey(salt)
	ks.mac.write(ikm)
	ks.mac.finish(out[:0])
}

// expandLabel is HKDF-Expand-Label for output lengths up to one SHA-256
// block (all the schedule ever needs), writing len(out) bytes into out.
func (ks *keySchedule) expandLabel(out []byte, secret []byte, label string, context []byte) {
	info := ks.info[:0]
	info = append(info, byte(len(out)>>8), byte(len(out)))
	info = append(info, byte(len("tls13 ")+len(label)))
	info = append(info, "tls13 "...)
	info = append(info, label...)
	info = append(info, byte(len(context)))
	info = append(info, context...)
	info = append(info, 1) // single-block HKDF counter
	ks.mac.setKey(secret)
	ks.mac.write(info)
	ks.mac.finish(ks.block[:0])
	copy(out, ks.block[:len(out)])
}

// deriveSecretInto is Derive-Secret(secret, label, th) into a caller-owned
// array.
func (ks *keySchedule) deriveSecretInto(out *[sha256.Size]byte, secret []byte, label string, th []byte) {
	ks.expandLabel(out[:], secret, label, th)
}

// setSharedSecret mixes the (EC)DHE/KEM shared secret in and derives the
// handshake traffic secrets from the transcript through ServerHello.
func (ks *keySchedule) setSharedSecret(ss []byte) {
	ks.deriveSecretInto(&ks.tmp, ks.earlySecret[:], "derived", emptyHashSum[:])
	ks.extract(&ks.handshakeSecret, ks.tmp[:], ss)
	th := ks.transcriptHash()
	ks.deriveSecretInto(&ks.clientHSTraffic, ks.handshakeSecret[:], "c hs traffic", th)
	ks.deriveSecretInto(&ks.serverHSTraffic, ks.handshakeSecret[:], "s hs traffic", th)
}

// deriveMaster computes the master secret and application traffic secrets
// from the transcript through server Finished.
func (ks *keySchedule) deriveMaster() {
	ks.deriveSecretInto(&ks.tmp, ks.handshakeSecret[:], "derived", emptyHashSum[:])
	ks.extract(&ks.masterSecret, ks.tmp[:], nil)
	th := ks.transcriptHash()
	ks.deriveSecretInto(&ks.clientAppTraffic, ks.masterSecret[:], "c ap traffic", th)
	ks.deriveSecretInto(&ks.serverAppTraffic, ks.masterSecret[:], "s ap traffic", th)
}

// trafficKeys derives the AEAD key and IV from a traffic secret into scratch
// owned by ks; the slices are valid until the next trafficKeys call.
// (halfConn copies both into its own state immediately.)
func (ks *keySchedule) trafficKeys(secret []byte) (key, iv []byte) {
	ks.expandLabel(ks.keyS[:], secret, "key", nil)
	ks.expandLabel(ks.ivS[:], secret, "iv", nil)
	return ks.keyS[:], ks.ivS[:]
}

// finishedMACInto computes the Finished verify_data for a traffic secret
// into a caller-owned array.
func (ks *keySchedule) finishedMACInto(out *[sha256.Size]byte, trafficSecret, th []byte) {
	ks.expandLabel(ks.tmp[:], trafficSecret, "finished", nil)
	ks.mac.setKey(ks.tmp[:])
	ks.mac.write(th)
	ks.mac.finish(out[:0])
}

// finishedMsg builds the Finished verify_data for a traffic secret in
// scratch owned by ks; the slice is valid until the next finishedMsg call.
func (ks *keySchedule) finishedMsg(trafficSecret, th []byte) []byte {
	ks.finishedMACInto(&ks.fin, trafficSecret, th)
	return ks.fin[:]
}

// KeyScheduleKernel exposes one full hot-path key-schedule derivation —
// transcript absorb, handshake and master secret extraction, four traffic
// secrets, traffic keys, and a Finished MAC — reusing all internal state
// across Run calls, for the pqbench microbench inventory (gated at zero
// allocs/op).
type KeyScheduleKernel struct {
	ks  keySchedule
	fin [sha256.Size]byte
}

// NewKeyScheduleKernel returns a reusable kernel instance.
func NewKeyScheduleKernel() *KeyScheduleKernel {
	return &KeyScheduleKernel{ks: keySchedule{transcript: sha256.New()}}
}

// Run executes the derivation over one shared secret and transcript message
// and returns a byte folded from the outputs to keep the work observable.
func (k *KeyScheduleKernel) Run(ss, msg []byte) byte {
	ks := &k.ks
	ks.transcript.Reset()
	ks.earlySecret = noPSKEarly
	ks.addMessage(msg)
	ks.setSharedSecret(ss)
	key, iv := ks.trafficKeys(ks.serverHSTraffic[:])
	out := key[0] ^ iv[0]
	ks.addMessage(msg)
	ks.deriveMaster()
	ks.finishedMACInto(&k.fin, ks.serverHSTraffic[:], ks.transcriptHash())
	return out ^ k.fin[0] ^ ks.clientAppTraffic[0]
}
