package tls13

import (
	"crypto/hmac"
	"crypto/sha256"
	"hash"
)

// The TLS 1.3 key schedule (RFC 8446 §7.1) for the SHA-256 suite.

func hkdfExtract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	if ikm == nil {
		ikm = make([]byte, sha256.Size)
	}
	m := hmac.New(sha256.New, salt)
	m.Write(ikm)
	return m.Sum(nil)
}

func hkdfExpand(prk, info []byte, length int) []byte {
	var out []byte
	var block []byte
	counter := byte(1)
	for len(out) < length {
		m := hmac.New(sha256.New, prk)
		m.Write(block)
		m.Write(info)
		m.Write([]byte{counter})
		block = m.Sum(nil)
		out = append(out, block...)
		counter++
	}
	return out[:length]
}

// hkdfExpandLabel implements HKDF-Expand-Label with the "tls13 " prefix.
func hkdfExpandLabel(secret []byte, label string, context []byte, length int) []byte {
	full := "tls13 " + label
	info := make([]byte, 0, 4+len(full)+len(context))
	info = append(info, byte(length>>8), byte(length))
	info = append(info, byte(len(full)))
	info = append(info, full...)
	info = append(info, byte(len(context)))
	info = append(info, context...)
	return hkdfExpand(secret, info, length)
}

// deriveSecret is Derive-Secret(secret, label, transcript).
func deriveSecret(secret []byte, label string, transcriptHash []byte) []byte {
	return hkdfExpandLabel(secret, label, transcriptHash, sha256.Size)
}

// keySchedule tracks the running secrets and transcript of one handshake.
type keySchedule struct {
	transcript      hash.Hash
	earlySecret     []byte
	handshakeSecret []byte
	masterSecret    []byte

	clientHSTraffic  []byte
	serverHSTraffic  []byte
	clientAppTraffic []byte
	serverAppTraffic []byte
}

func newKeySchedule() *keySchedule {
	ks := &keySchedule{transcript: sha256.New()}
	ks.earlySecret = hkdfExtract(nil, nil) // no PSK
	return ks
}

// addMessage absorbs a handshake message (with its 4-byte header) into the
// transcript.
func (ks *keySchedule) addMessage(msg []byte) {
	ks.transcript.Write(msg)
}

func (ks *keySchedule) transcriptHash() []byte {
	return ks.transcript.Sum(nil)
}

// setSharedSecret mixes the (EC)DHE/KEM shared secret in and derives the
// handshake traffic secrets from the transcript through ServerHello.
func (ks *keySchedule) setSharedSecret(ss []byte) {
	derived := deriveSecret(ks.earlySecret, "derived", emptyHash())
	ks.handshakeSecret = hkdfExtract(derived, ss)
	th := ks.transcriptHash()
	ks.clientHSTraffic = deriveSecret(ks.handshakeSecret, "c hs traffic", th)
	ks.serverHSTraffic = deriveSecret(ks.handshakeSecret, "s hs traffic", th)
}

// deriveMaster computes the master secret and application traffic secrets
// from the transcript through server Finished.
func (ks *keySchedule) deriveMaster() {
	derived := deriveSecret(ks.handshakeSecret, "derived", emptyHash())
	ks.masterSecret = hkdfExtract(derived, nil)
	th := ks.transcriptHash()
	ks.clientAppTraffic = deriveSecret(ks.masterSecret, "c ap traffic", th)
	ks.serverAppTraffic = deriveSecret(ks.masterSecret, "s ap traffic", th)
}

// trafficKeys derives the AEAD key and IV from a traffic secret.
func trafficKeys(secret []byte) (key, iv []byte) {
	return hkdfExpandLabel(secret, "key", nil, 16), hkdfExpandLabel(secret, "iv", nil, 12)
}

// finishedMAC computes the Finished verify_data for a traffic secret.
func finishedMAC(trafficSecret, transcriptHash []byte) []byte {
	finishedKey := hkdfExpandLabel(trafficSecret, "finished", nil, sha256.Size)
	m := hmac.New(sha256.New, finishedKey)
	m.Write(transcriptHash)
	return m.Sum(nil)
}

func emptyHash() []byte {
	h := sha256.Sum256(nil)
	return h[:]
}
