package tls13

import (
	"crypto/hmac"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"pqtls/internal/kem"
	"pqtls/internal/pki"
	"pqtls/internal/sig"
)

// Client is a sans-IO TLS 1.3 client handshake. Records are consumed
// incrementally (per transport arrival), so decapsulation can overlap with
// the server still computing its signature — the effect Section 5.2 of the
// paper measures.
type Client struct {
	cfg *Config
	kem kem.KEM
	ks  *keySchedule

	kemPriv []byte

	// HRR state: the first ClientHello's bytes and identifiers, and
	// whether a retry already happened.
	ch1Msg    []byte
	sessionID [32]byte
	retried   bool

	sendHC *halfConn // client handshake traffic
	recvHC *halfConn // server handshake traffic

	state      clientState
	buf        []byte // decrypted, unparsed handshake bytes
	rawBuf     []byte // plaintext record bytes before ServerHello completes
	retryOut   []Record
	retryGroup uint16
	resuming   bool
	done       bool

	// ServerCert is the verified leaf certificate after completion.
	ServerCert *pki.Certificate
}

type clientState int

const (
	stateAwaitSH clientState = iota
	stateAwaitEE
	stateAwaitCert
	stateAwaitCV
	stateAwaitFin
	stateDone
)

// NewClient validates the configuration and prepares a handshake.
func NewClient(cfg *Config) (*Client, error) {
	k, err := kem.ByName(cfg.KEMName)
	if err != nil {
		return nil, err
	}
	if cfg.Roots == nil {
		return nil, errors.New("tls13: client requires a root pool")
	}
	return &Client{cfg: cfg, kem: k, ks: newKeySchedule()}, nil
}

// Start generates the key share and returns the ClientHello flight.
func (c *Client) Start() ([]Record, error) {
	rng := c.cfg.Rand
	if rng == nil {
		rng = rand.Reader
	}
	endPhase := c.cfg.phase(PhaseClientHello)
	defer endPhase()
	endKeygen := c.cfg.phase(PhaseKEMKeygen)
	endCrypto := c.cfg.span(LibCrypto)
	var pub, priv []byte
	var err error
	if ks := c.cfg.PresetKeyShare; ks != nil {
		pub, priv = ks.Pub, ks.Priv
	} else {
		pub, priv, err = c.kem.GenerateKey(rng)
		if err != nil {
			endCrypto()
			return nil, fmt.Errorf("tls13: key share generation: %w", err)
		}
	}
	c.cfg.charge(OpKEMKeygen, c.kem.Name())
	endCrypto()
	endKeygen()
	c.kemPriv = priv

	endSSL := c.cfg.span(LibSSL)
	defer endSSL()
	group, err := GroupID(c.cfg.KEMName)
	if err != nil {
		return nil, err
	}
	sigAlg, err := SigID(c.cfg.SigName)
	if err != nil {
		return nil, err
	}
	groups := []uint16{group}
	for _, name := range c.cfg.SupportedKEMs {
		id, err := GroupID(name)
		if err != nil {
			return nil, err
		}
		if id != group {
			groups = append(groups, id)
		}
	}
	ch := &clientHello{
		serverName: c.cfg.ServerName,
		group:      group,
		groups:     groups,
		sigAlg:     sigAlg,
		keyShare:   pub,
	}
	if _, err := io.ReadFull(rng, ch.random[:]); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(rng, ch.sessionID[:]); err != nil {
		return nil, err
	}
	c.sessionID = ch.sessionID
	msg := ch.marshal()
	if c.cfg.Session != nil {
		msg = appendPSKExtension(msg, c.cfg.Session)
		c.resuming = true
	}
	c.ch1Msg = msg
	c.ks.addMessage(msg)
	return []Record{{Type: RecordHandshake, Payload: msg}}, nil
}

// retryHello answers a HelloRetryRequest: regenerate the key share for the
// server-selected group and rebuild the ClientHello, restarting the
// transcript per RFC 8446 §4.4.1.
func (c *Client) retryHello(hrrMsg []byte, group uint16) ([]Record, error) {
	if c.retried {
		return nil, errors.New("tls13: second HelloRetryRequest")
	}
	c.retried = true
	name, ok := groupName(group)
	if !ok {
		return nil, fmt.Errorf("tls13: HRR selected unknown group %#04x", group)
	}
	offered := name == c.cfg.KEMName
	for _, n := range c.cfg.SupportedKEMs {
		if n == name {
			offered = true
		}
	}
	if !offered {
		return nil, fmt.Errorf("tls13: HRR selected unoffered group %s", name)
	}
	k, err := kem.ByName(name)
	if err != nil {
		return nil, err
	}
	rng := c.cfg.Rand
	if rng == nil {
		rng = rand.Reader
	}
	endCrypto := c.cfg.span(LibCrypto)
	pub, priv, err := k.GenerateKey(rng)
	c.cfg.charge(OpKEMKeygen, k.Name())
	endCrypto()
	if err != nil {
		return nil, fmt.Errorf("tls13: HRR key share generation: %w", err)
	}
	c.kem = k
	c.kemPriv = priv
	c.retryGroup = group

	sigAlg, err := SigID(c.cfg.SigName)
	if err != nil {
		return nil, err
	}
	ch := &clientHello{
		serverName: c.cfg.ServerName,
		group:      group,
		groups:     []uint16{group},
		sigAlg:     sigAlg,
		keyShare:   pub,
		sessionID:  c.sessionID,
	}
	if _, err := io.ReadFull(rng, ch.random[:]); err != nil {
		return nil, err
	}
	msg := ch.marshal()
	c.ks = newKeySchedule()
	c.ks.addMessage(messageHash(c.ch1Msg))
	c.ks.addMessage(hrrMsg)
	c.ks.addMessage(msg)
	return []Record{{Type: RecordHandshake, Payload: msg}}, nil
}

// Consume processes arriving server records. It returns the client's final
// flight (ChangeCipherSpec + Finished) once the server flight is complete.
func (c *Client) Consume(records []Record) (out []Record, done bool, err error) {
	for _, rec := range records {
		switch rec.Type {
		case RecordChangeCipherSpec:
			continue
		case RecordAlert:
			return nil, false, parseAlert(rec)
		case RecordHandshake:
			if c.state != stateAwaitSH {
				return nil, false, errors.New("tls13: unexpected plaintext handshake record")
			}
			c.rawBuf = append(c.rawBuf, rec.Payload...)
			if err := c.tryProcessServerHello(); err != nil {
				return nil, false, err
			}
		case RecordApplicationData:
			if c.state == stateAwaitSH {
				return nil, false, errors.New("tls13: encrypted record before ServerHello")
			}
			endRead := c.cfg.phase(PhaseRecordRead)
			endCrypto := c.cfg.span(LibCrypto)
			innerType, plaintext, err := c.recvHC.open(rec)
			endCrypto()
			endRead()
			if err != nil {
				return nil, false, err
			}
			if innerType != RecordHandshake {
				return nil, false, fmt.Errorf("tls13: unexpected inner type %d", innerType)
			}
			c.buf = append(c.buf, plaintext...)
			if err := c.drainMessages(); err != nil {
				return nil, false, err
			}
		default:
			return nil, false, fmt.Errorf("tls13: unknown record type %d", rec.Type)
		}
	}
	if c.state == stateDone && !c.done {
		c.done = true
		return c.finalFlight()
	}
	if c.retryOut != nil {
		out = c.retryOut
		c.retryOut = nil
		return out, false, nil
	}
	return nil, false, nil
}

// tryProcessServerHello parses the SH once fully buffered and runs the
// decapsulation + key derivation. On a HelloRetryRequest it prepares the
// retry flight in c.retryOut instead.
func (c *Client) tryProcessServerHello() error {
	if len(c.rawBuf) < 4 {
		return nil
	}
	n := int(c.rawBuf[1])<<16 | int(c.rawBuf[2])<<8 | int(c.rawBuf[3])
	if len(c.rawBuf) < 4+n {
		return nil // wait for more bytes
	}
	// Error paths below abandon the open phase: the handshake (and with it
	// the trace) is discarded on error, and Hooks implementations tolerate
	// unclosed spans.
	endPhase := c.cfg.phase(PhaseServerHello)
	endSSL := c.cfg.span(LibSSL)
	typ, body, rest, err := parseHandshakeMsg(c.rawBuf)
	if err != nil {
		endSSL()
		return err
	}
	if typ != typeServerHello {
		endSSL()
		return fmt.Errorf("tls13: expected ServerHello, got type %d", typ)
	}
	if isHRR(body) {
		group, err := parseHRRGroup(body)
		if err != nil {
			endSSL()
			return err
		}
		full := c.rawBuf[:4+n]
		c.rawBuf = rest
		endSSL()
		endPhase()
		out, err := c.retryHello(full, group)
		if err != nil {
			return err
		}
		c.retryOut = out
		return nil
	}
	sh, err := parseServerHello(body)
	if err != nil {
		endSSL()
		return err
	}
	wantGroup, _ := GroupID(c.cfg.KEMName)
	if c.retried {
		wantGroup = c.retryGroup
	}
	if sh.group != wantGroup {
		endSSL()
		return fmt.Errorf("tls13: server selected group %#04x, want %#04x", sh.group, wantGroup)
	}
	c.ks.addMessage(c.rawBuf[:4+n])
	c.rawBuf = rest
	endSSL()
	endPhase()

	// Decapsulate: the client-side KA cost of phase B.
	endDecap := c.cfg.phase(PhaseKEMDecap)
	endCrypto := c.cfg.span(LibCrypto)
	ss, err := c.kem.Decapsulate(c.kemPriv, sh.keyShare)
	if err != nil {
		endCrypto()
		return fmt.Errorf("tls13: decapsulation: %w", err)
	}
	c.cfg.charge(OpKEMDecaps, c.kem.Name())
	endDecap()
	if c.resuming {
		// psk_dhe_ke: the early secret absorbs the resumption PSK.
		c.ks.setEarlySecret(c.cfg.Session.PSK)
	}
	c.ks.setSharedSecret(ss)
	recvKey, recvIV := c.ks.trafficKeys(c.ks.serverHSTraffic[:])
	c.recvHC, err = newHalfConn(recvKey, recvIV)
	if err != nil {
		endCrypto()
		return err
	}
	sendKey, sendIV := c.ks.trafficKeys(c.ks.clientHSTraffic[:])
	c.sendHC, err = newHalfConn(sendKey, sendIV)
	if err != nil {
		endCrypto()
		return err
	}
	endCrypto()
	c.state = stateAwaitEE
	return nil
}

// drainMessages parses complete handshake messages from the decrypted
// buffer and advances the state machine.
func (c *Client) drainMessages() error {
	for {
		if len(c.buf) < 4 {
			return nil
		}
		n := int(c.buf[1])<<16 | int(c.buf[2])<<8 | int(c.buf[3])
		if len(c.buf) < 4+n {
			return nil
		}
		msg := c.buf[:4+n]
		typ, body, _, err := parseHandshakeMsg(msg)
		if err != nil {
			return err
		}
		if err := c.handleMessage(typ, body, msg); err != nil {
			return err
		}
		c.buf = c.buf[4+n:]
	}
}

func (c *Client) handleMessage(typ uint8, body, full []byte) error {
	switch c.state {
	case stateAwaitEE:
		if typ != typeEncryptedExts {
			return fmt.Errorf("tls13: expected EncryptedExtensions, got type %d", typ)
		}
		c.ks.addMessage(full)
		if c.resuming {
			// PSK handshakes carry no Certificate or CertificateVerify.
			c.state = stateAwaitFin
		} else {
			c.state = stateAwaitCert
		}
		return nil

	case stateAwaitCert:
		if typ != typeCertificate {
			return fmt.Errorf("tls13: expected Certificate, got type %d", typ)
		}
		defer c.cfg.phase(PhaseCertVerify)()
		endSSL := c.cfg.span(LibSSL)
		rawCerts, err := parseCertificate(body)
		endSSL()
		if err != nil {
			return err
		}
		endCrypto := c.cfg.span(LibCrypto)
		defer endCrypto()
		var entry *chainEntry
		var cacheKey [32]byte
		if c.cfg.ChainCache != nil {
			cacheKey = chainKey(body)
			entry = c.cfg.ChainCache.lookup(cacheKey)
		}
		if entry == nil {
			chain := make([]*pki.Certificate, len(rawCerts))
			for i, raw := range rawCerts {
				cert, err := pki.Unmarshal(raw)
				if err != nil {
					return fmt.Errorf("tls13: certificate %d: %w", i, err)
				}
				chain[i] = cert
			}
			leaf, err := c.cfg.Roots.Verify(chain)
			if err != nil {
				return fmt.Errorf("tls13: certificate verification: %w", err)
			}
			entry = &chainEntry{leaf: leaf, algs: make([]string, len(chain))}
			for i, cert := range chain {
				entry.algs[i] = cert.Algorithm
			}
			if c.cfg.ChainCache != nil {
				c.cfg.ChainCache.store(cacheKey, entry)
			}
		}
		// Chain validation runs one signature verification per certificate;
		// the modeled cost is charged even when a cache hit skipped the real
		// compute.
		for _, alg := range entry.algs {
			c.cfg.charge(OpSigVerify, alg)
		}
		if c.cfg.ServerName != "" && entry.leaf.Subject != c.cfg.ServerName {
			return fmt.Errorf("tls13: certificate subject %q does not match %q", entry.leaf.Subject, c.cfg.ServerName)
		}
		c.ServerCert = entry.leaf
		c.ks.addMessage(full)
		c.state = stateAwaitCV
		return nil

	case stateAwaitCV:
		if typ != typeCertificateVerify {
			return fmt.Errorf("tls13: expected CertificateVerify, got type %d", typ)
		}
		defer c.cfg.phase(PhaseCVVerify)()
		sigAlg, signature, err := parseCertVerify(body)
		if err != nil {
			return err
		}
		name, ok := sigName(sigAlg)
		if !ok || name != c.ServerCert.Algorithm {
			return fmt.Errorf("tls13: CertificateVerify algorithm %#04x does not match certificate key %q",
				sigAlg, c.ServerCert.Algorithm)
		}
		scheme, err := sig.ByName(name)
		if err != nil {
			return err
		}
		endCrypto := c.cfg.span(LibCrypto)
		content := certVerifyContent(c.ks.transcriptHash())
		var okSig bool
		switch {
		case c.cfg.CVVerifier != nil && c.cfg.Rand == nil:
			okSig = c.cfg.CVVerifier.VerifyCV(scheme, c.ServerCert.PublicKey, content, signature)
		case c.cfg.Verifiers != nil:
			okSig = c.cfg.Verifiers.For(scheme, c.ServerCert.PublicKey).Verify(content, signature)
		default:
			okSig = scheme.Verify(c.ServerCert.PublicKey, content, signature)
		}
		c.cfg.charge(OpSigVerify, name)
		endCrypto()
		if !okSig {
			return errors.New("tls13: CertificateVerify signature invalid")
		}
		c.ks.addMessage(full)
		c.state = stateAwaitFin
		return nil

	case stateAwaitFin:
		if typ != typeFinished {
			return fmt.Errorf("tls13: expected Finished, got type %d", typ)
		}
		defer c.cfg.phase(PhaseFinVerify)()
		endCrypto := c.cfg.span(LibCrypto)
		want := c.ks.finishedMsg(c.ks.serverHSTraffic[:], c.ks.transcriptHash())
		endCrypto()
		if !hmac.Equal(body, want) {
			return errors.New("tls13: server Finished verification failed")
		}
		c.ks.addMessage(full)
		c.state = stateDone
		return nil

	default:
		return fmt.Errorf("tls13: message type %d in unexpected state %d", typ, c.state)
	}
}

// finalFlight builds the client's ChangeCipherSpec + Finished.
func (c *Client) finalFlight() ([]Record, bool, error) {
	defer c.cfg.phase(PhaseFinSend)()
	endCrypto := c.cfg.span(LibCrypto)
	mac := c.ks.finishedMsg(c.ks.clientHSTraffic[:], c.ks.transcriptHash())
	finMsg := handshakeMsg(typeFinished, mac)
	c.ks.deriveMaster()
	rec, err := c.sendHC.seal(RecordHandshake, finMsg)
	if err != nil {
		return nil, false, err
	}
	endCrypto()
	// The paper notes client CCS and Finished always share one IP packet;
	// they are one flush here.
	return []Record{{Type: RecordChangeCipherSpec, Payload: []byte{1}}, rec}, true, nil
}

// Done reports whether the handshake completed.
func (c *Client) Done() bool { return c.done }

// AppTrafficSecrets returns the application traffic secrets (client, server)
// once the handshake is complete.
func (c *Client) AppTrafficSecrets() (client, server []byte) {
	return c.ks.clientAppTraffic[:], c.ks.serverAppTraffic[:]
}
