// Package tls13 implements an RFC 8446-faithful TLS 1.3 handshake with
// pluggable (classical, post-quantum, and hybrid) key agreements and
// signature algorithms — the substrate on which the paper's measurements
// run. The state machines are sans-IO: they consume and produce records, so
// the same code runs over real sockets (Pipe) and inside the discrete-event
// network simulation (internal/netsim).
package tls13

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
)

// TLS record content types.
const (
	RecordChangeCipherSpec uint8 = 20
	RecordAlert            uint8 = 21
	RecordHandshake        uint8 = 22
	RecordApplicationData  uint8 = 23
)

// legacyVersion is the TLS 1.2 version number carried by TLS 1.3 records.
const legacyVersion = 0x0303

// maxRecordPayload is the RFC 8446 plaintext limit per record.
const maxRecordPayload = 16384

// Record is one TLS record (content type + payload, without the 5-byte
// header).
type Record struct {
	Type    uint8
	Payload []byte
}

// WireSize is the record's size on the wire including the header.
func (r Record) WireSize() int { return 5 + len(r.Payload) }

// Marshal renders the record with its header.
func (r Record) Marshal() []byte {
	out := make([]byte, 5+len(r.Payload))
	out[0] = r.Type
	binary.BigEndian.PutUint16(out[1:], legacyVersion)
	binary.BigEndian.PutUint16(out[3:], uint16(len(r.Payload)))
	copy(out[5:], r.Payload)
	return out
}

// WireSize returns the total wire size of a set of records.
func WireSize(records []Record) int {
	n := 0
	for _, r := range records {
		n += r.WireSize()
	}
	return n
}

// ParseRecord reads one record from buf, returning the remainder.
func ParseRecord(buf []byte) (Record, []byte, error) {
	if len(buf) < 5 {
		return Record{}, buf, errShortRecord
	}
	n := int(binary.BigEndian.Uint16(buf[3:]))
	if len(buf) < 5+n {
		return Record{}, buf, errShortRecord
	}
	payload := make([]byte, n)
	copy(payload, buf[5:5+n])
	return Record{Type: buf[0], Payload: payload}, buf[5+n:], nil
}

var errShortRecord = errors.New("tls13: short record")

// halfConn is one direction of record protection (AES-128-GCM per the
// negotiated TLS_AES_128_GCM_SHA256 suite).
//
// The scratch buffers make steady-state seal/open allocation-free: the
// nonce and additional data live in the struct (values passed through the
// cipher.AEAD interface escape, so stack copies would heap-allocate), and
// enc/dec staging buffers are reused across records.
type halfConn struct {
	aead cipher.AEAD
	iv   [12]byte
	seq  uint64

	nonceBuf [12]byte
	adBuf    [5]byte
	encBuf   []byte
	decBuf   []byte
}

func newHalfConn(key, iv []byte) (*halfConn, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("tls13: AEAD key: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("tls13: GCM: %w", err)
	}
	hc := &halfConn{aead: aead}
	copy(hc.iv[:], iv)
	return hc, nil
}

// fillNonce XORs the current sequence number into the static IV
// (RFC 8446 §5.3) in the struct-resident nonce buffer.
func (hc *halfConn) fillNonce() {
	copy(hc.nonceBuf[:], hc.iv[:])
	for i := 0; i < 8; i++ {
		hc.nonceBuf[4+i] ^= byte(hc.seq >> (56 - 8*i))
	}
}

// fillAD writes the record header of the protected record (the AEAD
// additional data) for the given ciphertext length.
func (hc *halfConn) fillAD(ctLen int) {
	hc.adBuf[0] = RecordApplicationData
	hc.adBuf[1], hc.adBuf[2] = 0x03, 0x03
	binary.BigEndian.PutUint16(hc.adBuf[3:], uint16(ctLen))
}

// errSeqExhausted guards the AEAD nonce space: RFC 8446 §5.5 requires the
// connection to rekey or close before the 64-bit record sequence number
// wraps, since a repeated (key, nonce) pair breaks AES-GCM entirely.
var errSeqExhausted = errors.New("tls13: record sequence number exhausted, rekey or close required")

// seal wraps plaintext of the given inner content type into an encrypted
// application-data record (TLSInnerPlaintext per RFC 8446 §5.2).
//
// The returned payload aliases hc's internal scratch buffer and is only
// valid until the next seal on this halfConn: callers that accumulate
// records across seals (multi-record handshake flights) must clone it.
func (hc *halfConn) seal(innerType uint8, plaintext []byte) (Record, error) {
	if hc.seq == 1<<64-1 {
		return Record{}, errSeqExhausted
	}
	ctLen := len(plaintext) + 1 + hc.aead.Overhead()
	if cap(hc.encBuf) < ctLen {
		hc.encBuf = make([]byte, ctLen)
	}
	inner := append(hc.encBuf[:0], plaintext...)
	inner = append(inner, innerType)
	hc.fillNonce()
	hc.fillAD(ctLen)
	// In-place encryption: dst inner[:0] reuses the staging buffer, which
	// already has room for the tag.
	ct := hc.aead.Seal(inner[:0], hc.nonceBuf[:], inner, hc.adBuf[:])
	hc.seq++
	return Record{Type: RecordApplicationData, Payload: ct}, nil
}

// open reverses seal, returning the inner content type and plaintext.
//
// The returned plaintext aliases hc's internal scratch buffer and is only
// valid until the next open on this halfConn.
func (hc *halfConn) open(rec Record) (uint8, []byte, error) {
	if rec.Type != RecordApplicationData {
		return 0, nil, fmt.Errorf("tls13: expected protected record, got type %d", rec.Type)
	}
	if hc.seq == 1<<64-1 {
		return 0, nil, errSeqExhausted
	}
	hc.fillNonce()
	hc.fillAD(len(rec.Payload))
	if cap(hc.decBuf) < len(rec.Payload) {
		hc.decBuf = make([]byte, len(rec.Payload))
	}
	inner, err := hc.aead.Open(hc.decBuf[:0], hc.nonceBuf[:], rec.Payload, hc.adBuf[:])
	if err != nil {
		return 0, nil, fmt.Errorf("tls13: record decryption failed: %w", err)
	}
	hc.seq++
	// Strip zero padding, then the inner type byte.
	i := len(inner) - 1
	for i >= 0 && inner[i] == 0 {
		i--
	}
	if i < 0 {
		return 0, nil, errors.New("tls13: all-zero inner plaintext")
	}
	return inner[i], inner[:i], nil
}
