package tls13

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// HelloRetryRequest support: the 2-RTT fallback the paper explicitly
// configured away ("we focus on 1-RTT handshakes and configured TLS such
// that the 2-RTT fallback never occurred"). Implementing it lets the
// harness quantify exactly what that configuration avoided: an extra round
// trip plus a second client key generation (see harness.RunHRRComparison).

// hrrRandom is RFC 8446's special ServerHello.random value marking a
// HelloRetryRequest (SHA-256 of "HelloRetryRequest").
var hrrRandom = [32]byte{
	0xCF, 0x21, 0xAD, 0x74, 0xE5, 0x9A, 0x61, 0x11,
	0xBE, 0x1D, 0x8C, 0x02, 0x1E, 0x65, 0xB8, 0x91,
	0xC2, 0xA2, 0x11, 0x16, 0x7A, 0xBB, 0x8C, 0x5E,
	0x07, 0x9E, 0x09, 0xE2, 0xC8, 0xA8, 0x33, 0x9C,
}

// marshalHRR builds a HelloRetryRequest selecting the given group.
func marshalHRR(sessionID [32]byte, group uint16) []byte {
	var b bytes.Buffer
	writeU16(&b, legacyVersion)
	b.Write(hrrRandom[:])
	b.WriteByte(32)
	b.Write(sessionID[:])
	writeU16(&b, cipherAES128GCMSHA256)
	b.WriteByte(0) // compression

	var exts bytes.Buffer
	writeExt(&exts, extSupportedVersions, []byte{byte(tls13Version >> 8), byte(tls13Version & 0xff)})
	// In an HRR the key_share extension carries only the selected group.
	writeExt(&exts, extKeyShare, []byte{byte(group >> 8), byte(group)})

	writeU16(&b, uint16(exts.Len()))
	b.Write(exts.Bytes())
	return handshakeMsg(typeServerHello, b.Bytes())
}

// parseHRRGroup extracts the selected group from an HRR body (a ServerHello
// whose random equals hrrRandom).
func parseHRRGroup(body []byte) (uint16, error) {
	r := bytes.NewReader(body)
	if _, err := readU16(r); err != nil {
		return 0, err
	}
	var random [32]byte
	if err := readFull(r, random[:]); err != nil {
		return 0, err
	}
	if random != hrrRandom {
		return 0, errors.New("tls13: not a HelloRetryRequest")
	}
	sidLen, err := r.ReadByte()
	if err != nil {
		return 0, err
	}
	if _, err := readN(r, int(sidLen)); err != nil {
		return 0, err
	}
	if _, err := readU16(r); err != nil { // cipher suite
		return 0, err
	}
	if _, err := r.ReadByte(); err != nil { // compression
		return 0, err
	}
	extLen, err := readU16(r)
	if err != nil {
		return 0, err
	}
	exts, err := readN(r, int(extLen))
	if err != nil {
		return 0, err
	}
	for len(exts) >= 4 {
		typ := binary.BigEndian.Uint16(exts)
		n := int(binary.BigEndian.Uint16(exts[2:]))
		if len(exts) < 4+n {
			return 0, errors.New("tls13: truncated HRR extension")
		}
		if typ == extKeyShare {
			if n != 2 {
				return 0, errors.New("tls13: malformed HRR key_share")
			}
			return binary.BigEndian.Uint16(exts[4:]), nil
		}
		exts = exts[4+n:]
	}
	return 0, errors.New("tls13: HRR without key_share")
}

// isHRR reports whether a ServerHello body is a HelloRetryRequest.
func isHRR(body []byte) bool {
	// The random sits after the 2-byte legacy version.
	return len(body) >= 34 && bytes.Equal(body[2:34], hrrRandom[:])
}

// messageHash replaces the first ClientHello in the transcript per
// RFC 8446 §4.4.1: Transcript-Hash(CH1) wrapped in a synthetic
// message_hash handshake message.
func messageHash(ch1 []byte) []byte {
	digest := sha256.Sum256(ch1)
	out := make([]byte, 4+len(digest))
	out[0] = 254 // message_hash
	out[3] = byte(len(digest))
	copy(out[4:], digest[:])
	return out
}
