package tls13

import (
	"net"
	"testing"
)

// runHRRHandshake drives a handshake where the client's key-share guess
// (guess) differs from the server's required group (want), exercising the
// HelloRetryRequest fallback.
func runHRRHandshake(t *testing.T, guess, want string) (*Client, *Server) {
	t.Helper()
	cliCfg, srvCfg := testConfigs(t, want, "rsa:2048", BufferImmediate)
	cliCfg.KEMName = guess
	cliCfg.SupportedKEMs = []string{want}

	cli, err := NewClient(cliCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	ch1, err := cli.Start()
	if err != nil {
		t.Fatal(err)
	}
	flushes, err := srv.Respond(ch1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flushes) != 1 || len(flushes[0].Records) != 1 {
		t.Fatalf("expected a lone HRR flush, got %d flushes", len(flushes))
	}
	ch2, done, err := cli.Consume(flushes[0].Records)
	if err != nil {
		t.Fatal(err)
	}
	if done || len(ch2) == 0 {
		t.Fatal("client did not produce a retry ClientHello")
	}
	flushes, err = srv.Respond(ch2)
	if err != nil {
		t.Fatal(err)
	}
	var final []Record
	for _, f := range flushes {
		out, done, err := cli.Consume(f.Records)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			final = out
		}
	}
	if final == nil {
		t.Fatal("client did not complete after retry")
	}
	if err := srv.Finish(final); err != nil {
		t.Fatal(err)
	}
	return cli, srv
}

func TestHRRHandshake(t *testing.T) {
	t.Parallel()
	cli, srv := runHRRHandshake(t, "x25519", "kyber512")
	c1, s1 := cli.AppTrafficSecrets()
	c2, s2 := srv.AppTrafficSecrets()
	if string(c1) != string(c2) || string(s1) != string(s2) {
		t.Error("app secrets differ after HRR handshake")
	}
}

func TestHRRAcrossFamilies(t *testing.T) {
	t.Parallel()
	runHRRHandshake(t, "p256", "hqc128")
	runHRRHandshake(t, "kyber512", "p256_kyber512")
}

// A server must not send a second HRR, and a client must reject one.
func TestSecondHRRRejected(t *testing.T) {
	t.Parallel()
	cliCfg, _ := testConfigs(t, "kyber512", "rsa:2048", BufferImmediate)
	cliCfg.KEMName = "x25519"
	cliCfg.SupportedKEMs = []string{"kyber512", "p256"}
	cli, _ := NewClient(cliCfg)
	if _, err := cli.Start(); err != nil {
		t.Fatal(err)
	}
	hrr1 := Record{Type: RecordHandshake, Payload: marshalHRR([32]byte{}, groupIDs["kyber512"])}
	if _, _, err := cli.Consume([]Record{hrr1}); err != nil {
		t.Fatal(err)
	}
	hrr2 := Record{Type: RecordHandshake, Payload: marshalHRR([32]byte{}, groupIDs["p256"])}
	if _, _, err := cli.Consume([]Record{hrr2}); err == nil {
		t.Error("second HRR accepted")
	}
}

// The server must refuse HRR when the client does not support its group.
func TestHRRUnsupportedGroupFails(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "kyber512", "rsa:2048", BufferImmediate)
	cliCfg.KEMName = "x25519"
	cliCfg.SupportedKEMs = nil // offers only x25519
	cli, _ := NewClient(cliCfg)
	srv, _ := NewServer(srvCfg)
	ch, _ := cli.Start()
	if _, err := srv.Respond(ch); err == nil {
		t.Error("server negotiated a group the client does not support")
	}
}

// A client must reject an HRR selecting a group it never offered.
func TestHRRUnofferedGroupRejected(t *testing.T) {
	t.Parallel()
	cliCfg, _ := testConfigs(t, "x25519", "rsa:2048", BufferImmediate)
	cli, _ := NewClient(cliCfg)
	if _, err := cli.Start(); err != nil {
		t.Fatal(err)
	}
	hrr := Record{Type: RecordHandshake, Payload: marshalHRR([32]byte{}, groupIDs["bikel1"])}
	if _, _, err := cli.Consume([]Record{hrr}); err == nil {
		t.Error("HRR for unoffered group accepted")
	}
}

// The full 2-RTT fallback must also work over a real byte stream.
func TestHRROverPipe(t *testing.T) {
	t.Parallel()
	cliCfg, srvCfg := testConfigs(t, "kyber512", "dilithium2", BufferImmediate)
	cliCfg.KEMName = "x25519"
	cliCfg.SupportedKEMs = []string{"kyber512"}
	cConn, sConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		_, err := ServerHandshake(sConn, srvCfg)
		errCh <- err
	}()
	cli, err := ClientHandshake(cConn, cliCfg)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if !cli.Done() {
		t.Error("client not done after HRR over pipe")
	}
}

func TestMessageHash(t *testing.T) {
	t.Parallel()
	mh := messageHash([]byte{1, 2, 3})
	if mh[0] != 254 || len(mh) != 36 {
		t.Errorf("message_hash framing: type %d len %d", mh[0], len(mh))
	}
}
