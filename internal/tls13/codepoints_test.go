package tls13

import (
	"testing"

	"pqtls/internal/kem"
	"pqtls/internal/sig"
)

// Every registered suite must have a codepoint, or the harness would fail
// for that row of the paper's tables.
func TestEveryKEMHasGroupID(t *testing.T) {
	t.Parallel()
	for _, name := range kem.Names() {
		if _, err := GroupID(name); err != nil {
			t.Errorf("no group codepoint for KEM %q", name)
		}
	}
}

func TestEverySchemeHasSigID(t *testing.T) {
	t.Parallel()
	for _, name := range sig.Names() {
		if _, err := SigID(name); err != nil {
			t.Errorf("no signature codepoint for scheme %q", name)
		}
	}
}

// Codepoints must be unique and reversible.
func TestCodepointBijection(t *testing.T) {
	t.Parallel()
	seen := map[uint16]string{}
	for name, id := range groupIDs {
		if prev, dup := seen[id]; dup {
			t.Errorf("group codepoint %#04x shared by %s and %s", id, prev, name)
		}
		seen[id] = name
		back, ok := groupName(id)
		if !ok || back != name {
			t.Errorf("groupName(%#04x) = %q, want %q", id, back, name)
		}
	}
	seenSig := map[uint16]string{}
	for name, id := range sigIDs {
		if prev, dup := seenSig[id]; dup {
			t.Errorf("sig codepoint %#04x shared by %s and %s", id, prev, name)
		}
		seenSig[id] = name
		back, ok := sigName(id)
		if !ok || back != name {
			t.Errorf("sigName(%#04x) = %q, want %q", id, back, name)
		}
	}
}

// Classical groups use their IANA values.
func TestClassicalIANAValues(t *testing.T) {
	t.Parallel()
	want := map[string]uint16{"x25519": 0x001d, "p256": 0x0017, "p384": 0x0018, "p521": 0x0019}
	for name, id := range want {
		got, err := GroupID(name)
		if err != nil || got != id {
			t.Errorf("GroupID(%s) = %#04x (%v), want %#04x", name, got, err, id)
		}
	}
}

func TestUnknownCodepoints(t *testing.T) {
	t.Parallel()
	if _, err := GroupID("rot13"); err == nil {
		t.Error("unknown group accepted")
	}
	if _, err := SigID("rot13"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, ok := groupName(0xFFFF); ok {
		t.Error("unknown group id resolved")
	}
}
