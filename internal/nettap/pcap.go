package nettap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"pqtls/internal/netsim"
)

// PCAP output: the paper's artifact publishes raw PCAPs of every
// measurement run; this writer produces standard libpcap files from the
// tap's observations so captures from the simulated testbed open in
// tcpdump/Wireshark.

const (
	pcapMagic       = 0xa1b2c3d9 // microsecond-resolution, big-endian written LE below
	pcapMagicLE     = 0xa1b2c3d4
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapLinkTypeEth = 1
)

// PcapWriter streams tap observations into a libpcap capture.
type PcapWriter struct {
	w   io.Writer
	err error
}

// NewPcapWriter writes the global header and returns the writer.
func NewPcapWriter(w io.Writer) (*PcapWriter, error) {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagicLE)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVersionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVersionMin)
	// thiszone, sigfigs = 0; snaplen:
	binary.LittleEndian.PutUint32(hdr[16:], 65535)
	binary.LittleEndian.PutUint32(hdr[20:], pcapLinkTypeEth)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("nettap: pcap header: %w", err)
	}
	return &PcapWriter{w: w}, nil
}

// Tap is a netsim.TapFunc that records every frame. Install alongside (or
// chained with) the Timestamper via TeeTap.
func (p *PcapWriter) Tap(_ netsim.Direction, at time.Duration, frame []byte) {
	if p.err != nil {
		return
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(at/time.Second))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(at%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(frame)))
	if _, err := p.w.Write(hdr[:]); err != nil {
		p.err = err
		return
	}
	if _, err := p.w.Write(frame); err != nil {
		p.err = err
	}
}

// Err reports the first write error, if any.
func (p *PcapWriter) Err() error { return p.err }

// TeeTap fans one tap feed out to several observers (e.g. Timestamper +
// PcapWriter), preserving the paper's single-tap topology.
func TeeTap(taps ...netsim.TapFunc) netsim.TapFunc {
	return func(dir netsim.Direction, at time.Duration, frame []byte) {
		for _, t := range taps {
			t(dir, at, frame)
		}
	}
}

// ReadPcap parses a capture produced by PcapWriter, returning frames and
// timestamps (used by tests and offline evaluation, mirroring the
// artifact's evaluate-from-PCAP workflow).
func ReadPcap(r io.Reader) (frames [][]byte, times []time.Duration, err error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("nettap: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagicLE {
		return nil, nil, fmt.Errorf("nettap: not a little-endian microsecond pcap")
	}
	for {
		var rec [16]byte
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return frames, times, nil
			}
			return nil, nil, fmt.Errorf("nettap: pcap record header: %w", err)
		}
		ts := time.Duration(binary.LittleEndian.Uint32(rec[0:]))*time.Second +
			time.Duration(binary.LittleEndian.Uint32(rec[4:]))*time.Microsecond
		n := binary.LittleEndian.Uint32(rec[8:])
		if n > 1<<20 {
			return nil, nil, fmt.Errorf("nettap: implausible pcap record length %d", n)
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(r, frame); err != nil {
			return nil, nil, fmt.Errorf("nettap: pcap record body: %w", err)
		}
		frames = append(frames, frame)
		times = append(times, ts)
	}
}
