package nettap

import (
	"testing"
	"time"

	"pqtls/internal/netsim"
)

// buildTLSFrame wraps a TLS record in a full Ethernet/IPv4/TCP frame.
func buildTLSFrame(dir netsim.Direction, seq uint32, recordType byte, body []byte) []byte {
	payload := append([]byte{recordType, 3, 3, byte(len(body) >> 8), byte(len(body))}, body...)
	return netsim.BuildFrame(netsim.FrameSpec{
		Dir: dir, Seq: seq, Flags: netsim.FlagACK | netsim.FlagPSH, Payload: payload,
	})
}

// primeConnection feeds the timestamper the SYN/SYN-ACK so both stream
// origins are known (seq 0, data starting at 1), as in every real capture.
func primeConnection(ts *Timestamper) {
	ts.Tap(netsim.ClientToServer, 0,
		netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Flags: netsim.FlagSYN}))
	ts.Tap(netsim.ServerToClient, 0,
		netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ServerToClient, Flags: netsim.FlagSYN | netsim.FlagACK}))
}

func TestLayerDecoding(t *testing.T) {
	t.Parallel()
	frame := buildTLSFrame(netsim.ClientToServer, 1, 22, []byte{1, 0, 0, 1, 0})
	var eth Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if eth.EtherType != 0x0800 {
		t.Errorf("EtherType %#x", eth.EtherType)
	}
	var ip IPv4
	if err := ip.DecodeFromBytes(eth.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if ip.Protocol != 6 {
		t.Errorf("protocol %d, want TCP", ip.Protocol)
	}
	var tcp TCP
	if err := tcp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		t.Fatal(err)
	}
	if tcp.DstPort != 443 {
		t.Errorf("dst port %d, want 443", tcp.DstPort)
	}
	if tcp.Seq != 1 {
		t.Errorf("seq %d, want 1", tcp.Seq)
	}
	if len(tcp.LayerPayload()) != 10 {
		t.Errorf("payload %d bytes, want 10", len(tcp.LayerPayload()))
	}
}

func TestDecodeErrors(t *testing.T) {
	t.Parallel()
	var eth Ethernet
	if err := eth.DecodeFromBytes([]byte{1, 2}); err == nil {
		t.Error("short frame accepted")
	}
	var ip IPv4
	if err := ip.DecodeFromBytes(make([]byte, 19)); err == nil {
		t.Error("short IP header accepted")
	}
	if err := ip.DecodeFromBytes(append([]byte{0x65}, make([]byte, 30)...)); err == nil {
		t.Error("IPv6 version accepted")
	}
	var tcp TCP
	if err := tcp.DecodeFromBytes(make([]byte, 10)); err == nil {
		t.Error("short TCP header accepted")
	}
	ts := NewTimestamper()
	ts.Tap(netsim.ClientToServer, 0, []byte{1})
	if ts.DecodeErrors() != 1 {
		t.Error("decode error not counted")
	}
}

func TestPhaseExtraction(t *testing.T) {
	t.Parallel()
	ts := NewTimestamper()
	primeConnection(ts)
	// CH at 1ms, SH at 2ms, server CCS+flight, client CCS+Fin at 5ms.
	ts.Tap(netsim.ClientToServer, 1*time.Millisecond,
		buildTLSFrame(netsim.ClientToServer, 1, 22, []byte{1, 0, 0, 1, 0}))
	ts.Tap(netsim.ServerToClient, 2*time.Millisecond,
		buildTLSFrame(netsim.ServerToClient, 1, 22, []byte{2, 0, 0, 1, 0}))
	ts.Tap(netsim.ClientToServer, 5*time.Millisecond,
		buildTLSFrame(netsim.ClientToServer, 11, 20, []byte{1}))
	p, ok := ts.Phases()
	if !ok {
		t.Fatal("phases not extracted")
	}
	if p.PartA != 1*time.Millisecond {
		t.Errorf("partA %v, want 1ms", p.PartA)
	}
	if p.PartB != 3*time.Millisecond {
		t.Errorf("partB %v, want 3ms", p.PartB)
	}
	if p.Total() != 4*time.Millisecond {
		t.Errorf("total %v, want 4ms", p.Total())
	}
}

// Records split across TCP segments must be reassembled; the phase
// timestamp is the packet completing the record.
func TestReassemblyAcrossSegments(t *testing.T) {
	t.Parallel()
	ts := NewTimestamper()
	primeConnection(ts)
	body := make([]byte, 100)
	body[0] = 1 // ClientHello
	record := append([]byte{22, 3, 3, 0, byte(len(body))}, body...)
	// Split into two segments, arriving out of order.
	seg1, seg2 := record[:40], record[40:]
	f1 := netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Seq: 1, Flags: netsim.FlagACK, Payload: seg1})
	f2 := netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Seq: 41, Flags: netsim.FlagACK, Payload: seg2})
	ts.Tap(netsim.ClientToServer, 2*time.Millisecond, f2) // out of order
	ts.Tap(netsim.ClientToServer, 3*time.Millisecond, f1)
	ts.Tap(netsim.ServerToClient, 4*time.Millisecond,
		buildTLSFrame(netsim.ServerToClient, 1, 22, []byte{2, 0, 0, 1, 0}))
	ts.Tap(netsim.ClientToServer, 9*time.Millisecond,
		buildTLSFrame(netsim.ClientToServer, 106, 20, []byte{1}))
	p, ok := ts.Phases()
	if !ok {
		t.Fatal("phases not extracted after reassembly")
	}
	if p.ClientHelloAt != 3*time.Millisecond {
		t.Errorf("CH completed at %v, want 3ms (the completing packet)", p.ClientHelloAt)
	}
}

// Retransmitted (duplicate) segments must not confuse the stream.
func TestDuplicateSegmentsIgnored(t *testing.T) {
	t.Parallel()
	ts := NewTimestamper()
	primeConnection(ts)
	f := buildTLSFrame(netsim.ClientToServer, 1, 22, []byte{1, 0, 0, 1, 0})
	ts.Tap(netsim.ClientToServer, 1*time.Millisecond, f)
	ts.Tap(netsim.ClientToServer, 8*time.Millisecond, f) // retransmission
	ts.Tap(netsim.ServerToClient, 2*time.Millisecond,
		buildTLSFrame(netsim.ServerToClient, 1, 22, []byte{2, 0, 0, 1, 0}))
	ts.Tap(netsim.ClientToServer, 5*time.Millisecond,
		buildTLSFrame(netsim.ClientToServer, 11, 20, []byte{1}))
	p, ok := ts.Phases()
	if !ok {
		t.Fatal("phases not extracted")
	}
	if p.ClientHelloAt != 1*time.Millisecond {
		t.Errorf("CH at %v, want the first observation", p.ClientHelloAt)
	}
}

func TestIncompleteHandshake(t *testing.T) {
	t.Parallel()
	ts := NewTimestamper()
	primeConnection(ts)
	ts.Tap(netsim.ClientToServer, time.Millisecond,
		buildTLSFrame(netsim.ClientToServer, 1, 22, []byte{1, 0, 0, 1, 0}))
	if _, ok := ts.Phases(); ok {
		t.Error("phases extracted from CH-only capture")
	}
}
