package nettap

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pqtls/internal/netsim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPcapGolden pins the exact libpcap encoding: global header, per-record
// headers and frame bytes for a fixed synthetic exchange. Any change to the
// writer's wire format (endianness, timestamp resolution, snaplen, link
// type) shows up as a byte diff against the checked-in capture.
func TestPcapGolden(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	syn := netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Flags: netsim.FlagSYN})
	synAck := netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ServerToClient, Flags: netsim.FlagSYN | netsim.FlagACK, Ack: 1})
	ch := buildTLSFrame(netsim.ClientToServer, 1, 22, []byte{0x01, 0x00, 0x00, 0x02, 0xab, 0xcd})
	sh := buildTLSFrame(netsim.ServerToClient, 1, 22, []byte{0x02, 0x00, 0x00, 0x01, 0x7f})
	w.Tap(netsim.ClientToServer, 0, syn)
	w.Tap(netsim.ServerToClient, 500*time.Microsecond, synAck)
	w.Tap(netsim.ClientToServer, 1*time.Millisecond, ch)
	w.Tap(netsim.ServerToClient, 2*time.Second+250*time.Microsecond, sh)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}

	golden := filepath.Join("testdata", "synthetic.pcap.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("pcap output differs from %s (%d vs %d bytes); run with -update if the format change is intended",
			golden, buf.Len(), len(want))
	}
}
