// Package nettap implements the passive timestamper node of the paper's
// testbed (Figure 2): it observes frames at the optical tap, decodes them
// layer by layer (gopacket-style DecodeFromBytes chain), reassembles the
// TCP streams, and extracts the two black-box handshake phases of Figure 1
// — ClientHello→ServerHello and ServerHello→Client Finished — without
// decrypting anything.
package nettap

import (
	"encoding/binary"
	"errors"
	"time"

	"pqtls/internal/netsim"
)

// Ethernet is the decoded link layer.
type Ethernet struct {
	DstMAC    [6]byte
	SrcMAC    [6]byte
	EtherType uint16
	payload   []byte
}

// DecodeFromBytes parses the Ethernet header.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < 14 {
		return errors.New("nettap: short ethernet frame")
	}
	copy(e.DstMAC[:], data[0:6])
	copy(e.SrcMAC[:], data[6:12])
	e.EtherType = binary.BigEndian.Uint16(data[12:14])
	e.payload = data[14:]
	return nil
}

// LayerPayload returns the bytes after the Ethernet header.
func (e *Ethernet) LayerPayload() []byte { return e.payload }

// IPv4 is the decoded network layer.
type IPv4 struct {
	SrcIP    [4]byte
	DstIP    [4]byte
	Protocol uint8
	Length   uint16
	payload  []byte
}

// DecodeFromBytes parses the IPv4 header (no options expected).
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errors.New("nettap: short IPv4 header")
	}
	if data[0]>>4 != 4 {
		return errors.New("nettap: not IPv4")
	}
	ihl := int(data[0]&0x0F) * 4
	if len(data) < ihl {
		return errors.New("nettap: truncated IPv4 options")
	}
	ip.Length = binary.BigEndian.Uint16(data[2:])
	ip.Protocol = data[9]
	copy(ip.SrcIP[:], data[12:16])
	copy(ip.DstIP[:], data[16:20])
	if int(ip.Length) > len(data) {
		return errors.New("nettap: IPv4 length exceeds frame")
	}
	ip.payload = data[ihl:ip.Length]
	return nil
}

// LayerPayload returns the bytes after the IPv4 header.
func (ip *IPv4) LayerPayload() []byte { return ip.payload }

// TCP is the decoded transport layer.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	payload          []byte
}

// DecodeFromBytes parses the TCP header including options.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errors.New("nettap: short TCP header")
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:])
	t.DstPort = binary.BigEndian.Uint16(data[2:])
	t.Seq = binary.BigEndian.Uint32(data[4:])
	t.Ack = binary.BigEndian.Uint32(data[8:])
	offset := int(data[12]>>4) * 4
	if offset < 20 || len(data) < offset {
		return errors.New("nettap: bad TCP data offset")
	}
	t.Flags = data[13]
	t.payload = data[offset:]
	return nil
}

// LayerPayload returns the TCP payload.
func (t *TCP) LayerPayload() []byte { return t.payload }

// tlsRecordEvent is a reassembled TLS record boundary observation.
type tlsRecordEvent struct {
	contentType uint8
	handshake   uint8 // first handshake byte (message type) if contentType == 22
	completedAt time.Duration
}

// stream reassembles one direction of the TCP byte stream and scans TLS
// record boundaries.
type stream struct {
	expected uint32            // next in-order sequence number
	pending  map[uint32][]byte // out-of-order segments
	times    map[uint32]time.Duration
	buf      []byte
	bufAt    time.Duration // tap time of the chunk completing buf's tail
	events   []tlsRecordEvent
	started  bool
}

func newStream() *stream {
	return &stream{pending: map[uint32][]byte{}, times: map[uint32]time.Duration{}}
}

// setOrigin records the stream's initial sequence number (from the SYN).
func (s *stream) setOrigin(isn uint32) {
	if s.started {
		return
	}
	s.expected = isn + 1 // first data byte follows the SYN
	s.started = true
	s.drain()
}

// add ingests a segment observed at the tap. Data observed before the SYN
// is held out-of-order until the origin is known.
func (s *stream) add(seq uint32, payload []byte, at time.Duration) {
	if len(payload) == 0 {
		return
	}
	if s.started && seq+uint32(len(payload)) <= s.expected {
		return // pure retransmission of old data
	}
	if old, ok := s.pending[seq]; !ok || len(payload) > len(old) {
		s.pending[seq] = payload
		s.times[seq] = at
	}
	if s.started {
		s.drain()
	}
}

// drain moves contiguous pending segments into the in-order buffer and
// scans for completed TLS records.
func (s *stream) drain() {
	for {
		advanced := false
		for pseq, p := range s.pending {
			if pseq <= s.expected && pseq+uint32(len(p)) > s.expected {
				skip := s.expected - pseq
				s.buf = append(s.buf, p[skip:]...)
				// A record completes when the last of its packets passes
				// the tap, which for out-of-order arrival is the maximum
				// observation time of the merged chunks.
				if s.times[pseq] > s.bufAt {
					s.bufAt = s.times[pseq]
				}
				s.expected += uint32(len(p)) - skip
				delete(s.pending, pseq)
				delete(s.times, pseq)
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	s.scan()
}

// scan emits TLS record events for every complete record in the buffer.
func (s *stream) scan() {
	for len(s.buf) >= 5 {
		n := int(binary.BigEndian.Uint16(s.buf[3:]))
		if len(s.buf) < 5+n {
			return
		}
		ev := tlsRecordEvent{contentType: s.buf[0], completedAt: s.bufAt}
		if ev.contentType == 22 && n > 0 {
			ev.handshake = s.buf[5]
		}
		s.events = append(s.events, ev)
		s.buf = s.buf[5+n:]
	}
}

// Phases is the black-box measurement of Figure 1.
type Phases struct {
	ClientHelloAt time.Duration // CH record completed passing the tap
	ServerHelloAt time.Duration // SH record completed passing the tap
	ClientFinAt   time.Duration // client CCS(+Finished) passed the tap
	// PartA is CH→SH, PartB is SH→Client Finished.
	PartA, PartB time.Duration
}

// Total is the full handshake latency (CH → Client Finished).
func (p Phases) Total() time.Duration { return p.PartA + p.PartB }

// Timestamper consumes tap observations and reconstructs handshake phases.
type Timestamper struct {
	streams    [2]*stream
	decodeErrs int
}

// NewTimestamper creates an idle timestamper; install it with Link.SetTap.
func NewTimestamper() *Timestamper {
	return &Timestamper{streams: [2]*stream{newStream(), newStream()}}
}

// Tap is the netsim.TapFunc to install on the observed link.
func (ts *Timestamper) Tap(dir netsim.Direction, at time.Duration, frame []byte) {
	var eth Ethernet
	if err := eth.DecodeFromBytes(frame); err != nil {
		ts.decodeErrs++
		return
	}
	var ip IPv4
	if err := ip.DecodeFromBytes(eth.LayerPayload()); err != nil {
		ts.decodeErrs++
		return
	}
	var tcp TCP
	if err := tcp.DecodeFromBytes(ip.LayerPayload()); err != nil {
		ts.decodeErrs++
		return
	}
	if tcp.Flags&0x02 != 0 { // SYN: defines the stream origin
		ts.streams[dir].setOrigin(tcp.Seq)
	}
	ts.streams[dir].add(tcp.Seq, tcp.LayerPayload(), at)
}

// DecodeErrors reports frames the tap could not parse.
func (ts *Timestamper) DecodeErrors() int { return ts.decodeErrs }

// Phases extracts the handshake phase timestamps; ok is false if the
// handshake was not fully observed.
func (ts *Timestamper) Phases() (Phases, bool) {
	var p Phases
	chFound, shFound := false, false
	for _, ev := range ts.streams[netsim.ClientToServer].events {
		if ev.contentType == 22 && ev.handshake == 1 {
			p.ClientHelloAt = ev.completedAt
			chFound = true
			break
		}
	}
	for _, ev := range ts.streams[netsim.ServerToClient].events {
		if ev.contentType == 22 && ev.handshake == 2 {
			p.ServerHelloAt = ev.completedAt
			shFound = true
			break
		}
	}
	if !chFound || !shFound {
		return p, false
	}
	// Client Finished: the client's ChangeCipherSpec (always packed with
	// the Finished in one packet, as the paper notes), after the CH.
	for _, ev := range ts.streams[netsim.ClientToServer].events {
		if ev.contentType == 20 {
			p.ClientFinAt = ev.completedAt
			p.PartA = p.ServerHelloAt - p.ClientHelloAt
			p.PartB = p.ClientFinAt - p.ServerHelloAt
			return p, true
		}
	}
	return p, false
}
