package nettap

import (
	"bytes"
	"testing"
	"time"

	"pqtls/internal/netsim"
)

func TestPcapRoundtrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f1 := netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Flags: netsim.FlagSYN})
	f2 := buildTLSFrame(netsim.ClientToServer, 1, 22, []byte{1, 0, 0, 1, 0})
	w.Tap(netsim.ClientToServer, 1500*time.Microsecond, f1)
	w.Tap(netsim.ClientToServer, 2*time.Second+3*time.Microsecond, f2)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	frames, times, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("got %d frames, want 2", len(frames))
	}
	if !bytes.Equal(frames[0], f1) || !bytes.Equal(frames[1], f2) {
		t.Error("frame bytes corrupted")
	}
	if times[0] != 1500*time.Microsecond {
		t.Errorf("ts0 = %v", times[0])
	}
	if times[1] != 2*time.Second+3*time.Microsecond {
		t.Errorf("ts1 = %v", times[1])
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, _, err := ReadPcap(bytes.NewReader([]byte("not a pcap file at all....."))); err == nil {
		t.Error("garbage accepted as pcap")
	}
	if _, _, err := ReadPcap(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}

// A capture replayed through a fresh Timestamper must yield identical
// phases — the artifact's evaluate-from-PCAP workflow.
func TestPcapReplayThroughTimestamper(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := NewTimestamper()
	tee := TeeTap(live.Tap, func(dir netsim.Direction, at time.Duration, frame []byte) {
		w.Tap(dir, at, frame)
	})
	// Simulated exchange through the tee.
	tee(netsim.ClientToServer, 0,
		netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Flags: netsim.FlagSYN}))
	tee(netsim.ServerToClient, 0,
		netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ServerToClient, Flags: netsim.FlagSYN | netsim.FlagACK}))
	tee(netsim.ClientToServer, time.Millisecond,
		buildTLSFrame(netsim.ClientToServer, 1, 22, []byte{1, 0, 0, 1, 0}))
	tee(netsim.ServerToClient, 2*time.Millisecond,
		buildTLSFrame(netsim.ServerToClient, 1, 22, []byte{2, 0, 0, 1, 0}))
	tee(netsim.ClientToServer, 4*time.Millisecond,
		buildTLSFrame(netsim.ClientToServer, 11, 20, []byte{1}))

	livePhases, ok := live.Phases()
	if !ok {
		t.Fatal("live phases missing")
	}

	frames, times, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := NewTimestamper()
	for i, frame := range frames {
		// Direction is recoverable from the decoded IP addresses; here the
		// test knows client frames have odd indices 0,2,4.
		dir := netsim.ClientToServer
		var eth Ethernet
		var ip IPv4
		if eth.DecodeFromBytes(frame) == nil && ip.DecodeFromBytes(eth.LayerPayload()) == nil {
			if ip.SrcIP == [4]byte{10, 0, 0, 2} {
				dir = netsim.ServerToClient
			}
		}
		replay.Tap(dir, times[i], frame)
	}
	replayPhases, ok := replay.Phases()
	if !ok {
		t.Fatal("replay phases missing")
	}
	if livePhases != replayPhases {
		t.Errorf("replayed phases %+v differ from live %+v", replayPhases, livePhases)
	}
}
