package kem

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// Table 2a lists exactly these 23 key agreements.
var table2aNames = []string{
	"x25519", "bikel1", "hqc128", "kyber512", "kyber90s512",
	"p256", "p256_bikel1", "p256_hqc128", "p256_kyber512",
	"bikel3", "hqc192", "kyber768", "kyber90s768",
	"p384", "p384_bikel3", "p384_hqc192", "p384_kyber768",
	"hqc256", "kyber1024", "kyber90s1024",
	"p521", "p521_hqc256", "p521_kyber1024",
}

func TestRegistryComplete(t *testing.T) {
	t.Parallel()
	if len(Names()) != len(table2aNames) {
		t.Errorf("registry has %d KEMs, want %d: %v", len(Names()), len(table2aNames), Names())
	}
	for _, name := range table2aNames {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing KEM %s", name)
		}
	}
	if _, err := ByName("rot13"); err == nil {
		t.Error("unknown name did not error")
	}
}

func TestLevels(t *testing.T) {
	t.Parallel()
	want := map[int]int{1: 9, 3: 8, 5: 6}
	for level, count := range want {
		if got := len(ByLevel(level)); got != count {
			t.Errorf("level %d has %d KEMs, want %d: %v", level, got, count, ByLevel(level))
		}
	}
}

func TestRoundtripAll(t *testing.T) {
	t.Parallel()
	for _, name := range table2aNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if testing.Short() && (name == "bikel3" || name == "p384_bikel3") {
				t.Skip("slow keygen in short mode")
			}
			k := MustByName(name)
			pub, priv, err := k.GenerateKey(nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(pub) != k.PublicKeySize() {
				t.Fatalf("pub size %d, want %d", len(pub), k.PublicKeySize())
			}
			ct, ss1, err := k.Encapsulate(nil, pub)
			if err != nil {
				t.Fatal(err)
			}
			if len(ct) != k.CiphertextSize() {
				t.Fatalf("ct size %d, want %d", len(ct), k.CiphertextSize())
			}
			if len(ss1) != k.SharedSecretSize() {
				t.Fatalf("ss size %d, want %d", len(ss1), k.SharedSecretSize())
			}
			ss2, err := k.Decapsulate(priv, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ss1, ss2) {
				t.Fatal("shared secrets differ")
			}
		})
	}
}

// The exact wire sizes that drive the paper's data-volume columns.
func TestWireSizes(t *testing.T) {
	t.Parallel()
	want := []struct {
		name   string
		pk, ct int
	}{
		{"x25519", 32, 32},
		{"p256", 65, 65},
		{"p384", 97, 97},
		{"p521", 133, 133},
		{"kyber512", 800, 768},
		{"kyber768", 1184, 1088},
		{"kyber1024", 1568, 1568},
		{"hqc128", 2249, 4481},
		{"hqc192", 4522, 9026},
		{"hqc256", 7245, 14469},
		{"bikel1", 1541, 1573},
		{"bikel3", 3083, 3115},
		{"p256_kyber512", 865, 833},
		{"p521_hqc256", 7378, 14602},
	}
	for _, w := range want {
		k := MustByName(w.name)
		if k.PublicKeySize() != w.pk || k.CiphertextSize() != w.ct {
			t.Errorf("%s: pk=%d ct=%d, want pk=%d ct=%d",
				w.name, k.PublicKeySize(), k.CiphertextSize(), w.pk, w.ct)
		}
	}
}

func TestHybridFlag(t *testing.T) {
	t.Parallel()
	for _, name := range table2aNames {
		k := MustByName(name)
		wantHybrid := bytes.Contains([]byte(name), []byte("_"))
		if k.Hybrid() != wantHybrid {
			t.Errorf("%s: Hybrid() = %v, want %v", name, k.Hybrid(), wantHybrid)
		}
	}
}

// A hybrid shared secret must depend on both components: decapsulating a
// ciphertext whose PQ half was swapped must change the secret.
func TestHybridBothComponentsMatter(t *testing.T) {
	t.Parallel()
	k := MustByName("p256_kyber512")
	pub, priv, err := k.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ct1, ss1, err := k.Encapsulate(rand.Reader, pub)
	if err != nil {
		t.Fatal(err)
	}
	ct2, _, err := k.Encapsulate(rand.Reader, pub)
	if err != nil {
		t.Fatal(err)
	}
	split := MustByName("p256").CiphertextSize()
	mixed := append(append([]byte{}, ct1[:split]...), ct2[split:]...)
	ssMixed, err := k.Decapsulate(priv, mixed)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ss1, ssMixed) {
		t.Error("swapping the PQ ciphertext half did not change the hybrid secret")
	}
	if bytes.Equal(ss1[:32], ssMixed[32:]) {
		t.Error("unexpected structure in hybrid secret")
	}
}

func TestNonHybridByLevel(t *testing.T) {
	t.Parallel()
	got := NonHybridByLevel(1)
	want := []string{"bikel1", "hqc128", "kyber512", "kyber90s512", "p256", "x25519"}
	if len(got) != len(want) {
		t.Fatalf("level 1 non-hybrids: %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("level 1 non-hybrids: %v, want %v", got, want)
		}
	}
}
