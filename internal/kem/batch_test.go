package kem

import (
	"bytes"
	"testing"

	"pqtls/internal/crypto/sha3"
)

func batchDRBG(seed string) sha3.XOF {
	x := sha3.NewShake256()
	x.Write([]byte(seed))
	return x
}

// TestEncapsulateBatchMatchesSequential checks the helper across the three
// dispatch paths: a KEM with a native batched encapsulation (kyber768), a
// classical KEM without one (p256), and a hybrid (p256_kyber768) — all
// must be byte-identical to sequential Encapsulate calls on the same rng.
func TestEncapsulateBatchMatchesSequential(t *testing.T) {
	for _, name := range []string{"kyber768", "p256", "p256_kyber512"} {
		k := MustByName(name)
		pubs := make([][]byte, 6)
		keyRNG := batchDRBG("encaps-batch-keys/" + name)
		for i := range pubs {
			pub, _, err := k.GenerateKey(keyRNG)
			if err != nil {
				t.Fatal(err)
			}
			pubs[i] = pub
		}
		seq := batchDRBG("encaps-batch/" + name)
		batch := batchDRBG("encaps-batch/" + name)
		wantCT := make([][]byte, len(pubs))
		wantSS := make([][]byte, len(pubs))
		for i, pub := range pubs {
			ct, ss, err := k.Encapsulate(seq, pub)
			if err != nil {
				t.Fatal(err)
			}
			wantCT[i], wantSS[i] = ct, ss
		}
		cts, sss, err := EncapsulateBatch(k, batch, pubs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pubs {
			if !bytes.Equal(cts[i], wantCT[i]) || !bytes.Equal(sss[i], wantSS[i]) {
				t.Fatalf("%s: batched encapsulation %d differs from sequential", name, i)
			}
		}
	}
}
