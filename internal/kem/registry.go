package kem

import (
	"crypto/ecdh"
	"io"

	"pqtls/internal/crypto/bike"
	"pqtls/internal/crypto/hqc"
	"pqtls/internal/crypto/mlkem"
)

// pqKEM adapts the parameter-set style crypto packages to the KEM interface.
type pqKEM struct {
	name   string
	level  int
	pkSize int
	ctSize int
	ssSize int
	keygen func(io.Reader) (pub, priv []byte, err error)
	encaps func(io.Reader, []byte) (ct, ss []byte, err error)
	decaps func(priv, ct []byte) ([]byte, error)
	// batchKeygen, when set, is the scheme's amortized multi-key generation
	// (see BatchGenerator); nil falls back to sequential keygen calls.
	batchKeygen func(io.Reader, int) (pubs, privs [][]byte, err error)
	// batchEncaps, when set, is the scheme's amortized multi-target
	// encapsulation (see BatchEncapsulator); nil falls back to sequential
	// Encapsulate calls.
	batchEncaps func(io.Reader, [][]byte) (cts, sss [][]byte, err error)
}

func (k *pqKEM) Name() string          { return k.name }
func (k *pqKEM) Level() int            { return k.level }
func (k *pqKEM) Hybrid() bool          { return false }
func (k *pqKEM) PublicKeySize() int    { return k.pkSize }
func (k *pqKEM) CiphertextSize() int   { return k.ctSize }
func (k *pqKEM) SharedSecretSize() int { return k.ssSize }

func (k *pqKEM) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	return k.keygen(rng)
}

func (k *pqKEM) Encapsulate(rng io.Reader, pub []byte) (ct, ss []byte, err error) {
	return k.encaps(rng, pub)
}

func (k *pqKEM) Decapsulate(priv, ct []byte) ([]byte, error) {
	return k.decaps(priv, ct)
}

// GenerateKeyBatch implements BatchGenerator, falling back to sequential
// generation for schemes without a batched keygen.
func (k *pqKEM) GenerateKeyBatch(rng io.Reader, n int) (pubs, privs [][]byte, err error) {
	if k.batchKeygen != nil {
		return k.batchKeygen(rng, n)
	}
	return seqKeyBatch(k, rng, n)
}

// EncapsulateBatch implements BatchEncapsulator, falling back to
// sequential encapsulation for schemes without a batched path.
func (k *pqKEM) EncapsulateBatch(rng io.Reader, pubs [][]byte) (cts, sss [][]byte, err error) {
	if k.batchEncaps != nil {
		return k.batchEncaps(rng, pubs)
	}
	return seqEncapsBatch(k, rng, pubs)
}

func kyberKEM(p *mlkem.Params, level int) KEM {
	return &pqKEM{
		name: p.Name, level: level,
		pkSize: p.PublicKeySize(), ctSize: p.CiphertextSize(), ssSize: p.SharedSecretSize(),
		keygen: p.GenerateKey, encaps: p.Encapsulate, decaps: p.Decapsulate,
		batchKeygen: p.GenerateKeyBatch,
		batchEncaps: p.EncapBatch,
	}
}

func hqcKEM(p *hqc.Params, level int) KEM {
	return &pqKEM{
		name: p.Name, level: level,
		pkSize: p.PublicKeySize(), ctSize: p.CiphertextSize(), ssSize: p.SharedSecretSize(),
		keygen: p.GenerateKey, encaps: p.Encapsulate, decaps: p.Decapsulate,
	}
}

func bikeKEM(p *bike.Params, level int) KEM {
	return &pqKEM{
		name: p.Name, level: level,
		pkSize: p.PublicKeySize(), ctSize: p.CiphertextSize(), ssSize: p.SharedSecretSize(),
		keygen: p.GenerateKey, encaps: p.Encapsulate, decaps: p.Decapsulate,
	}
}

// init registers the 23 key agreements of Table 2a.
func init() {
	x25519 := &ecdhKEM{name: "x25519", level: 1, curve: ecdh.X25519(), pkSize: 32}
	p256 := &ecdhKEM{name: "p256", level: 1, curve: ecdh.P256(), pkSize: 65}
	p384 := &ecdhKEM{name: "p384", level: 3, curve: ecdh.P384(), pkSize: 97}
	p521 := &ecdhKEM{name: "p521", level: 5, curve: ecdh.P521(), pkSize: 133}

	kyber512 := kyberKEM(mlkem.Kyber512, 1)
	kyber90s512 := kyberKEM(mlkem.Kyber90s512, 1)
	kyber768 := kyberKEM(mlkem.Kyber768, 3)
	kyber90s768 := kyberKEM(mlkem.Kyber90s768, 3)
	kyber1024 := kyberKEM(mlkem.Kyber1024, 5)
	kyber90s1024 := kyberKEM(mlkem.Kyber90s1024, 5)

	hqc128 := hqcKEM(hqc.HQC128, 1)
	hqc192 := hqcKEM(hqc.HQC192, 3)
	hqc256 := hqcKEM(hqc.HQC256, 5)

	bikel1 := bikeKEM(bike.BikeL1, 1)
	bikel3 := bikeKEM(bike.BikeL3, 3)

	for _, k := range []KEM{
		x25519, p256, p384, p521,
		kyber512, kyber90s512, kyber768, kyber90s768, kyber1024, kyber90s1024,
		hqc128, hqc192, hqc256,
		bikel1, bikel3,
	} {
		register(k)
	}

	// Hybrids, named and paired exactly as in Table 2a.
	register(newHybrid("p256_bikel1", p256, bikel1))
	register(newHybrid("p256_hqc128", p256, hqc128))
	register(newHybrid("p256_kyber512", p256, kyber512))
	register(newHybrid("p384_bikel3", p384, bikel3))
	register(newHybrid("p384_hqc192", p384, hqc192))
	register(newHybrid("p384_kyber768", p384, kyber768))
	register(newHybrid("p521_hqc256", p521, hqc256))
	register(newHybrid("p521_kyber1024", p521, kyber1024))
}
