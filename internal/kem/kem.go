// Package kem defines the key-agreement abstraction used by the TLS 1.3
// stack and registers the 23 named key agreements of the paper's Table 2a:
// classical ECDH groups, the PQ KEMs (Kyber, HQC, BIKE), and their hybrids.
//
// TLS 1.3 key agreement is modeled as a KEM, matching how PQ key exchange is
// integrated in practice: the client's key_share carries the public
// (encapsulation) key, the server's key_share carries the ciphertext.
package kem

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// KEM is a key-encapsulation mechanism usable as a TLS 1.3 key agreement.
type KEM interface {
	// Name is the paper's algorithm label (e.g. "p256_kyber512").
	Name() string
	// Level is the claimed NIST security level (1, 3 or 5).
	Level() int
	// Hybrid reports whether this is a classical+PQ combination.
	Hybrid() bool
	// GenerateKey creates an ephemeral key pair (rng nil = crypto/rand).
	GenerateKey(rng io.Reader) (pub, priv []byte, err error)
	// Encapsulate derives a shared secret against pub.
	Encapsulate(rng io.Reader, pub []byte) (ct, ss []byte, err error)
	// Decapsulate recovers the shared secret from ct.
	Decapsulate(priv, ct []byte) (ss []byte, err error)
	// PublicKeySize and CiphertextSize are the exact wire sizes.
	PublicKeySize() int
	CiphertextSize() int
	// SharedSecretSize is the length of the derived secret.
	SharedSecretSize() int
}

// registry is populated from init functions and read from every handshake;
// the RWMutex keeps lookups race-free once parallel campaign workers (and
// any future runtime registration) are in play.
var registry = struct {
	sync.RWMutex
	m map[string]KEM
}{m: map[string]KEM{}}

// register adds k to the registry; duplicate names are a programming error.
func register(k KEM) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[k.Name()]; dup {
		panic("kem: duplicate registration of " + k.Name())
	}
	registry.m[k.Name()] = k
}

// ByName returns the named KEM.
func ByName(name string) (KEM, error) {
	registry.RLock()
	k, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("kem: unknown key agreement %q", name)
	}
	return k, nil
}

// MustByName is ByName for static suite names in tests and benchmarks.
func MustByName(name string) KEM {
	k, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return k
}

// Names returns all registered names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByLevel returns the names of all KEMs at the given NIST level, sorted.
func ByLevel(level int) []string {
	registry.RLock()
	defer registry.RUnlock()
	var out []string
	for n, k := range registry.m {
		if k.Level() == level {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// NonHybridByLevel returns non-hybrid KEM names at the given level, sorted.
func NonHybridByLevel(level int) []string {
	registry.RLock()
	defer registry.RUnlock()
	var out []string
	for n, k := range registry.m {
		if k.Level() == level && !k.Hybrid() {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
