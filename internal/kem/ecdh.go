package kem

import (
	"crypto/ecdh"
	"crypto/elliptic"
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// ecdhKEM adapts a crypto/ecdh curve to the KEM interface: encapsulation
// generates an ephemeral key and the "ciphertext" is its public point —
// exactly the server key_share of a TLS 1.3 (EC)DHE exchange.
type ecdhKEM struct {
	name   string
	level  int
	curve  ecdh.Curve
	pkSize int
}

func (e *ecdhKEM) Name() string          { return e.name }
func (e *ecdhKEM) Level() int            { return e.level }
func (e *ecdhKEM) Hybrid() bool          { return false }
func (e *ecdhKEM) PublicKeySize() int    { return e.pkSize }
func (e *ecdhKEM) CiphertextSize() int   { return e.pkSize }
func (e *ecdhKEM) SharedSecretSize() int { return sharedSize(e.curve) }

func sharedSize(c ecdh.Curve) int {
	switch c {
	case ecdh.X25519():
		return 32
	case ecdh.P256():
		return 32
	case ecdh.P384():
		return 48
	default:
		return 66 // P-521
	}
}

func (e *ecdhKEM) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	var key *ecdh.PrivateKey
	if rng == nil {
		key, err = e.curve.GenerateKey(rand.Reader)
	} else {
		key, err = deterministicECDHKey(e.curve, rng)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("kem %s: keygen: %w", e.name, err)
	}
	return key.PublicKey().Bytes(), key.Bytes(), nil
}

// deterministicECDHKey derives a key pair by reading a fixed number of
// bytes from rng. crypto/ecdh's GenerateKey consumes a byte of the stream
// at random (randutil.MaybeReadByte), so handing it a seeded reader shifts
// every later draw from a shared DRBG unpredictably — enough to jitter
// downstream variable-length signatures between otherwise identical runs.
// Endpoints share one DRBG per simulated handshake, so keygen must consume
// a deterministic amount of it.
func deterministicECDHKey(curve ecdh.Curve, rng io.Reader) (*ecdh.PrivateKey, error) {
	if curve == ecdh.X25519() {
		// An X25519 private key is a raw 32-byte scalar (clamped at use).
		buf := make([]byte, 32)
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		return curve.NewPrivateKey(buf)
	}
	var params *elliptic.CurveParams
	switch curve {
	case ecdh.P256():
		params = elliptic.P256().Params()
	case ecdh.P384():
		params = elliptic.P384().Params()
	case ecdh.P521():
		params = elliptic.P521().Params()
	default:
		return nil, fmt.Errorf("kem: no deterministic keygen for curve %v", curve)
	}
	// Reduce an oversized draw into [1, N-1]; the eight extra bytes make
	// the reduction's bias negligible.
	n := params.N
	buf := make([]byte, (n.BitLen()+7)/8+8)
	if _, err := io.ReadFull(rng, buf); err != nil {
		return nil, err
	}
	d := new(big.Int).SetBytes(buf)
	d.Mod(d, new(big.Int).Sub(n, big.NewInt(1)))
	d.Add(d, big.NewInt(1))
	return curve.NewPrivateKey(d.FillBytes(make([]byte, (n.BitLen()+7)/8)))
}

func (e *ecdhKEM) Encapsulate(rng io.Reader, pub []byte) (ct, ss []byte, err error) {
	peer, err := e.curve.NewPublicKey(pub)
	if err != nil {
		return nil, nil, fmt.Errorf("kem %s: bad public key: %w", e.name, err)
	}
	var eph *ecdh.PrivateKey
	if rng == nil {
		eph, err = e.curve.GenerateKey(rand.Reader)
	} else {
		eph, err = deterministicECDHKey(e.curve, rng)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("kem %s: ephemeral keygen: %w", e.name, err)
	}
	ss, err = eph.ECDH(peer)
	if err != nil {
		return nil, nil, fmt.Errorf("kem %s: ECDH: %w", e.name, err)
	}
	return eph.PublicKey().Bytes(), ss, nil
}

func (e *ecdhKEM) Decapsulate(priv, ct []byte) ([]byte, error) {
	key, err := e.curve.NewPrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("kem %s: bad private key: %w", e.name, err)
	}
	peer, err := e.curve.NewPublicKey(ct)
	if err != nil {
		return nil, fmt.Errorf("kem %s: bad ciphertext: %w", e.name, err)
	}
	ss, err := key.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("kem %s: ECDH: %w", e.name, err)
	}
	return ss, nil
}
