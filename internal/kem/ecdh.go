package kem

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"
)

// ecdhKEM adapts a crypto/ecdh curve to the KEM interface: encapsulation
// generates an ephemeral key and the "ciphertext" is its public point —
// exactly the server key_share of a TLS 1.3 (EC)DHE exchange.
type ecdhKEM struct {
	name   string
	level  int
	curve  ecdh.Curve
	pkSize int
}

func (e *ecdhKEM) Name() string          { return e.name }
func (e *ecdhKEM) Level() int            { return e.level }
func (e *ecdhKEM) Hybrid() bool          { return false }
func (e *ecdhKEM) PublicKeySize() int    { return e.pkSize }
func (e *ecdhKEM) CiphertextSize() int   { return e.pkSize }
func (e *ecdhKEM) SharedSecretSize() int { return sharedSize(e.curve) }

func sharedSize(c ecdh.Curve) int {
	switch c {
	case ecdh.X25519():
		return 32
	case ecdh.P256():
		return 32
	case ecdh.P384():
		return 48
	default:
		return 66 // P-521
	}
}

func (e *ecdhKEM) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	key, err := e.curve.GenerateKey(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("kem %s: keygen: %w", e.name, err)
	}
	return key.PublicKey().Bytes(), key.Bytes(), nil
}

func (e *ecdhKEM) Encapsulate(rng io.Reader, pub []byte) (ct, ss []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	peer, err := e.curve.NewPublicKey(pub)
	if err != nil {
		return nil, nil, fmt.Errorf("kem %s: bad public key: %w", e.name, err)
	}
	eph, err := e.curve.GenerateKey(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("kem %s: ephemeral keygen: %w", e.name, err)
	}
	ss, err = eph.ECDH(peer)
	if err != nil {
		return nil, nil, fmt.Errorf("kem %s: ECDH: %w", e.name, err)
	}
	return eph.PublicKey().Bytes(), ss, nil
}

func (e *ecdhKEM) Decapsulate(priv, ct []byte) ([]byte, error) {
	key, err := e.curve.NewPrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("kem %s: bad private key: %w", e.name, err)
	}
	peer, err := e.curve.NewPublicKey(ct)
	if err != nil {
		return nil, fmt.Errorf("kem %s: bad ciphertext: %w", e.name, err)
	}
	ss, err := key.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("kem %s: ECDH: %w", e.name, err)
	}
	return ss, nil
}
