package kem

import (
	"fmt"
	"io"
)

// hybridKEM combines a classical and a post-quantum KEM following
// draft-ietf-tls-hybrid-design: public keys, ciphertexts, and shared
// secrets are fixed-size concatenations, so an attacker must break both
// components to recover the handshake secret.
type hybridKEM struct {
	name    string
	classic KEM
	pq      KEM
}

func newHybrid(name string, classic, pq KEM) KEM {
	return &hybridKEM{name: name, classic: classic, pq: pq}
}

func (h *hybridKEM) Name() string { return h.name }

// Level is the PQ component's level; the classical component is chosen to
// match it (p256↔L1, p384↔L3, p521↔L5), as in the paper.
func (h *hybridKEM) Level() int { return h.pq.Level() }

func (h *hybridKEM) Hybrid() bool { return true }

func (h *hybridKEM) PublicKeySize() int {
	return h.classic.PublicKeySize() + h.pq.PublicKeySize()
}

func (h *hybridKEM) CiphertextSize() int {
	return h.classic.CiphertextSize() + h.pq.CiphertextSize()
}

func (h *hybridKEM) SharedSecretSize() int {
	return h.classic.SharedSecretSize() + h.pq.SharedSecretSize()
}

func (h *hybridKEM) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	cPub, cPriv, err := h.classic.GenerateKey(rng)
	if err != nil {
		return nil, nil, err
	}
	pPub, pPriv, err := h.pq.GenerateKey(rng)
	if err != nil {
		return nil, nil, err
	}
	// Private halves are length-prefixed because classical ECDH private
	// keys are not fixed-size across curves.
	priv = append(encodeLen(cPriv), encodeLen(pPriv)...)
	return append(cPub, pPub...), priv, nil
}

func (h *hybridKEM) Encapsulate(rng io.Reader, pub []byte) (ct, ss []byte, err error) {
	if len(pub) != h.PublicKeySize() {
		return nil, nil, fmt.Errorf("kem %s: public key is %d bytes, want %d", h.name, len(pub), h.PublicKeySize())
	}
	split := h.classic.PublicKeySize()
	cCT, cSS, err := h.classic.Encapsulate(rng, pub[:split])
	if err != nil {
		return nil, nil, err
	}
	pCT, pSS, err := h.pq.Encapsulate(rng, pub[split:])
	if err != nil {
		return nil, nil, err
	}
	return append(cCT, pCT...), append(cSS, pSS...), nil
}

func (h *hybridKEM) Decapsulate(priv, ct []byte) ([]byte, error) {
	if len(ct) != h.CiphertextSize() {
		return nil, fmt.Errorf("kem %s: ciphertext is %d bytes, want %d", h.name, len(ct), h.CiphertextSize())
	}
	cPriv, rest, err := decodeLen(priv)
	if err != nil {
		return nil, fmt.Errorf("kem %s: %w", h.name, err)
	}
	pPriv, _, err := decodeLen(rest)
	if err != nil {
		return nil, fmt.Errorf("kem %s: %w", h.name, err)
	}
	split := h.classic.CiphertextSize()
	cSS, err := h.classic.Decapsulate(cPriv, ct[:split])
	if err != nil {
		return nil, err
	}
	pSS, err := h.pq.Decapsulate(pPriv, ct[split:])
	if err != nil {
		return nil, err
	}
	return append(cSS, pSS...), nil
}

func encodeLen(b []byte) []byte {
	out := make([]byte, 0, 4+len(b))
	out = append(out, byte(len(b)>>24), byte(len(b)>>16), byte(len(b)>>8), byte(len(b)))
	return append(out, b...)
}

func decodeLen(b []byte) (val, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("truncated length prefix")
	}
	n := int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	if len(b) < 4+n {
		return nil, nil, fmt.Errorf("truncated value (want %d bytes, have %d)", n, len(b)-4)
	}
	return b[4 : 4+n], b[4+n:], nil
}
