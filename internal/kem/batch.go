package kem

import "io"

// BatchGenerator is implemented by KEMs whose key generation amortizes
// symmetric work across a batch of keys (ML-KEM batches its G/PRF/H hashes
// through one multi-sponge pass). Batched output is byte-identical to the
// same number of sequential GenerateKey calls on the same rng.
type BatchGenerator interface {
	GenerateKeyBatch(rng io.Reader, n int) (pubs, privs [][]byte, err error)
}

// GenerateKeyBatch creates n key pairs from k, batched when the KEM
// supports it and by sequential GenerateKey calls otherwise.
func GenerateKeyBatch(k KEM, rng io.Reader, n int) (pubs, privs [][]byte, err error) {
	if bg, ok := k.(BatchGenerator); ok {
		return bg.GenerateKeyBatch(rng, n)
	}
	return seqKeyBatch(k, rng, n)
}

func seqKeyBatch(k KEM, rng io.Reader, n int) (pubs, privs [][]byte, err error) {
	pubs = make([][]byte, 0, n)
	privs = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		pub, priv, err := k.GenerateKey(rng)
		if err != nil {
			return nil, nil, err
		}
		pubs = append(pubs, pub)
		privs = append(privs, priv)
	}
	return pubs, privs, nil
}

// BatchEncapsulator is implemented by KEMs whose encapsulation amortizes
// symmetric work across a batch of public keys (ML-KEM batches its
// H/G/PRF/KDF hashes through one multi-sponge pass). Batched output is
// byte-identical to the same number of sequential Encapsulate calls on the
// same rng.
type BatchEncapsulator interface {
	EncapsulateBatch(rng io.Reader, pubs [][]byte) (cts, sss [][]byte, err error)
}

// EncapsulateBatch encapsulates against each public key in pubs, batched
// when the KEM supports it and by sequential Encapsulate calls otherwise.
func EncapsulateBatch(k KEM, rng io.Reader, pubs [][]byte) (cts, sss [][]byte, err error) {
	if be, ok := k.(BatchEncapsulator); ok {
		return be.EncapsulateBatch(rng, pubs)
	}
	return seqEncapsBatch(k, rng, pubs)
}

func seqEncapsBatch(k KEM, rng io.Reader, pubs [][]byte) (cts, sss [][]byte, err error) {
	cts = make([][]byte, 0, len(pubs))
	sss = make([][]byte, 0, len(pubs))
	for _, pub := range pubs {
		ct, ss, err := k.Encapsulate(rng, pub)
		if err != nil {
			return nil, nil, err
		}
		cts = append(cts, ct)
		sss = append(sss, ss)
	}
	return cts, sss, nil
}
