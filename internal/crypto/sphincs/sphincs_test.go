package sphincs

import (
	"bytes"
	"testing"
)

var allParams = []*Params{SPHINCS128f, SPHINCS192f, SPHINCS256f}

func TestSizes(t *testing.T) {
	t.Parallel()
	want := []struct {
		p           *Params
		pk, sk, sig int
	}{
		{SPHINCS128f, 32, 64, 17088},
		{SPHINCS192f, 48, 96, 35664},
		{SPHINCS256f, 64, 128, 49856},
	}
	for _, w := range want {
		if got := w.p.PublicKeySize(); got != w.pk {
			t.Errorf("%s: pk size %d, want %d", w.p.Name, got, w.pk)
		}
		if got := w.p.PrivateKeySize(); got != w.sk {
			t.Errorf("%s: sk size %d, want %d", w.p.Name, got, w.sk)
		}
		if got := w.p.SignatureSize(); got != w.sig {
			t.Errorf("%s: sig size %d, want %d", w.p.Name, got, w.sig)
		}
	}
}

func TestSignVerify128(t *testing.T) {
	t.Parallel()
	testSignVerify(t, SPHINCS128f)
}

func TestSignVerify192(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Parallel()
	testSignVerify(t, SPHINCS192f)
}

func TestSignVerify256(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Parallel()
	testSignVerify(t, SPHINCS256f)
}

func testSignVerify(t *testing.T, p *Params) {
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("TLS CertificateVerify content")
	sig, err := p.Sign(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != p.SignatureSize() {
		t.Fatalf("sig size %d, want %d", len(sig), p.SignatureSize())
	}
	if !p.Verify(pk, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if p.Verify(pk, []byte("different message"), sig) {
		t.Error("signature verified for wrong message")
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	t.Parallel()
	p := SPHINCS128f
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	sig, err := p.Sign(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the randomizer, a FORS leaf, an auth-path node, and the
	// final WOTS+ chain.
	for _, pos := range []int{0, p.N + 3, p.N + p.K*(p.A+1)*p.N + 5, len(sig) - 1} {
		bad := bytes.Clone(sig)
		bad[pos] ^= 0x01
		if p.Verify(pk, msg, bad) {
			t.Errorf("tampered signature (byte %d) accepted", pos)
		}
	}
}

func TestDeterministicSigning(t *testing.T) {
	t.Parallel()
	p := SPHINCS128f
	_, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := p.Sign(sk, []byte("same"))
	s2, _ := p.Sign(sk, []byte("same"))
	if !bytes.Equal(s1, s2) {
		t.Error("signing is not deterministic")
	}
}

func TestWrongKeyRejected(t *testing.T) {
	t.Parallel()
	p := SPHINCS128f
	pk1, _, _ := p.GenerateKey(nil)
	_, sk2, _ := p.GenerateKey(nil)
	sig, err := p.Sign(sk2, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Verify(pk1, []byte("m"), sig) {
		t.Error("signature verified under an unrelated public key")
	}
}

func TestForsIndicesInRange(t *testing.T) {
	t.Parallel()
	for _, p := range allParams {
		md := bytes.Repeat([]byte{0xFF}, (p.K*p.A+7)/8)
		for i, idx := range p.forsIndices(md) {
			if idx >= 1<<p.A {
				t.Errorf("%s: index %d = %d out of range", p.Name, i, idx)
			}
		}
	}
}

func TestWotsDigits(t *testing.T) {
	t.Parallel()
	p := SPHINCS128f
	msg := make([]byte, p.N) // all-zero message: digits 0, max checksum
	digits := p.wotsDigits(msg)
	if len(digits) != p.wotsLen() {
		t.Fatalf("got %d digits, want %d", len(digits), p.wotsLen())
	}
	for i := 0; i < p.len1(); i++ {
		if digits[i] != 0 {
			t.Fatalf("digit %d = %d, want 0", i, digits[i])
		}
	}
	// Checksum = len1 * 15 = 480 = 0x1E0, shifted <<4 = 0x1E00:
	// digits (4-bit, big-endian) = 1, 14, 0.
	cs := digits[p.len1():]
	if cs[0] != 1 || cs[1] != 14 || cs[2] != 0 {
		t.Errorf("checksum digits = %v, want [1 14 0]", cs)
	}
}

func BenchmarkSPHINCS128fSign(b *testing.B) {
	p := SPHINCS128f
	_, sk, _ := p.GenerateKey(nil)
	msg := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Sign(sk, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPHINCS128fVerify(b *testing.B) {
	p := SPHINCS128f
	pk, sk, _ := p.GenerateKey(nil)
	msg := make([]byte, 64)
	sig, _ := p.Sign(sk, msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p.Verify(pk, msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

// Small-variant wire sizes per the SPHINCS+ round-3 specification.
func TestSmallVariantSizes(t *testing.T) {
	t.Parallel()
	want := []struct {
		p   *Params
		sig int
	}{
		{SPHINCS128s, 7856},
		{SPHINCS192s, 16224},
		{SPHINCS256s, 29792},
	}
	for _, w := range want {
		if got := w.p.SignatureSize(); got != w.sig {
			t.Errorf("%s: sig size %d, want %d", w.p.Name, got, w.sig)
		}
	}
}

// The s-variants trade signature size for signing time; one full
// sign/verify exercises the deeper hypertree (h'=9) path.
func TestSignVerify128s(t *testing.T) {
	if testing.Short() {
		t.Skip("slow variant in short mode")
	}
	t.Parallel()
	testSignVerify(t, SPHINCS128s)
}
