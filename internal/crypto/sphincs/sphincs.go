// Package sphincs implements the SPHINCS+ stateless hash-based signature
// scheme (round-3 structure: FORS + WOTS+ hypertree) with the SHA-256
// "simple" tweakable hash construction, for the three fast ("f") parameter
// sets the paper benchmarks as sphincs128/192/256.
//
// Substitution note (see DESIGN.md): the paper uses the haraka-f-simple
// instantiation, whose speed depends on AES-NI; we instantiate the identical
// structure with SHA-256. Signature and key sizes are exactly those of the
// corresponding sha256-f-simple sets, and the scheme remains hash-bound and
// orders of magnitude slower than the lattice signatures — the behaviour the
// paper reports.
package sphincs

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Params describes one SPHINCS+ parameter set.
type Params struct {
	Name string
	N    int // hash output bytes
	H    int // hypertree height
	D    int // hypertree layers
	A    int // FORS tree height
	K    int // number of FORS trees
	// WOTS+ uses w=16 throughout; len1 = 2n, len2 = 3, len = len1+len2.
}

// The three fast ("f") parameter sets the paper's tables use, plus the
// small ("s") sets: the artifact's all-sphincs experiment sweeps variants
// to pick the fastest, trading signature size against signing time.
var (
	SPHINCS128f = &Params{Name: "sphincs128", N: 16, H: 66, D: 22, A: 6, K: 33}
	SPHINCS192f = &Params{Name: "sphincs192", N: 24, H: 66, D: 22, A: 8, K: 33}
	SPHINCS256f = &Params{Name: "sphincs256", N: 32, H: 68, D: 17, A: 9, K: 35}
	SPHINCS128s = &Params{Name: "sphincs128s", N: 16, H: 63, D: 7, A: 12, K: 14}
	SPHINCS192s = &Params{Name: "sphincs192s", N: 24, H: 63, D: 7, A: 14, K: 17}
	SPHINCS256s = &Params{Name: "sphincs256s", N: 32, H: 64, D: 8, A: 14, K: 22}
)

const wotsW = 16

// maxWotsLen bounds wotsLen over all parameter sets (2·32 + 3).
const maxWotsLen = 67

func (p *Params) len1() int    { return 2 * p.N }
func (p *Params) len2() int    { return 3 }
func (p *Params) wotsLen() int { return p.len1() + p.len2() }
func (p *Params) hPrime() int  { return p.H / p.D }

// PublicKeySize returns the public-key length (PK.seed || PK.root).
func (p *Params) PublicKeySize() int { return 2 * p.N }

// PrivateKeySize returns the private-key length (SK.seed || SK.prf || PK).
func (p *Params) PrivateKeySize() int { return 4 * p.N }

// SignatureSize returns the signature length (R || FORS || HT).
func (p *Params) SignatureSize() int {
	return p.N * (1 + p.K*(p.A+1) + p.D*(p.wotsLen()+p.hPrime()))
}

// address is the 32-byte hash-domain separator of SPHINCS+.
type address [32]byte

// Address word types.
const (
	adrsWOTSHash  = 0
	adrsWOTSPK    = 1
	adrsTree      = 2
	adrsFORSTree  = 3
	adrsFORSRoots = 4
	adrsWOTSPRF   = 5
	adrsFORSPRF   = 6
)

func (a *address) setLayer(l uint32) { binary.BigEndian.PutUint32(a[0:], l) }
func (a *address) setTree(t uint64)  { binary.BigEndian.PutUint64(a[8:], t) }
func (a *address) setType(t uint32) {
	binary.BigEndian.PutUint32(a[16:], t)
	for i := 20; i < 32; i++ {
		a[i] = 0
	}
}
func (a *address) setKeyPair(k uint32)    { binary.BigEndian.PutUint32(a[20:], k) }
func (a *address) setChain(c uint32)      { binary.BigEndian.PutUint32(a[24:], c) }
func (a *address) setHash(h uint32)       { binary.BigEndian.PutUint32(a[28:], h) }
func (a *address) setTreeHeight(h uint32) { binary.BigEndian.PutUint32(a[24:], h) }
func (a *address) setTreeIndex(i uint32)  { binary.BigEndian.PutUint32(a[28:], i) }

// compressed returns the 22-byte SHA-256 address encoding.
func (a *address) compressed() [22]byte {
	var c [22]byte
	c[0] = a[3]           // layer
	copy(c[1:9], a[8:16]) // tree (low 8 bytes)
	c[9] = a[19]          // type
	copy(c[10:22], a[20:32])
	return c
}

// hctx carries the scratch buffers of a top-level SPHINCS+ operation
// through the recursive tree walks. A fast
// signature evaluates the tweakable hash ~10^5 times; without this every
// call would allocate a fresh digest state and output slice, and the
// allocator dominates the profile (the seed implementation spent ~105k
// allocations per sphincs128 signature on exactly that).
type hctx struct {
	p     *Params
	in    []byte // staging buffer for hash inputs (see thashInto)
	prfIn []byte // second staging buffer for PRF inputs inside chain loops
	wots  []byte // wotsLen·n chain-output scratch for PK compression
	roots []byte // k·n FORS root scratch
}

var hctxPool sync.Pool

func (p *Params) getCtx() *hctx {
	c, _ := hctxPool.Get().(*hctx)
	if c == nil {
		c = &hctx{in: make([]byte, 0, 2048), prfIn: make([]byte, 0, 128)}
	}
	c.p = p
	if cap(c.wots) < p.wotsLen()*p.N {
		c.wots = make([]byte, p.wotsLen()*p.N)
	}
	c.wots = c.wots[:p.wotsLen()*p.N]
	if cap(c.roots) < p.K*p.N {
		c.roots = make([]byte, p.K*p.N)
	}
	c.roots = c.roots[:p.K*p.N]
	return c
}

func putCtx(c *hctx) { hctxPool.Put(c) }

// thashInto writes the "simple" tweakable hash
// SHA-256(PK.seed || ADRSc || M)[:n] into dst (len n). dst may alias the
// message inputs: they are fully absorbed before the output is copied out
// of the context's sum scratch.
//
// All input pieces are staged into the context's reusable buffer and
// hashed with the one-shot sha256.Sum256: feeding them through a hash.Hash
// interface makes every stack-resident input (the compressed address, tree
// child nodes, chain secrets) escape to the heap, one allocation per call.
func (c *hctx) thashInto(dst, pkSeed []byte, adrs *address, msg ...[]byte) {
	ca := adrs.compressed()
	b := append(c.in[:0], pkSeed...)
	b = append(b, ca[:]...)
	for _, m := range msg {
		b = append(b, m...)
	}
	c.in = b
	out := sha256.Sum256(b)
	copy(dst, out[:])
}

// prfInto writes SHA-256(PK.seed || ADRSc || SK.seed)[:n] into dst. See
// thashInto for the staging-buffer rationale.
func (c *hctx) prfInto(dst, pkSeed, skSeed []byte, adrs *address) {
	ca := adrs.compressed()
	b := append(c.in[:0], pkSeed...)
	b = append(b, ca[:]...)
	b = append(b, skSeed...)
	c.in = b
	out := sha256.Sum256(b)
	copy(dst, out[:])
}

// prfMsg computes the randomizer R = HMAC-SHA256(SK.prf, optRand || M)[:n].
func (p *Params) prfMsg(skPRF, optRand, msg []byte) []byte {
	m := hmac.New(sha256.New, skPRF)
	m.Write(optRand)
	m.Write(msg)
	return m.Sum(nil)[:p.N]
}

// hashMsg expands (R, PK, M) into the FORS digest and tree/leaf indices.
func (p *Params) hashMsg(r, pkSeed, pkRoot, msg []byte) (md []byte, treeIdx uint64, leafIdx uint32) {
	seed := sha256.New()
	seed.Write(r)
	seed.Write(pkSeed)
	seed.Write(pkRoot)
	seed.Write(msg)
	digest := seed.Sum(nil)

	mdLen := (p.K*p.A + 7) / 8
	treeBits := p.H - p.hPrime()
	treeLen := (treeBits + 7) / 8
	leafLen := (p.hPrime() + 7) / 8
	out := mgf1(append(append([]byte{}, r...), digest...), mdLen+treeLen+leafLen)

	md = out[:mdLen]
	var tb [8]byte
	copy(tb[8-treeLen:], out[mdLen:mdLen+treeLen])
	treeIdx = binary.BigEndian.Uint64(tb[:])
	if treeBits < 64 {
		treeIdx &= 1<<treeBits - 1
	}
	var lb [4]byte
	copy(lb[4-leafLen:], out[mdLen+treeLen:])
	leafIdx = binary.BigEndian.Uint32(lb[:]) & (1<<p.hPrime() - 1)
	return md, treeIdx, leafIdx
}

// mgf1 is the MGF1-SHA256 mask generation function.
func mgf1(seed []byte, outLen int) []byte {
	out := make([]byte, 0, (outLen+sha256.Size-1)/sha256.Size*sha256.Size)
	buf := make([]byte, 0, len(seed)+4)
	buf = append(buf, seed...)
	for i := uint32(0); len(out) < outLen; i++ {
		var ctr [4]byte
		binary.BigEndian.PutUint32(ctr[:], i)
		h := sha256.Sum256(append(buf, ctr[:]...))
		out = append(out, h[:]...)
	}
	return out[:outLen]
}

// chainInto applies the WOTS+ chaining function count times starting at
// index start, writing the final value into dst (len n). x may alias dst.
//
// The staged hash input (PK.seed || ADRSc || value) is assembled once and
// mutated in place across iterations — only the 4-byte hash-index word of
// the compressed address and the n-byte chain value change per step. WOTS+
// chains account for the bulk of all tweakable-hash calls, so skipping the
// per-step reassembly is worth the specialization.
func (c *hctx) chainInto(dst, x []byte, start, count int, pkSeed []byte, adrs *address) {
	if count <= 0 {
		copy(dst, x)
		return
	}
	n := c.p.N
	b := append(c.in[:0], pkSeed...)
	caOff := len(b)
	ca := adrs.compressed()
	b = append(b, ca[:]...)
	valOff := len(b)
	b = append(b, x[:n]...)
	c.in = b
	for i := start; i < start+count; i++ {
		// The hash-index word sits at bytes 18..22 of the compressed address.
		binary.BigEndian.PutUint32(b[caOff+18:caOff+22], uint32(i))
		out := sha256.Sum256(b)
		copy(b[valOff:valOff+n], out[:n])
	}
	adrs.setHash(uint32(start + count - 1))
	copy(dst, b[valOff:valOff+n])
}

// baseW converts msg into outLen base-16 digits.
func baseW(msg []byte, outLen int) []int {
	out := make([]int, 0, outLen)
	for _, b := range msg {
		out = append(out, int(b>>4), int(b&0x0F))
		if len(out) >= outLen {
			break
		}
	}
	return out[:outLen]
}

// wotsDigitsInto fills d (len wotsLen) with the base-16 digits of the
// n-byte msg followed by the len2 checksum digits, without allocating.
func (p *Params) wotsDigitsInto(d []int, msg []byte) {
	csum := 0
	for i, b := range msg {
		hi, lo := int(b>>4), int(b&0x0F)
		d[2*i], d[2*i+1] = hi, lo
		csum += 2*(wotsW-1) - hi - lo
	}
	// Checksum in len2 big-endian base-w digits, left-shifted by 4 so the
	// top bits align as in the spec (12 bits is enough for all sets).
	csum <<= 4
	d[p.len1()] = csum >> 12 & 0x0F
	d[p.len1()+1] = csum >> 8 & 0x0F
	d[p.len1()+2] = csum >> 4 & 0x0F
}

// wotsDigits maps an n-byte message to len digits including the checksum.
func (p *Params) wotsDigits(msg []byte) []int {
	d := make([]int, p.wotsLen())
	p.wotsDigitsInto(d, msg)
	return d
}

// wotsPKFromSigInto recomputes the WOTS+ public key implied by a signature,
// writing it into dst (len n). dst may alias msg.
func (c *hctx) wotsPKFromSigInto(dst, sig, msg, pkSeed []byte, adrs *address) {
	p := c.p
	var digs [maxWotsLen]int
	d := digs[:p.wotsLen()]
	p.wotsDigitsInto(d, msg)
	tmp := c.wots
	for i, dd := range d {
		adrs.setChain(uint32(i))
		c.chainInto(tmp[i*p.N:(i+1)*p.N], sig[i*p.N:(i+1)*p.N], dd, wotsW-1-dd, pkSeed, adrs)
	}
	wotspkADRS := *adrs
	wotspkADRS.setType(adrsWOTSPK)
	wotspkADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
	c.thashInto(dst, pkSeed, &wotspkADRS, tmp)
}

// stagePRF assembles the WOTS chain-secret PRF input
// (PK.seed || ADRSc || SK.seed) for chain index 0 into the dedicated PRF
// staging buffer and returns it along with the offset of the 4-byte chain
// word, so per-chain loops can update just that word instead of
// re-staging the whole input.
func (c *hctx) stagePRF(pkSeed, skSeed []byte, adrs *address) (b []byte, chainOff int) {
	skADRS := *adrs
	skADRS.setType(adrsWOTSPRF)
	skADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
	b = append(c.prfIn[:0], pkSeed...)
	caOff := len(b)
	ca := skADRS.compressed()
	b = append(b, ca[:]...)
	b = append(b, skSeed...)
	c.prfIn = b
	// The chain word sits at bytes 14..18 of the compressed address.
	return b, caOff + 14
}

// wotsSignInto signs an n-byte message into dst (len wotsLen·n).
func (c *hctx) wotsSignInto(dst, msg, skSeed, pkSeed []byte, adrs *address) {
	p := c.p
	var digs [maxWotsLen]int
	d := digs[:p.wotsLen()]
	p.wotsDigitsInto(d, msg)
	pb, chainOff := c.stagePRF(pkSeed, skSeed, adrs)
	for i, dd := range d {
		binary.BigEndian.PutUint32(pb[chainOff:chainOff+4], uint32(i))
		sk := sha256.Sum256(pb)
		adrs.setChain(uint32(i))
		c.chainInto(dst[i*p.N:(i+1)*p.N], sk[:p.N], 0, dd, pkSeed, adrs)
	}
}

// wotsPKGenInto computes a WOTS+ public key (the compressed root value)
// into dst (len n).
func (c *hctx) wotsPKGenInto(dst, skSeed, pkSeed []byte, adrs *address) {
	p := c.p
	tmp := c.wots
	pb, chainOff := c.stagePRF(pkSeed, skSeed, adrs)
	for i := 0; i < p.wotsLen(); i++ {
		binary.BigEndian.PutUint32(pb[chainOff:chainOff+4], uint32(i))
		sk := sha256.Sum256(pb)
		adrs.setChain(uint32(i))
		c.chainInto(tmp[i*p.N:(i+1)*p.N], sk[:p.N], 0, wotsW-1, pkSeed, adrs)
	}
	wotspkADRS := *adrs
	wotspkADRS.setType(adrsWOTSPK)
	wotspkADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
	c.thashInto(dst, pkSeed, &wotspkADRS, tmp)
}

// xmssNodeInto computes the node at (height, index) of an XMSS subtree into
// dst (len n). The left/right children live in one small stack frame per
// recursion level, so the whole tree walk is allocation-free.
func (c *hctx) xmssNodeInto(dst, skSeed, pkSeed []byte, idx, height uint32, adrs *address) {
	if height == 0 {
		wotsADRS := *adrs
		wotsADRS.setType(adrsWOTSHash)
		wotsADRS.setKeyPair(idx)
		c.wotsPKGenInto(dst, skSeed, pkSeed, &wotsADRS)
		return
	}
	var lr [2 * sha256.Size]byte
	left, right := lr[:c.p.N], lr[sha256.Size:sha256.Size+c.p.N]
	c.xmssNodeInto(left, skSeed, pkSeed, 2*idx, height-1, adrs)
	c.xmssNodeInto(right, skSeed, pkSeed, 2*idx+1, height-1, adrs)
	nodeADRS := *adrs
	nodeADRS.setType(adrsTree)
	nodeADRS.setTreeHeight(height)
	nodeADRS.setTreeIndex(idx)
	c.thashInto(dst, pkSeed, &nodeADRS, left, right)
}

// xmssSignInto writes a WOTS+ signature plus authentication path for leaf
// idx into dst (len (wotsLen+h')·n).
func (c *hctx) xmssSignInto(dst, msg, skSeed, pkSeed []byte, idx uint32, adrs *address) {
	p := c.p
	wotsADRS := *adrs
	wotsADRS.setType(adrsWOTSHash)
	wotsADRS.setKeyPair(idx)
	c.wotsSignInto(dst[:p.wotsLen()*p.N], msg, skSeed, pkSeed, &wotsADRS)
	off := p.wotsLen() * p.N
	for h := uint32(0); h < uint32(p.hPrime()); h++ {
		sibling := (idx >> h) ^ 1
		c.xmssNodeInto(dst[off:off+p.N], skSeed, pkSeed, sibling, h, adrs)
		off += p.N
	}
}

// xmssPKFromSigInto recomputes the subtree root from a leaf signature into
// dst (len n). dst may alias msg.
func (c *hctx) xmssPKFromSigInto(dst []byte, idx uint32, sig, msg, pkSeed []byte, adrs *address) {
	p := c.p
	wotsADRS := *adrs
	wotsADRS.setType(adrsWOTSHash)
	wotsADRS.setKeyPair(idx)
	c.wotsPKFromSigInto(dst, sig[:p.wotsLen()*p.N], msg, pkSeed, &wotsADRS)
	auth := sig[p.wotsLen()*p.N:]
	nodeADRS := *adrs
	nodeADRS.setType(adrsTree)
	for h := 0; h < p.hPrime(); h++ {
		nodeADRS.setTreeHeight(uint32(h + 1))
		nodeADRS.setTreeIndex(idx >> (h + 1))
		sib := auth[h*p.N : (h+1)*p.N]
		if idx>>h&1 == 0 {
			c.thashInto(dst, pkSeed, &nodeADRS, dst, sib)
		} else {
			c.thashInto(dst, pkSeed, &nodeADRS, sib, dst)
		}
	}
}

// forsNodeInto computes a FORS tree node into dst (len n).
func (c *hctx) forsNodeInto(dst, skSeed, pkSeed []byte, idx, height uint32, adrs *address) {
	if height == 0 {
		skADRS := *adrs
		skADRS.setType(adrsFORSPRF)
		skADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
		skADRS.setTreeIndex(idx)
		var sk [sha256.Size]byte
		c.prfInto(sk[:c.p.N], pkSeed, skSeed, &skADRS)
		leafADRS := *adrs
		leafADRS.setTreeHeight(0)
		leafADRS.setTreeIndex(idx)
		c.thashInto(dst, pkSeed, &leafADRS, sk[:c.p.N])
		return
	}
	var lr [2 * sha256.Size]byte
	left, right := lr[:c.p.N], lr[sha256.Size:sha256.Size+c.p.N]
	c.forsNodeInto(left, skSeed, pkSeed, 2*idx, height-1, adrs)
	c.forsNodeInto(right, skSeed, pkSeed, 2*idx+1, height-1, adrs)
	nodeADRS := *adrs
	nodeADRS.setTreeHeight(height)
	nodeADRS.setTreeIndex(idx)
	c.thashInto(dst, pkSeed, &nodeADRS, left, right)
}

// forsIndices splits the message digest into k a-bit indices.
func (p *Params) forsIndices(md []byte) []uint32 {
	idx := make([]uint32, p.K)
	bit := 0
	for i := 0; i < p.K; i++ {
		v := uint32(0)
		for j := 0; j < p.A; j++ {
			v = v<<1 | uint32(md[bit/8]>>(7-bit%8)&1)
			bit++
		}
		idx[i] = v
	}
	return idx
}

// forsSignInto writes the FORS part of the signature into dst
// (len k·(a+1)·n).
func (c *hctx) forsSignInto(dst, md, skSeed, pkSeed []byte, adrs *address) {
	p := c.p
	indices := p.forsIndices(md)
	off := 0
	for i, idx := range indices {
		treeOff := uint32(i) << p.A
		skADRS := *adrs
		skADRS.setType(adrsFORSPRF)
		skADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
		skADRS.setTreeIndex(treeOff + idx)
		c.prfInto(dst[off:off+p.N], pkSeed, skSeed, &skADRS)
		off += p.N
		for h := uint32(0); h < uint32(p.A); h++ {
			sibling := (treeOff>>h + idx>>h) ^ 1
			// Note: tree i occupies indices [i*2^a, (i+1)*2^a) at height 0;
			// at height h its nodes start at (i*2^a)>>h.
			c.forsNodeInto(dst[off:off+p.N], skSeed, pkSeed, sibling, h, adrs)
			off += p.N
		}
	}
}

// forsPKFromSigInto recomputes the FORS public key from a signature into
// dst (len n).
func (c *hctx) forsPKFromSigInto(dst, sig, md, pkSeed []byte, adrs *address) {
	p := c.p
	indices := p.forsIndices(md)
	roots := c.roots
	off := 0
	for i, idx := range indices {
		treeOff := uint32(i) << p.A
		sk := sig[off : off+p.N]
		off += p.N
		leafADRS := *adrs
		leafADRS.setTreeHeight(0)
		leafADRS.setTreeIndex(treeOff + idx)
		node := roots[i*p.N : (i+1)*p.N]
		c.thashInto(node, pkSeed, &leafADRS, sk)
		pos := treeOff + idx
		for h := 0; h < p.A; h++ {
			sib := sig[off : off+p.N]
			off += p.N
			nodeADRS := *adrs
			nodeADRS.setTreeHeight(uint32(h + 1))
			nodeADRS.setTreeIndex(pos >> (h + 1))
			if pos>>h&1 == 0 {
				c.thashInto(node, pkSeed, &nodeADRS, node, sib)
			} else {
				c.thashInto(node, pkSeed, &nodeADRS, sib, node)
			}
		}
	}
	pkADRS := *adrs
	pkADRS.setType(adrsFORSRoots)
	pkADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
	c.thashInto(dst, pkSeed, &pkADRS, roots)
}

// GenerateKey creates a key pair from rng (crypto/rand if nil).
func (p *Params) GenerateKey(rng io.Reader) (pk, sk []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	seeds := make([]byte, 3*p.N) // SK.seed || SK.prf || PK.seed
	if _, err := io.ReadFull(rng, seeds); err != nil {
		return nil, nil, fmt.Errorf("sphincs: reading key seed: %w", err)
	}
	skSeed, pkSeed := seeds[:p.N], seeds[2*p.N:]
	var adrs address
	adrs.setLayer(uint32(p.D - 1))
	c := p.getCtx()
	defer putCtx(c)
	var root [sha256.Size]byte
	c.xmssNodeInto(root[:p.N], skSeed, pkSeed, 0, uint32(p.hPrime()), &adrs)
	pk = append(append([]byte{}, pkSeed...), root[:p.N]...)
	sk = append(append([]byte{}, seeds...), root[:p.N]...)
	return pk, sk, nil
}

// Sign produces a SPHINCS+ signature over msg.
func (p *Params) Sign(sk, msg []byte) ([]byte, error) {
	if len(sk) != p.PrivateKeySize() {
		return nil, fmt.Errorf("sphincs: private key is %d bytes, want %d", len(sk), p.PrivateKeySize())
	}
	skSeed, skPRF := sk[:p.N], sk[p.N:2*p.N]
	pkSeed, pkRoot := sk[2*p.N:3*p.N], sk[3*p.N:]

	r := p.prfMsg(skPRF, pkSeed, msg) // deterministic: optRand = PK.seed
	md, treeIdx, leafIdx := p.hashMsg(r, pkSeed, pkRoot, msg)

	c := p.getCtx()
	defer putCtx(c)

	sig := make([]byte, p.SignatureSize())
	copy(sig, r)

	var adrs address
	adrs.setLayer(0)
	adrs.setTree(treeIdx)
	adrs.setType(adrsFORSTree)
	adrs.setKeyPair(leafIdx)
	forsLen := p.K * (p.A + 1) * p.N
	c.forsSignInto(sig[p.N:p.N+forsLen], md, skSeed, pkSeed, &adrs)
	var node [sha256.Size]byte
	c.forsPKFromSigInto(node[:p.N], sig[p.N:p.N+forsLen], md, pkSeed, &adrs)

	// Hypertree signature over the FORS public key.
	c.htSignInto(sig[p.N+forsLen:], node[:p.N], skSeed, pkSeed, treeIdx, leafIdx)
	return sig, nil
}

// htSignInto signs root through the hypertree layers into dst
// (len d·(wotsLen+h')·n).
func (c *hctx) htSignInto(dst, msg, skSeed, pkSeed []byte, treeIdx uint64, leafIdx uint32) {
	p := c.p
	var node [sha256.Size]byte
	copy(node[:p.N], msg)
	idx := leafIdx
	tree := treeIdx
	xmssLen := (p.wotsLen() + p.hPrime()) * p.N
	off := 0
	for layer := 0; layer < p.D; layer++ {
		var adrs address
		adrs.setLayer(uint32(layer))
		adrs.setTree(tree)
		part := dst[off : off+xmssLen]
		c.xmssSignInto(part, node[:p.N], skSeed, pkSeed, idx, &adrs)
		c.xmssPKFromSigInto(node[:p.N], idx, part, node[:p.N], pkSeed, &adrs)
		off += xmssLen
		idx = uint32(tree & uint64(1<<p.hPrime()-1))
		tree >>= p.hPrime()
	}
}

// Verify reports whether sig is a valid signature of msg under pk.
func (p *Params) Verify(pk, msg, sig []byte) bool {
	if len(pk) != p.PublicKeySize() || len(sig) != p.SignatureSize() {
		return false
	}
	pkSeed, pkRoot := pk[:p.N], pk[p.N:]
	r := sig[:p.N]
	md, treeIdx, leafIdx := p.hashMsg(r, pkSeed, pkRoot, msg)

	c := p.getCtx()
	defer putCtx(c)

	var adrs address
	adrs.setLayer(0)
	adrs.setTree(treeIdx)
	adrs.setType(adrsFORSTree)
	adrs.setKeyPair(leafIdx)
	forsLen := p.K * (p.A + 1) * p.N
	var node [sha256.Size]byte
	c.forsPKFromSigInto(node[:p.N], sig[p.N:p.N+forsLen], md, pkSeed, &adrs)

	off := p.N + forsLen
	xmssLen := (p.wotsLen() + p.hPrime()) * p.N
	idx := leafIdx
	tree := treeIdx
	for layer := 0; layer < p.D; layer++ {
		var ta address
		ta.setLayer(uint32(layer))
		ta.setTree(tree)
		c.xmssPKFromSigInto(node[:p.N], idx, sig[off:off+xmssLen], node[:p.N], pkSeed, &ta)
		off += xmssLen
		idx = uint32(tree & uint64(1<<p.hPrime()-1))
		tree >>= p.hPrime()
	}
	return subtle.ConstantTimeCompare(node[:p.N], pkRoot) == 1
}

// ErrBadKey reports malformed key material.
var ErrBadKey = errors.New("sphincs: malformed key material")
