// Package sphincs implements the SPHINCS+ stateless hash-based signature
// scheme (round-3 structure: FORS + WOTS+ hypertree) with the SHA-256
// "simple" tweakable hash construction, for the three fast ("f") parameter
// sets the paper benchmarks as sphincs128/192/256.
//
// Substitution note (see DESIGN.md): the paper uses the haraka-f-simple
// instantiation, whose speed depends on AES-NI; we instantiate the identical
// structure with SHA-256. Signature and key sizes are exactly those of the
// corresponding sha256-f-simple sets, and the scheme remains hash-bound and
// orders of magnitude slower than the lattice signatures — the behaviour the
// paper reports.
package sphincs

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Params describes one SPHINCS+ parameter set.
type Params struct {
	Name string
	N    int // hash output bytes
	H    int // hypertree height
	D    int // hypertree layers
	A    int // FORS tree height
	K    int // number of FORS trees
	// WOTS+ uses w=16 throughout; len1 = 2n, len2 = 3, len = len1+len2.
}

// The three fast ("f") parameter sets the paper's tables use, plus the
// small ("s") sets: the artifact's all-sphincs experiment sweeps variants
// to pick the fastest, trading signature size against signing time.
var (
	SPHINCS128f = &Params{Name: "sphincs128", N: 16, H: 66, D: 22, A: 6, K: 33}
	SPHINCS192f = &Params{Name: "sphincs192", N: 24, H: 66, D: 22, A: 8, K: 33}
	SPHINCS256f = &Params{Name: "sphincs256", N: 32, H: 68, D: 17, A: 9, K: 35}
	SPHINCS128s = &Params{Name: "sphincs128s", N: 16, H: 63, D: 7, A: 12, K: 14}
	SPHINCS192s = &Params{Name: "sphincs192s", N: 24, H: 63, D: 7, A: 14, K: 17}
	SPHINCS256s = &Params{Name: "sphincs256s", N: 32, H: 64, D: 8, A: 14, K: 22}
)

const wotsW = 16

func (p *Params) len1() int    { return 2 * p.N }
func (p *Params) len2() int    { return 3 }
func (p *Params) wotsLen() int { return p.len1() + p.len2() }
func (p *Params) hPrime() int  { return p.H / p.D }

// PublicKeySize returns the public-key length (PK.seed || PK.root).
func (p *Params) PublicKeySize() int { return 2 * p.N }

// PrivateKeySize returns the private-key length (SK.seed || SK.prf || PK).
func (p *Params) PrivateKeySize() int { return 4 * p.N }

// SignatureSize returns the signature length (R || FORS || HT).
func (p *Params) SignatureSize() int {
	return p.N * (1 + p.K*(p.A+1) + p.D*(p.wotsLen()+p.hPrime()))
}

// address is the 32-byte hash-domain separator of SPHINCS+.
type address [32]byte

// Address word types.
const (
	adrsWOTSHash  = 0
	adrsWOTSPK    = 1
	adrsTree      = 2
	adrsFORSTree  = 3
	adrsFORSRoots = 4
	adrsWOTSPRF   = 5
	adrsFORSPRF   = 6
)

func (a *address) setLayer(l uint32) { binary.BigEndian.PutUint32(a[0:], l) }
func (a *address) setTree(t uint64)  { binary.BigEndian.PutUint64(a[8:], t) }
func (a *address) setType(t uint32) {
	binary.BigEndian.PutUint32(a[16:], t)
	for i := 20; i < 32; i++ {
		a[i] = 0
	}
}
func (a *address) setKeyPair(k uint32)    { binary.BigEndian.PutUint32(a[20:], k) }
func (a *address) setChain(c uint32)      { binary.BigEndian.PutUint32(a[24:], c) }
func (a *address) setHash(h uint32)       { binary.BigEndian.PutUint32(a[28:], h) }
func (a *address) setTreeHeight(h uint32) { binary.BigEndian.PutUint32(a[24:], h) }
func (a *address) setTreeIndex(i uint32)  { binary.BigEndian.PutUint32(a[28:], i) }

// compressed returns the 22-byte SHA-256 address encoding.
func (a *address) compressed() [22]byte {
	var c [22]byte
	c[0] = a[3]           // layer
	copy(c[1:9], a[8:16]) // tree (low 8 bytes)
	c[9] = a[19]          // type
	copy(c[10:22], a[20:32])
	return c
}

// thash is the "simple" tweakable hash: SHA-256(PK.seed || ADRSc || M)[:n].
func (p *Params) thash(pkSeed []byte, adrs *address, msg ...[]byte) []byte {
	h := sha256.New()
	h.Write(pkSeed)
	c := adrs.compressed()
	h.Write(c[:])
	for _, m := range msg {
		h.Write(m)
	}
	return h.Sum(nil)[:p.N]
}

// prf derives secret chain/leaf values: SHA-256(PK.seed || ADRSc || SK.seed).
func (p *Params) prf(pkSeed, skSeed []byte, adrs *address) []byte {
	h := sha256.New()
	h.Write(pkSeed)
	c := adrs.compressed()
	h.Write(c[:])
	h.Write(skSeed)
	return h.Sum(nil)[:p.N]
}

// prfMsg computes the randomizer R = HMAC-SHA256(SK.prf, optRand || M)[:n].
func (p *Params) prfMsg(skPRF, optRand, msg []byte) []byte {
	m := hmac.New(sha256.New, skPRF)
	m.Write(optRand)
	m.Write(msg)
	return m.Sum(nil)[:p.N]
}

// hashMsg expands (R, PK, M) into the FORS digest and tree/leaf indices.
func (p *Params) hashMsg(r, pkSeed, pkRoot, msg []byte) (md []byte, treeIdx uint64, leafIdx uint32) {
	seed := sha256.New()
	seed.Write(r)
	seed.Write(pkSeed)
	seed.Write(pkRoot)
	seed.Write(msg)
	digest := seed.Sum(nil)

	mdLen := (p.K*p.A + 7) / 8
	treeBits := p.H - p.hPrime()
	treeLen := (treeBits + 7) / 8
	leafLen := (p.hPrime() + 7) / 8
	out := mgf1(append(append([]byte{}, r...), digest...), mdLen+treeLen+leafLen)

	md = out[:mdLen]
	var tb [8]byte
	copy(tb[8-treeLen:], out[mdLen:mdLen+treeLen])
	treeIdx = binary.BigEndian.Uint64(tb[:])
	if treeBits < 64 {
		treeIdx &= 1<<treeBits - 1
	}
	var lb [4]byte
	copy(lb[4-leafLen:], out[mdLen+treeLen:])
	leafIdx = binary.BigEndian.Uint32(lb[:]) & (1<<p.hPrime() - 1)
	return md, treeIdx, leafIdx
}

// mgf1 is the MGF1-SHA256 mask generation function.
func mgf1(seed []byte, outLen int) []byte {
	var out []byte
	var ctr [4]byte
	for i := uint32(0); len(out) < outLen; i++ {
		binary.BigEndian.PutUint32(ctr[:], i)
		h := sha256.Sum256(append(append([]byte{}, seed...), ctr[:]...))
		out = append(out, h[:]...)
	}
	return out[:outLen]
}

// chain applies the WOTS+ chaining function count times starting at index
// start.
func (p *Params) chain(x []byte, start, count int, pkSeed []byte, adrs *address) []byte {
	out := x
	for i := start; i < start+count; i++ {
		adrs.setHash(uint32(i))
		out = p.thash(pkSeed, adrs, out)
	}
	return out
}

// baseW converts msg into outLen base-16 digits.
func baseW(msg []byte, outLen int) []int {
	out := make([]int, 0, outLen)
	for _, b := range msg {
		out = append(out, int(b>>4), int(b&0x0F))
		if len(out) >= outLen {
			break
		}
	}
	return out[:outLen]
}

// wotsDigits maps an n-byte message to len digits including the checksum.
func (p *Params) wotsDigits(msg []byte) []int {
	digits := baseW(msg, p.len1())
	csum := 0
	for _, d := range digits {
		csum += wotsW - 1 - d
	}
	// Checksum in len2 big-endian base-w digits (12 bits is enough for all sets).
	csum <<= 4 // left-shift so the top bits align as in the spec
	csBytes := []byte{byte(csum >> 8), byte(csum)}
	digits = append(digits, baseW(csBytes, p.len2())...)
	return digits
}

// wotsPKFromSig recomputes the WOTS+ public key implied by a signature.
func (p *Params) wotsPKFromSig(sig, msg, pkSeed []byte, adrs *address) []byte {
	digits := p.wotsDigits(msg)
	tmp := make([]byte, 0, p.wotsLen()*p.N)
	for i, d := range digits {
		adrs.setChain(uint32(i))
		part := p.chain(sig[i*p.N:(i+1)*p.N], d, wotsW-1-d, pkSeed, adrs)
		tmp = append(tmp, part...)
	}
	wotspkADRS := *adrs
	wotspkADRS.setType(adrsWOTSPK)
	wotspkADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
	return p.thash(pkSeed, &wotspkADRS, tmp)
}

// wotsSign signs an n-byte message, returning len*n bytes.
func (p *Params) wotsSign(msg, skSeed, pkSeed []byte, adrs *address) []byte {
	digits := p.wotsDigits(msg)
	sig := make([]byte, 0, p.wotsLen()*p.N)
	for i, d := range digits {
		skADRS := *adrs
		skADRS.setType(adrsWOTSPRF)
		skADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
		skADRS.setChain(uint32(i))
		sk := p.prf(pkSeed, skSeed, &skADRS)
		adrs.setChain(uint32(i))
		sig = append(sig, p.chain(sk, 0, d, pkSeed, adrs)...)
	}
	return sig
}

// wotsPKGen computes a WOTS+ public key (the compressed root value).
func (p *Params) wotsPKGen(skSeed, pkSeed []byte, adrs *address) []byte {
	tmp := make([]byte, 0, p.wotsLen()*p.N)
	for i := 0; i < p.wotsLen(); i++ {
		skADRS := *adrs
		skADRS.setType(adrsWOTSPRF)
		skADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
		skADRS.setChain(uint32(i))
		sk := p.prf(pkSeed, skSeed, &skADRS)
		adrs.setChain(uint32(i))
		tmp = append(tmp, p.chain(sk, 0, wotsW-1, pkSeed, adrs)...)
	}
	wotspkADRS := *adrs
	wotspkADRS.setType(adrsWOTSPK)
	wotspkADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
	return p.thash(pkSeed, &wotspkADRS, tmp)
}

// xmssNode computes the node at (height, index) of an XMSS subtree.
func (p *Params) xmssNode(skSeed, pkSeed []byte, idx, height uint32, adrs *address) []byte {
	if height == 0 {
		wotsADRS := *adrs
		wotsADRS.setType(adrsWOTSHash)
		wotsADRS.setKeyPair(idx)
		return p.wotsPKGen(skSeed, pkSeed, &wotsADRS)
	}
	left := p.xmssNode(skSeed, pkSeed, 2*idx, height-1, adrs)
	right := p.xmssNode(skSeed, pkSeed, 2*idx+1, height-1, adrs)
	nodeADRS := *adrs
	nodeADRS.setType(adrsTree)
	nodeADRS.setTreeHeight(height)
	nodeADRS.setTreeIndex(idx)
	return p.thash(pkSeed, &nodeADRS, left, right)
}

// xmssSign produces a WOTS+ signature plus authentication path for leaf idx.
func (p *Params) xmssSign(msg, skSeed, pkSeed []byte, idx uint32, adrs *address) []byte {
	sig := make([]byte, 0, (p.wotsLen()+p.hPrime())*p.N)
	wotsADRS := *adrs
	wotsADRS.setType(adrsWOTSHash)
	wotsADRS.setKeyPair(idx)
	sig = append(sig, p.wotsSign(msg, skSeed, pkSeed, &wotsADRS)...)
	for h := uint32(0); h < uint32(p.hPrime()); h++ {
		sibling := (idx >> h) ^ 1
		sig = append(sig, p.xmssNode(skSeed, pkSeed, sibling, h, adrs)...)
	}
	return sig
}

// xmssPKFromSig recomputes the subtree root from a leaf signature.
func (p *Params) xmssPKFromSig(idx uint32, sig, msg, pkSeed []byte, adrs *address) []byte {
	wotsADRS := *adrs
	wotsADRS.setType(adrsWOTSHash)
	wotsADRS.setKeyPair(idx)
	node := p.wotsPKFromSig(sig[:p.wotsLen()*p.N], msg, pkSeed, &wotsADRS)
	auth := sig[p.wotsLen()*p.N:]
	nodeADRS := *adrs
	nodeADRS.setType(adrsTree)
	for h := 0; h < p.hPrime(); h++ {
		nodeADRS.setTreeHeight(uint32(h + 1))
		nodeADRS.setTreeIndex(idx >> (h + 1))
		sib := auth[h*p.N : (h+1)*p.N]
		if idx>>h&1 == 0 {
			node = p.thash(pkSeed, &nodeADRS, node, sib)
		} else {
			node = p.thash(pkSeed, &nodeADRS, sib, node)
		}
	}
	return node
}

// forsNode computes a FORS tree node.
func (p *Params) forsNode(skSeed, pkSeed []byte, idx, height uint32, adrs *address) []byte {
	if height == 0 {
		skADRS := *adrs
		skADRS.setType(adrsFORSPRF)
		skADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
		skADRS.setTreeIndex(idx)
		sk := p.prf(pkSeed, skSeed, &skADRS)
		leafADRS := *adrs
		leafADRS.setTreeHeight(0)
		leafADRS.setTreeIndex(idx)
		return p.thash(pkSeed, &leafADRS, sk)
	}
	left := p.forsNode(skSeed, pkSeed, 2*idx, height-1, adrs)
	right := p.forsNode(skSeed, pkSeed, 2*idx+1, height-1, adrs)
	nodeADRS := *adrs
	nodeADRS.setTreeHeight(height)
	nodeADRS.setTreeIndex(idx)
	return p.thash(pkSeed, &nodeADRS, left, right)
}

// forsIndices splits the message digest into k a-bit indices.
func (p *Params) forsIndices(md []byte) []uint32 {
	idx := make([]uint32, p.K)
	bit := 0
	for i := 0; i < p.K; i++ {
		v := uint32(0)
		for j := 0; j < p.A; j++ {
			v = v<<1 | uint32(md[bit/8]>>(7-bit%8)&1)
			bit++
		}
		idx[i] = v
	}
	return idx
}

// forsSign produces the FORS part of the signature.
func (p *Params) forsSign(md, skSeed, pkSeed []byte, adrs *address) []byte {
	indices := p.forsIndices(md)
	sig := make([]byte, 0, p.K*(p.A+1)*p.N)
	for i, idx := range indices {
		treeOff := uint32(i) << p.A
		skADRS := *adrs
		skADRS.setType(adrsFORSPRF)
		skADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
		skADRS.setTreeIndex(treeOff + idx)
		sig = append(sig, p.prf(pkSeed, skSeed, &skADRS)...)
		for h := uint32(0); h < uint32(p.A); h++ {
			sibling := (treeOff>>h + idx>>h) ^ 1
			// Note: tree i occupies indices [i*2^a, (i+1)*2^a) at height 0;
			// at height h its nodes start at (i*2^a)>>h.
			sig = append(sig, p.forsNode(skSeed, pkSeed, sibling, h, adrs)...)
		}
	}
	return sig
}

// forsPKFromSig recomputes the FORS public key from a signature.
func (p *Params) forsPKFromSig(sig, md, pkSeed []byte, adrs *address) []byte {
	indices := p.forsIndices(md)
	roots := make([]byte, 0, p.K*p.N)
	off := 0
	for i, idx := range indices {
		treeOff := uint32(i) << p.A
		sk := sig[off : off+p.N]
		off += p.N
		leafADRS := *adrs
		leafADRS.setTreeHeight(0)
		leafADRS.setTreeIndex(treeOff + idx)
		node := p.thash(pkSeed, &leafADRS, sk)
		pos := treeOff + idx
		for h := 0; h < p.A; h++ {
			sib := sig[off : off+p.N]
			off += p.N
			nodeADRS := *adrs
			nodeADRS.setTreeHeight(uint32(h + 1))
			nodeADRS.setTreeIndex(pos >> (h + 1))
			if pos>>h&1 == 0 {
				node = p.thash(pkSeed, &nodeADRS, node, sib)
			} else {
				node = p.thash(pkSeed, &nodeADRS, sib, node)
			}
		}
		roots = append(roots, node...)
	}
	pkADRS := *adrs
	pkADRS.setType(adrsFORSRoots)
	pkADRS.setKeyPair(binary.BigEndian.Uint32(adrs[20:]))
	return p.thash(pkSeed, &pkADRS, roots)
}

// GenerateKey creates a key pair from rng (crypto/rand if nil).
func (p *Params) GenerateKey(rng io.Reader) (pk, sk []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	seeds := make([]byte, 3*p.N) // SK.seed || SK.prf || PK.seed
	if _, err := io.ReadFull(rng, seeds); err != nil {
		return nil, nil, fmt.Errorf("sphincs: reading key seed: %w", err)
	}
	skSeed, pkSeed := seeds[:p.N], seeds[2*p.N:]
	var adrs address
	adrs.setLayer(uint32(p.D - 1))
	root := p.xmssNode(skSeed, pkSeed, 0, uint32(p.hPrime()), &adrs)
	pk = append(append([]byte{}, pkSeed...), root...)
	sk = append(append([]byte{}, seeds...), root...)
	return pk, sk, nil
}

// Sign produces a SPHINCS+ signature over msg.
func (p *Params) Sign(sk, msg []byte) ([]byte, error) {
	if len(sk) != p.PrivateKeySize() {
		return nil, fmt.Errorf("sphincs: private key is %d bytes, want %d", len(sk), p.PrivateKeySize())
	}
	skSeed, skPRF := sk[:p.N], sk[p.N:2*p.N]
	pkSeed, pkRoot := sk[2*p.N:3*p.N], sk[3*p.N:]

	r := p.prfMsg(skPRF, pkSeed, msg) // deterministic: optRand = PK.seed
	md, treeIdx, leafIdx := p.hashMsg(r, pkSeed, pkRoot, msg)

	sig := make([]byte, 0, p.SignatureSize())
	sig = append(sig, r...)

	var adrs address
	adrs.setLayer(0)
	adrs.setTree(treeIdx)
	adrs.setType(adrsFORSTree)
	adrs.setKeyPair(leafIdx)
	sig = append(sig, p.forsSign(md, skSeed, pkSeed, &adrs)...)
	node := p.forsPKFromSig(sig[p.N:], md, pkSeed, &adrs)

	// Hypertree signature over the FORS public key.
	sig = append(sig, p.htSign(node, skSeed, pkSeed, treeIdx, leafIdx)...)
	return sig, nil
}

// htSign signs root through the hypertree layers.
func (p *Params) htSign(msg, skSeed, pkSeed []byte, treeIdx uint64, leafIdx uint32) []byte {
	sig := make([]byte, 0, p.D*(p.wotsLen()+p.hPrime())*p.N)
	node := msg
	idx := leafIdx
	tree := treeIdx
	for layer := 0; layer < p.D; layer++ {
		var adrs address
		adrs.setLayer(uint32(layer))
		adrs.setTree(tree)
		part := p.xmssSign(node, skSeed, pkSeed, idx, &adrs)
		sig = append(sig, part...)
		node = p.xmssPKFromSig(idx, part, node, pkSeed, &adrs)
		idx = uint32(tree & uint64(1<<p.hPrime()-1))
		tree >>= p.hPrime()
	}
	return sig
}

// Verify reports whether sig is a valid signature of msg under pk.
func (p *Params) Verify(pk, msg, sig []byte) bool {
	if len(pk) != p.PublicKeySize() || len(sig) != p.SignatureSize() {
		return false
	}
	pkSeed, pkRoot := pk[:p.N], pk[p.N:]
	r := sig[:p.N]
	md, treeIdx, leafIdx := p.hashMsg(r, pkSeed, pkRoot, msg)

	var adrs address
	adrs.setLayer(0)
	adrs.setTree(treeIdx)
	adrs.setType(adrsFORSTree)
	adrs.setKeyPair(leafIdx)
	forsLen := p.K * (p.A + 1) * p.N
	node := p.forsPKFromSig(sig[p.N:p.N+forsLen], md, pkSeed, &adrs)

	off := p.N + forsLen
	xmssLen := (p.wotsLen() + p.hPrime()) * p.N
	idx := leafIdx
	tree := treeIdx
	for layer := 0; layer < p.D; layer++ {
		var ta address
		ta.setLayer(uint32(layer))
		ta.setTree(tree)
		node = p.xmssPKFromSig(idx, sig[off:off+xmssLen], node, pkSeed, &ta)
		off += xmssLen
		idx = uint32(tree & uint64(1<<p.hPrime()-1))
		tree >>= p.hPrime()
	}
	return subtle.ConstantTimeCompare(node, pkRoot) == 1
}

// ErrBadKey reports malformed key material.
var ErrBadKey = errors.New("sphincs: malformed key material")
