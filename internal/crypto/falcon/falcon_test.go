package falcon

import (
	"bytes"
	"testing"
)

func TestNTTRoundtrip(t *testing.T) {
	t.Parallel()
	for _, p := range []*Params{Falcon512, Falcon1024} {
		v := make([]int32, p.N)
		s := int64(1)
		for i := range v {
			s = s*6364136223846793005 + 1442695040888963407
			v[i] = int32(uint64(s) >> 40 % Q)
		}
		orig := append([]int32{}, v...)
		nttN(v, p.LogN)
		invNTTN(v, p.LogN)
		for i := range v {
			if v[i] != orig[i] {
				t.Fatalf("%s: NTT roundtrip differs at %d", p.Name, i)
			}
		}
	}
}

// NTT multiplication must match schoolbook multiplication in the negacyclic
// ring (x^n = -1).
func TestNTTMulMatchesSchoolbook(t *testing.T) {
	t.Parallel()
	p := Falcon512
	a := make([]int32, p.N)
	b := make([]int32, p.N)
	for i := range a {
		a[i] = int32((i*31 + 5) % Q)
		b[i] = int32((i*77 + 1) % Q)
	}
	want := make([]int64, p.N)
	for i := range a {
		for j := range b {
			prod := int64(a[i]) * int64(b[j]) % Q
			k := i + j
			if k >= p.N {
				k -= p.N
				prod = Q - prod
			}
			want[k] = (want[k] + prod) % Q
		}
	}
	na := append([]int32{}, a...)
	nb := append([]int32{}, b...)
	nttN(na, p.LogN)
	nttN(nb, p.LogN)
	got := make([]int32, p.N)
	for i := range got {
		got[i] = fqmul(na[i], nb[i])
	}
	invNTTN(got, p.LogN)
	for i := range got {
		if int64(got[i]) != want[i]%Q {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestSizes(t *testing.T) {
	t.Parallel()
	// These are real Falcon's exact wire sizes; Table 2b's data volumes
	// depend on them.
	if Falcon512.PublicKeySize() != 897 || Falcon512.SignatureSize() != 666 {
		t.Errorf("falcon512 sizes: pk=%d sig=%d", Falcon512.PublicKeySize(), Falcon512.SignatureSize())
	}
	if Falcon1024.PublicKeySize() != 1793 || Falcon1024.SignatureSize() != 1280 {
		t.Errorf("falcon1024 sizes: pk=%d sig=%d", Falcon1024.PublicKeySize(), Falcon1024.SignatureSize())
	}
}

func TestSignVerify(t *testing.T) {
	t.Parallel()
	for _, p := range []*Params{Falcon512, Falcon1024} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			pk, sk, err := p.GenerateKey(nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(pk) != p.PublicKeySize() || len(sk) != p.PrivateKeySize() {
				t.Fatalf("key sizes pk=%d sk=%d", len(pk), len(sk))
			}
			msg := []byte("CertificateVerify payload")
			sig, err := p.Sign(sk, msg)
			if err != nil {
				t.Fatal(err)
			}
			if len(sig) != p.SignatureSize() {
				t.Fatalf("sig size %d, want %d", len(sig), p.SignatureSize())
			}
			if !p.Verify(pk, msg, sig) {
				t.Fatal("valid signature rejected")
			}
			if p.Verify(pk, []byte("wrong message"), sig) {
				t.Error("signature verified for wrong message")
			}
		})
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	t.Parallel()
	p := Falcon512
	pk, sk, _ := p.GenerateKey(nil)
	msg := []byte("m")
	sig, err := p.Sign(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 1, 30, 400, 664} {
		bad := bytes.Clone(sig)
		bad[pos] ^= 0x08
		if p.Verify(pk, msg, bad) {
			t.Errorf("tampered signature (byte %d) accepted", pos)
		}
	}
	// Non-zero padding must be rejected.
	bad := bytes.Clone(sig)
	bad[len(bad)-1] = 0x01
	if p.Verify(pk, msg, bad) {
		t.Error("signature with non-zero padding accepted")
	}
}

func TestWrongKeyRejected(t *testing.T) {
	t.Parallel()
	p := Falcon512
	pk1, _, _ := p.GenerateKey(nil)
	_, sk2, _ := p.GenerateKey(nil)
	sig, err := p.Sign(sk2, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Verify(pk1, []byte("m"), sig) {
		t.Error("signature verified under unrelated key")
	}
}

func TestManySignatures(t *testing.T) {
	t.Parallel()
	// The abort loop must terminate quickly and always produce verifiable
	// signatures across many messages.
	p := Falcon512
	pk, sk, _ := p.GenerateKey(nil)
	for i := 0; i < 25; i++ {
		msg := []byte{byte(i), byte(i >> 8), 0xAA}
		sig, err := p.Sign(sk, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Verify(pk, msg, sig) {
			t.Fatalf("signature %d rejected", i)
		}
	}
}

func TestHighBitsRange(t *testing.T) {
	t.Parallel()
	for r := int32(0); r < Q; r++ {
		h := highBits(r)
		if h < 0 || h > 3 {
			t.Fatalf("highBits(%d) = %d out of range", r, h)
		}
	}
}

func benchFalcon(b *testing.B, p *Params) {
	pk, sk, _ := p.GenerateKey(nil)
	msg := make([]byte, 64)
	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Sign(sk, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	sig, _ := p.Sign(sk, msg)
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !p.Verify(pk, msg, sig) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkFalcon512(b *testing.B)  { benchFalcon(b, Falcon512) }
func BenchmarkFalcon1024(b *testing.B) { benchFalcon(b, Falcon1024) }
