// Package falcon implements a Falcon-shaped lattice signature over the
// Falcon ring Z_q[x]/(x^n+1), q = 12289, for the two parameter sets the
// paper benchmarks as falcon512 and falcon1024.
//
// Substitution note (see DESIGN.md): FIPS-206 Falcon signs with an NTRU
// trapdoor and fast-Fourier Gaussian sampling, which are out of scope for
// this reproduction. This package substitutes a Fiat-Shamir-with-aborts
// signature (Dilithium-style, without hints) over the *same ring*, emitting
// public keys and padded signatures with the *exact* Falcon wire sizes
// (897/1793-byte keys, 666/1280-byte signatures). The computational profile
// is NTT-dominated like real Falcon. It is a real, publicly verifiable
// signature scheme, but its concrete security is far below Falcon's —
// suitable for performance reproduction only.
package falcon

import (
	"crypto/rand"
	"crypto/subtle"
	"fmt"
	"io"

	"pqtls/internal/crypto/sha3"
)

const (
	// Q is the Falcon modulus.
	Q = 12289
	// gamma2 defines the high/low split; alpha = 2*gamma2 divides Q-1.
	gamma2 = 1536
	alpha  = 2 * gamma2
	// cSeedSize is the challenge-seed length carried in the signature
	// (standing in for Falcon's salt).
	cSeedSize = 24
	seedSize  = 32
)

// Params describes one parameter set.
type Params struct {
	Name   string
	N      int   // ring degree (512 or 1024)
	LogN   uint  // log2(N)
	Gamma1 int32 // z coefficient range: z in [-(gamma1-1), gamma1]
	ZBits  uint  // bits per packed z coefficient
	Tau    int   // challenge weight

	SigSize int // padded signature size (Falcon's exact wire size)
	PKSize  int // public key size (Falcon's exact wire size)
	SKSize  int // private key size (Falcon's exact wire size, zero padded)
}

// The two parameter sets.
var (
	Falcon512 = &Params{Name: "falcon512", N: 512, LogN: 9,
		Gamma1: 512, ZBits: 10, Tau: 3, SigSize: 666, PKSize: 897, SKSize: 1281}
	Falcon1024 = &Params{Name: "falcon1024", N: 1024, LogN: 10,
		Gamma1: 256, ZBits: 9, Tau: 2, SigSize: 1280, PKSize: 1793, SKSize: 2305}
)

// PublicKeySize returns the public-key length in bytes.
func (p *Params) PublicKeySize() int { return p.PKSize }

// PrivateKeySize returns the private-key length in bytes.
func (p *Params) PrivateKeySize() int { return p.SKSize }

// SignatureSize returns the (padded, fixed) signature length in bytes.
func (p *Params) SignatureSize() int { return p.SigSize }

// aHat returns the fixed public ring element a (NTT domain), derived from a
// system-wide seed — playing the role of a standardized group parameter so
// the public key can be exactly t (Falcon's h occupies the same 14-bit/coeff
// encoding).
func (p *Params) aHat() []int32 {
	aOnce.mu.RLock()
	a, ok := aOnce.m[p.N]
	aOnce.mu.RUnlock()
	if ok {
		return a
	}
	aOnce.mu.Lock()
	defer aOnce.mu.Unlock()
	if a, ok := aOnce.m[p.N]; ok {
		return a
	}
	x := sha3.NewShake128()
	defer sha3.PutXOF(x)
	x.Write([]byte("PQTLS-FALCON-A"))
	x.Write([]byte{byte(p.LogN)})
	a = make([]int32, p.N)
	var buf [2]byte
	for i := 0; i < p.N; {
		x.Read(buf[:])
		v := int32(buf[0]) | int32(buf[1])<<8
		if v&0x3FFF < Q { // 14-bit rejection
			a[i] = v & 0x3FFF
			i++
		}
	}
	aOnce.m[p.N] = a
	return a
}

// GenerateKey creates a key pair from rng (crypto/rand if nil).
func (p *Params) GenerateKey(rng io.Reader) (pk, sk []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	var seed [seedSize]byte
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, nil, fmt.Errorf("falcon: reading key seed: %w", err)
	}
	pk, sk = p.deriveKey(seed)
	return pk, sk, nil
}

func (p *Params) deriveKey(seed [seedSize]byte) (pk, sk []byte) {
	s1, s2 := p.expandSecret(seed[:])
	a := p.aHat()
	// t = a*s1 + s2.
	s1h := make([]int32, p.N)
	copy(s1h, s1)
	nttN(s1h, p.LogN)
	t := make([]int32, p.N)
	for i := range t {
		t[i] = fqmul(a[i], s1h[i])
	}
	invNTTN(t, p.LogN)
	for i := range t {
		t[i] = freduce(t[i] + s2[i])
	}

	pk = make([]byte, 1, p.PKSize)
	pk[0] = byte(p.LogN) // Falcon's public-key header byte: 0x00 + logn
	pk = append(pk, packCoeffs(t, 14)...)

	sk = make([]byte, p.SKSize)
	sk[0] = 0x50 | byte(p.LogN)
	copy(sk[1:], seed[:])
	copy(sk[1+seedSize:], pk)
	return pk, sk
}

// expandSecret derives the ternary secret polynomials from the seed.
func (p *Params) expandSecret(seed []byte) (s1, s2 []int32) {
	x := sha3.NewShake256()
	defer sha3.PutXOF(x)
	x.Write([]byte("PQTLS-FALCON-S"))
	x.Write(seed)
	sample := func() []int32 {
		out := make([]int32, p.N)
		var b [1]byte
		for i := 0; i < p.N; {
			x.Read(b[:])
			for _, t := range [2]byte{b[0] & 0x0F, b[0] >> 4} {
				if i >= p.N {
					break
				}
				if t < 3 { // 0, 1, 2 -> -1, 0, 1
					out[i] = freduce(int32(t) - 1 + Q)
					i++
				}
			}
		}
		return out
	}
	return sample(), sample()
}

// Sign produces a signature over msg (deterministic per (sk, msg)).
func (p *Params) Sign(sk, msg []byte) ([]byte, error) {
	if len(sk) != p.SKSize || sk[0] != 0x50|byte(p.LogN) {
		return nil, fmt.Errorf("falcon: malformed private key")
	}
	var seed [seedSize]byte
	copy(seed[:], sk[1:1+seedSize])
	pk := sk[1+seedSize : 1+seedSize+p.PKSize]
	s1, s2 := p.expandSecret(seed[:])
	a := p.aHat()

	s1h := make([]int32, p.N)
	copy(s1h, s1)
	nttN(s1h, p.LogN)

	mu := sha3.ShakeSum256(64, pk, msg)
	rhoPrime := sha3.ShakeSum256(64, seed[:], mu)

	yMax := p.Gamma1 - int32(p.Tau) // z stays encodable without rejection
	yWidth := uint32(2*yMax - 1)    // y uniform in [-(yMax-1), yMax-1]
	for kappa := uint32(0); ; kappa++ {
		y := p.sampleY(rhoPrime, kappa, yWidth, yMax)
		// w = a*y.
		w := make([]int32, p.N)
		copy(w, y)
		nttN(w, p.LogN)
		for i := range w {
			w[i] = fqmul(w[i], a[i])
		}
		invNTTN(w, p.LogN)

		w1 := packHigh(w)
		cSeed := sha3.ShakeSum256(cSeedSize, mu, w1)
		c := p.challenge(cSeed)

		// z = y + c*s1 (sparse c: schoolbook with tau terms).
		z := p.mulSparseChallenge(c, s1)
		for i := range z {
			z[i] = freduce(z[i] + y[i])
		}
		// Correctness rejection: HighBits(w - c*s2) must equal HighBits(w).
		cs2 := p.mulSparseChallenge(c, s2)
		ok := true
		for i := range w {
			if highBits(freduce(w[i]-cs2[i]+Q)) != highBits(w[i]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}

		sig := make([]byte, p.SigSize)
		sig[0] = 0x30 | byte(p.LogN) // Falcon's padded-signature header nibble
		copy(sig[1:], cSeed)
		g1 := p.Gamma1
		packed := packCoeffsMapped(z, p.ZBits, func(c int32) uint32 {
			return uint32(centered(c) + g1 - 1)
		})
		copy(sig[1+cSeedSize:], packed)
		return sig, nil
	}
}

// sampleY draws the masking polynomial with coefficients uniform in
// [-(yMax-1), yMax-1], via 16-bit rejection sampling.
func (p *Params) sampleY(rhoPrime []byte, kappa, width uint32, yMax int32) []int32 {
	x := sha3.NewShake256()
	defer sha3.PutXOF(x)
	x.Write(rhoPrime)
	x.Write([]byte{byte(kappa), byte(kappa >> 8), byte(kappa >> 16), byte(kappa >> 24)})
	y := make([]int32, p.N)
	var b [2]byte
	limit := 65536 / width * width
	for i := 0; i < p.N; {
		x.Read(b[:])
		v := uint32(b[0]) | uint32(b[1])<<8
		if v >= limit {
			continue
		}
		y[i] = freduce(int32(v%width) - (yMax - 1) + Q)
		i++
	}
	return y
}

// challenge expands the seed into a sparse ternary polynomial of weight Tau,
// returned as (position, sign) pairs.
type challengeTerm struct {
	pos  int
	sign int32 // +1 or Q-1
}

func (p *Params) challenge(seed []byte) []challengeTerm {
	x := sha3.NewShake256()
	defer sha3.PutXOF(x)
	x.Write([]byte("PQTLS-FALCON-C"))
	x.Write(seed)
	terms := make([]challengeTerm, 0, p.Tau)
	seen := map[int]bool{}
	var b [3]byte
	for len(terms) < p.Tau {
		x.Read(b[:])
		pos := (int(b[0]) | int(b[1])<<8) % p.N
		if seen[pos] {
			continue
		}
		seen[pos] = true
		sign := int32(1)
		if b[2]&1 == 1 {
			sign = Q - 1
		}
		terms = append(terms, challengeTerm{pos, sign})
	}
	return terms
}

// mulSparseChallenge multiplies s by the sparse challenge in the negacyclic
// ring (x^n = -1).
func (p *Params) mulSparseChallenge(c []challengeTerm, s []int32) []int32 {
	out := make([]int32, p.N)
	for _, term := range c {
		for i, v := range s {
			if v == 0 {
				continue
			}
			j := i + term.pos
			val := fqmul(v, term.sign)
			if j >= p.N {
				j -= p.N
				val = freduce(Q - val)
			}
			out[j] = freduce(out[j] + val)
		}
	}
	return out
}

// Verify reports whether sig is a valid signature of msg under pk.
func (p *Params) Verify(pk, msg, sig []byte) bool {
	if len(pk) != p.PKSize || pk[0] != byte(p.LogN) {
		return false
	}
	if len(sig) != p.SigSize || sig[0] != 0x30|byte(p.LogN) {
		return false
	}
	// Padding beyond the packed z must be zero.
	used := 1 + cSeedSize + p.N*int(p.ZBits)/8
	for _, b := range sig[used:] {
		if b != 0 {
			return false
		}
	}
	cSeed := sig[1 : 1+cSeedSize]
	g1 := p.Gamma1
	z, ok := unpackCoeffsMapped(sig[1+cSeedSize:used], p.N, p.ZBits, func(t uint32) (int32, bool) {
		v := int32(t) - (g1 - 1)
		if v < -(g1-1) || v > g1 {
			return 0, false
		}
		return freduce(v + Q), true
	})
	if !ok {
		return false
	}
	t, ok := unpackCoeffsMapped(pk[1:], p.N, 14, func(v uint32) (int32, bool) {
		if v >= Q {
			return 0, false
		}
		return int32(v), true
	})
	if !ok {
		return false
	}

	a := p.aHat()
	mu := sha3.ShakeSum256(64, pk, msg)
	c := p.challenge(cSeed)

	// w' = a*z - c*t  = w - c*s2 for an honest signature.
	az := make([]int32, p.N)
	copy(az, z)
	nttN(az, p.LogN)
	for i := range az {
		az[i] = fqmul(az[i], a[i])
	}
	invNTTN(az, p.LogN)
	ct := p.mulSparseChallenge(c, t)
	for i := range az {
		az[i] = freduce(az[i] - ct[i] + Q)
	}
	want := sha3.ShakeSum256(cSeedSize, mu, packHigh(az))
	return subtle.ConstantTimeCompare(cSeed, want) == 1
}

// packHigh encodes the 2-bit high parts of every coefficient.
func packHigh(w []int32) []byte {
	out := make([]byte, (len(w)+3)/4)
	for i, x := range w {
		out[i/4] |= byte(highBits(x)) << (2 * (i % 4))
	}
	return out
}

// highBits returns the alpha-decomposition high part (0..3).
func highBits(r int32) int32 {
	r0 := r % alpha
	if r0 > gamma2 {
		r0 -= alpha
	}
	if r-r0 == Q-1 {
		return 0
	}
	return (r - r0) / alpha
}

func centered(a int32) int32 {
	if a > Q/2 {
		return a - Q
	}
	return a
}

// packCoeffs packs coefficients as unsigned width-bit values.
func packCoeffs(v []int32, width uint) []byte {
	return packCoeffsMapped(v, width, func(c int32) uint32 { return uint32(c) })
}

func packCoeffsMapped(v []int32, width uint, f func(int32) uint32) []byte {
	out := make([]byte, len(v)*int(width)/8)
	var acc uint64
	var bits uint
	j := 0
	for _, x := range v {
		acc |= uint64(f(x)&(1<<width-1)) << bits
		bits += width
		for bits >= 8 {
			out[j] = byte(acc)
			acc >>= 8
			bits -= 8
			j++
		}
	}
	return out
}

func unpackCoeffsMapped(in []byte, n int, width uint, f func(uint32) (int32, bool)) ([]int32, bool) {
	out := make([]int32, n)
	var acc uint64
	var bits uint
	j := 0
	for i := 0; i < n; i++ {
		for bits < width {
			if j >= len(in) {
				return nil, false
			}
			acc |= uint64(in[j]) << bits
			bits += 8
			j++
		}
		v, ok := f(uint32(acc & (1<<width - 1)))
		if !ok {
			return nil, false
		}
		out[i] = v
		acc >>= width
		bits -= width
	}
	return out, true
}
