package falcon

import "sync"

// aOnce caches the fixed public ring elements per degree. Guarded by an
// RWMutex so concurrent handshakes hit the read path after first use.
var aOnce = struct {
	mu sync.RWMutex
	m  map[int][]int32
}{m: map[int][]int32{}}

func fqmul(a, b int32) int32 {
	return int32(int64(a) * int64(b) % Q)
}

func freduce(a int32) int32 {
	a %= Q
	if a < 0 {
		a += Q
	}
	return a
}

func modpow(b, e int64) int32 {
	r := int64(1)
	b %= Q
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = r * b % Q
		}
		b = b * b % Q
	}
	return int32(r)
}

// zetaTables caches the bit-reversed powers of the 2n-th root of unity for
// each supported degree. Guarded by an RWMutex: the NTT runs on every
// Falcon operation, so concurrent workers take only a read lock once the
// table exists.
var zetaTables = struct {
	mu sync.RWMutex
	m  map[int][]int32
}{m: map[int][]int32{}}

// primitiveRoot finds a generator of Z_q^* (q-1 = 2^12 * 3).
func primitiveRoot() int32 {
	for g := int32(2); ; g++ {
		if modpow(int64(g), (Q-1)/2) != 1 && modpow(int64(g), (Q-1)/3) != 1 {
			return g
		}
	}
}

func zetasFor(n int, logn uint) []int32 {
	zetaTables.mu.RLock()
	z, ok := zetaTables.m[n]
	zetaTables.mu.RUnlock()
	if ok {
		return z
	}
	zetaTables.mu.Lock()
	defer zetaTables.mu.Unlock()
	if z, ok := zetaTables.m[n]; ok {
		return z
	}
	g := primitiveRoot()
	psi := modpow(int64(g), int64((Q-1)/(2*n))) // primitive 2n-th root
	z = make([]int32, n)
	for i := 0; i < n; i++ {
		br := 0
		for b := uint(0); b < logn; b++ {
			br |= (i >> b & 1) << (logn - 1 - b)
		}
		z[i] = modpow(int64(psi), int64(br))
	}
	zetaTables.m[n] = z
	return z
}

// nttN transforms p (length 2^logn) into the negacyclic NTT domain.
func nttN(p []int32, logn uint) {
	n := len(p)
	zetas := zetasFor(n, logn)
	k := 1
	for l := n / 2; l >= 1; l >>= 1 {
		for start := 0; start < n; start += 2 * l {
			zeta := zetas[k]
			k++
			for j := start; j < start+l; j++ {
				t := fqmul(zeta, p[j+l])
				p[j+l] = freduce(p[j] - t)
				p[j] = freduce(p[j] + t)
			}
		}
	}
}

// invNTTN is the inverse transform (reflected-zeta Gentleman-Sande form).
func invNTTN(p []int32, logn uint) {
	n := len(p)
	zetas := zetasFor(n, logn)
	k := n - 1
	for l := 1; l <= n/2; l <<= 1 {
		for start := 0; start < n; start += 2 * l {
			zeta := zetas[k]
			k--
			for j := start; j < start+l; j++ {
				t := p[j]
				p[j] = freduce(t + p[j+l])
				p[j+l] = fqmul(zeta, freduce(p[j+l]-t+Q))
			}
		}
	}
	nInv := modpow(int64(n), Q-2)
	for i := range p {
		p[i] = fqmul(p[i], nInv)
	}
}
