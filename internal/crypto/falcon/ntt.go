package falcon

import "sync"

// aOnce caches the fixed public ring elements per degree. Guarded by an
// RWMutex so concurrent handshakes hit the read path after first use.
var aOnce = struct {
	mu sync.RWMutex
	m  map[int][]int32
}{m: map[int][]int32{}}

func fqmul(a, b int32) int32 {
	return int32(int64(a) * int64(b) % Q)
}

// qInv is q^-1 mod 2^32, computed once by Newton iteration (q is odd, so
// each step doubles the number of correct low bits).
var qInv int32

func init() {
	x := uint32(Q)
	for i := 0; i < 5; i++ {
		x *= 2 - uint32(Q)*x
	}
	if x*uint32(Q) != 1 {
		panic("falcon: Montgomery inverse computation failed")
	}
	qInv = int32(x)
}

// montReduce maps a ∈ (-q·2^31, q·2^31) to a·2^-32 mod q in (-q, q).
func montReduce(a int64) int32 {
	t := int32(a) * qInv
	return int32((a - int64(t)*Q) >> 32)
}

func freduce(a int32) int32 {
	a %= Q
	if a < 0 {
		a += Q
	}
	return a
}

func modpow(b, e int64) int32 {
	r := int64(1)
	b %= Q
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = r * b % Q
		}
		b = b * b % Q
	}
	return int32(r)
}

// zetaTables caches the bit-reversed powers of the 2n-th root of unity for
// each supported degree, in both the plain and Montgomery-scaled
// (zeta·2^32 mod q) domains. Guarded by an RWMutex: the NTT runs on every
// Falcon operation, so concurrent workers take only a read lock once the
// table exists.
type zetaTable struct {
	z     []int32 // plain powers
	zMont []int32 // scaled by the Montgomery radix
}

var zetaTables = struct {
	mu sync.RWMutex
	m  map[int]*zetaTable
}{m: map[int]*zetaTable{}}

// primitiveRoot finds a generator of Z_q^* (q-1 = 2^12 * 3).
func primitiveRoot() int32 {
	for g := int32(2); ; g++ {
		if modpow(int64(g), (Q-1)/2) != 1 && modpow(int64(g), (Q-1)/3) != 1 {
			return g
		}
	}
}

func zetasFor(n int, logn uint) *zetaTable {
	zetaTables.mu.RLock()
	z, ok := zetaTables.m[n]
	zetaTables.mu.RUnlock()
	if ok {
		return z
	}
	zetaTables.mu.Lock()
	defer zetaTables.mu.Unlock()
	if z, ok := zetaTables.m[n]; ok {
		return z
	}
	g := primitiveRoot()
	psi := modpow(int64(g), int64((Q-1)/(2*n))) // primitive 2n-th root
	z = &zetaTable{z: make([]int32, n), zMont: make([]int32, n)}
	for i := 0; i < n; i++ {
		br := 0
		for b := uint(0); b < logn; b++ {
			br |= (i >> b & 1) << (logn - 1 - b)
		}
		z.z[i] = modpow(int64(psi), int64(br))
		z.zMont[i] = int32(int64(z.z[i]) << 32 % Q)
	}
	zetaTables.m[n] = z
	return z
}

// nttN transforms p (length 2^logn) into the negacyclic NTT domain.
//
// Reductions are lazy: only the multiplied wing is Montgomery-reduced, so
// magnitudes grow by at most q per layer and stay below (logn+1)·q ≤ 11q,
// far inside int32. The final pass restores [0, q) so every serialized
// output stays byte-identical to the eager form.
func nttN(p []int32, logn uint) {
	n := len(p)
	zetas := zetasFor(n, logn).zMont
	k := 1
	for l := n / 2; l >= 1; l >>= 1 {
		for start := 0; start < n; start += 2 * l {
			zeta := int64(zetas[k])
			k++
			for j := start; j < start+l; j++ {
				t := montReduce(zeta * int64(p[j+l]))
				p[j+l] = p[j] - t
				p[j] += t
			}
		}
	}
	for i := range p {
		p[i] = freduce(p[i])
	}
}

// invNTTN is the inverse transform (reflected-zeta Gentleman-Sande form).
//
// Fully lazy: sums double per layer, topping out at n·q ≤ 1024·12289 ≈
// 1.26e7 « 2^31, and the Montgomery inputs stay below q·2^31. The n^-1
// scaling folds into one Montgomery multiply per coefficient.
func invNTTN(p []int32, logn uint) {
	n := len(p)
	zetas := zetasFor(n, logn).zMont
	k := n - 1
	for l := 1; l <= n/2; l <<= 1 {
		for start := 0; start < n; start += 2 * l {
			zeta := int64(zetas[k])
			k--
			for j := start; j < start+l; j++ {
				t := p[j]
				p[j] = t + p[j+l]
				p[j+l] = montReduce(zeta * int64(p[j+l]-t))
			}
		}
	}
	fMont := int64(modpow(int64(n), Q-2)) << 32 % Q
	for i := range p {
		p[i] = freduce(montReduce(fMont * int64(p[i])))
	}
}
