package mlkem

import (
	"crypto/rand"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"sync"

	"pqtls/internal/crypto/sha3"
)

// Params describes one Kyber parameter set.
type Params struct {
	Name string
	K    int  // module rank
	Eta1 int  // noise parameter for secret/error vectors
	Eta2 int  // noise parameter for encryption noise
	Du   uint // ciphertext compression (vector part)
	Dv   uint // ciphertext compression (scalar part)
	sym  symmetric

	// work recycles the per-operation polynomial buffers (the k×k matrix
	// plus four length-k vectors) across keygen/encaps/decaps calls; the
	// parameter sets are package singletons, so each set keeps its own
	// correctly-sized pool.
	work sync.Pool
}

// kemWork is the scratch space of one KEM operation. Accumulator vectors
// must be zeroed by the user before accumulation (the pool hands back
// dirty buffers).
type kemWork struct {
	mat  []poly // k×k matrix A (or A^T)
	vec1 []poly // s / r
	vec2 []poly // e / e1
	vec3 []poly // t / u
	vec4 []poly // unpacked public vector t in pkeEncrypt
}

func (p *Params) getWork() *kemWork {
	w, _ := p.work.Get().(*kemWork)
	if w == nil {
		w = &kemWork{
			mat:  make([]poly, p.K*p.K),
			vec1: make([]poly, p.K),
			vec2: make([]poly, p.K),
			vec3: make([]poly, p.K),
			vec4: make([]poly, p.K),
		}
	}
	return w
}

func (p *Params) putWork(w *kemWork) { p.work.Put(w) }

// The six parameter sets benchmarked by the paper.
var (
	Kyber512     = &Params{Name: "kyber512", K: 2, Eta1: 3, Eta2: 2, Du: 10, Dv: 4, sym: shakeSymmetric{}}
	Kyber768     = &Params{Name: "kyber768", K: 3, Eta1: 2, Eta2: 2, Du: 10, Dv: 4, sym: shakeSymmetric{}}
	Kyber1024    = &Params{Name: "kyber1024", K: 4, Eta1: 2, Eta2: 2, Du: 11, Dv: 5, sym: shakeSymmetric{}}
	Kyber90s512  = &Params{Name: "kyber90s512", K: 2, Eta1: 3, Eta2: 2, Du: 10, Dv: 4, sym: aesSymmetric{}}
	Kyber90s768  = &Params{Name: "kyber90s768", K: 3, Eta1: 2, Eta2: 2, Du: 10, Dv: 4, sym: aesSymmetric{}}
	Kyber90s1024 = &Params{Name: "kyber90s1024", K: 4, Eta1: 2, Eta2: 2, Du: 11, Dv: 5, sym: aesSymmetric{}}
)

// PublicKeySize returns the encapsulation-key length in bytes (384k+32).
func (p *Params) PublicKeySize() int { return 384*p.K + 32 }

// PrivateKeySize returns the decapsulation-key length in bytes (768k+96).
func (p *Params) PrivateKeySize() int { return 768*p.K + 96 }

// CiphertextSize returns the ciphertext length in bytes (32(du·k+dv)).
func (p *Params) CiphertextSize() int { return 32 * (int(p.Du)*p.K + int(p.Dv)) }

// SharedSecretSize is the length of the shared secret in bytes.
func (p *Params) SharedSecretSize() int { return 32 }

// GenerateKey creates a fresh key pair from rng (crypto/rand if nil).
func (p *Params) GenerateKey(rng io.Reader) (pk, sk []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	var seed [64]byte // d || z
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, nil, fmt.Errorf("mlkem: reading key seed: %w", err)
	}
	pk, sk = p.deriveKey(seed)
	return pk, sk, nil
}

// deriveKey deterministically expands (d, z) into a key pair.
func (p *Params) deriveKey(seed [64]byte) (pk, sk []byte) {
	g := p.sym.G(seed[:32])
	rho, sigma := g[:32], g[32:]

	w := p.getWork()
	defer p.putWork(w)
	a, s, e, t := w.mat, w.vec1, w.vec2, w.vec3
	p.expandMatrix(a, rho, false)
	var prfBuf [64 * 3]byte // 64·eta bytes, eta <= 3
	nonce := byte(0)
	for i := range s {
		p.sym.PRF(prfBuf[:64*p.Eta1], sigma, nonce)
		sampleCBD(&s[i], prfBuf[:64*p.Eta1], p.Eta1)
		nonce++
		s[i].ntt()
	}
	for i := range e {
		p.sym.PRF(prfBuf[:64*p.Eta1], sigma, nonce)
		sampleCBD(&e[i], prfBuf[:64*p.Eta1], p.Eta1)
		nonce++
		e[i].ntt()
	}
	// t = A*s + e (all in the NTT domain).
	for i := 0; i < p.K; i++ {
		t[i] = poly{}
		for j := 0; j < p.K; j++ {
			basemulAcc(&t[i], &a[i*p.K+j], &s[j])
		}
		t[i].add(&e[i])
	}

	pk = make([]byte, 0, p.PublicKeySize())
	for i := range t {
		var buf [384]byte
		t[i].pack(12, buf[:])
		pk = append(pk, buf[:]...)
	}
	pk = append(pk, rho...)

	h := p.sym.H(pk)
	sk = make([]byte, 0, p.PrivateKeySize())
	for i := range s {
		var buf [384]byte
		s[i].pack(12, buf[:])
		sk = append(sk, buf[:]...)
	}
	sk = append(sk, pk...)
	sk = append(sk, h[:]...)
	sk = append(sk, seed[32:]...)
	return pk, sk
}

// expandMatrix derives the k×k matrix A (or its transpose) from rho into
// the caller-provided buffer of k² polynomials. The SHAKE variants absorb
// all k² seed blocks in one multi-sponge pass; the AES variants keep the
// per-element stream loop.
func (p *Params) expandMatrix(a []poly, rho []byte, transpose bool) {
	if _, ok := p.sym.(shakeSymmetric); ok {
		var seeds [16][34]byte // k² <= 16 seeds of rho || x || y
		var inputs [16][]byte
		kk := p.K * p.K
		for i := 0; i < p.K; i++ {
			for j := 0; j < p.K; j++ {
				x, y := byte(j), byte(i) // A[i][j] uses XOF(rho, j, i)
				if transpose {
					x, y = y, x
				}
				s := &seeds[i*p.K+j]
				copy(s[:32], rho)
				s[32], s[33] = x, y
				inputs[i*p.K+j] = s[:]
			}
		}
		m := sha3.NewMultiShake128(inputs[:kk])
		for idx := 0; idx < kk; idx++ {
			sampleUniform(&a[idx], m.Stream(idx))
		}
		sha3.PutMultiXOF(m)
		return
	}
	for i := 0; i < p.K; i++ {
		for j := 0; j < p.K; j++ {
			x, y := byte(j), byte(i) // A[i][j] uses XOF(rho, j, i)
			if transpose {
				x, y = y, x
			}
			xof := p.sym.XOF(rho, x, y)
			sampleUniform(&a[i*p.K+j], xof)
			putXOF(xof)
		}
	}
}

// Encapsulate generates a shared secret and its encapsulation against pk.
func (p *Params) Encapsulate(rng io.Reader, pk []byte) (ct, ss []byte, err error) {
	if len(pk) != p.PublicKeySize() {
		return nil, nil, fmt.Errorf("mlkem: public key is %d bytes, want %d", len(pk), p.PublicKeySize())
	}
	if rng == nil {
		rng = rand.Reader
	}
	var m [32]byte
	if _, err := io.ReadFull(rng, m[:]); err != nil {
		return nil, nil, fmt.Errorf("mlkem: reading message: %w", err)
	}
	// Round-3 Kyber hashes the raw randomness first: m = H(m).
	m = p.sym.H(m[:])
	h := p.sym.H(pk)
	g := p.sym.G(m[:], h[:])
	kBar, r := g[:32], g[32:]
	ct = p.pkeEncrypt(pk, m[:], r)
	hc := p.sym.H(ct)
	k := p.sym.KDF(kBar, hc[:])
	return ct, k[:], nil
}

// Decapsulate recovers the shared secret from ct, applying the
// Fujisaki-Okamoto re-encryption check with implicit rejection.
func (p *Params) Decapsulate(sk, ct []byte) ([]byte, error) {
	if len(sk) != p.PrivateKeySize() {
		return nil, fmt.Errorf("mlkem: private key is %d bytes, want %d", len(sk), p.PrivateKeySize())
	}
	if len(ct) != p.CiphertextSize() {
		return nil, fmt.Errorf("mlkem: ciphertext is %d bytes, want %d", len(ct), p.CiphertextSize())
	}
	skPKE := sk[:384*p.K]
	pk := sk[384*p.K : 768*p.K+32]
	h := sk[768*p.K+32 : 768*p.K+64]
	z := sk[768*p.K+64:]

	m := p.pkeDecrypt(skPKE, ct)
	g := p.sym.G(m, h)
	kBar, r := g[:32], g[32:]
	ct2 := p.pkeEncrypt(pk, m, r)
	hc := p.sym.H(ct)
	k := p.sym.KDF(kBar, hc[:])
	kFail := p.sym.KDF(z, hc[:])
	// Constant-time select: on re-encryption mismatch return the implicit
	// rejection key derived from z.
	same := subtle.ConstantTimeCompare(ct, ct2)
	out := make([]byte, 32)
	subtle.ConstantTimeCopy(same, out, k[:])
	subtle.ConstantTimeCopy(1-same, out, kFail[:])
	return out, nil
}

// pkeEncrypt is the inner IND-CPA encryption K-PKE.Encrypt(pk, m; r).
func (p *Params) pkeEncrypt(pk, m, coins []byte) []byte {
	w := p.getWork()
	defer p.putWork(w)
	at, rv, e1, u, tv := w.mat, w.vec1, w.vec2, w.vec3, w.vec4
	for i := 0; i < p.K; i++ {
		tv[i].unpack(12, pk[384*i:384*(i+1)])
	}
	rho := pk[384*p.K:]
	p.expandMatrix(at, rho, true)

	var e2 poly
	var prfBuf [64 * 3]byte
	nonce := byte(0)
	for i := range rv {
		p.sym.PRF(prfBuf[:64*p.Eta1], coins, nonce)
		sampleCBD(&rv[i], prfBuf[:64*p.Eta1], p.Eta1)
		nonce++
		rv[i].ntt()
	}
	for i := range e1 {
		p.sym.PRF(prfBuf[:64*p.Eta2], coins, nonce)
		sampleCBD(&e1[i], prfBuf[:64*p.Eta2], p.Eta2)
		nonce++
	}
	p.sym.PRF(prfBuf[:64*p.Eta2], coins, nonce)
	sampleCBD(&e2, prfBuf[:64*p.Eta2], p.Eta2)

	// u = invNTT(A^T * r) + e1
	for i := 0; i < p.K; i++ {
		u[i] = poly{}
		for j := 0; j < p.K; j++ {
			basemulAcc(&u[i], &at[i*p.K+j], &rv[j])
		}
		u[i].invNTT()
		u[i].add(&e1[i])
	}
	// v = invNTT(t^T * r) + e2 + Decompress1(m)
	var v, mu poly
	for j := 0; j < p.K; j++ {
		basemulAcc(&v, &tv[j], &rv[j])
	}
	v.invNTT()
	v.add(&e2)
	mu.fromMsg(m)
	v.add(&mu)

	ct := make([]byte, 0, p.CiphertextSize())
	var packBuf [32 * 11]byte // 32·du bytes, du <= 11
	for i := range u {
		u[i].compress(p.Du)
		u[i].pack(p.Du, packBuf[:32*p.Du])
		ct = append(ct, packBuf[:32*p.Du]...)
	}
	v.compress(p.Dv)
	v.pack(p.Dv, packBuf[:32*p.Dv])
	return append(ct, packBuf[:32*p.Dv]...)
}

// pkeDecrypt is the inner IND-CPA decryption K-PKE.Decrypt(sk, ct).
func (p *Params) pkeDecrypt(skPKE, ct []byte) []byte {
	wk := p.getWork()
	defer p.putWork(wk)
	u, s := wk.vec1, wk.vec2
	for i := range u {
		u[i].unpack(p.Du, ct[32*int(p.Du)*i:32*int(p.Du)*(i+1)])
		u[i].decompress(p.Du)
		u[i].ntt()
	}
	var v poly
	v.unpack(p.Dv, ct[32*int(p.Du)*p.K:])
	v.decompress(p.Dv)

	for i := range s {
		s[i].unpack(12, skPKE[384*i:384*(i+1)])
	}
	var w poly
	for j := 0; j < p.K; j++ {
		basemulAcc(&w, &s[j], &u[j])
	}
	w.invNTT()
	v.sub(&w)
	m := make([]byte, 32)
	v.toMsg(m)
	return m
}

// ErrBadKey reports a malformed key or ciphertext.
var ErrBadKey = errors.New("mlkem: malformed key material")
