package mlkem

import (
	"crypto/rand"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"sync"

	"pqtls/internal/crypto/sha3"
)

// Params describes one Kyber parameter set.
type Params struct {
	Name string
	K    int  // module rank
	Eta1 int  // noise parameter for secret/error vectors
	Eta2 int  // noise parameter for encryption noise
	Du   uint // ciphertext compression (vector part)
	Dv   uint // ciphertext compression (scalar part)
	sym  symmetric

	// work recycles the per-operation polynomial buffers (the k×k matrix
	// plus four length-k vectors) across keygen/encaps/decaps calls; the
	// parameter sets are package singletons, so each set keeps its own
	// correctly-sized pool.
	work sync.Pool
}

// maxCiphertextSize is kyber1024's ciphertext (the largest set's), sizing
// the re-encryption scratch in kemWork.
const maxCiphertextSize = 32 * (11*4 + 5)

// kemWork is the scratch space of one KEM operation. Accumulator vectors
// must be zeroed by the user before accumulation (the pool hands back
// dirty buffers). The byte-array fields keep every intermediate of the
// encaps/decaps derivations off the heap: reading randomness or hashing
// through an interface makes a stack buffer escape, so the hot paths stage
// everything in this (already pooled) struct instead.
type kemWork struct {
	mat  []poly // k×k matrix A (or A^T)
	vec1 []poly // s / r
	vec2 []poly // e / e1
	vec3 []poly // t / u
	vec4 []poly // unpacked public vector t in pkeEncrypt

	xofSeeds [16][34]byte // matrix-expansion seed blocks (k² <= 16)
	xofIn    [16][]byte   // their slice headers for the multi-sponge
	uniBuf   [3 * 168]byte

	m, h, hc   [32]byte
	g          [64]byte
	kOK, kRej  [32]byte
	prfAll     [4*192 + 5*128]byte // 2k+1 noise expansions, k <= 4
	noiseRefs  [9][]byte
	ctBuf      [maxCiphertextSize]byte // FO re-encryption scratch
	prfSeedBuf [64]byte                // keygen seed / PRF staging
}

func (p *Params) getWork() *kemWork {
	w, _ := p.work.Get().(*kemWork)
	if w == nil {
		w = &kemWork{
			mat:  make([]poly, p.K*p.K),
			vec1: make([]poly, p.K),
			vec2: make([]poly, p.K),
			vec3: make([]poly, p.K),
			vec4: make([]poly, p.K),
		}
	}
	return w
}

func (p *Params) putWork(w *kemWork) { p.work.Put(w) }

// The six parameter sets benchmarked by the paper.
var (
	Kyber512     = &Params{Name: "kyber512", K: 2, Eta1: 3, Eta2: 2, Du: 10, Dv: 4, sym: shakeSymmetric{}}
	Kyber768     = &Params{Name: "kyber768", K: 3, Eta1: 2, Eta2: 2, Du: 10, Dv: 4, sym: shakeSymmetric{}}
	Kyber1024    = &Params{Name: "kyber1024", K: 4, Eta1: 2, Eta2: 2, Du: 11, Dv: 5, sym: shakeSymmetric{}}
	Kyber90s512  = &Params{Name: "kyber90s512", K: 2, Eta1: 3, Eta2: 2, Du: 10, Dv: 4, sym: aesSymmetric{}}
	Kyber90s768  = &Params{Name: "kyber90s768", K: 3, Eta1: 2, Eta2: 2, Du: 10, Dv: 4, sym: aesSymmetric{}}
	Kyber90s1024 = &Params{Name: "kyber90s1024", K: 4, Eta1: 2, Eta2: 2, Du: 11, Dv: 5, sym: aesSymmetric{}}
)

// PublicKeySize returns the encapsulation-key length in bytes (384k+32).
func (p *Params) PublicKeySize() int { return 384*p.K + 32 }

// PrivateKeySize returns the decapsulation-key length in bytes (768k+96).
func (p *Params) PrivateKeySize() int { return 768*p.K + 96 }

// CiphertextSize returns the ciphertext length in bytes (32(du·k+dv)).
func (p *Params) CiphertextSize() int { return 32 * (int(p.Du)*p.K + int(p.Dv)) }

// SharedSecretSize is the length of the shared secret in bytes.
func (p *Params) SharedSecretSize() int { return 32 }

// isShake reports whether this set uses the SHAKE/SHA-3 symmetric suite
// (the standard round-3 sets); the 90s sets answer false and take the
// generic interface paths.
func (p *Params) isShake() bool {
	_, ok := p.sym.(shakeSymmetric)
	return ok
}

// GenerateKey creates a fresh key pair from rng (crypto/rand if nil).
func (p *Params) GenerateKey(rng io.Reader) (pk, sk []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	var seed [64]byte // d || z
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, nil, fmt.Errorf("mlkem: reading key seed: %w", err)
	}
	pk, sk = p.deriveKey(seed)
	return pk, sk, nil
}

// deriveKey deterministically expands (d, z) into a key pair.
func (p *Params) deriveKey(seed [64]byte) (pk, sk []byte) {
	g := p.sym.G(seed[:32])
	rho, sigma := g[:32], g[32:]

	w := p.getWork()
	defer p.putWork(w)
	a, s, e, t := w.mat, w.vec1, w.vec2, w.vec3
	p.expandMatrix(a, rho, false, w)
	var prfBuf [64 * 3]byte // 64·eta bytes, eta <= 3
	nonce := byte(0)
	for i := range s {
		p.sym.PRF(prfBuf[:64*p.Eta1], sigma, nonce)
		sampleCBD(&s[i], prfBuf[:64*p.Eta1], p.Eta1)
		nonce++
		s[i].ntt()
	}
	for i := range e {
		p.sym.PRF(prfBuf[:64*p.Eta1], sigma, nonce)
		sampleCBD(&e[i], prfBuf[:64*p.Eta1], p.Eta1)
		nonce++
		e[i].ntt()
	}
	// t = A*s + e (all in the NTT domain).
	for i := 0; i < p.K; i++ {
		t[i] = poly{}
		for j := 0; j < p.K; j++ {
			basemulAcc(&t[i], &a[i*p.K+j], &s[j])
		}
		t[i].add(&e[i])
	}

	pk = make([]byte, 0, p.PublicKeySize())
	for i := range t {
		var buf [384]byte
		t[i].pack(12, buf[:])
		pk = append(pk, buf[:]...)
	}
	pk = append(pk, rho...)

	h := p.sym.H(pk)
	sk = make([]byte, 0, p.PrivateKeySize())
	for i := range s {
		var buf [384]byte
		s[i].pack(12, buf[:])
		sk = append(sk, buf[:]...)
	}
	sk = append(sk, pk...)
	sk = append(sk, h[:]...)
	sk = append(sk, seed[32:]...)
	return pk, sk
}

// expandMatrix derives the k×k matrix A (or its transpose) from rho into
// the caller-provided buffer of k² polynomials. The SHAKE variants absorb
// all k² seed blocks in one multi-sponge pass; the AES variants keep the
// per-element stream loop. All staging lives in w, so the expansion does
// not allocate.
func (p *Params) expandMatrix(a []poly, rho []byte, transpose bool, w *kemWork) {
	if p.isShake() {
		kk := p.K * p.K
		for i := 0; i < p.K; i++ {
			for j := 0; j < p.K; j++ {
				x, y := byte(j), byte(i) // A[i][j] uses XOF(rho, j, i)
				if transpose {
					x, y = y, x
				}
				s := &w.xofSeeds[i*p.K+j]
				copy(s[:32], rho)
				s[32], s[33] = x, y
				w.xofIn[i*p.K+j] = s[:]
			}
		}
		m := sha3.NewMultiShake128(w.xofIn[:kk])
		for idx := 0; idx < kk; idx++ {
			sampleUniform(&a[idx], m.Stream(idx), &w.uniBuf)
		}
		sha3.PutMultiXOF(m)
		return
	}
	for i := 0; i < p.K; i++ {
		for j := 0; j < p.K; j++ {
			x, y := byte(j), byte(i) // A[i][j] uses XOF(rho, j, i)
			if transpose {
				x, y = y, x
			}
			xof := p.sym.XOF(rho, x, y)
			sampleUniform(&a[i*p.K+j], xof, &w.uniBuf)
			putXOF(xof)
		}
	}
}

// Encapsulate generates a shared secret and its encapsulation against pk.
func (p *Params) Encapsulate(rng io.Reader, pk []byte) (ct, ss []byte, err error) {
	ct = make([]byte, p.CiphertextSize())
	ss = make([]byte, p.SharedSecretSize())
	if err := p.EncapsulateInto(rng, pk, ct, ss); err != nil {
		return nil, nil, err
	}
	return ct, ss, nil
}

// EncapsulateInto is Encapsulate writing the ciphertext and shared secret
// into caller-provided buffers (len CiphertextSize and SharedSecretSize).
// The SHAKE parameter sets run allocation-free: all intermediates live in
// the pooled scratch, so a server encapsulating on every accepted
// connection produces zero per-handshake garbage. Output is byte-identical
// to Encapsulate over the same rng.
func (p *Params) EncapsulateInto(rng io.Reader, pk, ct, ss []byte) error {
	if len(pk) != p.PublicKeySize() {
		return fmt.Errorf("mlkem: public key is %d bytes, want %d", len(pk), p.PublicKeySize())
	}
	if len(ct) != p.CiphertextSize() || len(ss) != p.SharedSecretSize() {
		return fmt.Errorf("mlkem: output buffers are %d/%d bytes, want %d/%d",
			len(ct), len(ss), p.CiphertextSize(), p.SharedSecretSize())
	}
	if rng == nil {
		rng = rand.Reader
	}
	w := p.getWork()
	defer p.putWork(w)
	if _, err := io.ReadFull(rng, w.m[:]); err != nil {
		return fmt.Errorf("mlkem: reading message: %w", err)
	}
	// Round-3 Kyber hashes the raw randomness first: m = H(m). The batch
	// one-shots absorb fully before squeezing, so hashing in place is safe.
	if p.isShake() {
		sha3.Sum256Into(w.m[:], w.m[:])
		sha3.Sum256Into(w.h[:], pk)
		sha3.Sum512Into(w.g[:], w.m[:], w.h[:])
	} else {
		w.m = p.sym.H(w.m[:])
		w.h = p.sym.H(pk)
		w.g = p.sym.G(w.m[:], w.h[:])
	}
	kBar, r := w.g[:32], w.g[32:]
	p.pkeEncryptInto(ct, pk, w.m[:], r, w)
	if p.isShake() {
		sha3.Sum256Into(w.hc[:], ct)
		sha3.ShakeSum256Into(ss, kBar, w.hc[:])
	} else {
		w.hc = p.sym.H(ct)
		k := p.sym.KDF(kBar, w.hc[:])
		copy(ss, k[:])
	}
	return nil
}

// Decapsulate recovers the shared secret from ct, applying the
// Fujisaki-Okamoto re-encryption check with implicit rejection.
func (p *Params) Decapsulate(sk, ct []byte) ([]byte, error) {
	ss := make([]byte, p.SharedSecretSize())
	if err := p.DecapsulateInto(sk, ct, ss); err != nil {
		return nil, err
	}
	return ss, nil
}

// DecapsulateInto is Decapsulate writing the shared secret into a
// caller-provided buffer, keeping the client-side hot path (one decap per
// full handshake) off the heap for the SHAKE sets.
func (p *Params) DecapsulateInto(sk, ct, ss []byte) error {
	if len(sk) != p.PrivateKeySize() {
		return fmt.Errorf("mlkem: private key is %d bytes, want %d", len(sk), p.PrivateKeySize())
	}
	if len(ct) != p.CiphertextSize() {
		return fmt.Errorf("mlkem: ciphertext is %d bytes, want %d", len(ct), p.CiphertextSize())
	}
	if len(ss) != p.SharedSecretSize() {
		return fmt.Errorf("mlkem: output buffer is %d bytes, want %d", len(ss), p.SharedSecretSize())
	}
	skPKE := sk[:384*p.K]
	pk := sk[384*p.K : 768*p.K+32]
	h := sk[768*p.K+32 : 768*p.K+64]
	z := sk[768*p.K+64:]

	w := p.getWork()
	defer p.putWork(w)
	m := w.m[:]
	p.pkeDecryptInto(m, skPKE, ct, w)
	if p.isShake() {
		sha3.Sum512Into(w.g[:], m, h)
	} else {
		w.g = p.sym.G(m, h)
	}
	kBar, r := w.g[:32], w.g[32:]
	ct2 := w.ctBuf[:p.CiphertextSize()]
	p.pkeEncryptInto(ct2, pk, m, r, w)
	if p.isShake() {
		sha3.Sum256Into(w.hc[:], ct)
		sha3.ShakeSum256Into(w.kOK[:], kBar, w.hc[:])
		sha3.ShakeSum256Into(w.kRej[:], z, w.hc[:])
	} else {
		w.hc = p.sym.H(ct)
		w.kOK = p.sym.KDF(kBar, w.hc[:])
		w.kRej = p.sym.KDF(z, w.hc[:])
	}
	// Constant-time select: on re-encryption mismatch return the implicit
	// rejection key derived from z.
	same := subtle.ConstantTimeCompare(ct, ct2)
	subtle.ConstantTimeCopy(same, ss, w.kOK[:])
	subtle.ConstantTimeCopy(1-same, ss, w.kRej[:])
	return nil
}

// pkeEncryptInto is the inner IND-CPA encryption K-PKE.Encrypt(pk, m; r)
// writing into dst (len CiphertextSize), expanding the 2k+1 noise PRFs
// from coins into w before handing off to the shared core.
func (p *Params) pkeEncryptInto(dst, pk, m, coins []byte, w *kemWork) {
	per := 2*p.K + 1
	off := 0
	for nonce := 0; nonce < per; nonce++ {
		eta := p.Eta2
		if nonce < p.K {
			eta = p.Eta1
		}
		out := w.prfAll[off : off+64*eta]
		p.sym.PRF(out, coins, byte(nonce))
		w.noiseRefs[nonce] = out
		off += 64 * eta
	}
	p.pkeEncryptParts(dst, pk, m, w.noiseRefs[:per], w)
}

// pkeEncryptParts is the noise-parameterized encryption core: noise holds
// the 2k+1 PRF expansions (r-vector, e1-vector, e2) in nonce order, either
// freshly expanded (pkeEncryptInto) or batch-expanded across many
// messages (EncapBatch).
func (p *Params) pkeEncryptParts(dst, pk, m []byte, noise [][]byte, w *kemWork) {
	at, rv, e1, u, tv := w.mat, w.vec1, w.vec2, w.vec3, w.vec4
	for i := 0; i < p.K; i++ {
		tv[i].unpack(12, pk[384*i:384*(i+1)])
	}
	rho := pk[384*p.K:]
	p.expandMatrix(at, rho, true, w)

	var e2 poly
	for i := range rv {
		sampleCBD(&rv[i], noise[i], p.Eta1)
		rv[i].ntt()
	}
	for i := range e1 {
		sampleCBD(&e1[i], noise[p.K+i], p.Eta2)
	}
	sampleCBD(&e2, noise[2*p.K], p.Eta2)

	// u = invNTT(A^T * r) + e1
	for i := 0; i < p.K; i++ {
		u[i] = poly{}
		for j := 0; j < p.K; j++ {
			basemulAcc(&u[i], &at[i*p.K+j], &rv[j])
		}
		u[i].invNTT()
		u[i].add(&e1[i])
	}
	// v = invNTT(t^T * r) + e2 + Decompress1(m)
	var v, mu poly
	for j := 0; j < p.K; j++ {
		basemulAcc(&v, &tv[j], &rv[j])
	}
	v.invNTT()
	v.add(&e2)
	mu.fromMsg(m)
	v.add(&mu)

	off := 0
	for i := range u {
		u[i].compress(p.Du)
		u[i].pack(p.Du, dst[off:off+32*int(p.Du)])
		off += 32 * int(p.Du)
	}
	v.compress(p.Dv)
	v.pack(p.Dv, dst[off:off+32*int(p.Dv)])
}

// pkeDecryptInto is the inner IND-CPA decryption K-PKE.Decrypt(sk, ct),
// writing the 32-byte plaintext into dst.
func (p *Params) pkeDecryptInto(dst []byte, skPKE, ct []byte, w *kemWork) {
	u, s := w.vec1, w.vec2
	for i := range u {
		u[i].unpack(p.Du, ct[32*int(p.Du)*i:32*int(p.Du)*(i+1)])
		u[i].decompress(p.Du)
		u[i].ntt()
	}
	var v poly
	v.unpack(p.Dv, ct[32*int(p.Du)*p.K:])
	v.decompress(p.Dv)

	for i := range s {
		s[i].unpack(12, skPKE[384*i:384*(i+1)])
	}
	var wAcc poly
	for j := 0; j < p.K; j++ {
		basemulAcc(&wAcc, &s[j], &u[j])
	}
	wAcc.invNTT()
	v.sub(&wAcc)
	v.toMsg(dst)
}

// ErrBadKey reports a malformed key or ciphertext.
var ErrBadKey = errors.New("mlkem: malformed key material")
