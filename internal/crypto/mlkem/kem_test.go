package mlkem

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

var allParams = []*Params{Kyber512, Kyber768, Kyber1024, Kyber90s512, Kyber90s768, Kyber90s1024}

func TestNTTRoundtrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		var p, orig poly
		s := seed
		for i := range p {
			s = s*6364136223846793005 + 1442695040888963407
			p[i] = int16(uint64(s) >> 33 % Q)
		}
		orig = p
		p.ntt()
		p.invNTT()
		return p == orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// NTT multiplication must agree with schoolbook multiplication in
// Z_q[X]/(X^256+1).
func TestNTTMulMatchesSchoolbook(t *testing.T) {
	t.Parallel()
	var a, b poly
	for i := range a {
		a[i] = int16((i*31 + 7) % Q)
		b[i] = int16((i*17 + 3) % Q)
	}
	var want poly
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			prod := int64(a[i]) * int64(b[j]) % Q
			k := i + j
			if k >= N {
				k -= N
				prod = Q - prod
			}
			want[k] = int16((int64(want[k]) + prod) % Q)
		}
	}
	na, nb := a, b
	na.ntt()
	nb.ntt()
	var got poly
	basemulAcc(&got, &na, &nb)
	got.invNTT()
	if got != want {
		t.Error("NTT product differs from schoolbook product")
	}
}

func TestSizes(t *testing.T) {
	t.Parallel()
	want := []struct {
		p          *Params
		pk, sk, ct int
	}{
		{Kyber512, 800, 1632, 768},
		{Kyber768, 1184, 2400, 1088},
		{Kyber1024, 1568, 3168, 1568},
		{Kyber90s512, 800, 1632, 768},
	}
	for _, w := range want {
		if got := w.p.PublicKeySize(); got != w.pk {
			t.Errorf("%s: pk size %d, want %d", w.p.Name, got, w.pk)
		}
		if got := w.p.PrivateKeySize(); got != w.sk {
			t.Errorf("%s: sk size %d, want %d", w.p.Name, got, w.sk)
		}
		if got := w.p.CiphertextSize(); got != w.ct {
			t.Errorf("%s: ct size %d, want %d", w.p.Name, got, w.ct)
		}
	}
}

func TestRoundtripAll(t *testing.T) {
	t.Parallel()
	for _, p := range allParams {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			pk, sk, err := p.GenerateKey(nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(pk) != p.PublicKeySize() || len(sk) != p.PrivateKeySize() {
				t.Fatalf("key sizes: pk=%d sk=%d", len(pk), len(sk))
			}
			ct, ss1, err := p.Encapsulate(nil, pk)
			if err != nil {
				t.Fatal(err)
			}
			if len(ct) != p.CiphertextSize() {
				t.Fatalf("ct size %d, want %d", len(ct), p.CiphertextSize())
			}
			ss2, err := p.Decapsulate(sk, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ss1, ss2) {
				t.Error("shared secrets differ")
			}
		})
	}
}

// Implicit rejection: a tampered ciphertext must decapsulate to a *different*
// secret, deterministically, without error.
func TestImplicitRejection(t *testing.T) {
	t.Parallel()
	p := Kyber512
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, ss1, err := p.Encapsulate(nil, pk)
	if err != nil {
		t.Fatal(err)
	}
	ct[0] ^= 1
	ssA, err := p.Decapsulate(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ss1, ssA) {
		t.Error("tampered ciphertext produced the honest shared secret")
	}
	ssB, err := p.Decapsulate(sk, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ssA, ssB) {
		t.Error("implicit rejection is not deterministic")
	}
}

func TestDeterministicFromSeed(t *testing.T) {
	t.Parallel()
	var seed [64]byte
	for i := range seed {
		seed[i] = byte(i)
	}
	pk1, sk1 := Kyber768.deriveKey(seed)
	pk2, sk2 := Kyber768.deriveKey(seed)
	if !bytes.Equal(pk1, pk2) || !bytes.Equal(sk1, sk2) {
		t.Error("deriveKey is not deterministic")
	}
}

func TestWrongSizesRejected(t *testing.T) {
	t.Parallel()
	p := Kyber512
	if _, _, err := p.Encapsulate(nil, make([]byte, 10)); err == nil {
		t.Error("short public key accepted")
	}
	pk, sk, _ := p.GenerateKey(nil)
	_ = pk
	if _, err := p.Decapsulate(sk, make([]byte, 10)); err == nil {
		t.Error("short ciphertext accepted")
	}
	if _, err := p.Decapsulate(sk[:100], make([]byte, p.CiphertextSize())); err == nil {
		t.Error("short private key accepted")
	}
}

// Property: compress/decompress error is bounded by q/2^(d+1) (rounding).
func TestQuickCompressBound(t *testing.T) {
	t.Parallel()
	f := func(x uint16, dRaw uint8) bool {
		d := uint(dRaw%11) + 1
		v := int16(x % Q)
		var p poly
		p[0] = v
		p.compress(d)
		p.decompress(d)
		diff := int(p[0]) - int(v)
		if diff > Q/2 {
			diff -= Q
		}
		if diff < -Q/2 {
			diff += Q
		}
		if diff < 0 {
			diff = -diff
		}
		return diff <= (Q+(1<<(d+1))-1)/(1<<(d+1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: pack/unpack is the identity on d-bit coefficients.
func TestQuickPackRoundtrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64, dRaw uint8) bool {
		d := uint(dRaw%12) + 1
		var p poly
		s := seed
		for i := range p {
			s = s*2862933555777941757 + 3037000493
			p[i] = int16(uint64(s) >> 40 & (1<<d - 1))
		}
		buf := make([]byte, 32*d)
		p.pack(d, buf)
		var q poly
		q.unpack(d, buf)
		return p == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every fresh encapsulation roundtrips (catches rare decryption
// failures that would break TLS handshakes).
func TestQuickEncapsRoundtrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Parallel()
	pk, sk, err := Kyber512.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ct, ss1, err := Kyber512.Encapsulate(rand.Reader, pk)
		if err != nil {
			t.Fatal(err)
		}
		ss2, err := Kyber512.Decapsulate(sk, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss1, ss2) {
			t.Fatalf("roundtrip %d failed", i)
		}
	}
}

// Sanity-check the zeta tables: 17 must be a primitive 256th root of unity
// and zetasMont must be the Montgomery-scaled copy of zetas.
func TestZetaTables(t *testing.T) {
	t.Parallel()
	pow := new(big.Int).Exp(big.NewInt(17), big.NewInt(128), big.NewInt(Q))
	if pow.Int64() != Q-1 {
		t.Fatalf("17^128 mod q = %v, want q-1", pow)
	}
	for i := range zetas {
		if freduce(zetasMont[i]) != fqmul(zetas[i], montR) {
			t.Fatalf("zetasMont[%d] != zetas[%d]*2^16 mod q", i, i)
		}
		// montReduce must undo the radix: montReduce(x*zetasMont) == x*zetas.
		if freduce(montReduce(int32(zetasMont[i])*7)) != fqmul(zetas[i], 7) {
			t.Fatalf("montReduce round-trip failed for zeta %d", i)
		}
	}
}

func benchKEM(b *testing.B, p *Params) {
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("keygen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.GenerateKey(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Encapsulate(nil, pk); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _, _ := p.Encapsulate(nil, pk)
	b.Run("decaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Decapsulate(sk, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKyber512(b *testing.B)  { benchKEM(b, Kyber512) }
func BenchmarkKyber768(b *testing.B)  { benchKEM(b, Kyber768) }
func BenchmarkKyber1024(b *testing.B) { benchKEM(b, Kyber1024) }

// Every region of the ciphertext (u blocks and v) participates in the FO
// check: flipping a byte anywhere must change the decapsulated secret.
func TestTamperEveryRegion(t *testing.T) {
	t.Parallel()
	p := Kyber512
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, ss, err := p.Encapsulate(nil, pk)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 100, 320, 500, 640, 700, len(ct) - 1} {
		bad := bytes.Clone(ct)
		bad[pos] ^= 0x10
		got, err := p.Decapsulate(sk, bad)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, ss) {
			t.Errorf("tamper at byte %d produced the honest secret", pos)
		}
	}
}

// 90s and SHAKE variants with identical seeds must produce *different*
// keys (different symmetric primitives), guarding against accidental
// primitive sharing.
func TestVariantsDiffer(t *testing.T) {
	t.Parallel()
	var seed [64]byte
	for i := range seed {
		seed[i] = byte(i * 3)
	}
	pkA, _ := Kyber512.deriveKey(seed)
	pkB, _ := Kyber90s512.deriveKey(seed)
	if bytes.Equal(pkA, pkB) {
		t.Error("kyber512 and kyber90s512 derived identical keys from one seed")
	}
}

// The NTT round-trip is the innermost arithmetic loop of every lattice
// operation and must stay allocation-free.
func TestNTTZeroAlloc(t *testing.T) {
	var p poly
	for i := range p {
		p[i] = int16(i % Q)
	}
	if n := testing.AllocsPerRun(100, func() {
		p.ntt()
		p.invNTT()
	}); n != 0 {
		t.Errorf("NTT round-trip allocates %v times, want 0", n)
	}
}
