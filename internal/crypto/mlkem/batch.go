package mlkem

import (
	"crypto/rand"
	"fmt"
	"io"

	"pqtls/internal/crypto/sha3"
)

// GenerateKeyBatch creates n key pairs from rng (crypto/rand if nil). The
// result is byte-identical to n sequential GenerateKey calls on the same
// rng — the seeds are read in the same order and expanded with the same
// derivation — but the SHAKE-based parameter sets amortize the symmetric
// work across the batch: one multi-sponge pass for the n G hashes, one for
// the 2kn noise PRFs, and one for the n public-key hashes. The 90s (AES)
// variants fall back to the sequential path.
func (p *Params) GenerateKeyBatch(rng io.Reader, n int) (pks, sks [][]byte, err error) {
	if n <= 0 {
		return nil, nil, nil
	}
	if rng == nil {
		rng = rand.Reader
	}
	seeds := make([][64]byte, n)
	for i := range seeds {
		if _, err := io.ReadFull(rng, seeds[i][:]); err != nil {
			return nil, nil, fmt.Errorf("mlkem: reading key seed %d of %d: %w", i, n, err)
		}
	}
	pks = make([][]byte, n)
	sks = make([][]byte, n)
	if _, ok := p.sym.(shakeSymmetric); !ok {
		for i := range seeds {
			pks[i], sks[i] = p.deriveKey(seeds[i])
		}
		return pks, sks, nil
	}

	// Batch G: (rho_i, sigma_i) = SHA3-512(d_i) for all keys at once.
	gIn := make([][]byte, n)
	gOut := make([][]byte, n)
	gBuf := make([]byte, 64*n)
	for i := range gIn {
		gIn[i] = seeds[i][:32]
		gOut[i] = gBuf[64*i : 64*(i+1)]
	}
	sha3.Sum512Batch(gOut, gIn)

	// Batch the noise PRFs: 2k SHAKE256(sigma_i || nonce) expansions per
	// key, all absorbed in one pass.
	per := 2 * p.K
	prfLen := 64 * p.Eta1
	prfIn := make([][]byte, n*per)
	prfOut := make([][]byte, n*per)
	prfSeed := make([]byte, 33*n*per)
	prfBuf := make([]byte, prfLen*n*per)
	for i := 0; i < n; i++ {
		sigma := gOut[i][32:]
		for nn := 0; nn < per; nn++ {
			idx := i*per + nn
			in := prfSeed[33*idx : 33*idx+33]
			copy(in, sigma)
			in[32] = byte(nn)
			prfIn[idx] = in
			prfOut[idx] = prfBuf[prfLen*idx : prfLen*(idx+1)]
		}
	}
	sha3.ShakeSum256Batch(prfOut, prfIn)

	// Expand each key's matrix and assemble the pair, deferring H(pk).
	hDsts := make([][]byte, n)
	for i := 0; i < n; i++ {
		pks[i], sks[i], hDsts[i] = p.deriveKeyFromParts(&seeds[i], gOut[i], prfOut[i*per:(i+1)*per])
	}
	// Batch H: the public-key hash stored in every secret key.
	sha3.Sum256Batch(hDsts, pks)
	return pks, sks, nil
}

// deriveKeyFromParts is deriveKey with the G hash and the noise PRF
// expansions supplied by the caller (batched). It returns the key pair and
// the 32-byte region of sk where H(pk) must still be written.
func (p *Params) deriveKeyFromParts(seed *[64]byte, g []byte, prf [][]byte) (pk, sk, hDst []byte) {
	rho := g[:32]
	w := p.getWork()
	defer p.putWork(w)
	a, s, e, t := w.mat, w.vec1, w.vec2, w.vec3
	p.expandMatrix(a, rho, false, w)
	for i := range s {
		sampleCBD(&s[i], prf[i], p.Eta1)
		s[i].ntt()
	}
	for i := range e {
		sampleCBD(&e[i], prf[p.K+i], p.Eta1)
		e[i].ntt()
	}
	// t = A*s + e (all in the NTT domain).
	for i := 0; i < p.K; i++ {
		t[i] = poly{}
		for j := 0; j < p.K; j++ {
			basemulAcc(&t[i], &a[i*p.K+j], &s[j])
		}
		t[i].add(&e[i])
	}

	pk = make([]byte, 0, p.PublicKeySize())
	for i := range t {
		var buf [384]byte
		t[i].pack(12, buf[:])
		pk = append(pk, buf[:]...)
	}
	pk = append(pk, rho...)

	sk = make([]byte, 0, p.PrivateKeySize())
	for i := range s {
		var buf [384]byte
		s[i].pack(12, buf[:])
		sk = append(sk, buf[:]...)
	}
	sk = append(sk, pk...)
	sk = append(sk, make([]byte, 32)...) // H(pk), batch-filled by the caller
	sk = append(sk, seed[32:]...)
	return pk, sk, sk[len(sk)-64 : len(sk)-32]
}

// EncapBatch encapsulates against n public keys at once. The result is
// byte-identical to n sequential Encapsulate calls on the same rng — the
// 32-byte messages are read in the same order and expanded with the same
// derivation — but the SHAKE-based sets amortize the symmetric work across
// the batch: one multi-sponge pass each for the n H(m), H(pk), G, H(ct),
// and KDF hashes and one for the (2k+1)n noise PRFs. The lattice half
// (matrix expansion, NTTs, packing) stays per-message. The 90s (AES)
// variants fall back to the sequential path.
//
// All public keys are validated before any randomness is consumed, so a
// batch that errors reads nothing from rng (the sequential loop would have
// consumed 32 bytes per message preceding the bad key).
func (p *Params) EncapBatch(rng io.Reader, pks [][]byte) (cts, sss [][]byte, err error) {
	n := len(pks)
	if n == 0 {
		return nil, nil, nil
	}
	for i, pk := range pks {
		if len(pk) != p.PublicKeySize() {
			return nil, nil, fmt.Errorf("mlkem: public key %d of %d is %d bytes, want %d",
				i, n, len(pk), p.PublicKeySize())
		}
	}
	if rng == nil {
		rng = rand.Reader
	}
	cts = make([][]byte, n)
	sss = make([][]byte, n)
	ctBuf := make([]byte, n*p.CiphertextSize())
	ssBuf := make([]byte, n*32)
	for i := range cts {
		cts[i] = ctBuf[i*p.CiphertextSize() : (i+1)*p.CiphertextSize()]
		sss[i] = ssBuf[32*i : 32*(i+1)]
	}
	if !p.isShake() {
		for i := range pks {
			if err := p.EncapsulateInto(rng, pks[i], cts[i], sss[i]); err != nil {
				return nil, nil, err
			}
		}
		return cts, sss, nil
	}

	// Read all n messages up front — identical rng consumption to n
	// sequential Encapsulate calls, each of which reads exactly 32 bytes
	// and nothing else.
	ms := make([]byte, 32*n)
	if _, err := io.ReadFull(rng, ms); err != nil {
		return nil, nil, fmt.Errorf("mlkem: reading messages: %w", err)
	}
	mRefs := make([][]byte, n)
	for i := range mRefs {
		mRefs[i] = ms[32*i : 32*(i+1)]
	}
	// m_i = H(m_i), hashed in place: the batch one-shot absorbs every
	// input before squeezing any output.
	sha3.Sum256Batch(mRefs, mRefs)

	// h_i = H(pk_i).
	hBuf := make([]byte, 32*n)
	hRefs := make([][]byte, n)
	for i := range hRefs {
		hRefs[i] = hBuf[32*i : 32*(i+1)]
	}
	sha3.Sum256Batch(hRefs, pks)

	// (kBar_i, r_i) = G(m_i || h_i); each stream absorbs one contiguous
	// input slice, so the pairs are staged back to back.
	gIn := make([]byte, 64*n)
	gInRefs := make([][]byte, n)
	gBuf := make([]byte, 64*n)
	gRefs := make([][]byte, n)
	for i := 0; i < n; i++ {
		copy(gIn[64*i:], mRefs[i])
		copy(gIn[64*i+32:], hRefs[i])
		gInRefs[i] = gIn[64*i : 64*(i+1)]
		gRefs[i] = gBuf[64*i : 64*(i+1)]
	}
	sha3.Sum512Batch(gRefs, gInRefs)

	// The 2k+1 noise PRFs per message — SHAKE256(r_i || nonce) — in one
	// pass. Stream lengths differ when Eta1 != Eta2 (kyber512); the batch
	// squeezer honors per-stream dst lengths.
	per := 2*p.K + 1
	itemLen := 64 * (p.Eta1*p.K + p.Eta2*(p.K+1))
	prfIn := make([][]byte, n*per)
	prfOut := make([][]byte, n*per)
	prfSeed := make([]byte, 33*n*per)
	prfBuf := make([]byte, n*itemLen)
	off := 0
	for i := 0; i < n; i++ {
		r := gRefs[i][32:]
		for nonce := 0; nonce < per; nonce++ {
			idx := i*per + nonce
			in := prfSeed[33*idx : 33*idx+33]
			copy(in, r)
			in[32] = byte(nonce)
			prfIn[idx] = in
			eta := p.Eta2
			if nonce < p.K {
				eta = p.Eta1
			}
			prfOut[idx] = prfBuf[off : off+64*eta]
			off += 64 * eta
		}
	}
	sha3.ShakeSum256Batch(prfOut, prfIn)

	// Per-message lattice work: encrypt with the batch-expanded noise.
	w := p.getWork()
	for i := 0; i < n; i++ {
		p.pkeEncryptParts(cts[i], pks[i], mRefs[i], prfOut[i*per:(i+1)*per], w)
	}
	p.putWork(w)

	// hc_i = H(ct_i) lands directly after kBar_i so the final KDF input
	// kBar_i || hc_i is already contiguous.
	kdfIn := make([]byte, 64*n)
	kdfInRefs := make([][]byte, n)
	hcRefs := make([][]byte, n)
	for i := 0; i < n; i++ {
		copy(kdfIn[64*i:], gRefs[i][:32])
		kdfInRefs[i] = kdfIn[64*i : 64*(i+1)]
		hcRefs[i] = kdfIn[64*i+32 : 64*(i+1)]
	}
	sha3.Sum256Batch(hcRefs, cts)
	sha3.ShakeSum256Batch(sss, kdfInRefs)
	return cts, sss, nil
}
