package mlkem

import (
	"crypto/rand"
	"fmt"
	"io"

	"pqtls/internal/crypto/sha3"
)

// GenerateKeyBatch creates n key pairs from rng (crypto/rand if nil). The
// result is byte-identical to n sequential GenerateKey calls on the same
// rng — the seeds are read in the same order and expanded with the same
// derivation — but the SHAKE-based parameter sets amortize the symmetric
// work across the batch: one multi-sponge pass for the n G hashes, one for
// the 2kn noise PRFs, and one for the n public-key hashes. The 90s (AES)
// variants fall back to the sequential path.
func (p *Params) GenerateKeyBatch(rng io.Reader, n int) (pks, sks [][]byte, err error) {
	if n <= 0 {
		return nil, nil, nil
	}
	if rng == nil {
		rng = rand.Reader
	}
	seeds := make([][64]byte, n)
	for i := range seeds {
		if _, err := io.ReadFull(rng, seeds[i][:]); err != nil {
			return nil, nil, fmt.Errorf("mlkem: reading key seed %d of %d: %w", i, n, err)
		}
	}
	pks = make([][]byte, n)
	sks = make([][]byte, n)
	if _, ok := p.sym.(shakeSymmetric); !ok {
		for i := range seeds {
			pks[i], sks[i] = p.deriveKey(seeds[i])
		}
		return pks, sks, nil
	}

	// Batch G: (rho_i, sigma_i) = SHA3-512(d_i) for all keys at once.
	gIn := make([][]byte, n)
	gOut := make([][]byte, n)
	gBuf := make([]byte, 64*n)
	for i := range gIn {
		gIn[i] = seeds[i][:32]
		gOut[i] = gBuf[64*i : 64*(i+1)]
	}
	sha3.Sum512Batch(gOut, gIn)

	// Batch the noise PRFs: 2k SHAKE256(sigma_i || nonce) expansions per
	// key, all absorbed in one pass.
	per := 2 * p.K
	prfLen := 64 * p.Eta1
	prfIn := make([][]byte, n*per)
	prfOut := make([][]byte, n*per)
	prfSeed := make([]byte, 33*n*per)
	prfBuf := make([]byte, prfLen*n*per)
	for i := 0; i < n; i++ {
		sigma := gOut[i][32:]
		for nn := 0; nn < per; nn++ {
			idx := i*per + nn
			in := prfSeed[33*idx : 33*idx+33]
			copy(in, sigma)
			in[32] = byte(nn)
			prfIn[idx] = in
			prfOut[idx] = prfBuf[prfLen*idx : prfLen*(idx+1)]
		}
	}
	sha3.ShakeSum256Batch(prfOut, prfIn)

	// Expand each key's matrix and assemble the pair, deferring H(pk).
	hDsts := make([][]byte, n)
	for i := 0; i < n; i++ {
		pks[i], sks[i], hDsts[i] = p.deriveKeyFromParts(&seeds[i], gOut[i], prfOut[i*per:(i+1)*per])
	}
	// Batch H: the public-key hash stored in every secret key.
	sha3.Sum256Batch(hDsts, pks)
	return pks, sks, nil
}

// deriveKeyFromParts is deriveKey with the G hash and the noise PRF
// expansions supplied by the caller (batched). It returns the key pair and
// the 32-byte region of sk where H(pk) must still be written.
func (p *Params) deriveKeyFromParts(seed *[64]byte, g []byte, prf [][]byte) (pk, sk, hDst []byte) {
	rho := g[:32]
	w := p.getWork()
	defer p.putWork(w)
	a, s, e, t := w.mat, w.vec1, w.vec2, w.vec3
	p.expandMatrix(a, rho, false)
	for i := range s {
		sampleCBD(&s[i], prf[i], p.Eta1)
		s[i].ntt()
	}
	for i := range e {
		sampleCBD(&e[i], prf[p.K+i], p.Eta1)
		e[i].ntt()
	}
	// t = A*s + e (all in the NTT domain).
	for i := 0; i < p.K; i++ {
		t[i] = poly{}
		for j := 0; j < p.K; j++ {
			basemulAcc(&t[i], &a[i*p.K+j], &s[j])
		}
		t[i].add(&e[i])
	}

	pk = make([]byte, 0, p.PublicKeySize())
	for i := range t {
		var buf [384]byte
		t[i].pack(12, buf[:])
		pk = append(pk, buf[:]...)
	}
	pk = append(pk, rho...)

	sk = make([]byte, 0, p.PrivateKeySize())
	for i := range s {
		var buf [384]byte
		s[i].pack(12, buf[:])
		sk = append(sk, buf[:]...)
	}
	sk = append(sk, pk...)
	sk = append(sk, make([]byte, 32)...) // H(pk), batch-filled by the caller
	sk = append(sk, seed[32:]...)
	return pk, sk, sk[len(sk)-64 : len(sk)-32]
}
