package mlkem

import (
	"bytes"
	"testing"

	"pqtls/internal/crypto/sha3"
)

// drbgReader is a deterministic random stream for differential tests.
func drbgReader(seed string) sha3.XOF {
	x := sha3.NewShake256()
	x.Write([]byte(seed))
	return x
}

// TestGenerateKeyBatchMatchesSequential pins the batch-keygen contract: for
// every parameter set (SHAKE and 90s/AES alike), GenerateKeyBatch over a
// DRBG must produce byte-identical key pairs to sequential GenerateKey
// calls consuming the same stream.
func TestGenerateKeyBatchMatchesSequential(t *testing.T) {
	sets := []*Params{Kyber512, Kyber768, Kyber1024, Kyber90s512, Kyber90s768, Kyber90s1024}
	for _, p := range sets {
		for _, n := range []int{1, 2, 7, 16} {
			seq := drbgReader(p.Name)
			batch := drbgReader(p.Name)
			wantPK := make([][]byte, n)
			wantSK := make([][]byte, n)
			for i := 0; i < n; i++ {
				pk, sk, err := p.GenerateKey(seq)
				if err != nil {
					t.Fatal(err)
				}
				wantPK[i], wantSK[i] = pk, sk
			}
			pks, sks, err := p.GenerateKeyBatch(batch, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(pks) != n || len(sks) != n {
				t.Fatalf("%s n=%d: got %d/%d keys", p.Name, n, len(pks), len(sks))
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(pks[i], wantPK[i]) {
					t.Fatalf("%s n=%d: public key %d differs from sequential keygen", p.Name, n, i)
				}
				if !bytes.Equal(sks[i], wantSK[i]) {
					t.Fatalf("%s n=%d: private key %d differs from sequential keygen", p.Name, n, i)
				}
			}
		}
	}
}

// TestGenerateKeyBatchKeysWork round-trips an encapsulation through each
// batched key pair.
func TestGenerateKeyBatchKeysWork(t *testing.T) {
	rng := drbgReader("batch-roundtrip")
	pks, sks, err := Kyber768.GenerateKeyBatch(rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pks {
		ct, ss, err := Kyber768.Encapsulate(rng, pks[i])
		if err != nil {
			t.Fatal(err)
		}
		ss2, err := Kyber768.Decapsulate(sks[i], ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss, ss2) {
			t.Fatalf("key %d: shared secrets diverge", i)
		}
	}
}

func BenchmarkKyber768KeygenBatch16(b *testing.B) {
	rng := drbgReader("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Kyber768.GenerateKeyBatch(rng, 16); err != nil {
			b.Fatal(err)
		}
	}
}
