package mlkem

import (
	"bytes"
	"testing"

	"pqtls/internal/crypto/sha3"
)

// drbgReader is a deterministic random stream for differential tests.
func drbgReader(seed string) sha3.XOF {
	x := sha3.NewShake256()
	x.Write([]byte(seed))
	return x
}

// TestGenerateKeyBatchMatchesSequential pins the batch-keygen contract: for
// every parameter set (SHAKE and 90s/AES alike), GenerateKeyBatch over a
// DRBG must produce byte-identical key pairs to sequential GenerateKey
// calls consuming the same stream.
func TestGenerateKeyBatchMatchesSequential(t *testing.T) {
	sets := []*Params{Kyber512, Kyber768, Kyber1024, Kyber90s512, Kyber90s768, Kyber90s1024}
	for _, p := range sets {
		for _, n := range []int{1, 2, 7, 16} {
			seq := drbgReader(p.Name)
			batch := drbgReader(p.Name)
			wantPK := make([][]byte, n)
			wantSK := make([][]byte, n)
			for i := 0; i < n; i++ {
				pk, sk, err := p.GenerateKey(seq)
				if err != nil {
					t.Fatal(err)
				}
				wantPK[i], wantSK[i] = pk, sk
			}
			pks, sks, err := p.GenerateKeyBatch(batch, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(pks) != n || len(sks) != n {
				t.Fatalf("%s n=%d: got %d/%d keys", p.Name, n, len(pks), len(sks))
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(pks[i], wantPK[i]) {
					t.Fatalf("%s n=%d: public key %d differs from sequential keygen", p.Name, n, i)
				}
				if !bytes.Equal(sks[i], wantSK[i]) {
					t.Fatalf("%s n=%d: private key %d differs from sequential keygen", p.Name, n, i)
				}
			}
		}
	}
}

// TestGenerateKeyBatchKeysWork round-trips an encapsulation through each
// batched key pair.
func TestGenerateKeyBatchKeysWork(t *testing.T) {
	rng := drbgReader("batch-roundtrip")
	pks, sks, err := Kyber768.GenerateKeyBatch(rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pks {
		ct, ss, err := Kyber768.Encapsulate(rng, pks[i])
		if err != nil {
			t.Fatal(err)
		}
		ss2, err := Kyber768.Decapsulate(sks[i], ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss, ss2) {
			t.Fatalf("key %d: shared secrets diverge", i)
		}
	}
}

// TestEncapBatchMatchesSequential pins the batch-encaps contract: for
// every parameter set (SHAKE and 90s/AES alike), EncapBatch over a DRBG
// must produce byte-identical ciphertexts and shared secrets to sequential
// Encapsulate calls consuming the same stream.
func TestEncapBatchMatchesSequential(t *testing.T) {
	sets := []*Params{Kyber512, Kyber768, Kyber1024, Kyber90s512, Kyber90s768, Kyber90s1024}
	for _, p := range sets {
		pks := make([][]byte, 0, 16)
		keyRNG := drbgReader("encap-batch-keys/" + p.Name)
		for i := 0; i < 16; i++ {
			pk, _, err := p.GenerateKey(keyRNG)
			if err != nil {
				t.Fatal(err)
			}
			pks = append(pks, pk)
		}
		for _, n := range []int{1, 2, 7, 16} {
			seq := drbgReader(p.Name)
			batch := drbgReader(p.Name)
			wantCT := make([][]byte, n)
			wantSS := make([][]byte, n)
			for i := 0; i < n; i++ {
				ct, ss, err := p.Encapsulate(seq, pks[i])
				if err != nil {
					t.Fatal(err)
				}
				wantCT[i], wantSS[i] = ct, ss
			}
			cts, sss, err := p.EncapBatch(batch, pks[:n])
			if err != nil {
				t.Fatal(err)
			}
			if len(cts) != n || len(sss) != n {
				t.Fatalf("%s n=%d: got %d/%d results", p.Name, n, len(cts), len(sss))
			}
			for i := 0; i < n; i++ {
				if !bytes.Equal(cts[i], wantCT[i]) {
					t.Fatalf("%s n=%d: ciphertext %d differs from sequential encaps", p.Name, n, i)
				}
				if !bytes.Equal(sss[i], wantSS[i]) {
					t.Fatalf("%s n=%d: shared secret %d differs from sequential encaps", p.Name, n, i)
				}
			}
		}
	}
}

// TestEncapBatchSecretsDecapsulate round-trips every batched ciphertext
// through the matching private key.
func TestEncapBatchSecretsDecapsulate(t *testing.T) {
	rng := drbgReader("encap-batch-roundtrip")
	pks, sks, err := Kyber768.GenerateKeyBatch(rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	cts, sss, err := Kyber768.EncapBatch(rng, pks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cts {
		ss, err := Kyber768.Decapsulate(sks[i], cts[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss, sss[i]) {
			t.Fatalf("key %d: decapsulated secret diverges from batch encaps", i)
		}
	}
}

// TestEncapBatchRejectsBadKey checks that a malformed key anywhere in the
// batch fails the whole call without consuming randomness.
func TestEncapBatchRejectsBadKey(t *testing.T) {
	rng := drbgReader("encap-batch-badkey")
	pk, _, err := Kyber768.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]byte, 32)
	probe := drbgReader("probe")
	probe.Read(before)
	bad := drbgReader("probe")
	if _, _, err := Kyber768.EncapBatch(bad, [][]byte{pk, make([]byte, 10)}); err == nil {
		t.Fatal("EncapBatch accepted a malformed public key")
	}
	after := make([]byte, 32)
	bad.Read(after)
	if !bytes.Equal(before, after) {
		t.Fatal("EncapBatch consumed randomness before failing validation")
	}
}

// TestEncapsulateIntoZeroAlloc pins the zero-alloc contract of the
// SHAKE-set encapsulation hot path (the per-connection server cost).
func TestEncapsulateIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats escape analysis; allocs gated by bench-gate")
	}
	rng := drbgReader("encap-zero-alloc")
	pk, sk, err := Kyber768.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, Kyber768.CiphertextSize())
	ss := make([]byte, Kyber768.SharedSecretSize())
	allocs := testing.AllocsPerRun(100, func() {
		if err := Kyber768.EncapsulateInto(rng, pk, ct, ss); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncapsulateInto allocates %v times per op, want 0", allocs)
	}
	ss2 := make([]byte, Kyber768.SharedSecretSize())
	allocs = testing.AllocsPerRun(100, func() {
		if err := Kyber768.DecapsulateInto(sk, ct, ss2); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecapsulateInto allocates %v times per op, want 0", allocs)
	}
}

func BenchmarkKyber768KeygenBatch16(b *testing.B) {
	rng := drbgReader("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Kyber768.GenerateKeyBatch(rng, 16); err != nil {
			b.Fatal(err)
		}
	}
}
