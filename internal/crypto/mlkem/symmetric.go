package mlkem

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"crypto/sha512"
	"io"

	"pqtls/internal/crypto/sha3"
)

// symmetric bundles the hash/XOF primitives a Kyber variant is instantiated
// with: SHAKE/SHA-3 for the standard sets, AES-256-CTR/SHA-2 for the "90s"
// sets the paper benchmarks as kyber90s*.
type symmetric interface {
	// XOF returns the stream used to expand the matrix A from seed rho at
	// position (i, j). Release the stream with putXOF when done so pooled
	// sponge states can be recycled.
	XOF(rho []byte, i, j byte) io.Reader
	// PRF expands (sigma, nonce) into len(dst) bytes of noise-sampling
	// randomness, writing into dst without allocating.
	PRF(dst []byte, sigma []byte, nonce byte)
	// H is the 32-byte hash (SHA3-256 / SHA-256).
	H(data []byte) [32]byte
	// G is the 64-byte hash (SHA3-512 / SHA-512).
	G(data ...[]byte) [64]byte
	// KDF derives the 32-byte shared secret (SHAKE256 / SHA-256).
	KDF(data ...[]byte) [32]byte
}

// putXOF hands a finished XOF stream back to the sha3 state pool (a no-op
// for the AES-CTR streams of the 90s variants).
func putXOF(r io.Reader) { sha3.PutXOF(r) }

// shakeSymmetric is the standard (round-3) Kyber instantiation.
type shakeSymmetric struct{}

func (shakeSymmetric) XOF(rho []byte, i, j byte) io.Reader {
	x := sha3.NewShake128()
	x.Write(rho)
	var pos [2]byte
	pos[0], pos[1] = i, j
	x.Write(pos[:])
	return x
}

func (shakeSymmetric) PRF(dst []byte, sigma []byte, nonce byte) {
	var n [1]byte
	n[0] = nonce
	sha3.ShakeSum256Into(dst, sigma, n[:])
}

func (shakeSymmetric) H(data []byte) [32]byte { return sha3.Sum256(data) }

func (shakeSymmetric) G(data ...[]byte) [64]byte {
	return sha3.Sum512(data...)
}

func (shakeSymmetric) KDF(data ...[]byte) [32]byte {
	var out [32]byte
	sha3.ShakeSum256Into(out[:], data...)
	return out
}

// aesSymmetric is the 90s instantiation: AES-256-CTR as XOF/PRF, SHA-2 as H/G.
type aesSymmetric struct{}

func aesCTR(key []byte, iv [16]byte) cipher.Stream {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("mlkem: bad AES key size: " + err.Error())
	}
	return cipher.NewCTR(block, iv[:])
}

func (aesSymmetric) XOF(rho []byte, i, j byte) io.Reader {
	var iv [16]byte
	iv[0], iv[1] = j, i // spec order: nonce = j || i || 0...
	stream := aesCTR(rho, iv)
	return readerFunc(func(p []byte) (int, error) {
		for k := range p {
			p[k] = 0
		}
		stream.XORKeyStream(p, p)
		return len(p), nil
	})
}

func (aesSymmetric) PRF(dst []byte, sigma []byte, nonce byte) {
	var iv [16]byte
	iv[0] = nonce
	for i := range dst {
		dst[i] = 0
	}
	aesCTR(sigma, iv).XORKeyStream(dst, dst)
}

func (aesSymmetric) H(data []byte) [32]byte { return sha256.Sum256(data) }

func (aesSymmetric) G(data ...[]byte) [64]byte {
	return sha512.Sum512(concat(data...))
}

func (aesSymmetric) KDF(data ...[]byte) [32]byte {
	return sha256.Sum256(concat(data...))
}

type readerFunc func(p []byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

// concat is used only by the SHA-2 hashes of the 90s variants, whose
// stdlib one-shot APIs take a single slice.
func concat(data ...[]byte) []byte {
	n := 0
	for _, d := range data {
		n += len(d)
	}
	out := make([]byte, 0, n)
	for _, d := range data {
		out = append(out, d...)
	}
	return out
}

// sampleUniform fills p with coefficients rejection-sampled from the XOF
// stream (SampleNTT): consecutive 3-byte groups yield two 12-bit candidates.
// The caller lends buf (one SHAKE128 block's worth of candidates) so the
// read through the io.Reader interface doesn't force a heap allocation.
func sampleUniform(p *poly, r io.Reader, buf *[3 * 168]byte) {
	i := 0
	for i < N {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			panic("mlkem: xof read: " + err.Error())
		}
		for j := 0; j+3 <= len(buf) && i < N; j += 3 {
			d1 := int16(buf[j]) | int16(buf[j+1]&0x0F)<<8
			d2 := int16(buf[j+1]>>4) | int16(buf[j+2])<<4
			if d1 < Q {
				p[i] = d1
				i++
			}
			if d2 < Q && i < N {
				p[i] = d2
				i++
			}
		}
	}
}

// sampleCBD fills p from the centered binomial distribution with parameter
// eta (2 or 3), consuming 64*eta bytes of PRF output.
func sampleCBD(p *poly, buf []byte, eta int) {
	switch eta {
	case 2:
		for i := 0; i < N/8; i++ {
			t := uint32(buf[4*i]) | uint32(buf[4*i+1])<<8 |
				uint32(buf[4*i+2])<<16 | uint32(buf[4*i+3])<<24
			d := t&0x55555555 + t>>1&0x55555555
			for j := 0; j < 8; j++ {
				a := int16(d >> (4 * j) & 3)
				b := int16(d >> (4*j + 2) & 3)
				p[8*i+j] = freduce(a - b + Q)
			}
		}
	case 3:
		for i := 0; i < N/4; i++ {
			t := uint32(buf[3*i]) | uint32(buf[3*i+1])<<8 | uint32(buf[3*i+2])<<16
			d := t&0x00249249 + t>>1&0x00249249 + t>>2&0x00249249
			for j := 0; j < 4; j++ {
				a := int16(d >> (6 * j) & 7)
				b := int16(d >> (6*j + 3) & 7)
				p[4*i+j] = freduce(a - b + Q)
			}
		}
	default:
		panic("mlkem: unsupported eta")
	}
}
