package mlkem

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// Known-answer regression tests in the NIST KAT style: a deterministic DRBG
// seeds key generation and encapsulation, and the resulting public key,
// ciphertext and shared secret are pinned as SHA-256 digests. The vectors
// were generated from this implementation (round-3 Kyber, which predates the
// final FIPS 203 tweaks, so official ML-KEM vectors do not apply); they lock
// the algorithm against unintended changes — any refactor that alters a
// single output byte fails the digest comparison.

// katDRBG is a deterministic byte stream: SHA-256 in counter mode over a
// seed, mirroring the role of randombytes() in the NIST KAT harness.
type katDRBG struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newKATDRBG(seed string) *katDRBG {
	d := &katDRBG{}
	copy(d.seed[:], seed)
	return d
}

func (d *katDRBG) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		var block [40]byte
		copy(block[:32], d.seed[:])
		binary.BigEndian.PutUint64(block[32:], d.ctr)
		d.ctr++
		sum := sha256.Sum256(block[:])
		d.buf = append(d.buf, sum[:]...)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

func digest(parts ...[]byte) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// mlkemKAT pins one (seed -> pk, ct, ss) transcript per DRBG seed.
type mlkemKAT struct {
	seed string
	pk   string // SHA-256(pk)
	ct   string // SHA-256(ct)
	ss   string // SHA-256(ss)
}

var kyber768KATs = []mlkemKAT{
	{"kat-mlkem768-vector-0",
		"33da7eeb0e10ba178c259e7fba379f67fe4954b256ab0fed0212cbf697929f29",
		"09a38f14e44c27376df76d63f0c573347c0385fe8067aae098673bf7140fb4f8",
		"2b35358f559810b1c61aa05f70a64f26078f55a9c415cfb30e2d73a904e36a10"},
	{"kat-mlkem768-vector-1",
		"fd5f49669c3a22ae0a922efe16e4773f88913d011e16e660dbe157b19bc2942d",
		"822aef657335617bc5b9d57fb867449dc5686b50f1e12d24e0a78a443d64ac8e",
		"3a15b8a87bf40f78d77d8535a06e79088f876ef82bf71a26b35be45fed6be638"},
	{"kat-mlkem768-vector-2",
		"053be8916595cdc8f63f84a66d3db17708ca2aa0f9a473dba24770e4b7b5a149",
		"0c8125eb154c1adf4af4cce7fb912e38624b2cb090827589331b2745bed87636",
		"b54fd35c597b82f4697f4da419a5f015c1eff5526325628bd521c4faf7792481"},
	{"kat-mlkem768-vector-3",
		"74afdefc953945d6797ca6da64461216620ae2fcb9136a04b6c38029c2aa4047",
		"8b8db52d3551cb41ecdc08590d39f85955bd4ccf7f6be18a9a43fc7a2a2b0e91",
		"7145f3621d1500cf4b14d46f1df6a090d7148b65d7540281a2cfefe63d0f6ef8"},
}

// TestKyber768KAT runs the pinned ML-KEM-768-style known-answer transcript:
// keygen and encaps draw from the seeded DRBG, decaps must reproduce the
// encapsulated secret, and all outputs must match their pinned digests.
func TestKyber768KAT(t *testing.T) {
	t.Parallel()
	for i, kat := range kyber768KATs {
		drbg := newKATDRBG(kat.seed)
		pk, sk, err := Kyber768.GenerateKey(drbg)
		if err != nil {
			t.Fatalf("vector %d: keygen: %v", i, err)
		}
		ct, ss, err := Kyber768.Encapsulate(drbg, pk)
		if err != nil {
			t.Fatalf("vector %d: encaps: %v", i, err)
		}
		ss2, err := Kyber768.Decapsulate(sk, ct)
		if err != nil {
			t.Fatalf("vector %d: decaps: %v", i, err)
		}
		if !bytes.Equal(ss, ss2) {
			t.Errorf("vector %d: decaps secret differs from encaps secret", i)
		}
		if got := digest(pk); got != kat.pk {
			t.Errorf("vector %d: pk digest = %s, want %s", i, got, kat.pk)
		}
		if got := digest(ct); got != kat.ct {
			t.Errorf("vector %d: ct digest = %s, want %s", i, got, kat.ct)
		}
		if got := digest(ss); got != kat.ss {
			t.Errorf("vector %d: ss digest = %s, want %s", i, got, kat.ss)
		}
		if len(pk) != Kyber768.PublicKeySize() || len(ct) != Kyber768.CiphertextSize() {
			t.Errorf("vector %d: sizes pk=%d ct=%d", i, len(pk), len(ct))
		}
	}
}

// TestKyber768KATTamper locks the implicit-rejection path: decapsulating a
// corrupted ciphertext must succeed but yield a different (pseudorandom)
// secret, never an error or the true secret.
func TestKyber768KATTamper(t *testing.T) {
	t.Parallel()
	drbg := newKATDRBG(kyber768KATs[0].seed)
	pk, sk, err := Kyber768.GenerateKey(drbg)
	if err != nil {
		t.Fatal(err)
	}
	ct, ss, err := Kyber768.Encapsulate(drbg, pk)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte{}, ct...)
	bad[0] ^= 1
	ssBad, err := Kyber768.Decapsulate(sk, bad)
	if err != nil {
		t.Fatalf("implicit rejection must not error: %v", err)
	}
	if bytes.Equal(ss, ssBad) {
		t.Error("tampered ciphertext decapsulated to the true secret")
	}
}
