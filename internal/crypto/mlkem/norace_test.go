//go:build !race

package mlkem

const raceEnabled = false
