// Package mlkem implements the Kyber / ML-KEM lattice key-encapsulation
// mechanism (round-3 Kyber as benchmarked by the paper via liboqs) for the
// three NIST parameter sets and their "90s" variants, from scratch on top of
// the internal SHA-3 package and the standard library's AES/SHA-2.
package mlkem

const (
	// N is the polynomial degree of the Kyber ring R_q = Z_q[X]/(X^256+1).
	N = 256
	// Q is the Kyber modulus.
	Q = 3329
	// qInv128 is 128^-1 mod q, the scaling factor of the inverse NTT.
	qInv128 = 3303
)

// poly is a polynomial with coefficients in Z_q. Coefficients are kept in
// [0, q) at API boundaries; intermediate values may be any int16 residue.
type poly [N]int16

// zetas[i] = 17^bitrev7(i) mod q; 17 is a principal 256th root of unity.
// zetasInv[i] is the modular inverse of zetas[i], used by the
// Gentleman-Sande butterflies of the inverse transform.
var (
	zetas    [128]int16
	zetasInv [128]int16
)

func init() {
	pow := func(b, e int) int {
		r := 1
		for ; e > 0; e >>= 1 {
			if e&1 == 1 {
				r = r * b % Q
			}
			b = b * b % Q
		}
		return r
	}
	for i := 0; i < 128; i++ {
		br := 0
		for b := 0; b < 7; b++ {
			br |= (i >> b & 1) << (6 - b)
		}
		zetas[i] = int16(pow(17, br))
		zetasInv[i] = int16(pow(int(zetas[i]), Q-2))
	}
}

// fqmul multiplies two residues and reduces mod q.
func fqmul(a, b int16) int16 {
	return int16(int32(a) * int32(b) % Q)
}

// freduce maps any int16 residue into [0, q).
func freduce(a int16) int16 {
	a %= Q
	if a < 0 {
		a += Q
	}
	return a
}

// ntt transforms p in place into the (incomplete, 7-layer) NTT domain.
func (p *poly) ntt() {
	k := 1
	for l := 128; l >= 2; l >>= 1 {
		for start := 0; start < N; start += 2 * l {
			zeta := zetas[k]
			k++
			for j := start; j < start+l; j++ {
				t := fqmul(zeta, p[j+l])
				p[j+l] = freduce(p[j] - t)
				p[j] = freduce(p[j] + t)
			}
		}
	}
}

// invNTT transforms p in place back into the coefficient domain.
func (p *poly) invNTT() {
	// Gentleman-Sande butterflies. Walking the forward zeta table backwards
	// while negating the difference term works because of the reflection
	// identity -zetas[127-m] = zetas[64+m]^-1 (17^128 = -1 mod q), exactly
	// as in the Kyber reference implementation.
	k := 127
	for l := 2; l <= 128; l <<= 1 {
		for start := 0; start < N; start += 2 * l {
			zeta := zetas[k]
			k--
			for j := start; j < start+l; j++ {
				t := p[j]
				p[j] = freduce(t + p[j+l])
				p[j+l] = fqmul(zeta, freduce(p[j+l]-t+Q))
			}
		}
	}
	for i := range p {
		p[i] = freduce(fqmul(p[i], qInv128))
	}
}

// basemulAcc accumulates a*b (NTT domain, pairwise products modulo
// X^2 - zeta) into r.
func basemulAcc(r, a, b *poly) {
	for i := 0; i < 64; i++ {
		z := int32(zetas[64+i])
		mul := func(off int, zeta int32) {
			a0, a1 := int32(a[off]), int32(a[off+1])
			b0, b1 := int32(b[off]), int32(b[off+1])
			c0 := (a0*b0 + a1*b1%Q*zeta) % Q
			c1 := (a0*b1 + a1*b0) % Q
			r[off] = freduce(r[off] + int16(c0))
			r[off+1] = freduce(r[off+1] + int16(c1))
		}
		mul(4*i, z)
		mul(4*i+2, Q-z)
	}
}

func (p *poly) add(a *poly) {
	for i := range p {
		p[i] = freduce(p[i] + a[i])
	}
}

func (p *poly) sub(a *poly) {
	for i := range p {
		p[i] = freduce(p[i] - a[i] + Q)
	}
}

// compress maps each coefficient to d bits: round(2^d/q * x) mod 2^d.
func (p *poly) compress(d uint) {
	for i, x := range p {
		p[i] = int16((uint32(x)<<d + Q/2) / Q & (1<<d - 1))
	}
}

// decompress maps d-bit values back: round(q/2^d * y).
func (p *poly) decompress(d uint) {
	for i, y := range p {
		p[i] = int16((uint32(y)*Q + 1<<(d-1)) >> d)
	}
}

// pack serializes the low d bits of every coefficient, little-endian bit
// order, into out (len must be 32*d).
func (p *poly) pack(d uint, out []byte) {
	var acc uint32
	var bits uint
	j := 0
	for _, x := range p {
		acc |= uint32(x) & (1<<d - 1) << bits
		bits += d
		for bits >= 8 {
			out[j] = byte(acc)
			acc >>= 8
			bits -= 8
			j++
		}
	}
}

// unpack reverses pack.
func (p *poly) unpack(d uint, in []byte) {
	var acc uint32
	var bits uint
	j := 0
	for i := range p {
		for bits < d {
			acc |= uint32(in[j]) << bits
			bits += 8
			j++
		}
		p[i] = int16(acc & (1<<d - 1))
		acc >>= d
		bits -= d
	}
}

// fromMsg maps a 32-byte message to a polynomial with coefficients in
// {0, ceil(q/2)} (decompress with d=1).
func (p *poly) fromMsg(msg []byte) {
	for i := 0; i < N; i++ {
		if msg[i/8]>>(i%8)&1 == 1 {
			p[i] = (Q + 1) / 2
		} else {
			p[i] = 0
		}
	}
}

// toMsg maps a polynomial back to a 32-byte message (compress with d=1).
func (p *poly) toMsg(msg []byte) {
	for i := range msg {
		msg[i] = 0
	}
	for i, x := range p {
		bit := (uint32(x)<<1 + Q/2) / Q & 1
		msg[i/8] |= byte(bit << (i % 8))
	}
}
