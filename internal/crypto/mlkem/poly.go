// Package mlkem implements the Kyber / ML-KEM lattice key-encapsulation
// mechanism (round-3 Kyber as benchmarked by the paper via liboqs) for the
// three NIST parameter sets and their "90s" variants, from scratch on top of
// the internal SHA-3 package and the standard library's AES/SHA-2.
package mlkem

const (
	// N is the polynomial degree of the Kyber ring R_q = Z_q[X]/(X^256+1).
	N = 256
	// Q is the Kyber modulus.
	Q = 3329
	// qInv128 is 128^-1 mod q, the scaling factor of the inverse NTT.
	qInv128 = 3303
)

// poly is a polynomial with coefficients in Z_q. Coefficients are kept in
// [0, q) at API boundaries; intermediate values may be any int16 residue.
type poly [N]int16

// zetas[i] = 17^bitrev7(i) mod q; 17 is a principal 256th root of unity.
// zetasMont[i] holds the same root scaled by the Montgomery radix
// (zetas[i]·2^16 mod q), so montReduce(x·zetasMont[i]) = x·zetas[i] mod q
// keeps butterfly values in the plain domain with one cheap reduction.
var (
	zetas     [128]int16
	zetasMont [128]int16
)

const (
	// qInvNeg is q^-1 mod 2^16 as a wrapped int16 (62209 - 65536): the
	// low-half multiplier of Montgomery reduction.
	qInvNeg int16 = 62209 - 65536
	// montR is 2^16 mod q, the Montgomery radix residue.
	montR = (1 << 16) % Q
)

func init() {
	pow := func(b, e int) int {
		r := 1
		for ; e > 0; e >>= 1 {
			if e&1 == 1 {
				r = r * b % Q
			}
			b = b * b % Q
		}
		return r
	}
	for i := 0; i < 128; i++ {
		br := 0
		for b := 0; b < 7; b++ {
			br |= (i >> b & 1) << (6 - b)
		}
		zetas[i] = int16(pow(17, br))
		zetasMont[i] = int16(int(zetas[i]) * montR % Q)
	}
}

// montReduce maps a ∈ (-q·2^15, q·2^15) to a·2^-16 mod q in (-q, q).
func montReduce(a int32) int16 {
	u := int16(a) * qInvNeg
	return int16((a - int32(u)*Q) >> 16)
}

// barrettReduce maps any int16 to the centered representative of a mod q
// in [-(q-1)/2, (q-1)/2].
func barrettReduce(a int16) int16 {
	const v = ((1 << 26) + Q/2) / Q
	t := int16((int32(v)*int32(a) + (1 << 25)) >> 26)
	return a - t*Q
}

// normalize maps a lazily-reduced coefficient to its canonical
// representative in [0, q).
func normalize(a int16) int16 {
	a = barrettReduce(a)
	a += (a >> 15) & Q
	return a
}

// fqmul multiplies two residues and reduces mod q.
func fqmul(a, b int16) int16 {
	return int16(int32(a) * int32(b) % Q)
}

// freduce maps any int16 residue into [0, q).
func freduce(a int16) int16 {
	a %= Q
	if a < 0 {
		a += Q
	}
	return a
}

// ntt transforms p in place into the (incomplete, 7-layer) NTT domain.
//
// Reductions are lazy, as in the Kyber reference implementation: only the
// multiplied wing of each butterfly is reduced (Montgomery, via the
// radix-scaled zeta table), so magnitudes grow by at most q per layer and
// stay below 8q < 2^15 across the 7 layers. One Barrett pass at the end
// restores the canonical [0, q) representation the serializers and the
// base multiplication expect, keeping all outputs byte-identical to the
// eager form.
func (p *poly) ntt() {
	k := 1
	for l := 128; l >= 2; l >>= 1 {
		for start := 0; start < N; start += 2 * l {
			zeta := int32(zetasMont[k])
			k++
			for j := start; j < start+l; j++ {
				t := montReduce(zeta * int32(p[j+l]))
				p[j+l] = p[j] - t
				p[j] += t
			}
		}
	}
	for i := range p {
		p[i] = normalize(p[i])
	}
}

// invNTT transforms p in place back into the coefficient domain.
//
// Gentleman-Sande butterflies. Walking the forward zeta table backwards
// while negating the difference term works because of the reflection
// identity -zetas[127-m] = zetas[64+m]^-1 (17^128 = -1 mod q), exactly
// as in the Kyber reference implementation. The sum wing is kept bounded
// with a Barrett reduction; the difference wing tolerates the lazy range
// because Montgomery reduction accepts any |a| < q·2^15.
func (p *poly) invNTT() {
	k := 127
	for l := 2; l <= 128; l <<= 1 {
		for start := 0; start < N; start += 2 * l {
			zeta := int32(zetasMont[k])
			k--
			for j := start; j < start+l; j++ {
				t := p[j]
				p[j] = barrettReduce(t + p[j+l])
				p[j+l] = montReduce(zeta * int32(p[j+l]-t))
			}
		}
	}
	// Fold the 128^-1 scaling into one Montgomery multiply per
	// coefficient (the radix in fMont cancels the 2^-16 of montReduce),
	// then normalize to [0, q).
	const fMont = qInv128 * montR % Q
	for i := range p {
		p[i] = normalize(montReduce(fMont * int32(p[i])))
	}
}

// basemulAcc accumulates a*b (NTT domain, pairwise products modulo
// X^2 - zeta) into r. Both wings of each degree-2 base multiplication are
// fused into one pass over fixed-size chunks, which lets the compiler
// drop the bounds checks in the inner products.
func basemulAcc(r, a, b *poly) {
	for i := 0; i < 64; i++ {
		z := int32(zetas[64+i])
		ra := r[4*i : 4*i+4 : 4*i+4]
		aa := a[4*i : 4*i+4 : 4*i+4]
		bb := b[4*i : 4*i+4 : 4*i+4]

		a0, a1, a2, a3 := int32(aa[0]), int32(aa[1]), int32(aa[2]), int32(aa[3])
		b0, b1, b2, b3 := int32(bb[0]), int32(bb[1]), int32(bb[2]), int32(bb[3])

		c0 := (a0*b0 + a1*b1%Q*z) % Q
		c1 := (a0*b1 + a1*b0) % Q
		c2 := (a2*b2 + a3*b3%Q*(Q-z)) % Q
		c3 := (a2*b3 + a3*b2) % Q

		ra[0] = freduce(ra[0] + int16(c0))
		ra[1] = freduce(ra[1] + int16(c1))
		ra[2] = freduce(ra[2] + int16(c2))
		ra[3] = freduce(ra[3] + int16(c3))
	}
}

func (p *poly) add(a *poly) {
	for i := range p {
		p[i] = freduce(p[i] + a[i])
	}
}

func (p *poly) sub(a *poly) {
	for i := range p {
		p[i] = freduce(p[i] - a[i] + Q)
	}
}

// compress maps each coefficient to d bits: round(2^d/q * x) mod 2^d.
func (p *poly) compress(d uint) {
	for i, x := range p {
		p[i] = int16((uint32(x)<<d + Q/2) / Q & (1<<d - 1))
	}
}

// decompress maps d-bit values back: round(q/2^d * y).
func (p *poly) decompress(d uint) {
	for i, y := range p {
		p[i] = int16((uint32(y)*Q + 1<<(d-1)) >> d)
	}
}

// pack serializes the low d bits of every coefficient, little-endian bit
// order, into out (len must be 32*d).
func (p *poly) pack(d uint, out []byte) {
	var acc uint32
	var bits uint
	j := 0
	for _, x := range p {
		acc |= uint32(x) & (1<<d - 1) << bits
		bits += d
		for bits >= 8 {
			out[j] = byte(acc)
			acc >>= 8
			bits -= 8
			j++
		}
	}
}

// unpack reverses pack.
func (p *poly) unpack(d uint, in []byte) {
	var acc uint32
	var bits uint
	j := 0
	for i := range p {
		for bits < d {
			acc |= uint32(in[j]) << bits
			bits += 8
			j++
		}
		p[i] = int16(acc & (1<<d - 1))
		acc >>= d
		bits -= d
	}
}

// fromMsg maps a 32-byte message to a polynomial with coefficients in
// {0, ceil(q/2)} (decompress with d=1).
func (p *poly) fromMsg(msg []byte) {
	for i := 0; i < N; i++ {
		if msg[i/8]>>(i%8)&1 == 1 {
			p[i] = (Q + 1) / 2
		} else {
			p[i] = 0
		}
	}
}

// toMsg maps a polynomial back to a 32-byte message (compress with d=1).
func (p *poly) toMsg(msg []byte) {
	for i := range msg {
		msg[i] = 0
	}
	for i, x := range p {
		bit := (uint32(x)<<1 + Q/2) / Q & 1
		msg[i/8] |= byte(bit << (i % 8))
	}
}
