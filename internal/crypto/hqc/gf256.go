package hqc

// GF(256) arithmetic for the Reed-Solomon outer code, using the AES-adjacent
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D) with generator 2,
// as in the HQC reference implementation.

const gfPoly = 0x11D

var (
	gfExp [512]byte // doubled to avoid mod-255 in mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	if b == 0 {
		panic("hqc: division by zero in GF(256)")
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

func gfInv(a byte) byte {
	if a == 0 {
		panic("hqc: inverse of zero in GF(256)")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfPow returns alpha^e for the field generator alpha = 2.
func gfPow(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return gfExp[e]
}

// polyEval evaluates p (coefficients low-to-high) at x.
func polyEval(p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ p[i]
	}
	return y
}
