package hqc

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
)

var allParams = []*Params{HQC128, HQC192, HQC256}

// Wire sizes must match the HQC specification tables exactly (these drive
// the paper's data-volume results).
func TestSizes(t *testing.T) {
	t.Parallel()
	want := []struct {
		p      *Params
		pk, ct int
	}{
		{HQC128, 2249, 4481},
		{HQC192, 4522, 9026},
		{HQC256, 7245, 14469},
	}
	for _, w := range want {
		if got := w.p.PublicKeySize(); got != w.pk {
			t.Errorf("%s: pk size %d, want %d", w.p.Name, got, w.pk)
		}
		if got := w.p.CiphertextSize(); got != w.ct {
			t.Errorf("%s: ct size %d, want %d", w.p.Name, got, w.ct)
		}
		if got := w.p.SharedSecretSize(); got != 64 {
			t.Errorf("%s: ss size %d, want 64", w.p.Name, got)
		}
	}
}

func TestRoundtripAll(t *testing.T) {
	t.Parallel()
	for _, p := range allParams {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			pk, sk, err := p.GenerateKey(nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				ct, ss1, err := p.Encapsulate(nil, pk)
				if err != nil {
					t.Fatal(err)
				}
				if len(ct) != p.CiphertextSize() {
					t.Fatalf("ct size %d, want %d", len(ct), p.CiphertextSize())
				}
				ss2, err := p.Decapsulate(sk, ct)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ss1, ss2) {
					t.Fatal("shared secrets differ")
				}
			}
		})
	}
}

func TestImplicitRejection(t *testing.T) {
	t.Parallel()
	p := HQC128
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, ss1, err := p.Encapsulate(nil, pk)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 2209, len(ct) - 1} { // u, v, and d parts
		bad := bytes.Clone(ct)
		bad[pos] ^= 1
		ssA, err := p.Decapsulate(sk, bad)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(ss1, ssA) {
			t.Errorf("tampered ciphertext (byte %d) produced the honest secret", pos)
		}
		ssB, err := p.Decapsulate(sk, bad)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ssA, ssB) {
			t.Errorf("implicit rejection not deterministic (byte %d)", pos)
		}
	}
}

func TestDeriveVectorsDeterministic(t *testing.T) {
	t.Parallel()
	p := HQC128
	theta := bytes.Repeat([]byte{7}, 64)
	r1a, r2a, ea := p.deriveVectors(theta)
	r1b, r2b, eb := p.deriveVectors(theta)
	for _, pair := range [][2][]int{{r1a, r1b}, {r2a, r2b}, {ea, eb}} {
		if len(pair[0]) != p.Wr {
			t.Fatalf("support weight %d, want %d", len(pair[0]), p.Wr)
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatal("deriveVectors is not deterministic")
			}
		}
	}
	// The three vectors must be mutually distinct (independent XOF labels).
	same := 0
	for i := range r1a {
		if r1a[i] == r2a[i] {
			same++
		}
	}
	if same == len(r1a) {
		t.Error("r1 and r2 identical: domain separation broken")
	}
}

// The decoder must remove the real decryption noise across many
// encapsulations — the paper-relevant correctness property (DFR ~ 2^-128
// at spec parameters; any implementation slip shows up here immediately).
func TestDecoderRemovesNoise(t *testing.T) {
	t.Parallel()
	p := HQC128
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		ct, ss1, err := p.Encapsulate(nil, pk)
		if err != nil {
			t.Fatal(err)
		}
		ss2, err := p.Decapsulate(sk, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss1, ss2) {
			t.Fatalf("decoding failure at encapsulation %d", i)
		}
	}
}

// The concatenated code must survive the worst-case noise density the
// scheme produces (~0.34 per bit for hqc-128).
func TestConcatCodeUnderBernoulliNoise(t *testing.T) {
	t.Parallel()
	p := HQC128
	code := p.concat()
	msg := []byte("sixteen byte msg")
	clean := code.encode(msg)
	rng := newXorshift(42)
	for trial := 0; trial < 10; trial++ {
		noisy := append([]byte{}, clean...)
		for i := range noisy {
			for b := 0; b < 8; b++ {
				// p = 0.34 via threshold on 10-bit uniform.
				if rng.next()%1024 < 348 {
					noisy[i] ^= 1 << b
				}
			}
		}
		got, ok := code.decode(noisy)
		if !ok || !bytes.Equal(got, msg) {
			t.Fatalf("trial %d: decode failed under design-density noise", trial)
		}
	}
}

type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift { return &xorshift{s: seed} }

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func TestWrongSizesRejected(t *testing.T) {
	t.Parallel()
	p := HQC128
	if _, _, err := p.Encapsulate(nil, make([]byte, 8)); err == nil {
		t.Error("short public key accepted")
	}
	_, sk, _ := p.GenerateKey(nil)
	if _, err := p.Decapsulate(sk, make([]byte, 8)); err == nil {
		t.Error("short ciphertext accepted")
	}
	if _, err := p.Decapsulate(sk[:11], make([]byte, p.CiphertextSize())); err == nil {
		t.Error("short private key accepted")
	}
}

func benchHQC(b *testing.B, p *Params) {
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Encapsulate(nil, pk); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _, _ := p.Encapsulate(nil, pk)
	b.Run("decaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Decapsulate(sk, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHQC128(b *testing.B) { benchHQC(b, HQC128) }
func BenchmarkHQC256(b *testing.B) { benchHQC(b, HQC256) }

// kat64 is a fixed-seed byte stream for the pinned known-answer test.
type kat64 struct{ s uint64 }

func (d *kat64) Read(p []byte) (int, error) {
	for i := range p {
		d.s = d.s*6364136223846793005 + 1442695040888963407
		p[i] = byte(d.s >> 56)
	}
	return len(p), nil
}

// TestKnownAnswer pins digests of the full keygen/encaps/decaps transcript
// from a fixed seed. Any change to the gf2x arithmetic, the sampling
// order, or the hash domains that alters a single output byte fails here.
func TestKnownAnswer(t *testing.T) {
	t.Parallel()
	want := map[string][4]string{
		"hqc128": {"0ab08532e8ead13055fd8804c7be54a1f4b0601ab9b0bcf1b48b6870aa3c8fda", "aa1694a629df5acad9f4ff41873de9d78a8df91d46ad11fd6d8aa71f33b6654a", "db10650d4ee29e22dc3992de51d86786669a52439f1a7485c6d5cf45f4e62fe0", "ad8e83df86cde0fda2b53f089aa6af9510f0163737bb8667b124b99b08aea394"},
		"hqc192": {"3f2f9f72b9ea60b323bcde989907be0a2bea264043c9472bd27776461a11a293", "4d4118ea3d5963e206e15ebcac26bb8fe35d15345596c9fac50264e77a42acf1", "1322a847c07de88c1995868befeb6ac05a8e664a758eba198d6a3067c5d3bd97", "7d9e6a0c81654eb11f8f1aae9c0a8a99f1ffd707f01a3fe7ca965210ddbbafce"},
	}
	for _, p := range []*Params{HQC128, HQC192} {
		d := &kat64{s: 0x485143} // "HQC"
		pk, sk, err := p.GenerateKey(d)
		if err != nil {
			t.Fatal(err)
		}
		ct, ss, err := p.Encapsulate(d, pk)
		if err != nil {
			t.Fatal(err)
		}
		ss2, err := p.Decapsulate(sk, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss, ss2) {
			t.Fatalf("%s: decapsulation mismatch", p.Name)
		}
		got := [4]string{
			fmt.Sprintf("%x", sha256.Sum256(pk)),
			fmt.Sprintf("%x", sha256.Sum256(sk)),
			fmt.Sprintf("%x", sha256.Sum256(ct)),
			fmt.Sprintf("%x", sha256.Sum256(ss)),
		}
		if got != want[p.Name] {
			t.Errorf("%s: transcript digests changed:\ngot  %q\nwant %q", p.Name, got, want[p.Name])
		}
	}
}
