package hqc

import (
	"bytes"
	"testing"
)

var allParams = []*Params{HQC128, HQC192, HQC256}

// Wire sizes must match the HQC specification tables exactly (these drive
// the paper's data-volume results).
func TestSizes(t *testing.T) {
	t.Parallel()
	want := []struct {
		p      *Params
		pk, ct int
	}{
		{HQC128, 2249, 4481},
		{HQC192, 4522, 9026},
		{HQC256, 7245, 14469},
	}
	for _, w := range want {
		if got := w.p.PublicKeySize(); got != w.pk {
			t.Errorf("%s: pk size %d, want %d", w.p.Name, got, w.pk)
		}
		if got := w.p.CiphertextSize(); got != w.ct {
			t.Errorf("%s: ct size %d, want %d", w.p.Name, got, w.ct)
		}
		if got := w.p.SharedSecretSize(); got != 64 {
			t.Errorf("%s: ss size %d, want 64", w.p.Name, got)
		}
	}
}

func TestRoundtripAll(t *testing.T) {
	t.Parallel()
	for _, p := range allParams {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			pk, sk, err := p.GenerateKey(nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				ct, ss1, err := p.Encapsulate(nil, pk)
				if err != nil {
					t.Fatal(err)
				}
				if len(ct) != p.CiphertextSize() {
					t.Fatalf("ct size %d, want %d", len(ct), p.CiphertextSize())
				}
				ss2, err := p.Decapsulate(sk, ct)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ss1, ss2) {
					t.Fatal("shared secrets differ")
				}
			}
		})
	}
}

func TestImplicitRejection(t *testing.T) {
	t.Parallel()
	p := HQC128
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, ss1, err := p.Encapsulate(nil, pk)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 2209, len(ct) - 1} { // u, v, and d parts
		bad := bytes.Clone(ct)
		bad[pos] ^= 1
		ssA, err := p.Decapsulate(sk, bad)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(ss1, ssA) {
			t.Errorf("tampered ciphertext (byte %d) produced the honest secret", pos)
		}
		ssB, err := p.Decapsulate(sk, bad)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ssA, ssB) {
			t.Errorf("implicit rejection not deterministic (byte %d)", pos)
		}
	}
}

func TestDeriveVectorsDeterministic(t *testing.T) {
	t.Parallel()
	p := HQC128
	theta := bytes.Repeat([]byte{7}, 64)
	r1a, r2a, ea := p.deriveVectors(theta)
	r1b, r2b, eb := p.deriveVectors(theta)
	for _, pair := range [][2][]int{{r1a, r1b}, {r2a, r2b}, {ea, eb}} {
		if len(pair[0]) != p.Wr {
			t.Fatalf("support weight %d, want %d", len(pair[0]), p.Wr)
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				t.Fatal("deriveVectors is not deterministic")
			}
		}
	}
	// The three vectors must be mutually distinct (independent XOF labels).
	same := 0
	for i := range r1a {
		if r1a[i] == r2a[i] {
			same++
		}
	}
	if same == len(r1a) {
		t.Error("r1 and r2 identical: domain separation broken")
	}
}

// The decoder must remove the real decryption noise across many
// encapsulations — the paper-relevant correctness property (DFR ~ 2^-128
// at spec parameters; any implementation slip shows up here immediately).
func TestDecoderRemovesNoise(t *testing.T) {
	t.Parallel()
	p := HQC128
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		ct, ss1, err := p.Encapsulate(nil, pk)
		if err != nil {
			t.Fatal(err)
		}
		ss2, err := p.Decapsulate(sk, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss1, ss2) {
			t.Fatalf("decoding failure at encapsulation %d", i)
		}
	}
}

// The concatenated code must survive the worst-case noise density the
// scheme produces (~0.34 per bit for hqc-128).
func TestConcatCodeUnderBernoulliNoise(t *testing.T) {
	t.Parallel()
	p := HQC128
	code := p.concat()
	msg := []byte("sixteen byte msg")
	clean := code.encode(msg)
	rng := newXorshift(42)
	for trial := 0; trial < 10; trial++ {
		noisy := append([]byte{}, clean...)
		for i := range noisy {
			for b := 0; b < 8; b++ {
				// p = 0.34 via threshold on 10-bit uniform.
				if rng.next()%1024 < 348 {
					noisy[i] ^= 1 << b
				}
			}
		}
		got, ok := code.decode(noisy)
		if !ok || !bytes.Equal(got, msg) {
			t.Fatalf("trial %d: decode failed under design-density noise", trial)
		}
	}
}

type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift { return &xorshift{s: seed} }

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}

func TestWrongSizesRejected(t *testing.T) {
	t.Parallel()
	p := HQC128
	if _, _, err := p.Encapsulate(nil, make([]byte, 8)); err == nil {
		t.Error("short public key accepted")
	}
	_, sk, _ := p.GenerateKey(nil)
	if _, err := p.Decapsulate(sk, make([]byte, 8)); err == nil {
		t.Error("short ciphertext accepted")
	}
	if _, err := p.Decapsulate(sk[:11], make([]byte, p.CiphertextSize())); err == nil {
		t.Error("short private key accepted")
	}
}

func benchHQC(b *testing.B, p *Params) {
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Encapsulate(nil, pk); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _, _ := p.Encapsulate(nil, pk)
	b.Run("decaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Decapsulate(sk, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHQC128(b *testing.B) { benchHQC(b, HQC128) }
func BenchmarkHQC256(b *testing.B) { benchHQC(b, HQC256) }
