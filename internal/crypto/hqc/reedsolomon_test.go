package hqc

import (
	"math/rand"
	"testing"
)

func TestGF256(t *testing.T) {
	t.Parallel()
	// Field axioms on a sample: a * a^-1 = 1, distributivity.
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
	for i := 0; i < 500; i++ {
		a, b, c := byte(rand.Intn(256)), byte(rand.Intn(256)), byte(rand.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity fails for %d,%d", a, b)
		}
	}
	if gfPow(255) != 1 || gfPow(0) != 1 {
		t.Error("alpha^255 != 1")
	}
}

var rsParams = []struct{ n, k int }{{46, 16}, {56, 24}, {90, 32}}

func TestRSRoundtripNoErrors(t *testing.T) {
	t.Parallel()
	for _, p := range rsParams {
		rs := newRS(p.n, p.k)
		msg := make([]byte, p.k)
		for i := range msg {
			msg[i] = byte(i*37 + 1)
		}
		cw := rs.encode(msg)
		if len(cw) != p.n {
			t.Fatalf("[%d,%d]: codeword length %d", p.n, p.k, len(cw))
		}
		got, ok := rs.decode(append([]byte{}, cw...))
		if !ok {
			t.Fatalf("[%d,%d]: clean codeword rejected", p.n, p.k)
		}
		for i := range msg {
			if got[i] != msg[i] {
				t.Fatalf("[%d,%d]: message corrupted at %d", p.n, p.k, i)
			}
		}
	}
}

// The code must correct any error pattern up to its design distance t.
func TestRSCorrectsUpToT(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(99))
	for _, p := range rsParams {
		rs := newRS(p.n, p.k)
		for trial := 0; trial < 50; trial++ {
			msg := make([]byte, p.k)
			rng.Read(msg)
			cw := rs.encode(msg)
			nerr := 1 + rng.Intn(rs.t)
			pos := rng.Perm(p.n)[:nerr]
			bad := append([]byte{}, cw...)
			for _, i := range pos {
				bad[i] ^= byte(1 + rng.Intn(255))
			}
			got, ok := rs.decode(bad)
			if !ok {
				t.Fatalf("[%d,%d]: failed to correct %d errors (trial %d)", p.n, p.k, nerr, trial)
			}
			for i := range msg {
				if got[i] != msg[i] {
					t.Fatalf("[%d,%d]: wrong correction with %d errors", p.n, p.k, nerr)
				}
			}
		}
	}
}

// Beyond t errors the decoder must fail loudly (or return something that
// the re-encode check downstream would reject), never panic.
func TestRSBeyondTFails(t *testing.T) {
	t.Parallel()
	rs := newRS(46, 16)
	rng := rand.New(rand.NewSource(7))
	msg := make([]byte, 16)
	rng.Read(msg)
	cw := rs.encode(msg)
	miscorrected := 0
	for trial := 0; trial < 30; trial++ {
		bad := append([]byte{}, cw...)
		for _, i := range rng.Perm(46)[:rs.t+3] {
			bad[i] ^= byte(1 + rng.Intn(255))
		}
		if got, ok := rs.decode(bad); ok {
			// Miscorrection to a *different* valid codeword is legitimate
			// beyond-t behaviour; silently "correcting" back to the true
			// message would mean the test itself is broken.
			same := true
			for i := range msg {
				if got[i] != msg[i] {
					same = false
				}
			}
			if same {
				miscorrected++
			}
		}
	}
	if miscorrected > 0 {
		t.Errorf("decoder claimed success on %d/30 beyond-t patterns with the original message", miscorrected)
	}
}

func TestRSGeneratorDegree(t *testing.T) {
	t.Parallel()
	for _, p := range rsParams {
		rs := newRS(p.n, p.k)
		if len(rs.gen) != p.n-p.k+1 {
			t.Errorf("[%d,%d]: generator degree %d, want %d", p.n, p.k, len(rs.gen)-1, p.n-p.k)
		}
		// Every codeword evaluates to zero at the generator roots.
		msg := make([]byte, p.k)
		msg[0] = 0xAB
		cw := rs.encode(msg)
		for j := 1; j <= p.n-p.k; j++ {
			if polyEval(cw, gfPow(j)) != 0 {
				t.Errorf("[%d,%d]: syndrome %d non-zero on clean codeword", p.n, p.k, j)
			}
		}
	}
}
