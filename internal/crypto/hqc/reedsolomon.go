package hqc

// Shortened Reed-Solomon codes over GF(256) — HQC's outer code. The three
// parameter sets use [46,16,31], [56,24,33] and [90,32,59], correcting 15,
// 16 and 29 symbol errors respectively.

type rsCode struct {
	n, k int    // code length and dimension in symbols
	t    int    // correctable symbol errors: (n-k)/2
	gen  []byte // generator polynomial, degree n-k, low-to-high
}

func newRS(n, k int) *rsCode {
	rs := &rsCode{n: n, k: k, t: (n - k) / 2}
	// g(x) = prod_{i=1}^{n-k} (x - alpha^i)
	g := []byte{1}
	for i := 1; i <= n-k; i++ {
		root := gfPow(i)
		next := make([]byte, len(g)+1)
		for j, c := range g {
			next[j] ^= gfMul(c, root) // multiply by (x + root): root*c term
			next[j+1] ^= c            // x*c term
		}
		g = next
	}
	rs.gen = g
	return rs
}

// encode produces the systematic codeword: msg (k symbols) || parity.
func (rs *rsCode) encode(msg []byte) []byte {
	if len(msg) != rs.k {
		panic("hqc: rs encode: wrong message length")
	}
	parityLen := rs.n - rs.k
	// Polynomial division of msg(x) * x^(n-k) by gen(x); remainder = parity.
	rem := make([]byte, parityLen)
	for i := rs.k - 1; i >= 0; i-- {
		factor := msg[i] ^ rem[parityLen-1]
		copy(rem[1:], rem[:parityLen-1])
		rem[0] = 0
		if factor != 0 {
			for j := 0; j < parityLen; j++ {
				rem[j] ^= gfMul(rs.gen[j], factor)
			}
		}
	}
	out := make([]byte, rs.n)
	copy(out, rem) // parity in the low positions, message in the high
	copy(out[parityLen:], msg)
	return out
}

// decode corrects up to t symbol errors in place and returns the message
// part, reporting failure when the error weight exceeds t.
func (rs *rsCode) decode(codeword []byte) ([]byte, bool) {
	if len(codeword) != rs.n {
		return nil, false
	}
	// Syndromes S_j = c(alpha^j), j = 1..n-k. The codeword polynomial is
	// indexed low-to-high: position i has weight alpha^(j*i).
	nk := rs.n - rs.k
	synd := make([]byte, nk)
	allZero := true
	for j := 1; j <= nk; j++ {
		s := polyEval(codeword, gfPow(j))
		synd[j-1] = s
		if s != 0 {
			allZero = false
		}
	}
	msg := make([]byte, rs.k)
	if allZero {
		copy(msg, codeword[nk:])
		return msg, true
	}

	// Berlekamp-Massey: find the error locator sigma(x).
	sigma := []byte{1}
	prev := []byte{1}
	l := 0
	m := 1
	var b byte = 1
	for i := 0; i < nk; i++ {
		// Discrepancy.
		var d byte
		for j := 0; j <= l && j < len(sigma); j++ {
			d ^= gfMul(sigma[j], synd[i-j])
		}
		if d == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := append([]byte{}, sigma...)
			coef := gfDiv(d, b)
			sigma = polyAddShifted(sigma, prev, coef, m)
			prev = tmp
			l = i + 1 - l
			b = d
			m = 1
		} else {
			coef := gfDiv(d, b)
			sigma = polyAddShifted(sigma, prev, coef, m)
			m++
		}
	}
	if l > rs.t {
		return nil, false // too many errors
	}

	// Chien search: roots of sigma are X_i^-1 = alpha^-pos.
	var positions []int
	for pos := 0; pos < rs.n; pos++ {
		if polyEval(sigma, gfPow(-pos)) == 0 {
			positions = append(positions, pos)
		}
	}
	if len(positions) != l {
		return nil, false // locator does not split over the positions
	}

	// Forney: error values from Omega(x) = S(x)*sigma(x) mod x^(n-k).
	omega := make([]byte, nk)
	for i := 0; i < nk; i++ {
		var v byte
		for j := 0; j <= i && j < len(sigma); j++ {
			v ^= gfMul(sigma[j], synd[i-j])
		}
		omega[i] = v
	}
	// Formal derivative of sigma: over GF(2^m) only odd-degree terms
	// survive (d/dx x^j = j*x^(j-1) and j mod 2 kills even j).
	deriv := make([]byte, len(sigma))
	for j := 1; j < len(sigma); j += 2 {
		deriv[j-1] = sigma[j]
	}
	for _, pos := range positions {
		xInv := gfPow(-pos)
		den := polyEval(deriv, xInv)
		if den == 0 {
			return nil, false
		}
		// e_i = X_i^(1-b) * Omega(X_i^-1) / sigma'(X_i^-1); with the
		// alpha^1..alpha^(n-k) root convention b = 1, the X factor is 1.
		mag := gfDiv(polyEval(omega, xInv), den)
		codeword[pos] ^= mag
	}
	// Verify the correction took (guards miscorrection at weight > t).
	for j := 1; j <= nk; j++ {
		if polyEval(codeword, gfPow(j)) != 0 {
			return nil, false
		}
	}
	copy(msg, codeword[nk:])
	return msg, true
}

// polyAddShifted returns a + coef * x^shift * b.
func polyAddShifted(a, b []byte, coef byte, shift int) []byte {
	out := make([]byte, max(len(a), len(b)+shift))
	copy(out, a)
	for i, c := range b {
		out[i+shift] ^= gfMul(c, coef)
	}
	return out
}
