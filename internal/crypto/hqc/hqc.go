// Package hqc implements the HQC key-encapsulation mechanism (round-4
// candidate benchmarked by the paper as hqc128/192/256): quasi-cyclic
// arithmetic over GF(2)[x]/(x^n - 1) with the concatenated
// Reed-Muller/Reed-Solomon code removing the decryption noise, and an
// FO transform with implicit rejection.
//
// The dominant cost — sparse-by-dense n-bit ring products — and all wire
// sizes match the specification exactly.
package hqc

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"io"
	"sync"

	"pqtls/internal/crypto/gf2x"
	"pqtls/internal/crypto/sha3"
)

// Params describes one HQC parameter set.
type Params struct {
	Name string
	N    int // ring size in bits (prime, > N1*Mult*128)
	W    int // secret vector weight (x, y)
	Wr   int // encryption vector weight (r1, r2, e)
	K    int // message bytes (RS dimension)
	N1   int // RS code length in symbols
	Mult int // Reed-Muller duplication factor

	codeOnce sync.Once
	code     *concatCode
}

// The three parameter sets benchmarked by the paper.
var (
	HQC128 = &Params{Name: "hqc128", N: 17669, W: 66, Wr: 75, K: 16, N1: 46, Mult: 3}
	HQC192 = &Params{Name: "hqc192", N: 35851, W: 100, Wr: 114, K: 24, N1: 56, Mult: 5}
	HQC256 = &Params{Name: "hqc256", N: 57637, W: 131, Wr: 149, K: 32, N1: 90, Mult: 5}
)

const (
	seedSize         = 40 // public seed for h, as in the spec
	saltSize         = 64 // d = SHA3-512(m) carried in the ciphertext
	sharedSecretSize = 64
)

func (p *Params) concat() *concatCode {
	p.codeOnce.Do(func() {
		p.code = &concatCode{rs: newRS(p.N1, p.K), mult: p.Mult}
	})
	return p.code
}

// vBytes is the payload (v) length: n1*n2 bits.
func (p *Params) vBytes() int { return p.N1 * p.Mult * rmBits / 8 }

// PublicKeySize returns the public-key length: seed || s.
func (p *Params) PublicKeySize() int { return seedSize + (p.N+7)/8 }

// CiphertextSize returns the ciphertext length: u || v || d.
func (p *Params) CiphertextSize() int { return (p.N+7)/8 + p.vBytes() + saltSize }

// SharedSecretSize is the shared-secret length in bytes.
func (p *Params) SharedSecretSize() int { return sharedSecretSize }

// PrivateKeySize returns the private-key length: x and y supports, the
// implicit-rejection seed, and the public key.
func (p *Params) PrivateKeySize() int { return 8*p.W + 32 + p.PublicKeySize() }

// expandH derives the dense public ring element h from the 40-byte seed.
func (p *Params) expandH(seed []byte) *gf2x.Poly {
	x := sha3.NewShake256()
	defer sha3.PutXOF(x)
	x.Write([]byte("HQC-H"))
	x.Write(seed)
	buf := make([]byte, (p.N+7)/8)
	x.Read(buf)
	return gf2x.FromBytes(buf, p.N)
}

// GenerateKey creates a key pair from rng (crypto/rand if nil).
func (p *Params) GenerateKey(rng io.Reader) (pk, sk []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	seed := make([]byte, seedSize)
	if _, err := io.ReadFull(rng, seed); err != nil {
		return nil, nil, fmt.Errorf("hqc: reading seed: %w", err)
	}
	h := p.expandH(seed)
	xsup, err := gf2x.RandomSupport(rng, p.N, p.W)
	if err != nil {
		return nil, nil, fmt.Errorf("hqc: sampling x: %w", err)
	}
	ysup, err := gf2x.RandomSupport(rng, p.N, p.W)
	if err != nil {
		return nil, nil, fmt.Errorf("hqc: sampling y: %w", err)
	}
	var sigma [32]byte
	if _, err := io.ReadFull(rng, sigma[:]); err != nil {
		return nil, nil, fmt.Errorf("hqc: sampling sigma: %w", err)
	}
	// s = x + h*y.
	s := gf2x.New(p.N)
	h.MulSparse(s, ysup)
	for _, pos := range xsup {
		s.FlipBit(pos)
	}

	pk = append(append([]byte{}, seed...), s.Bytes()...)
	sk = make([]byte, 0, p.PrivateKeySize())
	for _, pos := range append(append([]int{}, xsup...), ysup...) {
		sk = append(sk, byte(pos), byte(pos>>8), byte(pos>>16), byte(pos>>24))
	}
	sk = append(sk, sigma[:]...)
	sk = append(sk, pk...)
	return pk, sk, nil
}

// deriveVectors expands theta into the three sparse encryption vectors.
func (p *Params) deriveVectors(theta []byte) (r1, r2, e []int) {
	sample := func(label string) []int {
		x := sha3.NewShake256()
		defer sha3.PutXOF(x)
		x.Write([]byte(label))
		x.Write(theta)
		sup, err := gf2x.RandomSupport(xofReader{x}, p.N, p.Wr)
		if err != nil {
			panic("hqc: XOF cannot fail: " + err.Error())
		}
		return sup
	}
	return sample("HQC-R1"), sample("HQC-R2"), sample("HQC-E")
}

type xofReader struct{ x sha3.XOF }

func (r xofReader) Read(pb []byte) (int, error) { return r.x.Read(pb) }

// pkeEncrypt is the deterministic inner encryption with randomness theta.
func (p *Params) pkeEncrypt(pk, m, theta []byte) (u *gf2x.Poly, v []byte) {
	h := p.expandH(pk[:seedSize])
	s := gf2x.FromBytes(pk[seedSize:], p.N)
	r1sup, r2sup, esup := p.deriveVectors(theta)

	// u = r1 + h*r2.
	u = gf2x.New(p.N)
	h.MulSparse(u, r2sup)
	for _, pos := range r1sup {
		u.FlipBit(pos)
	}
	// v = truncate(mG + s*r2 + e).
	noise := gf2x.New(p.N)
	s.MulSparse(noise, r2sup)
	for _, pos := range esup {
		noise.FlipBit(pos)
	}
	v = p.concat().encode(m)
	noiseBytes := noise.Bytes()
	for i := range v {
		v[i] ^= noiseBytes[i]
	}
	return u, v
}

// Encapsulate generates a shared secret and ciphertext against pk.
func (p *Params) Encapsulate(rng io.Reader, pk []byte) (ct, ss []byte, err error) {
	if len(pk) != p.PublicKeySize() {
		return nil, nil, fmt.Errorf("hqc: public key is %d bytes, want %d", len(pk), p.PublicKeySize())
	}
	if rng == nil {
		rng = rand.Reader
	}
	m := make([]byte, p.K)
	if _, err := io.ReadFull(rng, m); err != nil {
		return nil, nil, fmt.Errorf("hqc: reading message: %w", err)
	}
	theta := sha3.ShakeSum256(64, []byte("HQC-THETA"), m, pk[:seedSize])
	u, v := p.pkeEncrypt(pk, m, theta)
	d := sha3.Sum512(m)

	ct = make([]byte, 0, p.CiphertextSize())
	ct = append(ct, u.Bytes()...)
	ct = append(ct, v...)
	ct = append(ct, d[:]...)
	return ct, p.sharedKey(m, ct), nil
}

func (p *Params) sharedKey(m, ct []byte) []byte {
	return sha3.ShakeSum256(sharedSecretSize, []byte("HQC-K"), m, ct)
}

// Decapsulate recovers the shared secret: the RMRS decoder removes the
// noise term x*r2 + r1*y + e, and the FO re-encryption check routes
// malformed ciphertexts to implicit rejection.
func (p *Params) Decapsulate(sk, ct []byte) ([]byte, error) {
	if len(sk) != p.PrivateKeySize() {
		return nil, fmt.Errorf("hqc: private key is %d bytes, want %d", len(sk), p.PrivateKeySize())
	}
	if len(ct) != p.CiphertextSize() {
		return nil, fmt.Errorf("hqc: ciphertext is %d bytes, want %d", len(ct), p.CiphertextSize())
	}
	ysup := make([]int, p.W)
	for i := range ysup {
		j := 4 * (p.W + i) // y follows x in the serialized supports
		ysup[i] = int(uint32(sk[j]) | uint32(sk[j+1])<<8 | uint32(sk[j+2])<<16 | uint32(sk[j+3])<<24)
	}
	sigma := sk[8*p.W : 8*p.W+32]
	pk := sk[8*p.W+32:]

	uLen := (p.N + 7) / 8
	u := gf2x.FromBytes(ct[:uLen], p.N)
	v := ct[uLen : uLen+p.vBytes()]
	d := ct[uLen+p.vBytes():]

	// v - truncate(u*y) = mG + x*r2 + r1*y + e.
	uy := gf2x.New(p.N)
	u.MulSparse(uy, ysup)
	uyBytes := uy.Bytes()
	noisy := make([]byte, len(v))
	for i := range noisy {
		noisy[i] = v[i] ^ uyBytes[i]
	}
	m, ok := p.concat().decode(noisy)
	if ok {
		// FO check: deterministic re-encryption must reproduce (u, v) and
		// the d hash must match.
		theta := sha3.ShakeSum256(64, []byte("HQC-THETA"), m, pk[:seedSize])
		u2, v2 := p.pkeEncrypt(pk, m, theta)
		wantD := sha3.Sum512(m)
		if !u2.Equal(u) || !bytes.Equal(v2, v) || !bytes.Equal(d, wantD[:]) {
			ok = false
		}
	}
	if !ok {
		return p.sharedKey(sigma, ct), nil
	}
	return p.sharedKey(m, ct), nil
}
