package hqc

// Duplicated Reed-Muller RM(1,7) — HQC's inner code. Each GF(256) symbol
// (one byte) is encoded into a 128-bit first-order Reed-Muller codeword,
// repeated `mult` times (3 for hqc-128, 5 for hqc-192/256). Decoding
// accumulates the duplicates into per-position counters and runs a fast
// Hadamard transform, picking the affine function with the largest
// correlation — maximum-likelihood decoding for this code.

const rmBits = 128 // RM(1,7) codeword length

// rmEncode writes the mult-duplicated codeword of b into dst (a bit slice
// of mult*128 bits, packed LSB-first into bytes).
func rmEncode(b byte, mult int, dst []byte, bitOff int) {
	// c_i = b0 XOR <a, i> with a = b>>1 (7 linear coefficients).
	b0 := b & 1
	a := b >> 1
	for i := 0; i < rmBits; i++ {
		bit := b0
		x := a & byte(i)
		// Parity of x.
		x ^= x >> 4
		x ^= x >> 2
		x ^= x >> 1
		bit ^= x & 1
		if bit == 1 {
			for d := 0; d < mult; d++ {
				pos := bitOff + d*rmBits + i
				dst[pos/8] |= 1 << (pos % 8)
			}
		}
	}
}

// rmDecode reads mult*128 bits from src at bitOff and returns the
// maximum-likelihood byte.
func rmDecode(src []byte, bitOff, mult int) byte {
	// Counter per position: +1 for bit 0, -1 for bit 1, across duplicates.
	var counters [rmBits]int32
	for d := 0; d < mult; d++ {
		for i := 0; i < rmBits; i++ {
			pos := bitOff + d*rmBits + i
			if src[pos/8]>>(pos%8)&1 == 0 {
				counters[i]++
			} else {
				counters[i]--
			}
		}
	}
	// Fast Walsh-Hadamard transform: W[a] = sum_i counters[i] * (-1)^<a,i>.
	for step := 1; step < rmBits; step <<= 1 {
		for i := 0; i < rmBits; i += step << 1 {
			for j := i; j < i+step; j++ {
				u, v := counters[j], counters[j+step]
				counters[j] = u + v
				counters[j+step] = u - v
			}
		}
	}
	best := 0
	bestMag := int32(-1)
	for a := 0; a < rmBits; a++ {
		mag := counters[a]
		if mag < 0 {
			mag = -mag
		}
		if mag > bestMag {
			bestMag = mag
			best = a
		}
	}
	b0 := byte(0)
	if counters[best] < 0 {
		b0 = 1
	}
	return byte(best)<<1 | b0
}

// concatCode is the full concatenated RMRS code of one parameter set.
type concatCode struct {
	rs   *rsCode
	mult int
}

// encodedBits is the total payload length n1*n2.
func (c *concatCode) encodedBits() int { return c.rs.n * c.mult * rmBits }

// encode maps a k-byte message to the n1*n2-bit payload.
func (c *concatCode) encode(msg []byte) []byte {
	cw := c.rs.encode(msg)
	out := make([]byte, c.encodedBits()/8)
	for i, sym := range cw {
		rmEncode(sym, c.mult, out, i*c.mult*rmBits)
	}
	return out
}

// decode recovers the message from a noisy payload; ok reports whether the
// outer code accepted the inner decisions.
func (c *concatCode) decode(payload []byte) ([]byte, bool) {
	cw := make([]byte, c.rs.n)
	for i := range cw {
		cw[i] = rmDecode(payload, i*c.mult*rmBits, c.mult)
	}
	return c.rs.decode(cw)
}
