package bike

import (
	"bytes"
	"testing"
)

func TestSizes(t *testing.T) {
	t.Parallel()
	if got := BikeL1.PublicKeySize(); got != 1541 {
		t.Errorf("bikel1 pk size %d, want 1541", got)
	}
	if got := BikeL1.CiphertextSize(); got != 1573 {
		t.Errorf("bikel1 ct size %d, want 1573", got)
	}
	if got := BikeL3.PublicKeySize(); got != 3083 {
		t.Errorf("bikel3 pk size %d, want 3083", got)
	}
	if got := BikeL3.CiphertextSize(); got != 3115 {
		t.Errorf("bikel3 ct size %d, want 3115", got)
	}
}

func TestRoundtripL1(t *testing.T) {
	t.Parallel()
	testRoundtrip(t, BikeL1, 5)
}

func TestRoundtripL3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Parallel()
	testRoundtrip(t, BikeL3, 2)
}

func testRoundtrip(t *testing.T, p *Params, encaps int) {
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pk) != p.PublicKeySize() || len(sk) != p.PrivateKeySize() {
		t.Fatalf("key sizes pk=%d sk=%d", len(pk), len(sk))
	}
	// The bit-flipping decoder is probabilistic; every honest encapsulation
	// must still decapsulate to the same secret.
	for i := 0; i < encaps; i++ {
		ct, ss1, err := p.Encapsulate(nil, pk)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != p.CiphertextSize() {
			t.Fatalf("ct size %d, want %d", len(ct), p.CiphertextSize())
		}
		ss2, err := p.Decapsulate(sk, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss1, ss2) {
			t.Fatalf("encapsulation %d: shared secrets differ (decoder failure)", i)
		}
	}
}

func TestImplicitRejection(t *testing.T) {
	t.Parallel()
	p := BikeL1
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, ss1, err := p.Encapsulate(nil, pk)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit of c1 (the masked message): decoding succeeds but the FO
	// re-derivation check must fail, yielding a different, deterministic key.
	bad := bytes.Clone(ct)
	bad[len(bad)-1] ^= 1
	ssA, err := p.Decapsulate(sk, bad)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ss1, ssA) {
		t.Error("tampered ciphertext produced the honest shared secret")
	}
	ssB, err := p.Decapsulate(sk, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ssA, ssB) {
		t.Error("implicit rejection is not deterministic")
	}
}

func TestErrorDerivationWeight(t *testing.T) {
	t.Parallel()
	for _, p := range []*Params{BikeL1, BikeL3} {
		m := bytes.Repeat([]byte{0xab}, 32)
		e0, e1 := p.deriveErrors(m)
		if len(e0)+len(e1) != p.T {
			t.Errorf("%s: error weight %d, want %d", p.Name, len(e0)+len(e1), p.T)
		}
		// Deterministic in m.
		f0, f1 := p.deriveErrors(m)
		if len(f0) != len(e0) || len(f1) != len(e1) {
			t.Errorf("%s: error derivation not deterministic", p.Name)
		}
	}
}

func TestWrongSizesRejected(t *testing.T) {
	t.Parallel()
	p := BikeL1
	if _, _, err := p.Encapsulate(nil, make([]byte, 8)); err == nil {
		t.Error("short public key accepted")
	}
	_, sk, _ := p.GenerateKey(nil)
	if _, err := p.Decapsulate(sk, make([]byte, 8)); err == nil {
		t.Error("short ciphertext accepted")
	}
	if _, err := p.Decapsulate(sk[:9], make([]byte, p.CiphertextSize())); err == nil {
		t.Error("short private key accepted")
	}
}

func BenchmarkBikeL1(b *testing.B) {
	p := BikeL1
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("keygen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.GenerateKey(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Encapsulate(nil, pk); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _, _ := p.Encapsulate(nil, pk)
	b.Run("decaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Decapsulate(sk, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}
