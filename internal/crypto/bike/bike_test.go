package bike

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
)

func TestSizes(t *testing.T) {
	t.Parallel()
	if got := BikeL1.PublicKeySize(); got != 1541 {
		t.Errorf("bikel1 pk size %d, want 1541", got)
	}
	if got := BikeL1.CiphertextSize(); got != 1573 {
		t.Errorf("bikel1 ct size %d, want 1573", got)
	}
	if got := BikeL3.PublicKeySize(); got != 3083 {
		t.Errorf("bikel3 pk size %d, want 3083", got)
	}
	if got := BikeL3.CiphertextSize(); got != 3115 {
		t.Errorf("bikel3 ct size %d, want 3115", got)
	}
}

func TestRoundtripL1(t *testing.T) {
	t.Parallel()
	testRoundtrip(t, BikeL1, 5)
}

func TestRoundtripL3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Parallel()
	testRoundtrip(t, BikeL3, 2)
}

func testRoundtrip(t *testing.T, p *Params, encaps int) {
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pk) != p.PublicKeySize() || len(sk) != p.PrivateKeySize() {
		t.Fatalf("key sizes pk=%d sk=%d", len(pk), len(sk))
	}
	// The bit-flipping decoder is probabilistic; every honest encapsulation
	// must still decapsulate to the same secret.
	for i := 0; i < encaps; i++ {
		ct, ss1, err := p.Encapsulate(nil, pk)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != p.CiphertextSize() {
			t.Fatalf("ct size %d, want %d", len(ct), p.CiphertextSize())
		}
		ss2, err := p.Decapsulate(sk, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss1, ss2) {
			t.Fatalf("encapsulation %d: shared secrets differ (decoder failure)", i)
		}
	}
}

func TestImplicitRejection(t *testing.T) {
	t.Parallel()
	p := BikeL1
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	ct, ss1, err := p.Encapsulate(nil, pk)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit of c1 (the masked message): decoding succeeds but the FO
	// re-derivation check must fail, yielding a different, deterministic key.
	bad := bytes.Clone(ct)
	bad[len(bad)-1] ^= 1
	ssA, err := p.Decapsulate(sk, bad)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ss1, ssA) {
		t.Error("tampered ciphertext produced the honest shared secret")
	}
	ssB, err := p.Decapsulate(sk, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ssA, ssB) {
		t.Error("implicit rejection is not deterministic")
	}
}

func TestErrorDerivationWeight(t *testing.T) {
	t.Parallel()
	for _, p := range []*Params{BikeL1, BikeL3} {
		m := bytes.Repeat([]byte{0xab}, 32)
		e0, e1 := p.deriveErrors(m)
		if len(e0)+len(e1) != p.T {
			t.Errorf("%s: error weight %d, want %d", p.Name, len(e0)+len(e1), p.T)
		}
		// Deterministic in m.
		f0, f1 := p.deriveErrors(m)
		if len(f0) != len(e0) || len(f1) != len(e1) {
			t.Errorf("%s: error derivation not deterministic", p.Name)
		}
	}
}

func TestWrongSizesRejected(t *testing.T) {
	t.Parallel()
	p := BikeL1
	if _, _, err := p.Encapsulate(nil, make([]byte, 8)); err == nil {
		t.Error("short public key accepted")
	}
	_, sk, _ := p.GenerateKey(nil)
	if _, err := p.Decapsulate(sk, make([]byte, 8)); err == nil {
		t.Error("short ciphertext accepted")
	}
	if _, err := p.Decapsulate(sk[:9], make([]byte, p.CiphertextSize())); err == nil {
		t.Error("short private key accepted")
	}
}

func BenchmarkBikeL1(b *testing.B) {
	p := BikeL1
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("keygen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.GenerateKey(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Encapsulate(nil, pk); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _, _ := p.Encapsulate(nil, pk)
	b.Run("decaps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Decapsulate(sk, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// drbg is a fixed-seed byte stream for the pinned known-answer test.
type drbg struct{ s uint64 }

func (d *drbg) Read(p []byte) (int, error) {
	for i := range p {
		d.s = d.s*6364136223846793005 + 1442695040888963407
		p[i] = byte(d.s >> 56)
	}
	return len(p), nil
}

// TestKnownAnswer pins digests of the full keygen/encaps/decaps transcript
// from a fixed seed. Any change to the gf2x arithmetic, the sampling
// order, or the hash domains that alters a single output byte fails here.
func TestKnownAnswer(t *testing.T) {
	t.Parallel()
	want := map[string][4]string{
		"bikel1": {"80adb94f433d5c8c9ece0011d3c44cffda5e77e76b9e80384325b3a34f27e2f0", "a637ab2b0f25727d7443fc4c65c71a73285c88ac9e38accbb66683095b5aaf87", "7695009f55e661f5ec363d8dc1d0817947c33cc9fc7ccafa6d39901dc5bc2845", "5803b318b7f249b33e22a0c3cc17a01d5a85c213bdca2552b9e20de4d9edbf95"},
		"bikel3": {"de2259a789185643779c625c77695982c41523066318baad27c4540ce4e7e85b", "b6d3df34954eec732163c37c7f02c2bcfe74ef54b973e71de6eefad95d883062", "a22ac76fcb42df41efd0b530aeb39ae30f4fe0821eb90ab3a383145f1d8a1910", "431f07d9913b1b82ce39303652c9f4a4787097dd5e928a2ec9b460eaeb60e552"},
	}
	for _, p := range []*Params{BikeL1, BikeL3} {
		d := &drbg{s: 0x42494b45} // "BIKE"
		pk, sk, err := p.GenerateKey(d)
		if err != nil {
			t.Fatal(err)
		}
		ct, ss, err := p.Encapsulate(d, pk)
		if err != nil {
			t.Fatal(err)
		}
		ss2, err := p.Decapsulate(sk, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ss, ss2) {
			t.Fatalf("%s: decapsulation mismatch", p.Name)
		}
		got := [4]string{
			fmt.Sprintf("%x", sha256.Sum256(pk)),
			fmt.Sprintf("%x", sha256.Sum256(sk)),
			fmt.Sprintf("%x", sha256.Sum256(ct)),
			fmt.Sprintf("%x", sha256.Sum256(ss)),
		}
		if got != want[p.Name] {
			t.Errorf("%s: transcript digests changed:\ngot  %q\nwant %q", p.Name, got, want[p.Name])
		}
	}
}
