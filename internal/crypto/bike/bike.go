// Package bike implements the BIKE QC-MDPC key-encapsulation mechanism
// (round-4 candidate benchmarked by the paper as bikel1/bikel3): sparse
// private parity checks, a dense public ratio h = h1 * h0^-1, sparse-error
// encapsulation, and a Black-Gray-Flip style bit-flipping decoder.
package bike

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"pqtls/internal/crypto/gf2x"
	"pqtls/internal/crypto/sha3"
)

// Params describes one BIKE parameter set.
type Params struct {
	Name string
	R    int // ring size (block length)
	W    int // total private key weight (|h0| + |h1|)
	T    int // error weight
	// Affine threshold function coefficients for the bit-flipping decoder:
	// th(S) = max(ceil(ThA*S + ThB), ThMin).
	ThA   float64
	ThB   float64
	ThMin int
}

// The two parameter sets benchmarked by the paper (level 5 BIKE is not in
// the paper's tables).
var (
	BikeL1 = &Params{Name: "bikel1", R: 12323, W: 142, T: 134,
		ThA: 0.0069722, ThB: 13.530, ThMin: 36}
	BikeL3 = &Params{Name: "bikel3", R: 24659, W: 206, T: 199,
		ThA: 0.005265, ThB: 15.2588, ThMin: 52}
)

const sharedSecretSize = 32

// PublicKeySize returns the public-key length in bytes (one ring element).
func (p *Params) PublicKeySize() int { return (p.R + 7) / 8 }

// CiphertextSize returns the ciphertext length (ring element + 32-byte c1).
func (p *Params) CiphertextSize() int { return (p.R+7)/8 + 32 }

// SharedSecretSize is the shared-secret length in bytes.
func (p *Params) SharedSecretSize() int { return sharedSecretSize }

// PrivateKeySize returns the serialized private-key length: the two sparse
// supports as 4-byte positions plus the 32-byte implicit-rejection seed and
// the public key (needed for re-encapsulation).
func (p *Params) PrivateKeySize() int { return 4*p.W + 32 + p.PublicKeySize() }

// GenerateKey creates a key pair. Key generation inverts h0 in the
// quasi-cyclic ring, which is the dominant cost of a BIKE handshake.
func (p *Params) GenerateKey(rng io.Reader) (pk, sk []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	for {
		h0sup, err := gf2x.RandomSupport(rng, p.R, p.W/2)
		if err != nil {
			return nil, nil, fmt.Errorf("bike: sampling h0: %w", err)
		}
		h1sup, err := gf2x.RandomSupport(rng, p.R, p.W/2)
		if err != nil {
			return nil, nil, fmt.Errorf("bike: sampling h1: %w", err)
		}
		h0 := gf2x.New(p.R)
		for _, pos := range h0sup {
			h0.SetBit(pos)
		}
		h0inv, ok := h0.Inverse()
		if !ok {
			continue // odd weight makes this effectively unreachable
		}
		// h = h1 * h0^-1 (dense * sparse).
		h := gf2x.New(p.R)
		h0inv.MulSparse(h, h1sup)

		var sigma [32]byte
		if _, err := io.ReadFull(rng, sigma[:]); err != nil {
			return nil, nil, fmt.Errorf("bike: sampling sigma: %w", err)
		}
		pk = h.Bytes()
		sk = make([]byte, 0, p.PrivateKeySize())
		for _, pos := range append(append([]int{}, h0sup...), h1sup...) {
			sk = append(sk, byte(pos), byte(pos>>8), byte(pos>>16), byte(pos>>24))
		}
		sk = append(sk, sigma[:]...)
		sk = append(sk, pk...)
		return pk, sk, nil
	}
}

// deriveErrors expands the 32-byte message m into the sparse error vector
// (e0, e1) of total weight T.
func (p *Params) deriveErrors(m []byte) (e0, e1 []int) {
	x := sha3.NewShake256()
	defer sha3.PutXOF(x)
	x.Write([]byte("BIKE-H"))
	x.Write(m)
	sup, err := gf2x.RandomSupport(xofReader{x}, 2*p.R, p.T)
	if err != nil {
		panic("bike: XOF cannot fail: " + err.Error())
	}
	for _, pos := range sup {
		if pos < p.R {
			e0 = append(e0, pos)
		} else {
			e1 = append(e1, pos-p.R)
		}
	}
	return e0, e1
}

type xofReader struct{ x sha3.XOF }

func (r xofReader) Read(pb []byte) (int, error) { return r.x.Read(pb) }

// hashL computes L(e0, e1), the 32-byte mask applied to the message.
func (p *Params) hashL(e0, e1 *gf2x.Poly) [32]byte {
	var out [32]byte
	copy(out[:], sha3.ShakeSum256(32, []byte("BIKE-L"), e0.Bytes(), e1.Bytes()))
	return out
}

// hashK derives the shared secret from (m, c0, c1).
func (p *Params) hashK(m, c0, c1 []byte) []byte {
	return sha3.ShakeSum256(sharedSecretSize, []byte("BIKE-K"), m, c0, c1)
}

// Encapsulate generates a shared secret and ciphertext against pk.
func (p *Params) Encapsulate(rng io.Reader, pk []byte) (ct, ss []byte, err error) {
	if len(pk) != p.PublicKeySize() {
		return nil, nil, fmt.Errorf("bike: public key is %d bytes, want %d", len(pk), p.PublicKeySize())
	}
	if rng == nil {
		rng = rand.Reader
	}
	var m [32]byte
	if _, err := io.ReadFull(rng, m[:]); err != nil {
		return nil, nil, fmt.Errorf("bike: reading message: %w", err)
	}
	h := gf2x.FromBytes(pk, p.R)
	e0sup, e1sup := p.deriveErrors(m[:])
	e0 := polyFromSupport(p.R, e0sup)
	e1 := polyFromSupport(p.R, e1sup)

	// c0 = e0 + e1 * h.
	c0 := gf2x.New(p.R)
	h.MulSparse(c0, e1sup)
	c0.Xor(e0)

	mask := p.hashL(e0, e1)
	c1 := make([]byte, 32)
	for i := range c1 {
		c1[i] = m[i] ^ mask[i]
	}
	ct = append(c0.Bytes(), c1...)
	return ct, p.hashK(m[:], c0.Bytes(), c1), nil
}

func polyFromSupport(r int, support []int) *gf2x.Poly {
	p := gf2x.New(r)
	for _, pos := range support {
		p.SetBit(pos)
	}
	return p
}

// Decapsulate recovers the shared secret, running the BGF decoder on the
// private syndrome. Decoding failures and re-encapsulation mismatches take
// the implicit-rejection path.
func (p *Params) Decapsulate(sk, ct []byte) ([]byte, error) {
	if len(sk) != p.PrivateKeySize() {
		return nil, fmt.Errorf("bike: private key is %d bytes, want %d", len(sk), p.PrivateKeySize())
	}
	if len(ct) != p.CiphertextSize() {
		return nil, fmt.Errorf("bike: ciphertext is %d bytes, want %d", len(ct), p.CiphertextSize())
	}
	h0sup := make([]int, p.W/2)
	h1sup := make([]int, p.W/2)
	for i := range h0sup {
		h0sup[i] = int(uint32(sk[4*i]) | uint32(sk[4*i+1])<<8 | uint32(sk[4*i+2])<<16 | uint32(sk[4*i+3])<<24)
	}
	for i := range h1sup {
		j := 4 * (p.W / 2)
		h1sup[i] = int(uint32(sk[j+4*i]) | uint32(sk[j+4*i+1])<<8 | uint32(sk[j+4*i+2])<<16 | uint32(sk[j+4*i+3])<<24)
	}
	sigma := sk[4*p.W : 4*p.W+32]

	c0bytes := ct[:p.PublicKeySize()]
	c1 := ct[p.PublicKeySize():]
	c0 := gf2x.FromBytes(c0bytes, p.R)

	// Private syndrome s = c0 * h0 = e0*h0 + e1*h1.
	s := gf2x.New(p.R)
	c0.MulSparse(s, h0sup)

	e0, e1, ok := p.decode(s, h0sup, h1sup)
	var m []byte
	if ok {
		mask := p.hashL(e0, e1)
		m = make([]byte, 32)
		for i := range m {
			m[i] = c1[i] ^ mask[i]
		}
		// Fujisaki-Okamoto check: the errors must re-derive from m.
		d0, d1 := p.deriveErrors(m)
		if !e0.Equal(polyFromSupport(p.R, d0)) || !e1.Equal(polyFromSupport(p.R, d1)) {
			ok = false
		}
	}
	if !ok {
		// Implicit rejection: K = hash(sigma, c0, c1).
		return p.hashK(sigma, c0bytes, c1), nil
	}
	return p.hashK(m, c0bytes, c1), nil
}

// decode runs an iterative bit-flipping decoder with the BGF affine
// threshold, recovering (e0, e1) from the syndrome s.
func (p *Params) decode(s *gf2x.Poly, h0sup, h1sup []int) (e0, e1 *gf2x.Poly, ok bool) {
	e0 = gf2x.New(p.R)
	e1 = gf2x.New(p.R)
	syn := s.Clone()

	const maxIter = 30
	stuck := 0
	for iter := 0; iter < maxIter; iter++ {
		if syn.IsZero() {
			return e0, e1, true
		}
		sw := syn.Weight()
		th := int(p.ThA*float64(sw) + p.ThB + 0.999999)
		// After an unproductive iteration, relax the threshold toward the
		// majority floor so residual errors can still be cleared.
		th -= stuck
		if th < p.ThMin {
			th = p.ThMin
		}
		flipped := false
		for half, hsup := range [2][]int{h0sup, h1sup} {
			e := e0
			if half == 1 {
				e = e1
			}
			for j := 0; j < p.R; j++ {
				// Counter: unsatisfied parity checks touching position j.
				ctr := 0
				for _, pos := range hsup {
					idx := pos + j
					if idx >= p.R {
						idx -= p.R
					}
					ctr += syn.Bit(idx)
				}
				if ctr >= th {
					e.FlipBit(j)
					flipped = true
					// Update the syndrome in place.
					for _, pos := range hsup {
						idx := pos + j
						if idx >= p.R {
							idx -= p.R
						}
						syn.FlipBit(idx)
					}
				}
			}
		}
		if flipped {
			stuck = 0
		} else {
			stuck++
			if th == p.ThMin {
				break // stuck at the majority floor: give up
			}
		}
	}
	if syn.IsZero() {
		return e0, e1, true
	}
	return nil, nil, false
}

// Equal is a helper for tests comparing serialized keys.
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }

// ErrDecodeFailure reports a decoding failure (only surfaced by tests; the
// KEM itself uses implicit rejection).
var ErrDecodeFailure = errors.New("bike: decoding failure")
