package mldsa

import "sync"

// maxK/maxL are dilithium5's matrix dimensions, the largest of any set;
// the pooled scratch is sized for them so one pool serves all six sets.
const (
	maxK = 8
	maxL = 7
	// maxW1Packed covers the widest packed w1 vector (dilithium5:
	// 8·256·4/8 = 1024; dilithium2's 4·256·6/8 = 768 fits).
	maxW1Packed = 1024
)

// sampleScratch holds the stream-read staging buffers of the rejection
// samplers. Reading through the io.Reader interface makes the destination
// buffer escape, so a stack array would heap-allocate on every call; the
// samplers borrow these pooled arrays instead.
type sampleScratch struct {
	uni  [168]byte        // sampleUniform: one SHAKE128 block
	eta  [136]byte        // sampleEta: one SHAKE256 block
	mask [N * 20 / 8]byte // sampleMask: widest packing (gamma1Bits = 20)
	ball [16]byte         // sampleInBall: 8 sign bytes + 1 rejection byte
}

var samplePool = sync.Pool{New: func() any { return new(sampleScratch) }}

func getSampleScratch() *sampleScratch  { return samplePool.Get().(*sampleScratch) }
func putSampleScratch(s *sampleScratch) { samplePool.Put(s) }

// signScratch is the working set of one signing rejection loop. Pooling it
// removes every per-call allocation of SigningKey.Sign except the returned
// signature itself. Buffers come back dirty; sign re-derives or truncates
// everything it reads.
type signScratch struct {
	y, yHat, z   [maxL]poly
	w, w1, hints [maxK]poly
	mu, rhoPrime [64]byte
	cTilde       [32]byte
	w1Packed     []byte
	smp          sampleScratch
}

var signPool = sync.Pool{New: func() any {
	return &signScratch{w1Packed: make([]byte, 0, maxW1Packed)}
}}

func getSignScratch() *signScratch  { return signPool.Get().(*signScratch) }
func putSignScratch(s *signScratch) { signPool.Put(s) }

// verifyScratch is the working set of one verification. Pooling it keeps
// VerifyKey.Verify allocation-free.
type verifyScratch struct {
	z        [maxL]poly
	hints    [maxK]poly
	mu       [64]byte
	want     [32]byte
	smp      sampleScratch
	w1Packed []byte
}

var verifyPool = sync.Pool{New: func() any {
	return &verifyScratch{w1Packed: make([]byte, 0, maxW1Packed)}
}}

func getVerifyScratch() *verifyScratch  { return verifyPool.Get().(*verifyScratch) }
func putVerifyScratch(s *verifyScratch) { verifyPool.Put(s) }
