// Package mldsa implements the Dilithium signature scheme (round-3
// parameters, as benchmarked by the paper via liboqs) for security levels
// 2, 3 and 5 and the AES-sampled variants (dilithium*_aes).
package mldsa

const (
	// N is the polynomial degree of the ring Z_q[X]/(X^256+1).
	N = 256
	// Q is the Dilithium modulus.
	Q = 8380417
	// D is the number of bits dropped from the public vector t.
	D = 13
	// root is a primitive 512th root of unity mod Q.
	root = 1753
	// inv256 is 256^-1 mod Q, the inverse-NTT scaling factor.
	inv256 = 8347681
)

type poly [N]int32

// zetas[i] = root^bitrev8(i) mod Q. zetasMont holds the same roots scaled
// by the Montgomery radix (zetas[i]·2^32 mod Q), so montReduce(x·zetasMont[i])
// yields x·zetas[i] mod Q in the plain domain with one cheap reduction.
var (
	zetas     [N]int32
	zetasMont [N]int32
)

// qInv is q^-1 mod 2^32, the low-half multiplier of Montgomery reduction.
const qInv int32 = 58728449

// r2Mont is 2^64 mod q: multiplying by it under montReduce lifts a plain
// residue into the Montgomery domain (a·2^32 mod q). Filled in init.
var r2Mont int64

func init() {
	pow := func(b, e int64) int64 {
		r := int64(1)
		b %= Q
		for ; e > 0; e >>= 1 {
			if e&1 == 1 {
				r = r * b % Q
			}
			b = b * b % Q
		}
		return r
	}
	for i := 0; i < N; i++ {
		br := 0
		for b := 0; b < 8; b++ {
			br |= (i >> b & 1) << (7 - b)
		}
		zetas[i] = int32(pow(root, int64(br)))
		zetasMont[i] = int32(int64(zetas[i]) << 32 % Q)
	}
	r2Mont = pow(2, 64)
	if int32(pow(256, Q-2)) != inv256 {
		panic("mldsa: inv256 constant is wrong")
	}
	qi, qq := uint32(qInv), uint32(Q)
	if qi*qq != 1 {
		panic("mldsa: qInv constant is wrong")
	}
}

// montReduce maps a ∈ (-q·2^31, q·2^31) to a·2^-32 mod q in (-q, q).
func montReduce(a int64) int32 {
	t := int32(a) * qInv
	return int32((a - int64(t)*Q) >> 32)
}

func fqmul(a, b int32) int32 {
	return int32(int64(a) * int64(b) % Q)
}

// freduce maps a to its canonical residue in [0, q), branch-free: the
// shift-based estimate t ≈ a/q (exact to ±1 for |a| ≤ 2^31 − 2^22, which
// covers every caller — the largest inputs are the lazy NTT's ≤ 9q
// magnitudes) leaves a centered remainder in (−q, q); the sign-mask add
// then lifts negatives. Division-free, so it stays cheap inside the
// per-coefficient loops the signing profile is dominated by.
func freduce(a int32) int32 {
	t := (a + (1 << 22)) >> 23
	a -= t * Q
	return a + (a>>31)&Q
}

// centered maps a residue in [0, Q) to its representative in (-Q/2, Q/2].
func centered(a int32) int32 {
	if a > Q/2 {
		return a - Q
	}
	return a
}

// ntt transforms p into the (complete, 8-layer) NTT domain.
//
// Reductions are lazy: only the multiplied wing of each butterfly is
// reduced (Montgomery, via the radix-scaled zeta table), so magnitudes
// grow by at most q per layer and stay below 9q « 2^31 over the 8 layers.
// A final pass restores the canonical [0, q) form the serializers and
// rejection checks expect, keeping every output byte-identical to the
// eager version.
func (p *poly) ntt() {
	k := 1
	for l := 128; l >= 1; l >>= 1 {
		for start := 0; start < N; start += 2 * l {
			zeta := int64(zetasMont[k])
			k++
			for j := start; j < start+l; j++ {
				t := montReduce(zeta * int64(p[j+l]))
				p[j+l] = p[j] - t
				p[j] += t
			}
		}
	}
	for i := range p {
		p[i] = freduce(p[i])
	}
}

// invNTT is the inverse transform; same reflected-zeta trick as mlkem.
//
// Fully lazy Gentleman-Sande: the sum wing is never reduced mid-transform.
// Worst-case magnitude after the 8 doubling layers is 256·q =
// 2,145,386,752, which still fits int32, and the Montgomery inputs
// zeta·(sum difference) stay below q·2^31. The 256^-1 scaling is folded
// into one Montgomery multiply per coefficient.
func (p *poly) invNTT() {
	k := 255
	for l := 1; l <= 128; l <<= 1 {
		for start := 0; start < N; start += 2 * l {
			zeta := int64(zetasMont[k])
			k--
			for j := start; j < start+l; j++ {
				t := p[j]
				p[j] = t + p[j+l]
				p[j+l] = montReduce(zeta * int64(p[j+l]-t))
			}
		}
	}
	const fMont = int64(inv256) << 32 % Q
	for i := range p {
		p[i] = freduce(montReduce(fMont * int64(p[i])))
	}
}

// mulAcc accumulates the pointwise NTT-domain product a*b into r.
// Cold-path helper (keygen); the signing and verification loops use the
// Montgomery-domain variants below, which replace the int64 division in
// fqmul with a single montReduce per coefficient.
func mulAcc(r, a, b *poly) {
	for i := range r {
		r[i] = freduce(r[i] + fqmul(a[i], b[i]))
	}
}

// toMont lifts p into the Montgomery domain (p[i]·2^32 mod q). Inputs must
// be canonical; outputs are canonical representatives of the scaled values.
func (p *poly) toMont() {
	for i := range p {
		p[i] = freduce(montReduce(r2Mont * int64(p[i])))
	}
}

// polyMulMont sets r[i] = aMont[i]·b[i]·2^-32 mod q — the plain-domain
// pointwise product when aMont is Montgomery-scaled and b canonical.
func polyMulMont(r, aMont, b *poly) {
	for i := range r {
		r[i] = freduce(montReduce(int64(aMont[i]) * int64(b[i])))
	}
}

// polyDotMont sets r to the NTT-domain dot product Σ_j aMont[j]∘b[j] of a
// Montgomery-scaled matrix row with a canonical vector. The int64
// accumulator tolerates up to 2^31/q ≈ 256 terms before a reduction is
// needed — far above the ≤ 8 rows of any parameter set — so the whole row
// costs one montReduce+freduce per coefficient instead of one per term.
func polyDotMont(r *poly, aMont, b []poly) {
	for i := 0; i < N; i++ {
		var acc int64
		for j := range aMont {
			acc += int64(aMont[j][i]) * int64(b[j][i])
		}
		r[i] = freduce(montReduce(acc))
	}
}

func (p *poly) add(a *poly) {
	for i := range p {
		p[i] = freduce(p[i] + a[i])
	}
}

func (p *poly) sub(a *poly) {
	for i := range p {
		p[i] = freduce(p[i] - a[i] + Q)
	}
}

// normExceeds reports whether any centered coefficient has |c| >= bound.
func (p *poly) normExceeds(bound int32) bool {
	for _, x := range p {
		c := centered(x)
		if c < 0 {
			c = -c
		}
		if c >= bound {
			return true
		}
	}
	return false
}

// power2Round splits each coefficient r = r1*2^D + r0 with centered r0.
func power2Round(r int32) (r1, r0 int32) {
	r0 = r & (1<<D - 1)
	if r0 > 1<<(D-1) {
		r0 -= 1 << D
	}
	return (r - r0) >> D, r0
}

// decompose splits r = r1*alpha + r0 (alpha = 2*gamma2, centered r0) with
// the q-1 wraparound fix from the spec. Division-free: the high part comes
// from a fixed-point multiply tuned per gamma2 (only (q-1)/32 and (q-1)/88
// exist across the parameter sets), and the wraparound case r1 = (q-1)/alpha
// folds to 0 via a mask instead of a branch. Output is identical to the
// schoolbook r % alpha / (r-r0)/alpha form for every r in [0, q).
func decompose(r, gamma2 int32) (r1, r0 int32) {
	r1 = (r + 127) >> 7
	if gamma2 == (Q-1)/32 {
		r1 = (r1*1025 + (1 << 21)) >> 22
		r1 &= 15
	} else { // gamma2 == (Q-1)/88
		r1 = (r1*11275 + (1 << 23)) >> 24
		r1 ^= ((43 - r1) >> 31) & r1
	}
	r0 = r - r1*2*gamma2
	r0 -= (((Q-1)/2 - r0) >> 31) & Q
	return r1, r0
}

// highBits returns the r1 part of decompose.
func highBits(r, gamma2 int32) int32 {
	r1, _ := decompose(r, gamma2)
	return r1
}

// makeHint returns 1 when adding z to r changes the high bits.
func makeHint(z, r, gamma2 int32) int32 {
	if highBits(r, gamma2) != highBits(freduce(r+z), gamma2) {
		return 1
	}
	return 0
}

// useHint recovers the high bits of r+z from r and the hint bit.
func useHint(h, r, gamma2 int32) int32 {
	m := (Q - 1) / (2 * gamma2)
	r1, r0 := decompose(r, gamma2)
	if h == 0 {
		return r1
	}
	if r0 > 0 {
		return (r1 + 1) % int32(m)
	}
	return (r1 - 1 + int32(m)) % int32(m)
}
