//go:build !race

package mldsa

const raceEnabled = false
