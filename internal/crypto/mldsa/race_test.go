//go:build race

package mldsa

// raceEnabled reports whether the race detector is instrumenting this
// build. Instrumentation changes inlining and escape analysis, so
// zero-alloc assertions only hold in normal builds (where the benchmark
// gate also enforces them).
const raceEnabled = true
