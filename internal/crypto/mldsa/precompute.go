package mldsa

import (
	"fmt"

	"pqtls/internal/crypto/sha3"
)

// SigningKey is a private key expanded into the form the signing loop
// consumes: the NTT-domain matrix A and the NTT-domain secret vectors
// s1, s2, t0, unpacked once instead of on every Sign call. A server
// producing CertificateVerify signatures under one certificate key signs
// thousands of times with the same key, so the expansion — K·L SHAKE128
// matrix samples plus K+L+K eta/t0 unpack-and-NTT passes — amortizes to
// zero. The struct is read-only after construction and safe for concurrent
// Sign calls.
type SigningKey struct {
	p       *Params
	key, tr [32]byte
	aMont   []poly // K×L matrix, NTT domain, Montgomery-scaled (·2^32 mod q)
	s1Hat   []poly
	s2Hat   []poly
	t0Hat   []poly
}

// NewSigningKey expands sk into a reusable signing context.
func (p *Params) NewSigningKey(sk []byte) (*SigningKey, error) {
	if len(sk) != p.PrivateKeySize() {
		return nil, fmt.Errorf("mldsa: private key is %d bytes, want %d", len(sk), p.PrivateKeySize())
	}
	k := &SigningKey{p: p}
	rho := sk[:32]
	copy(k.key[:], sk[32:64])
	copy(k.tr[:], sk[64:96])
	off := 96
	etaLen := N * int(p.etaBits()) / 8
	k.s1Hat = make([]poly, p.L)
	for i := range k.s1Hat {
		p.unpackEta(&k.s1Hat[i], sk[off:off+etaLen])
		off += etaLen
		k.s1Hat[i].ntt()
	}
	k.s2Hat = make([]poly, p.K)
	for i := range k.s2Hat {
		p.unpackEta(&k.s2Hat[i], sk[off:off+etaLen])
		off += etaLen
		k.s2Hat[i].ntt()
	}
	k.t0Hat = make([]poly, p.K)
	for i := range k.t0Hat {
		unpackBits(&k.t0Hat[i], sk[off:off+416], 13, func(t uint32) int32 {
			return freduce(1<<(D-1) - int32(t) + Q)
		})
		off += 416
		k.t0Hat[i].ntt()
	}
	// The matrix is consumed exclusively by Montgomery-domain row products
	// (polyDotMont/polyMulMont), so scale it once here: the 2^32 factor
	// cancels against montReduce in every later multiply.
	k.aMont = p.expandA(rho)
	for i := range k.aMont {
		k.aMont[i].toMont()
	}
	return k, nil
}

// Sign produces the same deterministic signature as Params.Sign over the
// same private key.
func (k *SigningKey) Sign(msg []byte) ([]byte, error) { return k.sign(msg) }

// VerifyKey is a public key expanded into the form the verifier consumes:
// the NTT-domain matrix A, the NTT of every t1·2^D vector element, and the
// public-key hash tr. A client verifying many handshakes against one server
// certificate re-derives all three on every Params.Verify call; caching
// them here turns repeat verification into just the z/hint parsing and the
// A·z recomputation. The struct is read-only after construction and safe
// for concurrent Verify calls.
type VerifyKey struct {
	p          *Params
	tr         [32]byte
	aMont      []poly // K×L matrix, NTT domain, Montgomery-scaled (·2^32 mod q)
	t1ShiftHat []poly // NTT(t1 · 2^D) per row
}

// NewVerifyKey expands pk into a reusable verification context.
func (p *Params) NewVerifyKey(pk []byte) (*VerifyKey, error) {
	if len(pk) != p.PublicKeySize() {
		return nil, fmt.Errorf("mldsa: public key is %d bytes, want %d", len(pk), p.PublicKeySize())
	}
	k := &VerifyKey{p: p}
	rho := pk[:32]
	k.t1ShiftHat = make([]poly, p.K)
	for i := range k.t1ShiftHat {
		var t1 poly
		unpackBits(&t1, pk[32+320*i:32+320*(i+1)], 10, func(t uint32) int32 { return int32(t) })
		for n := 0; n < N; n++ {
			k.t1ShiftHat[i][n] = freduce(t1[n] << D)
		}
		k.t1ShiftHat[i].ntt()
	}
	k.aMont = p.expandA(rho)
	for i := range k.aMont {
		k.aMont[i].toMont()
	}
	tr := sha3.ShakeSum256(32, pk)
	copy(k.tr[:], tr)
	return k, nil
}

// Verify reports whether sig is valid for msg, with the same result as
// Params.Verify over the same public key.
func (k *VerifyKey) Verify(msg, sig []byte) bool { return k.verify(msg, sig) }
