package mldsa

import (
	"bytes"
	"sync"
	"testing"

	"pqtls/internal/crypto/sha3"
)

// TestPrecomputedContextsMatchOneShot pins that SigningKey.Sign and
// VerifyKey.Verify are byte-identical to Params.Sign / Params.Verify for
// every parameter set (signing is deterministic, so equality is exact).
func TestPrecomputedContextsMatchOneShot(t *testing.T) {
	sets := []*Params{Dilithium2, Dilithium3, Dilithium5, Dilithium2AES, Dilithium3AES, Dilithium5AES}
	for _, p := range sets {
		rng := sha3.NewShake256()
		rng.Write([]byte("precompute-" + p.Name))
		pk, sk, err := p.GenerateKey(rng)
		if err != nil {
			t.Fatal(err)
		}
		signer, err := p.NewSigningKey(sk)
		if err != nil {
			t.Fatal(err)
		}
		verifier, err := p.NewVerifyKey(pk)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 8; trial++ {
			msg := make([]byte, 16+trial*37)
			rng.Read(msg)
			want, err := p.Sign(sk, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := signer.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s trial %d: SigningKey.Sign differs from Params.Sign", p.Name, trial)
			}
			if !verifier.Verify(msg, got) {
				t.Fatalf("%s trial %d: VerifyKey rejects a valid signature", p.Name, trial)
			}
			if !p.Verify(pk, msg, got) {
				t.Fatalf("%s trial %d: Params.Verify rejects a valid signature", p.Name, trial)
			}
			// Corrupt one byte: both verifiers must agree on rejection.
			bad := append([]byte(nil), got...)
			bad[trial%len(bad)] ^= 0x40
			if verifier.Verify(msg, bad) != p.Verify(pk, msg, bad) {
				t.Fatalf("%s trial %d: verifiers disagree on corrupted signature", p.Name, trial)
			}
			if verifier.Verify(msg[:len(msg)-1], got) {
				t.Fatalf("%s trial %d: VerifyKey accepts wrong message", p.Name, trial)
			}
		}
	}
}

// TestPrecomputedContextsConcurrent exercises one shared SigningKey and
// VerifyKey from many goroutines (run under -race in `make race`).
func TestPrecomputedContextsConcurrent(t *testing.T) {
	p := Dilithium3
	rng := sha3.NewShake256()
	rng.Write([]byte("precompute-concurrent"))
	pk, sk, err := p.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	signer, err := p.NewSigningKey(sk)
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := p.NewVerifyKey(pk)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			msg := []byte{byte(g), byte(g >> 8), 0xAB}
			sig, err := signer.Sign(msg)
			if err != nil {
				errc <- err
				return
			}
			if !verifier.Verify(msg, sig) {
				errc <- ErrBadKey
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func BenchmarkDilithium3SignCached(b *testing.B) {
	rng := sha3.NewShake256()
	rng.Write([]byte("bench-sign-cached"))
	_, sk, err := Dilithium3.GenerateKey(rng)
	if err != nil {
		b.Fatal(err)
	}
	signer, err := Dilithium3.NewSigningKey(sk)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 130)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signer.Sign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDilithium3VerifyCached(b *testing.B) {
	rng := sha3.NewShake256()
	rng.Write([]byte("bench-verify-cached"))
	pk, sk, err := Dilithium3.GenerateKey(rng)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 130)
	sig, err := Dilithium3.Sign(sk, msg)
	if err != nil {
		b.Fatal(err)
	}
	verifier, err := Dilithium3.NewVerifyKey(pk)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verifier.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}
