package mldsa

import (
	"testing"

	"pqtls/internal/crypto/sha3"
)

func batchDRBG(seed string) sha3.XOF {
	x := sha3.NewShake256()
	x.Write([]byte(seed))
	return x
}

// TestVerifyBatchMatchesSequential is the differential test pinning the
// batch verifier to the sequential one: 2500 (msg, sig) trials per SHAKE
// set — a mix of valid signatures, bit-flipped c-tilde/z/hint mutations,
// cross-message swaps, and malformed hint encodings — must produce exactly
// the same accept/reject decisions from VerifyBatch as from Verify.
func TestVerifyBatchMatchesSequential(t *testing.T) {
	sets := []*Params{Dilithium2, Dilithium3, Dilithium5}
	trialsPerSet := 2500 / len(sets) // 2500+ trials across the sets
	if testing.Short() {
		trialsPerSet = 120
	}
	batchSize := 10
	for _, p := range sets {
		rng := batchDRBG("verify-batch/" + p.Name)
		pk, sk, err := p.GenerateKey(rng)
		if err != nil {
			t.Fatal(err)
		}
		signer, err := p.NewSigningKey(sk)
		if err != nil {
			t.Fatal(err)
		}
		vk, err := p.NewVerifyKey(pk)
		if err != nil {
			t.Fatal(err)
		}
		mut := batchDRBG("mutations/" + p.Name)
		var mb [3]byte
		for trial := 0; trial < trialsPerSet; trial += batchSize {
			msgs := make([][]byte, batchSize)
			sigs := make([][]byte, batchSize)
			for i := 0; i < batchSize; i++ {
				msg := make([]byte, 8+((trial+i)%57))
				rng.Read(msg)
				sig, err := signer.Sign(msg)
				if err != nil {
					t.Fatal(err)
				}
				// Leave ~40% of the signatures valid; mutate the rest in
				// ways that exercise every reject path.
				switch i % 5 {
				case 1: // flip a bit in c-tilde: challenge mismatch
					mut.Read(mb[:])
					sig[int(mb[0])%32] ^= 1 << (mb[1] % 8)
				case 2: // flip a bit somewhere in z: norm or hash mismatch
					mut.Read(mb[:])
					zOff := 32 + (int(mb[0])|int(mb[1])<<8)%(len(sig)-32-p.Omega-p.K)
					sig[zOff] ^= 1 << (mb[2] % 8)
				case 3: // corrupt the hint section: often malformed
					mut.Read(mb[:])
					sig[len(sig)-1-int(mb[0])%(p.Omega+p.K)] ^= 0xFF
				case 4:
					if i > 0 { // valid signature, wrong message
						msg = msgs[i-1]
					}
				}
				msgs[i], sigs[i] = msg, sig
			}
			want := make([]bool, batchSize)
			for i := range msgs {
				want[i] = vk.Verify(msgs[i], sigs[i])
			}
			got := vk.VerifyBatch(msgs, sigs)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d item %d: VerifyBatch=%v, Verify=%v",
						p.Name, trial, i, got[i], want[i])
				}
			}
		}
	}
}

// TestVerifyBatchAESFallback checks the sequential fallback of the *_aes
// sets agrees with Verify.
func TestVerifyBatchAESFallback(t *testing.T) {
	p := Dilithium3AES
	rng := batchDRBG("verify-batch-aes")
	pk, sk, err := p.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	vk, err := p.NewVerifyKey(pk)
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]byte, 4)
	sigs := make([][]byte, 4)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 1, 2, 3}
		sigs[i], err = p.Sign(sk, msgs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	sigs[2][40] ^= 1
	got := vk.VerifyBatch(msgs, sigs)
	for i := range msgs {
		if want := vk.Verify(msgs[i], sigs[i]); got[i] != want {
			t.Fatalf("item %d: VerifyBatch=%v, Verify=%v", i, got[i], want)
		}
	}
}

// TestVerifyBatchEmptyAndMismatch pins the edge-case contract.
func TestVerifyBatchEmptyAndMismatch(t *testing.T) {
	rng := batchDRBG("verify-batch-edge")
	pk, _, err := Dilithium3.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	vk, err := Dilithium3.NewVerifyKey(pk)
	if err != nil {
		t.Fatal(err)
	}
	if res := vk.VerifyBatch(nil, nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	vk.VerifyBatch(make([][]byte, 2), make([][]byte, 1))
}

// TestVerifyCachedZeroAlloc pins the pooled-scratch contract of the
// sequential cached verifier (the client-side per-handshake cost).
func TestVerifyCachedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats escape analysis; allocs gated by bench-gate")
	}
	rng := batchDRBG("verify-zero-alloc")
	pk, sk, err := Dilithium3.GenerateKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := Dilithium3.Sign(sk, []byte("hot path"))
	if err != nil {
		t.Fatal(err)
	}
	vk, err := Dilithium3.NewVerifyKey(pk)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if !vk.Verify([]byte("hot path"), sig) {
			t.Fatal("valid signature rejected")
		}
	})
	if allocs != 0 {
		t.Fatalf("cached Verify allocates %v times per op, want 0", allocs)
	}
}

func BenchmarkDilithium3VerifyBatch16(b *testing.B) {
	rng := batchDRBG("bench-verify-batch")
	pk, sk, err := Dilithium3.GenerateKey(rng)
	if err != nil {
		b.Fatal(err)
	}
	signer, err := Dilithium3.NewSigningKey(sk)
	if err != nil {
		b.Fatal(err)
	}
	vk, err := Dilithium3.NewVerifyKey(pk)
	if err != nil {
		b.Fatal(err)
	}
	msgs := make([][]byte, 16)
	sigs := make([][]byte, 16)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 0xAB}
		if sigs[i], err = signer.Sign(msgs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := vk.VerifyBatch(msgs, sigs)
		for j := range res {
			if !res[j] {
				b.Fatal("valid signature rejected")
			}
		}
	}
}
