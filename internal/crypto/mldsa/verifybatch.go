package mldsa

import (
	"crypto/subtle"

	"pqtls/internal/crypto/sha3"
)

// VerifyBatch checks n (msg, sig) pairs under this key, returning one
// accept/reject decision per pair. Decisions are identical to n sequential
// Verify calls — the per-pair parsing, norm checks, challenge expansion,
// and lattice recomputation are the same code — but the SHAKE-based sets
// amortize the symmetric work across the batch: one multi-sponge pass for
// the n mu hashes, one for the n challenge expansions, and one for the n
// final w1 hashes, on top of the matrix expansion already amortized by the
// VerifyKey itself. Pairs that fail parsing or the norm checks are
// rejected up front and excluded from the batched passes (their hashes are
// never needed). The *_aes sets fall back to the sequential path.
func (k *VerifyKey) VerifyBatch(msgs, sigs [][]byte) []bool {
	if len(msgs) != len(sigs) {
		panic("mldsa: VerifyBatch called with mismatched msgs/sigs lengths")
	}
	n := len(msgs)
	res := make([]bool, n)
	if n == 0 {
		return res
	}
	p := k.p
	if _, ok := p.exp.(shakeExpander); !ok {
		for i := range msgs {
			res[i] = k.Verify(msgs[i], sigs[i])
		}
		return res
	}

	// Parse every signature first; survivors join the batched passes.
	zAll := make([]poly, n*p.L)
	hintAll := make([]poly, n*p.K)
	live := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if k.parseSignature(zAll[i*p.L:(i+1)*p.L], hintAll[i*p.K:(i+1)*p.K], sigs[i]) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return res
	}

	// Batch mu_j = SHAKE256(64, tr || msg_j). Each multi-sponge stream
	// absorbs one contiguous input, so tr||msg is staged per survivor.
	muInLen := 0
	for _, i := range live {
		muInLen += 32 + len(msgs[i])
	}
	muIn := make([]byte, 0, muInLen)
	muInRefs := make([][]byte, len(live))
	muBuf := make([]byte, 64*len(live))
	muRefs := make([][]byte, len(live))
	for j, i := range live {
		start := len(muIn)
		muIn = append(muIn, k.tr[:]...)
		muIn = append(muIn, msgs[i]...)
		muInRefs[j] = muIn[start:]
		muRefs[j] = muBuf[64*j : 64*(j+1)]
	}
	sha3.ShakeSum256Batch(muRefs, muInRefs)

	// Batch the challenge expansions: one SHAKE256 lane per c-tilde, with
	// the in-ball rejection sampler squeezing each lane exactly as the
	// sequential verifier squeezes its solo sponge.
	ctRefs := make([][]byte, len(live))
	for j, i := range live {
		ctRefs[j] = sigs[i][:32]
	}
	cs := make([]poly, len(live))
	var ballBuf [16]byte
	m := sha3.NewMultiShake256(ctRefs)
	for j := range cs {
		sampleInBallStream(&cs[j], m.Stream(j), p.Tau, &ballBuf)
	}
	sha3.PutMultiXOF(m)

	// Per-pair lattice work, staging mu_j || w1Packed_j contiguously so
	// the final hash batches over single-slice inputs.
	w1Len := p.K * N * int(p.W1Bits) / 8
	wantIn := make([]byte, 0, len(live)*(64+w1Len))
	wantInRefs := make([][]byte, len(live))
	for j, i := range live {
		start := len(wantIn)
		wantIn = append(wantIn, muRefs[j]...)
		wantIn = k.recomputeW1(wantIn, zAll[i*p.L:(i+1)*p.L], hintAll[i*p.K:(i+1)*p.K], &cs[j])
		wantInRefs[j] = wantIn[start:]
	}
	wantBuf := make([]byte, 32*len(live))
	wantRefs := make([][]byte, len(live))
	for j := range wantRefs {
		wantRefs[j] = wantBuf[32*j : 32*(j+1)]
	}
	sha3.ShakeSum256Batch(wantRefs, wantInRefs)

	for j, i := range live {
		res[i] = subtle.ConstantTimeCompare(sigs[i][:32], wantRefs[j]) == 1
	}
	return res
}
