package mldsa

import (
	"crypto/rand"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"

	"pqtls/internal/crypto/sha3"
)

// Params describes one Dilithium parameter set.
type Params struct {
	Name       string
	K, L       int   // matrix dimensions
	Eta        int32 // secret coefficient range
	Tau        int   // challenge weight
	Beta       int32 // tau * eta
	Gamma1     int32 // mask range
	Gamma1Bits uint  // bits per packed z coefficient
	Gamma2     int32 // low-order rounding range
	Omega      int   // maximum hint weight
	W1Bits     uint  // bits per packed w1 coefficient
	exp        expander
}

// The six parameter sets benchmarked by the paper.
var (
	Dilithium2 = &Params{Name: "dilithium2", K: 4, L: 4, Eta: 2, Tau: 39, Beta: 78,
		Gamma1: 1 << 17, Gamma1Bits: 18, Gamma2: (Q - 1) / 88, Omega: 80, W1Bits: 6, exp: shakeExpander{}}
	Dilithium3 = &Params{Name: "dilithium3", K: 6, L: 5, Eta: 4, Tau: 49, Beta: 196,
		Gamma1: 1 << 19, Gamma1Bits: 20, Gamma2: (Q - 1) / 32, Omega: 55, W1Bits: 4, exp: shakeExpander{}}
	Dilithium5 = &Params{Name: "dilithium5", K: 8, L: 7, Eta: 2, Tau: 60, Beta: 120,
		Gamma1: 1 << 19, Gamma1Bits: 20, Gamma2: (Q - 1) / 32, Omega: 75, W1Bits: 4, exp: shakeExpander{}}
	Dilithium2AES = aesVariant(Dilithium2, "dilithium2_aes")
	Dilithium3AES = aesVariant(Dilithium3, "dilithium3_aes")
	Dilithium5AES = aesVariant(Dilithium5, "dilithium5_aes")
)

func aesVariant(p *Params, name string) *Params {
	v := *p
	v.Name = name
	v.exp = aesExpander{}
	return &v
}

func (p *Params) etaBits() uint {
	if p.Eta == 2 {
		return 3
	}
	return 4
}

// PublicKeySize returns the public-key length (rho || t1).
func (p *Params) PublicKeySize() int { return 32 + p.K*320 }

// PrivateKeySize returns the private-key length.
func (p *Params) PrivateKeySize() int {
	return 32 + 32 + 32 + (p.K+p.L)*N*int(p.etaBits())/8 + p.K*416
}

// SignatureSize returns the signature length (c-tilde || z || hints).
func (p *Params) SignatureSize() int {
	return 32 + p.L*N*int(p.Gamma1Bits)/8 + p.Omega + p.K
}

// GenerateKey creates a key pair from rng (crypto/rand if nil).
func (p *Params) GenerateKey(rng io.Reader) (pk, sk []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	var zeta [32]byte
	if _, err := io.ReadFull(rng, zeta[:]); err != nil {
		return nil, nil, fmt.Errorf("mldsa: reading key seed: %w", err)
	}
	pk, sk = p.deriveKey(zeta)
	return pk, sk, nil
}

func (p *Params) deriveKey(zeta [32]byte) (pk, sk []byte) {
	seeds := sha3.ShakeSum256(128, zeta[:])
	rho, rhoPrime, key := seeds[:32], seeds[32:96], seeds[96:128]

	a := p.expandA(rho)
	smp := getSampleScratch()
	s1 := make([]poly, p.L)
	s2 := make([]poly, p.K)
	for i := range s1 {
		st := p.exp.Stream256(rhoPrime, uint16(i))
		sampleEta(&s1[i], st, p.Eta, &smp.eta)
		putStream(st)
	}
	for i := range s2 {
		st := p.exp.Stream256(rhoPrime, uint16(p.L+i))
		sampleEta(&s2[i], st, p.Eta, &smp.eta)
		putStream(st)
	}
	putSampleScratch(smp)

	// t = A*s1 + s2.
	s1Hat := make([]poly, p.L)
	for i := range s1Hat {
		s1Hat[i] = s1[i]
		s1Hat[i].ntt()
	}
	t1 := make([]poly, p.K)
	t0 := make([]poly, p.K)
	for i := 0; i < p.K; i++ {
		var t poly
		for j := 0; j < p.L; j++ {
			mulAcc(&t, &a[i*p.L+j], &s1Hat[j])
		}
		t.invNTT()
		t.add(&s2[i])
		for n := 0; n < N; n++ {
			hi, lo := power2Round(t[n])
			t1[i][n] = hi
			t0[i][n] = freduce(lo + Q)
		}
	}

	pk = make([]byte, 0, p.PublicKeySize())
	pk = append(pk, rho...)
	for i := range t1 {
		pk = packBitsInto(pk, &t1[i], 10, func(c int32) uint32 { return uint32(c) })
	}
	tr := sha3.ShakeSum256(32, pk)

	sk = make([]byte, 0, p.PrivateKeySize())
	sk = append(sk, rho...)
	sk = append(sk, key...)
	sk = append(sk, tr...)
	for i := range s1 {
		sk = append(sk, p.packEta(&s1[i])...)
	}
	for i := range s2 {
		sk = append(sk, p.packEta(&s2[i])...)
	}
	for i := range t0 {
		sk = packBitsInto(sk, &t0[i], 13, func(c int32) uint32 {
			return uint32(1<<(D-1) - centered(c))
		})
	}
	return pk, sk
}

func (p *Params) packEta(s *poly) []byte {
	eta := p.Eta
	return packBits(s, p.etaBits(), func(c int32) uint32 { return uint32(eta - centered(c)) })
}

func (p *Params) unpackEta(s *poly, in []byte) {
	eta := p.Eta
	unpackBits(s, in, p.etaBits(), func(t uint32) int32 { return freduce(eta - int32(t) + Q) })
}

// expandA derives the K×L matrix in the NTT domain. The SHAKE sets absorb
// all K·L seed blocks in one multi-sponge pass; the *_aes sets keep the
// per-element stream loop.
func (p *Params) expandA(rho []byte) []poly {
	a := make([]poly, p.K*p.L)
	smp := getSampleScratch()
	defer putSampleScratch(smp)
	if _, ok := p.exp.(shakeExpander); ok {
		var seeds [56][34]byte // K·L <= 56 seeds of rho || nonce16le
		var inputs [56][]byte
		kl := p.K * p.L
		for i := 0; i < p.K; i++ {
			for j := 0; j < p.L; j++ {
				idx := i*p.L + j
				nonce := uint16(i<<8 | j)
				s := &seeds[idx]
				copy(s[:32], rho)
				s[32], s[33] = byte(nonce), byte(nonce>>8)
				inputs[idx] = s[:]
			}
		}
		m := sha3.NewMultiShake128(inputs[:kl])
		for idx := range a {
			sampleUniform(&a[idx], m.Stream(idx), &smp.uni)
		}
		sha3.PutMultiXOF(m)
		return a
	}
	for i := 0; i < p.K; i++ {
		for j := 0; j < p.L; j++ {
			st := p.exp.Stream128(rho, uint16(i<<8|j))
			sampleUniform(&a[i*p.L+j], st, &smp.uni)
			putStream(st)
		}
	}
	return a
}

// Sign produces a deterministic signature over msg. Callers signing many
// messages under one key should build a SigningKey once instead — it hoists
// the matrix expansion and the secret-vector NTTs out of the per-signature
// cost.
func (p *Params) Sign(sk, msg []byte) ([]byte, error) {
	k, err := p.NewSigningKey(sk)
	if err != nil {
		return nil, err
	}
	return k.Sign(msg)
}

// sign runs the deterministic rejection loop against the precomputed key.
// All scratch comes from a pool shared across keys, so one SigningKey can
// sign concurrently and the only per-call allocation is the returned
// signature.
func (k *SigningKey) sign(msg []byte) ([]byte, error) {
	p := k.p
	aMont, s1Hat, s2Hat, t0Hat := k.aMont, k.s1Hat, k.s2Hat, k.t0Hat
	s := getSignScratch()
	defer putSignScratch(s)
	mu, rhoPrime := s.mu[:], s.rhoPrime[:]
	sha3.ShakeSum256Into(mu, k.tr[:], msg)
	sha3.ShakeSum256Into(rhoPrime, k.key[:], mu)

	// Rejection-loop scratch, borrowed from the pool: each iteration
	// re-derives or zeroes what it needs.
	y := s.y[:p.L]
	yHat := s.yHat[:p.L]
	w := s.w[:p.K]
	w1 := s.w1[:p.K]
	z := s.z[:p.L]
	hints := s.hints[:p.K]
	w1Packed := s.w1Packed[:0]
	for kappa := uint16(0); ; kappa += uint16(p.L) {
		// Sample the mask vector y and compute w = A*y.
		for i := range y {
			st := p.exp.Stream256(rhoPrime, kappa+uint16(i))
			sampleMask(&y[i], st, p.Gamma1, p.Gamma1Bits, &s.smp.mask)
			putStream(st)
			yHat[i] = y[i]
			yHat[i].ntt()
		}
		w1Packed = w1Packed[:0]
		for i := 0; i < p.K; i++ {
			polyDotMont(&w[i], aMont[i*p.L:(i+1)*p.L], yHat)
			w[i].invNTT()
			for n := 0; n < N; n++ {
				w1[i][n] = highBits(w[i][n], p.Gamma2)
			}
			w1Packed = packBitsInto(w1Packed, &w1[i], p.W1Bits, func(c int32) uint32 { return uint32(c) })
		}
		cTilde := s.cTilde[:]
		sha3.ShakeSum256Into(cTilde, mu, w1Packed)
		var c poly
		sampleInBallInto(&c, cTilde, p.Tau, &s.smp.ball)
		cHat := c
		cHat.ntt()
		// One Montgomery lift of c per iteration pays for every c·{s1,s2,t0}
		// product below via the cheaper montReduce pointwise multiply.
		cHatMont := cHat
		cHatMont.toMont()

		// z = y + c*s1, rejected if too large.
		ok := true
		for i := range z {
			var cs1 poly
			polyMulMont(&cs1, &cHatMont, &s1Hat[i])
			cs1.invNTT()
			z[i] = y[i]
			z[i].add(&cs1)
			if z[i].normExceeds(p.Gamma1 - p.Beta) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}

		// Check the low bits of w - c*s2 and build the hint against c*t0.
		hintCount := 0
		for i := 0; i < p.K && ok; i++ {
			hints[i] = poly{}
			var cs2, ct0 poly
			polyMulMont(&cs2, &cHatMont, &s2Hat[i])
			cs2.invNTT()
			polyMulMont(&ct0, &cHatMont, &t0Hat[i])
			ct0.invNTT()
			if ct0.normExceeds(p.Gamma2) {
				ok = false
				break
			}
			wcs2 := w[i]
			wcs2.sub(&cs2)
			for n := 0; n < N; n++ {
				_, r0 := decompose(wcs2[n], p.Gamma2)
				if abs32(r0) >= p.Gamma2-p.Beta {
					ok = false
					break
				}
				with := freduce(wcs2[n] + ct0[n])
				if highBits(with, p.Gamma2) != highBits(wcs2[n], p.Gamma2) {
					hints[i][n] = 1
					hintCount++
				}
			}
		}
		if !ok || hintCount > p.Omega {
			continue
		}

		sig := make([]byte, 0, p.SignatureSize())
		sig = append(sig, cTilde...)
		for i := range z {
			g1 := p.Gamma1
			sig = packBitsInto(sig, &z[i], p.Gamma1Bits, func(c int32) uint32 {
				return uint32(g1 - centered(c))
			})
		}
		sig = p.packHintsInto(sig, hints)
		return sig, nil
	}
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

// packHintsInto encodes hint positions into omega+K bytes appended to dst,
// which must have capacity for them (signature buffers are pre-sized).
func (p *Params) packHintsInto(dst []byte, h []poly) []byte {
	out := dst[len(dst) : len(dst)+p.Omega+p.K]
	for i := range out {
		out[i] = 0
	}
	idx := 0
	for i := range h {
		for n := 0; n < N; n++ {
			if h[i][n] != 0 {
				out[idx] = byte(n)
				idx++
			}
		}
		out[p.Omega+i] = byte(idx)
	}
	return dst[:len(dst)+p.Omega+p.K]
}

// unpackHintsInto decodes the hint section into the caller-lent h (length
// K, zeroed here), returning false on malformed input.
func (p *Params) unpackHintsInto(h []poly, in []byte) bool {
	for i := range h {
		h[i] = poly{}
	}
	idx := 0
	for i := 0; i < p.K; i++ {
		end := int(in[p.Omega+i])
		if end < idx || end > p.Omega {
			return false
		}
		prev := -1
		for ; idx < end; idx++ {
			pos := int(in[idx])
			if pos <= prev { // positions must strictly increase
				return false
			}
			prev = pos
			h[i][pos] = 1
		}
	}
	for ; idx < p.Omega; idx++ {
		if in[idx] != 0 { // unused slots must be zero
			return false
		}
	}
	return true
}

// Verify reports whether sig is a valid signature of msg under pk. Callers
// verifying many signatures under one key should build a VerifyKey once —
// it hoists the matrix expansion, the t1·2^D NTTs, and the public-key hash
// out of the per-verification cost.
func (p *Params) Verify(pk, msg, sig []byte) bool {
	k, err := p.NewVerifyKey(pk)
	if err != nil {
		return false
	}
	return k.Verify(msg, sig)
}

// verify checks one signature against the precomputed key. All scratch
// comes from a pool shared across keys, so one VerifyKey can verify
// concurrently and the call does not allocate.
func (k *VerifyKey) verify(msg, sig []byte) bool {
	s := getVerifyScratch()
	defer putVerifyScratch(s)
	p := k.p
	z := s.z[:p.L]
	hints := s.hints[:p.K]
	if !k.parseSignature(z, hints, sig) {
		return false
	}
	cTilde := sig[:32]
	sha3.ShakeSum256Into(s.mu[:], k.tr[:], msg)
	var c poly
	sampleInBallInto(&c, cTilde, p.Tau, &s.smp.ball)
	w1Packed := k.recomputeW1(s.w1Packed[:0], z, hints, &c)
	sha3.ShakeSum256Into(s.want[:], s.mu[:], w1Packed)
	return subtle.ConstantTimeCompare(cTilde, s.want[:]) == 1
}

// parseSignature unpacks z (with norm checks) and the hint vector into the
// caller-lent slices, reporting whether the signature is well-formed. On
// success z holds the response vector in the normal domain.
func (k *VerifyKey) parseSignature(z, hints []poly, sig []byte) bool {
	p := k.p
	if len(sig) != p.SignatureSize() {
		return false
	}
	zLen := N * int(p.Gamma1Bits) / 8
	g1 := p.Gamma1
	for i := range z {
		unpackBits(&z[i], sig[32+zLen*i:32+zLen*(i+1)], p.Gamma1Bits, func(t uint32) int32 {
			return freduce(g1 - int32(t) + Q)
		})
		if z[i].normExceeds(p.Gamma1 - p.Beta) {
			return false
		}
	}
	return p.unpackHintsInto(hints, sig[32+zLen*p.L:])
}

// recomputeW1 runs the verifier's lattice half: NTT z in place, compute
// each row of A·z − c·(t1·2^D), undo the hint, and append the packed w1
// to dst. The challenge c is consumed in the normal domain.
func (k *VerifyKey) recomputeW1(dst []byte, z, hints []poly, c *poly) []byte {
	p := k.p
	cHatMont := *c
	cHatMont.ntt()
	cHatMont.toMont()
	for i := range z {
		z[i].ntt()
	}
	for i := 0; i < p.K; i++ {
		var az poly
		polyDotMont(&az, k.aMont[i*p.L:(i+1)*p.L], z)
		// az - c * (t1 * 2^D), with NTT(t1 * 2^D) precomputed on the key.
		var ct1 poly
		polyMulMont(&ct1, &cHatMont, &k.t1ShiftHat[i])
		az.sub(&ct1)
		az.invNTT()
		var w1 poly
		for n := 0; n < N; n++ {
			w1[n] = useHint(hints[i][n], az[n], p.Gamma2)
		}
		dst = packBitsInto(dst, &w1, p.W1Bits, func(c int32) uint32 { return uint32(c) })
	}
	return dst
}

// ErrBadKey reports malformed key material.
var ErrBadKey = errors.New("mldsa: malformed key material")
