package mldsa

import (
	"crypto/aes"
	"crypto/cipher"
	"io"

	"pqtls/internal/crypto/sha3"
)

// expander abstracts the seed-expansion streams: SHAKE for the standard
// sets, AES-256-CTR for the *_aes sets. Hashing (tr, mu, c-tilde) is always
// SHAKE256, matching the reference dilithium-aes construction.
type expander interface {
	// Stream128 returns the wide stream used for matrix expansion.
	Stream128(seed []byte, nonce uint16) io.Reader
	// Stream256 returns the narrow stream used for secret/mask expansion.
	Stream256(seed []byte, nonce uint16) io.Reader
}

type shakeExpander struct{}

func shakeStream(newXOF func() sha3.XOF, seed []byte, nonce uint16) io.Reader {
	x := newXOF()
	x.Write(seed)
	var n [2]byte
	n[0], n[1] = byte(nonce), byte(nonce>>8)
	x.Write(n[:])
	return x
}

func (shakeExpander) Stream128(seed []byte, nonce uint16) io.Reader {
	return shakeStream(sha3.NewShake128, seed, nonce)
}

func (shakeExpander) Stream256(seed []byte, nonce uint16) io.Reader {
	return shakeStream(sha3.NewShake256, seed, nonce)
}

// putStream hands a finished expansion stream back to the sha3 state pool
// (a no-op for the AES-CTR streams of the *_aes variants).
func putStream(r io.Reader) { sha3.PutXOF(r) }

type aesExpander struct{}

func aesStream(seed []byte, nonce uint16) io.Reader {
	key := seed
	if len(key) > 32 {
		key = key[:32]
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		panic("mldsa: bad AES key: " + err.Error())
	}
	var iv [16]byte
	iv[0], iv[1] = byte(nonce), byte(nonce>>8)
	stream := cipher.NewCTR(block, iv[:])
	return streamReader{stream}
}

func (aesExpander) Stream128(seed []byte, nonce uint16) io.Reader { return aesStream(seed, nonce) }
func (aesExpander) Stream256(seed []byte, nonce uint16) io.Reader { return aesStream(seed, nonce) }

type streamReader struct{ s cipher.Stream }

func (r streamReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	r.s.XORKeyStream(p, p)
	return len(p), nil
}

// sampleUniform rejection-samples coefficients < Q from 23-bit candidates.
// The caller lends the block buffer (via sampleScratch) so the read through
// the io.Reader interface doesn't force a heap allocation.
func sampleUniform(p *poly, r io.Reader, buf *[168]byte) {
	i := 0
	for i < N {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			panic("mldsa: stream read: " + err.Error())
		}
		for j := 0; j+3 <= len(buf) && i < N; j += 3 {
			t := int32(buf[j]) | int32(buf[j+1])<<8 | int32(buf[j+2]&0x7F)<<16
			if t < Q {
				p[i] = t
				i++
			}
		}
	}
}

// sampleEta rejection-samples coefficients in [-eta, eta] from nibbles.
func sampleEta(p *poly, r io.Reader, eta int32, buf *[136]byte) {
	i := 0
	for i < N {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			panic("mldsa: stream read: " + err.Error())
		}
		for _, b := range buf {
			for _, t := range [2]int32{int32(b & 0x0F), int32(b >> 4)} {
				if i >= N {
					break
				}
				switch eta {
				case 2:
					if t < 15 {
						p[i] = freduce(2 - t%5 + Q)
						i++
					}
				case 4:
					if t < 9 {
						p[i] = freduce(4 - t + Q)
						i++
					}
				default:
					panic("mldsa: unsupported eta")
				}
			}
		}
	}
}

// sampleMask draws coefficients uniform in (-gamma1, gamma1] packed in
// gamma1Bits bits each. This runs once per mask coefficient vector inside
// the signing rejection loop, so the read buffer is lent by the caller
// (640 bytes covers the widest packing, gamma1Bits = 20) and the call
// must not allocate.
func sampleMask(p *poly, r io.Reader, gamma1 int32, gamma1Bits uint, buf *[N * 20 / 8]byte) {
	b := buf[:N*int(gamma1Bits)/8]
	if _, err := io.ReadFull(r, b); err != nil {
		panic("mldsa: stream read: " + err.Error())
	}
	unpackBits(p, b, gamma1Bits, func(t uint32) int32 {
		return freduce(gamma1 - int32(t) + Q)
	})
}

// sampleInBall derives the sparse ternary challenge polynomial from seed.
func sampleInBall(seed []byte, tau int) poly {
	var c poly
	s := getSampleScratch()
	sampleInBallInto(&c, seed, tau, &s.ball)
	putSampleScratch(s)
	return c
}

// sampleInBallInto is sampleInBall expanding the seed through a pooled
// SHAKE256 state, writing the challenge into c with all staging in the
// caller-lent buffer.
func sampleInBallInto(c *poly, seed []byte, tau int, buf *[16]byte) {
	x := sha3.NewShake256()
	x.Write(seed)
	sampleInBallStream(c, x, tau, buf)
	sha3.PutXOF(x)
}

// sampleInBallStream runs the in-ball rejection sampler against an
// already-positioned challenge stream — a single SHAKE256 over the seed,
// or one lane of a MultiXOF batch expanding many challenges at once. The
// consumed byte sequence (8 sign bytes, then one byte per rejection step)
// is identical either way, which is what pins the batch verifier's
// decisions to the sequential ones.
func sampleInBallStream(c *poly, r io.Reader, tau int, buf *[16]byte) {
	signBuf := buf[:8]
	if _, err := io.ReadFull(r, signBuf); err != nil {
		panic("mldsa: stream read: " + err.Error())
	}
	signs := uint64(0)
	for i, b := range signBuf {
		signs |= uint64(b) << (8 * i)
	}
	*c = poly{}
	b := buf[8:9]
	for i := N - tau; i < N; i++ {
		for {
			if _, err := io.ReadFull(r, b); err != nil {
				panic("mldsa: stream read: " + err.Error())
			}
			if int(b[0]) <= i {
				break
			}
		}
		j := int(b[0])
		c[i] = c[j]
		if signs&1 == 1 {
			c[j] = Q - 1
		} else {
			c[j] = 1
		}
		signs >>= 1
	}
}

// packBitsInto serializes f(coeff) (width bits each), appending to dst.
// Appending into a pre-sized buffer keeps the hot packing paths (w1 inside
// the signing loop, signature assembly) allocation-free.
func packBitsInto(dst []byte, p *poly, width uint, f func(int32) uint32) []byte {
	var acc uint64
	var bits uint
	for _, x := range p {
		acc |= uint64(f(x)&(1<<width-1)) << bits
		bits += width
		for bits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			bits -= 8
		}
	}
	return dst
}

// packBits serializes f(coeff) (width bits each) into a fresh byte slice.
func packBits(p *poly, width uint, f func(int32) uint32) []byte {
	return packBitsInto(make([]byte, 0, N*int(width)/8), p, width, f)
}

// unpackBits reads width-bit groups and stores f(group) as coefficients.
func unpackBits(p *poly, in []byte, width uint, f func(uint32) int32) {
	var acc uint64
	var bits uint
	j := 0
	for i := range p {
		for bits < width {
			acc |= uint64(in[j]) << bits
			bits += 8
			j++
		}
		p[i] = f(uint32(acc & (1<<width - 1)))
		acc >>= width
		bits -= width
	}
}
