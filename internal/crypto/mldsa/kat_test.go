package mldsa

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// Known-answer regression tests in the NIST KAT style: a deterministic DRBG
// seeds key generation, the (deterministic) signature over a fixed message
// is produced, and public key, private key and signature are pinned as
// SHA-256 digests. The vectors were generated from this implementation
// (round-3 Dilithium, which predates the final FIPS 204 tweaks, so official
// ML-DSA vectors do not apply); they lock the algorithm against unintended
// changes — any refactor that alters a single output byte fails here.

// katDRBG is SHA-256 in counter mode over a seed — the same construction as
// the mlkem KAT harness, standing in for the NIST randombytes().
type katDRBG struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newKATDRBG(seed string) *katDRBG {
	d := &katDRBG{}
	copy(d.seed[:], seed)
	return d
}

func (d *katDRBG) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		var block [40]byte
		copy(block[:32], d.seed[:])
		binary.BigEndian.PutUint64(block[32:], d.ctr)
		d.ctr++
		sum := sha256.Sum256(block[:])
		d.buf = append(d.buf, sum[:]...)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

func hexDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// mldsaKAT pins one (seed, msg -> pk, sk, sig) transcript.
type mldsaKAT struct {
	seed string
	msg  string
	pk   string // SHA-256(pk)
	sk   string // SHA-256(sk)
	sig  string // SHA-256(sig)
}

var dilithium3KATs = []mldsaKAT{
	{"kat-mldsa65-vector-0", "the quick brown fox jumps over the lazy dog",
		"ed4db659a4dc54e902c07e02a3f68131bc878c5c6a00c7b04bd43c4a914d5a12",
		"e57a5d91599472fd5913828041091f77fc22d8452f300aab57fbd778d7f93230",
		"ac5bead531f668ea1a359be22691e1f7b00e979c9bd8c63552b88fa279aa6d7b"},
	{"kat-mldsa65-vector-1", "",
		"f37f472aaff468d3dd3607d51dfaaef8806ee68f64c361a85a0fcc4ca3307391",
		"eeb540b31a89234712b9bff9e345b0f2a2fb60f143c95ef545e2576bbcc1da26",
		"b87432d4b20289b67545d70289c2d5c5324467ef5d59d137de72037d461577ff"},
	{"kat-mldsa65-vector-2", "post-quantum tls 1.3 handshake transcript",
		"56a9d3d60eb8b054c6b8fed465c9ef6e80c1b504987daba6006b7f948a6346ab",
		"f00484859305d3f673d991ca72833179fb521af2c9d3a41dbc211f6e2bcd832a",
		"70cc239415108c4d5e0e6a4057af99a748f1a41b797b9e0d58832e4758f4fa22"},
	{"kat-mldsa65-vector-3", "0123456789abcdef0123456789abcdef",
		"86e8d355ee16a6dfe581f0a80ba66bf808720649662641139d5a585df35e6c17",
		"daec0133717e2aca3c0cb46447c39e425bdd6f7577673abe7bbdec0b2f0e1786",
		"116a7c0bab0b14d4e3f43a07a5fbbb064d7ffce06afe75679bb0ad870b864bc4"},
}

// TestDilithium3KAT runs the pinned ML-DSA-65-style known-answer transcript:
// seeded keygen, deterministic signing of the fixed message, digest pinning,
// and verification of the produced signature.
func TestDilithium3KAT(t *testing.T) {
	t.Parallel()
	for i, kat := range dilithium3KATs {
		drbg := newKATDRBG(kat.seed)
		pk, sk, err := Dilithium3.GenerateKey(drbg)
		if err != nil {
			t.Fatalf("vector %d: keygen: %v", i, err)
		}
		sig, err := Dilithium3.Sign(sk, []byte(kat.msg))
		if err != nil {
			t.Fatalf("vector %d: sign: %v", i, err)
		}
		if !Dilithium3.Verify(pk, []byte(kat.msg), sig) {
			t.Errorf("vector %d: signature does not verify", i)
		}
		if got := hexDigest(pk); got != kat.pk {
			t.Errorf("vector %d: pk digest = %s, want %s", i, got, kat.pk)
		}
		if got := hexDigest(sk); got != kat.sk {
			t.Errorf("vector %d: sk digest = %s, want %s", i, got, kat.sk)
		}
		if got := hexDigest(sig); got != kat.sig {
			t.Errorf("vector %d: sig digest = %s, want %s", i, got, kat.sig)
		}
		if len(pk) != Dilithium3.PublicKeySize() || len(sig) != Dilithium3.SignatureSize() {
			t.Errorf("vector %d: sizes pk=%d sig=%d", i, len(pk), len(sig))
		}
	}
}

// TestDilithium3KATForgery locks the rejection side: flipping any single
// byte region of a pinned signature or message must fail verification.
func TestDilithium3KATForgery(t *testing.T) {
	t.Parallel()
	kat := dilithium3KATs[0]
	drbg := newKATDRBG(kat.seed)
	pk, sk, err := Dilithium3.GenerateKey(drbg)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := Dilithium3.Sign(sk, []byte(kat.msg))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, len(sig) / 2, len(sig) - 1} {
		bad := append([]byte{}, sig...)
		bad[pos] ^= 1
		if Dilithium3.Verify(pk, []byte(kat.msg), bad) {
			t.Errorf("signature with byte %d flipped verified", pos)
		}
	}
	if Dilithium3.Verify(pk, []byte(kat.msg+"x"), sig) {
		t.Error("signature verified over a different message")
	}
}
