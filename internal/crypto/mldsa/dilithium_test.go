package mldsa

import (
	"bytes"
	"testing"
	"testing/quick"
)

var allParams = []*Params{Dilithium2, Dilithium3, Dilithium5, Dilithium2AES, Dilithium3AES, Dilithium5AES}

func TestNTTRoundtrip(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		var p, orig poly
		s := seed
		for i := range p {
			s = s*6364136223846793005 + 1442695040888963407
			p[i] = int32(uint64(s) >> 33 % Q)
		}
		orig = p
		p.ntt()
		p.invNTT()
		return p == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNTTMulMatchesSchoolbook(t *testing.T) {
	t.Parallel()
	var a, b poly
	for i := range a {
		a[i] = int32((i*2654435761 + 17) % Q)
		b[i] = int32((i*40503 + 99) % Q)
	}
	var want poly
	for i := 0; i < N; i++ {
		for j := 0; j < N; j++ {
			prod := int64(a[i]) * int64(b[j]) % Q
			k := i + j
			if k >= N {
				k -= N
				prod = Q - prod
			}
			want[k] = int32((int64(want[k]) + prod) % Q)
		}
	}
	na, nb := a, b
	na.ntt()
	nb.ntt()
	var got poly
	mulAcc(&got, &na, &nb)
	got.invNTT()
	if got != want {
		t.Error("NTT product differs from schoolbook product")
	}
}

func TestSizes(t *testing.T) {
	t.Parallel()
	want := []struct {
		p           *Params
		pk, sk, sig int
	}{
		{Dilithium2, 1312, 2528, 2420},
		{Dilithium3, 1952, 4000, 3293},
		{Dilithium5, 2592, 4864, 4595},
		{Dilithium2AES, 1312, 2528, 2420},
	}
	for _, w := range want {
		if got := w.p.PublicKeySize(); got != w.pk {
			t.Errorf("%s: pk size %d, want %d", w.p.Name, got, w.pk)
		}
		if got := w.p.PrivateKeySize(); got != w.sk {
			t.Errorf("%s: sk size %d, want %d", w.p.Name, got, w.sk)
		}
		if got := w.p.SignatureSize(); got != w.sig {
			t.Errorf("%s: sig size %d, want %d", w.p.Name, got, w.sig)
		}
	}
}

func TestSignVerifyAll(t *testing.T) {
	t.Parallel()
	for _, p := range allParams {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			pk, sk, err := p.GenerateKey(nil)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("TLS 1.3, server CertificateVerify")
			sig, err := p.Sign(sk, msg)
			if err != nil {
				t.Fatal(err)
			}
			if len(sig) != p.SignatureSize() {
				t.Fatalf("sig size %d, want %d", len(sig), p.SignatureSize())
			}
			if !p.Verify(pk, msg, sig) {
				t.Fatal("valid signature rejected")
			}
			if p.Verify(pk, []byte("other message"), sig) {
				t.Error("signature verified for wrong message")
			}
		})
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	t.Parallel()
	p := Dilithium2
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("msg")
	sig, err := p.Sign(sk, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 31, 32, len(sig) / 2, len(sig) - 1} {
		bad := bytes.Clone(sig)
		bad[pos] ^= 0x40
		if p.Verify(pk, msg, bad) {
			t.Errorf("tampered signature (byte %d) accepted", pos)
		}
	}
}

func TestDeterministicSigning(t *testing.T) {
	t.Parallel()
	p := Dilithium2
	_, sk, err := p.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("determinism check")
	s1, _ := p.Sign(sk, msg)
	s2, _ := p.Sign(sk, msg)
	if !bytes.Equal(s1, s2) {
		t.Error("signing is not deterministic")
	}
}

func TestWrongKeyRejected(t *testing.T) {
	t.Parallel()
	p := Dilithium2
	pk1, _, _ := p.GenerateKey(nil)
	_, sk2, _ := p.GenerateKey(nil)
	msg := []byte("cross-key")
	sig, err := p.Sign(sk2, msg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Verify(pk1, msg, sig) {
		t.Error("signature verified under an unrelated public key")
	}
}

func TestMalformedInputs(t *testing.T) {
	t.Parallel()
	p := Dilithium2
	pk, sk, _ := p.GenerateKey(nil)
	if _, err := p.Sign(sk[:40], []byte("m")); err == nil {
		t.Error("short private key accepted")
	}
	if p.Verify(pk, []byte("m"), make([]byte, 10)) {
		t.Error("short signature accepted")
	}
	if p.Verify(pk[:16], []byte("m"), make([]byte, p.SignatureSize())) {
		t.Error("short public key accepted")
	}
	// An all-ones hint section has non-monotonic positions; must be rejected.
	sig, _ := p.Sign(sk, []byte("m"))
	for i := len(sig) - p.Omega - p.K; i < len(sig); i++ {
		sig[i] = 0xFF
	}
	if p.Verify(pk, []byte("m"), sig) {
		t.Error("garbage hint section accepted")
	}
}

func TestRoundingIdentities(t *testing.T) {
	t.Parallel()
	f := func(raw uint32) bool {
		r := int32(raw % Q)
		r1, r0 := power2Round(r)
		if freduce(r1<<D+r0+Q) != r {
			return false
		}
		if r0 <= -(1<<(D-1)) || r0 > 1<<(D-1) {
			return false
		}
		for _, gamma2 := range []int32{(Q - 1) / 88, (Q - 1) / 32} {
			h1, h0 := decompose(r, gamma2)
			if freduce(h1*2*gamma2+h0+2*Q) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: useHint(makeHint(z, r), r) equals highBits(r+z) for small z.
func TestQuickHintIdentity(t *testing.T) {
	t.Parallel()
	gamma2 := int32((Q - 1) / 88)
	f := func(rRaw uint32, zRaw int16) bool {
		r := int32(rRaw % Q)
		z := int32(zRaw) % gamma2
		zq := freduce(z + Q)
		h := makeHint(zq, r, gamma2)
		return useHint(h, r, gamma2) == highBits(freduce(r+zq), gamma2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestChallengeWeight(t *testing.T) {
	t.Parallel()
	for _, p := range []*Params{Dilithium2, Dilithium3, Dilithium5} {
		c := sampleInBall(bytes.Repeat([]byte{0x5a}, 32), p.Tau)
		weight := 0
		for _, x := range c {
			switch x {
			case 0:
			case 1, Q - 1:
				weight++
			default:
				t.Fatalf("%s: challenge coefficient %d out of {-1,0,1}", p.Name, x)
			}
		}
		if weight != p.Tau {
			t.Errorf("%s: challenge weight %d, want %d", p.Name, weight, p.Tau)
		}
	}
}

func benchSig(b *testing.B, p *Params) {
	pk, sk, err := p.GenerateKey(nil)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 64)
	b.Run("sign", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Sign(sk, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	sig, _ := p.Sign(sk, msg)
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !p.Verify(pk, msg, sig) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkDilithium2(b *testing.B) { benchSig(b, Dilithium2) }
func BenchmarkDilithium3(b *testing.B) { benchSig(b, Dilithium3) }
func BenchmarkDilithium5(b *testing.B) { benchSig(b, Dilithium5) }
