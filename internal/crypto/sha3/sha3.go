// Package sha3 implements the SHA-3 fixed-output hash functions and the
// SHAKE extendable-output functions (FIPS 202) from scratch.
//
// The Go standard library (as pinned by this module) does not ship SHA-3, and
// every lattice- and hash-based scheme in this repository (ML-KEM, Dilithium,
// SPHINCS+, the Falcon-shaped signature) is defined in terms of SHAKE, so the
// sponge lives here as a shared substrate.
package sha3

import (
	"math/bits"
	"sync"
)

// roundConstants are the 24 iota-step constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808A, 0x8000000080008000,
	0x000000000000808B, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008A, 0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
	0x000000008000808B, 0x800000000000008B, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800A, 0x800000008000000A,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotc[i] is the rho rotation of the lane consumed at step i of the chained
// rho-pi loop (the triangular numbers (i+1)(i+2)/2 mod 64).
var rotc = [24]int{
	1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14,
	27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
}

// piln[i] is the pi-step destination lane at step i of the chained loop.
var piln = [24]int{
	10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4,
	15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
}

// keccakF1600 is the readable reference permutation; the sponge uses the
// generated keccakF1600Unrolled (see keccakf_unrolled.go), and the test
// suite checks the two against each other.
func keccakF1600(a *[25]uint64) {
	var bc [5]uint64
	for round := 0; round < 24; round++ {
		// Theta.
		for x := 0; x < 5; x++ {
			bc[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d := bc[(x+4)%5] ^ bits.RotateLeft64(bc[(x+1)%5], 1)
			for y := 0; y < 25; y += 5 {
				a[y+x] ^= d
			}
		}
		// Rho and pi.
		t := a[1]
		for i := 0; i < 24; i++ {
			j := piln[i]
			bc[0] = a[j]
			a[j] = bits.RotateLeft64(t, rotc[i])
			t = bc[0]
		}
		// Chi.
		for y := 0; y < 25; y += 5 {
			for x := 0; x < 5; x++ {
				bc[x] = a[y+x]
			}
			for x := 0; x < 5; x++ {
				a[y+x] = bc[x] ^ (^bc[(x+1)%5] & bc[(x+2)%5])
			}
		}
		// Iota.
		a[0] ^= roundConstants[round]
	}
}

// state is a Keccak sponge with a fixed rate and domain-separation byte.
type state struct {
	a      [25]uint64
	buf    [200]byte // rate-sized staging area for absorb/squeeze
	n      int       // bytes currently buffered
	rate   int
	dsbyte byte
	// squeezing reports whether the sponge has been padded and switched to
	// output mode; further Write calls are a programming error.
	squeezing bool
}

// statePool recycles sponge states across calls. A state is ~420 bytes and
// every hash/XOF invocation in the lattice and hash-based schemes needs
// one, so the pool removes the dominant allocation of the Keccak paths
// (the rate/dsbyte fields are re-stamped on Get, making one pool safe for
// all SHA-3 and SHAKE variants).
var statePool = sync.Pool{New: func() any { return new(state) }}

func newState(rate int, dsbyte byte) *state {
	s := statePool.Get().(*state)
	s.rate, s.dsbyte = rate, dsbyte
	s.Reset()
	return s
}

// Write absorbs p into the sponge. It panics if called after reading output,
// mirroring the contract of the x/crypto implementation.
func (s *state) Write(p []byte) (int, error) {
	if s.squeezing {
		panic("sha3: Write after Read")
	}
	n := len(p)
	for len(p) > 0 {
		// Full-block fast path: absorb straight from p, skipping the
		// staging copy through buf.
		if s.n == 0 && len(p) >= s.rate {
			for i := 0; i < s.rate/8; i++ {
				s.a[i] ^= le64(p[8*i:])
			}
			keccakF1600Unrolled(&s.a)
			p = p[s.rate:]
			continue
		}
		c := copy(s.buf[s.n:s.rate], p)
		s.n += c
		p = p[c:]
		if s.n == s.rate {
			s.absorbBuf()
		}
	}
	return n, nil
}

func (s *state) absorbBuf() {
	for i := 0; i < s.rate/8; i++ {
		s.a[i] ^= le64(s.buf[8*i:])
	}
	keccakF1600Unrolled(&s.a)
	s.n = 0
}

func (s *state) pad() {
	for i := s.n; i < s.rate; i++ {
		s.buf[i] = 0
	}
	s.buf[s.n] ^= s.dsbyte
	s.buf[s.rate-1] ^= 0x80
	s.n = s.rate
	s.absorbBuf()
	s.squeezing = true
	s.fillOutput()
}

func (s *state) fillOutput() {
	for i := 0; i < s.rate/8; i++ {
		putLE64(s.buf[8*i:], s.a[i])
	}
	s.n = 0 // bytes of buf already consumed by Read
}

// Read squeezes len(p) bytes of output, padding the sponge on first use.
func (s *state) Read(p []byte) (int, error) {
	if !s.squeezing {
		s.pad()
	}
	n := len(p)
	for len(p) > 0 {
		if s.n == s.rate {
			keccakF1600Unrolled(&s.a)
			s.fillOutput()
		}
		c := copy(p, s.buf[s.n:s.rate])
		s.n += c
		p = p[c:]
	}
	return n, nil
}

// Reset returns the sponge to its initial empty state.
func (s *state) Reset() {
	s.a = [25]uint64{}
	s.n = 0
	s.squeezing = false
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// XOF is an extendable-output function: absorb with Write, squeeze with Read.
type XOF interface {
	Write(p []byte) (int, error)
	Read(p []byte) (int, error)
	Reset()
}

// NewShake128 returns a SHAKE128 XOF (rate 168, domain 0x1F). The state
// comes from an internal pool; hand it back with PutXOF when finished to
// make the next NewShake* call allocation-free.
func NewShake128() XOF { return newState(168, 0x1F) }

// NewShake256 returns a SHAKE256 XOF (rate 136, domain 0x1F). See
// NewShake128 for the pooling contract.
func NewShake256() XOF { return newState(136, 0x1F) }

// PutXOF returns an XOF obtained from NewShake128/NewShake256 to the state
// pool. It accepts any value so call sites that only hold an io.Reader can
// release their stream without a type switch; values of other types are
// ignored. The XOF must not be used after PutXOF.
func PutXOF(x any) {
	if s, ok := x.(*state); ok {
		statePool.Put(s)
	}
}

// sumInto absorbs the concatenation of data and squeezes len(dst) bytes,
// using a pooled state so the whole operation is allocation-free.
func sumInto(rate int, ds byte, dst []byte, data ...[]byte) {
	s := newState(rate, ds)
	for _, d := range data {
		s.Write(d)
	}
	s.Read(dst)
	statePool.Put(s)
}

// Sum256 computes SHA3-256 over the concatenation of data.
func Sum256(data ...[]byte) [32]byte {
	var out [32]byte
	sumInto(136, 0x06, out[:], data...)
	return out
}

// Sum512 computes SHA3-512 over the concatenation of data.
func Sum512(data ...[]byte) [64]byte {
	var out [64]byte
	sumInto(72, 0x06, out[:], data...)
	return out
}

// Sum256Into computes SHA3-256 over the concatenation of data into dst
// (32 bytes) without allocating.
func Sum256Into(dst []byte, data ...[]byte) { sumInto(136, 0x06, dst, data...) }

// Sum512Into computes SHA3-512 over the concatenation of data into dst
// (64 bytes) without allocating.
func Sum512Into(dst []byte, data ...[]byte) { sumInto(72, 0x06, dst, data...) }

// ShakeSum128Into squeezes len(dst) bytes of SHAKE128 over the
// concatenation of data into dst without allocating.
func ShakeSum128Into(dst []byte, data ...[]byte) { sumInto(168, 0x1F, dst, data...) }

// ShakeSum256Into squeezes len(dst) bytes of SHAKE256 over the
// concatenation of data into dst without allocating.
func ShakeSum256Into(dst []byte, data ...[]byte) { sumInto(136, 0x1F, dst, data...) }

// ShakeSum128 squeezes size bytes of SHAKE128 over the concatenation of data.
func ShakeSum128(size int, data ...[]byte) []byte {
	out := make([]byte, size)
	ShakeSum128Into(out, data...)
	return out
}

// ShakeSum256 squeezes size bytes of SHAKE256 over the concatenation of data.
func ShakeSum256(size int, data ...[]byte) []byte {
	out := make([]byte, size)
	ShakeSum256Into(out, data...)
	return out
}
