package sha3

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Known-answer tests for the empty input (FIPS 202 reference vectors).
func TestEmptyVectors(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		got  []byte
		want string
	}{
		{"SHA3-256", firstN(Sum256(nil)), "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"},
		{"SHA3-512", firstN(Sum512(nil)), "a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26"},
		{"SHAKE128", ShakeSum128(32, nil), "7f9c2ba4e88f827d616045507605853ed73b8093f6efbc88eb1a6eacfa66ef26"},
		{"SHAKE256", ShakeSum256(32, nil), "46b9dd2b0ba88d13233b3feb743eeb243fcd52ea62b81b82b50c27646ed5762f"},
	}
	for _, c := range cases {
		want, err := hex.DecodeString(c.want)
		if err != nil {
			t.Fatalf("%s: bad vector: %v", c.name, err)
		}
		if !bytes.Equal(c.got, want) {
			t.Errorf("%s(\"\") = %x, want %x", c.name, c.got, want)
		}
	}
}

func firstN[T [32]byte | [64]byte](a T) []byte {
	switch v := any(a).(type) {
	case [32]byte:
		return v[:]
	case [64]byte:
		return v[:]
	}
	panic("unreachable")
}

// SHA3-256 of "abc" (FIPS 202 example value).
func TestABC(t *testing.T) {
	t.Parallel()
	got := Sum256([]byte("abc"))
	want := "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("SHA3-256(abc) = %x, want %s", got, want)
	}
}

// Squeezing in many small reads must equal one large read.
func TestIncrementalSqueeze(t *testing.T) {
	t.Parallel()
	msg := []byte("the quick brown fox")
	one := ShakeSum128(500, msg)

	x := NewShake128()
	x.Write(msg)
	var parts []byte
	buf := make([]byte, 7)
	for len(parts) < 500 {
		n := min(7, 500-len(parts))
		x.Read(buf[:n])
		parts = append(parts, buf[:n]...)
	}
	if !bytes.Equal(one, parts) {
		t.Error("incremental squeeze differs from single squeeze")
	}
}

// Absorbing in many small writes must equal one large write.
func TestIncrementalAbsorb(t *testing.T) {
	t.Parallel()
	msg := bytes.Repeat([]byte{0xa3}, 1000)
	one := ShakeSum256(64, msg)

	x := NewShake256()
	for i := 0; i < len(msg); i += 13 {
		x.Write(msg[i:min(i+13, len(msg))])
	}
	two := make([]byte, 64)
	x.Read(two)
	if !bytes.Equal(one, two) {
		t.Error("incremental absorb differs from single absorb")
	}
}

func TestReset(t *testing.T) {
	t.Parallel()
	x := NewShake128()
	x.Write([]byte("state to discard"))
	out := make([]byte, 16)
	x.Read(out)
	x.Reset()
	x.Write(nil)
	x.Read(out)
	if !bytes.Equal(out, ShakeSum128(16, nil)) {
		t.Error("Reset did not restore the initial state")
	}
}

func TestWriteAfterReadPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on Write after Read")
		}
	}()
	x := NewShake128()
	x.Read(make([]byte, 1))
	x.Write([]byte{1})
}

// Property: splitting the input at any point never changes the digest.
func TestQuickSplitInvariance(t *testing.T) {
	t.Parallel()
	f := func(data []byte, split uint8) bool {
		i := int(split)
		if i > len(data) {
			i = len(data)
		}
		x := NewShake256()
		x.Write(data[:i])
		x.Write(data[i:])
		got := make([]byte, 32)
		x.Read(got)
		return bytes.Equal(got, ShakeSum256(32, data))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: different inputs produce different SHAKE streams (collision
// resistance smoke test over random small inputs).
func TestQuickNoTrivialCollisions(t *testing.T) {
	t.Parallel()
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return !bytes.Equal(ShakeSum128(16, a), ShakeSum128(16, b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkKeccakF1600(b *testing.B) {
	var a [25]uint64
	b.SetBytes(200)
	for i := 0; i < b.N; i++ {
		keccakF1600(&a)
	}
}

func BenchmarkShake128_1KiB(b *testing.B) {
	msg := make([]byte, 1024)
	out := make([]byte, 32)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		x := NewShake128()
		x.Write(msg)
		x.Read(out)
	}
}

// The unrolled permutation must agree with the reference loop on random
// states.
func TestUnrolledMatchesReference(t *testing.T) {
	t.Parallel()
	var a, b [25]uint64
	s := uint64(0x9E3779B97F4A7C15)
	for i := range a {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		a[i] = s
		b[i] = s
	}
	for round := 0; round < 10; round++ {
		keccakF1600(&a)
		keccakF1600Unrolled(&b)
		if a != b {
			t.Fatalf("unrolled diverges from reference after %d applications", round+1)
		}
	}
}

func BenchmarkKeccakF1600Unrolled(b *testing.B) {
	var a [25]uint64
	b.SetBytes(200)
	for i := 0; i < b.N; i++ {
		keccakF1600Unrolled(&a)
	}
}

// The one-shot helpers must not allocate in steady state: every PQ kernel
// leans on them inside its hot sampling and hashing loops.
func TestSumZeroAlloc(t *testing.T) {
	msg := make([]byte, 1024)
	var out32 [32]byte
	var out64 [64]byte
	xof := make([]byte, 64)
	// Warm the state pool.
	out32 = Sum256(msg)
	ShakeSum256Into(xof, msg)
	if n := testing.AllocsPerRun(100, func() { out32 = Sum256(msg) }); n != 0 {
		t.Errorf("Sum256 allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { out64 = Sum512(msg) }); n != 0 {
		t.Errorf("Sum512 allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { ShakeSum128Into(xof, msg) }); n != 0 {
		t.Errorf("ShakeSum128Into allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { ShakeSum256Into(xof, msg) }); n != 0 {
		t.Errorf("ShakeSum256Into allocates %v times per call, want 0", n)
	}
	_, _ = out32, out64
}
