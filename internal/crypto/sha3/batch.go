package sha3

import "sync"

// MultiXOF runs n independent Keccak sponges over n independent inputs as
// one batch. All inputs are absorbed and padded up front and the final
// permutations run in a single contiguous sweep over one flat lane array,
// so a batch of short messages (the matrix-expansion seeds of ML-KEM and
// Dilithium, the PRF inputs of batch keygen) pays one pooled allocation and
// one cache-resident pass instead of n pool round-trips through separate
// states. The per-message output is byte-identical to an individual SHAKE
// computation over the same input.
//
// A MultiXOF must not be used concurrently from multiple goroutines, but
// distinct streams may be squeezed in any order.
type MultiXOF struct {
	rate int
	ds   byte
	n    int
	a    []uint64 // 25 lanes per stream, states contiguous
	out  []byte   // rate bytes of squeeze staging per stream
	pos  []int    // consumed bytes of the current out block per stream
	// streams are preallocated io.Reader adapters so Stream(i) does not
	// allocate; they survive pool round-trips.
	streams []multiStream
}

// multiStream adapts one lane of a MultiXOF to io.Reader for the rejection
// samplers.
type multiStream struct {
	m *MultiXOF
	i int
}

func (s *multiStream) Read(p []byte) (int, error) {
	s.m.read(s.i, p)
	return len(p), nil
}

// multiPool recycles MultiXOF batches (lane array included) the way
// statePool recycles single sponges.
var multiPool = sync.Pool{New: func() any { return new(MultiXOF) }}

// NewMultiShake128 absorbs each input into its own SHAKE128 stream in one
// batched pass. Squeeze stream i with Stream(i); hand the batch back with
// PutMultiXOF to keep the next call allocation-free.
func NewMultiShake128(inputs [][]byte) *MultiXOF { return newMulti(168, 0x1F, inputs) }

// NewMultiShake256 is NewMultiShake128 with SHAKE256 parameters.
func NewMultiShake256(inputs [][]byte) *MultiXOF { return newMulti(136, 0x1F, inputs) }

// PutMultiXOF returns a batch obtained from NewMultiShake* to the pool. The
// batch and any Stream readers obtained from it must not be used afterwards.
func PutMultiXOF(m *MultiXOF) { multiPool.Put(m) }

func newMulti(rate int, ds byte, inputs [][]byte) *MultiXOF {
	m := multiPool.Get().(*MultiXOF)
	n := len(inputs)
	m.rate, m.ds, m.n = rate, ds, n
	if cap(m.a) < 25*n {
		m.a = make([]uint64, 25*n)
		m.out = make([]byte, rate*n)
		m.pos = make([]int, n)
		m.streams = make([]multiStream, n)
	}
	m.a = m.a[:25*n]
	for i := range m.a {
		m.a[i] = 0
	}
	if cap(m.out) < rate*n {
		m.out = make([]byte, rate*n)
	}
	m.out = m.out[:rate*n]
	m.pos = m.pos[:n]
	m.streams = m.streams[:n]

	// Absorb every input and xor in its padding. Inputs longer than one
	// block permute as they go (a later block depends on the earlier one);
	// the common short-seed case leaves all n final permutations to the
	// contiguous sweep below.
	for i, in := range inputs {
		st := m.state(i)
		for len(in) >= rate {
			for k := 0; k < rate/8; k++ {
				st[k] ^= le64(in[8*k:])
			}
			keccakF1600Unrolled(st)
			in = in[rate:]
		}
		var blk [200]byte
		copy(blk[:], in)
		blk[len(in)] ^= ds
		blk[rate-1] ^= 0x80
		for k := 0; k < rate/8; k++ {
			st[k] ^= le64(blk[8*k:])
		}
	}
	// One sweep of final permutations over the contiguous states, then
	// serialize the first output block of every stream.
	for i := 0; i < n; i++ {
		keccakF1600Unrolled(m.state(i))
	}
	for i := 0; i < n; i++ {
		m.fill(i)
	}
	for i := range m.pos {
		m.pos[i] = 0
		m.streams[i] = multiStream{m: m, i: i}
	}
	return m
}

// state returns stream i's 25 lanes as an array pointer for the permutation.
func (m *MultiXOF) state(i int) *[25]uint64 {
	return (*[25]uint64)(m.a[25*i : 25*i+25])
}

// fill serializes stream i's current state into its staging block.
func (m *MultiXOF) fill(i int) {
	st, out := m.state(i), m.out[m.rate*i:m.rate*(i+1)]
	for k := 0; k < m.rate/8; k++ {
		putLE64(out[8*k:], st[k])
	}
}

// read squeezes len(p) bytes from stream i.
func (m *MultiXOF) read(i int, p []byte) {
	out := m.out[m.rate*i : m.rate*(i+1)]
	for len(p) > 0 {
		if m.pos[i] == m.rate {
			keccakF1600Unrolled(m.state(i))
			m.fill(i)
			m.pos[i] = 0
		}
		c := copy(p, out[m.pos[i]:])
		m.pos[i] += c
		p = p[c:]
	}
}

// Stream returns an io.Reader squeezing stream i. The reader is owned by
// the batch: it must not outlive PutMultiXOF and costs no allocation.
func (m *MultiXOF) Stream(i int) *multiStream { return &m.streams[i] }

// batchSum squeezes len(dsts[i]) bytes of the (rate, ds) sponge over
// msgs[i] into dsts[i] for every i, sharing one batched absorb pass.
func batchSum(rate int, ds byte, dsts, msgs [][]byte) {
	if len(dsts) != len(msgs) {
		panic("sha3: batch length mismatch")
	}
	if len(msgs) == 0 {
		return
	}
	m := newMulti(rate, ds, msgs)
	for i, d := range dsts {
		m.read(i, d)
	}
	PutMultiXOF(m)
}

// Sum256Batch computes SHA3-256 of each msgs[i] into dsts[i] (32 bytes
// each) in one batched sponge pass.
func Sum256Batch(dsts, msgs [][]byte) { batchSum(136, 0x06, dsts, msgs) }

// Sum512Batch computes SHA3-512 of each msgs[i] into dsts[i] (64 bytes
// each) in one batched sponge pass.
func Sum512Batch(dsts, msgs [][]byte) { batchSum(72, 0x06, dsts, msgs) }

// ShakeSum128Batch squeezes len(dsts[i]) bytes of SHAKE128 over msgs[i]
// into dsts[i] in one batched sponge pass.
func ShakeSum128Batch(dsts, msgs [][]byte) { batchSum(168, 0x1F, dsts, msgs) }

// ShakeSum256Batch squeezes len(dsts[i]) bytes of SHAKE256 over msgs[i]
// into dsts[i] in one batched sponge pass.
func ShakeSum256Batch(dsts, msgs [][]byte) { batchSum(136, 0x1F, dsts, msgs) }
