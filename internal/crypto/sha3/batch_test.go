package sha3

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// TestMultiXOFMatchesSingle drives the batched sponge against the one-shot
// streams over thousands of random shapes: batch sizes 1..12, input lengths
// from empty through several blocks (crossing both SHAKE rates), squeezed
// in interleaved chunks. Every stream must be byte-identical to a solo
// sponge over the same input.
func TestMultiXOFMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(0x6a09e667))
	variants := []struct {
		name string
		mk   func([][]byte) *MultiXOF
		ref  func() XOF
	}{
		{"shake128", NewMultiShake128, NewShake128},
		{"shake256", NewMultiShake256, NewShake256},
	}
	for trial := 0; trial < 2500; trial++ {
		v := variants[trial%len(variants)]
		n := 1 + rng.Intn(12)
		inputs := make([][]byte, n)
		want := make([][]byte, n)
		outLen := 1 + rng.Intn(400)
		for i := range inputs {
			// Cover empty, sub-block, exact-block, and multi-block inputs.
			l := rng.Intn(3 * 170)
			if rng.Intn(8) == 0 {
				l = []int{0, 136, 168, 136 * 2, 168 * 2}[rng.Intn(5)]
			}
			inputs[i] = make([]byte, l)
			rng.Read(inputs[i])
			x := v.ref()
			x.Write(inputs[i])
			want[i] = make([]byte, outLen)
			x.Read(want[i])
			PutXOF(x)
		}
		m := v.mk(inputs)
		got := make([][]byte, n)
		for i := range got {
			got[i] = make([]byte, outLen)
		}
		// Squeeze the streams in interleaved chunks to exercise per-stream
		// refill positions.
		for off := 0; off < outLen; {
			c := 1 + rng.Intn(64)
			if off+c > outLen {
				c = outLen - off
			}
			for i := 0; i < n; i++ {
				if _, err := io.ReadFull(m.Stream(i), got[i][off:off+c]); err != nil {
					t.Fatal(err)
				}
			}
			off += c
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("trial %d %s: stream %d/%d (in %dB, out %dB) diverges from single sponge",
					trial, v.name, i, n, len(inputs[i]), outLen)
			}
		}
		PutMultiXOF(m)
	}
}

// TestBatchSumsMatchSingle checks the one-shot batch helpers against the
// established single-message functions.
func TestBatchSumsMatchSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(0xbb67ae85))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(10)
		msgs := make([][]byte, n)
		for i := range msgs {
			msgs[i] = make([]byte, rng.Intn(300))
			rng.Read(msgs[i])
		}
		dst := func(size int) [][]byte {
			out := make([][]byte, n)
			for i := range out {
				out[i] = make([]byte, size)
			}
			return out
		}

		d := dst(32)
		Sum256Batch(d, msgs)
		for i := range msgs {
			if want := Sum256(msgs[i]); !bytes.Equal(d[i], want[:]) {
				t.Fatalf("trial %d: Sum256Batch[%d] mismatch", trial, i)
			}
		}
		d = dst(64)
		Sum512Batch(d, msgs)
		for i := range msgs {
			if want := Sum512(msgs[i]); !bytes.Equal(d[i], want[:]) {
				t.Fatalf("trial %d: Sum512Batch[%d] mismatch", trial, i)
			}
		}
		outLen := 1 + rng.Intn(200)
		d = dst(outLen)
		ShakeSum128Batch(d, msgs)
		for i := range msgs {
			if want := ShakeSum128(outLen, msgs[i]); !bytes.Equal(d[i], want) {
				t.Fatalf("trial %d: ShakeSum128Batch[%d] mismatch", trial, i)
			}
		}
		d = dst(outLen)
		ShakeSum256Batch(d, msgs)
		for i := range msgs {
			if want := ShakeSum256(outLen, msgs[i]); !bytes.Equal(d[i], want) {
				t.Fatalf("trial %d: ShakeSum256Batch[%d] mismatch", trial, i)
			}
		}
	}
	// Degenerate shapes must not panic.
	Sum256Batch(nil, nil)
	ShakeSum128Batch([][]byte{}, [][]byte{})
}

func BenchmarkShake128Batch16x34(b *testing.B) {
	msgs := make([][]byte, 16)
	dsts := make([][]byte, 16)
	for i := range msgs {
		msgs[i] = make([]byte, 34)
		dsts[i] = make([]byte, 168)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ShakeSum128Batch(dsts, msgs)
	}
}
