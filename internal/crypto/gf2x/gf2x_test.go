package gf2x

import (
	"crypto/rand"
	"testing"
	"testing/quick"
)

// Small odd ring sizes plus the real HQC/BIKE sizes.
var testRings = []int{7, 64, 65, 127, 12323, 17669}

func TestRotateSmall(t *testing.T) {
	t.Parallel()
	// In the ring of size 7: x^3 * x^5 = x^8 = x.
	p := New(7)
	p.SetBit(3)
	q := New(7)
	p.RotateInto(q, 5)
	if q.Bit(1) != 1 || q.Weight() != 1 {
		t.Errorf("x^3 * x^5 mod x^7-1: got weight %d, bit1=%d", q.Weight(), q.Bit(1))
	}
}

func TestRotateIsBijective(t *testing.T) {
	t.Parallel()
	for _, r := range []int{7, 64, 65, 127} {
		p, err := Random(rand.Reader, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, r - 1, r / 2} {
			q := New(r)
			p.RotateInto(q, k)
			back := New(r)
			q.RotateInto(back, r-k)
			if !back.Equal(p) {
				t.Errorf("r=%d k=%d: rotate forward+back is not identity", r, k)
			}
			if q.Weight() != p.Weight() {
				t.Errorf("r=%d k=%d: rotation changed weight %d -> %d", r, k, p.Weight(), q.Weight())
			}
		}
	}
}

// Property: rotation agrees with the naive bit-by-bit rotation.
func TestQuickRotateMatchesNaive(t *testing.T) {
	t.Parallel()
	f := func(seed []byte, kRaw uint16) bool {
		r := 131
		p := FromBytes(seed, r)
		k := int(kRaw) % r
		got := New(r)
		p.RotateInto(got, k)
		want := New(r)
		for i := 0; i < r; i++ {
			if p.Bit(i) == 1 {
				want.FlipBit((i + k) % r)
			}
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundtrip(t *testing.T) {
	t.Parallel()
	for _, r := range testRings {
		p, err := Random(rand.Reader, r)
		if err != nil {
			t.Fatal(err)
		}
		q := FromBytes(p.Bytes(), r)
		if !q.Equal(p) {
			t.Errorf("r=%d: Bytes/FromBytes roundtrip failed", r)
		}
		if len(p.Bytes()) != (r+7)/8 {
			t.Errorf("r=%d: encoding is %d bytes, want %d", r, len(p.Bytes()), (r+7)/8)
		}
	}
}

func TestMulSparseDistributes(t *testing.T) {
	t.Parallel()
	r := 127
	p, _ := Random(rand.Reader, r)
	// p * (x^a + x^b) == rot(p,a) + rot(p,b)
	got := New(r)
	p.MulSparse(got, []int{3, 77})
	wa, wb := New(r), New(r)
	p.RotateInto(wa, 3)
	p.RotateInto(wb, 77)
	wa.Xor(wb)
	if !got.Equal(wa) {
		t.Error("sparse multiplication does not distribute over rotations")
	}
}

func TestInverseSmall(t *testing.T) {
	t.Parallel()
	// In GF(2)[x]/(x^7-1): invert x (inverse is x^6).
	p := New(7)
	p.SetBit(1)
	inv, ok := p.Inverse()
	if !ok {
		t.Fatal("x should be invertible mod x^7-1")
	}
	if inv.Bit(6) != 1 || inv.Weight() != 1 {
		t.Errorf("inverse of x: got weight %d", inv.Weight())
	}
}

func TestInverseRoundtrip(t *testing.T) {
	t.Parallel()
	// BIKE-style: random odd-weight polynomial in the real L1 ring size.
	r := 12323
	support, err := RandomSupport(rand.Reader, r, 71)
	if err != nil {
		t.Fatal(err)
	}
	h := New(r)
	for _, pos := range support {
		h.SetBit(pos)
	}
	inv, ok := h.Inverse()
	if !ok {
		t.Fatal("odd-weight polynomial should be invertible for BIKE's r")
	}
	// h * inv must be 1: multiply inv (dense) by h (sparse support).
	prod := New(r)
	inv.MulSparse(prod, support)
	if prod.Weight() != 1 || prod.Bit(0) != 1 {
		t.Errorf("h * h^-1 != 1 (weight %d)", prod.Weight())
	}
}

func TestNonInvertible(t *testing.T) {
	t.Parallel()
	// Even-weight polynomials are divisible by x+1, hence not invertible.
	p := New(127)
	p.SetBit(0)
	p.SetBit(5)
	if _, ok := p.Inverse(); ok {
		t.Error("even-weight polynomial reported invertible")
	}
	if _, ok := New(127).Inverse(); ok {
		t.Error("zero polynomial reported invertible")
	}
}

func TestRandomSupport(t *testing.T) {
	t.Parallel()
	sup, err := RandomSupport(rand.Reader, 12323, 134)
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 134 {
		t.Fatalf("got %d positions, want 134", len(sup))
	}
	seen := map[int]bool{}
	for _, pos := range sup {
		if pos < 0 || pos >= 12323 {
			t.Fatalf("position %d out of range", pos)
		}
		if seen[pos] {
			t.Fatalf("duplicate position %d", pos)
		}
		seen[pos] = true
	}
}

func BenchmarkInverse12323(b *testing.B) {
	r := 12323
	support, _ := RandomSupport(rand.Reader, r, 71)
	h := New(r)
	for _, pos := range support {
		h.SetBit(pos)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.Inverse(); !ok {
			b.Fatal("not invertible")
		}
	}
}

func BenchmarkMulSparse17669(b *testing.B) {
	r := 17669
	p, _ := Random(rand.Reader, r)
	support, _ := RandomSupport(rand.Reader, r, 66)
	dst := New(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MulSparse(dst, support)
	}
}
