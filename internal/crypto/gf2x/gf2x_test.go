package gf2x

import (
	"crypto/rand"
	"runtime/debug"
	"testing"
	"testing/quick"
)

// Small odd ring sizes plus the real HQC/BIKE sizes.
var testRings = []int{7, 64, 65, 127, 12323, 17669}

func TestRotateSmall(t *testing.T) {
	t.Parallel()
	// In the ring of size 7: x^3 * x^5 = x^8 = x.
	p := New(7)
	p.SetBit(3)
	q := New(7)
	p.RotateInto(q, 5)
	if q.Bit(1) != 1 || q.Weight() != 1 {
		t.Errorf("x^3 * x^5 mod x^7-1: got weight %d, bit1=%d", q.Weight(), q.Bit(1))
	}
}

func TestRotateIsBijective(t *testing.T) {
	t.Parallel()
	for _, r := range []int{7, 64, 65, 127} {
		p, err := Random(rand.Reader, r)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{0, 1, r - 1, r / 2} {
			q := New(r)
			p.RotateInto(q, k)
			back := New(r)
			q.RotateInto(back, r-k)
			if !back.Equal(p) {
				t.Errorf("r=%d k=%d: rotate forward+back is not identity", r, k)
			}
			if q.Weight() != p.Weight() {
				t.Errorf("r=%d k=%d: rotation changed weight %d -> %d", r, k, p.Weight(), q.Weight())
			}
		}
	}
}

// Property: rotation agrees with the naive bit-by-bit rotation.
func TestQuickRotateMatchesNaive(t *testing.T) {
	t.Parallel()
	f := func(seed []byte, kRaw uint16) bool {
		r := 131
		p := FromBytes(seed, r)
		k := int(kRaw) % r
		got := New(r)
		p.RotateInto(got, k)
		want := New(r)
		for i := 0; i < r; i++ {
			if p.Bit(i) == 1 {
				want.FlipBit((i + k) % r)
			}
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundtrip(t *testing.T) {
	t.Parallel()
	for _, r := range testRings {
		p, err := Random(rand.Reader, r)
		if err != nil {
			t.Fatal(err)
		}
		q := FromBytes(p.Bytes(), r)
		if !q.Equal(p) {
			t.Errorf("r=%d: Bytes/FromBytes roundtrip failed", r)
		}
		if len(p.Bytes()) != (r+7)/8 {
			t.Errorf("r=%d: encoding is %d bytes, want %d", r, len(p.Bytes()), (r+7)/8)
		}
	}
}

func TestMulSparseDistributes(t *testing.T) {
	t.Parallel()
	r := 127
	p, _ := Random(rand.Reader, r)
	// p * (x^a + x^b) == rot(p,a) + rot(p,b)
	got := New(r)
	p.MulSparse(got, []int{3, 77})
	wa, wb := New(r), New(r)
	p.RotateInto(wa, 3)
	p.RotateInto(wb, 77)
	wa.Xor(wb)
	if !got.Equal(wa) {
		t.Error("sparse multiplication does not distribute over rotations")
	}
}

func TestInverseSmall(t *testing.T) {
	t.Parallel()
	// In GF(2)[x]/(x^7-1): invert x (inverse is x^6).
	p := New(7)
	p.SetBit(1)
	inv, ok := p.Inverse()
	if !ok {
		t.Fatal("x should be invertible mod x^7-1")
	}
	if inv.Bit(6) != 1 || inv.Weight() != 1 {
		t.Errorf("inverse of x: got weight %d", inv.Weight())
	}
}

func TestInverseRoundtrip(t *testing.T) {
	t.Parallel()
	// BIKE-style: random odd-weight polynomial in the real L1 ring size.
	r := 12323
	support, err := RandomSupport(rand.Reader, r, 71)
	if err != nil {
		t.Fatal(err)
	}
	h := New(r)
	for _, pos := range support {
		h.SetBit(pos)
	}
	inv, ok := h.Inverse()
	if !ok {
		t.Fatal("odd-weight polynomial should be invertible for BIKE's r")
	}
	// h * inv must be 1: multiply inv (dense) by h (sparse support).
	prod := New(r)
	inv.MulSparse(prod, support)
	if prod.Weight() != 1 || prod.Bit(0) != 1 {
		t.Errorf("h * h^-1 != 1 (weight %d)", prod.Weight())
	}
}

func TestNonInvertible(t *testing.T) {
	t.Parallel()
	// Even-weight polynomials are divisible by x+1, hence not invertible.
	p := New(127)
	p.SetBit(0)
	p.SetBit(5)
	if _, ok := p.Inverse(); ok {
		t.Error("even-weight polynomial reported invertible")
	}
	if _, ok := New(127).Inverse(); ok {
		t.Error("zero polynomial reported invertible")
	}
}

func TestRandomSupport(t *testing.T) {
	t.Parallel()
	sup, err := RandomSupport(rand.Reader, 12323, 134)
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 134 {
		t.Fatalf("got %d positions, want 134", len(sup))
	}
	seen := map[int]bool{}
	for _, pos := range sup {
		if pos < 0 || pos >= 12323 {
			t.Fatalf("position %d out of range", pos)
		}
		if seen[pos] {
			t.Fatalf("duplicate position %d", pos)
		}
		seen[pos] = true
	}
}

// mulReference is the retired per-position rotate-fold-xor sparse
// multiplication, kept as the differential-test oracle for the fused
// accumulator in MulSparse and the dense Karatsuba path in Mul.
func mulReference(p *Poly, support []int) *Poly {
	dst := New(p.r)
	tmp := New(p.r)
	for _, pos := range support {
		p.RotateInto(tmp, pos%p.r)
		dst.Xor(tmp)
	}
	return dst
}

// drbg is a deterministic byte stream for reproducible differential trials.
type drbg struct{ s uint64 }

func (d *drbg) Read(p []byte) (int, error) {
	for i := range p {
		d.s = d.s*6364136223846793005 + 1442695040888963407
		p[i] = byte(d.s >> 56)
	}
	return len(p), nil
}

func (d *drbg) intn(n int) int {
	var b [4]byte
	d.Read(b[:])
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return int(v % uint32(n))
}

// TestMulDifferential cross-checks the three multiplication paths
// (MulSparse single-fold accumulator, dense Karatsuba Mul, and the
// bit-serial reference) on thousands of seeded random rings.
func TestMulDifferential(t *testing.T) {
	t.Parallel()
	trials := 10000
	if testing.Short() {
		trials = 1000
	}
	d := &drbg{s: 0x5eed}
	for trial := 0; trial < trials; trial++ {
		r := 65 + d.intn(512)
		p, err := Random(d, r)
		if err != nil {
			t.Fatal(err)
		}
		weight := 1 + d.intn(20)
		support := make([]int, 0, weight)
		seen := map[int]bool{}
		for len(support) < weight {
			pos := d.intn(r)
			if !seen[pos] {
				seen[pos] = true
				support = append(support, pos)
			}
		}
		want := mulReference(p, support)
		sparse := New(r)
		p.MulSparse(sparse, support)
		if !sparse.Equal(want) {
			t.Fatalf("trial %d (r=%d, w=%d): MulSparse differs from reference", trial, r, weight)
		}
		q := New(r)
		for _, pos := range support {
			q.SetBit(pos)
		}
		dense := New(r)
		p.Mul(dense, q)
		if !dense.Equal(want) {
			t.Fatalf("trial %d (r=%d, w=%d): dense Mul differs from reference", trial, r, weight)
		}
	}
}

// TestMulDifferentialRealRings runs the same cross-check at the actual
// BIKE-L1 and HQC-128 ring sizes, including dense*dense commutativity.
func TestMulDifferentialRealRings(t *testing.T) {
	t.Parallel()
	d := &drbg{s: 0xb1ce}
	for _, r := range []int{12323, 17669} {
		p, err := Random(d, r)
		if err != nil {
			t.Fatal(err)
		}
		support, err := RandomSupport(d, r, 71)
		if err != nil {
			t.Fatal(err)
		}
		want := mulReference(p, support)
		sparse := New(r)
		p.MulSparse(sparse, support)
		if !sparse.Equal(want) {
			t.Fatalf("r=%d: MulSparse differs from reference", r)
		}
		q := New(r)
		for _, pos := range support {
			q.SetBit(pos)
		}
		dense := New(r)
		p.Mul(dense, q)
		if !dense.Equal(want) {
			t.Fatalf("r=%d: dense Mul differs from reference", r)
		}
		// Commutativity of the dense path on two dense operands.
		u, _ := Random(d, r)
		ab, ba := New(r), New(r)
		p.Mul(ab, u)
		u.Mul(ba, p)
		if !ab.Equal(ba) {
			t.Fatalf("r=%d: dense Mul is not commutative", r)
		}
	}
}

// clmul64Reference is the textbook shift-and-xor carry-less multiply.
func clmul64Reference(x, y uint64) (hi, lo uint64) {
	for i := 0; i < 64; i++ {
		if y>>i&1 == 1 {
			lo ^= x << i
			if i > 0 {
				hi ^= x >> (64 - i)
			}
		}
	}
	return
}

func TestClmul64(t *testing.T) {
	t.Parallel()
	f := func(x, y uint64) bool {
		gh, gl := clmul64(x, y)
		wh, wl := clmul64Reference(x, y)
		return gh == wh && gl == wl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	// Edge cases the generator may miss.
	for _, c := range [][2]uint64{{0, 0}, {^uint64(0), ^uint64(0)}, {1, ^uint64(0)}, {1 << 63, 1 << 63}} {
		gh, gl := clmul64(c[0], c[1])
		wh, wl := clmul64Reference(c[0], c[1])
		if gh != wh || gl != wl {
			t.Errorf("clmul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", c[0], c[1], gh, gl, wh, wl)
		}
	}
}

func TestMulSparseNoAlloc(t *testing.T) {
	// The zero-alloc property relies on the sync.Pool'd scratch surviving
	// between runs; a GC landing mid-measurement (likely only under the
	// full -race suite's load) clears the pool and shows up as a spurious
	// allocation, so hold GC off while counting.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	r := 17669
	d := &drbg{s: 7}
	p, _ := Random(d, r)
	support, _ := RandomSupport(d, r, 66)
	dst := New(r)
	p.MulSparse(dst, support) // warm the pool
	if n := testing.AllocsPerRun(10, func() { p.MulSparse(dst, support) }); n != 0 {
		t.Errorf("MulSparse allocates %v times per call, want 0", n)
	}
	q := New(r)
	for _, pos := range support {
		q.SetBit(pos)
	}
	p.Mul(dst, q)
	if n := testing.AllocsPerRun(10, func() { p.Mul(dst, q) }); n != 0 {
		t.Errorf("Mul allocates %v times per call, want 0", n)
	}
}

func BenchmarkMulDense17669(b *testing.B) {
	r := 17669
	p, _ := Random(rand.Reader, r)
	q, _ := Random(rand.Reader, r)
	dst := New(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Mul(dst, q)
	}
}

func BenchmarkInverse12323(b *testing.B) {
	r := 12323
	support, _ := RandomSupport(rand.Reader, r, 71)
	h := New(r)
	for _, pos := range support {
		h.SetBit(pos)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := h.Inverse(); !ok {
			b.Fatal("not invertible")
		}
	}
}

func BenchmarkMulSparse17669(b *testing.B) {
	r := 17669
	p, _ := Random(rand.Reader, r)
	support, _ := RandomSupport(rand.Reader, r, 66)
	dst := New(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MulSparse(dst, support)
	}
}
