// Package gf2x implements dense and sparse polynomial arithmetic over
// GF(2)[x]/(x^r - 1), the quasi-cyclic rings underlying the code-based KEMs
// HQC and BIKE. Polynomials are bit vectors packed into uint64 words.
package gf2x

import (
	"io"
	"math/bits"
	"sync"
)

// Poly is a dense polynomial modulo x^r - 1. The unused high bits of the
// last word are always zero.
type Poly struct {
	w []uint64
	r int
}

// New returns the zero polynomial in the ring of size r.
func New(r int) *Poly {
	return &Poly{w: make([]uint64, (r+63)/64), r: r}
}

// R returns the ring size (number of coefficient bits).
func (p *Poly) R() int { return p.r }

// Clone returns a deep copy of p.
func (p *Poly) Clone() *Poly {
	q := New(p.r)
	copy(q.w, p.w)
	return q
}

// SetBit sets coefficient i to 1.
func (p *Poly) SetBit(i int) { p.w[i/64] |= 1 << (i % 64) }

// FlipBit toggles coefficient i.
func (p *Poly) FlipBit(i int) { p.w[i/64] ^= 1 << (i % 64) }

// Bit returns coefficient i.
func (p *Poly) Bit(i int) int { return int(p.w[i/64] >> (i % 64) & 1) }

// Xor adds q into p (GF(2) addition).
func (p *Poly) Xor(q *Poly) {
	for i, w := range q.w {
		p.w[i] ^= w
	}
}

// Weight returns the Hamming weight of p.
func (p *Poly) Weight() int {
	n := 0
	for _, w := range p.w {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsZero reports whether p is the zero polynomial.
func (p *Poly) IsZero() bool {
	for _, w := range p.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether p and q are identical.
func (p *Poly) Equal(q *Poly) bool {
	if p.r != q.r {
		return false
	}
	for i, w := range p.w {
		if w != q.w[i] {
			return false
		}
	}
	return true
}

// mask clears the unused bits above r in the last word.
func (p *Poly) mask() {
	if p.r%64 != 0 {
		p.w[len(p.w)-1] &= 1<<(p.r%64) - 1
	}
}

// RotateInto sets dst = p * x^k (cyclic left rotation of the coefficient
// vector by k positions). dst must not alias p.
func (p *Poly) RotateInto(dst *Poly, k int) {
	k %= p.r
	if k < 0 {
		k += p.r
	}
	wide := make([]uint64, (2*p.r+63)/64)
	p.rotateIntoScratch(dst, k, wide)
}

// rotateIntoScratch is RotateInto with a caller-provided scratch buffer of
// at least (2r+63)/64 words, allowing hot loops to avoid allocation.
func (p *Poly) rotateIntoScratch(dst *Poly, k int, wide []uint64) {
	for i := range wide {
		wide[i] = 0
	}
	// p has degree < r and k < r, so p * x^k fits in 2r bits; one fold of
	// the bits at positions [r, 2r) back to [0, r) completes the reduction
	// modulo x^r - 1.
	xorShifted(wide, p.w, k)
	for i := range dst.w {
		dst.w[i] = wide[i]
	}
	dst.mask()
	foldHigh(dst, wide, p.r)
}

// foldHigh XORs the bits of wide at positions [r, 2r) into dst at [0, r).
func foldHigh(dst *Poly, wide []uint64, r int) {
	wordShift, bitShift := r/64, uint(r%64)
	for i := 0; i < len(dst.w); i++ {
		var w uint64
		if i+wordShift < len(wide) {
			w = wide[i+wordShift] >> bitShift
		}
		if bitShift != 0 && i+wordShift+1 < len(wide) {
			w |= wide[i+wordShift+1] << (64 - bitShift)
		}
		dst.w[i] ^= w
	}
	dst.mask()
}

// wideScratch pools the double-width accumulators used by MulSparse and
// Mul so the hot decode/encode loops of BIKE and HQC run allocation-free.
var wideScratch = sync.Pool{New: func() any { return new([]uint64) }}

// getWide returns a zeroed pooled buffer of at least words words.
func getWide(words int) *[]uint64 {
	wp := wideScratch.Get().(*[]uint64)
	if cap(*wp) < words {
		*wp = make([]uint64, words)
	}
	*wp = (*wp)[:words]
	for i := range *wp {
		(*wp)[i] = 0
	}
	return wp
}

// MulSparse sets dst = p * q where q is given by its support positions.
// dst must not alias p.
//
// All rotations accumulate into one double-width buffer and the reduction
// modulo x^r - 1 happens once at the end, instead of the
// rotate-fold-xor round trip per support position the bit-serial version
// paid. For a weight-w multiplier this cuts the word traffic from ~6w·r
// bits to ~w·r + 2r.
func (p *Poly) MulSparse(dst *Poly, support []int) {
	wp := getWide((2*p.r + 63) / 64)
	wide := *wp
	for _, pos := range support {
		k := pos % p.r
		if k < 0 {
			k += p.r
		}
		xorShifted(wide, p.w, k)
	}
	copy(dst.w, wide)
	dst.mask()
	foldHigh(dst, wide, p.r)
	wideScratch.Put(wp)
}

// clmul32 returns the 64-bit carry-less product of two 32-bit words using
// the masked-integer-multiply trick: bits are spread into four groups with
// 4-bit holes, so every column of the plain integer products sums at most
// 8 contributions and no carry crosses a group boundary. XOR of the four
// group products then recovers the GF(2) polynomial product exactly.
func clmul32(x, y uint32) uint64 {
	const m = 0x11111111
	x0 := uint64(x & m)
	x1 := uint64(x & (m << 1))
	x2 := uint64(x & (m << 2))
	x3 := uint64(x & (m << 3))
	y0 := uint64(y & m)
	y1 := uint64(y & (m << 1))
	y2 := uint64(y & (m << 2))
	y3 := uint64(y & (m << 3))
	z0 := x0*y0 ^ x1*y3 ^ x2*y2 ^ x3*y1
	z1 := x0*y1 ^ x1*y0 ^ x2*y3 ^ x3*y2
	z2 := x0*y2 ^ x1*y1 ^ x2*y0 ^ x3*y3
	z3 := x0*y3 ^ x1*y2 ^ x2*y1 ^ x3*y0
	const mm = 0x1111111111111111
	return z0&mm ^ z1&(mm<<1) ^ z2&(mm<<2) ^ z3&(mm<<3)
}

// clmul64 returns the 128-bit carry-less product of two 64-bit words as a
// one-level Karatsuba over clmul32 halves (3 half-width multiplies).
func clmul64(x, y uint64) (hi, lo uint64) {
	xl, xh := uint32(x), uint32(x>>32)
	yl, yh := uint32(y), uint32(y>>32)
	ll := clmul32(xl, yl)
	hh := clmul32(xh, yh)
	mid := clmul32(xl^xh, yl^yh) ^ ll ^ hh
	return hh ^ mid>>32, ll ^ mid<<32
}

// karatsubaThreshold is the operand size (in words) at or below which the
// word-level schoolbook product is used directly.
const karatsubaThreshold = 8

// mulSchoolbook XORs the full 2n-word product of a and b into dst, which
// must hold len(a)+len(b) words and be pre-zeroed.
func mulSchoolbook(dst, a, b []uint64) {
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			hi, lo := clmul64(ai, bj)
			dst[i+j] ^= lo
			dst[i+j+1] ^= hi
		}
	}
}

// mulKaratsuba writes the 2n-word carry-less product of the n-word
// operands a and b into dst (fully overwritten). tmp must hold at least
// 4n words of scratch. Operand sizes are padded to a power of two by the
// caller, so the recursion always splits evenly.
func mulKaratsuba(dst, a, b, tmp []uint64) {
	n := len(a)
	if n <= karatsubaThreshold || n%2 != 0 {
		for i := range dst[:2*n] {
			dst[i] = 0
		}
		mulSchoolbook(dst[:2*n], a, b)
		return
	}
	h := n / 2
	sa, sb := tmp[:h], tmp[h:n]
	mid := tmp[n : 2*n]
	rec := tmp[2*n:]
	mulKaratsuba(dst[:n], a[:h], b[:h], rec) // z0 = a0·b0
	mulKaratsuba(dst[n:], a[h:], b[h:], rec) // z2 = a1·b1
	for i := 0; i < h; i++ {
		sa[i] = a[i] ^ a[h+i]
		sb[i] = b[i] ^ b[h+i]
	}
	mulKaratsuba(mid, sa, sb, rec) // (a0^a1)·(b0^b1)
	for i := 0; i < n; i++ {
		mid[i] ^= dst[i] ^ dst[n+i] // z1 = mid ^ z0 ^ z2
	}
	for i := 0; i < n; i++ {
		dst[h+i] ^= mid[i]
	}
}

// Mul sets dst = p * q mod (x^r - 1) for dense q, via word-level Karatsuba
// over software carry-less multiplies. Operands are padded to a power of
// two of words so the recursion splits evenly; scratch comes from the
// shared pool, so steady-state calls do not allocate. dst must alias
// neither p nor q.
func (p *Poly) Mul(dst *Poly, q *Poly) {
	if p.r != q.r || dst.r != p.r {
		panic("gf2x: mismatched ring sizes in Mul")
	}
	m := karatsubaThreshold
	for m < len(p.w) {
		m <<= 1
	}
	wp := getWide(8 * m)
	buf := *wp
	a, b := buf[:m], buf[m:2*m]
	wide := buf[2*m : 4*m]
	tmp := buf[4*m:]
	copy(a, p.w)
	copy(b, q.w)
	mulKaratsuba(wide, a, b, tmp)
	copy(dst.w, wide)
	dst.mask()
	foldHigh(dst, wide, p.r)
	wideScratch.Put(wp)
}

// Bytes serializes p little-endian (bit i of the ring is bit i%8 of byte
// i/8), producing ceil(r/8) bytes.
func (p *Poly) Bytes() []byte {
	out := make([]byte, (p.r+7)/8)
	for i := range out {
		out[i] = byte(p.w[i/8] >> (8 * (i % 8)))
	}
	return out
}

// FromBytes deserializes the encoding produced by Bytes. Extra bits beyond
// r are cleared.
func FromBytes(data []byte, r int) *Poly {
	p := New(r)
	for i, b := range data {
		if i/8 >= len(p.w) {
			break
		}
		p.w[i/8] |= uint64(b) << (8 * (i % 8))
	}
	p.mask()
	return p
}

// Random fills p with uniform bits from rng.
func Random(rng io.Reader, r int) (*Poly, error) {
	buf := make([]byte, (r+7)/8)
	if _, err := io.ReadFull(rng, buf); err != nil {
		return nil, err
	}
	return FromBytes(buf, r), nil
}

// RandomSupport samples weight distinct positions in [0, r) from the random
// stream (rejection sampling on 32-bit values), returning a sorted-free list.
func RandomSupport(rng io.Reader, r, weight int) ([]int, error) {
	seen := make(map[int]bool, weight)
	out := make([]int, 0, weight)
	var buf [4]byte
	// Rejection bound: accept only below the largest multiple of r so that
	// the reduced value is uniform.
	limit := uint32(1<<32 - uint64(1<<32)%uint64(r))
	for len(out) < weight {
		if _, err := io.ReadFull(rng, buf[:]); err != nil {
			return nil, err
		}
		v := uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
		if limit != 0 && v >= limit {
			continue
		}
		pos := int(v % uint32(r))
		if !seen[pos] {
			seen[pos] = true
			out = append(out, pos)
		}
	}
	return out, nil
}

// degree returns the degree of the polynomial stored in w (-1 for zero).
func degree(w []uint64) int {
	for i := len(w) - 1; i >= 0; i-- {
		if w[i] != 0 {
			return 64*i + 63 - bits.LeadingZeros64(w[i])
		}
	}
	return -1
}

// xorShifted computes dst ^= src << k for word slices.
func xorShifted(dst, src []uint64, k int) {
	wordShift, bitShift := k/64, uint(k%64)
	for i := len(src) - 1; i >= 0; i-- {
		if src[i] == 0 {
			continue
		}
		lo := i + wordShift
		if lo < len(dst) {
			dst[lo] ^= src[i] << bitShift
		}
		if bitShift != 0 && lo+1 < len(dst) {
			dst[lo+1] ^= src[i] >> (64 - bitShift)
		}
	}
}

// Inverse computes p^-1 mod (x^r - 1) using the extended Euclidean
// algorithm over GF(2)[x]. It returns ok=false when p is not invertible
// (gcd(p, x^r-1) != 1).
func (p *Poly) Inverse() (*Poly, bool) {
	r := p.r
	words := (r + 1 + 63) / 64 // room for x^r itself

	u := make([]uint64, words)
	copy(u, p.w)
	v := make([]uint64, words)
	v[r/64] |= 1 << (r % 64) // x^r
	v[0] |= 1                // + 1  (x^r - 1 == x^r + 1 over GF(2))

	g1 := make([]uint64, words)
	g1[0] = 1
	g2 := make([]uint64, words)

	du, dv := degree(u), degree(v)
	if du < 0 {
		return nil, false
	}
	for du > 0 {
		if du < dv {
			u, v = v, u
			g1, g2 = g2, g1
			du, dv = dv, du
		}
		shift := du - dv
		xorShifted(u, v, shift)
		xorShifted(g1, g2, shift)
		du = degree(u)
		if du < 0 {
			return nil, false // gcd has degree > 0
		}
	}
	// u is the unit 1, so g1 is the inverse; reduce g1 mod x^r - 1 (its
	// degree is already < r by construction, but the top word may carry).
	inv := New(r)
	copy(inv.w, g1[:len(inv.w)])
	if deg := degree(g1); deg >= r {
		// Fold any overflow bits back (x^r == 1).
		for i := r; i <= deg; i++ {
			if g1[i/64]>>(i%64)&1 == 1 {
				inv.FlipBit(i - r)
			}
		}
	}
	inv.mask()
	return inv, true
}
