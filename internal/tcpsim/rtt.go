package tcpsim

import "time"

// RFC 6298 round-trip-time estimation: SRTT and RTTVAR updated per sample,
// RTO = SRTT + 4*RTTVAR bounded below by the configured minimum. The TCP
// handshake seeds the estimator (Connect measures the SYN and SYN-ACK round
// trips), so the first data RTO already reflects the path instead of the
// 1-second pre-sample default.

const (
	// initialRTO applies before any RTT sample exists (RFC 6298 §2).
	initialRTO = time.Second
	// maxRTO caps exponential backoff (RFC 6298 §2.5 allows >= 60 s).
	maxRTO = 60 * time.Second
)

// rttEstimator tracks the smoothed RTT state of one sender.
type rttEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	valid  bool
}

// sample folds one round-trip measurement in (RFC 6298 §2.2-2.3). Callers
// must respect Karn's algorithm: never sample a retransmitted segment.
func (e *rttEstimator) sample(r time.Duration) {
	if r < 0 {
		return
	}
	if !e.valid {
		e.srtt = r
		e.rttvar = r / 2
		e.valid = true
		return
	}
	diff := e.srtt - r
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (3*e.rttvar + diff) / 4
	e.srtt = (7*e.srtt + r) / 8
}

// rto derives the retransmission timeout, folding the clock granularity G
// into the lower bound (min stands in for max(G, 4*RTTVAR) flooring).
func (e *rttEstimator) rto(min time.Duration) time.Duration {
	if !e.valid {
		if initialRTO < min {
			return min
		}
		return initialRTO
	}
	rto := e.srtt + 4*e.rttvar
	if rto < min {
		rto = min
	}
	if rto > maxRTO {
		rto = maxRTO
	}
	return rto
}
