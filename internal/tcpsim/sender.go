package tcpsim

import (
	"math"
	"time"

	"pqtls/internal/netsim"
)

// The event-driven transfer engine. One transfer moves one flight of
// payload through the link: segments are transmitted whenever the
// congestion window opens, and three event kinds advance virtual time in
// strict order — segment arrivals at the receiver, (lossless, one-way-delay
// delayed) accounting ACKs back at the sender, and the retransmission
// timer. Congestion state (cwnd, ssthresh, RTT estimate) lives on the
// sender and persists across flights; per-flight bookkeeping lives here.

// maxRetries bounds per-segment retransmissions like Linux tcp_retries2;
// the final attempt counts as delivered (see the package comment).
const maxRetries = 15

// dupThresh is the fast-retransmit duplicate-ACK threshold (RFC 5681).
const dupThresh = 3

// lossWindow is the post-RTO congestion window. RFC 5681 specifies 1
// segment; we floor at 2 (as ssthresh already is) so one timeout never
// serializes the tail — see the package comment.
const lossWindow = 2

type evKind int

const (
	evArrive  evKind = iota // val: segment index arriving at the receiver
	evAck                   // val: cumulative in-order segment count at the sender
	evTimer                 // val: timer generation
	evPrevAck               // val: window credits returning from a previous transfer
)

// credit is window headroom returning to the sender at a known time:
// segments of an earlier flush whose ACKs were still in flight when that
// flush finished delivering.
type credit struct {
	at time.Duration
	n  int
}

type event struct {
	at   time.Duration
	id   int // insertion order, tiebreak for deterministic processing
	kind evKind
	val  int
}

// eventQueue is a binary min-heap ordered by (at, id).
type eventQueue struct {
	h      []event
	nextID int
}

func (q *eventQueue) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].id < q.h[j].id
}

func (q *eventQueue) push(ev event) {
	ev.id = q.nextID
	q.nextID++
	q.h = append(q.h, ev)
	for i := len(q.h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *eventQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.h) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.h) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
	return top, true
}

// testHook, when non-nil, observes every state transition of every transfer
// (set only by invariant tests; nil in production).
var testHook func(x *transfer, point string)

// transfer is the per-flight state machine.
type transfer struct {
	c *Conn
	s *sender

	owd      time.Duration
	ackEvery int

	// Segmented payload: seqStart[i] is segment i's first wire sequence
	// number, with a sentinel end entry at seqStart[n].
	segs     [][]byte
	seqStart []uint32
	attempts []int
	sentAt   []time.Duration // last transmission offer time per segment
	retx     []bool          // ever retransmitted (Karn's algorithm)

	// Sender variables, in segment indices.
	sndUna, sndNxt int
	prevOut        int // carried-over segments still counted against cwnd
	dupAcks        int
	inRecovery     bool
	recoverIdx     int // recovery ends when cumAck reaches this index

	// Retransmission timer (RFC 6298 §5).
	rto        time.Duration
	timerGen   int
	timerArmed bool

	// Receiver reassembly.
	got     []bool
	rcvNext int
	ackSeq  uint32 // reverse-direction sequence number stamped on wire ACKs

	events eventQueue
	now    time.Duration

	delivered   bool
	deliveredAt time.Duration // last byte available in order at the receiver
	lastTx      time.Duration
}

func newTransfer(c *Conn, s *sender, now time.Duration, payload []byte) *transfer {
	mss := c.link.MSS()
	x := &transfer{
		c:        c,
		s:        s,
		owd:      c.link.Config().RTT / 2,
		ackEvery: 2,
		now:      now,
		lastTx:   now,
		ackSeq:   c.send[s.reverse].nextSeq,
		rto:      s.est.rto(c.opts.MinRTO),
	}
	// Fast links (>= 1 Gbit/s) GRO-coalesce back-to-back bursts at the
	// receiving NIC, so one wire ACK covers a whole aggregate (~64 kB), as
	// on the paper's 10 Gbit/s testbed.
	if rate := c.link.Config().Rate; rate == 0 || rate >= 1_000_000_000 {
		x.ackEvery = 22
	}
	for off := 0; off < len(payload); off += mss {
		end := min(off+mss, len(payload))
		x.segs = append(x.segs, payload[off:end])
		x.seqStart = append(x.seqStart, s.nextSeq)
		s.nextSeq += uint32(end - off)
	}
	x.seqStart = append(x.seqStart, s.nextSeq)
	n := len(x.segs)
	x.attempts = make([]int, n)
	x.sentAt = make([]time.Duration, n)
	x.retx = make([]bool, n)
	x.got = make([]bool, n)
	for _, cr := range s.carried {
		x.prevOut += cr.n
		x.events.push(event{at: cr.at, kind: evPrevAck, val: cr.n})
	}
	s.carried = nil
	return x
}

// run drives the event loop until every segment has been delivered in
// order, then returns the delivery time of the last byte. ACKs still in
// flight at that point are not consumed here — crediting them now would let
// a flush queued moments later (before those ACKs could causally have
// returned) start with a fully open, already-grown window. Instead their
// return times are parked on the sender as carried credits, and the next
// transfer counts them against its window until they drain.
func (x *transfer) run() time.Duration {
	x.trySend()
	for !x.delivered {
		ev, ok := x.events.pop()
		if !ok {
			// Unreachable: outstanding data always has an armed timer.
			break
		}
		if ev.kind == evTimer && (!x.timerArmed || ev.val != x.timerGen) {
			continue // cancelled timer; do not let it advance the clock
		}
		if ev.at > x.now {
			x.now = ev.at
		}
		switch ev.kind {
		case evArrive:
			x.onArrive(ev.val)
		case evAck:
			x.onAck(ev.val)
		case evTimer:
			x.onTimer()
		case evPrevAck:
			x.onPrevAck(ev.val)
		}
		x.trySend()
	}
	// Park the unreturned window credits: cumulative ACKs advancing past
	// sndUna, plus any still-undrained carried credits. Popping keeps them
	// in chronological order. Stale timers and duplicate arrivals (which
	// return no credit) are discarded with the queue.
	vUna := x.sndUna
	for {
		ev, ok := x.events.pop()
		if !ok {
			break
		}
		switch ev.kind {
		case evAck:
			if ev.val > vUna {
				x.s.carried = append(x.s.carried, credit{at: ev.at, n: ev.val - vUna})
				vUna = ev.val
			}
		case evPrevAck:
			x.s.carried = append(x.s.carried, credit{at: ev.at, n: ev.val})
		}
	}
	x.events.h = nil
	x.s.clock = x.lastTx
	if testHook != nil {
		testHook(x, "done")
	}
	return x.deliveredAt
}

// onPrevAck returns window credits from a previous transfer's tail ACKs and
// applies the same ACK-clocked growth those ACKs would have produced.
func (x *transfer) onPrevAck(n int) {
	s := x.s
	x.prevOut -= n
	if !x.inRecovery {
		if s.cwnd < s.ssthresh {
			s.cwnd += float64(n)
		} else {
			s.cwnd += float64(n) / s.cwnd
		}
	}
	if testHook != nil {
		testHook(x, "prevack")
	}
}

// cwndSegs is the whole-segment congestion window used for gating.
func (x *transfer) cwndSegs() int {
	w := x.s.cwnd
	if math.IsInf(w, 1) || w >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(w)
}

// inflight is the RFC 5681 FlightSize in segments, including carried-over
// segments from a previous flush whose ACKs have not returned yet.
func (x *transfer) inflight() int { return x.prevOut + x.sndNxt - x.sndUna }

// trySend transmits new segments while the window allows.
func (x *transfer) trySend() {
	for x.sndNxt < len(x.segs) && x.inflight() < x.cwndSegs() {
		x.transmit(x.sndNxt)
		x.sndNxt++
	}
	if testHook != nil {
		testHook(x, "send")
	}
}

// transmit puts segment idx on the wire at the current virtual time. Used
// for both first transmissions and retransmissions; the bounded-retry
// safeguard forces delivery of the final attempt.
func (x *transfer) transmit(idx int) {
	x.attempts[idx]++
	if x.attempts[idx] > 1 {
		x.retx[idx] = true
	}
	x.sentAt[idx] = x.now
	x.lastTx = x.now
	tx := x.c.link.Transmit(x.s.dir, x.now, netsim.BuildFrame(netsim.FrameSpec{
		Dir: x.s.dir, Seq: x.seqStart[idx], Ack: x.ackSeq,
		Flags: netsim.FlagACK | netsim.FlagPSH, Payload: x.segs[idx],
	}))
	forced := x.attempts[idx] > maxRetries
	if !tx.Dropped || forced {
		x.events.push(event{at: tx.ArriveAt, kind: evArrive, val: idx})
	}
	if !x.timerArmed {
		x.armTimer()
	}
}

// armTimer (re)starts the retransmission timer at now + RTO.
func (x *transfer) armTimer() {
	x.timerGen++
	x.timerArmed = true
	x.events.push(event{at: x.now + x.rto, kind: evTimer, val: x.timerGen})
}

// onArrive processes segment idx reaching the receiver: reassembly, the
// accounting ACK (lossless, returns one one-way delay later), and the wire
// ACK under the delayed-ACK/GRO cadence.
func (x *transfer) onArrive(idx int) {
	inOrder := false
	if !x.got[idx] {
		x.got[idx] = true
		if idx == x.rcvNext {
			inOrder = true
			for x.rcvNext < len(x.got) && x.got[x.rcvNext] {
				x.rcvNext++
			}
			if x.rcvNext == len(x.got) && !x.delivered {
				x.delivered = true
				x.deliveredAt = x.now
			}
		}
	}
	// Window-accounting ACK, modeled lossless (see package comment).
	x.events.push(event{at: x.now + x.owd, kind: evAck, val: x.rcvNext})
	x.wireAck(inOrder)
	if testHook != nil {
		testHook(x, "arrive")
	}
}

// wireAck emits pcap-visible ACK frames: delayed-ACK cadence for in-order
// arrivals, immediately for out-of-order ones (duplicate ACKs are never
// delayed, RFC 5681 §4.2), and once more when the transfer completes.
func (x *transfer) wireAck(inOrder bool) {
	emit := true
	if inOrder {
		x.s.ackCounter++
		emit = x.s.ackCounter%x.ackEvery == 0 || x.rcvNext == len(x.segs)
	}
	if !emit {
		return
	}
	x.c.link.Transmit(x.s.reverse, x.now, netsim.BuildFrame(netsim.FrameSpec{
		Dir: x.s.reverse, Seq: x.ackSeq, Ack: x.seqStart[x.rcvNext],
		Flags: netsim.FlagACK,
	}))
}

// onAck processes a cumulative ACK at the sender: window growth (slow start
// vs congestion avoidance), fast retransmit entry, NewReno recovery
// bookkeeping, RTT sampling, and timer management.
func (x *transfer) onAck(cum int) {
	s := x.s
	defer func() {
		if testHook != nil {
			testHook(x, "ack")
		}
	}()
	if cum > x.sndUna {
		newly := cum - x.sndUna
		// RTT sample from the highest newly ACKed segment, only if it was
		// never retransmitted (Karn's algorithm); a valid sample also
		// re-derives the RTO, clearing any backoff.
		if !x.retx[cum-1] {
			s.est.sample(x.now - x.sentAt[cum-1])
			x.rto = s.est.rto(x.c.opts.MinRTO)
		}
		x.sndUna = cum
		if x.inRecovery {
			if cum >= x.recoverIdx {
				// Full ACK: the recovery ACK reopens the window to
				// ssthresh and ends fast recovery (RFC 6582).
				s.cwnd = s.ssthresh
				x.inRecovery = false
				x.dupAcks = 0
			} else {
				// Partial ACK: the next hole was also lost. Retransmit it
				// immediately and deflate by the amount acknowledged
				// (NewReno partial-ACK processing).
				s.cwnd = math.Max(s.cwnd-float64(newly)+1, lossWindow)
				x.transmit(x.sndUna)
			}
		} else {
			x.dupAcks = 0
			if s.cwnd < s.ssthresh {
				s.cwnd += float64(newly) // slow start (RFC 3465 byte counting)
			} else {
				s.cwnd += float64(newly) / s.cwnd // congestion avoidance
			}
		}
		// RFC 6298 §5.3: restart the timer when new data is ACKed; stop it
		// when everything is (§5.2). The timer guards this transfer's own
		// unACKed segments, not carried-over credit.
		if x.sndNxt > x.sndUna {
			x.armTimer()
		} else {
			x.timerArmed = false
		}
		return
	}
	if x.sndNxt == x.sndUna {
		return // stale ACK: none of this transfer's data is outstanding
	}
	// Duplicate ACK.
	if x.inRecovery {
		s.cwnd++ // window inflation: each dup ACK signals a departed segment
		return
	}
	x.dupAcks++
	if x.dupAcks == dupThresh {
		// Fast retransmit: halve to ssthresh, resend the hole, and enter
		// fast recovery inflated by the three duplicates (RFC 5681 §3.2).
		s.ssthresh = math.Max(float64(x.inflight())/2, 2)
		s.cwnd = s.ssthresh + dupThresh
		x.inRecovery = true
		x.recoverIdx = x.sndNxt
		x.transmit(x.sndUna)
	}
}

// onTimer handles retransmission timeout: collapse to the loss window,
// back the timer off, and resend the oldest outstanding segment.
func (x *transfer) onTimer() {
	s := x.s
	x.timerArmed = false
	if x.sndUna >= len(x.segs) {
		return
	}
	s.ssthresh = math.Max(float64(x.inflight())/2, 2)
	s.cwnd = lossWindow
	x.inRecovery = false
	x.dupAcks = 0
	x.rto *= 2 // Karn backoff; cleared by the next valid RTT sample
	if x.rto > maxRTO {
		x.rto = maxRTO
	}
	x.transmit(x.sndUna) // transmit re-arms the timer at the backed-off RTO
	if testHook != nil {
		testHook(x, "timer")
	}
}
