package tcpsim

import (
	"math"
	"sort"
	"testing"
	"time"

	"pqtls/internal/netsim"
)

// installInvariantHook wires the package test hook to assert the sender
// state-machine invariants at every transition. Tests using it must not run
// in parallel (the hook is a package global); they are serial tests, which
// the testing package never overlaps with parallel ones.
func installInvariantHook(t *testing.T) *int {
	t.Helper()
	points := 0
	testHook = func(x *transfer, point string) {
		points++
		s := x.s
		if x.inflight() < 0 {
			t.Fatalf("%s: inflight %d < 0", point, x.inflight())
		}
		if x.prevOut < 0 {
			t.Fatalf("%s: carried-over outstanding %d < 0", point, x.prevOut)
		}
		if s.cwnd < 2 {
			t.Fatalf("%s: cwnd %.3f < 2", point, s.cwnd)
		}
		if !math.IsInf(s.ssthresh, 1) && s.ssthresh < 2 {
			t.Fatalf("%s: ssthresh %.3f < 2", point, s.ssthresh)
		}
		if x.sndUna < 0 || x.sndUna > x.sndNxt || x.sndNxt > len(x.segs) {
			t.Fatalf("%s: sequence state una=%d nxt=%d n=%d", point, x.sndUna, x.sndNxt, len(x.segs))
		}
		if x.rcvNext < 0 || x.rcvNext > len(x.segs) {
			t.Fatalf("%s: rcvNext %d out of range [0,%d]", point, x.rcvNext, len(x.segs))
		}
		if point == "done" {
			// Credit conservation: when a transfer finishes, every segment
			// counted against the window is either acknowledged (sndUna) or
			// parked as a carried credit for the next transfer — including
			// credits this transfer itself inherited and never drained.
			sum := 0
			for _, cr := range s.carried {
				sum += cr.n
			}
			if want := x.prevOut + len(x.segs) - x.sndUna; sum != want {
				t.Fatalf("done: carried credits %d, want %d (prevOut %d, una %d/%d)",
					sum, want, x.prevOut, x.sndUna, len(x.segs))
			}
			if !x.delivered || x.rcvNext != len(x.segs) {
				t.Fatalf("done: transfer finished undelivered (rcvNext %d/%d)", x.rcvNext, len(x.segs))
			}
		}
	}
	t.Cleanup(func() { testHook = nil })
	return &points
}

// Every invariant must hold at every transition across a grid of loss
// rates, for a handshake-shaped exchange with back-to-back flushes that
// exercises the carried-credit path.
func TestInvariantsUnderRandomLoss(t *testing.T) {
	points := installInvariantHook(t)
	for _, loss := range []float64{0, 0.05, 0.2, 0.5} {
		for seed := int64(0); seed < 12; seed++ {
			cfg := netsim.LinkConfig{Name: "t", Loss: loss,
				RTT: 40 * time.Millisecond, Rate: 10_000_000}
			conn := NewConn(netsim.NewLink(cfg, seed), Options{})
			_, serverReady := conn.Connect(0)
			d1 := conn.Send(netsim.ClientToServer, serverReady, make([]byte, 700))
			// Two server flushes moments apart: the second must count the
			// first's in-flight segments against the shared window.
			d2 := conn.Send(netsim.ServerToClient, d1, make([]byte, 9000))
			d3 := conn.Send(netsim.ServerToClient, d1+time.Millisecond, make([]byte, 16000))
			d4 := conn.Send(netsim.ClientToServer, d3, make([]byte, 300))
			for i, pair := range [][2]time.Duration{
				{serverReady, d1}, {d1, d2}, {d1 + time.Millisecond, d3}, {d3, d4},
			} {
				if pair[1] < pair[0] {
					t.Fatalf("loss %.2f seed %d: flight %d delivered at %v before send time %v",
						loss, seed, i, pair[1], pair[0])
				}
			}
		}
	}
	if *points == 0 {
		t.Fatal("invariant hook never fired")
	}
}

// A single lost data segment in a window's worth of traffic must be
// repaired by fast retransmit — without waiting for the retransmission
// timer — and fast recovery must reopen the window: total slowdown stays
// within a few RTTs of the clean run. This pins the two historical bugs
// where loss grew the window and fast retransmit kept it closed until the
// original RTO.
func TestFastRetransmitRecoversWithoutRTO(t *testing.T) {
	const rtt = 40 * time.Millisecond
	payload := make([]byte, 40*1460)
	clean := NewConn(netsim.NewLink(netsim.LinkConfig{Name: "t", RTT: rtt}, 1), Options{})
	_, cleanReady := clean.Connect(0)
	cleanDone := clean.Send(netsim.ServerToClient, cleanReady, payload)
	cleanTime := cleanDone - cleanReady

	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		timers, retransmissions := 0, 0
		testHook = func(x *transfer, point string) {
			switch point {
			case "timer":
				timers++
			case "done":
				for _, a := range x.attempts {
					if a > 1 {
						retransmissions += a - 1
					}
				}
			}
		}
		link := netsim.NewLink(netsim.LinkConfig{Name: "t", Loss: 0.02, RTT: rtt}, seed)
		conn := NewConn(link, Options{})
		_, serverReady := conn.Connect(0)
		done := conn.Send(netsim.ServerToClient, serverReady, payload)
		testHook = nil
		if retransmissions < 1 || timers > 0 {
			continue // want a run repaired purely by fast retransmit
		}
		found = true
		lossyTime := done - serverReady
		// Recovery can overlap later slow-start rounds entirely (the halved
		// window still covers the tail), so equal time is legitimate — but
		// loss must never make the transfer faster.
		if lossyTime < cleanTime {
			t.Errorf("seed %d: lossy transfer (%v) faster than clean (%v)", seed, lossyTime, cleanTime)
		}
		if lossyTime > cleanTime+5*rtt {
			t.Errorf("seed %d: fast-retransmit recovery took %v vs clean %v — window likely stayed closed",
				seed, lossyTime, cleanTime)
		}
	}
	if !found {
		t.Fatal("no seed produced a loss repaired solely by fast retransmit")
	}
}

// Higher loss must never make the median transfer faster — the bug the old
// model had (an RTO credited as an ACK grew the window on every drop).
func TestLossMonotoneMedianTransferTime(t *testing.T) {
	t.Parallel()
	median := func(loss float64) time.Duration {
		var times []time.Duration
		for seed := int64(0); seed < 31; seed++ {
			cfg := netsim.LinkConfig{Name: "t", Loss: loss,
				RTT: 40 * time.Millisecond, Rate: 20_000_000}
			conn := NewConn(netsim.NewLink(cfg, seed), Options{})
			_, serverReady := conn.Connect(0)
			done := conn.Send(netsim.ServerToClient, serverReady, make([]byte, 30*1460))
			times = append(times, done-serverReady)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}
	grid := []float64{0, 0.1, 0.3}
	prev := median(grid[0])
	for _, loss := range grid[1:] {
		m := median(loss)
		if m < prev {
			t.Errorf("median at loss %.1f (%v) faster than at lower loss (%v)", loss, m, prev)
		}
		prev = m
	}
}

// Seeded regression pins: Connect and two data flights on every scenario
// profile at seed 42. Any behavioural change to the transport model shows
// up here as an explicit golden diff rather than silently reshaping the
// paper's constrained-network tables.
func TestScenarioRegressionPins(t *testing.T) {
	t.Parallel()
	pins := map[string][4]time.Duration{
		"none":          {0, 0, 0, 0},
		"high-loss":     {1000000000, 1000000000, 2000000000, 2000000000},
		"low-bandwidth": {1184000, 1712000, 27296000, 94992000},
		"high-delay":    {1000000000, 1500000000, 1500000000, 2000000000},
		"lte-m":         {1201184000, 1301712000, 2313392000, 2481088000},
		"5g":            {44001344, 66001944, 66031015, 88107938},
	}
	for _, cfg := range netsim.Scenarios() {
		want, ok := pins[cfg.Name]
		if !ok {
			t.Errorf("no pin for scenario %q", cfg.Name)
			continue
		}
		conn := NewConn(netsim.NewLink(cfg, 42), Options{})
		cr, sr := conn.Connect(0)
		d1 := conn.Send(netsim.ClientToServer, cr, make([]byte, 3000))
		d2 := conn.Send(netsim.ServerToClient, d1, make([]byte, 8000))
		got := [4]time.Duration{cr, sr, d1, d2}
		if got != want {
			t.Errorf("%s: (connect, ready, flight1, flight2) = %v, want %v", cfg.Name, got, want)
		}
	}
}
