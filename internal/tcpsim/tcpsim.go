// Package tcpsim models TCP transfer dynamics over a netsim.Link: initial
// congestion window and slow start, ACK clocking, fast retransmission and
// RTO recovery, and MSS segmentation. It reproduces the transport effects
// the paper reports in Section 5.4 — PQ handshake flights exceeding the
// initial CWND (10×MSS) cost extra round trips, and emulated loss, delay,
// and bandwidth reshape handshake latency.
//
// Model simplifications (documented per DESIGN.md): the congestion window
// is tracked in segments and each in-order arrival is acknowledged for
// window accounting, while only every second ACK (plus the burst-final one)
// is put on the wire, mirroring delayed ACKs; a lost segment is recovered
// one round trip later when at least three later segments were delivered
// (fast retransmit) and after an RTO otherwise; a loss event halves the
// window.
package tcpsim

import (
	"sort"
	"time"

	"pqtls/internal/netsim"
)

// InitialCwnd is the Linux default initial congestion window (RFC 6928).
const InitialCwnd = 10

// Options tunes the TCP model.
type Options struct {
	// InitialCwnd in segments (defaults to 10).
	InitialCwnd int
	// MinRTO bounds retransmission timeouts from below (defaults to 5ms,
	// standing in for Linux tail-loss probes on LAN-scale RTTs).
	MinRTO time.Duration
}

// Conn is one TCP connection over an emulated link, with independent sender
// state per direction.
type Conn struct {
	link *netsim.Link
	opts Options
	send [2]*sender
}

type sender struct {
	dir     netsim.Direction
	nextSeq uint32
	cwnd    int
	// inflight segments and the times their window credit returns.
	inflight    int
	pendingAcks []time.Duration
	// clock is the last time this sender acted.
	clock time.Duration
	// ackCounter alternates wire ACK emission (delayed ACKs).
	ackCounter int
}

// NewConn creates a connection; Connect must run before Send.
func NewConn(link *netsim.Link, opts Options) *Conn {
	if opts.InitialCwnd == 0 {
		opts.InitialCwnd = InitialCwnd
	}
	if opts.MinRTO == 0 {
		opts.MinRTO = 5 * time.Millisecond
	}
	return &Conn{
		link: link,
		opts: opts,
		send: [2]*sender{
			{dir: netsim.ClientToServer, nextSeq: 1, cwnd: opts.InitialCwnd},
			{dir: netsim.ServerToClient, nextSeq: 1, cwnd: opts.InitialCwnd},
		},
	}
}

// rto returns the retransmission timeout for the link's RTT.
func (c *Conn) rto() time.Duration {
	rto := 4 * c.link.Config().RTT
	if rto < c.opts.MinRTO {
		rto = c.opts.MinRTO
	}
	return rto
}

// Connect simulates the TCP three-way handshake starting at t. It returns
// when the client may send data (SYN-ACK received) and when the server has
// seen the final ACK.
func (c *Conn) Connect(t time.Duration) (clientReady, serverReady time.Duration) {
	// SYN with exponential-backoff retransmission (initial RTO 1s). Like
	// Linux (tcp_syn_retries), attempts are bounded; the last attempt is
	// treated as delivered so pathological 100%-loss configurations yield
	// an absurd-but-finite connection time instead of a livelock.
	const maxSynRetries = 6
	synRTO := time.Second
	now := t
	var synArrive time.Duration
	for attempt := 0; ; attempt++ {
		tx := c.link.Transmit(netsim.ClientToServer, now,
			netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Flags: netsim.FlagSYN}))
		if !tx.Dropped || attempt == maxSynRetries {
			synArrive = tx.ArriveAt
			break
		}
		now += synRTO
		synRTO *= 2
	}
	// SYN-ACK, same backoff.
	synackRTO := time.Second
	now = synArrive
	var synackArrive time.Duration
	for attempt := 0; ; attempt++ {
		tx := c.link.Transmit(netsim.ServerToClient, now,
			netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ServerToClient, Flags: netsim.FlagSYN | netsim.FlagACK}))
		if !tx.Dropped || attempt == maxSynRetries {
			synackArrive = tx.ArriveAt
			break
		}
		now += synackRTO
		synackRTO *= 2
	}
	// Final ACK (loss is repaired by the first data segment; ignore).
	ackTx := c.link.Transmit(netsim.ClientToServer, synackArrive,
		netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Flags: netsim.FlagACK, Seq: 1, Ack: 1}))
	c.send[netsim.ClientToServer].clock = synackArrive
	c.send[netsim.ServerToClient].clock = ackTx.ArriveAt
	return synackArrive, ackTx.ArriveAt
}

// drainAcks releases window credit for ACKs that arrived by now.
func (s *sender) drainAcks(now time.Duration) {
	i := 0
	for ; i < len(s.pendingAcks) && s.pendingAcks[i] <= now; i++ {
		s.inflight--
		s.cwnd++ // slow start: one segment of growth per ACKed segment
	}
	s.pendingAcks = s.pendingAcks[i:]
}

// Send transfers payload in the given direction; the application handed the
// bytes to the socket at time t. It returns the time the *last* byte is
// available in order at the receiver.
func (c *Conn) Send(dir netsim.Direction, t time.Duration, payload []byte) time.Duration {
	if len(payload) == 0 {
		return t
	}
	s := c.send[dir]
	now := t
	if s.clock > now {
		now = s.clock
	}
	mss := c.link.MSS()
	owd := c.link.Config().RTT / 2

	type segment struct {
		seq      uint32
		data     []byte
		dueAt    time.Duration
		attempts int
	}
	// Like Linux (tcp_retries2), per-segment retransmissions are bounded;
	// the final attempt counts as delivered so a 100%-loss configuration
	// terminates with an absurd-but-finite transfer time.
	const maxRetries = 15
	var queue []*segment
	for off := 0; off < len(payload); off += mss {
		end := min(off+mss, len(payload))
		queue = append(queue, &segment{seq: s.nextSeq, data: payload[off:end], dueAt: now})
		s.nextSeq += uint32(end - off)
	}

	reverse := netsim.ServerToClient
	if dir == netsim.ServerToClient {
		reverse = netsim.ClientToServer
	}
	ackSeq := c.send[reverse].nextSeq

	var lastDelivery time.Duration
	// Dropped segments waiting for three duplicate ACKs; maps to the number
	// of later deliveries seen so far.
	lossPending := map[*segment]int{}
	for len(queue) > 0 {
		sort.SliceStable(queue, func(i, j int) bool { return queue[i].dueAt < queue[j].dueAt })
		seg := queue[0]
		if seg.dueAt > now {
			now = seg.dueAt
		}
		s.drainAcks(now)
		if s.inflight >= s.cwnd {
			// Window closed: wait for the next window credit.
			if len(s.pendingAcks) == 0 {
				// Everything outstanding was lost; wait an RTO.
				now += c.rto()
				continue
			}
			if s.pendingAcks[0] > now {
				now = s.pendingAcks[0]
			}
			s.drainAcks(now)
			continue
		}

		queue = queue[1:]
		tx := c.link.Transmit(dir, now, netsim.BuildFrame(netsim.FrameSpec{
			Dir: dir, Seq: seg.seq, Ack: ackSeq, Flags: netsim.FlagACK | netsim.FlagPSH, Payload: seg.data,
		}))
		s.inflight++
		seg.attempts++

		if tx.Dropped && seg.attempts <= maxRetries {
			// Provisionally schedule an RTO; three duplicate ACKs from
			// later deliveries revise this down to a fast retransmit.
			seg.dueAt = tx.SentAt + c.rto()
			queue = append(queue, seg)
			lossPending[seg] = 0
			s.pendingAcks = append(s.pendingAcks, seg.dueAt)
			sort.Slice(s.pendingAcks, func(i, j int) bool { return s.pendingAcks[i] < s.pendingAcks[j] })
			s.cwnd = max(s.cwnd/2, 2)
			continue
		}

		if tx.ArriveAt > lastDelivery {
			lastDelivery = tx.ArriveAt
		}
		// Later deliveries generate duplicate ACKs for pending losses.
		for lost, n := range lossPending {
			n++
			lossPending[lost] = n
			if n >= 3 {
				fast := tx.ArriveAt + owd
				if fast < lost.dueAt {
					lost.dueAt = fast
				}
				delete(lossPending, lost)
			}
		}
		// Window credit returns when the ACK reaches the sender.
		s.pendingAcks = append(s.pendingAcks, tx.ArriveAt+owd)
		sort.Slice(s.pendingAcks, func(i, j int) bool { return s.pendingAcks[i] < s.pendingAcks[j] })
		// Delayed ACKs on the wire: every second arrival and the last of
		// the transfer. On fast links (>= 1 Gbit/s) back-to-back bursts
		// are GRO-coalesced by the receiving NIC, so one ACK covers a
		// whole aggregate (~64 kB), as on the paper's 10 Gbit/s testbed.
		ackEvery := 2
		if rate := c.link.Config().Rate; rate == 0 || rate >= 1_000_000_000 {
			ackEvery = 22
		}
		s.ackCounter++
		if s.ackCounter%ackEvery == 0 || len(queue) == 0 {
			c.link.Transmit(reverse, tx.ArriveAt, netsim.BuildFrame(netsim.FrameSpec{
				Dir: reverse, Seq: ackSeq, Ack: seg.seq + uint32(len(seg.data)), Flags: netsim.FlagACK,
			}))
		}
	}
	s.clock = now

	return lastDelivery
}

// Link exposes the underlying link (for counters and tap access).
func (c *Conn) Link() *netsim.Link { return c.link }
