// Package tcpsim models TCP transfer dynamics over a netsim.Link with an
// event-driven sender state machine implementing the standard congestion
// control pieces: slow start and congestion avoidance separated by ssthresh
// (RFC 5681), fast retransmit with NewReno-style fast recovery (RFC 6582)
// that reopens the window on the recovery ACK, and an RTT-estimated
// retransmission timeout (SRTT/RTTVAR per RFC 6298, seeded from the
// three-way handshake). It reproduces the transport effects the paper
// reports in Section 5.4 — PQ handshake flights exceeding the initial CWND
// (10×MSS) cost extra round trips, and emulated loss, delay, and bandwidth
// reshape handshake latency.
//
// Model simplifications (documented per DESIGN.md):
//
//   - The congestion window is tracked in MSS-sized segments, fractionally
//     during congestion avoidance. The loss window after an RTO is floored
//     at 2 segments (RFC 5681 specifies 1) so a single timeout never
//     serializes the tail into a sub-MSS trickle; ssthresh is likewise
//     never below 2.
//   - The ACK channel is modeled lossless: every data arrival generates a
//     window-accounting ACK that reaches the sender one one-way delay
//     later, so cumulative-ACK repair of lost ACKs is implicit. Wire ACK
//     frames are still emitted — every second in-order arrival (delayed
//     ACKs), immediately for out-of-order arrivals (duplicate ACKs are
//     never delayed), and once more when the transfer completes — so pcap
//     packet/byte counts stay faithful, but their loss/serialization does
//     not feed back into the timing. On >= 1 Gbit/s links back-to-back
//     bursts are GRO-coalesced by the receiving NIC, so one wire ACK
//     covers a whole aggregate (~64 kB), as on the paper's 10 Gbit/s
//     testbed.
//   - Window accounting acknowledges every in-order arrival (equivalent to
//     byte-counting cwnd growth, RFC 3465), so slow start doubles per
//     round trip as Linux does.
//   - Retransmissions per segment are bounded (tcp_retries2-style); the
//     final attempt counts as delivered so a 100%-loss configuration
//     terminates with an absurd-but-finite transfer time instead of a
//     livelock.
package tcpsim

import (
	"math"
	"time"

	"pqtls/internal/netsim"
)

// InitialCwnd is the Linux default initial congestion window (RFC 6928).
const InitialCwnd = 10

// Options tunes the TCP model.
type Options struct {
	// InitialCwnd in segments (defaults to 10).
	InitialCwnd int
	// MinRTO bounds retransmission timeouts from below (defaults to 5ms,
	// standing in for Linux tail-loss probes on LAN-scale RTTs).
	MinRTO time.Duration
}

// Conn is one TCP connection over an emulated link, with independent sender
// state per direction.
type Conn struct {
	link *netsim.Link
	opts Options
	send [2]*sender
}

// sender is the per-direction state that persists across flights: the
// congestion state machine variables, the RTT estimator, the sequence
// space, and the receiver's delayed-ACK cadence for this direction's data.
type sender struct {
	dir     netsim.Direction
	reverse netsim.Direction
	nextSeq uint32

	// Congestion control (RFC 5681), in segments. cwnd is fractional so
	// congestion avoidance can add 1/cwnd per ACKed segment.
	cwnd     float64
	ssthresh float64

	est rttEstimator

	// ackCounter drives the delayed-ACK cadence of the wire ACKs the
	// receiver emits for this direction's data.
	ackCounter int

	// carried holds window credits still in flight when the previous
	// transfer's payload finished delivering: ACKs that had not yet
	// returned to the sender. The next transfer counts them against the
	// congestion window until their return times pass, so back-to-back
	// flushes share one window exactly like segments of one stream.
	carried []credit

	// clock is the last time this sender put data on the wire.
	clock time.Duration
}

// NewConn creates a connection; Connect must run before Send.
func NewConn(link *netsim.Link, opts Options) *Conn {
	if opts.InitialCwnd == 0 {
		opts.InitialCwnd = InitialCwnd
	}
	if opts.MinRTO == 0 {
		opts.MinRTO = 5 * time.Millisecond
	}
	newSender := func(dir, rev netsim.Direction) *sender {
		return &sender{
			dir: dir, reverse: rev, nextSeq: 1,
			cwnd:     float64(opts.InitialCwnd),
			ssthresh: math.Inf(1),
		}
	}
	return &Conn{
		link: link,
		opts: opts,
		send: [2]*sender{
			newSender(netsim.ClientToServer, netsim.ServerToClient),
			newSender(netsim.ServerToClient, netsim.ClientToServer),
		},
	}
}

// Connect simulates the TCP three-way handshake starting at t. It returns
// when the client may send data (SYN-ACK received) and when the server has
// seen the final ACK. The SYN and SYN-ACK round trips seed both directions'
// RTT estimators (as real TCP does), so the first data RTO reflects the
// path rather than the 1-second pre-sample default.
func (c *Conn) Connect(t time.Duration) (clientReady, serverReady time.Duration) {
	// SYN with exponential-backoff retransmission (initial RTO 1s). Like
	// Linux (tcp_syn_retries), attempts are bounded; the last attempt is
	// treated as delivered so pathological 100%-loss configurations yield
	// an absurd-but-finite connection time instead of a livelock.
	const maxSynRetries = 6
	synRTO := time.Second
	now := t
	var synArrive, synSentAt time.Duration
	synRetransmitted := false
	for attempt := 0; ; attempt++ {
		tx := c.link.Transmit(netsim.ClientToServer, now,
			netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Flags: netsim.FlagSYN}))
		if !tx.Dropped || attempt == maxSynRetries {
			synArrive = tx.ArriveAt
			synSentAt = now
			break
		}
		synRetransmitted = true
		now += synRTO
		synRTO *= 2
	}
	// SYN-ACK, same backoff.
	synackRTO := time.Second
	now = synArrive
	var synackArrive time.Duration
	synackRetransmitted := false
	for attempt := 0; ; attempt++ {
		tx := c.link.Transmit(netsim.ServerToClient, now,
			netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ServerToClient, Flags: netsim.FlagSYN | netsim.FlagACK}))
		if !tx.Dropped || attempt == maxSynRetries {
			synackArrive = tx.ArriveAt
			break
		}
		synackRetransmitted = true
		now += synackRTO
		synackRTO *= 2
	}
	// Final ACK (loss is repaired by the first data segment; ignore).
	ackTx := c.link.Transmit(netsim.ClientToServer, synackArrive,
		netsim.BuildFrame(netsim.FrameSpec{Dir: netsim.ClientToServer, Flags: netsim.FlagACK, Seq: 1, Ack: 1}))
	// RTT samples per Karn's algorithm: only untimed-by-retransmission
	// exchanges feed the estimators. The client times SYN → SYN-ACK, the
	// server SYN-ACK → final ACK.
	if !synRetransmitted && !synackRetransmitted {
		c.send[netsim.ClientToServer].est.sample(synackArrive - synSentAt)
	}
	if !synackRetransmitted {
		c.send[netsim.ServerToClient].est.sample(ackTx.ArriveAt - synArrive)
	}
	c.send[netsim.ClientToServer].clock = synackArrive
	c.send[netsim.ServerToClient].clock = ackTx.ArriveAt
	return synackArrive, ackTx.ArriveAt
}

// Send transfers payload in the given direction; the application handed the
// bytes to the socket at time t. It returns the time the *last* byte is
// available in order at the receiver.
func (c *Conn) Send(dir netsim.Direction, t time.Duration, payload []byte) time.Duration {
	if len(payload) == 0 {
		return t
	}
	s := c.send[dir]
	now := t
	if s.clock > now {
		now = s.clock
	}
	x := newTransfer(c, s, now, payload)
	return x.run()
}

// Link exposes the underlying link (for counters and tap access).
func (c *Conn) Link() *netsim.Link { return c.link }
