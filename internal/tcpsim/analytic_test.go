package tcpsim

import (
	"testing"
	"time"

	"pqtls/internal/netsim"
)

// Differential check: on a loss-free link every transfer time is fully
// determined by serialization and propagation — no congestion logic should
// contribute. This mirror computes the closed form independently of the
// event machine: each frame's arrival is start + size*8/rate + RTT/2, with
// per-direction FIFO serialization chaining and the receiver's wire-ACK
// cadence occupying the reverse channel.
type analytic struct {
	cfg        netsim.LinkConfig
	busy       [2]time.Duration
	ackCounter [2]int
	ackEvery   int
	mss        int
}

func newAnalytic(cfg netsim.LinkConfig) *analytic {
	a := &analytic{cfg: cfg, ackEvery: 2, mss: 1500 - 40}
	if cfg.Rate == 0 || cfg.Rate >= 1_000_000_000 {
		a.ackEvery = 22 // GRO-coalesced ACKs on fast links
	}
	return a
}

// tx mirrors netsim.Link.Transmit timing: FIFO serialization per direction,
// then one-way propagation.
func (a *analytic) tx(dir netsim.Direction, now time.Duration, frameLen int) time.Duration {
	start := now
	if a.busy[dir] > start {
		start = a.busy[dir]
	}
	var ser time.Duration
	if a.cfg.Rate > 0 {
		ser = time.Duration(int64(frameLen) * 8 * int64(time.Second) / a.cfg.Rate)
	}
	a.busy[dir] = start + ser
	return a.busy[dir] + a.cfg.RTT/2
}

// connect is the closed form of the three-way handshake.
func (a *analytic) connect() (clientReady, serverReady time.Duration) {
	syn := a.tx(netsim.ClientToServer, 0, netsim.HeaderOverhead(netsim.FlagSYN))
	synack := a.tx(netsim.ServerToClient, syn, netsim.HeaderOverhead(netsim.FlagSYN|netsim.FlagACK))
	ack := a.tx(netsim.ClientToServer, synack, netsim.HeaderOverhead(netsim.FlagACK))
	return synack, ack
}

// flight is the closed form of one within-window transfer: all segments
// offered back-to-back at t, the last byte delivered one serialization
// chain plus one one-way delay later; wire ACKs occupy the reverse channel
// per the delayed-ACK cadence.
func (a *analytic) flight(dir netsim.Direction, t time.Duration, size int) time.Duration {
	rev := netsim.ServerToClient
	if dir == rev {
		rev = netsim.ClientToServer
	}
	var last time.Duration
	for rem := size; rem > 0; {
		seg := min(rem, a.mss)
		rem -= seg
		last = a.tx(dir, t, netsim.HeaderOverhead(netsim.FlagACK)+seg)
		a.ackCounter[dir]++
		if a.ackCounter[dir]%a.ackEvery == 0 || rem == 0 {
			a.tx(rev, last, netsim.HeaderOverhead(netsim.FlagACK))
		}
	}
	return last
}

// The acceptance gate: for every Loss:0 scenario profile, a multi-flight
// handshake-shaped exchange must match the closed form within 1 µs.
func TestNoLossAnalyticDifferential(t *testing.T) {
	t.Parallel()
	const tolerance = time.Microsecond
	for _, cfg := range netsim.Scenarios() {
		if cfg.Loss != 0 {
			continue
		}
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			conn := NewConn(netsim.NewLink(cfg, 9), Options{})
			clientReady, serverReady := conn.Connect(0)
			an := newAnalytic(cfg)
			wantCR, wantSR := an.connect()
			if clientReady != wantCR || serverReady != wantSR {
				t.Errorf("Connect = (%v, %v), closed form (%v, %v)",
					clientReady, serverReady, wantCR, wantSR)
			}
			// CH-sized, server-flight-sized, Finished-sized flights, each
			// handed to the socket when the previous flight delivered.
			flights := []struct {
				dir  netsim.Direction
				size int
			}{
				{netsim.ClientToServer, 500},
				{netsim.ServerToClient, 6000},
				{netsim.ClientToServer, 1200},
			}
			tSend := clientReady
			for i, f := range flights {
				got := conn.Send(f.dir, tSend, make([]byte, f.size))
				want := an.flight(f.dir, tSend, f.size)
				diff := got - want
				if diff < 0 {
					diff = -diff
				}
				if diff > tolerance {
					t.Errorf("flight %d (%d B): delivered %v, closed form %v (diff %v)",
						i, f.size, got, want, diff)
				}
				tSend = got
			}
		})
	}
}
