package tcpsim

import (
	"testing"
	"time"

	"pqtls/internal/netsim"
)

func TestConnectCostsOneRTT(t *testing.T) {
	t.Parallel()
	link := netsim.NewLink(netsim.LinkConfig{Name: "t", RTT: 100 * time.Millisecond}, 1)
	conn := NewConn(link, Options{})
	clientReady, serverReady := conn.Connect(0)
	if clientReady != 100*time.Millisecond {
		t.Errorf("client ready at %v, want 100ms", clientReady)
	}
	if serverReady != 150*time.Millisecond {
		t.Errorf("server ready at %v, want 150ms", serverReady)
	}
}

// A flight within the initial CWND completes in one one-way delay.
func TestSingleWindowTransfer(t *testing.T) {
	t.Parallel()
	link := netsim.NewLink(netsim.LinkConfig{Name: "t", RTT: 1 * time.Second}, 1)
	conn := NewConn(link, Options{})
	conn.Connect(0)
	// 10 segments exactly fill the initial window.
	payload := make([]byte, 10*link.MSS())
	done := conn.Send(netsim.ServerToClient, 2*time.Second, payload)
	want := 2*time.Second + 500*time.Millisecond
	if done != want {
		t.Errorf("delivery at %v, want %v", done, want)
	}
}

// A flight exceeding the initial CWND needs at least one extra round trip —
// the Section 5.4 effect for big PQ flights.
func TestSlowStartExtraRTT(t *testing.T) {
	t.Parallel()
	link := netsim.NewLink(netsim.LinkConfig{Name: "t", RTT: 1 * time.Second}, 1)
	conn := NewConn(link, Options{})
	conn.Connect(0)
	payload := make([]byte, 11*link.MSS()) // one segment over the window
	done := conn.Send(netsim.ServerToClient, 2*time.Second, payload)
	min := 2*time.Second + 1500*time.Millisecond // 0.5 (data) + 1.0 (ack round)
	if done < min {
		t.Errorf("delivery at %v, want >= %v (extra RTT)", done, min)
	}
	// A SPHINCS+-sized flight (105 kB ≈ 72 segments) needs several rounds:
	// 10+20+40 covers 70, so a fourth round is required.
	conn2 := NewConn(netsim.NewLink(netsim.LinkConfig{Name: "t", RTT: 1 * time.Second}, 2), Options{})
	conn2.Connect(0)
	big := make([]byte, 72*link.MSS())
	done2 := conn2.Send(netsim.ServerToClient, 2*time.Second, big)
	if done2 < 2*time.Second+3500*time.Millisecond {
		t.Errorf("large flight delivered at %v, want >= 5.5s total", done2)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	t.Parallel()
	// 1 Mbit/s: a 10-segment flight of 1500B frames takes ~120ms to clock
	// out, irrespective of propagation delay.
	link := netsim.NewLink(netsim.LinkConfig{Name: "t", Rate: 1_000_000}, 1)
	conn := NewConn(link, Options{})
	conn.Connect(0)
	payload := make([]byte, 10*link.MSS())
	done := conn.Send(netsim.ServerToClient, 0, payload)
	if done < 100*time.Millisecond || done > 200*time.Millisecond {
		t.Errorf("1 Mbit/s delivery at %v, want ~120ms", done)
	}
}

// All bytes are always delivered, whatever the loss process does.
func TestLossyDeliveryCompletes(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 20; seed++ {
		link := netsim.NewLink(netsim.LinkConfig{Name: "t", Loss: 0.2, RTT: 10 * time.Millisecond}, seed)
		conn := NewConn(link, Options{})
		_, serverReady := conn.Connect(0)
		payload := make([]byte, 25*link.MSS())
		done := conn.Send(netsim.ServerToClient, serverReady, payload)
		if done <= 0 {
			t.Fatalf("seed %d: no delivery time", seed)
		}
	}
}

// Loss must slow delivery down versus the clean link (same seed stream).
func TestLossCostsTime(t *testing.T) {
	t.Parallel()
	clean := netsim.NewLink(netsim.LinkConfig{Name: "t", RTT: 20 * time.Millisecond}, 7)
	lossy := netsim.NewLink(netsim.LinkConfig{Name: "t", Loss: 0.3, RTT: 20 * time.Millisecond}, 7)
	payload := make([]byte, 30*1460)
	cleanConn := NewConn(clean, Options{})
	cleanConn.Connect(0)
	lossyConn := NewConn(lossy, Options{})
	lossyConn.Connect(0)
	tClean := cleanConn.Send(netsim.ServerToClient, time.Second, payload)
	tLossy := lossyConn.Send(netsim.ServerToClient, time.Second, payload)
	if tLossy <= tClean {
		t.Errorf("lossy link (%v) not slower than clean (%v)", tLossy, tClean)
	}
}

func TestPacketCounters(t *testing.T) {
	t.Parallel()
	link := netsim.NewLink(netsim.LinkConfig{Name: "t"}, 1)
	conn := NewConn(link, Options{})
	conn.Connect(0)
	conn.Send(netsim.ClientToServer, 0, make([]byte, 100))
	if link.Packets[netsim.ClientToServer] < 3 { // SYN, ACK, data
		t.Errorf("client packets = %d, want >= 3", link.Packets[netsim.ClientToServer])
	}
	if link.Packets[netsim.ServerToClient] < 2 { // SYN-ACK, data ACK
		t.Errorf("server packets = %d, want >= 2", link.Packets[netsim.ServerToClient])
	}
	if link.Bytes[netsim.ClientToServer] < 100 {
		t.Error("client byte counter too small")
	}
}

// The tap must observe every frame with in-order, midpoint timestamps.
func TestTapObservation(t *testing.T) {
	t.Parallel()
	link := netsim.NewLink(netsim.LinkConfig{Name: "t", RTT: 10 * time.Millisecond}, 1)
	var taps []time.Duration
	link.SetTap(func(dir netsim.Direction, at time.Duration, frame []byte) {
		taps = append(taps, at)
		if len(frame) < 54 {
			t.Errorf("frame too short: %d", len(frame))
		}
	})
	conn := NewConn(link, Options{})
	conn.Connect(0)
	if len(taps) != 3 {
		t.Fatalf("tap saw %d frames during connect, want 3", len(taps))
	}
	// SYN passes the tap halfway through the one-way delay.
	if taps[0] != 2500*time.Microsecond {
		t.Errorf("SYN tap time %v, want 2.5ms", taps[0])
	}
}

// A fully black-holed link must still terminate with a finite (huge) time
// rather than livelock — the bounded-retry safeguard.
func TestTotalLossTerminates(t *testing.T) {
	t.Parallel()
	link := netsim.NewLink(netsim.LinkConfig{Name: "t", Loss: 1.0, RTT: 10 * time.Millisecond}, 3)
	conn := NewConn(link, Options{})
	_, serverReady := conn.Connect(0)
	done := conn.Send(netsim.ServerToClient, serverReady, make([]byte, 5*1460))
	if done <= serverReady {
		t.Error("no progress on black-holed link")
	}
}
