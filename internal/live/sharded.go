package live

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"time"

	"pqtls/internal/obs"
	"pqtls/internal/sig"
	"pqtls/internal/tls13"
)

// ShardedServer fans the accept path out over N independent shards, each a
// full Server runtime with its own accept goroutine and connection limiter.
// On Linux every shard owns an SO_REUSEPORT listener on the same address —
// the kernel spreads incoming connections across the accept queues — and
// elsewhere the shards share one listener, which still removes the
// single-accept-goroutine bottleneck even though the queue stays shared.
//
// Cross-shard state is shared by construction, not merged after the fact:
// one ticket store (a ticket issued on shard 0 resumes on shard 3), one
// sign pool, and one obs.Registry whose idempotent registration makes every
// shard's counters the same atomic instruments. Snapshot-time "merging" is
// therefore just a union of the lazily-discovered failure classes.
type ShardedServer struct {
	shards  []*Server
	lns     []net.Listener
	tickets *tls13.TicketStore
	pool    *SignPool
	encaps  *EncapPool
	reg     *obs.Registry
}

// ServeSharded starts shards accept runtimes on addr (0 = GOMAXPROCS) and
// returns once all are accepting. The per-shard connection limit is
// MaxConns/shards (rounded up), preserving the aggregate bound.
func ServeSharded(addr string, opts Options, shards int) (*ShardedServer, error) {
	if opts.Config == nil {
		return nil, errors.New("live: Options.Config is required")
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = 256
	}

	// Resolve the shared pieces once, then hand every shard the same
	// objects through a single config copy.
	cfg := *opts.Config
	if cfg.Tickets == nil {
		if cfg.TicketKey != nil {
			cfg.Tickets = tls13.NewTicketStore(*cfg.TicketKey)
		} else {
			store, err := tls13.NewRandomTicketStore()
			if err != nil {
				return nil, fmt.Errorf("live: ticket store: %w", err)
			}
			cfg.Tickets = store
		}
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	opts.Registry = reg
	var pool *SignPool
	if opts.SignWorkers > 0 {
		scheme, err := sig.ByName(cfg.SigName)
		if err != nil {
			return nil, fmt.Errorf("live: sign pool: %w", err)
		}
		pool = NewSignPool(sig.NewSigner(scheme, cfg.PrivateKey), opts.SignWorkers, opts.SignQueue)
		cfg.Signer = pool
		opts.SignWorkers = 0 // shards must not build private pools
	}
	var encaps *EncapPool
	if opts.EncapBatch > 0 {
		workers := opts.EncapWorkers
		if workers <= 0 {
			workers = 2
		}
		// One shared pool, like the sign pool: batches gather across every
		// shard's in-flight handshakes, not per accept queue.
		encaps = NewEncapPool(workers, opts.EncapBatch, 0)
		cfg.Encapsulator = encaps
		opts.EncapBatch = 0 // shards must not build private pools
	}
	opts.Config = &cfg
	if opts.Timeline == nil && opts.WindowInterval > 0 {
		// One shared timeline across shards, like the registry: windows are
		// fleet-wide from the start, no post-hoc merge step.
		opts.Timeline = obs.NewTimeline(opts.WindowInterval)
	}

	lns, err := shardListeners(addr, shards)
	if err != nil {
		return nil, err
	}

	perShard := opts.MaxConns / shards
	if opts.MaxConns%shards != 0 {
		perShard++
	}

	ss := &ShardedServer{lns: lns, tickets: cfg.Tickets, pool: pool, encaps: encaps, reg: reg}
	for i := 0; i < shards; i++ {
		so := opts
		so.MaxConns = perShard
		if i > 0 {
			so.MetricsAddr = "" // one scrape endpoint, on shard 0
		}
		srv, err := Serve(lns[i], so)
		if err != nil {
			ss.Shutdown(time.Second)
			for _, l := range lns {
				l.Close() // unstarted shards' listeners aren't owned yet
			}
			return nil, fmt.Errorf("live: shard %d: %w", i, err)
		}
		ss.shards = append(ss.shards, srv)
	}
	return ss, nil
}

// shardListeners binds one listener per shard via SO_REUSEPORT where the
// platform has it, else one shared listener handed to every shard.
func shardListeners(addr string, shards int) ([]net.Listener, error) {
	lns := make([]net.Listener, 0, shards)
	if shards > 1 && reusePortAvailable {
		ln0, err := listenReusePort(addr)
		if err != nil {
			return nil, fmt.Errorf("live: shard listener: %w", err)
		}
		lns = append(lns, ln0)
		// Rebind the resolved address so ":0" shards land on one port.
		bound := ln0.Addr().String()
		for i := 1; i < shards; i++ {
			ln, err := listenReusePort(bound)
			if err != nil {
				for _, l := range lns {
					l.Close()
				}
				return nil, fmt.Errorf("live: shard listener %d: %w", i, err)
			}
			lns = append(lns, ln)
		}
		return lns, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listener: %w", err)
	}
	for i := 0; i < shards; i++ {
		lns = append(lns, ln)
	}
	return lns, nil
}

// Shards reports how many accept shards are running.
func (ss *ShardedServer) Shards() int { return len(ss.shards) }

// Addr returns the shared serving address (all shards bind one port).
func (ss *ShardedServer) Addr() net.Addr { return ss.lns[0].Addr() }

// MetricsAddr returns shard 0's metrics listener address, or nil.
func (ss *ShardedServer) MetricsAddr() net.Addr {
	if len(ss.shards) == 0 {
		return nil
	}
	return ss.shards[0].MetricsAddr()
}

// Registry returns the registry shared by every shard.
func (ss *ShardedServer) Registry() *obs.Registry { return ss.reg }

// Timeline returns the windowed timeline shared by every shard, or nil when
// windowed telemetry was not enabled.
func (ss *ShardedServer) Timeline() *obs.Timeline { return ss.shards[0].Timeline() }

// TicketStats exposes the shared ticket store's counters.
func (ss *ShardedServer) TicketStats() tls13.TicketStats { return ss.tickets.Stats() }

// SignPoolStats returns the shared sign pool's counters, or a zero snapshot
// when Options.SignWorkers was 0.
func (ss *ShardedServer) SignPoolStats() SignPoolStats {
	if ss.pool == nil {
		return SignPoolStats{}
	}
	return ss.pool.Stats()
}

// EncapPoolStats returns the shared encap pool's counters, or a zero
// snapshot when Options.EncapBatch was 0.
func (ss *ShardedServer) EncapPoolStats() EncapPoolStats {
	if ss.encaps == nil {
		return EncapPoolStats{}
	}
	return ss.encaps.Stats()
}

// Counters returns the merged snapshot. The shards share one registry, so
// every scalar is already the cross-shard total; only the lazily-registered
// failure classes need a union, since each shard discovers classes
// independently.
func (ss *ShardedServer) Counters() Counters {
	out := ss.shards[0].Counters()
	for _, s := range ss.shards[1:] {
		for class, v := range s.Counters().Failed {
			out.Failed[class] = v
		}
	}
	return out
}

// Shutdown drains every shard concurrently within the shared grace window,
// then closes the shared sign pool. The first shard error is returned.
func (ss *ShardedServer) Shutdown(grace time.Duration) error {
	errCh := make(chan error, len(ss.shards))
	for _, s := range ss.shards {
		go func(s *Server) { errCh <- s.Shutdown(grace) }(s)
	}
	var first error
	for range ss.shards {
		if err := <-errCh; err != nil && first == nil {
			first = err
		}
	}
	// All shards hold the same listener in the fallback layout; Close is
	// idempotent there. The sign pool outlives the shards so in-flight
	// handshakes could sign during the drain; close it last.
	if ss.pool != nil {
		ss.pool.Close()
	}
	if ss.encaps != nil {
		ss.encaps.Close()
	}
	return first
}
