package live

import (
	"crypto/rand"
	"sync"
	"sync/atomic"
	"time"

	"pqtls/internal/kem"
	"pqtls/internal/tls13"
)

// EncapPool batches the server side's KEM encapsulations across concurrent
// connections. Every accepted handshake encapsulates against the client's
// key share; under load many of those sit in flight at once, and Kyber's
// encapsulation is dominated by Keccak work a kem.BatchEncapsulator can
// run through one multi-sponge pass. Connection goroutines submit their
// share and park on a future; worker goroutines collect submissions into
// batches, flushing when a batch fills or a microsecond-scale latency
// bound expires.
//
// EncapPool implements tls13.Encapsulator, so it plugs directly into
// tls13.Config.Encapsulator. The tls13 server only consults the hook when
// Config.Rand is nil — a DRBG-pinned handshake must consume its configured
// randomness stream exactly, so pooled encapsulations (which draw from
// crypto/rand) never reach it.
type EncapPool struct {
	jobs  chan *encapJob
	wg    sync.WaitGroup
	batch int
	wait  time.Duration

	encaps  atomic.Uint64
	batches atomic.Uint64
	batched atomic.Uint64
	errs    atomic.Uint64

	mu     sync.RWMutex
	closed bool
}

// encapJob is one pending encapsulation against pub under k.
type encapJob struct {
	k      kem.KEM
	pub    []byte
	done   chan struct{}
	ct, ss []byte
	err    error
}

// NewEncapPool starts workers goroutines batching encapsulations. batch
// bounds shares per flush (0 = 16); wait is the latency bound a partially
// filled batch waits for stragglers (0 = 200µs).
func NewEncapPool(workers, batch int, wait time.Duration) *EncapPool {
	if workers <= 0 {
		workers = 1
	}
	if batch <= 0 {
		batch = 16
	}
	if wait <= 0 {
		wait = 200 * time.Microsecond
	}
	p := &EncapPool{
		jobs:  make(chan *encapJob, 4*batch*workers),
		batch: batch,
		wait:  wait,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Encapsulate implements tls13.Encapsulator: submit the share and wait for
// its batch to flush. After Close the encapsulation runs inline on the
// caller — always correct, only the amortization is gone.
func (p *EncapPool) Encapsulate(k kem.KEM, pub []byte) (ct, ss []byte, err error) {
	j := &encapJob{k: k, pub: pub, done: make(chan struct{})}
	// Send under the read lock so Close's write lock cannot close(p.jobs)
	// between the closed check and the send (same discipline as SignPool).
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		p.encaps.Add(1)
		return k.Encapsulate(rand.Reader, pub)
	}
	p.jobs <- j
	p.mu.RUnlock()
	<-j.done
	return j.ct, j.ss, j.err
}

// worker gathers one batch at a time: the first job blocks indefinitely,
// then stragglers are collected until the batch fills or the latency bound
// expires.
func (p *EncapPool) worker() {
	defer p.wg.Done()
	batch := make([]*encapJob, 0, p.batch)
	for {
		j, ok := <-p.jobs
		if !ok {
			return
		}
		batch = append(batch[:0], j)
		deadline := time.NewTimer(p.wait)
	gather:
		for len(batch) < p.batch {
			select {
			case j2, ok := <-p.jobs:
				if !ok {
					break gather
				}
				batch = append(batch, j2)
			case <-deadline.C:
				break gather
			}
		}
		deadline.Stop()
		p.flush(batch)
	}
}

// flush resolves one gathered batch, grouping by KEM (a server runtime
// only ever submits one, so the common case is a single group) and running
// each group through kem.EncapsulateBatch — the multi-sponge path for
// schemes that have one, sequential otherwise.
func (p *EncapPool) flush(batch []*encapJob) {
	groups := make(map[string][]*encapJob, 1)
	for _, j := range batch {
		groups[j.k.Name()] = append(groups[j.k.Name()], j)
	}
	for _, g := range groups {
		if len(g) == 1 {
			j := g[0]
			j.ct, j.ss, j.err = j.k.Encapsulate(rand.Reader, j.pub)
			p.account(1, j.err != nil)
			close(j.done)
			continue
		}
		pubs := make([][]byte, len(g))
		for i, j := range g {
			pubs[i] = j.pub
		}
		cts, sss, err := kem.EncapsulateBatch(g[0].k, rand.Reader, pubs)
		if err != nil {
			// A batch error names no item; fall back to per-item
			// encapsulation so one malformed share cannot fail its batchmates.
			for _, j := range g {
				j.ct, j.ss, j.err = j.k.Encapsulate(rand.Reader, j.pub)
				p.account(1, j.err != nil)
				close(j.done)
			}
			continue
		}
		p.batches.Add(1)
		p.batched.Add(uint64(len(g)))
		for i, j := range g {
			j.ct, j.ss = cts[i], sss[i]
			p.account(1, false)
			close(j.done)
		}
	}
}

func (p *EncapPool) account(n uint64, failed bool) {
	p.encaps.Add(n)
	if failed {
		p.errs.Add(n)
	}
}

// Close stops accepting work, lets the workers drain everything already
// queued, and waits for them to exit. Futures submitted before Close all
// resolve; Encapsulate afterwards runs inline. Idempotent.
func (p *EncapPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// EncapPoolStats is a snapshot of a pool's counters.
type EncapPoolStats struct {
	Encaps  uint64 // encapsulations produced (batched + inline)
	Batches uint64 // EncapsulateBatch calls issued
	Batched uint64 // encapsulations that went through a batched call
	Errors  uint64 // encapsulation errors propagated to handshakes
	Depth   int    // jobs currently queued (not yet picked up)
}

// Stats returns a point-in-time snapshot.
func (p *EncapPool) Stats() EncapPoolStats {
	return EncapPoolStats{
		Encaps:  p.encaps.Load(),
		Batches: p.batches.Load(),
		Batched: p.batched.Load(),
		Errors:  p.errs.Load(),
		Depth:   len(p.jobs),
	}
}

// compile-time hook check
var _ tls13.Encapsulator = (*EncapPool)(nil)
