package live_test

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/tls13"
)

// TestShardedServe drives concurrent full + resumed handshakes against a
// multi-shard runtime: connections land on different shards, tickets issued
// on one shard resume on another (one shared store), and the merged
// counters account for every handshake exactly once.
func TestShardedServe(t *testing.T) {
	creds, err := harness.CredentialsFor("ecdsa-p256", 1)
	if err != nil {
		t.Fatalf("credentials: %v", err)
	}
	srvCfg := &tls13.Config{
		KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example",
		Chain: creds.Chain, PrivateKey: creds.Priv, Buffer: tls13.BufferImmediate,
	}
	const shards = 3
	ss, err := live.ServeSharded("127.0.0.1:0", live.Options{
		Config: srvCfg, IssueTickets: true,
	}, shards)
	if err != nil {
		t.Fatalf("serve sharded: %v", err)
	}
	if got := ss.Shards(); got != shards {
		t.Fatalf("shards = %d, want %d", got, shards)
	}
	addr := ss.Addr().String()
	cliCfg := &tls13.Config{
		KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example", Roots: creds.Roots,
	}

	handshake := func(cfg *tls13.Config) (*tls13.Session, error) {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(30 * time.Second))
		cli, err := tls13.ClientHandshake(conn, cfg)
		if err != nil {
			return nil, err
		}
		flight, err := tls13.ReadRecord(conn)
		if err != nil {
			return nil, err
		}
		return cli.ProcessTicket([]tls13.Record{flight})
	}

	// A burst of concurrent full handshakes spread across the shards.
	const full = 12
	sessions := make([]*tls13.Session, full)
	var wg sync.WaitGroup
	errs := make([]error, full)
	for i := 0; i < full; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sessions[i], errs[i] = handshake(cliCfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("full handshake %d: %v", i, err)
		}
	}

	// Resume each ticket on a fresh connection; the kernel (or the shared
	// accept queue) is free to route it to any shard.
	for i, sess := range sessions {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		conn.SetDeadline(time.Now().Add(30 * time.Second))
		cfg := *cliCfg
		cfg.Session = sess
		cli, err := tls13.ClientHandshake(conn, &cfg)
		conn.Close()
		if err != nil {
			t.Fatalf("resumed handshake %d: %v", i, err)
		}
		if cli.ServerCert != nil {
			t.Fatalf("resumed handshake %d carried a certificate", i)
		}
	}

	if err := ss.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c := ss.Counters()
	if c.Completed != 2*full || c.Resumed != full {
		t.Errorf("counters: completed %d resumed %d, want %d/%d", c.Completed, c.Resumed, 2*full, full)
	}
	if c.FailedTotal() != 0 {
		t.Errorf("failures recorded: %v", c.Failed)
	}
	ts := ss.TicketStats()
	if ts.Issued != full || ts.Redeemed != full {
		t.Errorf("ticket stats %+v, want issued/redeemed %d/%d", ts, full, full)
	}
}

// stuckListener always fails Accept with a transient error, pinning the
// accept loop inside its backoff sleep.
type stuckListener struct {
	net.Listener
}

func (l *stuckListener) Accept() (net.Conn, error) { return nil, tempErr{} }

// TestShutdownMidBackoffNoLeak is the leak regression for Close racing the
// accept-retry sleep: Shutdown during the backoff window must return
// promptly and leave no runtime goroutines (accept loop, metrics listener)
// behind.
func TestShutdownMidBackoffNoLeak(t *testing.T) {
	creds, err := harness.CredentialsFor("ecdsa-p256", 1)
	if err != nil {
		t.Fatalf("credentials: %v", err)
	}
	cfg := &tls13.Config{
		KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example",
		Chain: creds.Chain, PrivateKey: creds.Priv,
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv, err := live.Serve(&stuckListener{Listener: inner}, live.Options{
			Config:      cfg,
			MetricsAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
		// Give the loop time to hit the error path and enter its backoff
		// sleep, then race Shutdown against it.
		time.Sleep(20 * time.Millisecond)
		done := make(chan error, 1)
		go func() { done <- srv.Shutdown(5 * time.Second) }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Shutdown hung while the accept loop was mid-backoff")
		}
		if srv.Counters().AcceptRetries == 0 {
			t.Error("test never reached the backoff path")
		}
	}
	// The accept-loop and metrics goroutines must all be gone; poll briefly
	// to let exiting goroutines park.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across Shutdown: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
