// Package live is the server half of the live measurement subsystem: a
// concurrent TLS 1.3 accept-loop runtime hardened the way a production
// front-end is. Where cmd/pqtls-server used to log.Fatal on the first
// transient Accept error and would happily leak a goroutine per stalled
// peer, this runtime retries Accept with exponential backoff, bounds
// concurrent handshakes with a limiter, puts a deadline on every
// connection, shares one session-ticket store across all connections so
// resumption works between them, classifies failures into counters, and
// drains gracefully on shutdown. The matching client side is
// internal/loadgen.
//
// All bookkeeping lives in an obs.Registry of atomic instruments, so a
// scrape endpoint (Options.MetricsAddr) can serve Prometheus text-format
// /metrics and /healthz without touching the accept path's mutex.
package live

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"pqtls/internal/obs"
	"pqtls/internal/sig"
	"pqtls/internal/tls13"
)

// readerPool recycles per-connection buffered readers: the record layer
// otherwise costs two read syscalls per record (header, body). A handshake
// is a handful of records, so batching them behind one 4 KiB buffer
// meaningfully cuts the syscall share of a loopback handshake.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4096) },
}

// bufferedConn reads through a pooled bufio.Reader and writes straight to
// the connection. The handshake protocol never leaves client bytes unread
// past the client Finished, so returning the reader to the pool after the
// handshake cannot swallow data.
type bufferedConn struct {
	r *bufio.Reader
	io.Writer
}

func (b bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

// Options configure a Server runtime.
type Options struct {
	// Config is the handshake template (suite, credentials, buffering).
	// The runtime copies it and installs a shared ticket store, so one
	// Options value can safely serve many runtimes.
	Config *tls13.Config
	// MaxConns bounds concurrently-handshaking connections (0 = 256).
	// Accept blocks once the bound is reached — backpressure instead of
	// unbounded goroutine growth.
	MaxConns int
	// HandshakeTimeout is the per-connection deadline covering the whole
	// handshake, including the ticket flight (0 = 10s). A stalled peer
	// costs one connection slot for at most this long.
	HandshakeTimeout time.Duration
	// IssueTickets sends a NewSessionTicket after every full handshake, so
	// clients can come back with PSK resumption. Resumed handshakes do not
	// mint further tickets.
	IssueTickets bool
	// Logf, when non-nil, receives operational log lines (accept retries,
	// handshake failures). Nil means silent.
	Logf func(format string, args ...any)
	// Registry, when non-nil, receives the runtime's metrics; nil gives the
	// runtime a private registry (still scrapeable via MetricsAddr).
	Registry *obs.Registry
	// MetricsAddr, when non-empty, starts an HTTP listener at this address
	// serving GET /metrics (Prometheus text format, version 0.0.4) and GET
	// /healthz (200 while serving, 503 once draining). Use ":0" for an
	// ephemeral port and read it back with (*Server).MetricsAddr.
	MetricsAddr string
	// PhaseMetrics additionally installs obs phase hooks on the handshake
	// config, filling pqtls_handshake_phase_seconds{phase=...} histograms
	// and pqtls_pubkey_ops_total{op,alg} counters.
	PhaseMetrics bool
	// SignWorkers, when positive, moves CertificateVerify signing onto a
	// SignPool of this many workers backed by a precomputed signing context
	// for Config.SigName/PrivateKey, so the per-key setup (Dilithium's
	// matrix expansion and secret NTTs) is paid once instead of per
	// handshake and at most SignWorkers signatures compete for CPU at a
	// time. 0 signs inline on the connection goroutine.
	SignWorkers int
	// SignQueue bounds the sign pool's pending jobs (0 = 4×SignWorkers). A
	// full queue blocks the submitting connection goroutine — backpressure,
	// not unbounded buffering.
	SignQueue int
	// EncapBatch, when positive, routes the handshake's KEM encapsulation
	// through an EncapPool that collects up to this many concurrent
	// encapsulations into one multi-sponge batch pass. 0 encapsulates
	// inline on the connection goroutine.
	EncapBatch int
	// EncapWorkers sets the encap pool's worker count (0 = 2). Only
	// meaningful with EncapBatch > 0.
	EncapWorkers int
	// WindowInterval, when > 0, additionally records every accept,
	// completion, and failure into a windowed Timeline at this interval,
	// stamped with wall-clock offsets from the runtime's start. The timeline
	// is readable mid-run via (*Server).Timeline (snapshot with Clone) and
	// feeds the run timeline artifacts.
	WindowInterval time.Duration
	// Timeline, when non-nil, receives the windowed events instead of a
	// freshly created timeline — ServeSharded passes one shared timeline to
	// every shard. Its interval wins over WindowInterval.
	Timeline *obs.Timeline
}

// Counters is a point-in-time snapshot of a runtime's bookkeeping. Every
// field is read from its own atomic instrument, so a snapshot taken while
// handshakes complete concurrently is torn at worst between fields, never
// within one — FailedTotal sums per-class atomics observed at one Load each.
type Counters struct {
	Accepted        uint64            // connections taken from the listener
	Completed       uint64            // handshakes finished (full + resumed)
	Resumed         uint64            // of Completed, PSK-resumed
	Failed          map[string]uint64 // failures by Classify class
	TicketIssueErrs uint64            // post-handshake ticket flights that failed
	AcceptRetries   uint64            // transient Accept errors survived
}

// FailedTotal sums the failure classes.
func (c Counters) FailedTotal() uint64 {
	var n uint64
	for _, v := range c.Failed {
		n += v
	}
	return n
}

// Metric family names the runtime registers.
const (
	MetricHandshakes      = "pqtls_handshakes_total"
	MetricAccepted        = "pqtls_connections_accepted_total"
	MetricAcceptRetries   = "pqtls_accept_retries_total"
	MetricTicketIssueErrs = "pqtls_ticket_issue_errors_total"
	MetricResumed         = "pqtls_handshakes_resumed_total"
	MetricInflight        = "pqtls_inflight_connections"
	MetricDraining        = "pqtls_draining"
	MetricHSDuration      = "pqtls_handshake_duration_seconds"
	MetricTicketsIssued   = "pqtls_tickets_issued_total"
	MetricTicketsRedeemed = "pqtls_tickets_redeemed_total"
	MetricTicketsRejected = "pqtls_tickets_rejected_total"
	MetricSignPoolSigns   = "pqtls_signpool_signs_total"
	MetricSignPoolErrs    = "pqtls_signpool_errors_total"
	MetricSignPoolDepth   = "pqtls_signpool_queue_depth"
	MetricEncapPoolOps    = "pqtls_encappool_encaps_total"
	MetricEncapPoolBatch  = "pqtls_encappool_batched_total"
	MetricEncapPoolErrs   = "pqtls_encappool_errors_total"
	MetricEncapPoolDepth  = "pqtls_encappool_queue_depth"
)

const handshakesHelp = "Handshake outcomes by result class (ok or a failure class)."

// Server is a running accept loop plus its in-flight connections.
type Server struct {
	ln       net.Listener
	opts     Options
	cfg      *tls13.Config
	sem      chan struct{}
	shutdown chan struct{}
	loopDone chan struct{}
	wg       sync.WaitGroup

	timeline *obs.Timeline // nil unless windowed telemetry is enabled
	start    time.Time     // timeline epoch

	reg           *obs.Registry
	accepted      *obs.Counter
	completed     *obs.Counter // pqtls_handshakes_total{result="ok"}
	resumed       *obs.Counter
	ticketErrs    *obs.Counter
	acceptRetries *obs.Counter
	inflight      *obs.Gauge
	draining      *obs.Gauge
	hsDur         *obs.LatencyHistogram

	signPool  *SignPool
	encapPool *EncapPool

	metricsLn   net.Listener
	httpSrv     *http.Server
	metricsDone chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	failed map[string]*obs.Counter // class -> pqtls_handshakes_total{result=class}
	closed bool
}

// Serve starts the accept loop on ln and returns immediately. The listener
// is owned by the returned Server; stop it with Shutdown.
func Serve(ln net.Listener, opts Options) (*Server, error) {
	if opts.Config == nil {
		return nil, errors.New("live: Options.Config is required")
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = 256
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 10 * time.Second
	}
	cfg := *opts.Config
	if cfg.Tickets == nil {
		// The shared store is what makes resumption work across
		// connections: every per-connection Server seals and redeems
		// through it.
		if cfg.TicketKey != nil {
			cfg.Tickets = tls13.NewTicketStore(*cfg.TicketKey)
		} else {
			store, err := tls13.NewRandomTicketStore()
			if err != nil {
				return nil, fmt.Errorf("live: ticket store: %w", err)
			}
			cfg.Tickets = store
		}
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if opts.PhaseMetrics {
		cfg.Hooks = tls13.MultiHooks(cfg.Hooks, obs.NewPhaseHooks(reg))
	}
	var signPool *SignPool
	if opts.SignWorkers > 0 {
		scheme, err := sig.ByName(cfg.SigName)
		if err != nil {
			return nil, fmt.Errorf("live: sign pool: %w", err)
		}
		signPool = NewSignPool(sig.NewSigner(scheme, cfg.PrivateKey), opts.SignWorkers, opts.SignQueue)
		cfg.Signer = signPool
	}
	var encapPool *EncapPool
	if opts.EncapBatch > 0 && cfg.Encapsulator == nil {
		workers := opts.EncapWorkers
		if workers <= 0 {
			workers = 2
		}
		encapPool = NewEncapPool(workers, opts.EncapBatch, 0)
		cfg.Encapsulator = encapPool
	}
	s := &Server{
		ln:        ln,
		opts:      opts,
		cfg:       &cfg,
		sem:       make(chan struct{}, opts.MaxConns),
		shutdown:  make(chan struct{}),
		loopDone:  make(chan struct{}),
		conns:     make(map[net.Conn]struct{}),
		failed:    make(map[string]*obs.Counter),
		reg:       reg,
		signPool:  signPool,
		encapPool: encapPool,
		start:     time.Now(),
	}
	switch {
	case opts.Timeline != nil:
		s.timeline = opts.Timeline
	case opts.WindowInterval > 0:
		s.timeline = obs.NewTimeline(opts.WindowInterval)
	}
	// Every family is registered up front so a scrape sees the full schema
	// before any traffic arrives.
	s.completed = reg.Counter(MetricHandshakes, handshakesHelp, "result", "ok")
	s.accepted = reg.Counter(MetricAccepted, "Connections taken from the listener.")
	s.acceptRetries = reg.Counter(MetricAcceptRetries, "Transient Accept errors survived.")
	s.ticketErrs = reg.Counter(MetricTicketIssueErrs, "Post-handshake ticket flights that failed.")
	s.resumed = reg.Counter(MetricResumed, "Completed handshakes that were PSK-resumed.")
	s.inflight = reg.Gauge(MetricInflight, "Connections currently handshaking.")
	s.draining = reg.Gauge(MetricDraining, "1 while the runtime is draining, else 0.")
	s.hsDur = reg.Histogram(MetricHSDuration, "Wall-clock duration of successful handshakes.")
	store := cfg.Tickets
	reg.CounterFunc(MetricTicketsIssued, "Tickets sealed into NewSessionTicket flights.",
		func() uint64 { return store.Stats().Issued })
	reg.CounterFunc(MetricTicketsRedeemed, "Presented tickets that decrypted and parsed.",
		func() uint64 { return store.Stats().Redeemed })
	reg.CounterFunc(MetricTicketsRejected, "Presented tickets that failed to open.",
		func() uint64 { return store.Stats().Rejected })
	if signPool != nil {
		reg.CounterFunc(MetricSignPoolSigns, "CertificateVerify signatures produced by the sign pool.",
			func() uint64 { return signPool.Stats().Signs })
		reg.CounterFunc(MetricSignPoolErrs, "Sign-pool signer errors propagated to handshakes.",
			func() uint64 { return signPool.Stats().Errors })
		reg.GaugeFunc(MetricSignPoolDepth, "Signing jobs queued but not yet picked up by a worker.",
			func() int64 { return int64(signPool.Stats().Depth) })
	}
	if encapPool != nil {
		reg.CounterFunc(MetricEncapPoolOps, "KEM encapsulations produced by the encap pool.",
			func() uint64 { return encapPool.Stats().Encaps })
		reg.CounterFunc(MetricEncapPoolBatch, "Encapsulations that went through a batched multi-sponge call.",
			func() uint64 { return encapPool.Stats().Batched })
		reg.CounterFunc(MetricEncapPoolErrs, "Encap-pool errors propagated to handshakes.",
			func() uint64 { return encapPool.Stats().Errors })
		reg.GaugeFunc(MetricEncapPoolDepth, "Encapsulation jobs queued but not yet picked up by a worker.",
			func() int64 { return int64(encapPool.Stats().Depth) })
	}

	if opts.MetricsAddr != "" {
		mln, err := net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("live: metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/healthz", s.healthz)
		s.metricsLn = mln
		s.httpSrv = &http.Server{Handler: mux}
		s.metricsDone = make(chan struct{})
		go func() {
			defer close(s.metricsDone)
			s.httpSrv.Serve(mln)
		}()
	}

	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// MetricsAddr returns the metrics listener's address, or nil when
// Options.MetricsAddr was empty.
func (s *Server) MetricsAddr() net.Addr {
	if s.metricsLn == nil {
		return nil
	}
	return s.metricsLn.Addr()
}

// Registry returns the registry the runtime records into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Timeline returns the runtime's windowed timeline, or nil when neither
// Options.WindowInterval nor Options.Timeline enabled one. Snapshot a live
// runtime with Clone before encoding.
func (s *Server) Timeline() *obs.Timeline { return s.timeline }

// TicketStats exposes the shared ticket store's counters.
func (s *Server) TicketStats() tls13.TicketStats { return s.cfg.Tickets.Stats() }

// healthz reports readiness: 200 while serving, 503 once draining.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Value() != 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// failedCounter returns the per-class failure counter, creating the series
// on first use.
func (s *Server) failedCounter(class string) *obs.Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.failed[class]
	if !ok {
		c = s.reg.Counter(MetricHandshakes, handshakesHelp, "result", class)
		s.failed[class] = c
	}
	return c
}

// Counters returns a snapshot of the runtime's counters. Each field is one
// atomic load, so no read can be torn by concurrent handshakes.
func (s *Server) Counters() Counters {
	out := Counters{
		Accepted:        s.accepted.Value(),
		Completed:       s.completed.Value(),
		Resumed:         s.resumed.Value(),
		TicketIssueErrs: s.ticketErrs.Value(),
		AcceptRetries:   s.acceptRetries.Value(),
		Failed:          make(map[string]uint64),
	}
	s.mu.Lock()
	classes := make(map[string]*obs.Counter, len(s.failed))
	for k, c := range s.failed {
		classes[k] = c
	}
	s.mu.Unlock()
	for k, c := range classes {
		out.Failed[k] = c.Value()
	}
	return out
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// acceptLoop accepts until the listener closes. Transient errors (EMFILE,
// ECONNABORTED, listener timeouts) back off exponentially instead of
// killing the server — the net/http.Server discipline.
func (s *Server) acceptLoop() {
	defer close(s.loopDone)
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff < time.Second {
				backoff *= 2
			}
			s.acceptRetries.Inc()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			s.logf("live: accept: %v; retrying in %v", err, backoff)
			// A stopped timer (not time.After) so a Shutdown racing the
			// backoff sleep doesn't strand a timer goroutine for up to a
			// second after the loop exits.
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-s.shutdown:
				t.Stop()
				return
			}
			continue
		}
		backoff = 0
		// Connection limiter: block further accepts while MaxConns
		// handshakes are in flight. Selectable against shutdown so a
		// saturated server still drains promptly.
		select {
		case s.sem <- struct{}{}:
		case <-s.shutdown:
			conn.Close()
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			<-s.sem
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.accepted.Inc()
		s.inflight.Add(1)
		go s.handle(conn)
	}
}

// handle runs one connection's handshake under its deadline.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() { <-s.sem }()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.inflight.Add(-1)
		conn.Close()
	}()

	// The deadline covers the whole exchange: a peer that stalls mid-flight
	// unblocks the read and frees the slot instead of leaking a goroutine.
	conn.SetDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	if s.timeline != nil {
		s.timeline.RecordStart(time.Since(s.start))
	}
	t0 := time.Now()
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(conn)
	defer func() {
		br.Reset(nil) // drop the conn reference before pooling
		readerPool.Put(br)
	}()
	srv, err := tls13.ServerHandshake(bufferedConn{r: br, Writer: conn}, s.cfg)
	if err != nil {
		class := Classify(err)
		s.failedCounter(class).Inc()
		if s.timeline != nil {
			s.timeline.RecordFailure(time.Since(s.start), class)
		}
		s.logf("live: %s: handshake failed (%s): %v", conn.RemoteAddr(), class, err)
		return
	}
	hsDur := time.Since(t0)
	s.hsDur.Observe(hsDur)
	resumed := srv.ResumedSession()
	s.completed.Inc()
	if resumed {
		s.resumed.Inc()
	}
	if s.timeline != nil {
		s.timeline.RecordComplete(time.Since(s.start), hsDur, resumed, false)
	}

	if s.opts.IssueTickets && !resumed {
		flight, _, err := srv.SessionTicket()
		if err == nil {
			err = tls13.WriteRecords(conn, flight)
		}
		if err != nil {
			// Not a handshake failure: the handshake itself completed; the
			// client may simply have closed before the ticket landed.
			s.ticketErrs.Inc()
		}
	}
}

// Shutdown drains the runtime: it stops accepting, waits up to grace for
// in-flight handshakes to finish, then force-closes stragglers. It returns
// nil on a clean drain and an error naming the connections it had to cut.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.shutdown)
	}
	s.mu.Unlock()
	s.draining.Set(1)
	s.ln.Close()
	<-s.loopDone // no wg.Add can race the Wait below once the loop exited

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	err := func() error {
		select {
		case <-done:
			return nil
		case <-time.After(grace):
			s.mu.Lock()
			n := len(s.conns)
			for conn := range s.conns {
				conn.Close()
			}
			s.mu.Unlock()
			<-done
			return fmt.Errorf("live: drain timed out after %v; force-closed %d in-flight connections", grace, n)
		}
	}()
	if s.signPool != nil {
		// After the drain no connection goroutine can submit new work; the
		// pool finishes whatever is still queued and its workers exit.
		s.signPool.Close()
	}
	if s.encapPool != nil {
		s.encapPool.Close()
	}
	if s.httpSrv != nil {
		// Close the listener and wait for the Serve goroutine to return, so
		// a Shutdown caller observes no runtime goroutines left behind.
		s.httpSrv.Close()
		<-s.metricsDone
	}
	return err
}

// SignPoolStats returns the sign pool's counters, or a zero snapshot when
// Options.SignWorkers was 0.
func (s *Server) SignPoolStats() SignPoolStats {
	if s.signPool == nil {
		return SignPoolStats{}
	}
	return s.signPool.Stats()
}

// EncapPoolStats returns the encap pool's counters, or a zero snapshot when
// Options.EncapBatch was 0.
func (s *Server) EncapPoolStats() EncapPoolStats {
	if s.encapPool == nil {
		return EncapPoolStats{}
	}
	return s.encapPool.Stats()
}
