// Package live is the server half of the live measurement subsystem: a
// concurrent TLS 1.3 accept-loop runtime hardened the way a production
// front-end is. Where cmd/pqtls-server used to log.Fatal on the first
// transient Accept error and would happily leak a goroutine per stalled
// peer, this runtime retries Accept with exponential backoff, bounds
// concurrent handshakes with a limiter, puts a deadline on every
// connection, shares one session-ticket store across all connections so
// resumption works between them, classifies failures into counters, and
// drains gracefully on shutdown. The matching client side is
// internal/loadgen.
package live

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pqtls/internal/tls13"
)

// Options configure a Server runtime.
type Options struct {
	// Config is the handshake template (suite, credentials, buffering).
	// The runtime copies it and installs a shared ticket store, so one
	// Options value can safely serve many runtimes.
	Config *tls13.Config
	// MaxConns bounds concurrently-handshaking connections (0 = 256).
	// Accept blocks once the bound is reached — backpressure instead of
	// unbounded goroutine growth.
	MaxConns int
	// HandshakeTimeout is the per-connection deadline covering the whole
	// handshake, including the ticket flight (0 = 10s). A stalled peer
	// costs one connection slot for at most this long.
	HandshakeTimeout time.Duration
	// IssueTickets sends a NewSessionTicket after every full handshake, so
	// clients can come back with PSK resumption. Resumed handshakes do not
	// mint further tickets.
	IssueTickets bool
	// Logf, when non-nil, receives operational log lines (accept retries,
	// handshake failures). Nil means silent.
	Logf func(format string, args ...any)
}

// Counters is a point-in-time snapshot of a runtime's bookkeeping.
type Counters struct {
	Accepted        uint64            // connections taken from the listener
	Completed       uint64            // handshakes finished (full + resumed)
	Resumed         uint64            // of Completed, PSK-resumed
	Failed          map[string]uint64 // failures by Classify class
	TicketIssueErrs uint64            // post-handshake ticket flights that failed
	AcceptRetries   uint64            // transient Accept errors survived
}

// FailedTotal sums the failure classes.
func (c Counters) FailedTotal() uint64 {
	var n uint64
	for _, v := range c.Failed {
		n += v
	}
	return n
}

// Server is a running accept loop plus its in-flight connections.
type Server struct {
	ln       net.Listener
	opts     Options
	cfg      *tls13.Config
	sem      chan struct{}
	shutdown chan struct{}
	loopDone chan struct{}
	wg       sync.WaitGroup

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	counters Counters
	closed   bool
}

// Serve starts the accept loop on ln and returns immediately. The listener
// is owned by the returned Server; stop it with Shutdown.
func Serve(ln net.Listener, opts Options) (*Server, error) {
	if opts.Config == nil {
		return nil, errors.New("live: Options.Config is required")
	}
	if opts.MaxConns <= 0 {
		opts.MaxConns = 256
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 10 * time.Second
	}
	cfg := *opts.Config
	if cfg.Tickets == nil {
		// The shared store is what makes resumption work across
		// connections: every per-connection Server seals and redeems
		// through it.
		if cfg.TicketKey != nil {
			cfg.Tickets = tls13.NewTicketStore(*cfg.TicketKey)
		} else {
			store, err := tls13.NewRandomTicketStore()
			if err != nil {
				return nil, fmt.Errorf("live: ticket store: %w", err)
			}
			cfg.Tickets = store
		}
	}
	s := &Server{
		ln:       ln,
		opts:     opts,
		cfg:      &cfg,
		sem:      make(chan struct{}, opts.MaxConns),
		shutdown: make(chan struct{}),
		loopDone: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}
	s.counters.Failed = make(map[string]uint64)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's address (useful with ":0" listeners).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// TicketStats exposes the shared ticket store's counters.
func (s *Server) TicketStats() tls13.TicketStats { return s.cfg.Tickets.Stats() }

// Counters returns a snapshot of the runtime's counters.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.counters
	out.Failed = make(map[string]uint64, len(s.counters.Failed))
	for k, v := range s.counters.Failed {
		out.Failed[k] = v
	}
	return out
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// acceptLoop accepts until the listener closes. Transient errors (EMFILE,
// ECONNABORTED, listener timeouts) back off exponentially instead of
// killing the server — the net/http.Server discipline.
func (s *Server) acceptLoop() {
	defer close(s.loopDone)
	var backoff time.Duration
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff < time.Second {
				backoff *= 2
			}
			s.mu.Lock()
			s.counters.AcceptRetries++
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			s.logf("live: accept: %v; retrying in %v", err, backoff)
			select {
			case <-time.After(backoff):
			case <-s.shutdown:
				return
			}
			continue
		}
		backoff = 0
		// Connection limiter: block further accepts while MaxConns
		// handshakes are in flight. Selectable against shutdown so a
		// saturated server still drains promptly.
		select {
		case s.sem <- struct{}{}:
		case <-s.shutdown:
			conn.Close()
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			<-s.sem
			conn.Close()
			return
		}
		s.counters.Accepted++
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// handle runs one connection's handshake under its deadline.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() { <-s.sem }()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// The deadline covers the whole exchange: a peer that stalls mid-flight
	// unblocks the read and frees the slot instead of leaking a goroutine.
	conn.SetDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	srv, err := tls13.ServerHandshake(conn, s.cfg)
	if err != nil {
		class := Classify(err)
		s.mu.Lock()
		s.counters.Failed[class]++
		s.mu.Unlock()
		s.logf("live: %s: handshake failed (%s): %v", conn.RemoteAddr(), class, err)
		return
	}
	resumed := srv.ResumedSession()
	s.mu.Lock()
	s.counters.Completed++
	if resumed {
		s.counters.Resumed++
	}
	s.mu.Unlock()

	if s.opts.IssueTickets && !resumed {
		flight, _, err := srv.SessionTicket()
		if err == nil {
			err = tls13.WriteRecords(conn, flight)
		}
		if err != nil {
			// Not a handshake failure: the handshake itself completed; the
			// client may simply have closed before the ticket landed.
			s.mu.Lock()
			s.counters.TicketIssueErrs++
			s.mu.Unlock()
		}
	}
}

// Shutdown drains the runtime: it stops accepting, waits up to grace for
// in-flight handshakes to finish, then force-closes stragglers. It returns
// nil on a clean drain and an error naming the connections it had to cut.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.shutdown)
	}
	s.mu.Unlock()
	s.ln.Close()
	<-s.loopDone // no wg.Add can race the Wait below once the loop exited

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(grace):
		s.mu.Lock()
		n := len(s.conns)
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("live: drain timed out after %v; force-closed %d in-flight connections", grace, n)
	}
}
