package live

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"

	"pqtls/internal/tls13"
)

// Error classes for the subsystem's counters. Both halves of the live
// measurement path (this server runtime and the loadgen client pool) bucket
// failures through Classify, so a report's server- and client-side error
// tables speak the same vocabulary.
const (
	ClassTimeout    = "timeout"    // handshake deadline or I/O timeout hit
	ClassDisconnect = "disconnect" // peer vanished: EOF, reset, broken pipe
	ClassAlert      = "alert"      // peer aborted with a TLS alert
	ClassProtocol   = "protocol"   // everything else (bad records, bad config)
)

// Classify maps a handshake error to its counter class.
func Classify(err error) string {
	var alert *tls13.AlertError
	var ne net.Error
	switch {
	case errors.As(err, &alert):
		return ClassAlert
	case errors.Is(err, os.ErrDeadlineExceeded):
		return ClassTimeout
	case errors.As(err, &ne) && ne.Timeout():
		return ClassTimeout
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return ClassDisconnect
	default:
		return ClassProtocol
	}
}
