package live

import (
	"errors"
	"sync"
	"sync/atomic"

	"pqtls/internal/sig"
)

// ErrSignPoolClosed is returned by Submit/Sign after Close.
var ErrSignPoolClosed = errors.New("live: sign pool closed")

// SignPool runs CertificateVerify signatures on a fixed set of worker
// goroutines instead of the connection goroutine that asked for them. On a
// server the PQ sign is by far the largest single compute block in the
// handshake (Dilithium3's rejection loop runs ~3ms), so pulling it off the
// accept path bounds how much signing work the limiter's MaxConns
// connections can pile onto the scheduler at once: at most `workers`
// signatures make progress, the rest queue. The queue is bounded too — a
// full queue blocks Submit, which backpressures the connection goroutine
// exactly like a saturated CPU would, but without the goroutine-thrash.
//
// SignPool itself implements sig.Signer, so it plugs directly into
// tls13.Config.Signer.
type SignPool struct {
	signer sig.Signer
	jobs   chan *SignFuture
	wg     sync.WaitGroup

	signs atomic.Uint64
	errs  atomic.Uint64

	mu     sync.RWMutex
	closed bool
}

// SignFuture is a pending signature. Wait blocks until a worker has
// produced the result.
type SignFuture struct {
	msg  []byte
	done chan struct{}
	sig  []byte
	err  error
}

// Wait blocks until the signature is ready and returns it.
func (f *SignFuture) Wait() ([]byte, error) {
	<-f.done
	return f.sig, f.err
}

// NewSignPool starts workers goroutines signing with signer. queue bounds
// pending jobs (0 = 4×workers). The signer must be safe for concurrent use
// — sig.NewSigner contexts and raw schemes both are.
func NewSignPool(signer sig.Signer, workers, queue int) *SignPool {
	if workers <= 0 {
		workers = 1
	}
	if queue <= 0 {
		queue = 4 * workers
	}
	p := &SignPool{signer: signer, jobs: make(chan *SignFuture, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *SignPool) worker() {
	defer p.wg.Done()
	for f := range p.jobs {
		f.sig, f.err = p.signer.Sign(f.msg)
		if f.err != nil {
			p.errs.Add(1)
		} else {
			p.signs.Add(1)
		}
		close(f.done)
	}
}

// Submit enqueues msg for signing and returns its future. Submit blocks
// while the queue is full (backpressure); after Close it returns a future
// already resolved to ErrSignPoolClosed.
func (p *SignPool) Submit(msg []byte) *SignFuture {
	f := &SignFuture{msg: msg, done: make(chan struct{})}
	// The send happens under the read lock so Close's write lock cannot
	// close(p.jobs) between the closed check and the send. Blocking on a
	// full queue while holding the read lock is fine: workers keep
	// draining, and Close simply waits its turn behind the senders.
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		f.err = ErrSignPoolClosed
		close(f.done)
		return f
	}
	p.jobs <- f
	p.mu.RUnlock()
	return f
}

// Sign implements sig.Signer: Submit then Wait. A connection goroutine
// calling through tls13.Config.Signer parks here while a worker signs.
func (p *SignPool) Sign(msg []byte) ([]byte, error) {
	return p.Submit(msg).Wait()
}

// Close stops accepting work, lets the workers drain everything already
// queued, and waits for them to exit. Futures submitted before Close all
// resolve; Submit afterwards fails fast. Idempotent.
func (p *SignPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// SignPoolStats is a snapshot of a pool's counters.
type SignPoolStats struct {
	Signs  uint64 // signatures produced
	Errors uint64 // signer errors propagated to futures
	Depth  int    // jobs currently queued (not yet picked up)
}

// Stats returns a point-in-time snapshot.
func (p *SignPool) Stats() SignPoolStats {
	return SignPoolStats{
		Signs:  p.signs.Load(),
		Errors: p.errs.Load(),
		Depth:  len(p.jobs),
	}
}
