//go:build !linux

package live

import (
	"errors"
	"net"
)

// Without SO_REUSEPORT the sharded runtime falls back to N accept
// goroutines fanning out from one shared listener.
const reusePortAvailable = false

func listenReusePort(string) (net.Listener, error) {
	return nil, errors.ErrUnsupported
}
