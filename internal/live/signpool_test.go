package live_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pqtls/internal/live"
	"pqtls/internal/sig"
)

// TestSignPoolConcurrent pushes 120 concurrent Sign calls through a
// 4-worker pool and checks every signature verifies and — Dilithium
// signing being deterministic — is byte-identical to a direct one-shot
// sign of the same message. Run under -race by `make race`.
func TestSignPoolConcurrent(t *testing.T) {
	scheme := sig.MustByName("dilithium2")
	pub, priv, err := scheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := live.NewSignPool(sig.NewSigner(scheme, priv), 4, 8)
	defer pool.Close()

	const calls = 120
	sigs := make([][]byte, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := pool.Sign([]byte(fmt.Sprintf("transcript %d", i%10)))
			if err != nil {
				t.Errorf("sign %d: %v", i, err)
				return
			}
			sigs[i] = s
		}(i)
	}
	wg.Wait()

	for i := 0; i < calls; i++ {
		msg := []byte(fmt.Sprintf("transcript %d", i%10))
		if !scheme.Verify(pub, msg, sigs[i]) {
			t.Fatalf("pool signature %d does not verify", i)
		}
		direct, err := scheme.Sign(priv, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct, sigs[i]) {
			t.Fatalf("pool signature %d differs from direct deterministic sign", i)
		}
	}
	if st := pool.Stats(); st.Signs != calls || st.Errors != 0 {
		t.Fatalf("stats %+v, want %d signs and no errors", st, calls)
	}
}

// TestSignPoolFutures exercises the Submit/Wait split directly: futures
// submitted back-to-back all resolve independently, in any order.
func TestSignPoolFutures(t *testing.T) {
	scheme := sig.MustByName("ecdsa-p256")
	pub, priv, err := scheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := live.NewSignPool(sig.NewSigner(scheme, priv), 2, 2)
	defer pool.Close()

	futures := make([]*live.SignFuture, 16)
	for i := range futures {
		futures[i] = pool.Submit([]byte{byte(i)})
	}
	for i := len(futures) - 1; i >= 0; i-- { // reverse order: completion != wait order
		s, err := futures[i].Wait()
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if !scheme.Verify(pub, []byte{byte(i)}, s) {
			t.Fatalf("future %d signature invalid", i)
		}
	}
}

// TestSignPoolClose checks the shutdown contract: Close drains queued work
// (futures submitted before Close resolve with real signatures), later
// Submits fail fast with ErrSignPoolClosed, and Close is idempotent.
func TestSignPoolClose(t *testing.T) {
	scheme := sig.MustByName("ecdsa-p256")
	pub, priv, err := scheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := live.NewSignPool(sig.NewSigner(scheme, priv), 1, 8)
	var futures []*live.SignFuture
	for i := 0; i < 6; i++ {
		futures = append(futures, pool.Submit([]byte{byte(i)}))
	}
	pool.Close()
	for i, f := range futures {
		s, err := f.Wait()
		if err != nil {
			t.Fatalf("pre-Close future %d lost: %v", i, err)
		}
		if !scheme.Verify(pub, []byte{byte(i)}, s) {
			t.Fatalf("pre-Close future %d signature invalid", i)
		}
	}
	if _, err := pool.Sign([]byte("late")); !errors.Is(err, live.ErrSignPoolClosed) {
		t.Fatalf("post-Close Sign error = %v, want ErrSignPoolClosed", err)
	}
	pool.Close() // idempotent
}

// TestSignPoolErrorPropagation wires a failing signer and checks the error
// reaches the future and the error counter, without wedging the workers.
func TestSignPoolErrorPropagation(t *testing.T) {
	pool := live.NewSignPool(failingSigner{}, 2, 2)
	defer pool.Close()
	for i := 0; i < 8; i++ {
		if _, err := pool.Sign([]byte("x")); err == nil || err.Error() != "synthetic signer failure" {
			t.Fatalf("call %d: error = %v, want synthetic failure", i, err)
		}
	}
	if st := pool.Stats(); st.Errors != 8 || st.Signs != 0 {
		t.Fatalf("stats %+v, want 8 errors and no signs", st)
	}
}

type failingSigner struct{}

func (failingSigner) Sign([]byte) ([]byte, error) {
	return nil, errors.New("synthetic signer failure")
}
