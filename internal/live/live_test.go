package live_test

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/loadgen"
	"pqtls/internal/tls13"
)

// startServer boots a live runtime for one suite on a loopback listener and
// returns it with the matching client template.
func startServer(t *testing.T, kem, sig string, opts live.Options) (*live.Server, *tls13.Config) {
	t.Helper()
	creds, err := harness.CredentialsFor(sig, 1)
	if err != nil {
		t.Fatalf("credentials: %v", err)
	}
	opts.Config = &tls13.Config{
		KEMName: kem, SigName: sig, ServerName: "server.example",
		Chain: creds.Chain, PrivateKey: creds.Priv, Buffer: tls13.BufferImmediate,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv, err := live.Serve(ln, opts)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	cliCfg := &tls13.Config{
		KEMName: kem, SigName: sig, ServerName: "server.example", Roots: creds.Roots,
	}
	return srv, cliCfg
}

// TestLoopbackFullAndResumed is the subsystem's end-to-end contract over
// real sockets (not tls13 pipes): a full handshake completes, its ticket —
// sealed by the shared store on one connection — resumes the session on a
// second connection, and the counters record all of it. One classical and
// one post-quantum suite.
func TestLoopbackFullAndResumed(t *testing.T) {
	suites := []struct{ kem, sig string }{
		{"x25519", "ecdsa-p256"},
		{"kyber768", "dilithium3"},
	}
	for _, suite := range suites {
		t.Run(suite.kem+"_"+suite.sig, func(t *testing.T) {
			srv, cliCfg := startServer(t, suite.kem, suite.sig, live.Options{IssueTickets: true})
			addr := srv.Addr().String()

			// Full handshake on connection 1, collecting the ticket.
			sess, err := loadgen.Prime(addr, cliCfg, 5*time.Second, 30*time.Second)
			if err != nil {
				t.Fatalf("full handshake: %v", err)
			}
			if sess.KEMName != suite.kem {
				t.Errorf("session bound to %q, want %q", sess.KEMName, suite.kem)
			}

			// Resumed handshake on a brand-new TCP connection.
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(30 * time.Second))
			cfg := *cliCfg
			cfg.Session = sess
			cli, err := tls13.ClientHandshake(conn, &cfg)
			if err != nil {
				t.Fatalf("resumed handshake: %v", err)
			}
			if !cli.Done() {
				t.Fatal("resumed client not done")
			}
			if cli.ServerCert != nil {
				t.Error("resumed handshake carried a certificate; expected the PSK flow")
			}

			if err := srv.Shutdown(10 * time.Second); err != nil {
				t.Fatalf("drain: %v", err)
			}
			c := srv.Counters()
			if c.Completed != 2 || c.Resumed != 1 {
				t.Errorf("counters: completed %d resumed %d, want 2/1", c.Completed, c.Resumed)
			}
			if c.FailedTotal() != 0 {
				t.Errorf("failures recorded: %v", c.Failed)
			}
			ts := srv.TicketStats()
			if ts.Issued != 1 || ts.Redeemed != 1 || ts.Rejected != 0 {
				t.Errorf("ticket stats %+v, want issued/redeemed 1/1, rejected 0", ts)
			}
		})
	}
}

// TestServerTimeline pins the runtime's windowed telemetry: with
// WindowInterval set, every accept and completion lands in the timeline,
// totals agree with the counters, and resumption is classified.
func TestServerTimeline(t *testing.T) {
	srv, cliCfg := startServer(t, "x25519", "ecdsa-p256", live.Options{
		IssueTickets:   true,
		WindowInterval: 100 * time.Millisecond,
	})
	addr := srv.Addr().String()
	sess, err := loadgen.Prime(addr, cliCfg, 5*time.Second, 30*time.Second)
	if err != nil {
		t.Fatalf("full handshake: %v", err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	cfg := *cliCfg
	cfg.Session = sess
	if _, err := tls13.ClientHandshake(conn, &cfg); err != nil {
		t.Fatalf("resumed handshake: %v", err)
	}
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tl := srv.Timeline()
	if tl == nil {
		t.Fatal("no timeline despite WindowInterval")
	}
	tot := tl.Totals()
	c := srv.Counters()
	if tot.Started != c.Accepted || tot.Completed != c.Completed {
		t.Errorf("timeline started/completed %d/%d, counters %d/%d",
			tot.Started, tot.Completed, c.Accepted, c.Completed)
	}
	if tot.Resumed != c.Resumed {
		t.Errorf("timeline resumed %d, counters %d", tot.Resumed, c.Resumed)
	}
	if tot.Failed != 0 || tot.Hist.Count() != tot.Completed {
		t.Errorf("timeline failed %d, histogram %d of %d completions",
			tot.Failed, tot.Hist.Count(), tot.Completed)
	}
}

// TestHandshakeDeadline verifies a stalled peer cannot hold a connection
// slot: the server's per-connection deadline fires and the failure is
// classified as a timeout.
func TestHandshakeDeadline(t *testing.T) {
	srv, _ := startServer(t, "x25519", "ecdsa-p256", live.Options{
		HandshakeTimeout: 150 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Send nothing: the server is stuck reading the ClientHello.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Counters().Failed[live.ClassTimeout] > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Counters().Failed[live.ClassTimeout]; got != 1 {
		t.Fatalf("timeout failures = %d, want 1", got)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// flakyListener fails its first Accept calls with a transient net.Error —
// the condition that used to log.Fatal the old accept loop.
type flakyListener struct {
	net.Listener
	mu        sync.Mutex
	failsLeft int
}

type tempErr struct{}

func (tempErr) Error() string   { return "synthetic transient accept error" }
func (tempErr) Timeout() bool   { return true }
func (tempErr) Temporary() bool { return true }

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.failsLeft > 0 {
		l.failsLeft--
		l.mu.Unlock()
		return nil, tempErr{}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestAcceptBackoff verifies transient Accept errors are survived with
// backoff: the loop keeps serving and counts the retries.
func TestAcceptBackoff(t *testing.T) {
	creds, err := harness.CredentialsFor("ecdsa-p256", 1)
	if err != nil {
		t.Fatalf("credentials: %v", err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	var logs strings.Builder
	var logMu sync.Mutex
	srv, err := live.Serve(&flakyListener{Listener: inner, failsLeft: 2}, live.Options{
		Config: &tls13.Config{
			KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example",
			Chain: creds.Chain, PrivateKey: creds.Priv,
		},
		Logf: func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			logs.WriteString(format)
		},
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The two synthetic failures burn ~15ms of backoff, then real accepts
	// resume and this handshake goes through.
	cliCfg := &tls13.Config{
		KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example", Roots: creds.Roots,
	}
	conn, err := net.DialTimeout("tcp", inner.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := tls13.ClientHandshake(conn, cliCfg); err != nil {
		t.Fatalf("handshake after transient accept errors: %v", err)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c := srv.Counters()
	if c.AcceptRetries != 2 {
		t.Errorf("accept retries = %d, want 2", c.AcceptRetries)
	}
	if c.Completed != 1 {
		t.Errorf("completed = %d, want 1", c.Completed)
	}
	logMu.Lock()
	defer logMu.Unlock()
	if !strings.Contains(logs.String(), "retrying") {
		t.Error("accept retry was not logged")
	}
}

// TestShutdownIdempotent checks Shutdown can be called twice without
// deadlocking or panicking, and that it closes the listener.
func TestShutdownIdempotent(t *testing.T) {
	srv, _ := startServer(t, "x25519", "ecdsa-p256", live.Options{})
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if conn, err := net.DialTimeout("tcp", srv.Addr().String(), 500*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listener still accepting after shutdown")
	}
}

// TestStoreSharedAcrossRuntimes checks the ticket-store plumbing end to
// end: two separate runtimes constructed over the same TicketKey resume
// each other's sessions, the property a multi-instance deployment needs.
func TestStoreSharedAcrossRuntimes(t *testing.T) {
	key := [16]byte{'s', 'h', 'a', 'r', 'e', 'd', '-', 's', 't', 'e', 'k', '-', 't', 'e', 's', 't'}
	creds, err := harness.CredentialsFor("ecdsa-p256", 1)
	if err != nil {
		t.Fatalf("credentials: %v", err)
	}
	mk := func() *live.Server {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv, err := live.Serve(ln, live.Options{
			Config: &tls13.Config{
				KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example",
				Chain: creds.Chain, PrivateKey: creds.Priv, TicketKey: &key,
			},
			IssueTickets: true,
		})
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
		return srv
	}
	srvA, srvB := mk(), mk()
	defer srvA.Shutdown(5 * time.Second)
	defer srvB.Shutdown(5 * time.Second)

	cliCfg := &tls13.Config{
		KEMName: "x25519", SigName: "ecdsa-p256", ServerName: "server.example", Roots: creds.Roots,
	}
	sess, err := loadgen.Prime(srvA.Addr().String(), cliCfg, 5*time.Second, 30*time.Second)
	if err != nil {
		t.Fatalf("priming on A: %v", err)
	}
	conn, err := net.Dial("tcp", srvB.Addr().String())
	if err != nil {
		t.Fatalf("dial B: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	cfg := *cliCfg
	cfg.Session = sess
	cli, err := tls13.ClientHandshake(conn, &cfg)
	if err != nil {
		t.Fatalf("ticket from A did not resume on B: %v", err)
	}
	if cli.ServerCert != nil {
		t.Error("handshake on B carried a certificate; expected the PSK flow")
	}
	// The client returns once its Finished is written; drain B so its
	// counters reflect the completed handshake before asserting.
	if err := srvB.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("drain B: %v", err)
	}
	if got := srvB.Counters(); got.Resumed != 1 {
		t.Errorf("B resumed = %d, want 1", got.Resumed)
	}
}

// TestConcurrentSnapshots hammers the runtime with handshakes while
// continuously taking Counters snapshots and scraping the registry: under
// -race this proves no snapshot can observe a torn read (the old
// mutex-copied struct let FailedTotal race the map copy).
func TestConcurrentSnapshots(t *testing.T) {
	srv, cliCfg := startServer(t, "x25519", "ecdsa-p256", live.Options{
		IssueTickets: true,
		MetricsAddr:  "127.0.0.1:0",
		PhaseMetrics: true,
	})
	addr := srv.Addr().String()

	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(2)
	go func() { // snapshot reader
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := srv.Counters()
			if c.FailedTotal() > c.Accepted {
				t.Error("snapshot inconsistency: more failures than accepts")
				return
			}
		}
	}()
	go func() { // registry scraper
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := srv.Registry().WriteText(&sb); err != nil {
				t.Errorf("WriteText: %v", err)
				return
			}
		}
	}()

	const clients = 8
	var hsWG sync.WaitGroup
	for i := 0; i < clients; i++ {
		hsWG.Add(1)
		go func() {
			defer hsWG.Done()
			for j := 0; j < 4; j++ {
				if _, err := loadgen.Prime(addr, cliCfg, 5*time.Second, 30*time.Second); err != nil {
					t.Errorf("handshake: %v", err)
					return
				}
			}
		}()
	}
	hsWG.Wait()
	close(stop)
	snapWG.Wait()

	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	c := srv.Counters()
	if want := uint64(clients * 4); c.Completed != want {
		t.Errorf("completed %d, want %d", c.Completed, want)
	}
	var sb strings.Builder
	if err := srv.Registry().WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, family := range []string{
		live.MetricHandshakes, live.MetricInflight, live.MetricDraining,
		live.MetricHSDuration, live.MetricTicketsIssued,
	} {
		if !strings.Contains(sb.String(), "# TYPE "+family+" ") {
			t.Errorf("exposition missing family %s", family)
		}
	}
	if !strings.Contains(sb.String(), live.MetricDraining+" 1") {
		t.Errorf("draining gauge not set after Shutdown:\n%s", sb.String())
	}
}
