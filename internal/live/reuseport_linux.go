//go:build linux

package live

import (
	"context"
	"net"
	"syscall"
)

// reusePortAvailable gates the per-shard-listener accept path: on Linux,
// SO_REUSEPORT lets every shard bind its own listener on one address and
// the kernel hash connections across them, removing the single accept
// queue from the hot path.
const reusePortAvailable = true

// soReusePort is SO_REUSEPORT (15 on every Linux architecture); the syscall
// package predates the option and never exported it.
const soReusePort = 0xf

// listenReusePort binds a TCP listener with SO_REUSEPORT set, so several
// listeners can share one address.
func listenReusePort(addr string) (net.Listener, error) {
	lc := net.ListenConfig{
		Control: func(_, _ string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	return lc.Listen(context.Background(), "tcp", addr)
}
