// Package stats provides the summary statistics used by the measurement
// harness (the paper reports medians over 60-second campaigns).
package stats

import (
	"math"
	"sort"
	"time"
)

// Median returns the median of xs (0 for empty input).
func Median(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	s := append([]time.Duration{}, xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs under the
// nearest-rank definition: the smallest element whose cumulative relative
// frequency is >= q, i.e. the ceil(q*n)-th smallest. q = 0 maps to the
// minimum and q = 1 to the maximum; empty input yields 0. Nearest-rank
// always returns an element of the sample (no interpolation), matching the
// paper's percentile tooling.
func Quantile(xs []time.Duration, q float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	s := append([]time.Duration{}, xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q * float64(len(s)))) // 1-indexed nearest rank
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// Quantiles returns the nearest-rank quantiles for each q in qs, sorting
// the sample once (each Quantile call sorts a private copy, which a
// p50/p95/p99 report would otherwise pay three times).
func Quantiles(xs []time.Duration, qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if len(xs) == 0 {
		return out
	}
	s := append([]time.Duration{}, xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, q := range qs {
		rank := int(math.Ceil(q * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(s) {
			rank = len(s)
		}
		out[i] = s[rank-1]
	}
	return out
}

// Mean returns the arithmetic mean.
func Mean(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return sum / time.Duration(len(xs))
}

// MinMax returns the extremes.
func MinMax(xs []time.Duration) (min, max time.Duration) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
