package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMedian(t *testing.T) {
	t.Parallel()
	if Median(nil) != 0 {
		t.Error("median of empty input not 0")
	}
	if m := Median([]time.Duration{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v, want 2", m)
	}
	if m := Median([]time.Duration{4, 1, 3, 2}); m != 2 {
		t.Errorf("median even = %v, want 2 (midpoint of 2,3 = 2.5 truncated)", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	t.Parallel()
	xs := []time.Duration{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()
	xs := []time.Duration{10, 20, 30, 40, 50}
	if q := Quantile(xs, 0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 50 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 30 {
		t.Errorf("q0.5 = %v", q)
	}
}

func TestMeanMinMax(t *testing.T) {
	t.Parallel()
	xs := []time.Duration{10, 20, 60}
	if m := Mean(xs); m != 30 {
		t.Errorf("mean = %v", m)
	}
	lo, hi := MinMax(xs)
	if lo != 10 || hi != 60 {
		t.Errorf("minmax = %v %v", lo, hi)
	}
	if m := Mean(nil); m != 0 {
		t.Error("mean of empty not 0")
	}
}

// Property: the median is bounded by the extremes and at least half the
// elements are <= it.
func TestQuickMedianProperties(t *testing.T) {
	t.Parallel()
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]time.Duration, len(raw))
		for i, r := range raw {
			xs[i] = time.Duration(r)
		}
		m := Median(xs)
		lo, hi := MinMax(xs)
		if m < lo || m > hi {
			return false
		}
		below := 0
		for _, x := range xs {
			if x <= m {
				below++
			}
		}
		return below*2 >= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
