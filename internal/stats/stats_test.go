package stats

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMedian(t *testing.T) {
	t.Parallel()
	if Median(nil) != 0 {
		t.Error("median of empty input not 0")
	}
	if m := Median([]time.Duration{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v, want 2", m)
	}
	if m := Median([]time.Duration{4, 1, 3, 2}); m != 2 {
		t.Errorf("median even = %v, want 2 (midpoint of 2,3 = 2.5 truncated)", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	t.Parallel()
	xs := []time.Duration{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()
	xs := []time.Duration{10, 20, 30, 40, 50}
	if q := Quantile(xs, 0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 50 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 30 {
		t.Errorf("q0.5 = %v", q)
	}
}

// Nearest-rank pins: the ceil(q*n)-th smallest element, per the paper's
// percentile tooling, for n=1 and even/odd n.
func TestQuantileNearestRank(t *testing.T) {
	t.Parallel()
	hundred := make([]time.Duration, 100)
	for i := range hundred {
		hundred[i] = time.Duration(i + 1) // 1..100, shuffled below
	}
	hundred[3], hundred[96] = hundred[96], hundred[3]
	cases := []struct {
		name string
		xs   []time.Duration
		q    float64
		want time.Duration
	}{
		{"n=1 p50", []time.Duration{7}, 0.5, 7},
		{"n=1 p95", []time.Duration{7}, 0.95, 7},
		{"n=1 p99", []time.Duration{7}, 0.99, 7},
		{"n=1 q0", []time.Duration{7}, 0, 7},
		{"n=1 q1", []time.Duration{7}, 1, 7},
		// Even n: rank(p50) = ceil(2.0) = 2, not the 3rd element a
		// rounded (n-1)-interpolation index would pick.
		{"n=4 p50", []time.Duration{40, 10, 30, 20}, 0.5, 20},
		{"n=4 p95", []time.Duration{40, 10, 30, 20}, 0.95, 40},
		{"n=4 p99", []time.Duration{40, 10, 30, 20}, 0.99, 40},
		// Odd n: rank(p50) = ceil(2.5) = 3.
		{"n=5 p50", []time.Duration{50, 10, 40, 20, 30}, 0.5, 30},
		{"n=5 p95", []time.Duration{50, 10, 40, 20, 30}, 0.95, 50},
		{"n=5 p99", []time.Duration{50, 10, 40, 20, 30}, 0.99, 50},
		// Round n: p95 and p99 land exactly on ranks 95 and 99.
		{"n=100 p50", hundred, 0.5, 50},
		{"n=100 p95", hundred, 0.95, 95},
		{"n=100 p99", hundred, 0.99, 99},
	}
	for _, tc := range cases {
		if got := Quantile(tc.xs, tc.q); got != tc.want {
			t.Errorf("%s: Quantile = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// Property: a nearest-rank quantile is always an element of the sample,
// and at least a q-fraction of elements are <= it.
func TestQuickQuantileProperties(t *testing.T) {
	t.Parallel()
	f := func(raw []int16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		xs := make([]time.Duration, len(raw))
		for i, r := range raw {
			xs[i] = time.Duration(r)
		}
		v := Quantile(xs, q)
		member := false
		atOrBelow := 0
		for _, x := range xs {
			if x == v {
				member = true
			}
			if x <= v {
				atOrBelow++
			}
		}
		return member && float64(atOrBelow) >= q*float64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	t.Parallel()
	xs := []time.Duration{10, 20, 60}
	if m := Mean(xs); m != 30 {
		t.Errorf("mean = %v", m)
	}
	lo, hi := MinMax(xs)
	if lo != 10 || hi != 60 {
		t.Errorf("minmax = %v %v", lo, hi)
	}
	if m := Mean(nil); m != 0 {
		t.Error("mean of empty not 0")
	}
}

// Property: the median is bounded by the extremes and at least half the
// elements are <= it.
func TestQuickMedianProperties(t *testing.T) {
	t.Parallel()
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]time.Duration, len(raw))
		for i, r := range raw {
			xs[i] = time.Duration(r)
		}
		m := Median(xs)
		lo, hi := MinMax(xs)
		if m < lo || m > hi {
			return false
		}
		below := 0
		for _, x := range xs {
			if x <= m {
				below++
			}
		}
		return below*2 >= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
