package harness

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/nettap"
	"pqtls/internal/perf"
	"pqtls/internal/tls13"
)

// The streaming cellAggregator replaced the buffered [][]*sampleResult
// collection in runCampaignGrid. aggregateCampaign survives as the buffered
// reference implementation, and these tests pin the two paths to each other:
// every row the streaming grid emits must be deep-equal to what buffering
// all samples and aggregating them in sample order would have produced.

// bufferedGrid is the pre-streaming pipeline, reconstructed sample by sample:
// run every sample sequentially, hold all of them, aggregate in order.
func bufferedGrid(t *testing.T, specs []CampaignOptions) []*CampaignResult {
	t.Helper()
	out := make([]*CampaignResult, len(specs))
	for si := range specs {
		normalizeCampaign(&specs[si])
		samples := make([]*sampleResult, specs[si].Samples)
		for i := range samples {
			s, err := runCampaignSample(specs[si], i)
			if err != nil {
				t.Fatalf("spec %d sample %d: %v", si, i, err)
			}
			samples[i] = s
		}
		out[si] = aggregateCampaign(specs[si], samples)
	}
	return out
}

// TestStreamingMatchesBufferedAggregation is the refactor's differential
// pin: the streaming grid at several worker counts (completion order
// scrambled by the pool) against the buffered sample-order reference.
// Odd and even sample counts cover both branches of the median, and the
// lossy 5G link gives the medians genuine per-sample value diversity.
// Profiles are excluded here — perf spans measure wall time, so two *runs*
// of the same sample differ; their merge is pinned on shared inputs in
// TestStreamingProfileMergeMatchesBuffered instead.
func TestStreamingMatchesBufferedAggregation(t *testing.T) {
	t.Parallel()
	specs := []CampaignOptions{
		{KEM: "x25519", Sig: "rsa:2048", Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Samples: 7, Seed: 42},
		{KEM: "kyber512", Sig: "dilithium2", Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Samples: 6, Seed: 42},
		{KEM: "p256_kyber512", Sig: "rsa3072_dilithium2", Link: netsim.Scenario5G,
			Buffer: tls13.BufferImmediate, Samples: 5, Seed: 7},
	}
	want := bufferedGrid(t, append([]CampaignOptions(nil), specs...))
	for _, workers := range []int{1, 4, 8} {
		got, err := runCampaignGrid(append([]CampaignOptions(nil), specs...), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for si := range specs {
			if !reflect.DeepEqual(got[si], want[si]) {
				t.Errorf("workers=%d spec %d: streaming row\n%+v\n!= buffered row\n%+v",
					workers, si, got[si], want[si])
			}
		}
	}
}

// syntheticSample builds a sampleResult with the given latency profile; the
// memory test cycles a handful of these to model the modeled pipeline's
// few-distinct-values-per-cell behavior at scale.
func syntheticSample(partA, partB, cycle time.Duration, bytes, pkts int, profile bool) *sampleResult {
	s := &sampleResult{res: &HandshakeResult{
		Phases:      nettap.Phases{PartA: partA, PartB: partB},
		Cycle:       cycle,
		ClientBytes: bytes, ServerBytes: bytes + 100,
		ClientPackets: pkts, ServerPackets: pkts + 1,
		ClientCPU: partA / 2, ServerCPU: partB / 2,
	}}
	if profile {
		s.clientProf = perf.NewProfiler()
		s.serverProf = perf.NewProfiler()
		s.clientProf.AddTotal(partA)
		s.serverProf.AddTotal(partB)
	}
	return s
}

// TestStreamingProfileMergeMatchesBuffered pins the profiled path on shared
// inputs: the same synthetic profilers fed to the streaming aggregator in
// reverse completion order must merge to the exact snapshot the buffered
// sample-order reference produces — profiler merge is span-wise addition,
// so completion order must be invisible.
func TestStreamingProfileMergeMatchesBuffered(t *testing.T) {
	t.Parallel()
	opts := CampaignOptions{KEM: "kyber768", Sig: "dilithium3",
		Link: ScenarioTestbed, Samples: 9, Profile: true}
	samples := make([]*sampleResult, opts.Samples)
	for i := range samples {
		d := time.Duration(i+1) * 100 * time.Microsecond
		s := syntheticSample(d, 3*d, 5*d, 1200+i, 12, true)
		s.clientProf.Attribute(perf.LibCrypto, d)
		s.serverProf.Attribute(perf.Kernel, 2*d)
		if i%2 == 0 {
			s.clientProf.Attribute(perf.LibSSL, d/3)
		}
		samples[i] = s
	}
	agg := newCellAggregator(true)
	for i := len(samples) - 1; i >= 0; i-- {
		agg.add(samples[i])
	}
	got, want := agg.finalize(opts), aggregateCampaign(opts, samples)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streaming profiled row\n%+v\n!= buffered row\n%+v", got, want)
	}
}

// TestStreamingMemoryBoundAt100kSamples pins the O(1)-per-cell claim at the
// acceptance scale: 100k samples drawn from 7 distinct value profiles must
// leave the aggregator holding at most 7 distinct entries per distribution
// (memory bounded by value diversity, not sample count), while still
// finalizing to the exact row the buffered reference produces.
func TestStreamingMemoryBoundAt100kSamples(t *testing.T) {
	t.Parallel()
	const (
		samples  = 100_000
		distinct = 7
	)
	profiles := make([]*sampleResult, distinct)
	for i := range profiles {
		d := time.Duration(i+1) * time.Millisecond
		profiles[i] = syntheticSample(d, 2*d, 4*d, 1000+i, 10+i, false)
	}
	opts := CampaignOptions{KEM: "kyber768", Sig: "dilithium3",
		Link: ScenarioTestbed, Samples: samples}

	agg := newCellAggregator(false)
	buffered := make([]*sampleResult, 0, samples)
	for i := 0; i < samples; i++ {
		s := profiles[i%distinct]
		agg.add(s)
		buffered = append(buffered, s)
	}
	if got := agg.maxDistinct(); got > distinct {
		t.Fatalf("aggregator holds %d distinct values after %d samples, want <= %d",
			got, samples, distinct)
	}
	got := agg.finalize(opts)
	want := aggregateCampaign(opts, buffered)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("streaming row\n%+v\n!= buffered row\n%+v", got, want)
	}
}

// TestStreamingHeapDoesNotScaleWithSamples measures the claim directly:
// aggregating 10x the samples (same value diversity) must not grow the
// retained heap in proportion. The per-sample inputs are shared objects, so
// any growth would come from the aggregator retaining per-sample state.
func TestStreamingHeapDoesNotScaleWithSamples(t *testing.T) {
	profiles := make([]*sampleResult, 5)
	for i := range profiles {
		d := time.Duration(i+1) * time.Millisecond
		profiles[i] = syntheticSample(d, 2*d, 4*d, 900+i, 9+i, false)
	}
	retained := func(samples int) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		agg := newCellAggregator(false)
		for i := 0; i < samples; i++ {
			agg.add(profiles[i%len(profiles)])
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		if agg.n != uint64(samples) { // keep agg live through the measurement
			t.Fatalf("aggregated %d, want %d", agg.n, samples)
		}
		if after.HeapAlloc < before.HeapAlloc {
			return 0
		}
		return after.HeapAlloc - before.HeapAlloc
	}
	small := retained(10_000)
	large := retained(100_000)
	// Allow generous absolute slack for allocator noise; what must not
	// happen is linear growth (10x samples => ~10x retained bytes).
	if large > small*3+64*1024 {
		t.Errorf("retained heap grew from %d to %d bytes for 10x samples", small, large)
	}
}

// The counting distribution must reproduce stats.Median's two-middle
// integer average exactly, including odd/even and duplicate-heavy inputs.
func TestCountingDistMedianParity(t *testing.T) {
	t.Parallel()
	cases := [][]time.Duration{
		{},
		{5},
		{3, 1},
		{1, 2, 3},
		{4, 1, 3, 2},
		{7, 7, 7, 7, 7},
		{1, 1, 2, 2},
		{1, 1, 1, 9},
		{time.Millisecond, time.Microsecond, time.Second, time.Microsecond},
	}
	for _, xs := range cases {
		d := newCountingDist()
		for _, x := range xs {
			d.add(x)
		}
		want := referenceMedian(xs)
		if got := d.median(); got != want {
			t.Errorf("median(%v) = %v, want %v", xs, got, want)
		}
	}
}

// referenceMedian mirrors stats.Median locally so the parity test reads as
// a specification, not a call into the code under comparison.
func referenceMedian(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort: tiny fixtures
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
