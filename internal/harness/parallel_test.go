package harness

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"pqtls/internal/tls13"
)

// The tentpole guarantee of the parallel campaign engine: fanning samples
// across workers must not change a single output byte. Modeled timing makes
// every sample a pure function of (suite, link, seed), so the aggregated
// CSV must be identical for any worker count.

// determinismSuites deliberately includes falcon512 (lazy NTT tables) and
// hqc128 (lazy code tables) so the workers=8 run doubles as a race test for
// the lazily initialized cryptographic state. ECDSA signatures are excluded:
// their DER encoding varies by a byte with the signing nonce, so they are
// not byte-stable across *any* two runs, sequential or parallel.
var determinismSuites = []struct{ kem, sig string }{
	{"x25519", "rsa:2048"},
	{"kyber512", "dilithium2"},
	{"hqc128", "falcon512"},
	{"p256_kyber512", "rsa3072_dilithium2"},
}

func determinismGrid(workers int) []CampaignOptions {
	specs := make([]CampaignOptions, 0, len(determinismSuites))
	for _, s := range determinismSuites {
		specs = append(specs, CampaignOptions{
			KEM: s.kem, Sig: s.sig, Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Samples: 6, Seed: 42, Workers: workers,
		})
	}
	return specs
}

func gridCSV(t *testing.T, workers int) []byte {
	t.Helper()
	results, err := runCampaignGrid(determinismGrid(workers), workers)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLatenciesCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	sequential := gridCSV(t, 1)
	for _, workers := range []int{2, 8} {
		parallel := gridCSV(t, workers)
		if !bytes.Equal(sequential, parallel) {
			t.Errorf("workers=%d CSV differs from sequential run:\n--- workers=1\n%s--- workers=%d\n%s",
				workers, sequential, workers, parallel)
		}
	}
}

// The HRR comparison uses its own per-sample fan-out for the fallback arm;
// it must be worker-count invariant too.
func TestHRRComparisonDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	kems := []string{"kyber512"}
	seq, err := RunHRRComparison(kems, ScenarioTestbed, SweepConfig{Samples: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunHRRComparison(kems, ScenarioTestbed, SweepConfig{Samples: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("HRR results differ: sequential %+v, parallel %+v", seq, par)
	}
}

// Real-timing campaigns cannot be parallelized without samples perturbing
// each other; the grid must force them sequential rather than go wrong.
func TestRealTimingForcesSequential(t *testing.T) {
	t.Parallel()
	res, err := RunCampaign(CampaignOptions{
		KEM: "x25519", Sig: "rsa:2048", Link: ScenarioTestbed,
		Samples: 2, Workers: 8, Timing: TimingReal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 2 || res.TotalMedian <= 0 {
		t.Errorf("real-timing campaign returned %+v", res)
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	t.Parallel()
	errAt := func(bad map[int]error) error {
		return forEach(100, 8, func(i int) error { return bad[i] })
	}
	e7, e40 := errors.New("fail at 7"), errors.New("fail at 40")
	if err := errAt(map[int]error{40: e40, 7: e7}); err != e7 {
		t.Errorf("got %v, want the lowest-index error %v", err, e7)
	}
	if err := errAt(nil); err != nil {
		t.Errorf("no failures, got %v", err)
	}
	if err := forEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Errorf("n=0 ran the body: %v", err)
	}
}

func TestForEachCoversAllIndexes(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{0, 1, 3, 64} {
		seen := make([]bool, 37)
		if err := forEach(len(seen), workers, func(i int) error {
			seen[i] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, ok := range seen {
			if !ok {
				t.Errorf("workers=%d: index %d not visited", workers, i)
			}
		}
	}
}

// A key pool must be latency-transparent: the preset key share skips the
// real keygen compute but the modeled cost is still charged, so results
// match a pool-less run exactly.
func TestKeyPoolDoesNotChangeResults(t *testing.T) {
	t.Parallel()
	pool := NewKeyPool()
	if err := pool.Fill("kyber512", 3, 4); err != nil {
		t.Fatal(err)
	}
	base := RunOptions{
		KEM: "kyber512", Sig: "dilithium2", Link: ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Seed: 11,
	}
	want, err := RunHandshake(base)
	if err != nil {
		t.Fatal(err)
	}
	pooled := base
	pooled.KeyPool = pool
	got, err := RunHandshake(pooled)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phases != want.Phases {
		t.Errorf("pooled phases %+v != plain %+v", got.Phases, want.Phases)
	}
	if got.ClientBytes != want.ClientBytes || got.ServerBytes != want.ServerBytes {
		t.Errorf("pooled wire volume (%d,%d) != plain (%d,%d)",
			got.ClientBytes, got.ServerBytes, want.ClientBytes, want.ServerBytes)
	}
	if n := pool.Len("kyber512"); n != 2 {
		t.Errorf("pool has %d keys left, want 2", n)
	}
	// Draining the pool must fall back to live keygen, not fail.
	for i := 0; i < 3; i++ {
		if _, err := RunHandshake(pooled); err != nil {
			t.Fatalf("drained-pool handshake %d: %v", i, err)
		}
	}
	if n := pool.Len("kyber512"); n != 0 {
		t.Errorf("pool not drained: %d left", n)
	}
}

// Sanity-check the example in the package docs: default workers is a
// positive CPU-derived count.
func TestDefaultWorkers(t *testing.T) {
	t.Parallel()
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

// Guard the modeled-cost tables: every registered suite used by the sweeps
// must resolve to a non-zero cost so no algorithm silently runs "for free"
// on the virtual clock.
func TestCostModelCoversSweepSuites(t *testing.T) {
	t.Parallel()
	for _, k := range Table2aKEMs {
		c := DefaultCostModel.kemCostFor(k)
		if c.Keygen <= 0 || c.Encaps <= 0 || c.Decaps <= 0 {
			t.Errorf("KEM %s has incomplete cost %+v", k, c)
		}
	}
	for _, s := range append(append([]string{}, Table2bSigs...), Table4bSigs...) {
		c := DefaultCostModel.sigCostFor(s)
		if c.Sign <= 0 || c.Verify <= 0 {
			t.Errorf("sig %s has incomplete cost %+v", s, c)
		}
	}
}
