package harness

import (
	"fmt"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/stats"
	"pqtls/internal/tls13"
)

// This file holds the extension experiments beyond the paper's tables:
// the initial-CWND tuning sweep the paper's conclusion calls out as "an
// important tuning factor for PQ TLS", and the all-sphincs variant sweep
// the artifact uses to pick the fastest SPHINCS+ configuration.

// CWNDResult is one cell of the CWND sweep: a suite's high-delay latency
// under a given initial congestion window.
type CWNDResult struct {
	KEM, Sig string
	CWND     int
	// Total is the median full-handshake latency at 1 s RTT; RTTs is the
	// latency expressed in round trips (the cliff metric).
	Total time.Duration
	RTTs  float64
}

// CWNDSweepSuites are flights around and beyond the default 10xMSS window.
var CWNDSweepSuites = []struct{ KEM, Sig string }{
	{"x25519", "rsa:2048"},   // well under one window
	{"x25519", "dilithium3"}, // just under
	{"x25519", "dilithium5"}, // just over: the paper's 2-RTT example
	{"x25519", "sphincs128"}, // ~2 windows
	{"x25519", "sphincs256"}, // ~4 windows
}

// RunCWNDSweep measures the sweep suites at 1 s RTT for each initial CWND,
// demonstrating that raising the window restores 1-RTT handshakes for PQ
// flights (the conclusion's tuning recommendation).
func RunCWNDSweep(cwnds []int, cfg SweepConfig) ([]CWNDResult, error) {
	if len(cwnds) == 0 {
		cwnds = []int{10, 20, 40, 80}
	}
	var specs []CampaignOptions
	for _, suite := range CWNDSweepSuites {
		for _, cwnd := range cwnds {
			spec := cfg.campaign(suite.KEM, suite.Sig, netsim.ScenarioHighDelay, 6)
			spec.Buffer = tls13.BufferImmediate
			spec.CWND = cwnd
			specs = append(specs, spec)
		}
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("cwnd sweep: %w", err)
	}
	out := make([]CWNDResult, len(rows))
	for i, r := range rows {
		out[i] = CWNDResult{
			KEM: specs[i].KEM, Sig: specs[i].Sig, CWND: specs[i].CWND,
			Total: r.TotalMedian,
			RTTs:  float64(r.TotalMedian) / float64(netsim.ScenarioHighDelay.RTT),
		}
	}
	return out, nil
}

// SphincsVariants are the registered SPHINCS+ configurations: the fast
// sets used in the paper's tables and the small sets the all-sphincs
// experiment compares them against.
var SphincsVariants = []string{
	"sphincs128", "sphincs128s",
	"sphincs192", "sphincs192s",
	"sphincs256", "sphincs256s",
}

// RunAllSphincs reproduces the artifact's all-sphincs experiment: measure
// every SPHINCS+ variant (with X25519) and report latency vs. data volume,
// identifying the fastest configuration per level.
func RunAllSphincs(cfg SweepConfig) ([]*CampaignResult, error) {
	specs := make([]CampaignOptions, len(SphincsVariants))
	for i, v := range SphincsVariants {
		specs[i] = cfg.campaign(BaselineKEM, v, ScenarioTestbed, 8)
		specs[i].Buffer = tls13.BufferImmediate
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("all-sphincs: %w", err)
	}
	return rows, nil
}

// HRRResult compares a direct 1-RTT handshake against the 2-RTT
// HelloRetryRequest fallback for the same server-required group.
type HRRResult struct {
	KEM      string
	Scenario string
	Direct   time.Duration // client guessed the right group
	Fallback time.Duration // client guessed x25519, server forced KEM
	Penalty  time.Duration
}

// RunHRRComparison quantifies what the paper's "2-RTT fallback never
// occurred" configuration avoided: for each PQ group, measure the
// handshake with a correct key-share guess and with an x25519 guess that
// the server rejects via HelloRetryRequest.
func RunHRRComparison(kems []string, link netsim.LinkConfig, cfg SweepConfig) ([]HRRResult, error) {
	if len(kems) == 0 {
		kems = []string{"kyber512", "hqc128", "p256_kyber512", "kyber768"}
	}
	specs := make([]CampaignOptions, len(kems))
	for i, k := range kems {
		specs[i] = cfg.campaign(k, BaselineSig, link, 9)
		specs[i].Buffer = tls13.BufferImmediate
	}
	directs, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("hrr direct: %w", err)
	}
	out := make([]HRRResult, len(kems))
	for ki, k := range kems {
		// The fallback path has no campaign wrapper; fan its samples out
		// through the same pool with ordered collection.
		samples := cfg.Samples
		if samples <= 0 {
			samples = 15
		}
		totals := make([]time.Duration, samples)
		workers := cfg.Workers
		if cfg.Timing == TimingReal {
			workers = 1
		}
		err := forEach(samples, workers, func(i int) error {
			res, err := RunHandshake(RunOptions{
				KEM: k, Sig: BaselineSig, Link: link, Buffer: tls13.BufferImmediate,
				Seed: 9 + int64(i)*7919, ClientKEM: "x25519", ClientSupported: []string{k},
				Timing: cfg.Timing,
			})
			if err != nil {
				return err
			}
			totals[i] = res.Phases.Total()
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("hrr fallback %s: %w", k, err)
		}
		fallback := stats.Median(totals)
		out[ki] = HRRResult{
			KEM: k, Scenario: link.Name,
			Direct: directs[ki].TotalMedian, Fallback: fallback,
			Penalty: fallback - directs[ki].TotalMedian,
		}
	}
	return out, nil
}

// ChainDepthResult measures how the presented chain length scales the
// handshake — PQ signatures make every extra certificate expensive, the
// motivation behind mixed-PKI proposals the paper cites (Paul et al.).
type ChainDepthResult struct {
	Sig         string
	Depth       int
	Total       time.Duration
	ServerBytes int
}

// RunChainDepth sweeps chain depths 1..3 for the given SAs over the
// testbed link.
func RunChainDepth(sigs []string, cfg SweepConfig) ([]ChainDepthResult, error) {
	if len(sigs) == 0 {
		sigs = []string{"rsa:2048", "dilithium2", "falcon512"}
	}
	var specs []CampaignOptions
	for _, s := range sigs {
		for depth := 1; depth <= 3; depth++ {
			spec := cfg.campaign(BaselineKEM, s, ScenarioTestbed, 10)
			spec.Buffer = tls13.BufferImmediate
			spec.ChainDepth = depth
			specs = append(specs, spec)
		}
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("chain depth: %w", err)
	}
	out := make([]ChainDepthResult, len(rows))
	for i, r := range rows {
		out[i] = ChainDepthResult{
			Sig: specs[i].Sig, Depth: specs[i].ChainDepth,
			Total: r.TotalMedian, ServerBytes: r.ServerBytes,
		}
	}
	return out, nil
}

// ResumptionResult compares a full handshake with a PSK-resumed one for the
// same suite: resumption removes the Certificate/CertificateVerify flight,
// amortizing the PQ authentication cost entirely.
type ResumptionResult struct {
	KEM, Sig    string
	Full        time.Duration
	Resumed     time.Duration
	FullBytes   int // server wire bytes, full handshake
	ResumeBytes int // server wire bytes, resumed handshake
}

// RunResumptionComparison measures full vs resumed handshakes per suite.
func RunResumptionComparison(cfg SweepConfig) ([]ResumptionResult, error) {
	suites := []struct{ k, s string }{
		{"x25519", "rsa:2048"},
		{"kyber512", "dilithium2"},
		{"kyber512", "falcon512"},
		{"kyber512", "sphincs128"},
		{"p256_kyber512", "p256_dilithium2"},
	}
	var specs []CampaignOptions
	for _, suite := range suites {
		full := cfg.campaign(suite.k, suite.s, ScenarioTestbed, 12)
		full.Buffer = tls13.BufferImmediate
		resumed := full
		resumed.Resume = true
		specs = append(specs, full, resumed)
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("resumption: %w", err)
	}
	out := make([]ResumptionResult, len(suites))
	for i, suite := range suites {
		full, resumed := rows[2*i], rows[2*i+1]
		out[i] = ResumptionResult{
			KEM: suite.k, Sig: suite.s,
			Full: full.TotalMedian, Resumed: resumed.TotalMedian,
			FullBytes: full.ServerBytes, ResumeBytes: resumed.ServerBytes,
		}
	}
	return out, nil
}
