package harness

import (
	"fmt"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/stats"
	"pqtls/internal/tls13"
)

// This file holds the extension experiments beyond the paper's tables:
// the initial-CWND tuning sweep the paper's conclusion calls out as "an
// important tuning factor for PQ TLS", and the all-sphincs variant sweep
// the artifact uses to pick the fastest SPHINCS+ configuration.

// CWNDResult is one cell of the CWND sweep: a suite's high-delay latency
// under a given initial congestion window.
type CWNDResult struct {
	KEM, Sig string
	CWND     int
	// Total is the median full-handshake latency at 1 s RTT; RTTs is the
	// latency expressed in round trips (the cliff metric).
	Total time.Duration
	RTTs  float64
}

// CWNDSweepSuites are flights around and beyond the default 10xMSS window.
var CWNDSweepSuites = []struct{ KEM, Sig string }{
	{"x25519", "rsa:2048"},   // well under one window
	{"x25519", "dilithium3"}, // just under
	{"x25519", "dilithium5"}, // just over: the paper's 2-RTT example
	{"x25519", "sphincs128"}, // ~2 windows
	{"x25519", "sphincs256"}, // ~4 windows
}

// RunCWNDSweep measures the sweep suites at 1 s RTT for each initial CWND,
// demonstrating that raising the window restores 1-RTT handshakes for PQ
// flights (the conclusion's tuning recommendation).
func RunCWNDSweep(cwnds []int, samples int) ([]CWNDResult, error) {
	if len(cwnds) == 0 {
		cwnds = []int{10, 20, 40, 80}
	}
	var out []CWNDResult
	for _, suite := range CWNDSweepSuites {
		for _, cwnd := range cwnds {
			r, err := RunCampaign(CampaignOptions{
				KEM: suite.KEM, Sig: suite.Sig, Link: netsim.ScenarioHighDelay,
				Buffer: tls13.BufferImmediate, Samples: samples, Seed: 6, CWND: cwnd,
			})
			if err != nil {
				return nil, fmt.Errorf("cwnd sweep %s/%s cwnd=%d: %w", suite.KEM, suite.Sig, cwnd, err)
			}
			out = append(out, CWNDResult{
				KEM: suite.KEM, Sig: suite.Sig, CWND: cwnd,
				Total: r.TotalMedian,
				RTTs:  float64(r.TotalMedian) / float64(netsim.ScenarioHighDelay.RTT),
			})
		}
	}
	return out, nil
}

// SphincsVariants are the registered SPHINCS+ configurations: the fast
// sets used in the paper's tables and the small sets the all-sphincs
// experiment compares them against.
var SphincsVariants = []string{
	"sphincs128", "sphincs128s",
	"sphincs192", "sphincs192s",
	"sphincs256", "sphincs256s",
}

// RunAllSphincs reproduces the artifact's all-sphincs experiment: measure
// every SPHINCS+ variant (with X25519) and report latency vs. data volume,
// identifying the fastest configuration per level.
func RunAllSphincs(samples int) ([]*CampaignResult, error) {
	var out []*CampaignResult
	for _, v := range SphincsVariants {
		r, err := RunCampaign(CampaignOptions{
			KEM: BaselineKEM, Sig: v, Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Samples: samples, Seed: 8,
		})
		if err != nil {
			return nil, fmt.Errorf("all-sphincs %s: %w", v, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// HRRResult compares a direct 1-RTT handshake against the 2-RTT
// HelloRetryRequest fallback for the same server-required group.
type HRRResult struct {
	KEM      string
	Scenario string
	Direct   time.Duration // client guessed the right group
	Fallback time.Duration // client guessed x25519, server forced KEM
	Penalty  time.Duration
}

// RunHRRComparison quantifies what the paper's "2-RTT fallback never
// occurred" configuration avoided: for each PQ group, measure the
// handshake with a correct key-share guess and with an x25519 guess that
// the server rejects via HelloRetryRequest.
func RunHRRComparison(kems []string, link netsim.LinkConfig, samples int) ([]HRRResult, error) {
	if len(kems) == 0 {
		kems = []string{"kyber512", "hqc128", "p256_kyber512", "kyber768"}
	}
	var out []HRRResult
	for _, k := range kems {
		direct, err := RunCampaign(CampaignOptions{
			KEM: k, Sig: BaselineSig, Link: link, Buffer: tls13.BufferImmediate,
			Samples: samples, Seed: 9,
		})
		if err != nil {
			return nil, fmt.Errorf("hrr direct %s: %w", k, err)
		}
		var totals []time.Duration
		for i := 0; i < samples; i++ {
			res, err := RunHandshake(RunOptions{
				KEM: k, Sig: BaselineSig, Link: link, Buffer: tls13.BufferImmediate,
				Seed: 9 + int64(i)*7919, ClientKEM: "x25519", ClientSupported: []string{k},
			})
			if err != nil {
				return nil, fmt.Errorf("hrr fallback %s: %w", k, err)
			}
			totals = append(totals, res.Phases.Total())
		}
		fallback := stats.Median(totals)
		out = append(out, HRRResult{
			KEM: k, Scenario: link.Name,
			Direct: direct.TotalMedian, Fallback: fallback,
			Penalty: fallback - direct.TotalMedian,
		})
	}
	return out, nil
}

// ChainDepthResult measures how the presented chain length scales the
// handshake — PQ signatures make every extra certificate expensive, the
// motivation behind mixed-PKI proposals the paper cites (Paul et al.).
type ChainDepthResult struct {
	Sig         string
	Depth       int
	Total       time.Duration
	ServerBytes int
}

// RunChainDepth sweeps chain depths 1..3 for the given SAs over the
// testbed link.
func RunChainDepth(sigs []string, samples int) ([]ChainDepthResult, error) {
	if len(sigs) == 0 {
		sigs = []string{"rsa:2048", "dilithium2", "falcon512"}
	}
	var out []ChainDepthResult
	for _, s := range sigs {
		for depth := 1; depth <= 3; depth++ {
			r, err := RunCampaign(CampaignOptions{
				KEM: BaselineKEM, Sig: s, Link: ScenarioTestbed,
				Buffer: tls13.BufferImmediate, Samples: samples, Seed: 10,
				ChainDepth: depth,
			})
			if err != nil {
				return nil, fmt.Errorf("chain depth %s/%d: %w", s, depth, err)
			}
			out = append(out, ChainDepthResult{
				Sig: s, Depth: depth, Total: r.TotalMedian, ServerBytes: r.ServerBytes,
			})
		}
	}
	return out, nil
}

// ResumptionResult compares a full handshake with a PSK-resumed one for the
// same suite: resumption removes the Certificate/CertificateVerify flight,
// amortizing the PQ authentication cost entirely.
type ResumptionResult struct {
	KEM, Sig    string
	Full        time.Duration
	Resumed     time.Duration
	FullBytes   int // server wire bytes, full handshake
	ResumeBytes int // server wire bytes, resumed handshake
}

// RunResumptionComparison measures full vs resumed handshakes per suite.
func RunResumptionComparison(samples int) ([]ResumptionResult, error) {
	suites := []struct{ k, s string }{
		{"x25519", "rsa:2048"},
		{"kyber512", "dilithium2"},
		{"kyber512", "falcon512"},
		{"kyber512", "sphincs128"},
		{"p256_kyber512", "p256_dilithium2"},
	}
	var out []ResumptionResult
	for _, suite := range suites {
		full, err := RunCampaign(CampaignOptions{
			KEM: suite.k, Sig: suite.s, Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Samples: samples, Seed: 12,
		})
		if err != nil {
			return nil, fmt.Errorf("resumption full %s/%s: %w", suite.k, suite.s, err)
		}
		resumed, err := RunCampaign(CampaignOptions{
			KEM: suite.k, Sig: suite.s, Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Samples: samples, Seed: 12, Resume: true,
		})
		if err != nil {
			return nil, fmt.Errorf("resumption resumed %s/%s: %w", suite.k, suite.s, err)
		}
		out = append(out, ResumptionResult{
			KEM: suite.k, Sig: suite.s,
			Full: full.TotalMedian, Resumed: resumed.TotalMedian,
			FullBytes: full.ServerBytes, ResumeBytes: resumed.ServerBytes,
		})
	}
	return out, nil
}
