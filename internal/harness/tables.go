package harness

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/tls13"
)

// The suite lists of the paper's tables, in presentation order.

// Table2aKEMs are the 23 key agreements of Table 2a, grouped by level.
var Table2aKEMs = []string{
	"x25519", "bikel1", "hqc128", "kyber512", "kyber90s512",
	"p256", "p256_bikel1", "p256_hqc128", "p256_kyber512",
	"bikel3", "hqc192", "kyber768", "kyber90s768",
	"p384", "p384_bikel3", "p384_hqc192", "p384_kyber768",
	"hqc256", "kyber1024", "kyber90s1024",
	"p521", "p521_hqc256", "p521_kyber1024",
}

// Table2bSigs are the signature algorithms of Table 2b.
var Table2bSigs = []string{
	"rsa:1024", "rsa:2048",
	"falcon512", "rsa:3072", "rsa:4096", "sphincs128", "p256_falcon512", "p256_sphincs128",
	"dilithium2", "dilithium2_aes", "p256_dilithium2",
	"dilithium3", "dilithium3_aes", "sphincs192", "p384_dilithium3", "p384_sphincs192",
	"dilithium5", "dilithium5_aes", "falcon1024", "sphincs256",
	"p521_dilithium5", "p521_falcon1024", "p521_sphincs256",
}

// Table4bSigs adds the hybrid that only appears in Table 4b.
var Table4bSigs = append(append([]string{}, Table2bSigs...), "rsa3072_dilithium2")

// BaselineKEM and BaselineSig fix the other axis, as in Section 5.
const (
	BaselineKEM = "x25519"
	BaselineSig = "rsa:2048"
)

// Table3Pairs are the white-box KA/SA selections of Table 3.
var Table3Pairs = []struct{ KEM, Sig string }{
	{"x25519", "rsa:2048"},
	{"kyber512", "dilithium2"},
	{"bikel1", "dilithium2"},
	{"kyber512", "sphincs128"},
	{"hqc128", "falcon512"},
	{"p256_kyber512", "p256_dilithium2"},
	{"kyber768", "dilithium3"},
	{"kyber1024", "dilithium5"},
}

// levelGroups are the paper's deviation-analysis groups (levels one and two
// are grouped; hybrids excluded; rsa:3072 is the only RSA).
var levelGroups = []struct {
	Name string
	KEMs []string
	Sigs []string
}{
	{
		Name: "level1",
		KEMs: []string{"x25519", "p256", "kyber512", "kyber90s512", "hqc128", "bikel1"},
		Sigs: []string{"rsa:3072", "falcon512", "sphincs128", "dilithium2", "dilithium2_aes"},
	},
	{
		Name: "level3",
		KEMs: []string{"p384", "kyber768", "kyber90s768", "hqc192", "bikel3"},
		Sigs: []string{"dilithium3", "dilithium3_aes", "sphincs192"},
	},
	{
		Name: "level5",
		KEMs: []string{"p521", "kyber1024", "kyber90s1024", "hqc256"},
		Sigs: []string{"dilithium5", "dilithium5_aes", "falcon1024", "sphincs256"},
	},
}

// RunTable2a regenerates Table 2a: every KA with rsa:2048.
func RunTable2a(samples int, buffer tls13.BufferPolicy) ([]*CampaignResult, error) {
	return runSuiteList(Table2aKEMs, nil, samples, buffer)
}

// RunTable2b regenerates Table 2b: every SA with X25519.
func RunTable2b(samples int, buffer tls13.BufferPolicy) ([]*CampaignResult, error) {
	return runSuiteList(nil, Table2bSigs, samples, buffer)
}

func runSuiteList(kems, sigs []string, samples int, buffer tls13.BufferPolicy) ([]*CampaignResult, error) {
	var out []*CampaignResult
	if kems != nil {
		for _, k := range kems {
			r, err := RunCampaign(CampaignOptions{
				KEM: k, Sig: BaselineSig, Link: ScenarioTestbed, Buffer: buffer,
				Samples: samples, Seed: 1,
			})
			if err != nil {
				return nil, fmt.Errorf("table2a %s: %w", k, err)
			}
			out = append(out, r)
		}
		return out, nil
	}
	for _, s := range sigs {
		r, err := RunCampaign(CampaignOptions{
			KEM: BaselineKEM, Sig: s, Link: ScenarioTestbed, Buffer: buffer,
			Samples: samples, Seed: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("table2b %s: %w", s, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Deviation is one cell of Figure 3: how much faster (positive) or slower
// (negative) the measured combination was than the independence prediction
// E(k,s) = M(k, rsa2048) + M(x25519, s) - M(x25519, rsa2048).
type Deviation struct {
	Level     string
	KEM, Sig  string
	Expected  time.Duration
	Measured  time.Duration
	Deviation time.Duration // Expected - Measured (positive = faster than predicted)
}

// RunDeviation regenerates Figure 3a (BufferDefault) or 3b (BufferImmediate).
func RunDeviation(samples int, buffer tls13.BufferPolicy) ([]Deviation, error) {
	measure := func(k, s string) (time.Duration, error) {
		r, err := RunCampaign(CampaignOptions{
			KEM: k, Sig: s, Link: ScenarioTestbed, Buffer: buffer, Samples: samples, Seed: 2,
		})
		if err != nil {
			return 0, err
		}
		return r.TotalMedian, nil
	}
	base, err := measure(BaselineKEM, BaselineSig)
	if err != nil {
		return nil, err
	}
	kemBase := map[string]time.Duration{}
	sigBase := map[string]time.Duration{}
	var out []Deviation
	for _, grp := range levelGroups {
		for _, k := range grp.KEMs {
			if _, ok := kemBase[k]; !ok {
				if kemBase[k], err = measure(k, BaselineSig); err != nil {
					return nil, fmt.Errorf("deviation M(%s, rsa:2048): %w", k, err)
				}
			}
		}
		for _, s := range grp.Sigs {
			if _, ok := sigBase[s]; !ok {
				if sigBase[s], err = measure(BaselineKEM, s); err != nil {
					return nil, fmt.Errorf("deviation M(x25519, %s): %w", s, err)
				}
			}
		}
		for _, k := range grp.KEMs {
			for _, s := range grp.Sigs {
				m, err := measure(k, s)
				if err != nil {
					return nil, fmt.Errorf("deviation M(%s, %s): %w", k, s, err)
				}
				e := kemBase[k] + sigBase[s] - base
				out = append(out, Deviation{
					Level: grp.Name, KEM: k, Sig: s,
					Expected: e, Measured: m, Deviation: e - m,
				})
			}
		}
	}
	return out, nil
}

// Improvement is one cell of Figure 3c: default-buffering latency minus
// optimized-buffering latency (positive = the optimization helped).
type Improvement struct {
	Level    string
	KEM, Sig string
	Default  time.Duration
	Opt      time.Duration
	Gain     time.Duration
}

// RunBufferImprovement regenerates Figure 3c.
func RunBufferImprovement(samples int) ([]Improvement, error) {
	var out []Improvement
	for _, grp := range levelGroups {
		for _, k := range grp.KEMs {
			for _, s := range grp.Sigs {
				def, err := RunCampaign(CampaignOptions{
					KEM: k, Sig: s, Link: ScenarioTestbed, Buffer: tls13.BufferDefault,
					Samples: samples, Seed: 3,
				})
				if err != nil {
					return nil, err
				}
				opt, err := RunCampaign(CampaignOptions{
					KEM: k, Sig: s, Link: ScenarioTestbed, Buffer: tls13.BufferImmediate,
					Samples: samples, Seed: 3,
				})
				if err != nil {
					return nil, err
				}
				out = append(out, Improvement{
					Level: grp.Name, KEM: k, Sig: s,
					Default: def.TotalMedian, Opt: opt.TotalMedian,
					Gain: def.TotalMedian - opt.TotalMedian,
				})
			}
		}
	}
	return out, nil
}

// RunTable3 regenerates the white-box Table 3 rows.
func RunTable3(samples int) ([]*CampaignResult, error) {
	var out []*CampaignResult
	for _, pair := range Table3Pairs {
		r, err := RunCampaign(CampaignOptions{
			KEM: pair.KEM, Sig: pair.Sig, Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Samples: samples, Seed: 4, Profile: true,
		})
		if err != nil {
			return nil, fmt.Errorf("table3 %s/%s: %w", pair.KEM, pair.Sig, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ScenarioRow is one Table 4 row: one suite across all network scenarios.
type ScenarioRow struct {
	KEM, Sig string
	// Median full-handshake latency per scenario, keyed by scenario name.
	Latency map[string]time.Duration
}

// RunScenarios regenerates Table 4a (vary KA) or 4b (vary SA) depending on
// which list is passed; each suite is measured under every emulation.
func RunScenarios(kems, sigs []string, samples int) ([]ScenarioRow, error) {
	var suites []struct{ k, s string }
	for _, k := range kems {
		suites = append(suites, struct{ k, s string }{k, BaselineSig})
	}
	for _, s := range sigs {
		suites = append(suites, struct{ k, s string }{BaselineKEM, s})
	}
	var out []ScenarioRow
	for _, suite := range suites {
		row := ScenarioRow{KEM: suite.k, Sig: suite.s, Latency: map[string]time.Duration{}}
		for _, sc := range netsim.Scenarios() {
			r, err := RunCampaign(CampaignOptions{
				KEM: suite.k, Sig: suite.s, Link: sc, Buffer: tls13.BufferImmediate,
				Samples: samples, Seed: 5,
			})
			if err != nil {
				return nil, fmt.Errorf("scenario %s %s/%s: %w", sc.Name, suite.k, suite.s, err)
			}
			row.Latency[sc.Name] = r.TotalMedian
		}
		out = append(out, row)
	}
	return out, nil
}

// Rank is one entry of Figure 4: the algorithm and its 0-10 log-scaled
// latency score (0 = fastest).
type Rank struct {
	Name  string
	Score int
	Total time.Duration
}

// RankFromResults converts campaign rows into the paper's Figure 4 ranking:
// log of total latency, linearly scaled to [0, 10], rounded.
func RankFromResults(results []*CampaignResult, label func(*CampaignResult) string) []Rank {
	if len(results) == 0 {
		return nil
	}
	logs := make([]float64, len(results))
	minL, maxL := math.Inf(1), math.Inf(-1)
	for i, r := range results {
		logs[i] = math.Log(float64(r.TotalMedian))
		minL = math.Min(minL, logs[i])
		maxL = math.Max(maxL, logs[i])
	}
	out := make([]Rank, len(results))
	for i, r := range results {
		score := 0
		if maxL > minL {
			score = int(math.Round((logs[i] - minL) / (maxL - minL) * 10))
		}
		out[i] = Rank{Name: label(r), Score: score, Total: r.TotalMedian}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Total < out[j].Total
	})
	return out
}

// AttackSurface quantifies Section 5.5: amplification (server bytes per
// client byte) and CPU asymmetry (server CPU per client CPU).
type AttackSurface struct {
	KEM, Sig      string
	Amplification float64
	CPUAsymmetry  float64
}

// AttackSurfaceFromResults derives the Section 5.5 view from Table 2/3 rows.
func AttackSurfaceFromResults(results []*CampaignResult) []AttackSurface {
	out := make([]AttackSurface, 0, len(results))
	for _, r := range results {
		a := AttackSurface{KEM: r.KEM, Sig: r.Sig}
		if r.ClientBytes > 0 {
			a.Amplification = float64(r.ServerBytes) / float64(r.ClientBytes)
		}
		if r.ClientCPU > 0 {
			a.CPUAsymmetry = float64(r.ServerCPU) / float64(r.ClientCPU)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Amplification > out[j].Amplification })
	return out
}
