package harness

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/tls13"
)

// The suite lists of the paper's tables, in presentation order.

// Table2aKEMs are the 23 key agreements of Table 2a, grouped by level.
var Table2aKEMs = []string{
	"x25519", "bikel1", "hqc128", "kyber512", "kyber90s512",
	"p256", "p256_bikel1", "p256_hqc128", "p256_kyber512",
	"bikel3", "hqc192", "kyber768", "kyber90s768",
	"p384", "p384_bikel3", "p384_hqc192", "p384_kyber768",
	"hqc256", "kyber1024", "kyber90s1024",
	"p521", "p521_hqc256", "p521_kyber1024",
}

// Table2bSigs are the signature algorithms of Table 2b.
var Table2bSigs = []string{
	"rsa:1024", "rsa:2048",
	"falcon512", "rsa:3072", "rsa:4096", "sphincs128", "p256_falcon512", "p256_sphincs128",
	"dilithium2", "dilithium2_aes", "p256_dilithium2",
	"dilithium3", "dilithium3_aes", "sphincs192", "p384_dilithium3", "p384_sphincs192",
	"dilithium5", "dilithium5_aes", "falcon1024", "sphincs256",
	"p521_dilithium5", "p521_falcon1024", "p521_sphincs256",
}

// Table4bSigs adds the hybrid that only appears in Table 4b.
var Table4bSigs = append(append([]string{}, Table2bSigs...), "rsa3072_dilithium2")

// BaselineKEM and BaselineSig fix the other axis, as in Section 5.
const (
	BaselineKEM = "x25519"
	BaselineSig = "rsa:2048"
)

// Table3Pairs are the white-box KA/SA selections of Table 3.
var Table3Pairs = []struct{ KEM, Sig string }{
	{"x25519", "rsa:2048"},
	{"kyber512", "dilithium2"},
	{"bikel1", "dilithium2"},
	{"kyber512", "sphincs128"},
	{"hqc128", "falcon512"},
	{"p256_kyber512", "p256_dilithium2"},
	{"kyber768", "dilithium3"},
	{"kyber1024", "dilithium5"},
}

// levelGroups are the paper's deviation-analysis groups (levels one and two
// are grouped; hybrids excluded; rsa:3072 is the only RSA).
var levelGroups = []struct {
	Name string
	KEMs []string
	Sigs []string
}{
	{
		Name: "level1",
		KEMs: []string{"x25519", "p256", "kyber512", "kyber90s512", "hqc128", "bikel1"},
		Sigs: []string{"rsa:3072", "falcon512", "sphincs128", "dilithium2", "dilithium2_aes"},
	},
	{
		Name: "level3",
		KEMs: []string{"p384", "kyber768", "kyber90s768", "hqc192", "bikel3"},
		Sigs: []string{"dilithium3", "dilithium3_aes", "sphincs192"},
	},
	{
		Name: "level5",
		KEMs: []string{"p521", "kyber1024", "kyber90s1024", "hqc256"},
		Sigs: []string{"dilithium5", "dilithium5_aes", "falcon1024", "sphincs256"},
	},
}

// SweepConfig carries the knobs shared by every table/figure sweep: the
// per-cell sample count, the server buffering policy, the worker-pool width
// (0 = one per CPU), and the timing mode. Zero value = 15 samples… callers
// normally set Samples explicitly.
type SweepConfig struct {
	Samples int
	Buffer  tls13.BufferPolicy
	Workers int
	Timing  Timing
}

// campaign builds one grid cell from the sweep knobs.
func (c SweepConfig) campaign(kemName, sigName string, link netsim.LinkConfig, seed int64) CampaignOptions {
	return CampaignOptions{
		KEM: kemName, Sig: sigName, Link: link, Buffer: c.Buffer,
		Samples: c.Samples, Seed: seed, Timing: c.Timing,
	}
}

// RunTable2a regenerates Table 2a: every KA with rsa:2048.
func RunTable2a(cfg SweepConfig) ([]*CampaignResult, error) {
	specs := make([]CampaignOptions, len(Table2aKEMs))
	for i, k := range Table2aKEMs {
		specs[i] = cfg.campaign(k, BaselineSig, ScenarioTestbed, 1)
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("table2a: %w", err)
	}
	return rows, nil
}

// RunTable2b regenerates Table 2b: every SA with X25519.
func RunTable2b(cfg SweepConfig) ([]*CampaignResult, error) {
	specs := make([]CampaignOptions, len(Table2bSigs))
	for i, s := range Table2bSigs {
		specs[i] = cfg.campaign(BaselineKEM, s, ScenarioTestbed, 1)
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("table2b: %w", err)
	}
	return rows, nil
}

// Deviation is one cell of Figure 3: how much faster (positive) or slower
// (negative) the measured combination was than the independence prediction
// E(k,s) = M(k, rsa2048) + M(x25519, s) - M(x25519, rsa2048).
type Deviation struct {
	Level     string
	KEM, Sig  string
	Expected  time.Duration
	Measured  time.Duration
	Deviation time.Duration // Expected - Measured (positive = faster than predicted)
}

// RunDeviation regenerates Figure 3a (BufferDefault) or 3b (BufferImmediate).
// All unique cells of the analysis — the global baseline, the per-KA and
// per-SA marginals, and every combination — run through one worker grid.
func RunDeviation(cfg SweepConfig) ([]Deviation, error) {
	type cell struct{ k, s string }
	idx := map[cell]int{}
	var specs []CampaignOptions
	add := func(k, s string) {
		c := cell{k, s}
		if _, ok := idx[c]; ok {
			return
		}
		idx[c] = len(specs)
		specs = append(specs, cfg.campaign(k, s, ScenarioTestbed, 2))
	}
	add(BaselineKEM, BaselineSig)
	for _, grp := range levelGroups {
		for _, k := range grp.KEMs {
			add(k, BaselineSig)
		}
		for _, s := range grp.Sigs {
			add(BaselineKEM, s)
		}
		for _, k := range grp.KEMs {
			for _, s := range grp.Sigs {
				add(k, s)
			}
		}
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("deviation: %w", err)
	}
	m := func(k, s string) time.Duration { return rows[idx[cell{k, s}]].TotalMedian }
	base := m(BaselineKEM, BaselineSig)
	var out []Deviation
	for _, grp := range levelGroups {
		for _, k := range grp.KEMs {
			for _, s := range grp.Sigs {
				e := m(k, BaselineSig) + m(BaselineKEM, s) - base
				out = append(out, Deviation{
					Level: grp.Name, KEM: k, Sig: s,
					Expected: e, Measured: m(k, s), Deviation: e - m(k, s),
				})
			}
		}
	}
	return out, nil
}

// Improvement is one cell of Figure 3c: default-buffering latency minus
// optimized-buffering latency (positive = the optimization helped).
type Improvement struct {
	Level    string
	KEM, Sig string
	Default  time.Duration
	Opt      time.Duration
	Gain     time.Duration
}

// RunBufferImprovement regenerates Figure 3c. The default- and
// optimized-buffering runs of every combination all share one worker grid.
func RunBufferImprovement(cfg SweepConfig) ([]Improvement, error) {
	type combo struct {
		level, k, s string
	}
	var combos []combo
	var specs []CampaignOptions
	for _, grp := range levelGroups {
		for _, k := range grp.KEMs {
			for _, s := range grp.Sigs {
				combos = append(combos, combo{grp.Name, k, s})
				def := cfg.campaign(k, s, ScenarioTestbed, 3)
				def.Buffer = tls13.BufferDefault
				opt := cfg.campaign(k, s, ScenarioTestbed, 3)
				opt.Buffer = tls13.BufferImmediate
				specs = append(specs, def, opt)
			}
		}
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("improvement: %w", err)
	}
	out := make([]Improvement, len(combos))
	for i, c := range combos {
		def, opt := rows[2*i], rows[2*i+1]
		out[i] = Improvement{
			Level: c.level, KEM: c.k, Sig: c.s,
			Default: def.TotalMedian, Opt: opt.TotalMedian,
			Gain: def.TotalMedian - opt.TotalMedian,
		}
	}
	return out, nil
}

// RunTable3 regenerates the white-box Table 3 rows.
func RunTable3(cfg SweepConfig) ([]*CampaignResult, error) {
	specs := make([]CampaignOptions, len(Table3Pairs))
	for i, pair := range Table3Pairs {
		specs[i] = cfg.campaign(pair.KEM, pair.Sig, ScenarioTestbed, 4)
		specs[i].Buffer = tls13.BufferImmediate
		specs[i].Profile = true
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	return rows, nil
}

// ScenarioRow is one Table 4 row: one suite across all network scenarios.
type ScenarioRow struct {
	KEM, Sig string
	// Median full-handshake latency per scenario, keyed by scenario name.
	Latency map[string]time.Duration
}

// RunScenarios regenerates Table 4a (vary KA) or 4b (vary SA) depending on
// which list is passed; each suite is measured under every emulation. The
// full suite × scenario matrix runs through one worker grid.
func RunScenarios(kems, sigs []string, cfg SweepConfig) ([]ScenarioRow, error) {
	var suites []struct{ k, s string }
	for _, k := range kems {
		suites = append(suites, struct{ k, s string }{k, BaselineSig})
	}
	for _, s := range sigs {
		suites = append(suites, struct{ k, s string }{BaselineKEM, s})
	}
	scenarios := netsim.Scenarios()
	var specs []CampaignOptions
	for _, suite := range suites {
		for _, sc := range scenarios {
			spec := cfg.campaign(suite.k, suite.s, sc, 5)
			spec.Buffer = tls13.BufferImmediate
			specs = append(specs, spec)
		}
	}
	rows, err := runCampaignGrid(specs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("scenarios: %w", err)
	}
	out := make([]ScenarioRow, len(suites))
	for i, suite := range suites {
		row := ScenarioRow{KEM: suite.k, Sig: suite.s, Latency: map[string]time.Duration{}}
		for j, sc := range scenarios {
			row.Latency[sc.Name] = rows[i*len(scenarios)+j].TotalMedian
		}
		out[i] = row
	}
	return out, nil
}

// CheckLossMonotone is the Table 4 sanity gate: the high-loss scenario
// differs from the baseline only by a 10% drop rate, so its median can
// never legitimately beat the loss-free median. A violation means the
// transport model is crediting loss (the bug class this gate pins down)
// rather than paying for it.
func CheckLossMonotone(rows []ScenarioRow) error {
	for _, row := range rows {
		none, okN := row.Latency[netsim.ScenarioNone.Name]
		lossy, okL := row.Latency[netsim.ScenarioHighLoss.Name]
		if !okN || !okL {
			continue
		}
		if lossy < none {
			return fmt.Errorf("loss monotonicity violated for %s/%s: high-loss median %v < loss-free median %v",
				row.KEM, row.Sig, lossy, none)
		}
	}
	return nil
}

// Rank is one entry of Figure 4: the algorithm and its 0-10 log-scaled
// latency score (0 = fastest).
type Rank struct {
	Name  string
	Score int
	Total time.Duration
}

// RankFromResults converts campaign rows into the paper's Figure 4 ranking:
// log of total latency, linearly scaled to [0, 10], rounded.
func RankFromResults(results []*CampaignResult, label func(*CampaignResult) string) []Rank {
	if len(results) == 0 {
		return nil
	}
	logs := make([]float64, len(results))
	minL, maxL := math.Inf(1), math.Inf(-1)
	for i, r := range results {
		logs[i] = math.Log(float64(r.TotalMedian))
		minL = math.Min(minL, logs[i])
		maxL = math.Max(maxL, logs[i])
	}
	out := make([]Rank, len(results))
	for i, r := range results {
		score := 0
		if maxL > minL {
			score = int(math.Round((logs[i] - minL) / (maxL - minL) * 10))
		}
		out[i] = Rank{Name: label(r), Score: score, Total: r.TotalMedian}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Total < out[j].Total
	})
	return out
}

// AttackSurface quantifies Section 5.5: amplification (server bytes per
// client byte) and CPU asymmetry (server CPU per client CPU).
type AttackSurface struct {
	KEM, Sig      string
	Amplification float64
	CPUAsymmetry  float64
}

// AttackSurfaceFromResults derives the Section 5.5 view from Table 2/3 rows.
func AttackSurfaceFromResults(results []*CampaignResult) []AttackSurface {
	out := make([]AttackSurface, 0, len(results))
	for _, r := range results {
		a := AttackSurface{KEM: r.KEM, Sig: r.Sig}
		if r.ClientBytes > 0 {
			a.Amplification = float64(r.ServerBytes) / float64(r.ClientBytes)
		}
		if r.ClientCPU > 0 {
			a.CPUAsymmetry = float64(r.ServerCPU) / float64(r.ClientCPU)
		}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Amplification > out[j].Amplification })
	return out
}
