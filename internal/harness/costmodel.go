package harness

import (
	"strings"
	"time"

	"pqtls/internal/tls13"
)

// Timing selects how compute cost enters the simulation's virtual clocks.
type Timing int

const (
	// TimingModel (the default) charges each public-key operation its
	// modeled cost from DefaultCostModel. Crypto still executes for real —
	// outputs are verified — but the virtual time it consumes is a fixed
	// per-(operation, algorithm) constant, so a campaign's results are a
	// deterministic function of the suite, the link, and the seed. This is
	// what allows samples to fan out across workers: a sample computes the
	// same latencies no matter which worker runs it or how loaded the host
	// is.
	TimingModel Timing = iota
	// TimingReal charges the measured wall time of each compute step, the
	// original methodology. Results carry host jitter, so campaigns in this
	// mode always run their samples sequentially regardless of Workers.
	TimingReal
)

// kemCost is the modeled cost of one KEM's three operations.
type kemCost struct{ Keygen, Encaps, Decaps time.Duration }

// sigCost is the modeled cost of one signature scheme's three operations.
type sigCost struct{ Keygen, Sign, Verify time.Duration }

// CostModel maps algorithm names to modeled per-operation compute costs.
// Hybrid names resolve to the sum of their components, so only the primitive
// algorithms need entries.
type CostModel struct {
	KEM map[string]kemCost
	Sig map[string]sigCost
}

// DefaultCostModel carries per-operation costs calibrated against this
// repository's pure-Go implementations on the reference machine (see
// EXPERIMENTS.md): the absolute values track recorded medians and the
// relations the paper's Table 2/3 depend on are preserved — RSA signing
// orders of magnitude above verification, BIKE/HQC decapsulation dominating
// their key agreement, SPHINCS+ signing dwarfing everything else, and
// lattice schemes at classical-or-better cost.
var DefaultCostModel = &CostModel{
	KEM: map[string]kemCost{
		"x25519":       {50 * time.Microsecond, 100 * time.Microsecond, 50 * time.Microsecond},
		"p256":         {65 * time.Microsecond, 130 * time.Microsecond, 65 * time.Microsecond},
		"p384":         {350 * time.Microsecond, 700 * time.Microsecond, 350 * time.Microsecond},
		"p521":         {850 * time.Microsecond, 1700 * time.Microsecond, 850 * time.Microsecond},
		"kyber512":     {130 * time.Microsecond, 190 * time.Microsecond, 240 * time.Microsecond},
		"kyber768":     {180 * time.Microsecond, 260 * time.Microsecond, 330 * time.Microsecond},
		"kyber1024":    {250 * time.Microsecond, 380 * time.Microsecond, 460 * time.Microsecond},
		"kyber90s512":  {50 * time.Microsecond, 70 * time.Microsecond, 90 * time.Microsecond},
		"kyber90s768":  {80 * time.Microsecond, 110 * time.Microsecond, 140 * time.Microsecond},
		"kyber90s1024": {110 * time.Microsecond, 160 * time.Microsecond, 200 * time.Microsecond},
		"hqc128":       {250 * time.Microsecond, 600 * time.Microsecond, 900 * time.Microsecond},
		"hqc192":       {700 * time.Microsecond, 1700 * time.Microsecond, 2600 * time.Microsecond},
		"hqc256":       {1200 * time.Microsecond, 3000 * time.Microsecond, 4500 * time.Microsecond},
		"bikel1":       {25 * time.Millisecond, 250 * time.Microsecond, 14 * time.Millisecond},
		"bikel3":       {90 * time.Millisecond, 550 * time.Microsecond, 60 * time.Millisecond},
	},
	Sig: map[string]sigCost{
		"rsa:1024":       {80 * time.Millisecond, 350 * time.Microsecond, 30 * time.Microsecond},
		"rsa:2048":       {450 * time.Millisecond, 1200 * time.Microsecond, 60 * time.Microsecond},
		"rsa:3072":       {1500 * time.Millisecond, 3400 * time.Microsecond, 110 * time.Microsecond},
		"rsa:4096":       {4000 * time.Millisecond, 8000 * time.Microsecond, 170 * time.Microsecond},
		"ed25519":        {25 * time.Microsecond, 30 * time.Microsecond, 70 * time.Microsecond},
		"ecdsa-p256":     {70 * time.Microsecond, 80 * time.Microsecond, 230 * time.Microsecond},
		"ecdsa-p384":     {380 * time.Microsecond, 420 * time.Microsecond, 1100 * time.Microsecond},
		"ecdsa-p521":     {900 * time.Microsecond, 1000 * time.Microsecond, 2600 * time.Microsecond},
		"dilithium2":     {150 * time.Microsecond, 700 * time.Microsecond, 250 * time.Microsecond},
		"dilithium2_aes": {120 * time.Microsecond, 450 * time.Microsecond, 160 * time.Microsecond},
		"dilithium3":     {220 * time.Microsecond, 800 * time.Microsecond, 330 * time.Microsecond},
		"dilithium3_aes": {180 * time.Microsecond, 600 * time.Microsecond, 260 * time.Microsecond},
		"dilithium5":     {300 * time.Microsecond, 2100 * time.Microsecond, 500 * time.Microsecond},
		"dilithium5_aes": {260 * time.Microsecond, 1500 * time.Microsecond, 420 * time.Microsecond},
		"falcon512":      {9 * time.Millisecond, 180 * time.Microsecond, 60 * time.Microsecond},
		"falcon1024":     {27 * time.Millisecond, 420 * time.Microsecond, 120 * time.Microsecond},
		"sphincs128":     {2 * time.Millisecond, 17500 * time.Microsecond, 1000 * time.Microsecond},
		"sphincs128s":    {30 * time.Millisecond, 320 * time.Millisecond, 400 * time.Microsecond},
		"sphincs192":     {3 * time.Millisecond, 43 * time.Millisecond, 1600 * time.Microsecond},
		"sphincs192s":    {50 * time.Millisecond, 700 * time.Millisecond, 600 * time.Microsecond},
		"sphincs256":     {6 * time.Millisecond, 90 * time.Millisecond, 2000 * time.Microsecond},
		"sphincs256s":    {45 * time.Millisecond, 620 * time.Millisecond, 800 * time.Microsecond},
	},
}

// sigAlias maps the short component names hybrid suites use to the registry
// names of the underlying schemes.
var sigAlias = map[string]string{
	"p256":    "ecdsa-p256",
	"p384":    "ecdsa-p384",
	"p521":    "ecdsa-p521",
	"rsa3072": "rsa:3072",
}

// kemCostFor resolves a KEM name, composing hybrids by summing components.
func (c *CostModel) kemCostFor(name string) kemCost {
	if k, ok := c.KEM[name]; ok {
		return k
	}
	var sum kemCost
	for _, part := range strings.SplitN(name, "_", 2) {
		k := c.KEM[part]
		sum.Keygen += k.Keygen
		sum.Encaps += k.Encaps
		sum.Decaps += k.Decaps
	}
	return sum
}

// sigCostFor resolves a signature name, composing hybrids by summing
// components (after alias resolution: p256_falcon512 → ecdsa-p256 + falcon512).
func (c *CostModel) sigCostFor(name string) sigCost {
	if s, ok := c.Sig[name]; ok {
		return s
	}
	var sum sigCost
	for _, part := range strings.SplitN(name, "_", 2) {
		if alias, ok := sigAlias[part]; ok {
			part = alias
		}
		s := c.Sig[part]
		sum.Keygen += s.Keygen
		sum.Sign += s.Sign
		sum.Verify += s.Verify
	}
	return sum
}

// Cost returns the modeled duration of op (a tls13.Op* label) on alg.
// Unknown algorithms cost zero.
func (c *CostModel) Cost(op, alg string) time.Duration {
	switch op {
	case tls13.OpKEMKeygen:
		return c.kemCostFor(alg).Keygen
	case tls13.OpKEMEncaps:
		return c.kemCostFor(alg).Encaps
	case tls13.OpKEMDecaps:
		return c.kemCostFor(alg).Decaps
	case tls13.OpSigSign:
		return c.sigCostFor(alg).Sign
	case tls13.OpSigVerify:
		return c.sigCostFor(alg).Verify
	}
	return 0
}

// costEpoch anchors the meters' virtual clocks. Only differences of Now()
// values ever matter, so any fixed instant works; a fixed one keeps the
// clock independent of the host's wall clock.
var costEpoch = time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)

// CostMeter implements tls13.Meter: a per-endpoint virtual compute clock
// that advances by the model's cost for every charged operation. Each
// simulated endpoint owns one; it is not safe for concurrent use.
type CostMeter struct {
	model   *CostModel
	elapsed time.Duration
}

// NewCostMeter returns a meter over the given model (nil = DefaultCostModel).
func NewCostMeter(model *CostModel) *CostMeter {
	if model == nil {
		model = DefaultCostModel
	}
	return &CostMeter{model: model}
}

// Charge advances the virtual clock by the modeled cost of op on alg.
func (m *CostMeter) Charge(op, alg string) {
	m.elapsed += m.model.Cost(op, alg)
}

// Now returns the virtual time.
func (m *CostMeter) Now() time.Time { return costEpoch.Add(m.elapsed) }

// Elapsed returns the total virtual compute time charged so far.
func (m *CostMeter) Elapsed() time.Duration { return m.elapsed }
