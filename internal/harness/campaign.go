package harness

import (
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/perf"
	"pqtls/internal/stats"
	"pqtls/internal/tls13"
)

// MeasurementPeriod is the paper's sequential-handshake campaign length.
const MeasurementPeriod = 60 * time.Second

// CampaignOptions configure a sequence of handshakes for one suite.
type CampaignOptions struct {
	KEM    string
	Sig    string
	Link   netsim.LinkConfig
	Buffer tls13.BufferPolicy
	// Samples is the number of real handshakes to execute; the 60-second
	// handshake count is extrapolated from the mean cycle time (running
	// tens of thousands of real SPHINCS+ handshakes per table cell would
	// measure patience, not TLS).
	Samples int
	// Seed bases the deterministic loss processes.
	Seed int64
	// CWND overrides the initial congestion window (0 = default 10).
	CWND int
	// ChainDepth is the certificate-chain length (default 1).
	ChainDepth int
	// Resume measures PSK-resumed handshakes instead of full ones.
	Resume bool
	// Profile enables white-box collection.
	Profile bool
	// Workers bounds the sample-level parallelism (0 = one per CPU).
	// Because samples are independently seeded and modeled timing keeps
	// the virtual clocks jitter-free, the aggregated result is identical
	// for any worker count.
	Workers int
	// Timing selects modeled (default) or measured compute time.
	// TimingReal forces sequential execution.
	Timing Timing
	// KeyPool, when non-nil, offers pre-generated client key shares to each
	// sample. Campaign samples are DRBG-pinned, so RunHandshake's
	// deterministic-mode bypass keeps the pool out of the measured stream —
	// rows stay byte-identical with or without a pool (or factory) attached.
	KeyPool *KeyPool
	// CVVerifier and Encapsulator offer the client-side verification pool
	// and server-side encapsulation pool to each sample. Like KeyPool they
	// are bypassed for DRBG-pinned samples (every campaign sample is), so
	// attaching them never changes a row — the fields exist so the same
	// options plumbing serves pinned and unpinned callers.
	CVVerifier   tls13.CVVerifier
	Encapsulator tls13.Encapsulator
}

// CampaignResult aggregates one suite's campaign, i.e. one table row.
type CampaignResult struct {
	KEM, Sig string
	Link     string
	Samples  int

	// Medians of the black-box phases (Table 2's two latency bars and
	// Table 4's full-handshake latency).
	PartAMedian, PartBMedian, TotalMedian time.Duration

	// Handshakes60s extrapolates the paper's "# Total" column.
	Handshakes60s int

	// Median wire volume per handshake and side (Table 2's data columns).
	ClientBytes, ServerBytes int
	// Median packets per handshake and side (Table 3).
	ClientPackets, ServerPackets int

	// Mean CPU per handshake and side (Table 3's CPU cost).
	ClientCPU, ServerCPU time.Duration

	// White-box profiles (populated when Profile was set).
	ClientProfile, ServerProfile perf.Snapshot
}

// HandshakeRate is the extrapolated handshakes per second.
func (r CampaignResult) HandshakeRate() float64 {
	return float64(r.Handshakes60s) / MeasurementPeriod.Seconds()
}

// normalizeCampaign applies option defaults in place.
func normalizeCampaign(opts *CampaignOptions) {
	if opts.Samples <= 0 {
		opts.Samples = 15
	}
}

// sampleResult is one handshake's contribution to a campaign row.
type sampleResult struct {
	res                    *HandshakeResult
	clientProf, serverProf *perf.Profiler
}

// runCampaignSample executes sample i of a campaign. Each sample owns its
// entire simulation state (link, TCP, tap, endpoints, profilers, meters),
// so samples are safe to run concurrently.
func runCampaignSample(opts CampaignOptions, i int) (*sampleResult, error) {
	s := &sampleResult{}
	if opts.Profile {
		s.clientProf = perf.NewProfiler()
		s.serverProf = perf.NewProfiler()
	}
	res, err := RunHandshake(RunOptions{
		KEM: opts.KEM, Sig: opts.Sig, Link: opts.Link, Buffer: opts.Buffer,
		Seed:         opts.Seed + int64(i)*7919,
		Rand:         newSampleDRBG(opts.KEM, opts.Sig, opts.Link.Name, opts.Seed+int64(i)*7919),
		CWND:         opts.CWND,
		ChainDepth:   opts.ChainDepth,
		Resume:       opts.Resume,
		Timing:       opts.Timing,
		KeyPool:      opts.KeyPool,
		CVVerifier:   opts.CVVerifier,
		Encapsulator: opts.Encapsulator,
		ClientProf:   s.clientProf, ServerProf: s.serverProf,
	})
	if err != nil {
		return nil, err
	}
	s.res = res
	return s, nil
}

// aggregateCampaign folds per-sample results (in sample order) into a row.
// It is the buffered reference implementation: the grid itself streams
// samples through cellAggregator (see streaming.go), and the differential
// tests pin the two to byte-identical rows.
func aggregateCampaign(opts CampaignOptions, samples []*sampleResult) *CampaignResult {
	var (
		partA, partB, total, cycles []time.Duration
		cBytes, sBytes              []int
		cPkts, sPkts                []int
		cCPU, sCPU                  time.Duration
	)
	for _, s := range samples {
		res := s.res
		partA = append(partA, res.Phases.PartA)
		partB = append(partB, res.Phases.PartB)
		total = append(total, res.Phases.Total())
		cycles = append(cycles, res.Cycle)
		cBytes = append(cBytes, res.ClientBytes)
		sBytes = append(sBytes, res.ServerBytes)
		cPkts = append(cPkts, res.ClientPackets)
		sPkts = append(sPkts, res.ServerPackets)
		cCPU += res.ClientCPU
		sCPU += res.ServerCPU
	}

	out := &CampaignResult{
		KEM: opts.KEM, Sig: opts.Sig, Link: opts.Link.Name, Samples: opts.Samples,
		PartAMedian:   stats.Median(partA),
		PartBMedian:   stats.Median(partB),
		TotalMedian:   stats.Median(total),
		ClientBytes:   medianInt(cBytes),
		ServerBytes:   medianInt(sBytes),
		ClientPackets: medianInt(cPkts),
		ServerPackets: medianInt(sPkts),
		ClientCPU:     cCPU / time.Duration(opts.Samples),
		ServerCPU:     sCPU / time.Duration(opts.Samples),
	}
	meanCycle := stats.Mean(cycles)
	if meanCycle > 0 {
		out.Handshakes60s = int(MeasurementPeriod / meanCycle)
	}
	if opts.Profile {
		clientProf := perf.NewProfiler()
		serverProf := perf.NewProfiler()
		for _, s := range samples {
			clientProf.Merge(s.clientProf)
			serverProf.Merge(s.serverProf)
		}
		out.ClientProfile = clientProf.Snapshot()
		out.ServerProfile = serverProf.Snapshot()
	}
	return out
}

// RunCampaign executes the campaign and aggregates the row. Samples fan out
// across opts.Workers goroutines (0 = one per CPU) without changing the
// result.
func RunCampaign(opts CampaignOptions) (*CampaignResult, error) {
	rows, err := runCampaignGrid([]CampaignOptions{opts}, opts.Workers)
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

func medianInt(xs []int) int {
	ds := make([]time.Duration, len(xs))
	for i, x := range xs {
		ds[i] = time.Duration(x)
	}
	return int(stats.Median(ds))
}
