package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteLatenciesCSV(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := WriteLatenciesCSV(&buf, []*CampaignResult{{
		KEM: "kyber512", Sig: "rsa:2048", Link: "testbed", Samples: 9,
		PartAMedian: 200 * time.Microsecond, PartBMedian: 1780 * time.Microsecond,
		TotalMedian: 1980 * time.Microsecond, Handshakes60s: 20800,
		ClientBytes: 1457, ServerBytes: 2191, ClientPackets: 7, ServerPackets: 9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kem,sig,scenario,samples,partAMedian,partBMedian,partAllMedian") {
		t.Errorf("header = %q", lines[0])
	}
	want := "kyber512,rsa:2048,testbed,9,0.2000,1.7800,1.9800,20800,1457,2191,7,9"
	if lines[1] != want {
		t.Errorf("row = %q, want %q", lines[1], want)
	}
}

func TestWriteDeviationsCSV(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := WriteDeviationsCSV(&buf, []Deviation{{
		Level: "level1", KEM: "bikel1", Sig: "sphincs128",
		Expected: 18 * time.Millisecond, Measured: 17 * time.Millisecond,
		Deviation: time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "level1,bikel1,sphincs128,18.0000,17.0000,1.0000") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestWriteScenariosCSV(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	err := WriteScenariosCSV(&buf, []ScenarioRow{{
		KEM: "x25519", Sig: "rsa:2048",
		Latency: map[string]time.Duration{"lte-m": 214 * time.Millisecond},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x25519,rsa:2048,lte-m,214.0000") {
		t.Errorf("output = %q", buf.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	t.Parallel()
	if got := csvEscape(`evil,"name`); got != `"evil,""name"` {
		t.Errorf("csvEscape = %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("csvEscape(plain) = %q", got)
	}
}

// The CWND sweep must show the paper's predicted effect: a larger initial
// window removes round trips for over-window flights.
func TestCWNDSweepRemovesRTTs(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	t.Parallel()
	results, err := RunCWNDSweep([]int{10, 80}, SweepConfig{Samples: 3})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]CWNDResult{}
	for _, r := range results {
		byKey[r.Sig+"/"+string(rune('0'+r.CWND/10))] = r
	}
	lo := byKey["dilithium5/1"]
	hi := byKey["dilithium5/8"]
	if lo.RTTs < 1.9 {
		t.Errorf("dilithium5 at CWND 10 took %.2f RTTs, want ~2 (the cliff)", lo.RTTs)
	}
	if hi.RTTs > 1.5 {
		t.Errorf("dilithium5 at CWND 80 took %.2f RTTs, want ~1 (cliff removed)", hi.RTTs)
	}
}
