package harness

import (
	"testing"
	"time"
)

func TestCheckLossMonotone(t *testing.T) {
	t.Parallel()
	good := []ScenarioRow{
		{KEM: "x25519", Sig: "rsa:2048", Latency: map[string]time.Duration{
			"none": 2 * time.Millisecond, "high-loss": 2 * time.Millisecond}},
		{KEM: "mlkem768", Sig: "rsa:2048", Latency: map[string]time.Duration{
			"none": 2 * time.Millisecond, "high-loss": 30 * time.Millisecond}},
		{KEM: "partial", Sig: "rsa:2048", Latency: map[string]time.Duration{
			"lte-m": time.Second}}, // rows without both scenarios are skipped
	}
	if err := CheckLossMonotone(good); err != nil {
		t.Errorf("monotone rows rejected: %v", err)
	}
	bad := []ScenarioRow{
		{KEM: "x25519", Sig: "rsa:2048", Latency: map[string]time.Duration{
			"none": 3 * time.Millisecond, "high-loss": 2 * time.Millisecond}},
	}
	if err := CheckLossMonotone(bad); err == nil {
		t.Error("loss-credits-time row passed the gate")
	}
}

// The gate must hold on real model output — the seed's model violated it
// (loss grew the congestion window, making high-loss beat loss-free).
func TestScenariosLossMonotoneEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep in short mode")
	}
	t.Parallel()
	rows, err := RunScenarios([]string{"x25519", "kyber512"}, nil,
		SweepConfig{Samples: 5, Timing: TimingModel, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLossMonotone(rows); err != nil {
		t.Error(err)
	}
}
