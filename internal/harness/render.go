package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// msCell formats a duration as milliseconds for table output.
func msCell(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// LiveRow is one measured cell of the live load report: a (KA, SA,
// buffer-policy, resumption) grid point driven over real TCP sockets by
// internal/loadgen against internal/live, side by side with the modeled
// prediction for the same cell.
type LiveRow struct {
	KEM, Sig string
	Resumed  bool
	// HSRate is achieved handshakes/second over the measured window.
	HSRate float64
	// Latency quantiles of the CH→Fin span (post-warmup).
	P50, P95, P99 time.Duration
	// Completed/Failed handshake counts.
	Completed, Failed uint64
	// Modeled is the cost-model prediction (campaign TotalMedian) for the
	// same cell; Delta() is how far live measurement strayed from it.
	Modeled time.Duration
}

// Delta is live p50 minus the modeled prediction (positive = slower than
// predicted).
func (r LiveRow) Delta() time.Duration { return r.P50 - r.Modeled }

// RenderLive writes the Table-2-style live report with the modeled-delta
// column. Shared by pqbench live and the live tests so the rendering itself
// is under test.
func RenderLive(out io.Writer, rows []LiveRow) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Algorithm\tMode\tHS/s\tp50(ms)\tp95(ms)\tp99(ms)\tOK\tErr\tModeled(ms)\tDelta(ms)")
	for _, r := range rows {
		mode := "full"
		if r.Resumed {
			mode = "resumed"
		}
		fmt.Fprintf(w, "%s+%s\t%s\t%.0f\t%s\t%s\t%s\t%d\t%d\t%s\t%+.2f\n",
			r.KEM, r.Sig, mode, r.HSRate,
			msCell(r.P50), msCell(r.P95), msCell(r.P99),
			r.Completed, r.Failed, msCell(r.Modeled),
			float64(r.Delta())/float64(time.Millisecond))
	}
	return w.Flush()
}

// RenderTable2 writes the Table 2a/2b layout: one row per campaign, keyed by
// the KEM (byKEM) or signature name. Shared by pqbench and the golden tests
// so the rendering itself is under test.
func RenderTable2(out io.Writer, results []*CampaignResult, byKEM bool) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Algorithm\tPartA(ms)\tPartB(ms)\t#Total(60s)\tClient(B)\tServer(B)")
	for _, r := range results {
		name := r.KEM
		if !byKEM {
			name = r.Sig
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\n",
			name, msCell(r.PartAMedian), msCell(r.PartBMedian), r.Handshakes60s, r.ClientBytes, r.ServerBytes)
	}
	return w.Flush()
}
