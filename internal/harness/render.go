package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// msCell formats a duration as milliseconds for table output.
func msCell(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// RenderTable2 writes the Table 2a/2b layout: one row per campaign, keyed by
// the KEM (byKEM) or signature name. Shared by pqbench and the golden tests
// so the rendering itself is under test.
func RenderTable2(out io.Writer, results []*CampaignResult, byKEM bool) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Algorithm\tPartA(ms)\tPartB(ms)\t#Total(60s)\tClient(B)\tServer(B)")
	for _, r := range results {
		name := r.KEM
		if !byKEM {
			name = r.Sig
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\n",
			name, msCell(r.PartAMedian), msCell(r.PartBMedian), r.Handshakes60s, r.ClientBytes, r.ServerBytes)
	}
	return w.Flush()
}
