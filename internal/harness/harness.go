// Package harness implements the paper's measurement methodology: it wires
// the TLS 1.3 state machines, the discrete-event network (netsim/tcpsim),
// the passive timestamper (nettap), and the white-box profiler (perf) into
// reproducible handshake campaigns, and regenerates every table and figure
// of the evaluation (see DESIGN.md's experiment index).
//
// Time model: cryptographic and protocol compute is executed for real (all
// outputs are verified), and its cost is charged to per-party virtual
// clocks — by default from the deterministic cost model (TimingModel, see
// costmodel.go), optionally as measured wall time (TimingReal); network
// transmission, loss, and TCP dynamics advance virtual time through the
// simulation. Handshake latencies are read off the passive tap exactly as
// the paper's timestamper does.
package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/nettap"
	"pqtls/internal/obs"
	"pqtls/internal/perf"
	"pqtls/internal/pki"
	"pqtls/internal/sig"
	"pqtls/internal/tcpsim"
	"pqtls/internal/tls13"
)

// ScenarioTestbed models the paper's direct 10 Gbit/s fiber link between
// the two measurement hosts (Figure 2): no loss, LAN-scale RTT.
var ScenarioTestbed = netsim.LinkConfig{Name: "testbed", RTT: 40 * time.Microsecond, Rate: 10_000_000_000}

// Modeled white-box constants (DESIGN.md substitution #7): per-packet
// kernel and NIC-driver work, and per-handshake testbed-tooling overhead.
const (
	kernelPerPacket = 3 * time.Microsecond
	ixgbePerPacket  = 600 * time.Nanosecond
	pythonPerHS     = 30 * time.Microsecond
)

// credentials is a cached server identity for one signature algorithm.
type credentials struct {
	chain []*pki.Certificate
	priv  []byte
	roots *pki.Pool
}

// credEntry is a singleflight cache slot: the first caller builds the
// credentials inside the entry's Once while later callers for the same key
// block only on that entry, not on the whole cache.
type credEntry struct {
	once sync.Once
	c    *credentials
	err  error
}

var credCache = struct {
	mu sync.Mutex
	m  map[string]*credEntry
}{m: map[string]*credEntry{}}

// credentialsFor builds (once per process) a root CA and a presented chain
// of the given depth (leaf plus depth-1 intermediates), all using the same
// signature algorithm — the paper uses single-certificate chains (depth 1);
// deeper chains feed the chain-depth extension experiment. Safe for
// concurrent use: parallel workers hitting the same key share one build.
func credentialsFor(sigName string, depth int) (*credentials, error) {
	if depth < 1 {
		depth = 1
	}
	key := fmt.Sprintf("%s/%d", sigName, depth)
	credCache.mu.Lock()
	e, ok := credCache.m[key]
	if !ok {
		e = &credEntry{}
		credCache.m[key] = e
	}
	credCache.mu.Unlock()
	e.once.Do(func() { e.c, e.err = buildCredentials(sigName, depth) })
	return e.c, e.err
}

// Credentials is an exported view of a cached server identity. The live
// subsystem (pqbench live, cmd/pqtls-server) serves real sockets with the
// same deterministically-generated chains the modeled campaigns use, so a
// live cell and its modeled prediction present byte-identical certificates.
type Credentials struct {
	Chain []*pki.Certificate
	Priv  []byte
	Roots *pki.Pool
}

// CredentialsFor returns the process-wide cached identity for sigName with
// a chain of the given depth (minimum 1). Safe for concurrent use.
func CredentialsFor(sigName string, depth int) (*Credentials, error) {
	c, err := credentialsFor(sigName, depth)
	if err != nil {
		return nil, err
	}
	return &Credentials{Chain: c.chain, Priv: c.priv, Roots: c.roots}, nil
}

// buildCredentials constructs the CA hierarchy for one cache entry.
func buildCredentials(sigName string, depth int) (*credentials, error) {
	scheme, err := sig.ByName(sigName)
	if err != nil {
		return nil, err
	}
	rng := newCredentialDRBG(sigName, depth)
	root, rootPriv, err := pki.SelfSigned("PQTLS Root CA", scheme, rng)
	if err != nil {
		return nil, err
	}
	issuer, issuerPriv := root, rootPriv
	var intermediates []*pki.Certificate
	for i := 0; i < depth-1; i++ {
		pub, priv, err := scheme.GenerateKey(rng)
		if err != nil {
			return nil, err
		}
		ica, err := pki.Issue(uint64(10+i), fmt.Sprintf("PQTLS Intermediate %d", i+1), sigName, pub, issuer, issuerPriv)
		if err != nil {
			return nil, err
		}
		intermediates = append([]*pki.Certificate{ica}, intermediates...)
		issuer, issuerPriv = ica, priv
	}
	leafPub, leafPriv, err := scheme.GenerateKey(rng)
	if err != nil {
		return nil, err
	}
	leaf, err := pki.Issue(2, "server.example", sigName, leafPub, issuer, issuerPriv)
	if err != nil {
		return nil, err
	}
	return &credentials{
		chain: append([]*pki.Certificate{leaf}, intermediates...),
		priv:  leafPriv,
		roots: pki.NewPool(root),
	}, nil
}

// HandshakeResult is everything one simulated handshake yields.
type HandshakeResult struct {
	Phases nettap.Phases
	// Cycle is the full virtual duration from TCP SYN to the client
	// Finished arriving at the server — the sequential-handshake period
	// that determines how many handshakes fit in 60 s.
	Cycle time.Duration
	// Wire volume per side, including all headers and retransmissions.
	ClientBytes, ServerBytes     int
	ClientPackets, ServerPackets int
	// Measured CPU per side.
	ClientCPU, ServerCPU time.Duration
	// Flushes the server produced (buffering-policy observable).
	ServerFlushes int
}

// RunOptions configure a single handshake simulation.
type RunOptions struct {
	KEM    string
	Sig    string
	Link   netsim.LinkConfig
	Buffer tls13.BufferPolicy
	Seed   int64
	// CWND overrides the initial congestion window (0 = Linux default 10)
	// for the Section 5.4 / conclusion tuning experiment.
	CWND int
	// ClientKEM, when set, is the client's key-share guess; combined with
	// ClientSupported it triggers the HelloRetryRequest fallback when the
	// guess differs from KEM (the server's requirement).
	ClientKEM       string
	ClientSupported []string
	// ChainDepth is the presented certificate-chain length (default 1, as
	// in the paper).
	ChainDepth int
	// Resume measures a PSK-resumed handshake: a full handshake first runs
	// outside the simulation to obtain a session ticket, then the resumed
	// handshake is measured.
	Resume bool
	// Timing selects how compute enters the virtual clocks: modeled costs
	// (TimingModel, the default — deterministic) or measured wall time
	// (TimingReal, the paper's original methodology).
	Timing Timing
	// KeyPool, when non-nil, supplies pre-generated client key shares (see
	// KeyPool); modeled timing is unaffected.
	KeyPool *KeyPool
	// CVVerifier, when non-nil, routes the client's CertificateVerify check
	// through a batching verification pool (loadgen.VerifyPool). Like
	// KeyPool it serves only unpinned runs — see the bypass note below.
	CVVerifier tls13.CVVerifier
	// Encapsulator, when non-nil, routes the server's KEM encapsulation
	// through a batching pool (live.EncapPool). Same bypass as CVVerifier.
	Encapsulator tls13.Encapsulator
	// Rand, when non-nil, seeds both endpoints' randomness. Campaigns
	// always set it (a per-sample DRBG), pinning the variable-length
	// randomized signatures that would otherwise jitter flight sizes and
	// break byte-identical table regeneration across worker counts.
	Rand io.Reader
	// Profilers, when set, collect the white-box view.
	ClientProf, ServerProf *perf.Profiler
	// Trace, when non-nil, collects per-endpoint span traces of the
	// measured handshake (not of the un-simulated ticket-priming handshake
	// under Resume). Span clocks follow Timing: virtual meter time under
	// TimingModel, wall time under TimingReal. TraceSample labels the
	// traces with a sample index.
	Trace       *obs.Collector
	TraceSample int
	// Pcap, when non-nil, records every tap frame to a libpcap capture
	// (the artifact publishes PCAPs of each run).
	Pcap *nettap.PcapWriter
}

// RunHandshake performs one full handshake through the simulated testbed.
func RunHandshake(opts RunOptions) (*HandshakeResult, error) {
	creds, err := credentialsFor(opts.Sig, opts.ChainDepth)
	if err != nil {
		return nil, err
	}
	link := netsim.NewLink(opts.Link, opts.Seed)
	ts := nettap.NewTimestamper()
	if opts.Pcap != nil {
		link.SetTap(nettap.TeeTap(ts.Tap, opts.Pcap.Tap))
	} else {
		link.SetTap(ts.Tap)
	}
	conn := tcpsim.NewConn(link, tcpsim.Options{InitialCwnd: opts.CWND})

	srvCfg := &tls13.Config{
		KEMName: opts.KEM, SigName: opts.Sig, ServerName: "server.example",
		Chain: creds.chain, PrivateKey: creds.priv, Buffer: opts.Buffer,
		TicketKey: &resumptionTicketKey,
	}
	clientKEM := opts.KEM
	if opts.ClientKEM != "" {
		clientKEM = opts.ClientKEM
	}
	cliCfg := &tls13.Config{
		KEMName: clientKEM, SigName: opts.Sig, ServerName: "server.example",
		SupportedKEMs: opts.ClientSupported,
		Roots:         creds.roots,
	}
	if opts.Rand != nil {
		// One shared stream: the sans-IO drive below is single-threaded, so
		// both endpoints consume it in a deterministic order.
		cliCfg.Rand = opts.Rand
		srvCfg.Rand = opts.Rand
	}
	// Deterministic-mode bypass: when the run is pinned to a DRBG, taking a
	// pooled key would skip the client's seed read and shift the shared
	// stream — whether a given sample drew from the pool then depends on
	// worker scheduling, and variable-length signatures (Falcon) would make
	// flight sizes scheduling-dependent too. Pinned runs therefore always
	// generate inline (same modeled cost either way); the pool serves only
	// unpinned (live/wall-clock) runs.
	if opts.KeyPool != nil && opts.Rand == nil {
		cliCfg.PresetKeyShare = opts.KeyPool.Get(clientKEM)
	}
	// The batching pools follow the same bypass: they draw on crypto/rand
	// and resolve in scheduling-dependent order, so they serve only unpinned
	// runs. The tls13 endpoints enforce this too (the hooks are ignored when
	// Config.Rand is set); gating here keeps the invariant visible at the
	// harness layer and keeps pinned configs hook-free.
	if opts.Rand == nil {
		if opts.CVVerifier != nil {
			cliCfg.CVVerifier = opts.CVVerifier
		}
		if opts.Encapsulator != nil {
			srvCfg.Encapsulator = opts.Encapsulator
		}
	}
	if opts.ServerProf != nil {
		srvCfg.Hooks = opts.ServerProf
	}
	if opts.ClientProf != nil {
		cliCfg.Hooks = opts.ClientProf
	}
	// Per-party compute clocks: under modeled timing each endpoint gets its
	// own CostMeter and every compute span below reads meter deltas instead
	// of the wall clock, making the whole simulation jitter-free.
	var cliMeter, srvMeter *CostMeter
	if opts.Timing != TimingReal {
		cliMeter = NewCostMeter(nil)
		srvMeter = NewCostMeter(nil)
		cliCfg.Meter = cliMeter
		srvCfg.Meter = srvMeter
	}
	cliClock := stopwatchFor(cliMeter)
	srvClock := stopwatchFor(srvMeter)
	if opts.Resume {
		sess, err := obtainSession(cliCfg, srvCfg)
		if err != nil {
			return nil, fmt.Errorf("harness: obtaining session ticket: %w", err)
		}
		cliCfg.Session = sess
	}
	// Tracers are installed after the ticket-priming handshake so only the
	// measured handshake is traced. Each endpoint's tracer reads that
	// endpoint's clock — the virtual meter under modeled timing, so span
	// durations are exactly the charged compute.
	var cliTracer, srvTracer *obs.Tracer
	if opts.Trace != nil {
		meta := obs.Meta{
			KEM: clientKEM, Sig: opts.Sig,
			Buffer:  BufferName(opts.Buffer),
			Sample:  opts.TraceSample,
			Resumed: opts.Resume,
		}
		cliMeta, srvMeta := meta, meta
		cliMeta.Endpoint, srvMeta.Endpoint = "client", "server"
		cliTracer = obs.NewTracer(cliMeta, clockFor(cliMeter))
		srvTracer = obs.NewTracer(srvMeta, clockFor(srvMeter))
		cliCfg.Hooks = tls13.MultiHooks(cliCfg.Hooks, cliTracer)
		srvCfg.Hooks = tls13.MultiHooks(srvCfg.Hooks, srvTracer)
	}
	cli, err := tls13.NewClient(cliCfg)
	if err != nil {
		return nil, err
	}
	srv, err := tls13.NewServer(srvCfg)
	if err != nil {
		return nil, err
	}

	res := &HandshakeResult{}

	// TCP establishment.
	clientReady, _ := conn.Connect(0)

	// ClientHello (client-side key generation happens here; the paper's
	// phase measurements exclude it, the cycle time includes it).
	sw := cliClock()
	chFlight, err := cli.Start()
	if err != nil {
		return nil, err
	}
	chCompute := sw()
	res.ClientCPU += chCompute
	tCH := clientReady + chCompute
	chArrive := conn.Send(netsim.ClientToServer, tCH, marshalRecords(chFlight))

	// Server flights with per-flush availability offsets. The loop runs
	// once for a 1-RTT handshake and twice when the server answers with a
	// HelloRetryRequest (2-RTT fallback).
	clientFree := tCH
	clientFlight := chFlight
	flightArrive := chArrive
	var finalFlight []tls13.Record
	var tFinWrite time.Duration
	for round := 0; round < 2 && finalFlight == nil; round++ {
		sw = srvClock()
		flushes, err := srv.Respond(clientFlight)
		if err != nil {
			return nil, err
		}
		res.ServerCPU += sw()
		res.ServerFlushes += len(flushes)

		// Transmit each flush when it becomes available; the client
		// consumes each flush when delivered AND it is free —
		// decapsulation overlaps with the server still signing when the
		// SH was pushed early.
		var retry []tls13.Record
		for _, f := range flushes {
			ready := flightArrive + f.Offset
			delivered := conn.Send(netsim.ServerToClient, ready, marshalRecords(f.Records))
			start := delivered
			if clientFree > start {
				start = clientFree
			}
			// The client sat idle from clientFree to start waiting for this
			// flush — the flight-wait phase the buffering analysis turns on.
			// Offsets are relative to the ClientHello hitting the wire (the
			// tap's Total origin), on the transport timeline.
			if cliTracer != nil && start > clientFree {
				cliTracer.Add(tls13.PhaseFlightWait, clientFree-tCH, start-tCH)
			}
			sw = cliClock()
			out, done, err := cli.Consume(f.Records)
			if err != nil {
				return nil, err
			}
			d := sw()
			res.ClientCPU += d
			clientFree = start + d
			switch {
			case done:
				finalFlight = out
				tFinWrite = clientFree
			case len(out) > 0:
				retry = out // HelloRetryRequest answer
			}
		}
		if retry != nil {
			clientFlight = retry
			flightArrive = conn.Send(netsim.ClientToServer, clientFree, marshalRecords(retry))
		}
	}
	if finalFlight == nil {
		return nil, fmt.Errorf("harness: client did not finish (%s/%s)", opts.KEM, opts.Sig)
	}
	finArrive := conn.Send(netsim.ClientToServer, tFinWrite, marshalRecords(finalFlight))

	sw = srvClock()
	if err := srv.Finish(finalFlight); err != nil {
		return nil, err
	}
	res.ServerCPU += sw()

	phases, ok := ts.Phases()
	if !ok {
		return nil, fmt.Errorf("harness: tap did not observe a complete handshake (%s/%s)", opts.KEM, opts.Sig)
	}
	res.Phases = phases
	res.Cycle = finArrive + res.ServerCPU // server wraps up after Fin arrives
	if opts.Trace != nil {
		opts.Trace.Add(cliTracer)
		opts.Trace.Add(srvTracer)
	}
	res.ClientBytes = link.Bytes[netsim.ClientToServer]
	res.ServerBytes = link.Bytes[netsim.ServerToClient]
	res.ClientPackets = link.Packets[netsim.ClientToServer]
	res.ServerPackets = link.Packets[netsim.ServerToClient]

	// White-box attribution of modeled kernel/driver/tooling costs.
	if opts.ClientProf != nil {
		pkts := res.ClientPackets + res.ServerPackets // TX + RX
		opts.ClientProf.Attribute(perf.Kernel, time.Duration(pkts)*kernelPerPacket)
		opts.ClientProf.Attribute(perf.Ixgbe, time.Duration(pkts)*ixgbePerPacket)
		opts.ClientProf.Attribute(perf.Python, pythonPerHS)
		opts.ClientProf.AddTotal(res.ClientCPU)
	}
	if opts.ServerProf != nil {
		pkts := res.ClientPackets + res.ServerPackets
		opts.ServerProf.Attribute(perf.Kernel, time.Duration(pkts)*kernelPerPacket)
		opts.ServerProf.Attribute(perf.Ixgbe, time.Duration(pkts)*ixgbePerPacket)
		opts.ServerProf.Attribute(perf.Python, pythonPerHS)
		opts.ServerProf.AddTotal(res.ServerCPU)
	}
	return res, nil
}

// BufferName renders a BufferPolicy for trace metadata and file names.
func BufferName(p tls13.BufferPolicy) string {
	if p == tls13.BufferImmediate {
		return "immediate"
	}
	return "default"
}

// clockFor picks a tracer clock: the endpoint's virtual meter under modeled
// timing, the wall clock otherwise.
func clockFor(m *CostMeter) func() time.Time {
	if m == nil {
		return time.Now
	}
	return m.Now
}

// stopwatchFor returns a stopwatch constructor for one endpoint: measured
// wall time when m is nil (TimingReal), virtual meter-elapsed deltas
// otherwise. Each call to the returned function starts a span; invoking the
// inner function reads it.
func stopwatchFor(m *CostMeter) func() func() time.Duration {
	if m == nil {
		return func() func() time.Duration {
			t0 := time.Now()
			return func() time.Duration { return time.Since(t0) }
		}
	}
	return func() func() time.Duration {
		e0 := m.Elapsed()
		return func() time.Duration { return m.Elapsed() - e0 }
	}
}

// resumptionTicketKey is the static key server instances share so sessions
// resume across simulated handshakes.
var resumptionTicketKey = [16]byte{'p', 'q', 't', 'l', 's', '-', 't', 'i', 'c', 'k', 'e', 't', '-', 'k', 'e', 'y'}

// obtainSession runs one un-simulated full handshake to get a ticket.
func obtainSession(cliCfg, srvCfg *tls13.Config) (*tls13.Session, error) {
	cli, err := tls13.NewClient(cliCfg)
	if err != nil {
		return nil, err
	}
	srv, err := tls13.NewServer(srvCfg)
	if err != nil {
		return nil, err
	}
	ch, err := cli.Start()
	if err != nil {
		return nil, err
	}
	flushes, err := srv.Respond(ch)
	if err != nil {
		return nil, err
	}
	var final []tls13.Record
	for _, f := range flushes {
		out, done, err := cli.Consume(f.Records)
		if err != nil {
			return nil, err
		}
		if done {
			final = out
		}
	}
	if err := srv.Finish(final); err != nil {
		return nil, err
	}
	flight, _, err := srv.SessionTicket()
	if err != nil {
		return nil, err
	}
	return cli.ProcessTicket(flight)
}

// marshalRecords renders records to their wire bytes.
func marshalRecords(records []tls13.Record) []byte {
	var out []byte
	for _, r := range records {
		out = append(out, r.Marshal()...)
	}
	return out
}
